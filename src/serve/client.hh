/**
 * @file
 * Client side of the rsep_serve protocol: run an experiment matrix on
 * a warm daemon instead of in-process (`--connect <socket>` on every
 * driver).
 *
 * runMatrixRemote is a drop-in stand-in for sim::runMatrix over the
 * same (scenarios, benchmarks) request: it reconstructs the identical
 * vector<MatrixRow> from the streamed Cell frames (the result-cache
 * record format round-trips a PhaseResult bit-exactly), mirrors the
 * runMatrix post-barrier accounting, flushes streamed Samples frames
 * through the same TimeSeriesSink, and finally checks its own
 * recomputed canonical CSV dump against the server's Done reference —
 * so every downstream report/export path produces byte-identical
 * output whether the cells ran locally or on the daemon.
 *
 * Error discipline: connection, protocol and server-reported errors
 * are fatal (rsep_fatal), matching how drivers treat local setup
 * failures — the daemon itself never dies on a bad request.
 */

#ifndef RSEP_SERVE_CLIENT_HH
#define RSEP_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/scenario.hh"

namespace rsep::serve
{

/** Remote-run knobs (the subset of MatrixOptions the wire carries). */
struct ClientOptions
{
    std::string socketPath;      ///< daemon socket (`--connect`).
    u64 sampleEvery = 0;         ///< `--sample-every`; 0 = off.
    std::string sampleDir = "samples"; ///< local `.rts` output dir.
    std::string replayDir;       ///< `--replay-trace`, server-side path.
    bool progress = true;        ///< per-cell lines on stderr.
};

/**
 * Run (scenarios x benchmarks) on the daemon at opts.socketPath and
 * return rows equivalent to sim::runMatrix of the same request.
 * Benchmarks with qualified `name@hash` keys must be resolvable in the
 * local workload registry (their specs ship in the request).
 */
std::vector<sim::MatrixRow>
runMatrixRemote(const std::vector<sim::Scenario> &scenarios,
                const std::vector<std::string> &benchmarks,
                const ClientOptions &opts);

} // namespace rsep::serve

#endif // RSEP_SERVE_CLIENT_HH

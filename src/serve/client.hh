/**
 * @file
 * Client side of the rsep_serve protocol: run an experiment matrix on
 * a warm daemon instead of in-process (`--connect <socket>` on every
 * driver).
 *
 * runMatrixRemote is a drop-in stand-in for sim::runMatrix over the
 * same (scenarios, benchmarks) request: it reconstructs the identical
 * vector<MatrixRow> from the streamed Cell frames (the result-cache
 * record format round-trips a PhaseResult bit-exactly), mirrors the
 * runMatrix post-barrier accounting, flushes streamed Samples frames
 * through the same TimeSeriesSink, and finally checks its own
 * recomputed canonical CSV dump against the server's Done reference —
 * so every downstream report/export path produces byte-identical
 * output whether the cells ran locally or on the daemon.
 *
 * Error discipline: *permanent* errors (a server-reported diagnostic,
 * a protocol mismatch, a diverging dump) are fatal (rsep_fatal, exit
 * 1), matching how drivers treat local setup failures. *Transient*
 * connection failures — refused connects, a daemon restarting
 * mid-drain, a dropped socket — are retried with bounded exponential
 * backoff: Submit is idempotent (results come from the bit-exact
 * result cache and the dump is hard-verified), so a resubmit returns
 * byte-identical output. When retries are exhausted the client exits
 * with a code that names the failure class (exitDaemonGone /
 * exitTruncated / exitDeadline / exitBusy below) so fleet scripts can
 * tell "daemon shut down cleanly" from "stream tore mid-frame".
 */

#ifndef RSEP_SERVE_CLIENT_HH
#define RSEP_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/scenario.hh"

namespace rsep::serve
{

// Exit codes of the remote-run path, distinct per failure class.
// 1 stays the generic rsep_fatal code for permanent errors.
constexpr int exitDaemonGone = 3; ///< connection closed cleanly (daemon
                                  ///< shut down / unreachable) after
                                  ///< all retries.
constexpr int exitTruncated = 4;  ///< stream tore mid-frame / socket
                                  ///< error after all retries.
constexpr int exitDeadline = 5;   ///< --deadline exceeded.
constexpr int exitBusy = 6;       ///< server still Busy after all
                                  ///< retries.

/** Remote-run knobs (the subset of MatrixOptions the wire carries). */
struct ClientOptions
{
    std::string socketPath;      ///< daemon socket (`--connect`).
    u64 sampleEvery = 0;         ///< `--sample-every`; 0 = off.
    std::string sampleDir = "samples"; ///< local `.rts` output dir.
    std::string replayDir;       ///< `--replay-trace`, server-side path.
    bool progress = true;        ///< per-cell lines on stderr.
    /** Keep re-trying the initial connect for this long before giving
     *  up (`--connect-timeout`, ms; 0 = a single attempt). Lets a
     *  client start before its daemon finishes warming up. */
    u64 connectTimeoutMs = 0;
    /** Hard wall-clock ceiling on the whole request including retries
     *  (`--deadline`, ms; 0 = none). Expiry exits exitDeadline. */
    u64 deadlineMs = 0;
    /** Reconnect+resubmit attempts after a transient connection
     *  failure or Busy rejection (`--retries`; 0 = fail fast). */
    unsigned maxRetries = 3;
    /** First retry backoff (doubles each retry, capped at 2 s); a
     *  server Busy hint raises — never lowers — the wait. */
    u64 backoffBaseMs = 100;
};

/**
 * Run (scenarios x benchmarks) on the daemon at opts.socketPath and
 * return rows equivalent to sim::runMatrix of the same request.
 * Benchmarks with qualified `name@hash` keys must be resolvable in the
 * local workload registry (their specs ship in the request).
 */
std::vector<sim::MatrixRow>
runMatrixRemote(const std::vector<sim::Scenario> &scenarios,
                const std::vector<std::string> &benchmarks,
                const ClientOptions &opts);

} // namespace rsep::serve

#endif // RSEP_SERVE_CLIENT_HH

/**
 * @file
 * The rsep_serve daemon core: a warm, long-running simulation service
 * on a Unix-domain socket (DESIGN.md §13).
 *
 * One Server owns the process-resident state a cold driver process
 * pays to rebuild on every invocation — the workload registry, the
 * decoded-trace cache (wl::traceCache()) and the persistent result
 * cache — plus one work-stealing ThreadPool. Each client connection
 * gets a handler thread that validates Submit requests and fans their
 * (benchmark, config, checkpoint) cells into the shared pool, so
 * concurrently-pending requests batch into one execution: their cells
 * interleave on the same workers, share the same caches, and stream
 * back to their own clients as they complete.
 *
 * Determinism contract: a cell's result depends only on its
 * (benchmark, config, checkpoint) identity — never on batching,
 * request interleaving or cache temperature — so a client's dump is
 * byte-identical to a direct `runMatrix` run of the same request.
 * The one registry rule that keeps cross-client requests independent:
 * `[workload]` blocks that *override a suite benchmark name* are
 * rejected (a bare suite key in another client's request would
 * silently resolve through the override); rename the workload instead.
 *
 * The class is embeddable (tests run it in-process on a private
 * socket); tools/rsep_serve.cpp is the CLI wrapper.
 */

#ifndef RSEP_SERVE_SERVER_HH
#define RSEP_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace rsep::sim
{
class ResultCache;
class ThreadPool;
} // namespace rsep::sim

namespace rsep::serve
{

/** Daemon configuration (tools/rsep_serve flags). */
struct ServeOptions
{
    /** Unix-domain socket path to listen on. A stale socket file left
     *  by a dead server is replaced; a live server is an error. */
    std::string socketPath = "rsep_serve.sock";
    /** Worker threads of the shared pool (0 = auto, like --jobs). */
    unsigned jobs = 0;
    /** Persistent result-cache root shared by every request (empty =
     *  no result cache; the decoded-trace cache is always on). */
    std::string cacheDir;
    /** Per-request summary lines on stderr. */
    bool progress = true;
    /** Admission control: reject a Submit with a structured Busy error
     *  (retry-after hint) instead of queueing it when accepting it
     *  would push the server-wide in-flight cell count past this
     *  ceiling (0 = unlimited). */
    u64 maxInflightCells = 0;
    /** Admission control: maximum concurrently-pending Submit requests
     *  before new ones are answered Busy (0 = unlimited). */
    u64 maxQueueDepth = 0;
    /** Reap connections idle (no frame activity) longer than this many
     *  seconds between requests (0 = never). */
    u64 idleTimeoutSec = 0;
};

class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server(); ///< stop()s if still running.

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and start the accept loop + worker pool.
     *  False + @p err when the socket cannot be claimed. */
    bool start(std::string *err);

    /** Drain in-flight requests, close every connection, release the
     *  socket. Idempotent. */
    void stop();

    const std::string &socketPath() const { return opts.socketPath; }
    unsigned jobs() const { return nJobs; }

    /** Lifetime serve.* counters (snapshot under the counter lock). */
    struct Counters
    {
        u64 requests = 0;        ///< Submit requests answered with Done.
        u64 errors = 0;          ///< Error frames sent.
        u64 cellsRun = 0;        ///< cells simulated.
        u64 cacheHits = 0;       ///< cells served by the result cache.
        u64 batchedCells = 0;    ///< cells that shared the pool with
                                 ///< another in-flight request.
        u64 traceDecodeHits = 0; ///< warm decoded-trace lookups.
        u64 traceDecodeMisses = 0;
        u64 queueWaitMicros = 0; ///< summed submit-to-first-cell waits.
        u64 retriesServed = 0;   ///< Submits that carried retry > 0.
        u64 busyRejections = 0;  ///< Submits answered Busy (admission).
    };
    Counters counters() const;

  private:
    struct PendingRequest;

    void acceptLoop();
    void handleConnection(int fd);
    /** Process one Submit frame; false when the connection must close
     *  (a write to the client already failed). */
    bool handleSubmit(int fd, std::mutex &write_mtx,
                      const std::string &payload);
    /** One pool task: simulate cell (b, c, p), stream its Cell (and
     *  Samples) frame, slot the result. */
    void runRequestCell(PendingRequest &req, size_t b, size_t c, u32 p);
    void sendError(int fd, std::mutex &write_mtx, const std::string &msg);
    /** Admission-control rejection: a structured Busy Error frame with
     *  a retry-after hint; counted separately from protocol errors. */
    void sendBusy(int fd, std::mutex &write_mtx, const std::string &why);
    /** Validate a request end to end (workloads resolvable, replay
     *  traces present, well-formed and matching their cells) so no
     *  in-flight cell can hit a fatal diagnostic and take the daemon
     *  down with it. Empty string = good to run. */
    std::string preflight(const PendingRequest &req);

    ServeOptions opts;
    unsigned nJobs = 0;
    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    bool running = false;
    std::atomic<bool> stopping{false};

    std::unique_ptr<sim::ThreadPool> pool;
    std::unique_ptr<sim::ResultCache> cache;

    std::thread acceptThread;
    std::mutex connMtx;
    std::vector<std::thread> connThreads;
    std::set<int> activeConnFds;

    std::atomic<unsigned> activeRequests{0};
    std::atomic<u64> inflightCells{0};

    mutable std::mutex countersMtx;
    Counters stats;
};

} // namespace rsep::serve

#endif // RSEP_SERVE_SERVER_HH

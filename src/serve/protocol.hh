/**
 * @file
 * Wire protocol of the rsep_serve simulation service (DESIGN.md §13).
 *
 * A connection is a sequence of **frames** over a Unix-domain stream
 * socket:
 *
 *     u32le payload_length | u8 frame_type | payload bytes
 *
 * The length covers the payload only. Frames above maxFramePayload,
 * unknown frame types and short reads are protocol errors — the peer
 * answers with an Error frame where it still can and closes the
 * connection; the daemon itself keeps serving other clients.
 *
 * Conversation (client view):
 *
 *     -> Hello        "rsep-serve <version>"   (must be first)
 *     <- Hello        server version echo
 *     -> Submit       run request: benchmarks, options, .scn text
 *     <- Cell         one per completed (bench, config, phase) cell,
 *                     in completion order (interleaved across configs)
 *     <- Samples      one per cell when sample_every > 0: the cell's
 *                     verbatim `.rts` image, streamed as it closes
 *     <- Done         serve.* counters + the canonical CSV dump
 *     <- Error        instead of any of the above, with a diagnostic
 *
 * Payloads are line-oriented `key = value` text headers, optionally
 * followed by a blank line and a raw blob whose size a `<name>_bytes`
 * header announced — the same self-describing text-envelope discipline
 * as the `.scn`/`.rtr`/`.rts`/cell-cache formats. Cell results reuse
 * the result-cache record serialization verbatim (the one format that
 * already round-trips a PhaseResult bit-exactly), and Submit carries
 * canonical `.scn` text, so the protocol layer adds no new
 * serialization of simulation state at all.
 */

#ifndef RSEP_SERVE_PROTOCOL_HH
#define RSEP_SERVE_PROTOCOL_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace rsep::serve
{

/** Protocol version, exchanged in Hello; bump on any wire change.
 *  v2: Submit carries a `retry` header, Error frames may be structured
 *  `busy` rejections with a retry-after hint. */
constexpr unsigned protocolVersion = 2;

/** Hard ceiling on one frame's payload. Generous for a full-suite
 *  dump, small enough that a garbage length prefix (random 4 bytes
 *  are almost always far larger) is rejected before any allocation. */
constexpr u64 maxFramePayload = 64ull << 20;

enum class FrameType : u8 {
    Hello = 1,
    Submit = 2,
    Cell = 3,
    Samples = 4,
    Done = 5,
    Error = 6,
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/**
 * Blocking frame I/O on a connected socket fd. False + @p err on any
 * failure (peer closed, short read, oversized or unknown frame) —
 * never throws, never raises SIGPIPE (writes use MSG_NOSIGNAL).
 * readFrame distinguishes a clean EOF before any byte: @p clean_eof
 * (when non-null) is set and false is returned with an empty error.
 * readFrame reports a receive-timeout (SO_RCVTIMEO expired) through
 * @p timed_out when non-null, so callers can reap idle peers without
 * string-matching errno text. @p io_failed (when non-null) is set when
 * the failure was transport-level — a read error or a stream torn
 * mid-frame — as opposed to protocol garbage (oversized prefix,
 * unknown type) arriving over a healthy connection: answering an
 * Error frame down a transport that just failed is incoherent, so the
 * server closes silently instead.
 *
 * @p fault_point names the fault::point consulted before touching the
 * socket (nullptr = no injection): the server passes "serve.send" /
 * "serve.recv", the client "client.send" / "client.recv", so a test
 * running both ends in one process can fault exactly one side.
 */
bool writeFrame(int fd, FrameType type, std::string_view payload,
                std::string *err, const char *fault_point = nullptr);
bool readFrame(int fd, Frame &out, std::string *err,
               bool *clean_eof = nullptr,
               const char *fault_point = nullptr,
               bool *timed_out = nullptr,
               bool *io_failed = nullptr);

/** The Hello payload both sides send. */
std::string helloPayload();

/** Validate a Hello payload; false + @p err on magic/version mismatch. */
bool parseHello(std::string_view payload, std::string *err);

/** A Submit request: what one client run-cell request carries. */
struct SubmitRequest
{
    /** Run-cell keys, in run order (resolved through the client's
     *  workload registry; qualified `name@hash` keys must have a
     *  matching `[workload]` block in scnText). */
    std::vector<std::string> benchmarks;
    /** Sampling period (`--sample-every`); 0 = off. Sample rows come
     *  back as Samples frames; the server never writes sample files. */
    u64 sampleEvery = 0;
    /** Recorded-trace replay directory, resolved on the server host
     *  (empty = live emulation). */
    std::string replayDir;
    /** Canonical `.scn` text: `[workload]` definitions the benchmarks
     *  need, then one `[scenario]` block per experiment arm, in run
     *  order. */
    std::string scnText;
    /** 0 on the first attempt; a resubmit after a connection failure
     *  carries its attempt number so the server can count
     *  serve.retries_served (results stay byte-identical either way —
     *  the result cache answers the rerun bit-exactly). */
    u32 retry = 0;
};

std::string serializeSubmit(const SubmitRequest &req);
bool parseSubmit(std::string_view payload, SubmitRequest &out,
                 std::string *err);

/** One completed cell, streamed as it finishes. */
struct CellResult
{
    std::string benchmark;
    u32 config = 0; ///< index into the Submit scenario order.
    u32 phase = 0;
    // Transient provenance flags (ResultCache records deliberately do
    // not carry them): the client mirrors the server's RunTiming.
    bool fromCache = false;
    bool replayed = false;
    bool decodeHit = false;
    u64 traceLoadMicros = 0;
    /** ResultCache::serializeRecord text of the PhaseResult. */
    std::string record;
};

std::string serializeCell(const CellResult &cell);
bool parseCell(std::string_view payload, CellResult &out,
               std::string *err);

/** One cell's sample series (sample_every > 0 only). */
struct SamplesFrame
{
    std::string benchmark;
    u32 config = 0;
    u32 phase = 0;
    std::string rts; ///< verbatim `.rts` file image.
};

std::string serializeSamplesFrame(const SamplesFrame &sf);
bool parseSamplesFrame(std::string_view payload, SamplesFrame &out,
                       std::string *err);

/** Request completion: serve.* counters and the canonical dump. */
struct DoneSummary
{
    u64 requests = 0;          ///< server-lifetime requests served.
    u64 batchedCells = 0;      ///< this request's cells that shared the
                               ///< pool with another in-flight request.
    u64 queueWaitMicros = 0;   ///< submit-to-first-cell-start wait.
    u64 wallMicros = 0;        ///< submit-to-last-cell wall clock.
    u64 cellsRun = 0;          ///< cells simulated for this request.
    u64 cacheHits = 0;         ///< cells served from the result cache.
    u64 traceDecodeHits = 0;   ///< replayed cells with a warm decode.
    u64 traceDecodeMisses = 0;
    bool cacheEnabled = false; ///< result cache consulted (off during
                               ///< sampling, mirroring runMatrix).
    /** Canonical CSV dump of the request's stat rows (no timings) —
     *  the reference the client checks its reconstruction against. */
    std::string dump;
};

std::string serializeDone(const DoneSummary &done);
bool parseDone(std::string_view payload, DoneSummary &out,
               std::string *err);

/**
 * Structured admission-control rejection, carried in an Error frame.
 * `serializeBusy` builds the payload; `parseBusy` recognises one and
 * extracts the retry-after hint (false for ordinary Error text, which
 * callers keep treating as a plain diagnostic).
 */
std::string serializeBusy(u64 retryAfterMs, const std::string &why);
bool parseBusy(std::string_view payload, u64 &retryAfterMs,
               std::string *why = nullptr);

} // namespace rsep::serve

#endif // RSEP_SERVE_PROTOCOL_HH

#include "serve/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/fault.hh"

namespace rsep::serve
{

namespace
{

/** @p inj, when armed with EINTR, makes the first iteration behave as
 *  an interrupted syscall so the retry branch is genuinely exercised
 *  (then the fault is consumed and the transfer proceeds). */
bool
writeAll(int fd, const void *data, size_t n, std::string *err,
         fault::Injected *inj = nullptr)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        if (inj && inj->kind == fault::Kind::Errno && inj->err == EINTR) {
            inj->kind = fault::Kind::None;
            errno = EINTR;
            continue;
        }
        // send + MSG_NOSIGNAL: a peer that hung up must surface as an
        // error return, not a process-killing SIGPIPE in the daemon.
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("write: ") + std::strerror(errno);
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/** Read exactly @p n bytes. Returns 1 on success, 0 on clean EOF
 *  before any byte, -1 on error/short read. Sets @p timed_out (when
 *  non-null) if the fd's SO_RCVTIMEO expired before any progress. */
int
readAll(int fd, void *data, size_t n, std::string *err,
        fault::Injected *inj = nullptr, bool *timed_out = nullptr)
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < n) {
        if (inj && inj->kind == fault::Kind::Errno && inj->err == EINTR) {
            inj->kind = fault::Kind::None;
            errno = EINTR;
            continue;
        }
        ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (timed_out)
                    *timed_out = true;
                if (err)
                    *err = "receive timeout";
                return -1;
            }
            if (err)
                *err = std::string("read: ") + std::strerror(errno);
            return -1;
        }
        if (r == 0) {
            if (got == 0)
                return 0;
            if (err)
                *err = "connection closed mid-frame (truncated frame)";
            return -1;
        }
        got += static_cast<size_t>(r);
    }
    return 1;
}

bool
knownFrameType(u8 t)
{
    return t >= static_cast<u8>(FrameType::Hello) &&
           t <= static_cast<u8>(FrameType::Error);
}

// ---------------------------------------------- payload text helpers

/** Cursor over a line-oriented payload with a trailing raw blob. */
struct PayloadReader
{
    std::string_view text;
    size_t pos = 0;

    /** Next header line (without '\n'); false at end or blank line
     *  (the blob separator, which is consumed). */
    bool
    nextLine(std::string_view &line)
    {
        if (pos >= text.size())
            return false;
        size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = text.size();
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return !line.empty();
    }

    /** The raw blob after the blank separator line. */
    std::string_view
    rest() const
    {
        return pos >= text.size() ? std::string_view{}
                                  : text.substr(pos);
    }
};

bool
splitKeyValue(std::string_view line, std::string_view &key,
              std::string_view &value)
{
    size_t eq = line.find(" = ");
    if (eq == std::string_view::npos)
        return false;
    key = line.substr(0, eq);
    value = line.substr(eq + 3);
    return true;
}

bool
parseBool01(std::string_view v, bool &out)
{
    if (v == "0")
        return out = false, true;
    if (v == "1")
        return out = true, true;
    return false;
}

void
appendKv(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += " = ";
    out += value;
    out += '\n';
}

void
appendKvU64(std::string &out, const char *key, u64 value)
{
    appendKv(out, key, std::to_string(value));
}

std::vector<std::string>
splitCommaList(std::string_view v)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= v.size()) {
        size_t comma = v.find(',', start);
        if (comma == std::string_view::npos)
            comma = v.size();
        if (comma > start)
            out.emplace_back(v.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::string
joinCommaList(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &s : items) {
        if (!out.empty())
            out += ',';
        out += s;
    }
    return out;
}

/** Validate a `<name>_bytes` announcement against what follows. */
bool
checkBlobSize(const PayloadReader &r, u64 announced, const char *what,
              std::string *err)
{
    if (r.rest().size() != announced) {
        if (err)
            *err = std::string(what) + "_bytes announces " +
                   std::to_string(announced) + " but " +
                   std::to_string(r.rest().size()) + " bytes follow";
        return false;
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, FrameType type, std::string_view payload,
           std::string *err, const char *fault_point)
{
    if (payload.size() > maxFramePayload) {
        if (err)
            *err = "frame payload of " +
                   std::to_string(payload.size()) +
                   " bytes exceeds the protocol ceiling";
        return false;
    }
    u8 head[5];
    u32 len = static_cast<u32>(payload.size());
    head[0] = static_cast<u8>(len);
    head[1] = static_cast<u8>(len >> 8);
    head[2] = static_cast<u8>(len >> 16);
    head[3] = static_cast<u8>(len >> 24);
    head[4] = static_cast<u8>(type);

    fault::Injected inj;
    if (fault_point)
        inj = fault::point(fault_point);
    switch (inj.kind) {
    case fault::Kind::None:
    case fault::Kind::Errno: // EINTR is absorbed inside writeAll.
        if (inj.kind == fault::Kind::Errno && inj.err != EINTR) {
            if (err)
                *err = std::string("write (") + fault_point +
                       "): injected " + std::strerror(inj.err);
            return false;
        }
        break;
    case fault::Kind::Delay:
        fault::sleepMicros(inj.amount);
        inj.kind = fault::Kind::None;
        break;
    case fault::Kind::ShortWrite:
    case fault::Kind::Truncate: {
        // Emit a torn frame: the first `amount` bytes of header +
        // payload really reach the wire, then the operation fails so
        // the caller tears down the connection and the peer observes a
        // mid-frame EOF.
        std::string wire(reinterpret_cast<const char *>(head),
                         sizeof(head));
        wire.append(payload);
        size_t keep = static_cast<size_t>(
            std::min<u64>(inj.amount, wire.size()));
        std::string torn_err;
        writeAll(fd, wire.data(), keep, &torn_err);
        if (err)
            *err = std::string("write (") + fault_point +
                   "): injected torn frame after " +
                   std::to_string(keep) + " of " +
                   std::to_string(wire.size()) + " bytes";
        return false;
    }
    }

    if (!writeAll(fd, head, sizeof(head), err, &inj))
        return false;
    return payload.empty() ||
           writeAll(fd, payload.data(), payload.size(), err, &inj);
}

bool
readFrame(int fd, Frame &out, std::string *err, bool *clean_eof,
          const char *fault_point, bool *timed_out, bool *io_failed)
{
    if (clean_eof)
        *clean_eof = false;
    if (timed_out)
        *timed_out = false;
    if (io_failed)
        *io_failed = false;

    fault::Injected inj;
    if (fault_point)
        inj = fault::point(fault_point);
    switch (inj.kind) {
    case fault::Kind::None:
    case fault::Kind::Errno: // EINTR is absorbed inside readAll.
        if (inj.kind == fault::Kind::Errno && inj.err != EINTR) {
            if (err)
                *err = std::string("read (") + fault_point +
                       "): injected " + std::strerror(inj.err);
            if (io_failed)
                *io_failed = true;
            return false;
        }
        break;
    case fault::Kind::Delay:
        fault::sleepMicros(inj.amount);
        inj.kind = fault::Kind::None;
        break;
    case fault::Kind::ShortWrite:
    case fault::Kind::Truncate:
        // Behave as if the peer vanished mid-frame.
        if (err)
            *err = std::string("read (") + fault_point +
                   "): injected truncated frame (connection closed "
                   "mid-frame)";
        if (io_failed)
            *io_failed = true;
        return false;
    }

    u8 head[5];
    int r = readAll(fd, head, sizeof(head), err, &inj, timed_out);
    if (r == 0) {
        if (clean_eof)
            *clean_eof = true;
        if (err)
            err->clear();
        return false;
    }
    if (r < 0) {
        if (io_failed)
            *io_failed = true;
        return false;
    }
    u64 len = static_cast<u64>(head[0]) | (static_cast<u64>(head[1]) << 8) |
              (static_cast<u64>(head[2]) << 16) |
              (static_cast<u64>(head[3]) << 24);
    if (len > maxFramePayload) {
        if (err)
            *err = "oversized frame (" + std::to_string(len) +
                   " byte payload > " + std::to_string(maxFramePayload) +
                   " ceiling)";
        return false;
    }
    if (!knownFrameType(head[4])) {
        if (err)
            *err = "unknown frame type " + std::to_string(head[4]);
        return false;
    }
    out.type = static_cast<FrameType>(head[4]);
    out.payload.resize(len);
    if (len > 0 &&
        readAll(fd, out.payload.data(), len, err, &inj, timed_out) != 1) {
        if (io_failed)
            *io_failed = true;
        return false;
    }
    return true;
}

std::string
helloPayload()
{
    return "rsep-serve " + std::to_string(protocolVersion) + "\n";
}

bool
parseHello(std::string_view payload, std::string *err)
{
    if (payload != helloPayload()) {
        if (err)
            *err = "hello mismatch: expected protocol 'rsep-serve " +
                   std::to_string(protocolVersion) +
                   "' (peer built from a different tree?)";
        return false;
    }
    return true;
}

std::string
serializeSubmit(const SubmitRequest &req)
{
    std::string out = "rsep-submit 1\n";
    appendKv(out, "benchmarks", joinCommaList(req.benchmarks));
    appendKvU64(out, "sample_every", req.sampleEvery);
    appendKv(out, "replay_dir", req.replayDir);
    if (req.retry > 0)
        appendKvU64(out, "retry", req.retry);
    appendKvU64(out, "scn_bytes", req.scnText.size());
    out += '\n';
    out += req.scnText;
    return out;
}

bool
parseSubmit(std::string_view payload, SubmitRequest &out, std::string *err)
{
    PayloadReader r{payload};
    std::string_view line;
    if (!r.nextLine(line) || line != "rsep-submit 1") {
        if (err)
            *err = "bad submit magic/version";
        return false;
    }
    u64 scn_bytes = 0;
    bool have_bench = false, have_bytes = false;
    while (r.nextLine(line)) {
        std::string_view k, v;
        if (!splitKeyValue(line, k, v)) {
            if (err)
                *err = "malformed submit header line '" +
                       std::string(line) + "'";
            return false;
        }
        if (k == "benchmarks") {
            out.benchmarks = splitCommaList(v);
            have_bench = true;
        } else if (k == "sample_every") {
            if (!parseU64(std::string(v), out.sampleEvery)) {
                if (err)
                    *err = "bad sample_every '" + std::string(v) + "'";
                return false;
            }
        } else if (k == "replay_dir") {
            out.replayDir = std::string(v);
        } else if (k == "retry") {
            u64 u = 0;
            if (!parseU64(std::string(v), u)) {
                if (err)
                    *err = "bad retry '" + std::string(v) + "'";
                return false;
            }
            out.retry = static_cast<u32>(u);
        } else if (k == "scn_bytes") {
            if (!parseU64(std::string(v), scn_bytes)) {
                if (err)
                    *err = "bad scn_bytes '" + std::string(v) + "'";
                return false;
            }
            have_bytes = true;
        } else {
            if (err)
                *err = "unknown submit header key '" + std::string(k) +
                       "'";
            return false;
        }
    }
    if (!have_bench || out.benchmarks.empty()) {
        if (err)
            *err = "submit names no benchmarks";
        return false;
    }
    if (!have_bytes || !checkBlobSize(r, scn_bytes, "scn", err)) {
        if (err && err->empty())
            *err = "submit missing scn_bytes";
        return false;
    }
    out.scnText = std::string(r.rest());
    return true;
}

std::string
serializeCell(const CellResult &cell)
{
    std::string out;
    appendKv(out, "bench", cell.benchmark);
    appendKvU64(out, "config", cell.config);
    appendKvU64(out, "phase", cell.phase);
    appendKvU64(out, "from_cache", cell.fromCache ? 1 : 0);
    appendKvU64(out, "replayed", cell.replayed ? 1 : 0);
    appendKvU64(out, "decode_hit", cell.decodeHit ? 1 : 0);
    appendKvU64(out, "trace_load_micros", cell.traceLoadMicros);
    appendKvU64(out, "record_bytes", cell.record.size());
    out += '\n';
    out += cell.record;
    return out;
}

bool
parseCell(std::string_view payload, CellResult &out, std::string *err)
{
    PayloadReader r{payload};
    std::string_view line;
    u64 record_bytes = 0;
    bool have_bytes = false;
    while (r.nextLine(line)) {
        std::string_view k, v;
        if (!splitKeyValue(line, k, v)) {
            if (err)
                *err = "malformed cell header line '" + std::string(line) +
                       "'";
            return false;
        }
        std::string vs(v);
        u64 u = 0;
        bool b = false;
        if (k == "bench") {
            out.benchmark = vs;
        } else if (k == "config" && parseU64(vs, u)) {
            out.config = static_cast<u32>(u);
        } else if (k == "phase" && parseU64(vs, u)) {
            out.phase = static_cast<u32>(u);
        } else if (k == "from_cache" && parseBool01(v, b)) {
            out.fromCache = b;
        } else if (k == "replayed" && parseBool01(v, b)) {
            out.replayed = b;
        } else if (k == "decode_hit" && parseBool01(v, b)) {
            out.decodeHit = b;
        } else if (k == "trace_load_micros" && parseU64(vs, u)) {
            out.traceLoadMicros = u;
        } else if (k == "record_bytes" && parseU64(vs, u)) {
            record_bytes = u;
            have_bytes = true;
        } else {
            if (err)
                *err = "bad cell header line '" + std::string(line) + "'";
            return false;
        }
    }
    if (out.benchmark.empty() || !have_bytes) {
        if (err)
            *err = "cell frame missing bench/record_bytes";
        return false;
    }
    if (!checkBlobSize(r, record_bytes, "record", err))
        return false;
    out.record = std::string(r.rest());
    return true;
}

std::string
serializeSamplesFrame(const SamplesFrame &sf)
{
    std::string out;
    appendKv(out, "bench", sf.benchmark);
    appendKvU64(out, "config", sf.config);
    appendKvU64(out, "phase", sf.phase);
    appendKvU64(out, "rts_bytes", sf.rts.size());
    out += '\n';
    out += sf.rts;
    return out;
}

bool
parseSamplesFrame(std::string_view payload, SamplesFrame &out,
                  std::string *err)
{
    PayloadReader r{payload};
    std::string_view line;
    u64 rts_bytes = 0;
    bool have_bytes = false;
    while (r.nextLine(line)) {
        std::string_view k, v;
        if (!splitKeyValue(line, k, v)) {
            if (err)
                *err = "malformed samples header line '" +
                       std::string(line) + "'";
            return false;
        }
        std::string vs(v);
        u64 u = 0;
        if (k == "bench") {
            out.benchmark = vs;
        } else if (k == "config" && parseU64(vs, u)) {
            out.config = static_cast<u32>(u);
        } else if (k == "phase" && parseU64(vs, u)) {
            out.phase = static_cast<u32>(u);
        } else if (k == "rts_bytes" && parseU64(vs, u)) {
            rts_bytes = u;
            have_bytes = true;
        } else {
            if (err)
                *err = "bad samples header line '" + std::string(line) +
                       "'";
            return false;
        }
    }
    if (out.benchmark.empty() || !have_bytes) {
        if (err)
            *err = "samples frame missing bench/rts_bytes";
        return false;
    }
    if (!checkBlobSize(r, rts_bytes, "rts", err))
        return false;
    out.rts = std::string(r.rest());
    return true;
}

std::string
serializeDone(const DoneSummary &done)
{
    std::string out = "status = ok\n";
    appendKvU64(out, "serve.requests", done.requests);
    appendKvU64(out, "serve.batched_cells", done.batchedCells);
    appendKvU64(out, "serve.queue_wait_micros", done.queueWaitMicros);
    appendKvU64(out, "serve.wall_micros", done.wallMicros);
    appendKvU64(out, "serve.cells_run", done.cellsRun);
    appendKvU64(out, "serve.cache_hits", done.cacheHits);
    appendKvU64(out, "serve.trace_decode_hits", done.traceDecodeHits);
    appendKvU64(out, "serve.trace_decode_misses", done.traceDecodeMisses);
    appendKvU64(out, "serve.cache_enabled", done.cacheEnabled ? 1 : 0);
    appendKvU64(out, "dump_bytes", done.dump.size());
    out += '\n';
    out += done.dump;
    return out;
}

bool
parseDone(std::string_view payload, DoneSummary &out, std::string *err)
{
    PayloadReader r{payload};
    std::string_view line;
    if (!r.nextLine(line) || line != "status = ok") {
        if (err)
            *err = "done frame without ok status";
        return false;
    }
    u64 dump_bytes = 0;
    bool have_bytes = false;
    while (r.nextLine(line)) {
        std::string_view k, v;
        if (!splitKeyValue(line, k, v)) {
            if (err)
                *err = "malformed done header line '" + std::string(line) +
                       "'";
            return false;
        }
        std::string vs(v);
        u64 u = 0;
        bool b = false;
        if (k == "serve.requests" && parseU64(vs, u)) {
            out.requests = u;
        } else if (k == "serve.batched_cells" && parseU64(vs, u)) {
            out.batchedCells = u;
        } else if (k == "serve.queue_wait_micros" && parseU64(vs, u)) {
            out.queueWaitMicros = u;
        } else if (k == "serve.wall_micros" && parseU64(vs, u)) {
            out.wallMicros = u;
        } else if (k == "serve.cells_run" && parseU64(vs, u)) {
            out.cellsRun = u;
        } else if (k == "serve.cache_hits" && parseU64(vs, u)) {
            out.cacheHits = u;
        } else if (k == "serve.trace_decode_hits" && parseU64(vs, u)) {
            out.traceDecodeHits = u;
        } else if (k == "serve.trace_decode_misses" && parseU64(vs, u)) {
            out.traceDecodeMisses = u;
        } else if (k == "serve.cache_enabled" && parseBool01(v, b)) {
            out.cacheEnabled = b;
        } else if (k == "dump_bytes" && parseU64(vs, u)) {
            dump_bytes = u;
            have_bytes = true;
        } else {
            if (err)
                *err = "bad done header line '" + std::string(line) + "'";
            return false;
        }
    }
    if (!have_bytes || !checkBlobSize(r, dump_bytes, "dump", err)) {
        if (err && err->empty())
            *err = "done frame missing dump_bytes";
        return false;
    }
    out.dump = std::string(r.rest());
    return true;
}

std::string
serializeBusy(u64 retryAfterMs, const std::string &why)
{
    std::string out = "busy\n";
    appendKvU64(out, "retry_after_ms", retryAfterMs);
    appendKv(out, "reason", why);
    return out;
}

bool
parseBusy(std::string_view payload, u64 &retryAfterMs, std::string *why)
{
    PayloadReader r{payload};
    std::string_view line;
    if (!r.nextLine(line) || line != "busy")
        return false;
    bool have_hint = false;
    while (r.nextLine(line)) {
        std::string_view k, v;
        if (!splitKeyValue(line, k, v))
            return false;
        if (k == "retry_after_ms") {
            if (!parseU64(std::string(v), retryAfterMs))
                return false;
            have_hint = true;
        } else if (k == "reason") {
            if (why)
                *why = std::string(v);
        }
        // Unknown busy keys are ignored: a newer server may add hints.
    }
    return have_hint;
}

} // namespace rsep::serve

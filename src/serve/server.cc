/**
 * @file
 * rsep_serve daemon implementation. See server.hh for the architecture
 * and protocol.hh for the wire format.
 */

#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "common/fault.hh"
#include "common/logging.hh"
#include "serve/protocol.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/sample_io.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"
#include "sim/thread_pool.hh"
#include "wl/trace_io.hh"
#include "wl/workload_spec.hh"

namespace rsep::serve
{

namespace
{

u64
microsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** Suite benchmark names (the bare keys a [workload] block may not
 *  shadow over the wire; see the header's determinism contract). */
bool
isSuiteName(const std::string &name)
{
    static const std::set<std::string> names = [] {
        std::set<std::string> s;
        for (const wl::WorkloadSpec &w : wl::suiteSpecs())
            s.insert(w.name);
        return s;
    }();
    return names.count(name) > 0;
}

/** Probe a Unix socket path: true when a live server answers. */
bool
socketAlive(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    bool alive = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) == 0;
    ::close(fd);
    return alive;
}

/** Ceiling on one request's cell count — a submit asking for more is
 *  malformed or hostile, not a workload this daemon should absorb. */
constexpr size_t maxRequestCells = 1u << 20;

} // namespace

/** One in-flight Submit: the request's matrix plus the bookkeeping its
 *  pool tasks share. Held by shared_ptr so cells streaming after a
 *  client vanished still have their slots. */
struct Server::PendingRequest
{
    std::vector<sim::SimConfig> configs;
    std::vector<std::string> hashes;
    std::vector<std::string> benchmarks;
    std::vector<sim::MatrixRow> rows;
    sim::TraceIoOptions traceIo;
    u64 sampleEvery = 0;
    bool useCache = false;

    int fd = -1;
    std::mutex *writeMtx = nullptr;
    std::atomic<bool> writeFailed{false};

    std::chrono::steady_clock::time_point t0;
    std::atomic<bool> sawFirstCell{false};
    std::atomic<u64> queueWaitMicros{0};
    std::atomic<u64> batchedCells{0};

    std::mutex mtx;
    std::condition_variable cv;
    size_t pendingCells = 0;

    /** First cell failure (empty = none): a contained rsep_fatal from
     *  a worker — the request answers Error instead of Done, the
     *  daemon keeps serving. */
    std::mutex failMtx;
    std::string failMsg;
};

Server::Server(ServeOptions o) : opts(std::move(o)) {}

Server::~Server() { stop(); }

bool
Server::start(std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        for (int i = 0; i < 2; ++i)
            if (wakePipe[i] >= 0) {
                ::close(wakePipe[i]);
                wakePipe[i] = -1;
            }
        return false;
    };

    if (running)
        return fail("server already started");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.empty() ||
        opts.socketPath.size() >= sizeof(addr.sun_path))
        return fail("socket path '" + opts.socketPath +
                    "' is empty or exceeds the " +
                    std::to_string(sizeof(addr.sun_path) - 1) +
                    "-byte AF_UNIX limit");
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    if (::pipe(wakePipe) != 0)
        return fail(std::string("pipe: ") + std::strerror(errno));

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        return fail(std::string("socket: ") + std::strerror(errno));

    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE)
            return fail(opts.socketPath + ": bind: " +
                        std::strerror(errno));
        // A socket file already exists. A live server owning it is an
        // error; a stale file left by a dead one is replaced.
        if (socketAlive(opts.socketPath))
            return fail(opts.socketPath +
                        ": a server is already listening here");
        ::unlink(opts.socketPath.c_str());
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail(opts.socketPath + ": bind: " +
                        std::strerror(errno));
    }
    if (::listen(listenFd, 64) != 0)
        return fail(opts.socketPath + ": listen: " +
                    std::strerror(errno));

    nJobs = sim::resolveJobs(opts.jobs);
    pool = std::make_unique<sim::ThreadPool>(nJobs);
    cache = std::make_unique<sim::ResultCache>(opts.cacheDir);
    stopping = false;
    running = true;
    acceptThread = std::thread(&Server::acceptLoop, this);

    if (opts.progress)
        std::fprintf(stderr,
                     "[serve] listening on %s (%u worker%s%s%s)\n",
                     opts.socketPath.c_str(), nJobs,
                     nJobs == 1 ? "" : "s",
                     cache->enabled() ? ", cache " : "",
                     cache->enabled() ? cache->dir().c_str() : "");
    return true;
}

void
Server::stop()
{
    if (!running)
        return;
    stopping = true;
    char wake = 1;
    (void)!::write(wakePipe[1], &wake, 1);
    if (acceptThread.joinable())
        acceptThread.join();

    // Kick every connection off its blocking read/write; their handler
    // threads then drain naturally (in-flight cells finish on the pool,
    // the final writes fail fast).
    {
        std::lock_guard<std::mutex> lk(connMtx);
        for (int fd : activeConnFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(connMtx);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();

    ::close(listenFd);
    listenFd = -1;
    ::unlink(opts.socketPath.c_str());
    for (int i = 0; i < 2; ++i) {
        ::close(wakePipe[i]);
        wakePipe[i] = -1;
    }
    pool.reset();
    cache.reset();
    running = false;
}

Server::Counters
Server::counters() const
{
    std::lock_guard<std::mutex> lk(countersMtx);
    return stats;
}

void
Server::acceptLoop()
{
    while (!stopping.load()) {
        pollfd fds[2] = {{listenFd, POLLIN, 0}, {wakePipe[0], POLLIN, 0}};
        int r = ::poll(fds, 2, -1);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // stop() woke us.
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0)
            continue;
        std::lock_guard<std::mutex> lk(connMtx);
        if (stopping.load()) {
            ::close(cfd);
            break;
        }
        activeConnFds.insert(cfd);
        connThreads.emplace_back([this, cfd] { handleConnection(cfd); });
    }
}

void
Server::sendError(int fd, std::mutex &write_mtx, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(countersMtx);
        ++stats.errors;
    }
    if (opts.progress)
        std::fprintf(stderr, "[serve] error: %s\n", msg.c_str());
    std::string err;
    std::lock_guard<std::mutex> lk(write_mtx);
    // Best effort, and deliberately not routed through "serve.send":
    // the error answer to an injected send fault must still reach the
    // client instead of re-triggering the same injection.
    writeFrame(fd, FrameType::Error, msg, &err);
}

void
Server::sendBusy(int fd, std::mutex &write_mtx, const std::string &why)
{
    // Retry-after hint scales with load; the exact value is advisory
    // (the client treats it as a backoff floor, not a promise).
    u64 hint_ms = 100 + 50ull * activeRequests.load();
    hint_ms = std::min<u64>(hint_ms, 2000);
    {
        std::lock_guard<std::mutex> lk(countersMtx);
        ++stats.busyRejections;
    }
    if (opts.progress)
        std::fprintf(stderr, "[serve] busy: %s (hint: retry in %llu ms)\n",
                     why.c_str(),
                     static_cast<unsigned long long>(hint_ms));
    std::string err;
    std::lock_guard<std::mutex> lk(write_mtx);
    writeFrame(fd, FrameType::Error, serializeBusy(hint_ms, why), &err);
}

void
Server::handleConnection(int fd)
{
    std::mutex write_mtx;
    std::string err;
    Frame f;
    bool clean = false;
    bool timed_out = false;
    bool io_failed = false;

    // Idle-connection reaping: a receive timeout on the socket bounds
    // how long a silent peer can pin a handler thread (and its fd)
    // between requests. In-flight requests are unaffected — the server
    // is writing, not reading, while a Submit runs.
    if (opts.idleTimeoutSec > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(opts.idleTimeoutSec);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    // A connection opens with a Hello exchange; anything else is a
    // protocol error and closes just this connection.
    if (!readFrame(fd, f, &err, &clean, "serve.recv", &timed_out,
                   &io_failed)) {
        if (timed_out) {
            if (opts.progress)
                std::fprintf(stderr, "[serve] reaping idle connection "
                                     "(no hello)\n");
        } else if (!clean && !io_failed) {
            // Protocol garbage over a healthy connection is answered;
            // a transport-level read failure is not — the peer is gone
            // (or the stream tore), and an Error frame down the same
            // broken transport would race the client into treating a
            // retryable drop as a server-side rejection.
            sendError(fd, write_mtx, "hello: " + err);
        }
    } else if (f.type != FrameType::Hello) {
        sendError(fd, write_mtx, "expected a hello frame first");
    } else if (!parseHello(f.payload, &err)) {
        sendError(fd, write_mtx, err);
    } else if (!writeFrame(fd, FrameType::Hello, helloPayload(), &err,
                           "serve.send")) {
        // Client vanished mid-handshake; nothing to answer.
    } else {
        for (;;) {
            clean = false;
            timed_out = false;
            io_failed = false;
            if (!readFrame(fd, f, &err, &clean, "serve.recv",
                           &timed_out, &io_failed)) {
                if (timed_out) {
                    if (opts.progress)
                        std::fprintf(stderr, "[serve] reaping idle "
                                             "connection\n");
                } else if (!clean && !io_failed) {
                    sendError(fd, write_mtx, err);
                }
                break;
            }
            if (f.type != FrameType::Submit) {
                sendError(fd, write_mtx,
                          "expected a submit frame (type " +
                              std::to_string(unsigned(FrameType::Submit)) +
                              "), got type " +
                              std::to_string(unsigned(f.type)));
                break;
            }
            if (!handleSubmit(fd, write_mtx, f.payload))
                break;
        }
    }

    ::close(fd);
    std::lock_guard<std::mutex> lk(connMtx);
    activeConnFds.erase(fd);
}

std::string
Server::preflight(const PendingRequest &req)
{
    // Everything runPhase would fatal on must be caught here: a daemon
    // dying on one client's typo is a denial of service to the rest.
    size_t total_cells = 0;
    u32 max_ckpts = 0;
    for (const sim::SimConfig &cfg : req.configs) {
        total_cells += size_t(cfg.checkpoints) * req.benchmarks.size();
        max_ckpts = std::max(max_ckpts, cfg.checkpoints);
    }
    if (total_cells > maxRequestCells)
        return "request spans " + std::to_string(total_cells) +
               " cells (limit " + std::to_string(maxRequestCells) + ")";

    for (const std::string &b : req.benchmarks) {
        std::optional<wl::WorkloadSpec> spec = wl::findWorkloadSpec(b);
        if (!spec)
            return "unknown benchmark '" + b +
                   "' (a qualified name@hash key needs its [workload] "
                   "block in the submitted scenario text)";
        if (req.traceIo.replayDir.empty())
            continue;
        // Replay cells: the trace must exist, checksum clean (header-
        // only read: checksummed, not decoded, so the preflight does
        // not warm the decode cache and skew serve.trace_decode_hits)
        // and match the cell identity. Hash equality implies program-
        // length equality (the program is generated from the spec).
        std::string whash = wl::workloadHash(*spec);
        for (u32 p = 0; p < max_ckpts; ++p) {
            std::string path =
                wl::tracePath(req.traceIo.replayDir, b, p);
            wl::TraceParse tp = wl::readTraceFile(path, true);
            if (!tp.ok())
                return "replay preflight: " + tp.error;
            if (tp.header.workload != b || tp.header.phase != p)
                return "replay preflight: " + path +
                       ": trace identity mismatch (records " +
                       tp.header.workload + " phase " +
                       std::to_string(tp.header.phase) + ")";
            if (tp.header.workloadHash != whash)
                return "replay preflight: " + path +
                       ": workload hash mismatch (trace " +
                       tp.header.workloadHash + ", spec " + whash + ")";
        }
    }
    return "";
}

bool
Server::handleSubmit(int fd, std::mutex &write_mtx,
                     const std::string &payload)
{
    // Semantic rejections answer with an Error frame but keep the
    // connection: the frame itself was well-formed.
    SubmitRequest sub;
    std::string err;
    if (!parseSubmit(payload, sub, &err)) {
        sendError(fd, write_mtx, err);
        return true;
    }
    if (sub.retry > 0) {
        std::lock_guard<std::mutex> lk(countersMtx);
        ++stats.retriesServed;
    }

    // Admission control, cheapest gate first: a saturated queue answers
    // Busy (with a retry-after hint) before any parsing or registry
    // work is spent on the request.
    if (opts.maxQueueDepth > 0 &&
        activeRequests.load() >= opts.maxQueueDepth) {
        sendBusy(fd, write_mtx,
                 std::to_string(activeRequests.load()) +
                     " requests already in flight (--max-queue-depth " +
                     std::to_string(opts.maxQueueDepth) + ")");
        return true;
    }

    auto req = std::make_shared<PendingRequest>();
    req->fd = fd;
    req->writeMtx = &write_mtx;
    req->benchmarks = sub.benchmarks;
    req->sampleEvery = sub.sampleEvery;
    req->traceIo.replayDir = sub.replayDir;

    sim::ScenarioParse parsed =
        sim::parseScenarioText(sub.scnText, "<submit>");
    if (!parsed.ok()) {
        sendError(fd, write_mtx, "scenario parse: " + parsed.error);
        return true;
    }
    for (const wl::WorkloadSpec &w : parsed.workloads) {
        if (wl::workloadKey(w) != w.name && isSuiteName(w.name)) {
            sendError(fd, write_mtx,
                      "workload '" + w.name +
                          "' overrides a suite benchmark name; "
                          "rsep_serve rejects suite-name overrides "
                          "(another client's bare-name request would "
                          "silently resolve through it) — rename the "
                          "workload instead");
            return true;
        }
        wl::registerWorkload(w);
    }
    if (parsed.scenarios.empty()) {
        sendError(fd, write_mtx, "submit carries no [scenario] blocks");
        return true;
    }
    if (req->benchmarks.empty()) {
        sendError(fd, write_mtx, "submit names no benchmarks");
        return true;
    }
    for (const sim::Scenario &s : parsed.scenarios) {
        req->configs.push_back(s.config);
        req->hashes.push_back(sim::configHash(s.config));
    }

    std::string pre = preflight(*req);
    if (!pre.empty()) {
        sendError(fd, write_mtx, pre);
        return true;
    }

    // Mirror runMatrix: sampling bypasses the result cache (a cached
    // cell has no timeline), which keeps client-vs-direct byte-
    // identity across cache temperatures.
    req->useCache = cache->enabled() && req->sampleEvery == 0;

    size_t total_cells = 0;
    req->rows.resize(req->benchmarks.size());
    for (size_t b = 0; b < req->benchmarks.size(); ++b) {
        req->rows[b].benchmark = req->benchmarks[b];
        req->rows[b].byConfig.resize(req->configs.size());
        for (size_t c = 0; c < req->configs.size(); ++c) {
            sim::RunResult &rr = req->rows[b].byConfig[c];
            rr.benchmark = req->benchmarks[b];
            rr.configLabel = req->configs[c].label;
            rr.phases.resize(req->configs[c].checkpoints);
            total_cells += req->configs[c].checkpoints;
        }
    }

    // Cell-count admission: taking this request must not push the
    // server-wide in-flight cell gauge past the ceiling. A request
    // larger than the ceiling on its own is still admitted when the
    // server is otherwise empty — rejecting it forever would just loop
    // the client.
    if (opts.maxInflightCells > 0) {
        u64 cur = inflightCells.load();
        for (;;) {
            if (cur != 0 && cur + total_cells > opts.maxInflightCells) {
                sendBusy(fd, write_mtx,
                         std::to_string(cur) +
                             " cells in flight; admitting " +
                             std::to_string(total_cells) +
                             " more would exceed --max-inflight-cells " +
                             std::to_string(opts.maxInflightCells));
                return true;
            }
            if (inflightCells.compare_exchange_weak(cur,
                                                    cur + total_cells))
                break;
        }
    } else {
        inflightCells.fetch_add(total_cells);
    }

    req->pendingCells = total_cells;
    req->t0 = std::chrono::steady_clock::now();
    activeRequests.fetch_add(1);

    for (size_t b = 0; b < req->benchmarks.size(); ++b) {
        for (size_t c = 0; c < req->configs.size(); ++c) {
            for (u32 p = 0; p < req->configs[c].checkpoints; ++p) {
                pool->submit([this, req, b, c, p] {
                    runRequestCell(*req, b, c, p);
                    inflightCells.fetch_sub(1);
                    std::lock_guard<std::mutex> lk(req->mtx);
                    if (--req->pendingCells == 0)
                        req->cv.notify_all();
                });
            }
        }
    }

    if (total_cells > 0) {
        std::unique_lock<std::mutex> lk(req->mtx);
        req->cv.wait(lk, [&] { return req->pendingCells == 0; });
    }
    activeRequests.fetch_sub(1);
    u64 wall = microsSince(req->t0);

    // A contained cell failure (rsep_fatal caught on a worker) fails
    // this request with the first diagnostic; the daemon, the shared
    // caches and every other connection are untouched.
    {
        std::lock_guard<std::mutex> flk(req->failMtx);
        if (!req->failMsg.empty()) {
            sendError(fd, write_mtx, req->failMsg);
            return !req->writeFailed.load();
        }
    }

    // Request accounting from the finished cells.
    u64 cache_hits = 0, cells_run = 0, dec_hits = 0, dec_misses = 0;
    for (const sim::MatrixRow &row : req->rows) {
        for (const sim::RunResult &rr : row.byConfig) {
            for (const sim::PhaseResult &ph : rr.phases) {
                if (ph.fromCache)
                    ++cache_hits;
                else
                    ++cells_run;
                if (ph.replayed)
                    ++(ph.traceDecodeHit ? dec_hits : dec_misses);
            }
        }
    }

    DoneSummary done;
    done.batchedCells = req->batchedCells.load();
    done.queueWaitMicros = req->queueWaitMicros.load();
    done.wallMicros = wall;
    done.cellsRun = cells_run;
    done.cacheHits = cache_hits;
    done.traceDecodeHits = dec_hits;
    done.traceDecodeMisses = dec_misses;
    done.cacheEnabled = req->useCache;
    {
        std::lock_guard<std::mutex> lk(countersMtx);
        done.requests = ++stats.requests;
        stats.cellsRun += cells_run;
        stats.cacheHits += cache_hits;
        stats.batchedCells += done.batchedCells;
        stats.traceDecodeHits += dec_hits;
        stats.traceDecodeMisses += dec_misses;
        stats.queueWaitMicros += done.queueWaitMicros;
    }

    // The canonical reference dump the client checks its reconstruction
    // against: same collector, same sink, no timings — byte-identical
    // to what a direct run of this request would export.
    std::vector<sim::StatRow> stat_rows =
        sim::collectStatRows(req->configs, req->rows, false);
    std::ostringstream os;
    sim::CsvStatSink{}.write(os, stat_rows);
    done.dump = os.str();

    if (opts.progress)
        std::fprintf(stderr,
                     "[serve] request %llu: %zu cells (%llu run, %llu "
                     "cached, %llu batched) in %.1f ms\n",
                     static_cast<unsigned long long>(done.requests),
                     total_cells,
                     static_cast<unsigned long long>(cells_run),
                     static_cast<unsigned long long>(cache_hits),
                     static_cast<unsigned long long>(done.batchedCells),
                     double(wall) / 1000.0);

    if (req->writeFailed.load())
        return false;
    std::lock_guard<std::mutex> lk(write_mtx);
    return writeFrame(fd, FrameType::Done, serializeDone(done), &err,
                      "serve.send");
}

void
Server::runRequestCell(PendingRequest &req, size_t b, size_t c, u32 p)
{
    if (!req.sawFirstCell.exchange(true))
        req.queueWaitMicros.store(microsSince(req.t0));
    if (activeRequests.load() > 1)
        ++req.batchedCells;

    auto failCell = [&](const std::string &why) {
        std::lock_guard<std::mutex> lk(req.failMtx);
        if (req.failMsg.empty())
            req.failMsg = "cell (" + req.benchmarks[b] + ", config " +
                          std::to_string(c) + ", phase " +
                          std::to_string(p) + "): " + why;
    };

    // "serve.cell": delay stalls this one cell (straggler simulation);
    // an errno mode fails it outright, exercising the containment path
    // without needing a real on-disk corruption.
    if (fault::Injected inj = fault::point("serve.cell")) {
        if (inj.kind == fault::Kind::Delay) {
            fault::sleepMicros(inj.amount);
        } else {
            failCell(std::string("injected ") + std::strerror(inj.err));
            return;
        }
    }

    sim::PhaseResult pr;
    try {
        // Anything runPhase fatals on past preflight (a trace torn on
        // disk after validation, an injected decode fault) must fail
        // this request, not the daemon.
        ScopedFatalCapture capture;
        pr = sim::runCachedCell(req.useCache ? cache.get() : nullptr,
                                req.configs[c], req.benchmarks[b],
                                req.hashes[c], p, req.traceIo,
                                req.sampleEvery);
    } catch (const FatalError &e) {
        failCell(e.what());
        return;
    }

    if (!req.writeFailed.load()) {
        CellResult cell;
        cell.benchmark = req.benchmarks[b];
        cell.config = static_cast<u32>(c);
        cell.phase = p;
        cell.fromCache = pr.fromCache;
        cell.replayed = pr.replayed;
        cell.decodeHit = pr.traceDecodeHit;
        cell.traceLoadMicros = pr.traceLoadMicros;
        sim::CacheKey key{req.benchmarks[b], req.hashes[c], p,
                          req.configs[c].seed};
        cell.record = sim::ResultCache::serializeRecord(key, pr);

        std::string sframe;
        if (req.sampleEvery > 0 && !pr.samples.empty()) {
            SamplesFrame sf;
            sf.benchmark = req.benchmarks[b];
            sf.config = static_cast<u32>(c);
            sf.phase = p;
            sim::SampleSeriesHeader h;
            h.workload = req.benchmarks[b];
            h.scenario = req.configs[c].label;
            h.configHash = req.hashes[c];
            h.phase = p;
            h.period = req.sampleEvery;
            sf.rts = sim::serializeSamples(h, pr.samples);
            sframe = serializeSamplesFrame(sf);
        }

        // Cell then its Samples under one lock hold, so the pair stays
        // adjacent in the stream even while other cells interleave.
        std::string werr;
        std::lock_guard<std::mutex> lk(*req.writeMtx);
        if (!writeFrame(req.fd, FrameType::Cell, serializeCell(cell),
                        &werr, "serve.send") ||
            (!sframe.empty() && !writeFrame(req.fd, FrameType::Samples,
                                            sframe, &werr,
                                            "serve.send")))
            req.writeFailed.store(true);
    }

    req.rows[b].byConfig[c].phases[p] = std::move(pr);
}

} // namespace rsep::serve

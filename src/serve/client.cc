/**
 * @file
 * rsep_serve client implementation. See client.hh.
 */

#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/logging.hh"
#include "serve/protocol.hh"
#include "sim/result_cache.hh"
#include "sim/sample_io.hh"
#include "sim/stat_export.hh"
#include "wl/workload_spec.hh"

namespace rsep::serve
{

namespace
{

/** Distinct-exit-code sibling of rsep_fatal for the failure classes
 *  fleet scripts dispatch on (client.hh exit* constants). */
[[noreturn]] void
clientExit(int code, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(code);
}

/** Wall-clock budget of one runMatrixRemote call (`--deadline`). */
struct Deadline
{
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    u64 limitMs = 0;

    bool armed() const { return limitMs > 0; }

    u64
    elapsedMs() const
    {
        return static_cast<u64>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }

    bool expired() const { return armed() && elapsedMs() >= limitMs; }

    u64
    remainingMs() const
    {
        u64 e = elapsedMs();
        return e >= limitMs ? 0 : limitMs - e;
    }
};

/** Bound the next blocking read by the request deadline (SO_RCVTIMEO);
 *  exits exitDeadline when the budget is already gone. */
void
applyReadBudget(int fd, const Deadline &dl, const char *while_doing)
{
    if (!dl.armed())
        return;
    u64 rem = dl.remainingMs();
    if (rem == 0)
        clientExit(exitDeadline,
                   std::string("--connect: --deadline of ") +
                       std::to_string(dl.limitMs) + " ms exceeded " +
                       while_doing);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(rem / 1000);
    tv.tv_usec = static_cast<suseconds_t>((rem % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** One connect attempt: fd, or -1 with errno text in @p err. Only a
 *  misconfigured path is immediately fatal. */
int
connectOnce(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        rsep_fatal("--connect: socket path '%s' is empty or exceeds "
                   "the %zu-byte AF_UNIX limit",
                   path.c_str(), sizeof(addr.sun_path) - 1);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        rsep_fatal("--connect: socket: %s", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/** The request's `.scn` text: [workload] blocks for every qualified
 *  benchmark key, then the scenario arms — exactly what the server's
 *  parseScenarioText expects. */
std::string
buildScnText(const std::vector<sim::Scenario> &scenarios,
             const std::vector<std::string> &benchmarks)
{
    std::string text;
    for (const std::string &b : benchmarks) {
        if (b.find('@') == std::string::npos)
            continue; // pristine suite benchmark, known to the server.
        std::optional<wl::WorkloadSpec> spec = wl::findWorkloadSpec(b);
        if (!spec)
            rsep_fatal("--connect: benchmark '%s' is not in the local "
                       "workload registry; load its definition "
                       "(--workload-file) before connecting",
                       b.c_str());
        text += wl::serializeWorkload(*spec);
    }
    text += sim::serializeScenarios(scenarios);
    return text;
}

/** Why one conversation attempt ended without a verified Done. */
struct Transient
{
    int code = exitTruncated;
    std::string what;  ///< names the failed operation.
    u64 waitHintMs = 0; ///< server Busy retry-after hint.
};

using SampleSeries =
    std::map<std::tuple<size_t, size_t, u32>,
             std::pair<sim::SampleSeriesHeader,
                       std::vector<core::StatSample>>>;

} // namespace

std::vector<sim::MatrixRow>
runMatrixRemote(const std::vector<sim::Scenario> &scenarios,
                const std::vector<std::string> &benchmarks,
                const ClientOptions &opts)
{
    if (scenarios.empty() || benchmarks.empty())
        rsep_fatal("--connect: nothing to run (%zu scenarios, %zu "
                   "benchmarks)",
                   scenarios.size(), benchmarks.size());

    std::vector<sim::SimConfig> configs;
    std::vector<std::string> hashes;
    for (const sim::Scenario &s : scenarios) {
        configs.push_back(s.config);
        hashes.push_back(sim::configHash(s.config));
    }
    std::map<std::string, size_t> bench_index;
    for (size_t b = 0; b < benchmarks.size(); ++b)
        bench_index[benchmarks[b]] = b;

    size_t total_cells = 0;
    for (size_t c = 0; c < configs.size(); ++c)
        total_cells += size_t(configs[c].checkpoints) * benchmarks.size();

    const std::string scn_text = buildScnText(scenarios, benchmarks);
    Deadline dl;
    dl.limitMs = opts.deadlineMs;

    // One full conversation: connect, hello, submit, drain, verify.
    // Retried from scratch on a transient failure — Submit is
    // idempotent (the result cache answers bit-exactly and the dump is
    // hard-verified below), so every attempt that completes returns
    // byte-identical rows.
    auto attemptRequest = [&](unsigned attempt,
                              std::vector<sim::MatrixRow> &rows,
                              DoneSummary &done, SampleSeries &series,
                              Transient &t) -> bool {
        rows.assign(benchmarks.size(), sim::MatrixRow{});
        for (size_t b = 0; b < benchmarks.size(); ++b) {
            rows[b].benchmark = benchmarks[b];
            rows[b].byConfig.resize(configs.size());
            for (size_t c = 0; c < configs.size(); ++c) {
                sim::RunResult &rr = rows[b].byConfig[c];
                rr.benchmark = benchmarks[b];
                rr.configLabel = configs[c].label;
                rr.phases.resize(configs[c].checkpoints);
            }
        }
        std::vector<std::vector<std::vector<bool>>> filled(
            benchmarks.size(),
            std::vector<std::vector<bool>>(configs.size()));
        for (size_t b = 0; b < benchmarks.size(); ++b)
            for (size_t c = 0; c < configs.size(); ++c)
                filled[b][c].assign(configs[c].checkpoints, false);
        series.clear();

        // Connect, re-trying refused connects while --connect-timeout
        // budget remains (a daemon may still be warming up).
        std::string cerr_msg;
        int fd = connectOnce(opts.socketPath, &cerr_msg);
        if (fd < 0 && opts.connectTimeoutMs > 0) {
            auto c0 = std::chrono::steady_clock::now();
            while (fd < 0) {
                u64 waited = static_cast<u64>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - c0)
                        .count());
                if (waited >= opts.connectTimeoutMs || dl.expired())
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                fd = connectOnce(opts.socketPath, &cerr_msg);
            }
        }
        if (fd < 0) {
            t = {exitDaemonGone,
                 "--connect " + opts.socketPath + ": " + cerr_msg +
                     " (is rsep_serve running there?)",
                 0};
            return false;
        }
        struct FdCloser
        {
            int fd;
            ~FdCloser() { ::close(fd); }
        } closer{fd};

        std::string err;
        Frame f;
        bool clean = false, timed_out = false;

        if (!writeFrame(fd, FrameType::Hello, helloPayload(), &err,
                        "client.send")) {
            t = {exitTruncated, "--connect: hello: " + err, 0};
            return false;
        }
        applyReadBudget(fd, dl, "waiting for the hello reply");
        if (!readFrame(fd, f, &err, &clean, "client.recv", &timed_out)) {
            if (timed_out)
                clientExit(exitDeadline,
                           "--connect: --deadline exceeded waiting for "
                           "the hello reply");
            t = {clean ? exitDaemonGone : exitTruncated,
                 clean ? "--connect: daemon closed the connection "
                         "before answering hello"
                       : "--connect: hello reply: " + err,
                 0};
            return false;
        }
        if (f.type == FrameType::Error) {
            u64 hint = 0;
            std::string why;
            if (parseBusy(f.payload, hint, &why)) {
                t = {exitBusy, "rsep_serve busy: " + why, hint};
                return false;
            }
            rsep_fatal("rsep_serve: %s", f.payload.c_str());
        }
        if (f.type != FrameType::Hello || !parseHello(f.payload, &err))
            rsep_fatal("--connect: bad hello reply: %s", err.c_str());

        SubmitRequest sub;
        sub.benchmarks = benchmarks;
        sub.sampleEvery = opts.sampleEvery;
        sub.replayDir = opts.replayDir;
        sub.scnText = scn_text;
        sub.retry = attempt;
        if (!writeFrame(fd, FrameType::Submit, serializeSubmit(sub),
                        &err, "client.send")) {
            t = {exitTruncated, "--connect: submit: " + err, 0};
            return false;
        }

        if (opts.progress)
            std::fprintf(stderr,
                         "[connect] %zu benchmarks x %zu configs = %zu "
                         "cells on %s%s\n",
                         benchmarks.size(), configs.size(), total_cells,
                         opts.socketPath.c_str(),
                         attempt > 0 ? " (resubmit)" : "");

        size_t received = 0;
        for (;;) {
            clean = false;
            timed_out = false;
            applyReadBudget(fd, dl, "draining the result stream");
            if (!readFrame(fd, f, &err, &clean, "client.recv",
                           &timed_out)) {
                if (timed_out)
                    clientExit(exitDeadline,
                               "--connect: --deadline of " +
                                   std::to_string(dl.limitMs) +
                                   " ms exceeded draining the result "
                                   "stream (" +
                                   std::to_string(received) + " of " +
                                   std::to_string(total_cells) +
                                   " cells in)");
                if (clean)
                    t = {exitDaemonGone,
                         "--connect: daemon shut down cleanly "
                         "mid-drain (connection closed at a frame "
                         "boundary, " +
                             std::to_string(received) + " of " +
                             std::to_string(total_cells) +
                             " cells in)",
                         0};
                else
                    t = {exitTruncated,
                         "--connect: result stream: " + err + " (" +
                             std::to_string(received) + " of " +
                             std::to_string(total_cells) +
                             " cells in)",
                         0};
                return false;
            }
            if (f.type == FrameType::Error) {
                u64 hint = 0;
                std::string why;
                if (parseBusy(f.payload, hint, &why)) {
                    t = {exitBusy, "rsep_serve busy: " + why, hint};
                    return false;
                }
                rsep_fatal("rsep_serve: %s", f.payload.c_str());
            }
            if (f.type == FrameType::Done) {
                if (!parseDone(f.payload, done, &err))
                    rsep_fatal("--connect: done frame: %s", err.c_str());
                break;
            }
            if (f.type == FrameType::Cell) {
                CellResult cell;
                if (!parseCell(f.payload, cell, &err))
                    rsep_fatal("--connect: cell frame: %s", err.c_str());
                auto it = bench_index.find(cell.benchmark);
                if (it == bench_index.end() ||
                    cell.config >= configs.size() ||
                    cell.phase >= configs[cell.config].checkpoints)
                    rsep_fatal("--connect: cell frame names an unknown "
                               "cell (%s, config %u, phase %u)",
                               cell.benchmark.c_str(), cell.config,
                               cell.phase);
                size_t b = it->second, c = cell.config;
                sim::CacheKey key{cell.benchmark, hashes[c], cell.phase,
                                  configs[c].seed};
                sim::PhaseResult pr;
                std::string perr =
                    sim::ResultCache::parseRecord(cell.record, key, pr);
                if (!perr.empty())
                    rsep_fatal("--connect: cell record: %s",
                               perr.c_str());
                // The record round-trips the durable result; the
                // transient provenance flags travel in the frame
                // headers instead (parseRecord marks everything
                // fromCache).
                pr.fromCache = cell.fromCache;
                pr.replayed = cell.replayed;
                pr.traceDecodeHit = cell.decodeHit;
                pr.traceLoadMicros = cell.traceLoadMicros;
                if (filled[b][c][cell.phase])
                    rsep_fatal("--connect: duplicate cell (%s, config "
                               "%u, phase %u)",
                               cell.benchmark.c_str(), cell.config,
                               cell.phase);
                filled[b][c][cell.phase] = true;
                rows[b].byConfig[c].phases[cell.phase] = std::move(pr);
                ++received;
                if (opts.progress) {
                    const sim::PhaseResult &ph =
                        rows[b].byConfig[c].phases[cell.phase];
                    std::fprintf(
                        stderr,
                        "[%s] %-12s %-20s ckpt %u ipc=%.3f (%zu/%zu)\n",
                        ph.fromCache    ? "hit"
                        : ph.replayed   ? "rpl"
                                        : "run",
                        cell.benchmark.c_str(), configs[c].label.c_str(),
                        cell.phase, ph.ipc, received, total_cells);
                }
                continue;
            }
            if (f.type == FrameType::Samples) {
                SamplesFrame sf;
                if (!parseSamplesFrame(f.payload, sf, &err))
                    rsep_fatal("--connect: samples frame: %s",
                               err.c_str());
                auto it = bench_index.find(sf.benchmark);
                if (it == bench_index.end() ||
                    sf.config >= configs.size())
                    rsep_fatal("--connect: samples frame names an "
                               "unknown cell (%s, config %u)",
                               sf.benchmark.c_str(), sf.config);
                sim::SamplesParse sp =
                    sim::parseSamplesText(sf.rts, "<samples frame>");
                if (!sp.ok())
                    rsep_fatal("--connect: %s", sp.error.c_str());
                series[{it->second, sf.config, sf.phase}] = {
                    sp.header, std::move(sp.rows)};
                continue;
            }
            rsep_fatal("--connect: unexpected frame type %u mid-stream",
                       unsigned(f.type));
        }

        if (received != total_cells)
            rsep_fatal("--connect: server completed with %zu of %zu "
                       "cells delivered",
                       received, total_cells);
        return true;
    };

    std::vector<sim::MatrixRow> rows;
    DoneSummary done;
    SampleSeries sample_series;
    for (unsigned attempt = 0;; ++attempt) {
        Transient t;
        if (attemptRequest(attempt, rows, done, sample_series, t))
            break;
        if (dl.expired())
            clientExit(exitDeadline,
                       t.what + " — and the --deadline of " +
                           std::to_string(dl.limitMs) +
                           " ms is exhausted");
        if (attempt >= opts.maxRetries)
            clientExit(t.code,
                       t.what + " (after " +
                           std::to_string(attempt + 1) + " attempt" +
                           (attempt == 0 ? "" : "s") + ")");
        u64 wait = std::min<u64>(opts.backoffBaseMs << attempt, 2000);
        wait = std::max(wait, t.waitHintMs);
        if (dl.armed() && wait >= dl.remainingMs())
            clientExit(exitDeadline,
                       t.what + " — retry backoff of " +
                           std::to_string(wait) +
                           " ms would exceed the --deadline");
        if (opts.progress)
            std::fprintf(stderr,
                         "[connect] attempt %u/%u failed: %s — "
                         "retrying in %llu ms\n",
                         attempt + 1, opts.maxRetries + 1,
                         t.what.c_str(),
                         static_cast<unsigned long long>(wait));
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }

    // Mirror runMatrix's post-barrier accounting so --timings dumps
    // match a direct run against the server's cache configuration.
    for (auto &row : rows) {
        for (sim::RunResult &rr : row.byConfig) {
            for (const sim::PhaseResult &ph : rr.phases) {
                sim::accountPhaseTiming(rr.timing, ph);
                if (done.cacheEnabled && !ph.fromCache)
                    ++rr.timing.cacheMisses;
            }
        }
    }

    // Flush streamed series exactly like the local sampling path.
    if (opts.sampleEvery > 0) {
        sim::TimeSeriesSink sink(opts.sampleDir);
        for (size_t b = 0; b < benchmarks.size(); ++b)
            for (size_t c = 0; c < configs.size(); ++c)
                for (u32 p = 0; p < configs[c].checkpoints; ++p) {
                    auto it = sample_series.find({b, c, p});
                    if (it == sample_series.end())
                        continue;
                    sink.add(it->second.first,
                             std::move(it->second.second));
                }
        size_t n = sink.queued();
        std::string serr;
        if (!sink.flush(&serr))
            rsep_warn("sampling: %s", serr.c_str());
        else if (opts.progress)
            std::fprintf(stderr, "[samples] wrote %zu series to %s\n",
                         n, opts.sampleDir.c_str());
    }

    // Cross-check: our reconstruction must reproduce the server's
    // canonical dump byte for byte — the wire-level guarantee every
    // downstream export inherits.
    std::vector<sim::StatRow> stat_rows =
        sim::collectStatRows(configs, rows, false);
    std::ostringstream os;
    sim::CsvStatSink{}.write(os, stat_rows);
    if (os.str() != done.dump)
        rsep_fatal("--connect: reconstructed dump diverges from the "
                   "server's reference (%zu vs %zu bytes) — "
                   "client/server build mismatch?",
                   os.str().size(), done.dump.size());

    if (opts.progress)
        std::fprintf(stderr,
                     "[connect] done: %llu run, %llu cached, %llu "
                     "batched; queue %.1f ms, wall %.1f ms "
                     "(server request #%llu)\n",
                     static_cast<unsigned long long>(done.cellsRun),
                     static_cast<unsigned long long>(done.cacheHits),
                     static_cast<unsigned long long>(done.batchedCells),
                     double(done.queueWaitMicros) / 1000.0,
                     double(done.wallMicros) / 1000.0,
                     static_cast<unsigned long long>(done.requests));

    return rows;
}

} // namespace rsep::serve

/**
 * @file
 * A contiguous power-of-two ring buffer with deque semantics
 * (push_back / pop_front / pop_back / random access), built for the
 * cycle-loop hot path: the ROB, the frontend queue and the TraceBuffer
 * window are all age-ordered sliding windows that deque'd through
 * malloc on every push. The ring reserves once and then recycles
 * slots — zero steady-state allocation, indexing is a mask and an
 * add — while keeping the "position = seq - front-seq" contiguity the
 * O(1) findBySeq contract relies on.
 *
 * Capacity grows on demand (doubling, elements moved in age order), so
 * a caller that reserves its worst case up front never reallocates.
 */

#ifndef RSEP_COMMON_RING_BUFFER_HH
#define RSEP_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace rsep
{

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    explicit RingBuffer(size_t capacity_hint) { reserve(capacity_hint); }

    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    size_t capacity() const { return buf.size(); }

    /** Ensure room for @p n elements without reallocation. */
    void
    reserve(size_t n)
    {
        if (n > buf.size())
            regrow(n);
    }

    T &
    operator[](size_t i)
    {
        return buf[(head + i) & mask];
    }

    const T &
    operator[](size_t i) const
    {
        return buf[(head + i) & mask];
    }

    T &front() { return buf[head]; }
    const T &front() const { return buf[head]; }
    T &back() { return buf[(head + count - 1) & mask]; }
    const T &back() const { return buf[(head + count - 1) & mask]; }

    void
    push_back(T v)
    {
        if (count == buf.size())
            regrow(count ? count * 2 : 16);
        buf[(head + count) & mask] = std::move(v);
        ++count;
    }

    /** Append a default-constructed element in place and return it —
     *  the caller fills it in the ring slot, avoiding a large-object
     *  copy. The recycled slot is reset by constructing directly into
     *  it (no temporary + assignment round trip). */
    T &
    emplace_back()
    {
        if (count == buf.size())
            regrow(count ? count * 2 : 16);
        T &slot = buf[(head + count) & mask];
        slot.~T();
        new (&slot) T{};
        ++count;
        return slot;
    }

    void
    pop_front()
    {
        if (count == 0)
            rsep_panic("ring buffer pop_front on empty buffer");
        if constexpr (!std::is_trivially_destructible_v<T>)
            buf[head] = T{}; // drop held resources eagerly.
        head = (head + 1) & mask;
        --count;
    }

    void
    pop_back()
    {
        if (count == 0)
            rsep_panic("ring buffer pop_back on empty buffer");
        --count;
        if constexpr (!std::is_trivially_destructible_v<T>)
            buf[(head + count) & mask] = T{};
    }

    /** Drop every element; capacity is retained. */
    void
    clear()
    {
        while (count)
            pop_back();
        head = 0;
    }

  private:
    void
    regrow(size_t need)
    {
        size_t cap = buf.empty() ? 16 : buf.size();
        while (cap < need)
            cap *= 2;
        std::vector<T> next(cap);
        for (size_t i = 0; i < count; ++i)
            next[i] = std::move(buf[(head + i) & mask]);
        buf = std::move(next);
        head = 0;
        mask = buf.size() - 1;
    }

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
    size_t mask = 0;
};

} // namespace rsep

#endif // RSEP_COMMON_RING_BUFFER_HH

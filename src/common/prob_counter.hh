/**
 * @file
 * Confidence estimation counters for value/distance prediction.
 *
 * The paper (footnotes 3-4, Section IV-C) uses 3-bit *probabilistic*
 * confidence counters in the style of Riley & Zilles / Perais & Seznec
 * (FPC): a narrow counter whose increments succeed only with some
 * probability, emulating a much deeper counter (effective depth ~255)
 * in 3 bits. Prediction is allowed only when the counter is saturated.
 *
 * Two embodiments are provided behind one interface:
 *  - Deterministic: a plain 8-bit counter saturating at 255 (the
 *    "effective" model the paper reasons with; default for experiments
 *    because it is noise-free).
 *  - Probabilistic (FPC): 3-bit counter with a per-level increment
 *    probability vector whose expected total trial count ~= 255.
 *
 * The *training thresholds* used for sampled training (start_train = 15
 * or 63 in Fig. 6) are expressed on the effective 0..255 scale; the FPC
 * embodiment maps them onto expected-trial equivalents.
 */

#ifndef RSEP_COMMON_PROB_COUNTER_HH
#define RSEP_COMMON_PROB_COUNTER_HH

#include <array>
#include <cassert>

#include "common/rng.hh"
#include "common/types.hh"

namespace rsep
{

/** Which confidence embodiment to simulate. */
enum class ConfidenceKind : u8 {
    Deterministic8, ///< 8-bit counter, saturates at 255.
    Fpc3,           ///< 3-bit forward probabilistic counter.
};

/**
 * FPC probability vector: probability denominator for advancing from
 * level i to i+1 (numerator is 1). Expected trials to saturate:
 * 1 + 1 + 16 + 16 + 32 + 64 + 128 = 258 ~= 255.
 */
constexpr std::array<u32, 7> fpc3Denominators = {1, 1, 16, 16, 32, 64, 128};

/** Expected effective count represented by FPC level i (cumulative). */
constexpr std::array<u32, 8>
fpc3EffectiveLevels()
{
    std::array<u32, 8> eff{};
    u32 acc = 0;
    eff[0] = 0;
    for (unsigned i = 0; i < 7; ++i) {
        acc += fpc3Denominators[i];
        eff[i + 1] = acc;
    }
    return eff;
}

/**
 * A confidence counter with an effective 0..255 scale.
 *
 * All predictors talk to this class in terms of the effective scale:
 * effectiveValue() in [0,255], saturated() meaning "predict now".
 */
class ConfidenceCounter
{
  public:
    ConfidenceCounter(ConfidenceKind kind = ConfidenceKind::Deterministic8)
        : knd(kind), level(0)
    {
    }

    /**
     * Record a correct outcome. @p rng is used only by the FPC
     * embodiment (may be null for Deterministic8).
     */
    void
    onCorrect(Rng *rng)
    {
        if (knd == ConfidenceKind::Deterministic8) {
            if (level < 255)
                ++level;
        } else {
            if (level >= 7)
                return;
            u32 den = fpc3Denominators[level];
            assert(den >= 1);
            if (den == 1 || (rng && rng->chance(1, den)))
                ++level;
        }
    }

    /** Record an incorrect outcome: confidence resets to zero. */
    void onIncorrect() { level = 0; }

    /** Reset (e.g., on entry replacement). */
    void reset() { level = 0; }

    /** True when prediction should be used. */
    bool
    saturated() const
    {
        return knd == ConfidenceKind::Deterministic8 ? level == 255
                                                     : level == 7;
    }

    /** Confidence on the effective 0..255(+) scale. */
    u32
    effectiveValue() const
    {
        if (knd == ConfidenceKind::Deterministic8)
            return level;
        constexpr auto eff = fpc3EffectiveLevels();
        return eff[level];
    }

    /** Raw stored level (for storage-cost accounting / tests). */
    u32 rawLevel() const { return level; }

    /** Storage bits needed by this embodiment. */
    unsigned
    storageBits() const
    {
        return knd == ConfidenceKind::Deterministic8 ? 8 : 3;
    }

    ConfidenceKind kind() const { return knd; }

  private:
    ConfidenceKind knd;
    u32 level;
};

} // namespace rsep

#endif // RSEP_COMMON_PROB_COUNTER_HH

/**
 * @file
 * The repo's one FNV-1a 64 definition plus the 16-hex-digit spelling
 * helpers. Every stable identity key (config hash, workload hash,
 * cache-record checksum, trace checksum) is this exact hash of a
 * canonical byte string — keep one definition so they cannot drift.
 */

#ifndef RSEP_COMMON_FNV_HH
#define RSEP_COMMON_FNV_HH

#include <cstdio>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace rsep
{

/** FNV-1a 64 of a byte string (string_view: hashes in place, so an
 *  mmap'd payload is checksummed without a userspace copy). */
inline u64
fnv1a64(std::string_view s)
{
    u64 h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Canonical 16-hex-digit spelling of a 64-bit value. */
inline std::string
hex64(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Strict parse of a <= 16-digit lowercase hex string. */
inline bool
parseHex64(const std::string &s, u64 &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    out = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        out = (out << 4) | static_cast<u64>(d);
    }
    return true;
}

} // namespace rsep

#endif // RSEP_COMMON_FNV_HH

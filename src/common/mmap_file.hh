/**
 * @file
 * Read-only memory-mapped file view with a graceful read() fallback.
 *
 * The trace data path decodes `.rtr` payloads straight out of the page
 * cache: MmapFile maps the file PROT_READ/MAP_PRIVATE and hands out a
 * string_view over the mapping, so repeated decodes of a hot trace
 * never copy the bytes through userspace buffers (cf. ifstream +
 * stringstream, which pays two full copies per read).
 *
 * Fallback semantics: when mmap is unavailable — zero-length files
 * (mmap(0) is EINVAL), filesystems that refuse mappings, or the
 * `RSEP_NO_MMAP` environment override — the file is read() into a heap
 * buffer instead and the view points at that. Callers cannot tell the
 * difference except through mapped(); every consumer must work
 * identically on both paths (pinned by tests/test_trace_cache.cc).
 */

#ifndef RSEP_COMMON_MMAP_FILE_HH
#define RSEP_COMMON_MMAP_FILE_HH

#include <string>
#include <string_view>
#include <vector>

namespace rsep
{

class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile() { close(); }

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    MmapFile(MmapFile &&other) noexcept { *this = std::move(other); }
    MmapFile &
    operator=(MmapFile &&other) noexcept
    {
        if (this != &other) {
            close();
            map = other.map;
            mapBytes = other.mapBytes;
            buffer = std::move(other.buffer);
            bytes = other.bytes;
            isOpen = other.isOpen;
            other.map = nullptr;
            other.mapBytes = 0;
            other.bytes = {};
            other.isOpen = false;
        }
        return *this;
    }

    /**
     * Map (or, on fallback, read) @p path. Any previous mapping is
     * released first. False + @p err ("path: message") when the file
     * cannot be opened or read; an mmap refusal alone is not an error
     * (the read fallback engages).
     */
    bool open(const std::string &path, std::string *err = nullptr);

    /** The file contents; valid until close()/destruction/reopen. */
    std::string_view view() const { return bytes; }

    bool ok() const { return isOpen; }

    /** True when view() is backed by an actual mapping (false: heap
     *  buffer fallback). Diagnostic only — never branch behaviour. */
    bool mapped() const { return map != nullptr; }

    void close();

  private:
    void *map = nullptr; ///< mmap base, nullptr on the fallback path.
    size_t mapBytes = 0; ///< mapped length (may exceed view size: 0-pad).
    std::vector<char> buffer;
    std::string_view bytes;
    bool isOpen = false;
};

} // namespace rsep

#endif // RSEP_COMMON_MMAP_FILE_HH

/**
 * @file
 * Registry behind common/fault.hh: spec parsing, per-point hit/fired
 * accounting, and the deterministic fire-or-not decision.
 */

#include "common/fault.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"

namespace rsep::fault
{

namespace detail
{
std::atomic<bool> anyArmed{false};
} // namespace detail

namespace
{

struct PointSpec {
    std::string name;
    u64 after = 0;       // hits to skip before firing
    u64 count = 1;       // injections before auto-disarm (0 = unlimited)
    double rate = -1.0;  // <0: unconditional; else per-hit probability
    u64 seed = 1;        // rate-mode hash seed
    Kind kind = Kind::Errno;
    int err = EIO;
    u64 amount = 0;      // bytes (short/truncate) or micros (delay)

    u64 hits = 0;
    u64 fired = 0;
};

std::mutex registryMtx;
std::vector<PointSpec> registry;

/** splitmix64 finalizer: one well-mixed word from (seed, hit index). */
u64
mix(u64 seed, u64 hit)
{
    u64 z = seed + 0x9e3779b97f4a7c15ull * (hit + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool
parseFailMode(const std::string &mode, PointSpec &p, std::string *err)
{
    if (mode == "econnreset") {
        p.kind = Kind::Errno;
        p.err = ECONNRESET;
    } else if (mode == "epipe") {
        p.kind = Kind::Errno;
        p.err = EPIPE;
    } else if (mode == "enospc") {
        p.kind = Kind::Errno;
        p.err = ENOSPC;
    } else if (mode == "eio") {
        p.kind = Kind::Errno;
        p.err = EIO;
    } else if (mode == "eintr") {
        p.kind = Kind::Errno;
        p.err = EINTR;
    } else if (mode == "short") {
        p.kind = Kind::ShortWrite;
        p.err = ECONNRESET;
    } else if (mode == "truncate") {
        p.kind = Kind::Truncate;
    } else if (mode == "delay") {
        p.kind = Kind::Delay;
    } else {
        if (err)
            *err = "unknown fail mode '" + mode +
                   "' (econnreset|epipe|enospc|eio|eintr|short|truncate|"
                   "delay)";
        return false;
    }
    return true;
}

/** Parse one `point[:key=value]...` clause into @p out. */
bool
parseOneSpec(const std::string &clause, PointSpec &out, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = "fault spec '" + clause + "': " + why;
        return false;
    };

    size_t pos = clause.find(':');
    out.name = trimmed(clause.substr(0, pos));
    if (out.name.empty())
        return fail("empty point name");

    u64 msSet = 50;    // delay default
    u64 bytesSet = 1;  // short/truncate default
    while (pos != std::string::npos) {
        size_t next = clause.find(':', pos + 1);
        std::string kv = clause.substr(
            pos + 1, next == std::string::npos ? std::string::npos
                                               : next - pos - 1);
        pos = next;
        size_t eq = kv.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got '" + kv + "'");
        std::string key = trimmed(kv.substr(0, eq));
        std::string val = trimmed(kv.substr(eq + 1));
        if (key == "after") {
            if (!parseU64(val, out.after))
                return fail("bad after count '" + val + "'");
        } else if (key == "count") {
            if (!parseU64(val, out.count))
                return fail("bad count '" + val + "'");
        } else if (key == "rate") {
            if (!parseDouble(val, out.rate) || out.rate <= 0.0 ||
                out.rate > 1.0)
                return fail("rate must be in (0, 1], got '" + val + "'");
        } else if (key == "seed") {
            if (!parseU64(val, out.seed))
                return fail("bad seed '" + val + "'");
        } else if (key == "fail") {
            if (!parseFailMode(val, out, err))
                return false;
        } else if (key == "ms") {
            if (!parseU64(val, msSet))
                return fail("bad ms '" + val + "'");
        } else if (key == "bytes") {
            if (!parseU64(val, bytesSet))
                return fail("bad bytes '" + val + "'");
        } else {
            return fail("unknown key '" + key + "'");
        }
    }

    if (out.kind == Kind::Delay)
        out.amount = msSet * 1000; // ms -> micros
    else if (out.kind == Kind::ShortWrite || out.kind == Kind::Truncate)
        out.amount = bytesSet;
    return true;
}

} // namespace

bool
armFromSpec(const std::string &spec, std::string *err)
{
    std::vector<PointSpec> parsed;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find_first_of(",;", start);
        std::string clause = trimmed(
            spec.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start));
        start = end == std::string::npos ? spec.size() + 1 : end + 1;
        if (clause.empty())
            continue;
        PointSpec p;
        if (!parseOneSpec(clause, p, err))
            return false;
        parsed.push_back(std::move(p));
    }
    if (parsed.empty()) {
        if (err)
            *err = "fault spec '" + spec + "': no point clauses";
        return false;
    }

    std::lock_guard<std::mutex> lk(registryMtx);
    for (PointSpec &p : parsed)
        registry.push_back(std::move(p));
    detail::anyArmed.store(true, std::memory_order_relaxed);
    return true;
}

void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *spec = std::getenv("RSEP_FAULT");
        if (!spec || !*spec)
            return;
        std::string err;
        if (!armFromSpec(spec, &err))
            rsep_fatal("RSEP_FAULT: %s", err.c_str());
    });
}

void
disarmAll()
{
    std::lock_guard<std::mutex> lk(registryMtx);
    registry.clear();
    detail::anyArmed.store(false, std::memory_order_relaxed);
}

u64
hitCount(std::string_view name)
{
    std::lock_guard<std::mutex> lk(registryMtx);
    u64 n = 0;
    for (const PointSpec &p : registry)
        if (p.name == name)
            n += p.hits;
    return n;
}

u64
firedCount(std::string_view name)
{
    std::lock_guard<std::mutex> lk(registryMtx);
    u64 n = 0;
    for (const PointSpec &p : registry)
        if (p.name == name)
            n += p.fired;
    return n;
}

void
sleepMicros(u64 micros)
{
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

namespace detail
{

Injected
pointSlow(std::string_view name)
{
    std::lock_guard<std::mutex> lk(registryMtx);
    for (PointSpec &p : registry) {
        if (p.name != name)
            continue;
        u64 hit = p.hits++;
        if (hit < p.after)
            continue;
        if (p.count != 0 && p.fired >= p.count)
            continue;
        if (p.rate > 0.0) {
            double draw =
                static_cast<double>(mix(p.seed, hit) >> 11) * 0x1.0p-53;
            if (draw >= p.rate)
                continue;
        }
        ++p.fired;
        Injected inj;
        inj.kind = p.kind;
        inj.err = p.err;
        inj.amount = p.amount;
        return inj;
    }
    return {};
}

} // namespace detail

} // namespace rsep::fault

#include "common/mmap_file.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/env.hh"

namespace rsep
{

namespace
{

bool
mmapDisabled()
{
    // Resolved once: the override exists for tests and for hosts whose
    // filesystem misbehaves under mmap, neither of which toggles
    // mid-process.
    static const bool disabled = envSet("RSEP_NO_MMAP");
    return disabled;
}

} // namespace

void
MmapFile::close()
{
    if (map) {
        ::munmap(map, mapBytes);
        map = nullptr;
        mapBytes = 0;
    }
    buffer.clear();
    buffer.shrink_to_fit();
    bytes = {};
    isOpen = false;
}

bool
MmapFile::open(const std::string &path, std::string *err)
{
    close();
    auto fail = [&](const char *what) {
        if (err)
            *err = path + ": " + what + ": " + std::strerror(errno);
        return false;
    };

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return fail("cannot stat");
    }
    size_t size = static_cast<size_t>(st.st_size);

    if (size > 0 && !mmapDisabled()) {
        void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p != MAP_FAILED) {
            // Trace decode is a single forward pass; tell the kernel.
            ::madvise(p, size, MADV_SEQUENTIAL);
            ::close(fd);
            map = p;
            mapBytes = size;
            bytes = {static_cast<const char *>(p), size};
            isOpen = true;
            return true;
        }
        // Fall through to the read path: some filesystems (and size
        // changes racing the stat) refuse mappings; that is a
        // degradation, not an error.
    }

    buffer.resize(size);
    size_t got = 0;
    while (got < size) {
        ssize_t n = ::read(fd, buffer.data() + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int saved = errno;
            ::close(fd);
            buffer.clear();
            errno = saved;
            return fail("read failed");
        }
        if (n == 0)
            break; // file shrank under us; expose what we got.
        got += static_cast<size_t>(n);
    }
    ::close(fd);
    buffer.resize(got);
    bytes = {buffer.data(), got};
    isOpen = true;
    return true;
}

} // namespace rsep

#include "common/stats.hh"

#include <cmath>
#include <iomanip>

namespace rsep
{

u64
StatGroup::counterValue(const std::string &stat_name) const
{
    for (const auto &ref : counters) {
        if (ref.name == stat_name)
            return ref.counter->value();
    }
    return 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---------- " << name << " ----------\n";
    for (const auto &ref : counters) {
        os << std::left << std::setw(40) << (name + "." + ref.name)
           << " " << std::right << std::setw(14) << ref.counter->value();
        if (!ref.desc.empty())
            os << "  # " << ref.desc;
        os << "\n";
    }
    for (const auto &ref : histograms) {
        os << std::left << std::setw(40) << (name + "." + ref.name)
           << " samples=" << ref.hist->samples()
           << " mean=" << std::fixed << std::setprecision(3)
           << ref.hist->mean();
        if (!ref.desc.empty())
            os << "  # " << ref.desc;
        os << "\n";
    }
}

double
harmonicMean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : vals) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(vals.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : vals)
        sum += v;
    return sum / static_cast<double>(vals.size());
}

double
geometricMean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : vals) {
        if (v <= 0.0)
            return 0.0;
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(vals.size()));
}

} // namespace rsep

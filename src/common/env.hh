/**
 * @file
 * Environment-variable helpers for scaling experiment sizes.
 */

#ifndef RSEP_COMMON_ENV_HH
#define RSEP_COMMON_ENV_HH

#include <string>

#include "common/types.hh"

namespace rsep
{

/** Read an integer env var; return @p def when unset/invalid. */
u64 envU64(const char *name, u64 def);

/** Read a floating-point env var; return @p def when unset/invalid. */
double envDouble(const char *name, double def);

/**
 * Global simulation scale factor (RSEP_SIM_SCALE, default 1.0).
 * Experiment drivers multiply warmup/measure windows by this.
 */
double simScale();

} // namespace rsep

#endif // RSEP_COMMON_ENV_HH

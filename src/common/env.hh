/**
 * @file
 * Environment-variable helpers for scaling experiment sizes, plus the
 * strict scalar parsers shared by the env layer, the `--jobs` flag and
 * the scenario-file parser.
 */

#ifndef RSEP_COMMON_ENV_HH
#define RSEP_COMMON_ENV_HH

#include <string>

#include "common/types.hh"

namespace rsep
{

/** Copy of @p s without leading/trailing ASCII whitespace. */
std::string trimmed(const std::string &s);

// ------------------------------------------------- strict scalar parses
// Full-string parses: leading/trailing whitespace is tolerated, any
// other trailing garbage (or an empty string, or a negative value for
// the unsigned parse) fails.

bool parseU64(const std::string &s, u64 &out);
/** Signed variant: an optional leading '-' then the parseU64 grammar. */
bool parseS64(const std::string &s, s64 &out);
/** parseU64 plus an optional k/M/G suffix (decimal powers of 1000:
 *  "10k" = 10000) for cycle-count flags like `--sample-every`. */
bool parseScaledU64(const std::string &s, u64 &out);
bool parseDouble(const std::string &s, double &out);
/** Accepts true/false, yes/no, on/off, 1/0 (case-insensitive). */
bool parseBool(const std::string &s, bool &out);

// --------------------------------------------------------- env accessors

/** True when @p name is set to a non-empty value. */
bool envSet(const char *name);

/**
 * Read an integer env var; return @p def when unset. A set-but-
 * malformed value (non-numeric, trailing garbage, negative, overflow)
 * warns once on stderr and returns @p def instead of being silently
 * ignored or truncated.
 */
u64 envU64(const char *name, u64 def);

/** Read a floating-point env var; same malformed-value policy. */
double envDouble(const char *name, double def);

/**
 * Global simulation scale factor (RSEP_SIM_SCALE, default 1.0).
 * Experiment drivers multiply warmup/measure windows by this.
 */
double simScale();

/** True when the user pinned RSEP_SIM_SCALE explicitly. */
bool simScaleOverridden();

/** True when the user pinned RSEP_CHECKPOINTS explicitly. */
bool checkpointsOverridden();

} // namespace rsep

#endif // RSEP_COMMON_ENV_HH

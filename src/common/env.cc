#include "common/env.hh"

#include <cstdlib>

namespace rsep
{

u64
envU64(const char *name, u64 def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 0);
    if (end == v)
        return def;
    return parsed;
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v)
        return def;
    return parsed;
}

double
simScale()
{
    return envDouble("RSEP_SIM_SCALE", 1.0);
}

} // namespace rsep

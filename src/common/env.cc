#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace rsep
{

std::string
trimmed(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
parseU64(const std::string &s, u64 &out)
{
    std::string t = trimmed(s);
    if (t.empty() || t[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseS64(const std::string &s, s64 &out)
{
    std::string t = trimmed(s);
    bool neg = !t.empty() && t.front() == '-';
    u64 mag = 0;
    if (!parseU64(neg ? t.substr(1) : t, mag))
        return false;
    if (neg) {
        if (mag > u64{1} << 63)
            return false;
        out = -static_cast<s64>(mag);
    } else {
        if (mag > static_cast<u64>(std::numeric_limits<s64>::max()))
            return false;
        out = static_cast<s64>(mag);
    }
    return true;
}

bool
parseScaledU64(const std::string &s, u64 &out)
{
    std::string t = trimmed(s);
    u64 scale = 1;
    if (!t.empty()) {
        switch (t.back()) {
          case 'k':
          case 'K':
            scale = 1000;
            break;
          case 'm':
          case 'M':
            scale = 1000 * 1000;
            break;
          case 'g':
          case 'G':
            scale = 1000ull * 1000 * 1000;
            break;
          default:
            break;
        }
        if (scale != 1)
            t.pop_back();
    }
    u64 mag = 0;
    if (!parseU64(t, mag))
        return false;
    if (scale != 1 && mag > std::numeric_limits<u64>::max() / scale)
        return false; // overflow.
    out = mag * scale;
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    std::string t = trimmed(s);
    if (t.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    std::string t = trimmed(s);
    for (char &c : t)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (t == "true" || t == "yes" || t == "on" || t == "1") {
        out = true;
        return true;
    }
    if (t == "false" || t == "no" || t == "off" || t == "0") {
        out = false;
        return true;
    }
    return false;
}

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v;
}

u64
envU64(const char *name, u64 def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    u64 out = 0;
    if (!parseU64(v, out)) {
        rsep_warn("%s='%s' is not a valid unsigned integer; using %llu",
                  name, v, static_cast<unsigned long long>(def));
        return def;
    }
    return out;
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    double out = 0.0;
    if (!parseDouble(v, out)) {
        rsep_warn("%s='%s' is not a valid number; using %g", name, v, def);
        return def;
    }
    return out;
}

double
simScale()
{
    return envDouble("RSEP_SIM_SCALE", 1.0);
}

bool
simScaleOverridden()
{
    return envSet("RSEP_SIM_SCALE");
}

bool
checkpointsOverridden()
{
    return envSet("RSEP_CHECKPOINTS");
}

} // namespace rsep

/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components register named counters/distributions in a StatGroup;
 * groups can be dumped in a human-readable table or queried by name
 * (used by the experiment harnesses to build figure rows).
 */

#ifndef RSEP_COMMON_STATS_HH
#define RSEP_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rsep
{

/** A named 64-bit event counter. */
class StatCounter
{
  public:
    StatCounter() = default;

    StatCounter &operator++() { ++val; return *this; }
    StatCounter &operator+=(u64 d) { val += d; return *this; }
    void reset() { val = 0; }
    u64 value() const { return val; }

  private:
    u64 val = 0;
};

/** A fixed-bucket histogram over [0, buckets). Overflows clamp to last. */
class StatHistogram
{
  public:
    explicit StatHistogram(size_t buckets = 16) : counts(buckets, 0) {}

    void
    sample(u64 v, u64 weight = 1)
    {
        size_t i = v < counts.size() ? static_cast<size_t>(v)
                                     : counts.size() - 1;
        counts[i] += weight;
        total += weight;
        sum += v * weight;
    }

    void
    reset()
    {
        for (auto &c : counts)
            c = 0;
        total = 0;
        sum = 0;
    }

    u64 bucket(size_t i) const { return counts.at(i); }
    size_t buckets() const { return counts.size(); }
    u64 samples() const { return total; }
    double mean() const { return total ? double(sum) / double(total) : 0.0; }

    /** Fraction of samples with value <= v (inclusive CDF point). */
    double
    cdfAt(u64 v) const
    {
        if (total == 0)
            return 0.0;
        u64 acc = 0;
        for (size_t i = 0; i < counts.size() && i <= v; ++i)
            acc += counts[i];
        return double(acc) / double(total);
    }

  private:
    std::vector<u64> counts;
    u64 total = 0;
    u64 sum = 0;
};

/**
 * A named collection of stats. Components own their counters and
 * register them here by reference for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name = "stats")
        : name(std::move(group_name))
    {
    }

    void
    addCounter(const std::string &stat_name, const StatCounter *c,
               const std::string &desc = "")
    {
        counters.push_back({stat_name, desc, c});
    }

    void
    addHistogram(const std::string &stat_name, const StatHistogram *h,
                 const std::string &desc = "")
    {
        histograms.push_back({stat_name, desc, h});
    }

    /** Lookup a counter value by name; returns 0 if absent. */
    u64 counterValue(const std::string &stat_name) const;

    /** Dump all registered stats in "name value # desc" format. */
    void dump(std::ostream &os) const;

    const std::string &groupName() const { return name; }

  private:
    struct CounterRef
    {
        std::string name;
        std::string desc;
        const StatCounter *counter;
    };
    struct HistRef
    {
        std::string name;
        std::string desc;
        const StatHistogram *hist;
    };

    std::string name;
    std::vector<CounterRef> counters;
    std::vector<HistRef> histograms;
};

/** Harmonic mean of a vector of strictly positive values. */
double harmonicMean(const std::vector<double> &vals);

/** Arithmetic mean; 0 for empty input. */
double arithmeticMean(const std::vector<double> &vals);

/** Geometric mean of strictly positive values; 0 for empty input. */
double geometricMean(const std::vector<double> &vals);

} // namespace rsep

#endif // RSEP_COMMON_STATS_HH

#include "common/logging.hh"

#include <cstdio>
#include <vector>

namespace rsep
{

namespace
{
thread_local unsigned fatalCaptureDepth = 0;
} // namespace

ScopedFatalCapture::ScopedFatalCapture() { ++fatalCaptureDepth; }
ScopedFatalCapture::~ScopedFatalCapture() { --fatalCaptureDepth; }

namespace detail
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s [%s:%d]\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalCaptureDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s [%s:%d]\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace rsep

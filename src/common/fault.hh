/**
 * @file
 * Deterministic fault injection for the I/O boundaries of the service
 * and cache layers.
 *
 * Every hardened operation names an *injection point* — a stable string
 * like "serve.send", "cache.rename" or "trace.decode" — and asks
 * `fault::point(name)` whether a fault should fire here.  Points are
 * armed from a spec string (the `RSEP_FAULT` environment variable or a
 * driver's `--fault` flag); unarmed, `point()` is a single relaxed
 * atomic load and returns "no fault", so golden dumps and hot-path
 * timings are untouched.
 *
 * Spec grammar (comma- or semicolon-separated list of point specs):
 *
 *     point[:after=N][:rate=P][:seed=S][:fail=MODE][:count=K][:ms=D][:bytes=B]
 *
 *   after=N   skip the first N hits of the point, then start firing
 *             (default 0: fire from the first hit).
 *   rate=P    instead of firing unconditionally, fire each eligible hit
 *             with probability P — decided by a deterministic hash of
 *             (seed, hit index), so a given spec always faults the same
 *             hits.  Requires 0 < P <= 1.
 *   seed=S    seed for rate mode (default 1).
 *   count=K   stop after K injections (default 1; 0 = unlimited).
 *   fail=MODE what to inject (default eio):
 *             econnreset | epipe | enospc | eio | eintr  — errno faults
 *             short     — write `bytes` bytes, then fail with an errno
 *             truncate  — cut the payload / stream at `bytes` bytes
 *             delay     — sleep `ms` milliseconds, then proceed
 *   ms=D      delay duration in milliseconds (default 50).
 *   bytes=B   short/truncate length in bytes (default 1).
 *
 * Examples:
 *
 *     RSEP_FAULT=serve.send:after=3:fail=econnreset
 *     RSEP_FAULT="cache.rename:rate=0.1:seed=42:fail=enospc:count=0"
 *     --fault trace.decode:fail=truncate,rts.flush:fail=enospc
 */

#ifndef RSEP_COMMON_FAULT_HH
#define RSEP_COMMON_FAULT_HH

#include <atomic>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace rsep::fault
{

enum class Kind : u8 {
    None = 0,   ///< no fault at this hit
    Errno,      ///< fail the operation with `err`
    ShortWrite, ///< perform `amount` bytes of the write, then fail with `err`
    Truncate,   ///< cut the payload/stream at `amount` bytes
    Delay,      ///< sleep `amount` microseconds, then proceed normally
};

/** What `point()` told the caller to do at this hit. */
struct Injected {
    Kind kind = Kind::None;
    int err = 0;    ///< errno for Errno / ShortWrite
    u64 amount = 0; ///< bytes (ShortWrite/Truncate) or microseconds (Delay)

    explicit operator bool() const { return kind != Kind::None; }
};

namespace detail
{
extern std::atomic<bool> anyArmed;
Injected pointSlow(std::string_view name);
} // namespace detail

/**
 * Consult the registry at injection point @p name.  Counts a hit and
 * returns the fault to inject, if any.  When nothing is armed this is
 * one relaxed load and no registry access.
 */
inline Injected
point(std::string_view name)
{
    if (!detail::anyArmed.load(std::memory_order_relaxed))
        return {};
    return detail::pointSlow(name);
}

/** True when at least one point spec is armed. */
inline bool
armed()
{
    return detail::anyArmed.load(std::memory_order_relaxed);
}

/**
 * Parse @p spec (the grammar above) and arm the points it names, on
 * top of anything already armed.  On a malformed spec, leaves the
 * registry unchanged, fills @p err and returns false.
 */
bool armFromSpec(const std::string &spec, std::string *err);

/**
 * Arm from the `RSEP_FAULT` environment variable if it is set
 * (rsep_fatal on a malformed spec).  Idempotent; drivers call it once
 * at startup so the variable works for every tool.
 */
void initFromEnv();

/** Drop every armed spec and reset all counters (tests). */
void disarmAll();

/** Number of times @p name was consulted while armed. */
u64 hitCount(std::string_view name);

/** Number of times @p name actually injected a fault. */
u64 firedCount(std::string_view name);

/**
 * Sleep helper for Kind::Delay so call sites don't each pull in
 * <thread>: sleeps @p micros microseconds.
 */
void sleepMicros(u64 micros);

} // namespace rsep::fault

#endif // RSEP_COMMON_FAULT_HH

/**
 * @file
 * Saturating counters: the workhorse of every predictor in the design.
 */

#ifndef RSEP_COMMON_SAT_COUNTER_HH
#define RSEP_COMMON_SAT_COUNTER_HH

#include <cassert>

#include "common/types.hh"

namespace rsep
{

/**
 * An unsigned saturating counter with a runtime-configurable bit width.
 *
 * Used for TAGE useful bits, confidence counters (in their deterministic
 * embodiment) and the ISRB reference counters.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned nbits = 2, u32 initial = 0)
        : maxVal((u32{1} << nbits) - 1), val(initial)
    {
        assert(nbits >= 1 && nbits <= 31);
        assert(initial <= maxVal);
    }

    /** Increment, clamping at max. @return true if it was already at max. */
    bool
    increment()
    {
        if (val == maxVal)
            return true;
        ++val;
        return false;
    }

    /** Decrement, clamping at zero. @return true if it was already zero. */
    bool
    decrement()
    {
        if (val == 0)
            return true;
        --val;
        return false;
    }

    void reset(u32 v = 0) { assert(v <= maxVal); val = v; }
    void setMax() { val = maxVal; }

    u32 value() const { return val; }
    u32 max() const { return maxVal; }
    bool saturated() const { return val == maxVal; }
    bool zero() const { return val == 0; }

  private:
    u32 maxVal;
    u32 val;
};

/**
 * A signed-style up/down counter expressed over an unsigned range, with
 * "taken" interpreted as value >= midpoint (classic bimodal counter).
 */
class BimodalCounter
{
  public:
    explicit BimodalCounter(unsigned nbits = 2, bool init_taken = false)
        : ctr(nbits, init_taken ? (u32{1} << (nbits - 1)) : ((u32{1} << (nbits - 1)) - 1)),
          mid(u32{1} << (nbits - 1))
    {
    }

    void
    update(bool taken)
    {
        if (taken)
            ctr.increment();
        else
            ctr.decrement();
    }

    bool taken() const { return ctr.value() >= mid; }
    /** Confidence: distance from the decision boundary, 0 = weakest. */
    u32
    strength() const
    {
        u32 v = ctr.value();
        return v >= mid ? v - mid : mid - 1 - v;
    }
    u32 value() const { return ctr.value(); }
    void reset(u32 v) { ctr.reset(v); }

  private:
    SatCounter ctr;
    u32 mid;
};

} // namespace rsep

#endif // RSEP_COMMON_SAT_COUNTER_HH

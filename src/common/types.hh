/**
 * @file
 * Fundamental type aliases shared by every module of the RSEP simulator.
 */

#ifndef RSEP_COMMON_TYPES_HH
#define RSEP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rsep
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** A simulated byte address. */
using Addr = u64;

/** A simulation cycle count. */
using Cycle = u64;

/** Global dynamic instruction sequence number (never wraps in practice). */
using SeqNum = u64;

/** Architectural register index. */
using ArchReg = u16;

/** Physical register index. */
using PhysReg = u16;

/** Sentinel meaning "no physical register". */
constexpr PhysReg invalidPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel meaning "no architectural register". */
constexpr ArchReg invalidArchReg = std::numeric_limits<ArchReg>::max();

/** Sentinel for an unknown/unset cycle. */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

} // namespace rsep

#endif // RSEP_COMMON_TYPES_HH

/**
 * @file
 * Bit manipulation helpers used by predictors, hashing and cache indexing.
 */

#ifndef RSEP_COMMON_BITUTILS_HH
#define RSEP_COMMON_BITUTILS_HH

#include <bit>
#include <cassert>

#include "common/types.hh"

namespace rsep
{

/** Return a mask with the low @p nbits bits set (nbits may be 0..64). */
constexpr u64
mask(unsigned nbits)
{
    return nbits >= 64 ? ~u64{0} : ((u64{1} << nbits) - 1);
}

/** Extract bits [hi..lo] (inclusive) of @p val, right-aligned. */
constexpr u64
bits(u64 val, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    return (val >> lo) & mask(hi - lo + 1);
}

/** True iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(u64 v)
{
    assert(v != 0);
    return 63 - std::countl_zero(v);
}

/** Ceil of log2(@p v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(u64 v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Rotate @p val (treated as @p width bits wide) left by @p amt. */
constexpr u64
rotateLeft(u64 val, unsigned width, unsigned amt)
{
    assert(width > 0 && width <= 64);
    amt %= width;
    val &= mask(width);
    return ((val << amt) | (val >> (width - amt))) & mask(width);
}

/**
 * XOR-fold @p val down to @p nbits bits by iteratively XORing
 * consecutive nbits-wide chunks. This is the paper's result-hash
 * primitive (Section IV-A); n should not be a power of two to avoid
 * trivial collisions between 0 and -1.
 */
constexpr u64
xorFold(u64 val, unsigned nbits)
{
    assert(nbits > 0 && nbits <= 64);
    if (nbits >= 64)
        return val; // single chunk (val >> 64 would be UB).
    u64 out = 0;
    while (val != 0) {
        out ^= val & mask(nbits);
        val >>= nbits;
    }
    return out;
}

} // namespace rsep

#endif // RSEP_COMMON_BITUTILS_HH

/**
 * @file
 * Deterministic pseudo-random number generation (xoroshiro128++).
 *
 * Every stochastic element of the simulator (probabilistic counters,
 * commit-group sampling, workload data) draws from an explicitly seeded
 * Rng so experiments are exactly reproducible.
 */

#ifndef RSEP_COMMON_RNG_HH
#define RSEP_COMMON_RNG_HH

#include <cassert>

#include "common/types.hh"

namespace rsep
{

/** xoroshiro128++ generator (Blackman & Vigna), small and fast. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        s0 = splitmix(seed);
        s1 = splitmix(seed);
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 a = s0, b = s1;
        u64 result = rotl(a + b, 17) + a;
        b ^= a;
        s0 = rotl(a, 49) ^ b ^ (b << 21);
        s1 = rotl(b, 28);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    u64
    below(u64 bound)
    {
        assert(bound != 0);
        // Lemire-style rejection-free-enough multiply-shift.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<u64>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p num / @p den. */
    bool
    chance(u64 num, u64 den)
    {
        assert(den != 0);
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64
    splitmix(u64 &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        u64 z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    u64 s0;
    u64 s1;
};

} // namespace rsep

#endif // RSEP_COMMON_RNG_HH

/**
 * @file
 * Minimal gem5-style status/error reporting: panic/fatal/warn/inform.
 *
 * panic() signals a simulator bug (aborts); fatal() signals a user error
 * (clean exit); warn()/inform() never stop the simulation.
 */

#ifndef RSEP_COMMON_LOGGING_HH
#define RSEP_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rsep
{

namespace detail
{
std::string vformat(const char *fmt, std::va_list ap);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
} // namespace detail

/** What rsep_fatal throws while a ScopedFatalCapture is alive on the
 *  calling thread; what() is the formatted diagnostic. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * RAII: while alive on this thread, rsep_fatal throws FatalError
 * instead of exiting the process. The rsep_serve daemon wraps each
 * request cell in one so a user error (or injected fault) that slips
 * past preflight fails that one request instead of taking the daemon —
 * and every other client — down with it. Nestable; fatal() reverts to
 * exit(1) when the outermost capture on the thread is gone.
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();
    ScopedFatalCapture(const ScopedFatalCapture &) = delete;
    ScopedFatalCapture &operator=(const ScopedFatalCapture &) = delete;
};

/** Abort on an internal invariant violation (simulator bug). */
#define rsep_panic(...) \
    ::rsep::detail::panicImpl(__FILE__, __LINE__, \
                              ::rsep::detail::format(__VA_ARGS__))

/** Exit cleanly on a user/configuration error. */
#define rsep_fatal(...) \
    ::rsep::detail::fatalImpl(__FILE__, __LINE__, \
                              ::rsep::detail::format(__VA_ARGS__))

/** Non-fatal warning. */
#define rsep_warn(...) \
    ::rsep::detail::warnImpl(::rsep::detail::format(__VA_ARGS__))

/** Informational status message. */
#define rsep_inform(...) \
    ::rsep::detail::informImpl(::rsep::detail::format(__VA_ARGS__))

} // namespace rsep

#endif // RSEP_COMMON_LOGGING_HH

#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace rsep::isa
{

std::string
Program::disasm(size_t idx) const
{
    const StaticInst &si = at(idx);
    std::ostringstream os;
    os << std::hex << "0x" << pcOf(idx) << std::dec << ": "
       << mnemonic(si.op);
    auto reg = [](ArchReg r) -> std::string {
        if (r == invalidArchReg)
            return "?";
        if (r == zeroReg)
            return "xzr";
        if (isFpReg(r))
            return "d" + std::to_string(r - fpRegBase);
        return "x" + std::to_string(r);
    };
    switch (si.opClass()) {
      case OpClass::Load:
        os << " " << reg(si.dst) << ", [" << reg(si.src1);
        if (si.src2 != invalidArchReg)
            os << ", " << reg(si.src2) << "*8";
        else if (si.imm != 0)
            os << ", #" << si.imm;
        os << "]";
        break;
      case OpClass::Store:
        os << " " << reg(si.srcData) << ", [" << reg(si.src1);
        if (si.src2 != invalidArchReg)
            os << ", " << reg(si.src2) << "*8";
        else if (si.imm != 0)
            os << ", #" << si.imm;
        os << "]";
        break;
      case OpClass::Branch:
        if (si.src1 != invalidArchReg)
            os << " " << reg(si.src1);
        if (si.src2 != invalidArchReg)
            os << ", " << reg(si.src2);
        if (!si.isIndirect())
            os << " -> @" << si.imm;
        break;
      case OpClass::Nop:
        break;
      default:
        if (si.dst != invalidArchReg)
            os << " " << reg(si.dst);
        if (si.src1 != invalidArchReg)
            os << ", " << reg(si.src1);
        if (si.src2 != invalidArchReg)
            os << ", " << reg(si.src2);
        if (si.op == Opcode::MovI || (si.src2 == invalidArchReg &&
                                      si.opClass() == OpClass::IntAlu &&
                                      si.op != Opcode::Mov))
            os << ", #" << si.imm;
        break;
    }
    return os.str();
}

void
ProgramBuilder::label(const std::string &lbl)
{
    auto [it, inserted] = labels.emplace(lbl, insts.size());
    if (!inserted)
        rsep_fatal("duplicate label '%s' in program '%s'", lbl.c_str(),
                   name.c_str());
}

void
ProgramBuilder::emit3(Opcode op, ArchReg d, ArchReg a, ArchReg b)
{
    StaticInst si;
    si.op = op;
    si.dst = d;
    si.src1 = a;
    si.src2 = b;
    insts.push_back(si);
}

void
ProgramBuilder::emitI(Opcode op, ArchReg d, ArchReg a, s64 i)
{
    StaticInst si;
    si.op = op;
    si.dst = d;
    si.src1 = a;
    si.imm = i;
    insts.push_back(si);
}

void
ProgramBuilder::emitStore(Opcode op, ArchReg data, ArchReg base,
                          ArchReg idx, s64 off)
{
    StaticInst si;
    si.op = op;
    si.srcData = data;
    si.src1 = base;
    si.src2 = idx;
    si.imm = off;
    insts.push_back(si);
}

void
ProgramBuilder::emitBranch(Opcode op, ArchReg a, ArchReg b,
                           const std::string &lbl)
{
    StaticInst si;
    si.op = op;
    si.src1 = a;
    si.src2 = b;
    fixups.push_back({insts.size(), lbl});
    insts.push_back(si);
}

void
ProgramBuilder::bl(const std::string &lbl)
{
    StaticInst si;
    si.op = Opcode::Bl;
    si.dst = linkReg;
    fixups.push_back({insts.size(), lbl});
    insts.push_back(si);
}

void
ProgramBuilder::ret()
{
    StaticInst si;
    si.op = Opcode::Ret;
    si.src1 = linkReg;
    insts.push_back(si);
}

Program
ProgramBuilder::build()
{
    for (const Fixup &fx : fixups) {
        auto it = labels.find(fx.label);
        if (it == labels.end())
            rsep_fatal("unresolved label '%s' in program '%s'",
                       fx.label.c_str(), name.c_str());
        insts[fx.instIdx].imm = static_cast<s64>(it->second);
    }
    if (insts.empty() || insts.back().op != Opcode::Halt) {
        StaticInst si;
        si.op = Opcode::Halt;
        insts.push_back(si);
    }
    return Program(name, std::move(insts), std::move(labels));
}

size_t
Program::labelIndex(const std::string &lbl) const
{
    auto it = labels.find(lbl);
    if (it == labels.end())
        rsep_fatal("program '%s': unknown label '%s'", name.c_str(),
                   lbl.c_str());
    return it->second;
}

} // namespace rsep::isa

/**
 * @file
 * Program container and an assembler-like builder for workload kernels.
 */

#ifndef RSEP_ISA_PROGRAM_HH
#define RSEP_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/static_inst.hh"

namespace rsep::isa
{

/** A finalized static program: a flat vector of micro-ops. */
class Program
{
  public:
    /** Nominal base address of the code segment (for PCs / I-cache). */
    static constexpr Addr codeBase = 0x400000;
    /** Size of one encoded instruction in bytes. */
    static constexpr Addr instBytes = 4;

    Program() = default;
    explicit Program(std::string prog_name, std::vector<StaticInst> insts,
                     std::map<std::string, size_t> label_map = {})
        : name(std::move(prog_name)), code(std::move(insts)),
          labels(std::move(label_map))
    {
    }

    const StaticInst &at(size_t idx) const { return code.at(idx); }
    size_t size() const { return code.size(); }
    bool empty() const { return code.empty(); }
    const std::string &progName() const { return name; }

    /** PC of static instruction @p idx. */
    static Addr pcOf(size_t idx) { return codeBase + idx * instBytes; }
    /** Static index of @p pc (must be in range). */
    static size_t
    indexOf(Addr pc)
    {
        return static_cast<size_t>((pc - codeBase) / instBytes);
    }

    /** One-line disassembly of instruction @p idx. */
    std::string disasm(size_t idx) const;

    /** Static index bound to @p lbl (fatal if unknown). */
    size_t labelIndex(const std::string &lbl) const;
    /** PC bound to @p lbl (fatal if unknown). */
    Addr labelPc(const std::string &lbl) const { return pcOf(labelIndex(lbl)); }

  private:
    std::string name;
    std::vector<StaticInst> code;
    std::map<std::string, size_t> labels;
};

/**
 * Assembler-style builder with label resolution.
 *
 * Usage:
 * @code
 *   ProgramBuilder b("kernel");
 *   b.label("loop");
 *   b.addi(1, 1, 8);
 *   b.bne(1, 2, "loop");
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string prog_name)
        : name(std::move(prog_name))
    {
    }

    /** Bind @p lbl to the next emitted instruction. */
    void label(const std::string &lbl);

    // Integer ALU, reg-reg.
    void add(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Add, d, a, b); }
    void sub(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Sub, d, a, b); }
    void and_(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::And, d, a, b); }
    void orr(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Orr, d, a, b); }
    void eor(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Eor, d, a, b); }
    void lsl(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Lsl, d, a, b); }
    void lsr(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Lsr, d, a, b); }
    void asr(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Asr, d, a, b); }
    void mul(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Mul, d, a, b); }
    void div(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::Div, d, a, b); }
    void cmplt(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::CmpLt, d, a, b); }
    void cmpltu(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::CmpLtU, d, a, b); }
    void cmpeq(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::CmpEq, d, a, b); }

    // Integer ALU, reg-imm.
    void addi(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::AddI, d, a, i); }
    void subi(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::SubI, d, a, i); }
    void andi(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::AndI, d, a, i); }
    void orri(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::OrrI, d, a, i); }
    void eori(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::EorI, d, a, i); }
    void lsli(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::LslI, d, a, i); }
    void lsri(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::LsrI, d, a, i); }
    void asri(ArchReg d, ArchReg a, s64 i) { emitI(Opcode::AsrI, d, a, i); }

    // Moves.
    void mov(ArchReg d, ArchReg a) { emit3(Opcode::Mov, d, a, invalidArchReg); }
    void movi(ArchReg d, s64 i) { emitI(Opcode::MovI, d, invalidArchReg, i); }

    // Floating point.
    void fadd(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FAdd, d, a, b); }
    void fsub(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FSub, d, a, b); }
    void fmul(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FMul, d, a, b); }
    void fdiv(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FDiv, d, a, b); }
    void fmov(ArchReg d, ArchReg a) { emit3(Opcode::FMov, d, a, invalidArchReg); }
    void fcvti(ArchReg d, ArchReg a) { emit3(Opcode::FCvtI, d, a, invalidArchReg); }
    void fcvtf(ArchReg d, ArchReg a) { emit3(Opcode::FCvtF, d, a, invalidArchReg); }
    void fabs_(ArchReg d, ArchReg a) { emit3(Opcode::FAbs, d, a, invalidArchReg); }
    void fneg(ArchReg d, ArchReg a) { emit3(Opcode::FNeg, d, a, invalidArchReg); }
    void fmin(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FMin, d, a, b); }
    void fmax(ArchReg d, ArchReg a, ArchReg b) { emit3(Opcode::FMax, d, a, b); }

    // Memory.
    void ldr(ArchReg d, ArchReg base, s64 off) { emitI(Opcode::Ldr, d, base, off); }
    void ldrx(ArchReg d, ArchReg base, ArchReg idx) { emit3(Opcode::LdrX, d, base, idx); }
    void fldr(ArchReg d, ArchReg base, s64 off) { emitI(Opcode::FLdr, d, base, off); }
    void fldrx(ArchReg d, ArchReg base, ArchReg idx) { emit3(Opcode::FLdrX, d, base, idx); }
    void str(ArchReg data, ArchReg base, s64 off) { emitStore(Opcode::Str, data, base, invalidArchReg, off); }
    void strx(ArchReg data, ArchReg base, ArchReg idx) { emitStore(Opcode::StrX, data, base, idx, 0); }
    void fstr(ArchReg data, ArchReg base, s64 off) { emitStore(Opcode::FStr, data, base, invalidArchReg, off); }
    void fstrx(ArchReg data, ArchReg base, ArchReg idx) { emitStore(Opcode::FStrX, data, base, idx, 0); }

    // Control flow.
    void b(const std::string &lbl) { emitBranch(Opcode::B, invalidArchReg, invalidArchReg, lbl); }
    void beq(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Beq, a, c, lbl); }
    void bne(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Bne, a, c, lbl); }
    void blt(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Blt, a, c, lbl); }
    void bge(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Bge, a, c, lbl); }
    void bltu(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Bltu, a, c, lbl); }
    void bgeu(ArchReg a, ArchReg c, const std::string &lbl) { emitBranch(Opcode::Bgeu, a, c, lbl); }
    void cbz(ArchReg a, const std::string &lbl) { emitBranch(Opcode::Cbz, a, invalidArchReg, lbl); }
    void cbnz(ArchReg a, const std::string &lbl) { emitBranch(Opcode::Cbnz, a, invalidArchReg, lbl); }
    void bl(const std::string &lbl);
    void ret();
    void brind(ArchReg a) { emit3(Opcode::BrInd, invalidArchReg, a, invalidArchReg); }

    void nop() { StaticInst si; si.op = Opcode::Nop; insts.push_back(si); }
    void halt() { StaticInst si; si.op = Opcode::Halt; insts.push_back(si); }

    /** Number of instructions emitted so far. */
    size_t size() const { return insts.size(); }

    /** Resolve labels and produce the final Program. */
    Program build();

  private:
    void emit3(Opcode op, ArchReg d, ArchReg a, ArchReg b);
    void emitI(Opcode op, ArchReg d, ArchReg a, s64 i);
    void emitStore(Opcode op, ArchReg data, ArchReg base, ArchReg idx, s64 off);
    void emitBranch(Opcode op, ArchReg a, ArchReg b, const std::string &lbl);

    struct Fixup
    {
        size_t instIdx;
        std::string label;
    };

    std::string name;
    std::vector<StaticInst> insts;
    std::map<std::string, size_t> labels;
    std::vector<Fixup> fixups;
};

} // namespace rsep::isa

#endif // RSEP_ISA_PROGRAM_HH

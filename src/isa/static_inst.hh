/**
 * @file
 * Static instruction representation of the mini-ISA.
 */

#ifndef RSEP_ISA_STATIC_INST_HH
#define RSEP_ISA_STATIC_INST_HH

#include <cassert>

#include "isa/opcode.hh"

namespace rsep::isa
{

/**
 * One static micro-op.
 *
 * Operand conventions:
 *  - ALU reg-reg:   dst <- src1 OP src2
 *  - ALU reg-imm:   dst <- src1 OP imm
 *  - Mov/FMov:      dst <- src1
 *  - MovI:          dst <- imm
 *  - Ldr/FLdr:      dst <- mem[src1 + imm]
 *  - LdrX/FLdrX:    dst <- mem[src1 + src2*8]
 *  - Str/FStr:      mem[src1 + imm] <- srcData
 *  - StrX/FStrX:    mem[src1 + src2*8] <- srcData
 *  - Beq..Bgeu:     if (src1 cmp src2) goto imm (static index)
 *  - Cbz/Cbnz:      if (src1 cmp 0) goto imm
 *  - B/Bl:          goto imm; Bl also writes linkReg <- return pc
 *  - Ret:           goto reg[linkReg]; BrInd: goto reg[src1]
 */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    ArchReg dst = invalidArchReg;
    ArchReg src1 = invalidArchReg;
    ArchReg src2 = invalidArchReg;
    ArchReg srcData = invalidArchReg; ///< store data register.
    s64 imm = 0;

    OpClass opClass() const { return opClassOf(op); }
    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isBranch() const { return isBranchOp(op); }
    bool isCondBranch() const { return isCondBranchOp(op); }
    bool isIndirect() const { return isIndirectOp(op); }
    bool isCall() const { return isCallOp(op); }
    bool isHalt() const { return op == Opcode::Halt; }

    /** True if the op architecturally writes a (non-zero) register. */
    bool
    writesReg() const
    {
        return dst != invalidArchReg && dst != zeroReg;
    }

    /**
     * True for instructions the front-end recognizes as always
     * producing zero (zero-idiom elimination, Section III).
     */
    bool
    isZeroIdiom() const
    {
        if (!writesReg())
            return false;
        switch (op) {
          case Opcode::MovI:
            return imm == 0;
          case Opcode::Eor:
          case Opcode::Sub:
            return src1 == src2;
          case Opcode::AndI:
            return imm == 0;
          case Opcode::And:
            return src1 == zeroReg || src2 == zeroReg;
          case Opcode::Mov:
            return src1 == zeroReg;
          default:
            return false;
        }
    }

    /**
     * True for a 64-bit register-to-register move eligible for move
     * elimination (Section IV-H1) -- integer or FP, both are 64-bit
     * moves here. Zero-source integer moves are zero idioms and
     * handled by the cheaper mechanism instead.
     */
    bool
    isEliminableMove() const
    {
        return (op == Opcode::Mov || op == Opcode::FMov) && writesReg() &&
               src1 != zeroReg;
    }

    /** Invoke @p fn on each valid source register (dedup not applied). */
    template <typename Fn>
    void
    forEachSrc(Fn &&fn) const
    {
        if (src1 != invalidArchReg)
            fn(src1);
        if (src2 != invalidArchReg)
            fn(src2);
        if (srcData != invalidArchReg)
            fn(srcData);
    }

    /** Number of valid source registers. */
    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        forEachSrc([&](ArchReg) { ++n; });
        return n;
    }
};

} // namespace rsep::isa

#endif // RSEP_ISA_STATIC_INST_HH

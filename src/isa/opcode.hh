/**
 * @file
 * Opcodes and operation classes of the Aarch64-flavoured mini-ISA.
 *
 * The ISA is a small RISC micro-op set rich enough to express the
 * workload kernels and to exercise every mechanism in the paper:
 * a hardwired zero register (x31), reg-reg moves (move elimination),
 * zero idioms, int/fp arithmetic with multi-cycle and variable-latency
 * classes, loads/stores and a full set of control transfers (for the
 * TAGE/BTB/RAS front-end).
 */

#ifndef RSEP_ISA_OPCODE_HH
#define RSEP_ISA_OPCODE_HH

#include <string_view>

#include "common/types.hh"

namespace rsep::isa
{

/** Number of integer architectural registers (x31 is the zero reg). */
constexpr ArchReg numIntArchRegs = 32;
/** Number of floating-point architectural registers. */
constexpr ArchReg numFpArchRegs = 32;
/** Total architectural registers; FP regs live at [32, 64). */
constexpr ArchReg numArchRegs = numIntArchRegs + numFpArchRegs;
/** The hardwired zero register (reads 0, writes discarded). */
constexpr ArchReg zeroReg = 31;
/** The link register written by BL (x30, as in Aarch64). */
constexpr ArchReg linkReg = 30;
/** First FP architectural register index. */
constexpr ArchReg fpRegBase = numIntArchRegs;

/** True iff @p r names a floating-point register. */
constexpr bool
isFpReg(ArchReg r)
{
    return r >= fpRegBase && r < numArchRegs;
}

/** Micro-op opcodes. */
enum class Opcode : u8 {
    // Integer ALU, reg-reg.
    Add, Sub, And, Orr, Eor, Lsl, Lsr, Asr,
    // Integer ALU, reg-imm.
    AddI, SubI, AndI, OrrI, EorI, LslI, LsrI, AsrI,
    // Comparisons producing 0/1 (enable branchless max/select idioms).
    CmpLt, CmpLtU, CmpEq,
    // Multi-cycle integer.
    Mul, Div,
    // Moves / immediates.
    Mov,   ///< 64-bit reg-reg move (move-elimination candidate).
    MovI,  ///< Load immediate.
    // Floating point (operands are f64 bit patterns in 64-bit regs).
    FAdd, FSub, FMul, FDiv, FMov,
    FCvtI, ///< int -> fp convert.
    FCvtF, ///< fp -> int convert (truncating).
    FAbs, FNeg, FMin, FMax,
    // Memory. Effective address = [base + imm] or [base + index*8].
    Ldr,   ///< load 64-bit, base + imm offset.
    LdrX,  ///< load 64-bit, base + index*8.
    Str,   ///< store 64-bit, base + imm offset.
    StrX,  ///< store 64-bit, base + index*8.
    FLdr,  ///< load into an FP register, base + imm.
    FLdrX, ///< load into an FP register, base + index*8.
    FStr,  ///< store from an FP register, base + imm.
    FStrX, ///< store from an FP register, base + index*8.
    // Control flow (compare-and-branch style; no flags register).
    B,     ///< unconditional direct branch.
    Beq, Bne, Blt, Bge, Bltu, Bgeu, ///< two-register compare and branch.
    Cbz, Cbnz,                      ///< single-register compare and branch.
    Bl,    ///< call: link into x30, branch to target.
    Ret,   ///< return: indirect jump through x30.
    BrInd, ///< indirect jump through a register.
    // Misc.
    Nop,
    Halt,  ///< end of program (the emulator restarts the kernel body).

    NumOpcodes
};

/** Functional-unit classes (Table I execution resources). */
enum class OpClass : u8 {
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Nop,

    NumClasses
};

/** Map an opcode to its FU class. */
OpClass opClassOf(Opcode op);

/** Mnemonic for disassembly. */
std::string_view mnemonic(Opcode op);

/** True for any load opcode. */
bool isLoadOp(Opcode op);
/** True for any store opcode. */
bool isStoreOp(Opcode op);
/** True for any control-transfer opcode. */
bool isBranchOp(Opcode op);
/** True for conditional (direction-predicted) branches. */
bool isCondBranchOp(Opcode op);
/** True for indirect-target transfers (Ret / BrInd). */
bool isIndirectOp(Opcode op);
/** True for the call opcode. */
bool isCallOp(Opcode op);
/** True if the op writes a floating-point destination. */
bool writesFpDest(Opcode op);

} // namespace rsep::isa

#endif // RSEP_ISA_OPCODE_HH

/**
 * @file
 * Opcodes and operation classes of the Aarch64-flavoured mini-ISA.
 *
 * The ISA is a small RISC micro-op set rich enough to express the
 * workload kernels and to exercise every mechanism in the paper:
 * a hardwired zero register (x31), reg-reg moves (move elimination),
 * zero idioms, int/fp arithmetic with multi-cycle and variable-latency
 * classes, loads/stores and a full set of control transfers (for the
 * TAGE/BTB/RAS front-end).
 */

#ifndef RSEP_ISA_OPCODE_HH
#define RSEP_ISA_OPCODE_HH

#include <string_view>

#include "common/logging.hh"
#include "common/types.hh"

namespace rsep::isa
{

/** Number of integer architectural registers (x31 is the zero reg). */
constexpr ArchReg numIntArchRegs = 32;
/** Number of floating-point architectural registers. */
constexpr ArchReg numFpArchRegs = 32;
/** Total architectural registers; FP regs live at [32, 64). */
constexpr ArchReg numArchRegs = numIntArchRegs + numFpArchRegs;
/** The hardwired zero register (reads 0, writes discarded). */
constexpr ArchReg zeroReg = 31;
/** The link register written by BL (x30, as in Aarch64). */
constexpr ArchReg linkReg = 30;
/** First FP architectural register index. */
constexpr ArchReg fpRegBase = numIntArchRegs;

/** True iff @p r names a floating-point register. */
constexpr bool
isFpReg(ArchReg r)
{
    return r >= fpRegBase && r < numArchRegs;
}

/** Micro-op opcodes. */
enum class Opcode : u8 {
    // Integer ALU, reg-reg.
    Add, Sub, And, Orr, Eor, Lsl, Lsr, Asr,
    // Integer ALU, reg-imm.
    AddI, SubI, AndI, OrrI, EorI, LslI, LsrI, AsrI,
    // Comparisons producing 0/1 (enable branchless max/select idioms).
    CmpLt, CmpLtU, CmpEq,
    // Multi-cycle integer.
    Mul, Div,
    // Moves / immediates.
    Mov,   ///< 64-bit reg-reg move (move-elimination candidate).
    MovI,  ///< Load immediate.
    // Floating point (operands are f64 bit patterns in 64-bit regs).
    FAdd, FSub, FMul, FDiv, FMov,
    FCvtI, ///< int -> fp convert.
    FCvtF, ///< fp -> int convert (truncating).
    FAbs, FNeg, FMin, FMax,
    // Memory. Effective address = [base + imm] or [base + index*8].
    Ldr,   ///< load 64-bit, base + imm offset.
    LdrX,  ///< load 64-bit, base + index*8.
    Str,   ///< store 64-bit, base + imm offset.
    StrX,  ///< store 64-bit, base + index*8.
    FLdr,  ///< load into an FP register, base + imm.
    FLdrX, ///< load into an FP register, base + index*8.
    FStr,  ///< store from an FP register, base + imm.
    FStrX, ///< store from an FP register, base + index*8.
    // Control flow (compare-and-branch style; no flags register).
    // isBranchOp/isCondBranchOp test these as contiguous ranges —
    // keep B..BrInd together and Beq..Cbnz the conditional subset.
    B,     ///< unconditional direct branch.
    Beq, Bne, Blt, Bge, Bltu, Bgeu, ///< two-register compare and branch.
    Cbz, Cbnz,                      ///< single-register compare and branch.
    Bl,    ///< call: link into x30, branch to target.
    Ret,   ///< return: indirect jump through x30.
    BrInd, ///< indirect jump through a register.
    // Misc.
    Nop,
    Halt,  ///< end of program (the emulator restarts the kernel body).

    NumOpcodes
};

/** Functional-unit classes (Table I execution resources). */
enum class OpClass : u8 {
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Nop,

    NumClasses
};

/**
 * Map an opcode to its FU class. Inline (with the predicates below):
 * these run several times per simulated instruction on the fetch,
 * rename and commit paths, and an out-of-line call per query shows up
 * in profiles.
 */
inline OpClass
opClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Orr: case Opcode::Eor: case Opcode::Lsl:
      case Opcode::Lsr: case Opcode::Asr:
      case Opcode::AddI: case Opcode::SubI: case Opcode::AndI:
      case Opcode::OrrI: case Opcode::EorI: case Opcode::LslI:
      case Opcode::LsrI: case Opcode::AsrI:
      case Opcode::CmpLt: case Opcode::CmpLtU: case Opcode::CmpEq:
      case Opcode::Mov: case Opcode::MovI:
        return OpClass::IntAlu;
      case Opcode::Mul:
        return OpClass::IntMul;
      case Opcode::Div:
        return OpClass::IntDiv;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMov:
      case Opcode::FCvtI: case Opcode::FCvtF: case Opcode::FAbs:
      case Opcode::FNeg: case Opcode::FMin: case Opcode::FMax:
        return OpClass::FpAlu;
      case Opcode::FMul:
        return OpClass::FpMul;
      case Opcode::FDiv:
        return OpClass::FpDiv;
      case Opcode::Ldr: case Opcode::LdrX:
      case Opcode::FLdr: case Opcode::FLdrX:
        return OpClass::Load;
      case Opcode::Str: case Opcode::StrX:
      case Opcode::FStr: case Opcode::FStrX:
        return OpClass::Store;
      case Opcode::B: case Opcode::Beq: case Opcode::Bne:
      case Opcode::Blt: case Opcode::Bge: case Opcode::Bltu:
      case Opcode::Bgeu: case Opcode::Cbz: case Opcode::Cbnz:
      case Opcode::Bl: case Opcode::Ret: case Opcode::BrInd:
        return OpClass::Branch;
      case Opcode::Nop: case Opcode::Halt:
        return OpClass::Nop;
      default:
        rsep_panic("opClassOf: bad opcode %d", static_cast<int>(op));
    }
}

/** Mnemonic for disassembly. */
std::string_view mnemonic(Opcode op);

/** True for any load opcode. */
inline bool
isLoadOp(Opcode op)
{
    return op == Opcode::Ldr || op == Opcode::LdrX ||
           op == Opcode::FLdr || op == Opcode::FLdrX;
}

/** True for any store opcode. */
inline bool
isStoreOp(Opcode op)
{
    return op == Opcode::Str || op == Opcode::StrX ||
           op == Opcode::FStr || op == Opcode::FStrX;
}

/** True for any control-transfer opcode. */
inline bool
isBranchOp(Opcode op)
{
    return op >= Opcode::B && op <= Opcode::BrInd;
}

/** True for conditional (direction-predicted) branches. */
inline bool
isCondBranchOp(Opcode op)
{
    return op >= Opcode::Beq && op <= Opcode::Cbnz;
}

/** True for indirect-target transfers (Ret / BrInd). */
inline bool
isIndirectOp(Opcode op)
{
    return op == Opcode::Ret || op == Opcode::BrInd;
}

/** True for the call opcode. */
inline bool
isCallOp(Opcode op)
{
    return op == Opcode::Bl;
}

/** True if the op writes a floating-point destination. */
inline bool
writesFpDest(Opcode op)
{
    switch (op) {
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FMov: case Opcode::FCvtI:
      case Opcode::FAbs: case Opcode::FNeg: case Opcode::FMin:
      case Opcode::FMax: case Opcode::FLdr: case Opcode::FLdrX:
        return true;
      default:
        return false;
    }
}

} // namespace rsep::isa

#endif // RSEP_ISA_OPCODE_HH

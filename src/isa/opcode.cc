#include "isa/opcode.hh"

namespace rsep::isa
{

std::string_view
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Orr: return "orr";
      case Opcode::Eor: return "eor";
      case Opcode::Lsl: return "lsl";
      case Opcode::Lsr: return "lsr";
      case Opcode::Asr: return "asr";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::AndI: return "andi";
      case Opcode::OrrI: return "orri";
      case Opcode::EorI: return "eori";
      case Opcode::LslI: return "lsli";
      case Opcode::LsrI: return "lsri";
      case Opcode::AsrI: return "asri";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLtU: return "cmpltu";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mov: return "mov";
      case Opcode::MovI: return "movi";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FMov: return "fmov";
      case Opcode::FCvtI: return "fcvti";
      case Opcode::FCvtF: return "fcvtf";
      case Opcode::FAbs: return "fabs";
      case Opcode::FNeg: return "fneg";
      case Opcode::FMin: return "fmin";
      case Opcode::FMax: return "fmax";
      case Opcode::Ldr: return "ldr";
      case Opcode::LdrX: return "ldrx";
      case Opcode::Str: return "str";
      case Opcode::StrX: return "strx";
      case Opcode::FLdr: return "fldr";
      case Opcode::FLdrX: return "fldrx";
      case Opcode::FStr: return "fstr";
      case Opcode::FStrX: return "fstrx";
      case Opcode::B: return "b";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Cbz: return "cbz";
      case Opcode::Cbnz: return "cbnz";
      case Opcode::Bl: return "bl";
      case Opcode::Ret: return "ret";
      case Opcode::BrInd: return "brind";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      default: return "<bad>";
    }
}

} // namespace rsep::isa

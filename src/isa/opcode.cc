#include "isa/opcode.hh"

#include "common/logging.hh"

namespace rsep::isa
{

OpClass
opClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Orr: case Opcode::Eor: case Opcode::Lsl:
      case Opcode::Lsr: case Opcode::Asr:
      case Opcode::AddI: case Opcode::SubI: case Opcode::AndI:
      case Opcode::OrrI: case Opcode::EorI: case Opcode::LslI:
      case Opcode::LsrI: case Opcode::AsrI:
      case Opcode::CmpLt: case Opcode::CmpLtU: case Opcode::CmpEq:
      case Opcode::Mov: case Opcode::MovI:
        return OpClass::IntAlu;
      case Opcode::Mul:
        return OpClass::IntMul;
      case Opcode::Div:
        return OpClass::IntDiv;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMov:
      case Opcode::FCvtI: case Opcode::FCvtF: case Opcode::FAbs:
      case Opcode::FNeg: case Opcode::FMin: case Opcode::FMax:
        return OpClass::FpAlu;
      case Opcode::FMul:
        return OpClass::FpMul;
      case Opcode::FDiv:
        return OpClass::FpDiv;
      case Opcode::Ldr: case Opcode::LdrX:
      case Opcode::FLdr: case Opcode::FLdrX:
        return OpClass::Load;
      case Opcode::Str: case Opcode::StrX:
      case Opcode::FStr: case Opcode::FStrX:
        return OpClass::Store;
      case Opcode::B: case Opcode::Beq: case Opcode::Bne:
      case Opcode::Blt: case Opcode::Bge: case Opcode::Bltu:
      case Opcode::Bgeu: case Opcode::Cbz: case Opcode::Cbnz:
      case Opcode::Bl: case Opcode::Ret: case Opcode::BrInd:
        return OpClass::Branch;
      case Opcode::Nop: case Opcode::Halt:
        return OpClass::Nop;
      default:
        rsep_panic("opClassOf: bad opcode %d", static_cast<int>(op));
    }
}

std::string_view
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Orr: return "orr";
      case Opcode::Eor: return "eor";
      case Opcode::Lsl: return "lsl";
      case Opcode::Lsr: return "lsr";
      case Opcode::Asr: return "asr";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::AndI: return "andi";
      case Opcode::OrrI: return "orri";
      case Opcode::EorI: return "eori";
      case Opcode::LslI: return "lsli";
      case Opcode::LsrI: return "lsri";
      case Opcode::AsrI: return "asri";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLtU: return "cmpltu";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mov: return "mov";
      case Opcode::MovI: return "movi";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FMov: return "fmov";
      case Opcode::FCvtI: return "fcvti";
      case Opcode::FCvtF: return "fcvtf";
      case Opcode::FAbs: return "fabs";
      case Opcode::FNeg: return "fneg";
      case Opcode::FMin: return "fmin";
      case Opcode::FMax: return "fmax";
      case Opcode::Ldr: return "ldr";
      case Opcode::LdrX: return "ldrx";
      case Opcode::Str: return "str";
      case Opcode::StrX: return "strx";
      case Opcode::FLdr: return "fldr";
      case Opcode::FLdrX: return "fldrx";
      case Opcode::FStr: return "fstr";
      case Opcode::FStrX: return "fstrx";
      case Opcode::B: return "b";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Cbz: return "cbz";
      case Opcode::Cbnz: return "cbnz";
      case Opcode::Bl: return "bl";
      case Opcode::Ret: return "ret";
      case Opcode::BrInd: return "brind";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      default: return "<bad>";
    }
}

bool
isLoadOp(Opcode op)
{
    return opClassOf(op) == OpClass::Load;
}

bool
isStoreOp(Opcode op)
{
    return opClassOf(op) == OpClass::Store;
}

bool
isBranchOp(Opcode op)
{
    return opClassOf(op) == OpClass::Branch;
}

bool
isCondBranchOp(Opcode op)
{
    switch (op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
      case Opcode::Cbz: case Opcode::Cbnz:
        return true;
      default:
        return false;
    }
}

bool
isIndirectOp(Opcode op)
{
    return op == Opcode::Ret || op == Opcode::BrInd;
}

bool
isCallOp(Opcode op)
{
    return op == Opcode::Bl;
}

bool
writesFpDest(Opcode op)
{
    switch (op) {
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FMov: case Opcode::FCvtI:
      case Opcode::FAbs: case Opcode::FNeg: case Opcode::FMin:
      case Opcode::FMax: case Opcode::FLdr: case Opcode::FLdrX:
        return true;
      default:
        return false;
    }
}

} // namespace rsep::isa

/**
 * @file
 * Prefetchers from Table I: a per-PC stride prefetcher (degree 1) in
 * front of the L1D and stream prefetchers (degree 1) at L2/L3.
 */

#ifndef RSEP_MEM_PREFETCH_HH
#define RSEP_MEM_PREFETCH_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::mem
{

/** Per-PC stride detector. @return prefetch address or 0. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(unsigned entries = 256);

    /** Observe a demand access; returns an address to prefetch or 0. */
    Addr observe(Addr pc, Addr addr);

    StatCounter issued;

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr lastAddr = 0;
        s64 stride = 0;
        u8 confidence = 0;
    };

    std::vector<Entry> table;
};

/** Region-based next-line stream detector. @return prefetch addr or 0. */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(unsigned streams = 16);

    /** Observe a miss; returns an address to prefetch or 0. */
    Addr observe(Addr addr);

    StatCounter issued;

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastLine = 0;
        s64 dir = 0;
        u8 confidence = 0;
        u64 lastUse = 0;
    };

    std::vector<Stream> streams;
    u64 useClock = 0;
};

} // namespace rsep::mem

#endif // RSEP_MEM_PREFETCH_HH

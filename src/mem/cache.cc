#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rsep::mem
{

CacheLevel::CacheLevel(const CacheParams &params) : p(params)
{
    u64 lines = p.sizeBytes / lineBytes;
    if (lines % p.assoc != 0)
        rsep_fatal("%s: size/assoc mismatch", p.name.c_str());
    sets = static_cast<unsigned>(lines / p.assoc);
    if (!isPowerOf2(sets))
        rsep_fatal("%s: set count must be a power of two (got %u)",
                   p.name.c_str(), sets);
    ways.assign(lines, Way{});
}

bool
CacheLevel::accessTags(Addr addr, bool is_write)
{
    size_t s = setOf(addr);
    Addr tag = tagOf(addr);
    ++useClock;
    Way *victim = nullptr;
    for (unsigned w = 0; w < p.assoc; ++w) {
        Way &way = ways[s * p.assoc + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++hits;
            return true;
        }
        if (!victim || (!way.valid && victim->valid) ||
            (way.valid == victim->valid && way.lastUse < victim->lastUse))
            victim = &way;
    }
    ++misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return false;
}

bool
CacheLevel::peek(Addr addr) const
{
    size_t s = setOf(addr);
    Addr tag = tagOf(addr);
    for (unsigned w = 0; w < p.assoc; ++w) {
        const Way &way = ways[s * p.assoc + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

void
CacheLevel::reapMshrs(Cycle now)
{
    for (auto it = outstanding.begin(); it != outstanding.end();) {
        if (it->second <= now)
            it = outstanding.erase(it);
        else
            ++it;
    }
}

std::optional<Cycle>
CacheLevel::pendingFill(Addr addr, Cycle now)
{
    reapMshrs(now);
    auto it = outstanding.find(addr >> lineShift);
    if (it == outstanding.end())
        return std::nullopt;
    ++mshrMerges;
    return it->second;
}

Cycle
CacheLevel::trackMiss(Addr addr, Cycle now, Cycle ready)
{
    reapMshrs(now);
    Addr line = addr >> lineShift;
    auto it = outstanding.find(line);
    if (it != outstanding.end()) {
        // Merge into the in-flight miss for the same line.
        ++mshrMerges;
        return it->second;
    }
    if (outstanding.size() >= p.mshrs) {
        // All MSHRs busy: the request waits for the earliest to free.
        ++mshrStalls;
        Cycle earliest = invalidCycle;
        for (const auto &[l, r] : outstanding)
            earliest = std::min(earliest, r);
        Cycle delay = earliest > now ? earliest - now : 0;
        ready += delay;
    }
    outstanding[line] = ready;
    return ready;
}

} // namespace rsep::mem

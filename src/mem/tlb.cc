#include "mem/tlb.hh"

namespace rsep::mem
{

Tlb::Tlb(unsigned n, Cycle walk_latency, unsigned page_shift)
    : entries(n), walkLatency(walk_latency), pageShift(page_shift)
{
}

Cycle
Tlb::access(Addr vaddr)
{
    ++useClock;
    Addr vpn = vaddr >> pageShift;
    // MRU shortcut: page locality makes most accesses hit the entry
    // the previous one did. Replicates the scan's hit-path side
    // effects exactly (lastUse refresh + hit count), so eviction order
    // and stats are unchanged. The pointer survives evictions (the
    // entry vector never reallocates); a recycled entry simply fails
    // the vpn compare.
    if (mru && mru->valid && mru->vpn == vpn) {
        mru->lastUse = useClock;
        ++hits;
        return 0;
    }
    Entry *lru = &entries[0];
    for (auto &e : entries) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = useClock;
            ++hits;
            mru = &e;
            return 0;
        }
        if (!e.valid) {
            lru = &e;
        } else if (lru->valid && e.lastUse < lru->lastUse) {
            lru = &e;
        }
    }
    ++misses;
    *lru = {true, vpn, useClock};
    mru = lru;
    return walkLatency;
}

} // namespace rsep::mem

#include "mem/tlb.hh"

namespace rsep::mem
{

Tlb::Tlb(unsigned n, Cycle walk_latency, unsigned page_shift)
    : entries(n), walkLatency(walk_latency), pageShift(page_shift)
{
}

Cycle
Tlb::access(Addr vaddr)
{
    ++useClock;
    Addr vpn = vaddr >> pageShift;
    Entry *lru = &entries[0];
    for (auto &e : entries) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = useClock;
            ++hits;
            return 0;
        }
        if (!e.valid) {
            lru = &e;
        } else if (lru->valid && e.lastUse < lru->lastUse) {
            lru = &e;
        }
    }
    ++misses;
    *lru = {true, vpn, useClock};
    return walkLatency;
}

} // namespace rsep::mem

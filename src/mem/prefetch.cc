#include "mem/prefetch.hh"

#include "mem/cache.hh"

namespace rsep::mem
{

StridePrefetcher::StridePrefetcher(unsigned entries) : table(entries)
{
}

Addr
StridePrefetcher::observe(Addr pc, Addr addr)
{
    Entry &e = table[(pc >> 2) % table.size()];
    if (!e.valid || e.tag != pc) {
        e = {true, pc, addr, 0, 0};
        return 0;
    }
    s64 stride = static_cast<s64>(addr) - static_cast<s64>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.lastAddr = addr;
    if (e.confidence >= 2 && e.stride != 0) {
        ++issued;
        return addr + static_cast<Addr>(e.stride);
    }
    return 0;
}

StreamPrefetcher::StreamPrefetcher(unsigned n) : streams(n)
{
}

Addr
StreamPrefetcher::observe(Addr addr)
{
    ++useClock;
    Addr line = addr >> lineShift;
    // Find a stream whose last line is adjacent to this access.
    Stream *lru = &streams[0];
    for (auto &s : streams) {
        if (s.valid) {
            s64 delta = static_cast<s64>(line) - static_cast<s64>(s.lastLine);
            if (delta == 1 || delta == -1) {
                if (s.confidence < 3 && delta == s.dir)
                    ++s.confidence;
                else if (delta != s.dir)
                    s.confidence = 1;
                s.dir = delta;
                s.lastLine = line;
                s.lastUse = useClock;
                if (s.confidence >= 1) {
                    ++issued;
                    return (line + static_cast<Addr>(s.dir)) << lineShift;
                }
                return 0;
            }
        }
        if (!lru->valid || (s.valid && s.lastUse < lru->lastUse && lru->valid))
            lru = &s;
        if (!s.valid)
            lru = &s;
    }
    *lru = {true, line, 1, 0, useClock};
    return 0;
}

} // namespace rsep::mem

#include "mem/dram.hh"

#include <algorithm>

#include "mem/cache.hh"

namespace rsep::mem
{

Dram::Dram(const DramParams &params)
    : p(params),
      banks(p.channels * p.ranksPerChannel * p.banksPerRank),
      chanFree(p.channels, 0)
{
}

Cycle
Dram::access(Addr addr, Cycle now)
{
    ++reads;
    // Address mapping: line interleave across channels, then banks.
    Addr line = addr >> lineShift;
    unsigned chan = line % p.channels;
    unsigned bank_count = p.ranksPerChannel * p.banksPerRank;
    unsigned bank_idx = (line / p.channels) % bank_count;
    u64 row = addr / p.rowBytes;

    Bank &bank = banks[chan * bank_count + bank_idx];

    // Banks operate in parallel; the shared per-channel data bus is
    // only occupied during the 64B burst.
    Cycle start = std::max(now + ns(p.controllerNs), bank.freeAt);
    Cycle access_lat;
    if (bank.open && bank.row == row) {
        ++rowHits;
        access_lat = ns(p.tCasNs);
    } else {
        ++rowMisses;
        access_lat = ns(bank.open ? p.tRpNs + p.tRcdNs + p.tCasNs
                                  : p.tRcdNs + p.tCasNs);
        bank.open = true;
        bank.row = row;
    }
    Cycle burst_start = std::max(start + access_lat, chanFree[chan]);
    Cycle done = burst_start + ns(p.tBurstNs);
    bank.freeAt = done;
    chanFree[chan] = done;
    return done;
}

Cycle
Dram::minLatency() const
{
    return ns(p.controllerNs + p.tCasNs + p.tBurstNs);
}

} // namespace rsep::mem

/**
 * @file
 * A set-associative cache level with LRU replacement and MSHR-limited
 * outstanding misses, used for L1I/L1D/L2/L3 (Table I).
 *
 * The model is latency-based: tags are updated at access time and the
 * access returns its completion cycle; fills are not separately
 * scheduled (standard simplification for core-side studies -- the
 * quantities that matter here are hit/miss latencies, MSHR pressure
 * and miss traffic).
 */

#ifndef RSEP_MEM_CACHE_HH
#define RSEP_MEM_CACHE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::mem
{

constexpr unsigned lineShift = 6;   ///< 64B lines.
constexpr Addr lineBytes = Addr{1} << lineShift;

/** Cache level configuration. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    Cycle latency = 4;        ///< total load-to-use latency at this level.
    unsigned mshrs = 64;
};

/** One cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheParams &params);

    /**
     * Probe for line presence *and* update LRU/allocate on miss.
     * @return true on hit.
     */
    bool accessTags(Addr addr, bool is_write);

    /** Probe without modifying state (for tests/inclusive checks). */
    bool peek(Addr addr) const;

    /**
     * MSHR tracking: register an outstanding miss completing at
     * @p ready. @return the (possibly merged / MSHR-delayed) completion
     * cycle the requester should use.
     */
    Cycle trackMiss(Addr addr, Cycle now, Cycle ready);

    /** Expire finished MSHRs (called lazily from trackMiss too). */
    void reapMshrs(Cycle now);

    /**
     * If a fill for @p addr is still in flight, return its completion
     * cycle (hit-under-fill: tags already allocated but data not back).
     */
    std::optional<Cycle> pendingFill(Addr addr, Cycle now);

    const CacheParams &params() const { return p; }

    StatCounter hits;
    StatCounter misses;
    StatCounter mshrMerges;
    StatCounter mshrStalls;
    StatCounter prefetchFills;

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        u64 lastUse = 0;
    };

    CacheParams p;
    unsigned sets;
    std::vector<Way> ways;
    u64 useClock = 0;
    /** Outstanding line misses: line -> completion cycle. */
    std::map<Addr, Cycle> outstanding;

    size_t setOf(Addr addr) const { return (addr >> lineShift) & (sets - 1); }
    Addr tagOf(Addr addr) const { return addr >> lineShift; }
};

} // namespace rsep::mem

#endif // RSEP_MEM_CACHE_HH

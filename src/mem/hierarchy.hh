/**
 * @file
 * The full memory hierarchy facade (Table I): L1I/L1D + unified private
 * L2 + shared L3, stride/stream prefetchers, TLBs and DDR4 behind.
 */

#ifndef RSEP_MEM_HIERARCHY_HH
#define RSEP_MEM_HIERARCHY_HH

#include <optional>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/prefetch.hh"
#include "mem/tlb.hh"

namespace rsep::mem
{

/** Hierarchy configuration (defaults = Table I). */
struct HierarchyParams
{
    CacheParams l1i{.name = "l1i", .sizeBytes = 32 * 1024, .assoc = 8,
                    .latency = 1, .mshrs = 16};
    CacheParams l1d{.name = "l1d", .sizeBytes = 32 * 1024, .assoc = 8,
                    .latency = 4, .mshrs = 64};
    CacheParams l2{.name = "l2", .sizeBytes = 256 * 1024, .assoc = 16,
                   .latency = 12, .mshrs = 64};
    CacheParams l3{.name = "l3", .sizeBytes = 6 * 1024 * 1024, .assoc = 24,
                   .latency = 21, .mshrs = 64};
    DramParams dram{};
    unsigned itlbEntries = 128;
    unsigned dtlbEntries = 64;
    Cycle tlbWalkLatency = 30;
    bool enablePrefetch = true;
};

/** Latency-returning memory system. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params = HierarchyParams{});

    /** Instruction line fetch at @p now; @return completion cycle. */
    Cycle ifetch(Addr addr, Cycle now);

    /** Data load issued at @p now; @return data-ready cycle. */
    Cycle load(Addr pc, Addr addr, Cycle now);

    /** Store performing at commit (write-allocate, non-blocking). */
    void storeCommit(Addr addr, Cycle now);

    const HierarchyParams &params() const { return p; }

    CacheLevel &l1iCache() { return l1i; }
    CacheLevel &l1dCache() { return l1d; }
    CacheLevel &l2Cache() { return l2; }
    CacheLevel &l3Cache() { return l3; }
    Dram &dram() { return ddr; }
    Tlb &itlbUnit() { return itlb; }
    Tlb &dtlbUnit() { return dtlb; }

  private:
    /**
     * Walk L2/L3/DRAM for a line missing in the L1 of interest and
     * return its fill-completion cycle.
     * @param run_prefetch drive the L2/L3 stream prefetchers.
     */
    Cycle fillFromBeyondL1(Addr addr, Cycle now, bool is_write,
                           bool run_prefetch);

    /** Issue a degree-1 prefetch of @p addr into @p level. */
    void prefetchInto(CacheLevel &level, Addr addr, Cycle now,
                      Cycle source_latency);

    HierarchyParams p;
    CacheLevel l1i;
    CacheLevel l1d;
    CacheLevel l2;
    CacheLevel l3;
    Dram ddr;
    Tlb itlb;
    Tlb dtlb;
    StridePrefetcher l1dStride;
    StreamPrefetcher l2Stream;
    StreamPrefetcher l3Stream;
};

} // namespace rsep::mem

#endif // RSEP_MEM_HIERARCHY_HH

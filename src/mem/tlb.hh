/**
 * @file
 * Fully-associative LRU TLBs (128-entry ITLB, 64-entry DTLB, Table I)
 * with a flat page-walk penalty on miss.
 */

#ifndef RSEP_MEM_TLB_HH
#define RSEP_MEM_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::mem
{

/** A TLB level; returns the extra latency an access pays (0 on hit). */
class Tlb
{
  public:
    explicit Tlb(unsigned entries = 64, Cycle walk_latency = 30,
                 unsigned page_shift = 12);

    /** Translate; @return additional cycles (0 = hit, walk on miss). */
    Cycle access(Addr vaddr);

    StatCounter hits;
    StatCounter misses;

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        u64 lastUse = 0;
    };

    std::vector<Entry> entries;
    Entry *mru = nullptr; ///< last entry hit (scan shortcut).
    Cycle walkLatency;
    unsigned pageShift;
    u64 useClock = 0;
};

} // namespace rsep::mem

#endif // RSEP_MEM_TLB_HH

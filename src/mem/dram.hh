/**
 * @file
 * Dual-channel DDR4-2400 (17-17-17) bank/row model, Table I: 2 ranks per
 * channel, 8 banks per rank, 8K row buffers. Latencies are converted to
 * core cycles at the configured core frequency.
 */

#ifndef RSEP_MEM_DRAM_HH
#define RSEP_MEM_DRAM_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::mem
{

/** DDR4 timing/geometry parameters. */
struct DramParams
{
    double coreGhz = 3.4;       ///< core clock for ns -> cycle conversion.
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    u64 rowBytes = 8192;
    // DDR4-2400 CL17: tCK = 0.833ns, CAS = RCD = RP = 17 tCK ~= 14.17ns.
    double tCasNs = 14.17;
    double tRcdNs = 14.17;
    double tRpNs = 14.17;
    double tBurstNs = 3.33;     ///< 64B burst on a 64-bit channel.
    double controllerNs = 10.0; ///< queueing/controller overhead floor.
};

/** The memory model: returns completion cycles for line fetches. */
class Dram
{
  public:
    explicit Dram(const DramParams &params = DramParams{});

    /** Schedule a 64B read/write of @p addr issued at @p now. */
    Cycle access(Addr addr, Cycle now);

    /** Minimum idle-system read latency in core cycles (for reporting). */
    Cycle minLatency() const;

    const DramParams &params() const { return p; }

    StatCounter reads;
    StatCounter rowHits;
    StatCounter rowMisses;

  private:
    struct Bank
    {
        bool open = false;
        u64 row = 0;
        Cycle freeAt = 0;
    };

    Cycle ns(double v) const
    {
        return static_cast<Cycle>(v * p.coreGhz + 0.5);
    }

    DramParams p;
    std::vector<Bank> banks;      ///< [channel][rank][bank] flattened.
    std::vector<Cycle> chanFree;  ///< data-bus free time per channel.
};

} // namespace rsep::mem

#endif // RSEP_MEM_DRAM_HH

#include "mem/hierarchy.hh"

namespace rsep::mem
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : p(params), l1i(p.l1i), l1d(p.l1d), l2(p.l2), l3(p.l3), ddr(p.dram),
      itlb(p.itlbEntries, p.tlbWalkLatency),
      dtlb(p.dtlbEntries, p.tlbWalkLatency)
{
}

Cycle
MemoryHierarchy::fillFromBeyondL1(Addr addr, Cycle now, bool is_write,
                                  bool run_prefetch)
{
    // L2.
    if (auto pend = l2.pendingFill(addr, now))
        return std::max(*pend, now + p.l2.latency);
    bool l2_hit = l2.accessTags(addr, is_write);
    if (run_prefetch && p.enablePrefetch) {
        if (Addr pf = l2Stream.observe(addr)) {
            // Prefetched lines are pulled through the L3 (inclusive
            // fill path), so streamed data becomes L3-resident.
            if (!l2.peek(pf) && !l2.pendingFill(pf, now)) {
                Cycle src;
                if (l3.pendingFill(pf, now) || l3.peek(pf)) {
                    l3.accessTags(pf, false);
                    src = now + p.l3.latency;
                } else {
                    l3.accessTags(pf, false);
                    src = ddr.access(pf, now + p.l3.latency);
                    l3.trackMiss(pf, now, src);
                }
                l2.accessTags(pf, false);
                ++l2.prefetchFills;
                l2.trackMiss(pf, now, src);
            }
        }
    }
    if (l2_hit)
        return now + p.l2.latency;

    // L3.
    Cycle fill;
    if (auto pend = l3.pendingFill(addr, now)) {
        fill = std::max(*pend, now + p.l3.latency);
    } else {
        bool l3_hit = l3.accessTags(addr, is_write);
        if (run_prefetch && p.enablePrefetch) {
            if (Addr pf = l3Stream.observe(addr))
                prefetchInto(l3, pf, now, ddr.minLatency());
        }
        if (l3_hit) {
            fill = now + p.l3.latency;
        } else {
            fill = ddr.access(addr, now + p.l3.latency);
            fill = l3.trackMiss(addr, now, fill);
        }
    }
    return l2.trackMiss(addr, now, fill);
}

void
MemoryHierarchy::prefetchInto(CacheLevel &level, Addr addr, Cycle now,
                              Cycle source_latency)
{
    if (level.peek(addr) || level.pendingFill(addr, now))
        return;
    level.accessTags(addr, false);
    ++level.prefetchFills;
    level.trackMiss(addr, now, now + source_latency);
}

Cycle
MemoryHierarchy::ifetch(Addr addr, Cycle now)
{
    Cycle tlb_lat = itlb.access(addr);
    now += tlb_lat;
    if (auto pend = l1i.pendingFill(addr, now))
        return std::max(*pend, now + p.l1i.latency);
    if (l1i.accessTags(addr, false))
        return now + p.l1i.latency;
    Cycle fill = fillFromBeyondL1(addr, now, false, false);
    return l1i.trackMiss(addr, now, fill);
}

Cycle
MemoryHierarchy::load(Addr pc, Addr addr, Cycle now)
{
    Cycle tlb_lat = dtlb.access(addr);
    now += tlb_lat;

    // Degree-1 stride prefetch into L1D.
    if (p.enablePrefetch) {
        if (Addr pf = l1dStride.observe(pc, addr)) {
            if (!l1d.peek(pf) && !l1d.pendingFill(pf, now)) {
                Cycle src = fillFromBeyondL1(pf, now, false, false);
                l1d.accessTags(pf, false);
                ++l1d.prefetchFills;
                l1d.trackMiss(pf, now, src);
            }
        }
    }

    if (auto pend = l1d.pendingFill(addr, now))
        return std::max(*pend, now + p.l1d.latency);
    if (l1d.accessTags(addr, false))
        return now + p.l1d.latency;
    Cycle fill = fillFromBeyondL1(addr, now, false, true);
    return l1d.trackMiss(addr, now, fill);
}

void
MemoryHierarchy::storeCommit(Addr addr, Cycle now)
{
    Cycle tlb_lat = dtlb.access(addr);
    now += tlb_lat;
    if (l1d.pendingFill(addr, now))
        return;
    if (l1d.accessTags(addr, true))
        return;
    // Write-allocate: bring the line in; commit does not wait for it.
    Cycle fill = fillFromBeyondL1(addr, now, true, true);
    l1d.trackMiss(addr, now, fill);
}

} // namespace rsep::mem

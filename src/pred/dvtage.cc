#include "pred/dvtage.hh"

namespace rsep::pred
{

Dvtage::Dvtage(const DvtageParams &params, u64 seed)
    : p(params), lvt(size_t{1} << p.lvtBits, 0), deltas(p.itage, seed)
{
}

VpLookup
Dvtage::lookup(Addr pc, const GlobalHist &h)
{
    VpLookup lk;
    lk.itageLk = deltas.lookup(pc, h);
    return finishLookup(pc, std::move(lk));
}

VpLookup
Dvtage::lookup(Addr pc, const GlobalHist &h, const GeoFolds &folds)
{
    VpLookup lk;
    lk.itageLk = deltas.lookup(pc, h, folds);
    return finishLookup(pc, std::move(lk));
}

VpLookup
Dvtage::finishLookup(Addr pc, VpLookup lk)
{
    ++lookups;
    lk.valid = true;
    lk.lvtIdx = static_cast<u32>(((pc >> 2) ^ (pc >> (2 + p.lvtBits)))
                                 & mask(p.lvtBits));

    u64 last = lvt[lk.lvtIdx];
    auto it = spec.find(lk.lvtIdx);
    if (it != spec.end())
        last = it->second.value;

    lk.predicted = last + static_cast<u64>(decodeDelta(lk.itageLk.payload));
    lk.confident = lk.itageLk.confident;
    if (lk.confident)
        ++confidentPreds;

    // Advance the speculative last-value window for *every* lookup
    // (BeBoP's in-flight chaining): back-to-back instances of the same
    // static instruction must chain off the predicted value of the
    // previous in-flight instance, whether or not the core consumed
    // that prediction; otherwise a single low-confidence instance
    // poisons every successor with a stale last value.
    lk.speculated = true;
    SpecEntry &se = spec[lk.lvtIdx];
    se.value = lk.predicted;
    ++se.refs;
    return lk;
}

void
Dvtage::notifySpeculated(VpLookup &lk)
{
    // Spec-window advance now happens in lookup(); kept for API
    // compatibility (marks the prediction as architecturally used).
    (void)lk;
}

void
Dvtage::commit(VpLookup &lk, u64 actual)
{
    if (!lk.valid)
        return;
    if (lk.confident) {
        if (lk.predicted == actual)
            ++correctPreds;
        else
            ++mispredicts;
    }

    // Train deltas against the committed last value (in-order commit
    // makes this exact).
    s64 delta = static_cast<s64>(actual - lvt[lk.lvtIdx]);
    deltas.update(lk.itageLk, encodeDelta(delta));
    lvt[lk.lvtIdx] = actual;

    if (lk.speculated) {
        auto it = spec.find(lk.lvtIdx);
        if (it != spec.end() && --it->second.refs == 0)
            spec.erase(it);
    }
}

u64
Dvtage::storageBits() const
{
    return (u64{1} << p.lvtBits) * 64 + deltas.storageBits();
}

} // namespace rsep::pred

#include "pred/branch_unit.hh"

#include "isa/program.hh"

namespace rsep::pred
{

using isa::Opcode;

BranchUnit::BranchUnit(const TageParams &tp, u64 seed) : tage(tp, seed)
{
    tage.registerFolds(foldSpec);
    fetchFolds.bind(&foldSpec);
}

void
BranchUnit::onFetchBranch(Addr pc, const isa::StaticInst &si,
                          bool actual_taken, Addr actual_target,
                          BranchPrediction &bp)
{
    bp.rasSnap = ras.snapshot();
    bp.actualTaken = actual_taken;

    if (si.isCondBranch()) {
        ++condBranches;
        tage.predict(pc, hist, fetchFolds, bp.tageLk);
        bp.predTaken = bp.tageLk.pred;
        if (bp.predTaken != actual_taken) {
            ++condMispredicts;
            bp.redirect = Redirect::Execute;
        } else if (actual_taken && btb.lookup(pc) != actual_target) {
            // Right direction but no target until decode.
            ++btbMissBubbles;
            bp.redirect = Redirect::Decode;
        }
    } else if (si.op == Opcode::Ret) {
        ++indirectBranches;
        bp.predTaken = true;
        Addr pred_target = ras.pop();
        if (pred_target != actual_target) {
            ++returnMispredicts;
            bp.redirect = Redirect::Execute;
        }
    } else if (si.op == Opcode::BrInd) {
        ++indirectBranches;
        bp.predTaken = true;
        Addr pred_target = btb.lookup(pc);
        if (pred_target != actual_target) {
            ++indirectMispredicts;
            bp.redirect = Redirect::Execute;
        }
    } else {
        // Unconditional direct (B / Bl): target known at decode at the
        // latest; BTB miss costs a decode bubble only.
        bp.predTaken = true;
        if (btb.lookup(pc) != actual_target) {
            ++btbMissBubbles;
            bp.redirect = Redirect::Decode;
        }
        if (si.isCall())
            ras.push(pc + isa::Program::instBytes);
    }

    // Speculative history insert: trace-driven fetch records the actual
    // outcome (wrong paths are never fetched). Unconditional and
    // indirect transfers advance the path history with their target.
    if (si.isCondBranch()) {
        fetchFolds.insertDir(actual_taken, hist.dir);
        hist.insert(actual_taken, pc);
    } else {
        hist.insertPath(actual_target);
    }
}

void
BranchUnit::onCommitBranch(const BranchPrediction &bp, Addr pc,
                           const isa::StaticInst &si, Addr actual_target)
{
    // The lookup carried its component indices/tags from fetch, so
    // training needs no commit-side history replica.
    if (si.isCondBranch())
        tage.update(bp.tageLk, pc, bp.actualTaken);
    if (bp.actualTaken && si.op != Opcode::Ret)
        btb.update(pc, actual_target);
}

u64
BranchUnit::storageBits() const
{
    return tage.storageBits() + btb.storageBits() + ras.storageBits();
}

} // namespace rsep::pred

#include "pred/tage.hh"

#include <cassert>

namespace rsep::pred
{

Tage::Tage(const TageParams &params, u64 seed) : p(params), rng(seed)
{
    base.assign(size_t{1} << p.baseBits, 1); // weakly not-taken.
    size_t tagged = size_t{p.numTagged} << p.taggedBits;
    tTag.assign(tagged, 0);
    tCtr.assign(tagged, 3); // weakly not-taken (3-bit midpoint 4).
    tU.assign(tagged, 0);
}

void
Tage::registerFolds(GeoFoldSpec &spec)
{
    for (unsigned c = 0; c < p.numTagged; ++c) {
        idxSlot[c] =
            static_cast<u16>(spec.require(p.histLens[c], p.taggedBits));
        tagSlot[c] =
            static_cast<u16>(spec.require(p.histLens[c], p.tagBits[c]));
    }
    foldsRegistered = true;
}

void
Tage::indicesFolded(Addr pc, const GlobalHist &h, const GeoFolds &folds,
                    u16 *idx, u16 *tag) const
{
    assert(foldsRegistered);
    // The path fold saturates at 16 history bits: every component with
    // histLen >= 16 shares one fold, computed once per prediction.
    const unsigned ib = p.taggedBits;
    const unsigned shift = ib > 2 ? 1 : 0;
    const u64 pf16 = xorFold(h.path & mask(16), ib) << shift;
    u64 hash0 = pc >> 2;
    hash0 ^= hash0 >> ib;
    for (unsigned c = 0; c < p.numTagged; ++c) {
        const unsigned hl = p.histLens[c];
        u64 hash = hash0 ^ folds.fold(idxSlot[c]);
        hash ^= hl >= 16 ? pf16
                         : xorFold(h.path & mask(hl), ib) << shift;
        idx[c] = static_cast<u16>(hash & mask(ib));
        tag[c] = static_cast<u16>(
            geoTagFolded(pc, folds.fold(tagSlot[c]), p.tagBits[c]));
    }
}

void
Tage::indicesScratch(Addr pc, const GlobalHist &h, u16 *idx, u16 *tag) const
{
    for (unsigned c = 0; c < p.numTagged; ++c) {
        idx[c] = static_cast<u16>(geoIndex(pc, h, p.histLens[c],
                                           p.taggedBits));
        tag[c] = static_cast<u16>(geoTag(pc, h, p.histLens[c],
                                         p.tagBits[c]));
    }
}

void
Tage::predictWith(Addr pc, TageLookup &lk) const
{
    const u32 base_idx = static_cast<u32>((pc >> 2) & mask(p.baseBits));
    const bool base_pred = base[base_idx] >= 2;
    lk.pred = base_pred;
    lk.altPred = base_pred;

    for (unsigned c = 0; c < p.numTagged; ++c) {
        const size_t at = (size_t{c} << p.taggedBits) | lk.idx[c];
        if (tTag[at] == lk.tag[c]) {
            lk.altProvider = lk.provider;
            lk.altPred = lk.pred;
            lk.provider = static_cast<s8>(c);
            const u8 ctr = tCtr[at];
            lk.pred = ctr >= 4;
            lk.providerWeak = ctr == 3 || ctr == 4;
        }
    }
    // The conventional alt computation keeps the prediction of the
    // second-longest match; the loop above maintains exactly that.
}

void
Tage::predict(Addr pc, const GlobalHist &h, const GeoFolds &folds,
              TageLookup &lk) const
{
    indicesFolded(pc, h, folds, lk.idx, lk.tag);
    predictWith(pc, lk);
}

TageLookup
Tage::predict(Addr pc, const GlobalHist &h, const GeoFolds &folds) const
{
    TageLookup lk;
    predict(pc, h, folds, lk);
    return lk;
}

TageLookup
Tage::predict(Addr pc, const GlobalHist &h) const
{
    TageLookup lk;
    indicesScratch(pc, h, lk.idx, lk.tag);
    predictWith(pc, lk);
    return lk;
}

void
Tage::prefetch(Addr pc, const GlobalHist &h, const GeoFolds &folds) const
{
    assert(foldsRegistered);
    const unsigned ib = p.taggedBits;
    const unsigned shift = ib > 2 ? 1 : 0;
    const u64 pf16 = xorFold(h.path & mask(16), ib) << shift;
    u64 hash0 = pc >> 2;
    hash0 ^= hash0 >> ib;
    __builtin_prefetch(&base[(pc >> 2) & mask(p.baseBits)], 0, 1);
    for (unsigned c = 0; c < p.numTagged; ++c) {
        const unsigned hl = p.histLens[c];
        u64 hash = hash0 ^ folds.fold(idxSlot[c]);
        hash ^= hl >= 16 ? pf16
                         : xorFold(h.path & mask(hl), ib) << shift;
        const size_t at =
            (size_t{c} << ib) | static_cast<u32>(hash & mask(ib));
        __builtin_prefetch(&tTag[at], 0, 1);
        __builtin_prefetch(&tCtr[at], 0, 1);
    }
}

void
Tage::update(const TageLookup &lk, Addr pc, bool taken)
{
    const u16 *idx = lk.idx;
    const u16 *tag = lk.tag;
    ++updates;

    auto bump3 = [taken](u8 &c) {
        if (taken) {
            if (c < 7)
                ++c;
        } else if (c > 0) {
            --c;
        }
    };

    const u32 base_idx = static_cast<u32>((pc >> 2) & mask(p.baseBits));
    auto bump_base = [&] {
        u8 &c = base[base_idx];
        if (taken) {
            if (c < 3)
                ++c;
        } else if (c > 0) {
            --c;
        }
    };

    if (lk.provider >= 0) {
        const size_t at =
            (size_t{static_cast<unsigned>(lk.provider)} << p.taggedBits) |
            idx[static_cast<unsigned>(lk.provider)];
        // Useful bit: provider differed from alt and was right/wrong.
        if (lk.pred != lk.altPred) {
            u8 &u = tU[at];
            if (lk.pred == taken) {
                if (u < 3)
                    ++u;
            } else if (u > 0) {
                --u;
            }
        }
        bump3(tCtr[at]);
        // Weak providers also train the alternate (base) prediction.
        if (lk.providerWeak && lk.altProvider < 0)
            bump_base();
    } else {
        bump_base();
    }

    // Allocate on a misprediction if a longer component is available.
    bool mispred = lk.pred != taken;
    if (mispred && lk.provider < static_cast<int>(p.numTagged) - 1) {
        unsigned start = static_cast<unsigned>(lk.provider + 1);
        // Pick the first u==0 entry among longer components, with a
        // 1/2 chance of skipping one to decorrelate allocations.
        int victim = -1;
        for (unsigned c = start; c < p.numTagged; ++c) {
            if (tU[(size_t{c} << p.taggedBits) | idx[c]] == 0) {
                victim = static_cast<int>(c);
                if (c + 1 < p.numTagged && rng.chance(1, 2) &&
                    tU[(size_t{c + 1} << p.taggedBits) | idx[c + 1]] == 0)
                    victim = static_cast<int>(c + 1);
                break;
            }
        }
        if (victim >= 0) {
            const size_t at =
                (size_t{static_cast<unsigned>(victim)} << p.taggedBits) |
                idx[victim];
            tTag[at] = tag[victim];
            tCtr[at] = taken ? 4 : 3;
            tU[at] = 0;
        } else {
            for (unsigned c = start; c < p.numTagged; ++c) {
                u8 &u = tU[(size_t{c} << p.taggedBits) | idx[c]];
                if (u > 0)
                    --u;
            }
        }
    }

    // Periodic useful-bit aging.
    if (updates % p.usefulResetPeriod == 0) {
        for (u8 &u : tU)
            if (u > 0)
                --u;
    }
}

u64
Tage::storageBits() const
{
    u64 bits = (u64{1} << p.baseBits) * 2;
    for (unsigned c = 0; c < p.numTagged; ++c)
        bits += (u64{1} << p.taggedBits) * (p.tagBits[c] + 3 + 2);
    return bits;
}

} // namespace rsep::pred

#include "pred/tage.hh"

namespace rsep::pred
{

Tage::Tage(const TageParams &params, u64 seed)
    : p(params), base(size_t{1} << p.baseBits, SatCounter(2, 1)),
      rng(seed)
{
    tagged.resize(p.numTagged);
    for (unsigned c = 0; c < p.numTagged; ++c)
        tagged[c].assign(size_t{1} << p.taggedBits, TaggedEntry{});
}

TageLookup
Tage::predict(Addr pc, const GlobalHist &h) const
{
    TageLookup lk;
    lk.baseIdx = static_cast<u32>((pc >> 2) & mask(p.baseBits));
    bool base_pred = base[lk.baseIdx].value() >= 2;

    lk.pred = base_pred;
    lk.altPred = base_pred;

    for (unsigned c = 0; c < p.numTagged; ++c) {
        lk.idx[c] = geoIndex(pc, h, p.histLens[c], p.taggedBits);
        lk.tag[c] = geoTag(pc, h, p.histLens[c], p.tagBits[c]);
    }
    for (unsigned c = 0; c < p.numTagged; ++c) {
        const TaggedEntry &e = tagged[c][lk.idx[c]];
        if (e.tag == lk.tag[c]) {
            lk.altProvider = lk.provider;
            lk.altPred = lk.pred;
            lk.provider = static_cast<int>(c);
            lk.pred = e.ctr.value() >= 4;
            lk.providerWeak = e.ctr.value() == 3 || e.ctr.value() == 4;
        }
    }
    // The conventional alt computation keeps the prediction of the
    // second-longest match; the loop above maintains exactly that.
    return lk;
}

void
Tage::update(const TageLookup &lk, Addr pc, bool taken)
{
    ++updates;

    auto update_ctr = [taken](SatCounter &c) {
        if (taken)
            c.increment();
        else
            c.decrement();
    };

    if (lk.provider >= 0) {
        TaggedEntry &e = tagged[lk.provider][lk.idx[lk.provider]];
        // Useful bit: provider differed from alt and was right/wrong.
        if (lk.pred != lk.altPred) {
            if (lk.pred == taken)
                e.u.increment();
            else
                e.u.decrement();
        }
        update_ctr(e.ctr);
        // Weak providers also train the alternate (base) prediction.
        if (lk.providerWeak && lk.altProvider < 0)
            update_ctr(base[lk.baseIdx]);
    } else {
        update_ctr(base[lk.baseIdx]);
    }

    // Allocate on a misprediction if a longer component is available.
    bool mispred = lk.pred != taken;
    if (mispred && lk.provider < static_cast<int>(p.numTagged) - 1) {
        unsigned start = static_cast<unsigned>(lk.provider + 1);
        // Pick the first u==0 entry among longer components, with a
        // 1/2 chance of skipping one to decorrelate allocations.
        int victim = -1;
        for (unsigned c = start; c < p.numTagged; ++c) {
            if (tagged[c][lk.idx[c]].u.zero()) {
                victim = static_cast<int>(c);
                if (c + 1 < p.numTagged && rng.chance(1, 2) &&
                    tagged[c + 1][lk.idx[c + 1]].u.zero())
                    victim = static_cast<int>(c + 1);
                break;
            }
        }
        if (victim >= 0) {
            TaggedEntry &e = tagged[victim][lk.idx[victim]];
            e.tag = lk.tag[victim];
            e.ctr.reset(taken ? 4 : 3);
            e.u.reset(0);
        } else {
            for (unsigned c = start; c < p.numTagged; ++c)
                tagged[c][lk.idx[c]].u.decrement();
        }
    }

    // Periodic useful-bit aging.
    if (updates % p.usefulResetPeriod == 0) {
        for (auto &comp : tagged)
            for (auto &e : comp)
                e.u.decrement();
    }
}

u64
Tage::storageBits() const
{
    u64 bits = (u64{1} << p.baseBits) * 2;
    for (unsigned c = 0; c < p.numTagged; ++c)
        bits += (u64{1} << p.taggedBits) * (p.tagBits[c] + 3 + 2);
    return bits;
}

} // namespace rsep::pred

/**
 * @file
 * Front-end branch prediction facade: TAGE direction + BTB targets +
 * RAS, with trace-driven speculative history management.
 *
 * The model is trace-driven: wrong-path instructions are never fetched,
 * so the global history always records actual outcomes. What the unit
 * decides is *when* fetch may proceed: a mispredicted branch redirects
 * at execute (full penalty), a BTB-missing taken branch redirects at
 * decode (short bubble).
 *
 * One incremental folded-history register set (ghist.hh) shadows the
 * speculative fetch-side history; every TAGE lookup reads it in O(1)
 * per component instead of re-folding up to 64 history bits. The
 * lookup result carries its component indices/tags (packed u16, see
 * TageLookup) through the ROB, so commit-time training is a pure
 * table write with no history replica and no re-hashing.
 */

#ifndef RSEP_PRED_BRANCH_UNIT_HH
#define RSEP_PRED_BRANCH_UNIT_HH

#include "common/stats.hh"
#include "isa/static_inst.hh"
#include "pred/btb.hh"
#include "pred/ghist.hh"
#include "pred/tage.hh"

namespace rsep::pred
{

/** Outcome of predicting one fetched branch. */
enum class Redirect : u8 {
    None,    ///< correctly predicted.
    Decode,  ///< direction right, target discovered at decode (BTB miss).
    Execute, ///< mispredicted: redirect when the branch executes.
};

/** Per-branch state carried in the ROB for commit-time training. */
struct BranchPrediction
{
    Redirect redirect = Redirect::None;
    bool predTaken = false;
    bool actualTaken = false;
    TageLookup tageLk;
    ReturnAddressStack::Snapshot rasSnap{0, 0};
};

/** Aggregated front-end predictor. */
class BranchUnit
{
  public:
    explicit BranchUnit(const TageParams &tp = TageParams{}, u64 seed = 7);

    /**
     * Process a fetched branch. @p actual_taken / @p actual_target come
     * from the trace. Updates speculative history/RAS. Fills @p bp in
     * place — the caller passes a default-initialized prediction (the
     * pipeline's ROB slot arrives freshly value-initialized), avoiding
     * a by-value round trip of the lookup payload per branch.
     */
    void onFetchBranch(Addr pc, const isa::StaticInst &si, bool actual_taken,
                       Addr actual_target, BranchPrediction &bp);

    /** Convenience by-value wrapper (tests / offline tools). */
    BranchPrediction
    onFetchBranch(Addr pc, const isa::StaticInst &si, bool actual_taken,
                  Addr actual_target)
    {
        BranchPrediction bp;
        onFetchBranch(pc, si, actual_taken, actual_target, bp);
        return bp;
    }

    /** Commit-time predictor training. */
    void onCommitBranch(const BranchPrediction &bp, Addr pc,
                        const isa::StaticInst &si, Addr actual_target);

    /** Squash: restore history and RAS to the given snapshots. */
    void
    restore(const GlobalHist &h, const ReturnAddressStack::Snapshot &rs)
    {
        hist = h;
        fetchFolds.recompute(h.dir);
        ras.restore(rs);
    }

    const GlobalHist &history() const { return hist; }
    ReturnAddressStack::Snapshot rasSnapshot() const { return ras.snapshot(); }

    u64 storageBits() const;

    // Stats.
    StatCounter condBranches;
    StatCounter condMispredicts;
    StatCounter indirectBranches;
    StatCounter indirectMispredicts;
    StatCounter returnMispredicts;
    StatCounter btbMissBubbles;

  private:
    Tage tage;
    Btb btb;
    ReturnAddressStack ras;
    GeoFoldSpec foldSpec;
    GlobalHist hist;     ///< speculative fetch-side history.
    GeoFolds fetchFolds; ///< folds shadowing @c hist.
};

} // namespace rsep::pred

#endif // RSEP_PRED_BRANCH_UNIT_HH

/**
 * @file
 * ITTAGE-style tagged geometric payload predictor.
 *
 * Shared machinery for the two payload predictors in the paper:
 *  - the IDist (distance) predictor of RSEP (Section IV-C), and
 *  - the delta components of D-VTAGE (BeBoP [6]).
 *
 * A PC-indexed untagged base table is backed by N partially tagged
 * components indexed by PC ^ folded global branch/path history with
 * geometrically increasing history lengths. Each entry carries a
 * payload, a confidence counter (prediction allowed only at saturation,
 * per the paper's use_pred = 255 policy) and a useful bit for the
 * TAGE replacement policy.
 */

#ifndef RSEP_PRED_ITTAGE_HH
#define RSEP_PRED_ITTAGE_HH

#include <array>
#include <vector>

#include "common/prob_counter.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "pred/ghist.hh"

namespace rsep::pred
{

/** Maximum number of tagged components supported by ItageLookup. */
constexpr unsigned maxItageComps = 8;

/** Configuration of an ITTAGE-style predictor. */
struct ItageParams
{
    unsigned baseBits = 14;        ///< log2 base entries.
    unsigned numTagged = 6;
    unsigned taggedBits = 10;      ///< log2 entries per tagged comp.
    std::array<unsigned, maxItageComps> histLens = {2, 4, 8, 16, 32, 64,
                                                    0, 0};
    std::array<unsigned, maxItageComps> tagBits = {13, 14, 15, 16, 17, 18,
                                                   0, 0};
    unsigned payloadBits = 8;      ///< representable payload width.
    ConfidenceKind confKind = ConfidenceKind::Deterministic8;
    u64 usefulResetPeriod = 1 << 18;
};

/**
 * Field-introspection hook for ItageParams (see visitFields on
 * RsepConfig): the scenario layer derives its keys — including the
 * array-valued per-component geometry — from this enumeration.
 * Array values are spelled as comma lists in scenario files
 * (`hist_lens = 2,4,8,16,32,64`); unspecified tail components are 0.
 */
template <class V>
void
visitFields(ItageParams &p, V &&v)
{
    v("base_bits", p.baseBits);
    v("num_tagged", p.numTagged);
    v("tagged_bits", p.taggedBits);
    v("hist_lens", p.histLens);
    v("tag_bits", p.tagBits);
    v("payload_bits", p.payloadBits);
    v("conf_kind", p.confKind);
    v("useful_reset_period", p.usefulResetPeriod);
}

/** Result of a lookup; carried with the instruction until commit. */
struct ItageLookup
{
    int provider = -1;             ///< tagged comp index, -1 = base.
    u64 payload = 0;
    u32 confidence = 0;            ///< effective 0..255 scale.
    bool confident = false;        ///< confidence saturated.
    int altProvider = -1;
    u64 altPayload = 0;
    bool altValid = false;
    std::array<u32, maxItageComps> idx{};
    std::array<u32, maxItageComps> tag{};
    u32 baseIdx = 0;
};

/** The predictor. Payloads are opaque u64 values. */
class ItageTable
{
  public:
    explicit ItageTable(const ItageParams &params, u64 seed = 3);

    /** Look up under the history the instruction was fetched with. */
    ItageLookup lookup(Addr pc, const GlobalHist &h) const;

    /**
     * Commit-time training with the observed payload.
     * @param allocate_on_wrong grow to longer components on payload
     *        mismatch (standard TAGE allocation).
     */
    void update(const ItageLookup &lk, u64 actual_payload,
                bool allocate_on_wrong = true);

    /**
     * Training when the prediction is known wrong but the correct
     * payload is unavailable (e.g., failed equality validation): the
     * provider's confidence collapses, nothing is allocated.
     */
    void updateIncorrect(const ItageLookup &lk);

    /** True if @p payload fits the configured entry width. */
    bool
    representable(u64 payload) const
    {
        return payload <= mask(p.payloadBits);
    }

    u64 storageBits() const;
    const ItageParams &params() const { return p; }

  private:
    struct TaggedEntry
    {
        u32 tag = 0;
        u64 payload = 0;
        ConfidenceCounter conf;
        SatCounter u{1, 0};
    };
    struct BaseEntry
    {
        u64 payload = 0;
        ConfidenceCounter conf;
    };

    ItageParams p;
    std::vector<BaseEntry> base;
    std::vector<std::vector<TaggedEntry>> tagged;
    mutable Rng rng;
    u64 updates = 0;
};

} // namespace rsep::pred

#endif // RSEP_PRED_ITTAGE_HH

/**
 * @file
 * ITTAGE-style tagged geometric payload predictor.
 *
 * Shared machinery for the two payload predictors in the paper:
 *  - the IDist (distance) predictor of RSEP (Section IV-C), and
 *  - the delta components of D-VTAGE (BeBoP [6]).
 *
 * A PC-indexed untagged base table is backed by N partially tagged
 * components indexed by PC ^ folded global branch/path history with
 * geometrically increasing history lengths. Each entry carries a
 * payload, a confidence counter (prediction allowed only at saturation,
 * per the paper's use_pred = 255 policy) and a useful bit for the
 * TAGE replacement policy.
 */

#ifndef RSEP_PRED_ITTAGE_HH
#define RSEP_PRED_ITTAGE_HH

#include <array>
#include <vector>

#include "common/prob_counter.hh"
#include "common/rng.hh"
#include "pred/ghist.hh"

namespace rsep::pred
{

/** Maximum number of tagged components supported by ItageLookup. */
constexpr unsigned maxItageComps = 8;

/** Configuration of an ITTAGE-style predictor. */
struct ItageParams
{
    unsigned baseBits = 14;        ///< log2 base entries.
    unsigned numTagged = 6;
    unsigned taggedBits = 10;      ///< log2 entries per tagged comp.
    std::array<unsigned, maxItageComps> histLens = {2, 4, 8, 16, 32, 64,
                                                    0, 0};
    std::array<unsigned, maxItageComps> tagBits = {13, 14, 15, 16, 17, 18,
                                                   0, 0};
    unsigned payloadBits = 8;      ///< representable payload width.
    ConfidenceKind confKind = ConfidenceKind::Deterministic8;
    u64 usefulResetPeriod = 1 << 18;
};

/**
 * Field-introspection hook for ItageParams (see visitFields on
 * RsepConfig): the scenario layer derives its keys — including the
 * array-valued per-component geometry — from this enumeration.
 * Array values are spelled as comma lists in scenario files
 * (`hist_lens = 2,4,8,16,32,64`); unspecified tail components are 0.
 */
template <class V>
void
visitFields(ItageParams &p, V &&v)
{
    v("base_bits", p.baseBits);
    v("num_tagged", p.numTagged);
    v("tagged_bits", p.taggedBits);
    v("hist_lens", p.histLens);
    v("tag_bits", p.tagBits);
    v("payload_bits", p.payloadBits);
    v("conf_kind", p.confKind);
    v("useful_reset_period", p.usefulResetPeriod);
}

/**
 * Result of a lookup; carried with the instruction until commit. Two
 * copies ride in every InflightInst (D-VTAGE and the distance
 * predictor), so the layout is packed: indices fit u16 (taggedBits is
 * checked <= 16 at construction), providers fit s8, confidence is the
 * effective 0..255 scale.
 */
struct ItageLookup
{
    u64 payload = 0;
    u64 altPayload = 0;
    std::array<u16, maxItageComps> idx{};
    std::array<u32, maxItageComps> tag{};
    u32 baseIdx = 0;
    u8 confidence = 0;             ///< effective 0..255 scale.
    s8 provider = -1;              ///< tagged comp index, -1 = base.
    s8 altProvider = -1;
    bool confident = false;        ///< confidence saturated.
    bool altValid = false;
};

/** The predictor. Payloads are opaque u64 values. */
class ItageTable
{
  public:
    explicit ItageTable(const ItageParams &params, u64 seed = 3);

    /** Register this table's (hist len, fold width) pairs; enables the
     *  folded lookup overload. */
    void registerFolds(GeoFoldSpec &spec);

    /** Look up under the history the instruction was fetched with. */
    ItageLookup lookup(Addr pc, const GlobalHist &h) const;

    /** Folded-history fast path: @p folds must shadow @p h. The lookup
     *  result (including the carried idx/tag arrays) is identical to
     *  the from-scratch overload. */
    ItageLookup lookup(Addr pc, const GlobalHist &h,
                       const GeoFolds &folds) const;

    /**
     * Commit-time training with the observed payload.
     * @param allocate_on_wrong grow to longer components on payload
     *        mismatch (standard TAGE allocation).
     */
    void update(const ItageLookup &lk, u64 actual_payload,
                bool allocate_on_wrong = true);

    /**
     * Training when the prediction is known wrong but the correct
     * payload is unavailable (e.g., failed equality validation): the
     * provider's confidence collapses, nothing is allocated.
     */
    void updateIncorrect(const ItageLookup &lk);

    /** True if @p payload fits the configured entry width. */
    bool
    representable(u64 payload) const
    {
        return payload <= mask(p.payloadBits);
    }

    u64 storageBits() const;
    const ItageParams &params() const { return p; }

  private:
    void indicesInto(Addr pc, const GlobalHist &h, ItageLookup &lk) const;
    ItageLookup lookupWith(Addr pc, ItageLookup lk) const;

    // Confidence counters stored as raw levels with a table-wide kind;
    // the helpers replicate ConfidenceCounter exactly (including the
    // FPC rng-call sequence, which is shared with allocation rolls).
    void
    confOnCorrect(u8 &lvl) const
    {
        if (p.confKind == ConfidenceKind::Deterministic8) {
            if (lvl < 255)
                ++lvl;
        } else {
            if (lvl >= 7)
                return;
            u32 den = fpc3Denominators[lvl];
            if (den == 1 || rng.chance(1, den))
                ++lvl;
        }
    }
    u32
    confEffective(u8 lvl) const
    {
        if (p.confKind == ConfidenceKind::Deterministic8)
            return lvl;
        constexpr auto eff = fpc3EffectiveLevels();
        return eff[lvl];
    }
    bool
    confSaturated(u8 lvl) const
    {
        return p.confKind == ConfidenceKind::Deterministic8 ? lvl == 255
                                                            : lvl == 7;
    }

    ItageParams p;
    /** Banked SoA storage: tagged entry (c, i) lives at flat position
     *  (c << taggedBits) | i in each array. */
    std::vector<u64> basePayload;
    std::vector<u8> baseConf;
    std::vector<u32> tTag;
    std::vector<u64> tPayload;
    std::vector<u8> tConf;
    std::vector<u8> tU; ///< 1-bit useful counters.
    std::array<u16, maxItageComps> idxSlot{};
    std::array<u16, maxItageComps> tagSlot{};
    bool foldsRegistered = false;
    mutable Rng rng;
    u64 updates = 0;
};

} // namespace rsep::pred

#endif // RSEP_PRED_ITTAGE_HH

/**
 * @file
 * Branch target buffer (2-way, 4K entries) and 32-entry return address
 * stack, per Table I.
 */

#ifndef RSEP_PRED_BTB_HH
#define RSEP_PRED_BTB_HH

#include <cstddef>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace rsep::pred
{

/** Set-associative BTB storing the last observed target per branch. */
class Btb
{
  public:
    explicit Btb(unsigned entries = 4096, unsigned assoc = 2);

    /** @return predicted target, or 0 when the branch misses. */
    Addr lookup(Addr pc) const;

    /** Install/refresh the target of the (taken) branch at @p pc. */
    void update(Addr pc, Addr target);

    u64 storageBits() const;

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        u8 lru = 0;
    };

    unsigned sets;
    unsigned ways;
    std::vector<Entry> arr;

    size_t setOf(Addr pc) const { return (pc >> 2) & (sets - 1); }
    Addr tagOf(Addr pc) const { return pc >> 2; }
};

/**
 * Return address stack. Trace-driven recovery note: on a squash the
 * pipeline restores the stack pointer (standard pointer-repair RAS);
 * entry corruption past the restored pointer is modelled as-is.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32);

    void push(Addr return_pc);
    /** Pop and return the predicted return target. */
    Addr pop();
    /** Top without popping. */
    Addr top() const;

    /** Snapshot = {pointer, top value} for squash repair. */
    struct Snapshot
    {
        unsigned ptr;
        Addr topVal;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    u64 storageBits() const { return static_cast<u64>(stack.size()) * 64; }

  private:
    std::vector<Addr> stack;
    unsigned ptr = 0; ///< number of valid entries (mod capacity wrap).
};

} // namespace rsep::pred

#endif // RSEP_PRED_BTB_HH

/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud), Table I front
 * end: 1 base + 12 partially tagged geometric-history components,
 * ~15K entries total.
 */

#ifndef RSEP_PRED_TAGE_HH
#define RSEP_PRED_TAGE_HH

#include <array>
#include <vector>

#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "pred/ghist.hh"

namespace rsep::pred
{

/** Configuration of the TAGE branch predictor. */
struct TageParams
{
    unsigned baseBits = 13;           ///< log2 base entries (8K).
    unsigned numTagged = 12;
    unsigned taggedBits = 9;          ///< log2 entries per tagged comp.
    std::array<unsigned, 12> histLens = {2, 4, 6, 8, 12, 16, 24, 32,
                                         40, 48, 56, 64};
    std::array<unsigned, 12> tagBits = {8, 8, 9, 9, 10, 10, 11, 11,
                                        12, 12, 13, 13};
    u64 usefulResetPeriod = 1 << 18;  ///< epoch for u-bit aging.
};

/** Per-prediction bookkeeping carried from fetch to commit. */
struct TageLookup
{
    bool pred = false;
    bool altPred = false;
    int provider = -1;     ///< tagged component index, -1 = base.
    int altProvider = -1;
    bool providerWeak = false;
    std::array<u32, 12> idx{};
    std::array<u32, 12> tag{};
    u32 baseIdx = 0;
};

/** The TAGE predictor proper. */
class Tage
{
  public:
    explicit Tage(const TageParams &params = TageParams{}, u64 seed = 1);

    /** Predict the direction of the branch at @p pc under history @p h. */
    TageLookup predict(Addr pc, const GlobalHist &h) const;

    /** Commit-time update with the actual direction. */
    void update(const TageLookup &lk, Addr pc, bool taken);

    /** Total storage in bits (for the cost model). */
    u64 storageBits() const;

  private:
    struct TaggedEntry
    {
        u32 tag = 0;
        SatCounter ctr{3, 3};  ///< 3-bit, midpoint 4 = weakly taken.
        SatCounter u{2, 0};
    };

    TageParams p;
    std::vector<SatCounter> base; ///< 2-bit bimodal.
    std::vector<std::vector<TaggedEntry>> tagged;
    Rng rng;
    u64 updates = 0;
};

} // namespace rsep::pred

#endif // RSEP_PRED_TAGE_HH

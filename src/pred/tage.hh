/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud), Table I front
 * end: 1 base + 12 partially tagged geometric-history components,
 * ~15K entries total.
 *
 * Storage is banked struct-of-arrays: tags, prediction counters and
 * useful bits live in separate contiguous arrays indexed by
 * (component << taggedBits) | index, so the 12 tagged probes of a
 * prediction are a tight gather over prefetchable memory instead of 12
 * scattered vector-of-vector dereferences. Lookups take an incremental
 * GeoFolds register set (see ghist.hh) and are hash-identical to the
 * from-scratch geoIndex/geoTag path, which is kept for tests.
 */

#ifndef RSEP_PRED_TAGE_HH
#define RSEP_PRED_TAGE_HH

#include <array>
#include <vector>

#include "common/rng.hh"
#include "pred/ghist.hh"

namespace rsep::pred
{

/** Configuration of the TAGE branch predictor. */
struct TageParams
{
    unsigned baseBits = 13;           ///< log2 base entries (8K).
    unsigned numTagged = 12;
    unsigned taggedBits = 9;          ///< log2 entries per tagged comp.
    std::array<unsigned, 12> histLens = {2, 4, 6, 8, 12, 16, 24, 32,
                                         40, 48, 56, 64};
    std::array<unsigned, 12> tagBits = {8, 8, 9, 9, 10, 10, 11, 11,
                                        12, 12, 13, 13};
    u64 usefulResetPeriod = 1 << 18;  ///< epoch for u-bit aging.
};

/**
 * Per-prediction bookkeeping carried from fetch to commit. Indices and
 * tags are carried packed to 16 bits each (table indices are 9 bits,
 * partial tags at most 13), halving the old two-u32-array payload; the
 * commit-side update consumes them directly instead of re-hashing the
 * branch's fetch-time history. (A rematerialize-at-update variant that
 * carried only the folded snapshot was measured slower: it re-ran the
 * 12-component index hash per retiring branch and forced a second
 * folded-history replica to be maintained at commit.)
 */
struct TageLookup
{
    u16 idx[12] = {};      ///< per-component table indices.
    u16 tag[12] = {};      ///< per-component partial tags.
    bool pred = false;
    bool altPred = false;
    s8 provider = -1;      ///< tagged component index, -1 = base.
    s8 altProvider = -1;
    bool providerWeak = false;
};

/** The TAGE predictor proper. */
class Tage
{
  public:
    explicit Tage(const TageParams &params = TageParams{}, u64 seed = 1);

    /** Register this predictor's (hist len, fold width) pairs; must be
     *  called before the folded predict/update entry points. */
    void registerFolds(GeoFoldSpec &spec);

    /** Predict the branch at @p pc under history @p h with the folds
     *  shadowing @p h (the hot path). Fills @p lk in place; the caller
     *  passes a default-initialized lookup. */
    void predict(Addr pc, const GlobalHist &h, const GeoFolds &folds,
                 TageLookup &lk) const;

    /** By-value variant of the folded predict. */
    TageLookup predict(Addr pc, const GlobalHist &h,
                       const GeoFolds &folds) const;

    /** From-scratch variant (tests / unfolded callers). */
    TageLookup predict(Addr pc, const GlobalHist &h) const;

    /** Commit-time update; consumes the indices/tags @p lk carried
     *  from its predict() — no history needed at commit. */
    void update(const TageLookup &lk, Addr pc, bool taken);

    /** Prefetch the tagged-table lines a later predict(pc) under the
     *  same history will touch (fetch-group batching). */
    void prefetch(Addr pc, const GlobalHist &h,
                  const GeoFolds &folds) const;

    /** Total storage in bits (for the cost model). */
    u64 storageBits() const;

  private:
    void indicesFolded(Addr pc, const GlobalHist &h, const GeoFolds &folds,
                       u16 *idx, u16 *tag) const;
    void indicesScratch(Addr pc, const GlobalHist &h, u16 *idx,
                        u16 *tag) const;
    void predictWith(Addr pc, TageLookup &lk) const;

    TageParams p;
    /** Banked SoA storage: entry (c, i) of a tagged component lives at
     *  flat position (c << taggedBits) | i in each array. */
    std::vector<u8> base;  ///< 2-bit bimodal counters.
    std::vector<u16> tTag; ///< partial tags (<= 13 bits).
    std::vector<u8> tCtr;  ///< 3-bit prediction counters.
    std::vector<u8> tU;    ///< 2-bit useful counters.
    std::array<u16, 12> idxSlot{};
    std::array<u16, 12> tagSlot{};
    bool foldsRegistered = false;
    Rng rng;
    u64 updates = 0;
};

} // namespace rsep::pred

#endif // RSEP_PRED_TAGE_HH

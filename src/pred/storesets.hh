/**
 * @file
 * Store Sets memory dependence predictor (Chrysos & Emer), Table I:
 * 2K-entry SSIT, 1K-entry LFST, not rolled back on squash.
 */

#ifndef RSEP_PRED_STORESETS_HH
#define RSEP_PRED_STORESETS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::pred
{

/** Store Sets: predicts which older store a load must wait for. */
class StoreSets
{
  public:
    StoreSets(unsigned ssit_entries = 2048, unsigned lfst_entries = 1024);

    /**
     * Rename-time hook for a load: @return the sequence number of the
     * inflight store the load should wait for, or 0 if unconstrained.
     */
    SeqNum loadRename(Addr pc);

    /**
     * Rename-time hook for a store: @return the older store to order
     * behind (store-store ordering within a set), and registers this
     * store as the set's last fetched store.
     */
    SeqNum storeRename(Addr pc, SeqNum seq);

    /** Commit/squash of a store: clear its LFST slot if still owner. */
    void storeRetire(Addr pc, SeqNum seq);

    /** A load at @p load_pc violated ordering against @p store_pc. */
    void reportViolation(Addr load_pc, Addr store_pc);

    u64 storageBits() const;

    StatCounter violations;

  private:
    struct SsitEntry
    {
        bool valid = false;
        u32 ssid = 0;
    };
    struct LfstEntry
    {
        bool valid = false;
        SeqNum lastStore = 0;
    };

    size_t ssitIndex(Addr pc) const { return (pc >> 2) & (ssit.size() - 1); }

    std::vector<SsitEntry> ssit;
    std::vector<LfstEntry> lfst;
};

} // namespace rsep::pred

#endif // RSEP_PRED_STORESETS_HH

#include "pred/storesets.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rsep::pred
{

StoreSets::StoreSets(unsigned ssit_entries, unsigned lfst_entries)
    : ssit(ssit_entries), lfst(lfst_entries)
{
    if (!isPowerOf2(ssit_entries) || !isPowerOf2(lfst_entries))
        rsep_fatal("StoreSets tables must be powers of two");
}

SeqNum
StoreSets::loadRename(Addr pc)
{
    const SsitEntry &se = ssit[ssitIndex(pc)];
    if (!se.valid)
        return 0;
    const LfstEntry &le = lfst[se.ssid & (lfst.size() - 1)];
    return le.valid ? le.lastStore : 0;
}

SeqNum
StoreSets::storeRename(Addr pc, SeqNum seq)
{
    const SsitEntry &se = ssit[ssitIndex(pc)];
    if (!se.valid)
        return 0;
    LfstEntry &le = lfst[se.ssid & (lfst.size() - 1)];
    SeqNum dep = le.valid ? le.lastStore : 0;
    le.valid = true;
    le.lastStore = seq;
    return dep;
}

void
StoreSets::storeRetire(Addr pc, SeqNum seq)
{
    const SsitEntry &se = ssit[ssitIndex(pc)];
    if (!se.valid)
        return;
    LfstEntry &le = lfst[se.ssid & (lfst.size() - 1)];
    if (le.valid && le.lastStore == seq)
        le.valid = false;
}

void
StoreSets::reportViolation(Addr load_pc, Addr store_pc)
{
    ++violations;
    SsitEntry &ls = ssit[ssitIndex(load_pc)];
    SsitEntry &ss = ssit[ssitIndex(store_pc)];
    // Chrysos & Emer merge rules.
    if (!ls.valid && !ss.valid) {
        u32 ssid = static_cast<u32>(ssitIndex(load_pc)) &
                   static_cast<u32>(lfst.size() - 1);
        ls = {true, ssid};
        ss = {true, ssid};
    } else if (ls.valid && !ss.valid) {
        ss = ls;
    } else if (!ls.valid && ss.valid) {
        ls = ss;
    } else {
        u32 ssid = std::min(ls.ssid, ss.ssid);
        ls.ssid = ssid;
        ss.ssid = ssid;
    }
}

u64
StoreSets::storageBits() const
{
    u64 ssid_bits = floorLog2(lfst.size());
    return ssit.size() * (1 + ssid_bits) + lfst.size() * (1 + 16);
}

} // namespace rsep::pred

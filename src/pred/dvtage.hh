/**
 * @file
 * D-VTAGE value predictor (Perais & Seznec, BeBoP/HPCA'15): a last-value
 * table plus ITTAGE-style differential (stride) components. This is the
 * paper's "regular VP" comparison arm (~256KB configuration).
 */

#ifndef RSEP_PRED_DVTAGE_HH
#define RSEP_PRED_DVTAGE_HH

#include <string>
#include <unordered_map>

#include "common/stats.hh"
#include "pred/ittage.hh"

namespace rsep::pred
{

/** D-VTAGE configuration. */
struct DvtageParams
{
    unsigned lvtBits = 14;        ///< log2 last-value-table entries (16K).
    unsigned deltaBits = 16;      ///< representable (zigzag) delta width.
    ItageParams itage{
        .baseBits = 14,
        .numTagged = 6,
        .taggedBits = 10,
        .histLens = {2, 4, 8, 16, 32, 64, 0, 0},
        .tagBits = {12, 12, 13, 13, 14, 14, 0, 0},
        .payloadBits = 16,
        .confKind = ConfidenceKind::Deterministic8,
    };
};

/**
 * Field-introspection hook for DvtageParams: the `[vp]` scenario-file
 * section, so D-VTAGE geometry sweeps need no rebuild. The nested
 * delta-component ItageParams is flattened with an `itage_` prefix
 * (e.g. `itage_hist_lens = 1,2,4,8`, array values as comma lists).
 */
template <class V>
void
visitFields(DvtageParams &p, V &&v)
{
    v("lvt_bits", p.lvtBits);
    v("delta_bits", p.deltaBits);
    visitFields(p.itage, [&v](const char *key, auto &field) {
        // The temporary's lifetime spans the visitor call, which is
        // all any visitor may assume about a key pointer.
        v((std::string("itage_") + key).c_str(), field);
    });
}

/** Per-instruction lookup state carried until commit. */
struct VpLookup
{
    ItageLookup itageLk;
    u64 predicted = 0;         ///< predicted result value.
    u32 lvtIdx = 0;
    bool valid = false;        ///< a lookup was performed.
    bool confident = false;    ///< prediction usable.
    bool speculated = false;   ///< prediction was consumed by the core.
};

/** The predictor. */
class Dvtage
{
  public:
    explicit Dvtage(const DvtageParams &params = DvtageParams{},
                    u64 seed = 11);

    /** Register the delta table's fold geometry. */
    void registerFolds(GeoFoldSpec &spec) { deltas.registerFolds(spec); }

    /**
     * Rename-time lookup for the instruction at @p pc fetched under
     * history @p h. The caller decides whether to speculate (and then
     * calls notifySpeculated so back-to-back instances chain).
     */
    VpLookup lookup(Addr pc, const GlobalHist &h);

    /** Folded-history fast path; @p folds must shadow @p h. */
    VpLookup lookup(Addr pc, const GlobalHist &h, const GeoFolds &folds);

    /** The core consumed this prediction: advance the spec window. */
    void notifySpeculated(VpLookup &lk);

    /** Commit-time training with the architectural result. */
    void commit(VpLookup &lk, u64 actual);

    /** Any squash: drop the speculative last-value window. */
    void squash() { spec.clear(); }

    u64 storageBits() const;
    const DvtageParams &params() const { return p; }

    StatCounter lookups;
    StatCounter confidentPreds;
    StatCounter correctPreds;
    StatCounter mispredicts;

  private:
    VpLookup finishLookup(Addr pc, VpLookup lk);

    /** Zigzag encode a signed delta into an unsigned payload. */
    static u64
    encodeDelta(s64 d)
    {
        return (static_cast<u64>(d) << 1) ^ static_cast<u64>(d >> 63);
    }
    static s64
    decodeDelta(u64 p_)
    {
        return static_cast<s64>((p_ >> 1) ^ (~(p_ & 1) + 1));
    }

    struct SpecEntry
    {
        u64 value = 0;
        u32 refs = 0;
    };

    DvtageParams p;
    std::vector<u64> lvt;
    ItageTable deltas;
    std::unordered_map<u32, SpecEntry> spec;
};

} // namespace rsep::pred

#endif // RSEP_PRED_DVTAGE_HH

#include "pred/ittage.hh"

#include "common/logging.hh"

namespace rsep::pred
{

ItageTable::ItageTable(const ItageParams &params, u64 seed)
    : p(params), rng(seed)
{
    if (p.numTagged > maxItageComps)
        rsep_fatal("ItageTable: too many components (%u)", p.numTagged);
    base.resize(size_t{1} << p.baseBits);
    for (auto &e : base)
        e.conf = ConfidenceCounter(p.confKind);
    tagged.resize(p.numTagged);
    for (unsigned c = 0; c < p.numTagged; ++c) {
        tagged[c].assign(size_t{1} << p.taggedBits, TaggedEntry{});
        for (auto &e : tagged[c])
            e.conf = ConfidenceCounter(p.confKind);
    }
}

ItageLookup
ItageTable::lookup(Addr pc, const GlobalHist &h) const
{
    ItageLookup lk;
    lk.baseIdx = static_cast<u32>(((pc >> 2) ^ (pc >> (2 + p.baseBits)))
                                  & mask(p.baseBits));
    const BaseEntry &be = base[lk.baseIdx];
    lk.provider = -1;
    lk.payload = be.payload;
    lk.confidence = be.conf.effectiveValue();
    lk.confident = be.conf.saturated();

    for (unsigned c = 0; c < p.numTagged; ++c) {
        lk.idx[c] = geoIndex(pc, h, p.histLens[c], p.taggedBits);
        lk.tag[c] = geoTag(pc, h, p.histLens[c], p.tagBits[c]);
    }
    for (unsigned c = 0; c < p.numTagged; ++c) {
        const TaggedEntry &e = tagged[c][lk.idx[c]];
        if (e.tag == lk.tag[c] && e.tag != 0) {
            lk.altProvider = lk.provider;
            lk.altPayload = lk.payload;
            lk.altValid = true;
            lk.provider = static_cast<int>(c);
            lk.payload = e.payload;
            lk.confidence = e.conf.effectiveValue();
            lk.confident = e.conf.saturated();
        }
    }
    return lk;
}

void
ItageTable::update(const ItageLookup &lk, u64 actual, bool allocate_on_wrong)
{
    ++updates;
    bool provider_correct = lk.payload == actual;

    if (lk.provider >= 0) {
        TaggedEntry &e = tagged[lk.provider][lk.idx[lk.provider]];
        if (provider_correct) {
            e.conf.onCorrect(&rng);
            if (lk.altValid && lk.altPayload != actual)
                e.u.increment();
        } else {
            if (e.conf.effectiveValue() == 0) {
                if (representable(actual))
                    e.payload = actual;
                e.conf.reset();
            } else {
                e.conf.onIncorrect();
            }
            if (lk.altValid && lk.altPayload == actual)
                e.u.decrement();
        }
    } else {
        BaseEntry &be = base[lk.baseIdx];
        if (provider_correct) {
            be.conf.onCorrect(&rng);
        } else if (be.conf.effectiveValue() == 0) {
            if (representable(actual))
                be.payload = actual;
            be.conf.reset();
        } else {
            be.conf.onIncorrect();
        }
    }

    // Allocate a longer-history entry when the provider was wrong.
    if (!provider_correct && allocate_on_wrong && representable(actual) &&
        lk.provider < static_cast<int>(p.numTagged) - 1) {
        unsigned start = static_cast<unsigned>(lk.provider + 1);
        int victim = -1;
        for (unsigned c = start; c < p.numTagged; ++c) {
            if (tagged[c][lk.idx[c]].u.zero()) {
                victim = static_cast<int>(c);
                if (c + 1 < p.numTagged && rng.chance(1, 2) &&
                    tagged[c + 1][lk.idx[c + 1]].u.zero())
                    victim = static_cast<int>(c + 1);
                break;
            }
        }
        if (victim >= 0) {
            TaggedEntry &e = tagged[victim][lk.idx[victim]];
            e.tag = lk.tag[victim];
            e.payload = actual;
            e.conf.reset();
            e.u.reset(0);
        } else {
            for (unsigned c = start; c < p.numTagged; ++c)
                tagged[c][lk.idx[c]].u.decrement();
        }
    }

    if (updates % p.usefulResetPeriod == 0) {
        for (auto &comp : tagged)
            for (auto &e : comp)
                e.u.decrement();
    }
}

void
ItageTable::updateIncorrect(const ItageLookup &lk)
{
    if (lk.provider >= 0)
        tagged[lk.provider][lk.idx[lk.provider]].conf.onIncorrect();
    else
        base[lk.baseIdx].conf.onIncorrect();
}

u64
ItageTable::storageBits() const
{
    // Base: payload + confidence.
    u64 conf_bits = base.empty() ? 8 : base[0].conf.storageBits();
    u64 bits = (u64{1} << p.baseBits) * (p.payloadBits + conf_bits);
    for (unsigned c = 0; c < p.numTagged; ++c) {
        bits += (u64{1} << p.taggedBits) *
                (p.tagBits[c] + p.payloadBits + conf_bits + 1);
    }
    return bits;
}

} // namespace rsep::pred

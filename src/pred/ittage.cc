#include "pred/ittage.hh"

#include "common/logging.hh"

namespace rsep::pred
{

ItageTable::ItageTable(const ItageParams &params, u64 seed)
    : p(params), rng(seed)
{
    if (p.numTagged > maxItageComps)
        rsep_fatal("ItageTable: too many components (%u)", p.numTagged);
    if (p.taggedBits > 16)
        rsep_fatal("ItageTable: taggedBits %u > 16 (lookup indices are "
                   "carried as u16)", p.taggedBits);
    basePayload.assign(size_t{1} << p.baseBits, 0);
    baseConf.assign(size_t{1} << p.baseBits, 0);
    size_t tagged = size_t{p.numTagged} << p.taggedBits;
    tTag.assign(tagged, 0);
    tPayload.assign(tagged, 0);
    tConf.assign(tagged, 0);
    tU.assign(tagged, 0);
}

void
ItageTable::registerFolds(GeoFoldSpec &spec)
{
    for (unsigned c = 0; c < p.numTagged; ++c) {
        idxSlot[c] =
            static_cast<u16>(spec.require(p.histLens[c], p.taggedBits));
        tagSlot[c] =
            static_cast<u16>(spec.require(p.histLens[c], p.tagBits[c]));
    }
    foldsRegistered = true;
}

ItageLookup
ItageTable::lookupWith(Addr pc, ItageLookup lk) const
{
    lk.baseIdx = static_cast<u32>(((pc >> 2) ^ (pc >> (2 + p.baseBits)))
                                  & mask(p.baseBits));
    lk.provider = -1;
    lk.payload = basePayload[lk.baseIdx];
    lk.confidence = confEffective(baseConf[lk.baseIdx]);
    lk.confident = confSaturated(baseConf[lk.baseIdx]);

    for (unsigned c = 0; c < p.numTagged; ++c) {
        const size_t at = (size_t{c} << p.taggedBits) | lk.idx[c];
        if (tTag[at] == lk.tag[c] && tTag[at] != 0) {
            lk.altProvider = lk.provider;
            lk.altPayload = lk.payload;
            lk.altValid = true;
            lk.provider = static_cast<s8>(c);
            lk.payload = tPayload[at];
            lk.confidence = confEffective(tConf[at]);
            lk.confident = confSaturated(tConf[at]);
        }
    }
    return lk;
}

ItageLookup
ItageTable::lookup(Addr pc, const GlobalHist &h) const
{
    ItageLookup lk;
    for (unsigned c = 0; c < p.numTagged; ++c) {
        lk.idx[c] =
            static_cast<u16>(geoIndex(pc, h, p.histLens[c], p.taggedBits));
        lk.tag[c] = geoTag(pc, h, p.histLens[c], p.tagBits[c]);
    }
    return lookupWith(pc, lk);
}

ItageLookup
ItageTable::lookup(Addr pc, const GlobalHist &h, const GeoFolds &folds) const
{
    assert(foldsRegistered);
    ItageLookup lk;
    // One shared path fold per lookup: the path contribution saturates
    // at 16 history bits, so every component with histLen >= 16 reuses
    // pf16.
    const unsigned ib = p.taggedBits;
    const unsigned shift = ib > 2 ? 1 : 0;
    const u64 pf16 = xorFold(h.path & mask(16), ib) << shift;
    u64 hash0 = pc >> 2;
    hash0 ^= hash0 >> ib;
    for (unsigned c = 0; c < p.numTagged; ++c) {
        const unsigned hl = p.histLens[c];
        u64 hash = hash0 ^ folds.fold(idxSlot[c]);
        hash ^= hl >= 16 ? pf16 : xorFold(h.path & mask(hl), ib) << shift;
        lk.idx[c] = static_cast<u16>(hash & mask(ib));
        lk.tag[c] = geoTagFolded(pc, folds.fold(tagSlot[c]), p.tagBits[c]);
    }
    return lookupWith(pc, lk);
}

void
ItageTable::update(const ItageLookup &lk, u64 actual, bool allocate_on_wrong)
{
    ++updates;
    bool provider_correct = lk.payload == actual;

    if (lk.provider >= 0) {
        const size_t at =
            (size_t{static_cast<unsigned>(lk.provider)} << p.taggedBits) |
            lk.idx[lk.provider];
        if (provider_correct) {
            confOnCorrect(tConf[at]);
            if (lk.altValid && lk.altPayload != actual && tU[at] < 1)
                ++tU[at];
        } else {
            if (confEffective(tConf[at]) == 0) {
                if (representable(actual))
                    tPayload[at] = actual;
                tConf[at] = 0;
            } else {
                tConf[at] = 0; // onIncorrect: confidence collapses.
            }
            if (lk.altValid && lk.altPayload == actual && tU[at] > 0)
                --tU[at];
        }
    } else {
        u8 &bc = baseConf[lk.baseIdx];
        if (provider_correct) {
            confOnCorrect(bc);
        } else if (confEffective(bc) == 0) {
            if (representable(actual))
                basePayload[lk.baseIdx] = actual;
            bc = 0;
        } else {
            bc = 0;
        }
    }

    // Allocate a longer-history entry when the provider was wrong.
    if (!provider_correct && allocate_on_wrong && representable(actual) &&
        lk.provider < static_cast<int>(p.numTagged) - 1) {
        unsigned start = static_cast<unsigned>(lk.provider + 1);
        int victim = -1;
        for (unsigned c = start; c < p.numTagged; ++c) {
            if (tU[(size_t{c} << p.taggedBits) | lk.idx[c]] == 0) {
                victim = static_cast<int>(c);
                if (c + 1 < p.numTagged && rng.chance(1, 2) &&
                    tU[(size_t{c + 1} << p.taggedBits) | lk.idx[c + 1]] == 0)
                    victim = static_cast<int>(c + 1);
                break;
            }
        }
        if (victim >= 0) {
            const size_t at =
                (size_t{static_cast<unsigned>(victim)} << p.taggedBits) |
                lk.idx[victim];
            tTag[at] = lk.tag[victim];
            tPayload[at] = actual;
            tConf[at] = 0;
            tU[at] = 0;
        } else {
            for (unsigned c = start; c < p.numTagged; ++c) {
                u8 &u = tU[(size_t{c} << p.taggedBits) | lk.idx[c]];
                if (u > 0)
                    --u;
            }
        }
    }

    if (updates % p.usefulResetPeriod == 0) {
        for (u8 &u : tU)
            if (u > 0)
                --u;
    }
}

void
ItageTable::updateIncorrect(const ItageLookup &lk)
{
    if (lk.provider >= 0)
        tConf[(size_t{static_cast<unsigned>(lk.provider)} << p.taggedBits) |
              lk.idx[lk.provider]] = 0;
    else
        baseConf[lk.baseIdx] = 0;
}

u64
ItageTable::storageBits() const
{
    u64 conf_bits = p.confKind == ConfidenceKind::Deterministic8 ? 8 : 3;
    u64 bits = (u64{1} << p.baseBits) * (p.payloadBits + conf_bits);
    for (unsigned c = 0; c < p.numTagged; ++c) {
        bits += (u64{1} << p.taggedBits) *
                (p.tagBits[c] + p.payloadBits + conf_bits + 1);
    }
    return bits;
}

} // namespace rsep::pred

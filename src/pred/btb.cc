#include "pred/btb.hh"

#include "common/logging.hh"

namespace rsep::pred
{

Btb::Btb(unsigned entries, unsigned assoc)
    : sets(entries / assoc), ways(assoc), arr(entries)
{
    if (!isPowerOf2(sets))
        rsep_fatal("BTB sets must be a power of two (got %u)", sets);
}

Addr
Btb::lookup(Addr pc) const
{
    size_t s = setOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        const Entry &e = arr[s * ways + w];
        if (e.valid && e.tag == tagOf(pc))
            return e.target;
    }
    return 0;
}

void
Btb::update(Addr pc, Addr target)
{
    size_t s = setOf(pc);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = arr[s * ways + w];
        if (e.valid && e.tag == tagOf(pc)) {
            e.target = target;
            e.lru = 1;
            for (unsigned w2 = 0; w2 < ways; ++w2)
                if (w2 != w)
                    arr[s * ways + w2].lru = 0;
            return;
        }
        if (!victim || (!e.valid && victim->valid) ||
            (e.valid == victim->valid && e.lru < victim->lru))
            victim = &e;
    }
    victim->valid = true;
    victim->tag = tagOf(pc);
    victim->target = target;
    victim->lru = 1;
}

u64
Btb::storageBits() const
{
    // tag (~20b after set bits) + target (~32b compressed) + lru.
    return static_cast<u64>(arr.size()) * (20 + 32 + 1);
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack(depth, 0)
{
}

void
ReturnAddressStack::push(Addr return_pc)
{
    stack[ptr % stack.size()] = return_pc;
    ++ptr;
}

Addr
ReturnAddressStack::pop()
{
    if (ptr == 0)
        return 0;
    --ptr;
    return stack[ptr % stack.size()];
}

Addr
ReturnAddressStack::top() const
{
    if (ptr == 0)
        return 0;
    return stack[(ptr - 1) % stack.size()];
}

ReturnAddressStack::Snapshot
ReturnAddressStack::snapshot() const
{
    return {ptr, top()};
}

void
ReturnAddressStack::restore(const Snapshot &s)
{
    ptr = s.ptr;
    if (ptr > 0)
        stack[(ptr - 1) % stack.size()] = s.topVal;
}

} // namespace rsep::pred

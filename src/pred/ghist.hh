/**
 * @file
 * Global direction/path history shared by the history-indexed
 * predictors (TAGE branch predictor, distance predictor, D-VTAGE).
 *
 * Simplification vs. a full TAGE implementation: history is a 64-bit
 * register rather than a ~640-bit folded buffer. Our workload kernels
 * need far less than 64 bits of correlation, and a flat u64 makes
 * squash recovery trivial (each in-flight instruction carries the
 * 16-byte snapshot it was fetched with). Documented in DESIGN.md.
 */

#ifndef RSEP_PRED_GHIST_HH
#define RSEP_PRED_GHIST_HH

#include <algorithm>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace rsep::pred
{

/** Global branch direction + path history. */
struct GlobalHist
{
    u64 dir = 0;  ///< direction history, newest bit = bit 0.
    u64 path = 0; ///< path history, 3 PC bits per branch.

    /** Record the outcome of a conditional branch at @p pc. */
    void
    insert(bool taken, Addr pc)
    {
        dir = (dir << 1) | (taken ? 1 : 0);
        path = (path << 3) ^ ((pc >> 2) & 0x3ff);
    }

    /**
     * Record the target of a taken unconditional/indirect transfer:
     * only path history advances (distinguishes e.g. interpreter
     * handlers for the history-indexed payload predictors).
     */
    void
    insertPath(Addr target)
    {
        path = (path << 3) ^ ((target >> 2) & 0x3ff);
    }
};

/**
 * Compute a table index from pc/history for a geometric component.
 *
 * @param pc instruction address.
 * @param h history snapshot at fetch.
 * @param hist_len number of direction-history bits to use (<= 64).
 * @param idx_bits log2 of the table size.
 */
inline u32
geoIndex(Addr pc, const GlobalHist &h, unsigned hist_len, unsigned idx_bits)
{
    u64 hash = pc >> 2;
    hash ^= hash >> idx_bits;
    u64 hd = hist_len == 0 ? 0 : (h.dir & mask(hist_len));
    hash ^= xorFold(hd, idx_bits);
    hash ^= xorFold(h.path & mask(std::min(16u, hist_len)), idx_bits)
            << (idx_bits > 2 ? 1 : 0);
    return static_cast<u32>(hash & mask(idx_bits));
}

/** Compute a partial tag (different mixing than the index). */
inline u32
geoTag(Addr pc, const GlobalHist &h, unsigned hist_len, unsigned tag_bits)
{
    u64 hash = (pc >> 2) * 0x9e3779b97f4a7c15ull;
    u64 hd = hist_len == 0 ? 0 : (h.dir & mask(hist_len));
    hash ^= xorFold(hd, tag_bits) << 1;
    hash ^= hash >> 17;
    return static_cast<u32>(hash & mask(tag_bits));
}

} // namespace rsep::pred

#endif // RSEP_PRED_GHIST_HH

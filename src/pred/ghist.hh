/**
 * @file
 * Global direction/path history shared by the history-indexed
 * predictors (TAGE branch predictor, distance predictor, D-VTAGE).
 *
 * Simplification vs. a full TAGE implementation: history is a 64-bit
 * register rather than a ~640-bit folded buffer. Our workload kernels
 * need far less than 64 bits of correlation, and a flat u64 makes
 * squash recovery trivial (each in-flight instruction carries the
 * 16-byte snapshot it was fetched with). Documented in DESIGN.md.
 */

#ifndef RSEP_PRED_GHIST_HH
#define RSEP_PRED_GHIST_HH

#include <algorithm>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace rsep::pred
{

/** Global branch direction + path history. */
struct GlobalHist
{
    u64 dir = 0;  ///< direction history, newest bit = bit 0.
    u64 path = 0; ///< path history, 3 PC bits per branch.

    /** Record the outcome of a conditional branch at @p pc. */
    void
    insert(bool taken, Addr pc)
    {
        dir = (dir << 1) | (taken ? 1 : 0);
        path = (path << 3) ^ ((pc >> 2) & 0x3ff);
    }

    /**
     * Record the target of a taken unconditional/indirect transfer:
     * only path history advances (distinguishes e.g. interpreter
     * handlers for the history-indexed payload predictors).
     */
    void
    insertPath(Addr target)
    {
        path = (path << 3) ^ ((target >> 2) & 0x3ff);
    }
};

/**
 * Compute a table index from pc/history for a geometric component.
 *
 * @param pc instruction address.
 * @param h history snapshot at fetch.
 * @param hist_len number of direction-history bits to use (<= 64).
 * @param idx_bits log2 of the table size.
 */
inline u32
geoIndex(Addr pc, const GlobalHist &h, unsigned hist_len, unsigned idx_bits)
{
    u64 hash = pc >> 2;
    hash ^= hash >> idx_bits;
    u64 hd = hist_len == 0 ? 0 : (h.dir & mask(hist_len));
    hash ^= xorFold(hd, idx_bits);
    hash ^= xorFold(h.path & mask(std::min(16u, hist_len)), idx_bits)
            << (idx_bits > 2 ? 1 : 0);
    return static_cast<u32>(hash & mask(idx_bits));
}

/** Compute a partial tag (different mixing than the index). */
inline u32
geoTag(Addr pc, const GlobalHist &h, unsigned hist_len, unsigned tag_bits)
{
    u64 hash = (pc >> 2) * 0x9e3779b97f4a7c15ull;
    u64 hd = hist_len == 0 ? 0 : (h.dir & mask(hist_len));
    hash ^= xorFold(hd, tag_bits) << 1;
    hash ^= hash >> 17;
    return static_cast<u32>(hash & mask(tag_bits));
}

/**
 * Registry of the distinct (history length, fold width) pairs a set of
 * geometric predictors needs. Predictors register their components
 * once at construction; duplicate pairs collapse onto one slot, which
 * is how the index-computation pass is shared across TAGE / ITTAGE /
 * D-VTAGE / distance-predictor components with coinciding geometry.
 */
class GeoFoldSpec
{
  public:
    struct Slot
    {
        unsigned len;  ///< direction-history bits folded (0..64).
        unsigned bits; ///< fold width (the xorFold target width).
    };

    /** Register (len, bits), deduplicating; returns the slot index. */
    unsigned
    require(unsigned len, unsigned bits)
    {
        for (unsigned i = 0; i < sl.size(); ++i)
            if (sl[i].len == len && sl[i].bits == bits)
                return i;
        sl.push_back(Slot{len, bits});
        return static_cast<unsigned>(sl.size() - 1);
    }

    const std::vector<Slot> &slots() const { return sl; }
    unsigned size() const { return static_cast<unsigned>(sl.size()); }

  private:
    std::vector<Slot> sl;
};

/**
 * Incrementally maintained folded direction history: one register per
 * GeoFoldSpec slot, each holding exactly
 *
 *     xorFold(dir & mask(len), bits)
 *
 * for the GlobalHist it shadows. Inserting a direction bit updates
 * every register in O(1) instead of re-folding up to 64 bits per
 * component per prediction; squash restores recompute from the (rare)
 * restored dir value. The identity is pinned by tests/test_pred_fold.cc.
 *
 * Derivation: write fold(x) = XOR_i x_i << (i mod B) over the L-bit
 * window x. Shifting in a new bit b moves every x_i to position i+1,
 * so fold becomes rotl(fold, B, 1) with b entering at bit 0 and the
 * evicted bit x_{L-1} — which the rotation carried to position L mod B
 * — cancelled by XOR.
 */
class GeoFolds
{
  public:
    /** Bind to a fully populated spec and zero the registers. */
    void
    bind(const GeoFoldSpec *spec)
    {
        sp = spec;
        f.assign(sp->size(), 0);
    }

    bool bound() const { return sp != nullptr; }

    /** A direction bit is inserted into the shadowed history; @p
     *  dir_before is GlobalHist::dir *before* its insert(). */
    void
    insertDir(bool taken, u64 dir_before)
    {
        const auto &slots = sp->slots();
        for (unsigned i = 0; i < slots.size(); ++i) {
            const unsigned L = slots[i].len;
            if (L == 0)
                continue; // an empty window folds to 0 forever.
            const unsigned B = slots[i].bits;
            u64 v = rotateLeft(f[i], B, 1);
            v ^= static_cast<u64>(taken);
            v ^= ((dir_before >> (L - 1)) & 1) << (L % B);
            f[i] = v;
        }
    }

    /** Rebuild every register from scratch (squash restore). */
    void
    recompute(u64 dir)
    {
        const auto &slots = sp->slots();
        for (unsigned i = 0; i < slots.size(); ++i)
            f[i] = slots[i].len == 0
                ? 0
                : xorFold(dir & mask(slots[i].len), slots[i].bits);
    }

    u64 fold(unsigned slot) const { return f[slot]; }

  private:
    const GeoFoldSpec *sp = nullptr;
    std::vector<u64> f;
};

/** geoIndex with the direction fold precomputed (identical hash). */
inline u32
geoIndexFolded(Addr pc, u64 dir_fold, u64 path, unsigned hist_len,
               unsigned idx_bits)
{
    u64 hash = pc >> 2;
    hash ^= hash >> idx_bits;
    hash ^= dir_fold;
    hash ^= xorFold(path & mask(std::min(16u, hist_len)), idx_bits)
            << (idx_bits > 2 ? 1 : 0);
    return static_cast<u32>(hash & mask(idx_bits));
}

/** geoTag with the direction fold precomputed (identical hash). */
inline u32
geoTagFolded(Addr pc, u64 dir_fold, unsigned tag_bits)
{
    u64 hash = (pc >> 2) * 0x9e3779b97f4a7c15ull;
    hash ^= dir_fold << 1;
    hash ^= hash >> 17;
    return static_cast<u32>(hash & mask(tag_bits));
}

} // namespace rsep::pred

#endif // RSEP_PRED_GHIST_HH

#include "rsep/fifo_history.hh"

namespace rsep::equality
{

FifoHistory::FifoHistory(unsigned depth, bool implicit_all)
    : ring(depth), cap(depth), implicitAll(implicit_all)
{
}

void
FifoHistory::clear()
{
    head = 0;
    valid = 0;
}

void
FifoHistory::push(u16 hash, u32 csn, u64 seq, bool produces_reg, u64 value)
{
    if (!implicitAll && !produces_reg)
        return;
    ring[head] = {hash, csn & csnMask, seq, value, produces_reg};
    head = (head + 1) % cap;
    if (valid < cap)
        ++valid;
    ++pushes;
}

std::optional<HistoryMatch>
FifoHistory::match(u16 hash, u32 csn, std::optional<u32> predicted_dist) const
{
    std::optional<HistoryMatch> nearest;
    // Scan newest -> oldest.
    for (size_t i = 0; i < valid; ++i) {
        size_t pos = (head + cap - 1 - i) % cap;
        const Entry &e = ring[pos];
        if (!e.producer)
            continue;
        ++comparisons;
        if (e.hash != hash)
            continue;
        u32 dist = csnDistance(csn & csnMask, e.csn);
        // dist == 0 is the probing instruction's own entry; distances
        // beyond half the CSN space are wrapped (an entry younger in
        // the same commit group, or stale) -- hardware knows the scan
        // direction and ignores both.
        if (dist == 0 || dist > csnMask / 2)
            continue;
        if (predicted_dist && dist == *predicted_dist) {
            ++matches;
            ++predictedDistanceMatches;
            return HistoryMatch{dist, e.seq, e.value, true};
        }
        if (!nearest)
            nearest = HistoryMatch{dist, e.seq, e.value, false};
        else if (!predicted_dist)
            break; // nearest found and nothing better to look for.
    }
    if (nearest)
        ++matches;
    return nearest;
}

u64
FifoHistory::storageBits(unsigned hash_bits) const
{
    // Explicit variant: hash + CSN per entry. Implicit variant: hash
    // plus a producer bit (no CSN needed).
    return cap * (implicitAll ? hash_bits + 1 : hash_bits + csnBits);
}

} // namespace rsep::equality

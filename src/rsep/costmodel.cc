#include "rsep/costmodel.hh"

#include <sstream>

#include "rsep/distance_pred.hh"
#include "rsep/fifo_history.hh"

namespace rsep::equality
{

RsepStorage
computeStorage(const RsepConfig &cfg, unsigned num_pregs, unsigned rob_size)
{
    RsepStorage s;
    DistancePredictor dp(cfg.distParams());
    s.predictorKB = static_cast<double>(dp.storageBits()) / 8.0 / 1024.0;

    // FIFO history: hash + 10-bit CSN per entry (explicit variant).
    s.fifoHistoryB = cfg.historyDepth * (cfg.hashBits + csnBits) / 8.0;

    // Dedicated FIFO propagating predicted distances from Rename to
    // Commit: 8-bit distance per in-flight-window slot (paper: 224B).
    s.distanceFifoB = cfg.propagatePredictedDistance
        ? (rob_size + 32) * 8 / 8.0
        : 0.0;

    // ISRB: two counters + preg tag per entry (paper: 63B for 24).
    s.isrbB = cfg.isrbEntries * (2 * cfg.isrbCounterBits + 9) / 8.0;

    s.hrfB = num_pregs * cfg.hashBits / 8.0;

    s.totalKB = s.predictorKB +
                (s.fifoHistoryB + s.distanceFifoB + s.isrbB) / 1024.0;
    return s;
}

double
hrfAreaFraction(unsigned prf_read_ports, unsigned prf_write_ports,
                unsigned prf_width_bits, unsigned hrf_banks,
                unsigned hrf_write_ports, unsigned hash_bits)
{
    // Area ~ width x (r + w)^2 per register (Zyuban & Kogge trend).
    double prf_ports = prf_read_ports + prf_write_ports;
    double prf_area = prf_width_bits * prf_ports * prf_ports;

    // The HRF is banked: each bank sees 1 in-order read port and
    // write_ports / banks random write ports.
    double bank_write = static_cast<double>(hrf_write_ports) / hrf_banks;
    double hrf_ports = 1.0 + bank_write;
    double hrf_area = hash_bits * hrf_ports * hrf_ports;

    return hrf_area / prf_area;
}

u64
fifoComparators(unsigned depth, unsigned commit_width)
{
    return static_cast<u64>(depth) * commit_width +
           static_cast<u64>(commit_width) * (commit_width - 1) / 2;
}

std::string
describeStorage(const RsepConfig &cfg, unsigned num_pregs, unsigned rob_size)
{
    RsepStorage s = computeStorage(cfg, num_pregs, rob_size);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << "distance predictor: " << s.predictorKB << "KB"
       << ", FIFO history: " << s.fifoHistoryB << "B"
       << ", distance FIFO: " << s.distanceFifoB << "B"
       << ", ISRB: " << s.isrbB << "B"
       << ", HRF (mirrors PRF): " << s.hrfB << "B"
       << " -> total (excl. HRF): " << s.totalKB << "KB";
    return os.str();
}

} // namespace rsep::equality

/**
 * @file
 * Configuration of the RSEP mechanism family (what the paper's
 * experiments toggle).
 */

#ifndef RSEP_RSEP_CONFIG_HH
#define RSEP_RSEP_CONFIG_HH

#include "common/prob_counter.hh"
#include "rsep/distance_pred.hh"

namespace rsep::equality
{

/** How equality-prediction validation consumes execution resources
 *  (paper Section IV-F / Fig. 6). */
enum class ValidationPolicy : u8 {
    Ideal,         ///< validation is free.
    Issue2xLockFu, ///< re-issue to the same FU class (loads lock ports).
    Issue2xAnyFu,  ///< re-issue to any FU via the global bypass network.
};

/** Full RSEP configuration. */
struct RsepConfig
{
    // Mechanism toggles (Fig. 4 arms).
    bool enableEquality = true;   ///< distance prediction + sharing.
    bool enableZeroPred = false;  ///< Section III zero prediction.
    bool enableMoveElim = false;  ///< move elimination (on with RSEP).

    // Pair-finding structure.
    unsigned historyDepth = 128;  ///< FIFO entries (paper: 128 suffices).
    bool useDdt = false;          ///< DDT variant instead of FIFO.
    unsigned ddtEntries = 8192;   ///< "unrealistic 16KB DDT".
    bool implicitHistory = false; ///< push non-producers too (IV-D2b).
    unsigned hashBits = 14;

    // Predictor.
    bool idealPredictor = true;   ///< 42.6KB vs 10.1KB distance predictor.
    ConfidenceKind confKind = ConfidenceKind::Deterministic8;

    // Sharing.
    unsigned isrbEntries = 24;
    unsigned isrbCounterBits = 6;

    // Validation & training.
    ValidationPolicy validation = ValidationPolicy::Ideal;
    bool sampling = false;        ///< one sampled FIFO probe per cycle.
    u32 startTrainThreshold = 63; ///< likely-candidate threshold.
    bool propagatePredictedDistance = true; ///< 224B distance FIFO.

    /** Preset: the Fig. 4 "ideal validation, large structures" RSEP. */
    static RsepConfig
    idealLarge()
    {
        RsepConfig c;
        c.historyDepth = 1024; ///< ">> ROB".
        c.idealPredictor = true;
        c.validation = ValidationPolicy::Ideal;
        c.sampling = false;
        return c;
    }

    /** Preset: the Fig. 7 realistic 10.8KB configuration. */
    static RsepConfig
    realistic()
    {
        RsepConfig c;
        c.historyDepth = 128;
        c.idealPredictor = false;
        c.validation = ValidationPolicy::Issue2xAnyFu;
        c.sampling = true;
        c.startTrainThreshold = 63;
        c.isrbEntries = 24;
        return c;
    }

    DistancePredictorParams
    distParams() const
    {
        return idealPredictor ? DistancePredictorParams::ideal(confKind)
                              : DistancePredictorParams::realistic(confKind);
    }
};

/** Canonical scenario-file spelling of a validation policy. */
constexpr const char *
validationPolicyName(ValidationPolicy p)
{
    switch (p) {
      case ValidationPolicy::Ideal:
        return "ideal";
      case ValidationPolicy::Issue2xLockFu:
        return "issue2x-lock-fu";
      case ValidationPolicy::Issue2xAnyFu:
        return "issue2x-any-fu";
    }
    return "ideal";
}

/** Canonical scenario-file spelling of a confidence counter kind. */
constexpr const char *
confidenceKindName(ConfidenceKind k)
{
    return k == ConfidenceKind::Fpc3 ? "fpc3" : "deterministic8";
}

/**
 * Field-introspection hook for RsepConfig (see core::visitFields on
 * CoreParams): the scenario layer's single source of `[rsep]` keys.
 */
template <class V>
void
visitFields(RsepConfig &c, V &&v)
{
    v("enable_equality", c.enableEquality);
    v("enable_zero_pred", c.enableZeroPred);
    v("enable_move_elim", c.enableMoveElim);
    v("history_depth", c.historyDepth);
    v("use_ddt", c.useDdt);
    v("ddt_entries", c.ddtEntries);
    v("implicit_history", c.implicitHistory);
    v("hash_bits", c.hashBits);
    v("ideal_predictor", c.idealPredictor);
    v("conf_kind", c.confKind);
    v("isrb_entries", c.isrbEntries);
    v("isrb_counter_bits", c.isrbCounterBits);
    v("validation", c.validation);
    v("sampling", c.sampling);
    v("start_train_threshold", c.startTrainThreshold);
    v("propagate_predicted_distance", c.propagatePredictedDistance);
}

} // namespace rsep::equality

#endif // RSEP_RSEP_CONFIG_HH

/**
 * @file
 * The IDist (instruction distance) predictor (paper Section IV-C):
 * a TAGE-like predictor mapping (PC, branch/path history) to the
 * distance of the older instruction expected to produce the same
 * result. Two configurations from the paper:
 *  - ideal: 16K-entry base + 6 x 1K tagged, tags 13..18 bits = 42.6KB;
 *  - realistic: 2K-entry base + 6 x 512 tagged, tags 5..10 bits = 10.1KB.
 */

#ifndef RSEP_RSEP_DISTANCE_PRED_HH
#define RSEP_RSEP_DISTANCE_PRED_HH

#include "common/stats.hh"
#include "pred/ittage.hh"

namespace rsep::equality
{

/** Distance predictor configuration. */
struct DistancePredictorParams
{
    pred::ItageParams itage;

    /** 42.6KB configuration (Section IV-C). */
    static DistancePredictorParams
    ideal(ConfidenceKind kind = ConfidenceKind::Deterministic8)
    {
        DistancePredictorParams p;
        p.itage = pred::ItageParams{
            .baseBits = 14,
            .numTagged = 6,
            .taggedBits = 10,
            .histLens = {2, 4, 8, 16, 32, 64, 0, 0},
            .tagBits = {13, 14, 15, 16, 17, 18, 0, 0},
            .payloadBits = 8,
            .confKind = kind,
        };
        return p;
    }

    /** 10.1KB configuration (Section VI-B). */
    static DistancePredictorParams
    realistic(ConfidenceKind kind = ConfidenceKind::Deterministic8)
    {
        DistancePredictorParams p;
        p.itage = pred::ItageParams{
            .baseBits = 11,
            .numTagged = 6,
            .taggedBits = 9,
            .histLens = {2, 4, 8, 16, 32, 64, 0, 0},
            .tagBits = {5, 6, 7, 8, 9, 10, 0, 0},
            .payloadBits = 8,
            .confKind = kind,
        };
        return p;
    }
};

/** Lookup result carried with the instruction (largest member first —
 *  this rides in every InflightInst, so padding matters). */
struct DistLookup
{
    pred::ItageLookup itageLk;
    u32 distance = 0;        ///< predicted IDist.
    u8 confidence = 0;       ///< effective 0..255.
    bool valid = false;
    bool usePred = false;    ///< confidence saturated (use_pred = 255).
};

/** The predictor. */
class DistancePredictor
{
  public:
    explicit DistancePredictor(
        const DistancePredictorParams &params = DistancePredictorParams::ideal(),
        u64 seed = 19)
        : p(params), table(p.itage, seed)
    {
    }

    /** Register the table's fold geometry (enables the folded lookup). */
    void registerFolds(pred::GeoFoldSpec &spec) { table.registerFolds(spec); }

    /** Rename-time lookup under the fetch-time history. */
    DistLookup
    lookup(Addr pc, const pred::GlobalHist &h) const
    {
        ++lookups;
        DistLookup lk;
        lk.valid = true;
        lk.itageLk = table.lookup(pc, h);
        lk.distance = static_cast<u32>(lk.itageLk.payload);
        lk.confidence = lk.itageLk.confidence;
        lk.usePred = lk.itageLk.confident && lk.distance != 0;
        return lk;
    }

    /** Folded-history fast path; @p folds must shadow @p h. */
    DistLookup
    lookup(Addr pc, const pred::GlobalHist &h,
           const pred::GeoFolds &folds) const
    {
        ++lookups;
        DistLookup lk;
        lk.valid = true;
        lk.itageLk = table.lookup(pc, h, folds);
        lk.distance = static_cast<u32>(lk.itageLk.payload);
        lk.confidence = lk.itageLk.confidence;
        lk.usePred = lk.itageLk.confident && lk.distance != 0;
        return lk;
    }

    /** Commit-time training with the observed distance. */
    void
    train(const DistLookup &lk, u32 actual_distance)
    {
        ++trainEvents;
        table.update(lk.itageLk, actual_distance);
    }

    /** Failed validation: collapse confidence (no distance known). */
    void
    trainIncorrect(const DistLookup &lk)
    {
        ++trainEvents;
        table.updateIncorrect(lk.itageLk);
    }

    /**
     * Storage in bits of the hardware embodiment (3-bit FPC confidence
     * as in the paper's accounting, independent of the simulated
     * confidence kind).
     */
    u64
    storageBits() const
    {
        const auto &ip = p.itage;
        u64 bits = (u64{1} << ip.baseBits) * (ip.payloadBits + 3);
        for (unsigned c = 0; c < ip.numTagged; ++c)
            bits += (u64{1} << ip.taggedBits) *
                    (ip.tagBits[c] + ip.payloadBits + 3 + 1);
        return bits;
    }

    const DistancePredictorParams &params() const { return p; }

    mutable StatCounter lookups;
    StatCounter trainEvents;

  private:
    DistancePredictorParams p;
    pred::ItageTable table;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_DISTANCE_PRED_HH

/**
 * @file
 * Zero predictor (paper Section III): a PC-indexed confidence table
 * predicting that an instruction writes 0, letting the renamer map its
 * destination to the hardwired zero register. Validation still executes
 * the instruction; like all speculation here, prediction requires a
 * saturated confidence counter.
 */

#ifndef RSEP_RSEP_ZERO_PRED_HH
#define RSEP_RSEP_ZERO_PRED_HH

#include <vector>

#include "common/bitutils.hh"
#include "common/prob_counter.hh"
#include "common/stats.hh"

namespace rsep::equality
{

/** The zero predictor. */
class ZeroPredictor
{
  public:
    explicit ZeroPredictor(unsigned entries = 4096,
                           ConfidenceKind kind = ConfidenceKind::Deterministic8)
        : table(entries, ConfidenceCounter(kind))
    {
    }

    /** True when the instruction at @p pc should be zero-predicted. */
    bool
    predict(Addr pc) const
    {
        return table[indexOf(pc)].saturated();
    }

    /** Commit-time training. */
    void
    update(Addr pc, bool was_zero, Rng *rng)
    {
        ConfidenceCounter &c = table[indexOf(pc)];
        if (was_zero)
            c.onCorrect(rng);
        else
            c.onIncorrect();
    }

    u64
    storageBits() const
    {
        return table.size() *
               (table.empty() ? 8 : table[0].storageBits());
    }

    StatCounter predictions;
    StatCounter mispredictions;

  private:
    size_t
    indexOf(Addr pc) const
    {
        return ((pc >> 2) ^ (pc >> 14)) & (table.size() - 1);
    }

    std::vector<ConfidenceCounter> table;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_ZERO_PRED_HH

/**
 * @file
 * FIFO commit history for pair discovery (paper Sections IV-B2/IV-D2).
 *
 * Holds the hashes and 10-bit Commit Sequence Numbers of the last N
 * committed register-producing instructions (the explicit-IDist
 * variant; an implicit variant that pushes *all* instructions is also
 * provided for the Section IV-D2 trade-off study). Committing
 * instructions compare their hash against the history; the match
 * yields the IDist used to train the distance predictor.
 */

#ifndef RSEP_RSEP_FIFO_HISTORY_HH
#define RSEP_RSEP_FIFO_HISTORY_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::equality
{

/** Number of bits in a Commit Sequence Number (wraps, paper uses 10). */
constexpr unsigned csnBits = 10;
constexpr u32 csnMask = (1u << csnBits) - 1;

/**
 * Distance between two CSNs with wraparound (young - old mod 2^10).
 * Valid while true distances stay below 2^csnBits.
 */
inline u32
csnDistance(u32 young, u32 old)
{
    return (young - old) & csnMask;
}

/** A discovered pair. */
struct HistoryMatch
{
    u32 distance = 0;     ///< IDist in committed instructions.
    u64 producerSeq = 0;  ///< simulator bookkeeping (not hardware state).
    u64 producerValue = 0;///< simulator bookkeeping (false-pair stats).
    bool matchedPredicted = false; ///< match at the propagated distance.
};

/** The FIFO history. */
class FifoHistory
{
  public:
    /**
     * @param depth entries kept (register producers for the explicit
     *        variant, all instructions for the implicit one).
     * @param implicit_all push non-producers too (implicit variant).
     */
    explicit FifoHistory(unsigned depth = 128, bool implicit_all = false);

    /**
     * Find the match for @p hash from an instruction at CSN @p csn.
     * Prefers an entry whose distance equals @p predicted_dist (the
     * distance propagated from prediction time, Section VI-A2), else
     * returns the most recent (nearest) match.
     */
    std::optional<HistoryMatch>
    match(u16 hash, u32 csn, std::optional<u32> predicted_dist) const;

    /**
     * Push a committed instruction into the history. @p value is
     * simulator bookkeeping only (hash false-positive statistics);
     * hardware stores just hash + CSN.
     */
    void push(u16 hash, u32 csn, u64 seq, bool produces_reg, u64 value = 0);

    void clear();

    unsigned depth() const { return static_cast<unsigned>(cap); }
    bool implicitVariant() const { return implicitAll; }
    /** Current number of valid entries. */
    unsigned size() const { return static_cast<unsigned>(valid); }

    /** Storage for the cost model (hash + CSN per entry, explicit). */
    u64 storageBits(unsigned hash_bits) const;

    /** Comparisons performed (for the Section IV-D comparator study). */
    mutable StatCounter comparisons;
    StatCounter pushes;
    mutable StatCounter matches;
    mutable StatCounter predictedDistanceMatches;

  private:
    struct Entry
    {
        u16 hash = 0;
        u32 csn = 0;
        u64 seq = 0;
        u64 value = 0;
        bool producer = false;
    };

    std::vector<Entry> ring;
    size_t cap;
    size_t head = 0; ///< next write slot.
    size_t valid = 0;
    bool implicitAll;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_FIFO_HISTORY_HH

#include "rsep/isrb.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rsep::equality
{

Isrb::Isrb(unsigned num_entries, unsigned counter_bits)
    : table(num_entries),
      counterMax(static_cast<u8>(mask(counter_bits)))
{
}

Isrb::Entry *
Isrb::find(PhysReg preg)
{
    for (auto &e : table)
        if (e.valid && e.preg == preg)
            return &e;
    return nullptr;
}

const Isrb::Entry *
Isrb::find(PhysReg preg) const
{
    for (const auto &e : table)
        if (e.valid && e.preg == preg)
            return &e;
    return nullptr;
}

void
Isrb::freeEntry(Entry &e)
{
    e.valid = false;
    e.preg = invalidPhysReg;
    e.referenced = 0;
    e.committed = 0;
    ++entriesFreed;
}

bool
Isrb::share(PhysReg preg)
{
    ++shareRequests;
    if (Entry *e = find(preg)) {
        if (e->referenced >= counterMax) {
            ++shareRefusalsOverflow;
            return false;
        }
        ++e->referenced;
        return true;
    }
    for (auto &e : table) {
        if (!e.valid) {
            e.valid = true;
            e.preg = preg;
            // Producer's original mapping + this sharer.
            e.referenced = 2;
            e.committed = 0;
            return true;
        }
    }
    ++shareRefusalsFull;
    return false;
}

IsrbRelease
Isrb::release(PhysReg preg)
{
    Entry *e = find(preg);
    if (!e)
        return IsrbRelease::NotShared;
    if (e->committed >= e->referenced)
        rsep_panic("ISRB release underflow on preg %u", preg);
    ++e->committed;
    if (e->committed == e->referenced) {
        freeEntry(*e);
        return IsrbRelease::Freed;
    }
    return IsrbRelease::StillLive;
}

IsrbRelease
Isrb::squashSharer(PhysReg preg)
{
    Entry *e = find(preg);
    if (!e)
        rsep_panic("ISRB squash of unshared preg %u", preg);
    if (e->referenced == 0)
        rsep_panic("ISRB squash underflow on preg %u", preg);
    --e->referenced;
    if (e->committed == e->referenced) {
        freeEntry(*e);
        return IsrbRelease::Freed;
    }
    if (e->referenced == 1 && e->committed == 0) {
        // Back to a single (producer) mapping: the entry is no longer
        // needed; the eventual release goes through the normal path.
        freeEntry(*e);
    }
    return IsrbRelease::StillLive;
}

bool
Isrb::isShared(PhysReg preg) const
{
    return find(preg) != nullptr;
}

unsigned
Isrb::liveMappings(PhysReg preg) const
{
    const Entry *e = find(preg);
    return e ? static_cast<unsigned>(e->referenced - e->committed) : 0;
}

Isrb::Checkpoint
Isrb::checkpoint() const
{
    Checkpoint cp;
    for (const auto &e : table)
        if (e.valid)
            cp.referenced.push_back({e.preg, e.referenced});
    return cp;
}

std::vector<PhysReg>
Isrb::restore(const Checkpoint &cp)
{
    std::vector<PhysReg> freed;
    for (auto &e : table) {
        if (!e.valid)
            continue;
        bool in_cp = false;
        for (const auto &[preg, referenced] : cp.referenced) {
            if (preg == e.preg) {
                e.referenced = referenced;
                in_cp = true;
                break;
            }
        }
        if (!in_cp) {
            // Entry allocated after the checkpoint: all its sharers are
            // speculative. Only the producer mapping remains.
            e.referenced = 1;
        }
        if (e.committed >= e.referenced) {
            freed.push_back(e.preg);
            freeEntry(e);
        } else if (e.referenced == 1 && e.committed == 0) {
            freeEntry(e);
        }
    }
    return freed;
}

unsigned
Isrb::entriesInUse() const
{
    unsigned n = 0;
    for (const auto &e : table)
        if (e.valid)
            ++n;
    return n;
}

u64
Isrb::storageBits() const
{
    unsigned counter_bits = floorLog2(static_cast<u64>(counterMax) + 1);
    // Two counters plus the preg tag (9 bits covers 470 registers).
    return table.size() * (2 * counter_bits + 9);
}

} // namespace rsep::equality

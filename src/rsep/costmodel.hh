/**
 * @file
 * Analytical storage/area/comparator accounting for RSEP structures
 * (paper Sections IV-D, VI-B). The paper's own claims here are
 * arithmetic, so the reproduction is arithmetic too.
 */

#ifndef RSEP_RSEP_COSTMODEL_HH
#define RSEP_RSEP_COSTMODEL_HH

#include <string>

#include "rsep/config.hh"

namespace rsep::equality
{

/** Storage breakdown of one RSEP configuration, in bytes. */
struct RsepStorage
{
    double predictorKB = 0;
    double fifoHistoryB = 0;
    double distanceFifoB = 0; ///< propagated predicted distances (224B).
    double isrbB = 0;
    double hrfB = 0;          ///< kept separate (mirrors the PRF).
    double totalKB = 0;       ///< paper's 10.8KB total excludes the HRF.
};

/** Compute the storage breakdown for @p cfg. */
RsepStorage computeStorage(const RsepConfig &cfg, unsigned num_pregs,
                           unsigned rob_size);

/**
 * Register-file area model after Zyuban & Kogge: area per bit grows
 * with (wordlines) x (bitlines) ~ (r + w) x (r + w), i.e. quadratically
 * with port count and linearly with width.
 *
 * @return HRF area as a fraction of PRF area (paper claims < 5%).
 */
double hrfAreaFraction(unsigned prf_read_ports, unsigned prf_write_ports,
                       unsigned prf_width_bits, unsigned hrf_banks,
                       unsigned hrf_write_ports, unsigned hash_bits);

/**
 * Comparators needed by a FIFO history of @p depth entries at commit
 * width @p cw: cw * depth against the history plus cw*(cw-1)/2 inside
 * the commit group (paper: 2076 for 256 x 8).
 */
u64 fifoComparators(unsigned depth, unsigned commit_width);

/** Human-readable storage summary. */
std::string describeStorage(const RsepConfig &cfg, unsigned num_pregs,
                            unsigned rob_size);

} // namespace rsep::equality

#endif // RSEP_RSEP_COSTMODEL_HH

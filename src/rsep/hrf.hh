/**
 * @file
 * Hash Register File (paper Section IV-D1): an n-bit-wide register file
 * mirroring the PRF. Written at writeback with the hash of the result,
 * read (in order) at commit to feed the FIFO history comparisons.
 */

#ifndef RSEP_RSEP_HRF_HH
#define RSEP_RSEP_HRF_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::equality
{

/** The HRF: trivial storage, mirrors PRF management. */
class HashRegisterFile
{
  public:
    explicit HashRegisterFile(unsigned num_pregs, unsigned hash_bits = 14)
        : hashes(num_pregs, 0), bits(hash_bits)
    {
    }

    void
    write(PhysReg preg, u16 hash)
    {
        hashes.at(preg) = hash;
        ++writes;
    }

    u16
    read(PhysReg preg) const
    {
        ++reads;
        return hashes.at(preg);
    }

    unsigned hashBits() const { return bits; }
    u64 storageBits() const { return hashes.size() * bits; }

    mutable StatCounter reads;
    StatCounter writes;

  private:
    std::vector<u16> hashes;
    unsigned bits;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_HRF_HH

/**
 * @file
 * Inflight Shared Registers Buffer (paper Section IV-E2, after [11]).
 *
 * A small fully-associative buffer allocated on demand when a register
 * becomes shared. Each entry carries two 6-bit counters:
 * `referenced` counts name mappings to the register (the producer's
 * original mapping plus one per sharer, speculative included);
 * `committed` counts mappings whose release has committed. When every
 * counted mapping has been released (committed == referenced) the
 * physical register is truly dead and is freed together with the entry.
 *
 * The paper states the free rule as "committed strictly greater than
 * referenced" because it counts slightly different events; the algebra
 * here is the live-mapping formulation (live = referenced - committed,
 * free at live == 0), which is equivalent and easier to verify.
 *
 * Recovery: only `referenced` is speculative, so a checkpoint is just
 * the vector of referenced counters (checkpoint()/restore()); the
 * pipeline may alternatively undo sharers one by one while walking the
 * ROB backwards (squashSharer()), which is what our core does.
 */

#ifndef RSEP_RSEP_ISRB_HH
#define RSEP_RSEP_ISRB_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rsep::equality
{

/** Result of releasing one mapping of a physical register. */
enum class IsrbRelease : u8 {
    NotShared, ///< no entry: caller frees the register normally.
    StillLive, ///< other mappings remain: do NOT free the register.
    Freed,     ///< last mapping released: entry gone, free the register.
};

/** The ISRB. */
class Isrb
{
  public:
    explicit Isrb(unsigned num_entries = 24, unsigned counter_bits = 6);

    /**
     * Register one more sharer of @p preg.
     * @return false when no sharing is possible (buffer full or the
     * reference counter would overflow) -- the caller must then fall
     * back to a normal allocation (no prediction).
     */
    bool share(PhysReg preg);

    /** Release one mapping of @p preg (at commit of its overwriter). */
    IsrbRelease release(PhysReg preg);

    /** Squash one speculative sharer of @p preg (ROB-walk recovery). */
    IsrbRelease squashSharer(PhysReg preg);

    /** True if an entry exists for @p preg. */
    bool isShared(PhysReg preg) const;

    /** Live mappings of @p preg according to the ISRB (0 = no entry). */
    unsigned liveMappings(PhysReg preg) const;

    /** Checkpoint of the speculative state (referenced counters). */
    struct Checkpoint
    {
        std::vector<std::pair<PhysReg, u8>> referenced;
    };
    Checkpoint checkpoint() const;

    /**
     * Restore a checkpoint: referenced counters revert; entries whose
     * mappings have all committed free their register.
     * @return the registers freed by the restore.
     */
    std::vector<PhysReg> restore(const Checkpoint &cp);

    unsigned entriesInUse() const;
    unsigned capacity() const { return static_cast<unsigned>(table.size()); }

    /** Storage: 2 counters + preg tag per entry (Section VI-A3). */
    u64 storageBits() const;

    StatCounter shareRequests;
    StatCounter shareRefusalsFull;
    StatCounter shareRefusalsOverflow;
    StatCounter entriesFreed;

  private:
    struct Entry
    {
        bool valid = false;
        PhysReg preg = invalidPhysReg;
        u8 referenced = 0;
        u8 committed = 0;
    };

    Entry *find(PhysReg preg);
    const Entry *find(PhysReg preg) const;
    void freeEntry(Entry &e);

    std::vector<Entry> table;
    u8 counterMax;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_ISRB_HH

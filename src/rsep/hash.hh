/**
 * @file
 * Result hashing for equality detection (paper Section IV-A).
 *
 * 64-bit results are folded into an n-bit hash by XORing consecutive
 * n-bit chunks. n defaults to 14 and should not be a power of two: with
 * an 8/16-bit fold, 0 and -1 (and many other sign-extended pairs) would
 * collide, inflating false positives on common values.
 */

#ifndef RSEP_RSEP_HASH_HH
#define RSEP_RSEP_HASH_HH

#include "common/bitutils.hh"
#include "common/types.hh"

namespace rsep::equality
{

/** Default hash width used throughout the paper. */
constexpr unsigned defaultHashBits = 14;

/**
 * Fold @p value into an @p nbits hash. For n = 14 this is exactly the
 * paper's Hash[13..0] = val[13..0] ^ val[27..14] ^ val[41..28]
 * ^ val[55..42] ^ val[63..56].
 */
inline u16
foldHash(u64 value, unsigned nbits = defaultHashBits)
{
    return static_cast<u16>(xorFold(value, nbits));
}

} // namespace rsep::equality

#endif // RSEP_RSEP_HASH_HH

/**
 * @file
 * Data Dependency Table alternative for pair discovery (paper Section
 * IV-B1, after NoSQ [10]): a direct-mapped table indexed by the result
 * hash; each entry holds the CSN of the last committed instruction
 * whose result hashed there. Committing instructions read the entry to
 * get a distance and then write their own CSN.
 *
 * The paper rejects this structure (it would need one port per commit
 * slot since it is value-indexed, so banking cannot help) and shows the
 * FIFO also performs slightly better; the implementation exists for the
 * Section VI-A2 comparison.
 */

#ifndef RSEP_RSEP_DDT_HH
#define RSEP_RSEP_DDT_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "rsep/fifo_history.hh"

namespace rsep::equality
{

/** The DDT pair finder. */
class Ddt
{
  public:
    explicit Ddt(unsigned entries = 8192);

    /**
     * Commit-time access: read the distance to the previous same-hash
     * instruction (if any) and record this instruction.
     */
    std::optional<HistoryMatch> accessAndUpdate(u16 hash, u32 csn, u64 seq);

    void clear();

    /** 8K entries x (10-bit CSN + valid) ~= 16KB with overheads. */
    u64 storageBits() const;

    StatCounter lookups;
    StatCounter matches;

  private:
    struct Entry
    {
        bool valid = false;
        u32 csn = 0;
        u64 seq = 0;
    };

    std::vector<Entry> table;
};

} // namespace rsep::equality

#endif // RSEP_RSEP_DDT_HH

#include "rsep/ddt.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rsep::equality
{

Ddt::Ddt(unsigned entries) : table(entries)
{
    if (!isPowerOf2(entries))
        rsep_fatal("DDT entries must be a power of two (got %u)", entries);
}

void
Ddt::clear()
{
    for (auto &e : table)
        e.valid = false;
}

std::optional<HistoryMatch>
Ddt::accessAndUpdate(u16 hash, u32 csn, u64 seq)
{
    ++lookups;
    Entry &e = table[hash & (table.size() - 1)];
    std::optional<HistoryMatch> out;
    if (e.valid) {
        u32 dist = csnDistance(csn & csnMask, e.csn);
        // A zero distance (CSN alias) or a stale wrapped entry gives a
        // bogus pair; hardware cannot tell, so neither do we -- this is
        // exactly the "per chance match" noise the paper describes.
        if (dist != 0) {
            ++matches;
            out = HistoryMatch{dist, e.seq, false};
        }
    }
    e.valid = true;
    e.csn = csn & csnMask;
    e.seq = seq;
    return out;
}

u64
Ddt::storageBits() const
{
    return table.size() * (csnBits + 1 + 5); // CSN + valid + tag crumbs.
}

} // namespace rsep::equality

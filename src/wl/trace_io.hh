/**
 * @file
 * The `.rtr` recorded-trace format plus the recording/replay
 * TraceSources built on it.
 *
 * A trace is the committed-path DynRecord stream of one (workload,
 * checkpoint-phase) cell. The stream is purely architectural — it
 * depends only on the workload's program and per-phase init, never on
 * the core configuration — so one recording serves every mechanism arm
 * of a sweep (record once, replay many; warm sweeps skip functional
 * emulation entirely, stacking with the per-cell result cache).
 *
 * On-disk layout: a text header, a binary payload, and a trailing
 * FNV-1a checksum of the payload:
 *
 *     rsep-trace 2
 *     workload = mcf                 # run-cell key (name or name@hash)
 *     workload_hash = 16-hex         # workloadHash of the spec
 *     phase = 0
 *     program_length = 57            # static-instruction count echo
 *     records = 123456
 *     payload
 *     <encoded records>
 *     checksum = 16-hex
 *
 * Payload encodings by version (readers accept both; writers emit the
 * version in TraceHeader::version, default current):
 *
 *  - v1: raw little-endian 25-byte records (u32 staticIdx, u32
 *    nextIdx, u64 result, u64 effAddr, u8 taken).
 *  - v2: per-record flag byte + LEB128 varints, exploiting committed-
 *    path structure to cut fleet trace-distribution cost several-fold:
 *    staticIdx is usually the previous record's nextIdx (1 bit),
 *    nextIdx is usually staticIdx+1 (1 bit, else a zigzag delta),
 *    results are often zero or repeat the previous record's (1 bit
 *    each, else a zigzag delta against the previous result), and
 *    effective addresses delta against the previous memory access.
 *
 * The read data path is zero-copy (DESIGN.md §11): files come in
 * through MmapFile (page-cache view, read() fallback) and both
 * decoders — the AoS TraceParse used by tooling and the SoA
 * DecodedTrace used by replay — run the *same* record decoder
 * straight off the view, so the two forms cannot diverge.
 *
 * Files are written atomically (temp + rename). A reader rejects —
 * with a diagnostic, never a partial result — version or checksum
 * mismatches, truncation, and malformed headers; replay additionally
 * validates the workload identity and program-length echo against the
 * registry spec it is asked to feed.
 */

#ifndef RSEP_WL_TRACE_IO_HH
#define RSEP_WL_TRACE_IO_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wl/trace_source.hh"

namespace rsep::wl
{

/** Current trace-format version (the writer default); bump on any
 *  layout change, keeping older versions readable. */
constexpr unsigned traceFormatVersion = 2;

/** Oldest payload encoding readers still accept. */
constexpr unsigned traceFormatVersionMin = 1;

/** Conventional file extension (tracePath appends it). */
constexpr const char *traceFileExtension = ".rtr";

/** Identity header of one `.rtr` file. */
struct TraceHeader
{
    /** Payload encoding to write / that was read (1 = raw records,
     *  2 = varint/delta). */
    unsigned version = traceFormatVersion;
    std::string workload;     ///< run-cell key (workloadKey).
    std::string workloadHash; ///< 16-hex workloadHash of the spec.
    u32 phase = 0;
    u64 programLength = 0;    ///< static-instruction count echo.
    u64 records = 0;
};

/** Canonical on-disk location of a cell's trace under @p dir. */
std::string tracePath(const std::string &dir, const std::string &workload,
                      u32 phase);

/** Serialize a complete trace file image (header+payload+checksum). */
std::string serializeTrace(const TraceHeader &header,
                           const std::vector<DynRecord> &records);

/** Outcome of reading a trace file: header+records, or a diagnostic. */
struct TraceParse
{
    TraceHeader header;
    std::vector<DynRecord> records;
    u64 payloadChecksum = 0; ///< FNV-1a of the on-disk payload.
    std::string error; ///< "path: message"; empty on success.

    bool ok() const { return error.empty(); }
};

/** Parse a trace image. @p origin labels diagnostics. When
 *  @p header_only is set the payload is checksummed but not decoded.
 *  The view is only read during the call (nothing aliases it after). */
TraceParse parseTrace(std::string_view text, const std::string &origin,
                      bool header_only = false);

/** Load and parse a trace file from disk (MmapFile reader). */
TraceParse readTraceFile(const std::string &path, bool header_only = false);

/**
 * A fully decoded trace in struct-of-arrays form: the replay window's
 * storage format. The pipeline's fetch path touches staticIdx/nextIdx/
 * taken on every record; result and effAddr matter only to the value-
 * speculation engines and the memory system, so the hot lanes stream
 * contiguously instead of dragging 16 cold bytes per record through
 * the cache. Immutable after decode — DecodedTraceCache shares one
 * instance across every matrix cell replaying the same file.
 */
struct DecodedTrace
{
    TraceHeader header;
    u64 payloadChecksum = 0; ///< cache-key component (trace_cache.hh).

    // Hot lanes (fetch path), index-parallel.
    std::vector<u32> staticIdx;
    std::vector<u32> nextIdx;
    std::vector<u8> taken;
    // Cold lanes.
    std::vector<u64> result;
    std::vector<Addr> effAddr;

    size_t size() const { return staticIdx.size(); }

    /** Decoded footprint of one record across the five lanes. */
    static constexpr u64 bytesPerRecord =
        sizeof(u32) * 2 + sizeof(u8) + sizeof(u64) + sizeof(Addr);

    /** In-memory footprint of the record lanes (LRU accounting). */
    u64 decodedBytes() const { return size() * bytesPerRecord; }

    /** Materialize record @p i (tooling/tests; replay fills in place). */
    DynRecord
    recordAt(size_t i) const
    {
        DynRecord r;
        r.staticIdx = staticIdx[i];
        r.nextIdx = nextIdx[i];
        r.result = result[i];
        r.effAddr = effAddr[i];
        r.taken = taken[i] != 0;
        return r;
    }

    void
    appendRecord(const DynRecord &r)
    {
        staticIdx.push_back(r.staticIdx);
        nextIdx.push_back(r.nextIdx);
        taken.push_back(r.taken ? 1 : 0);
        result.push_back(r.result);
        effAddr.push_back(r.effAddr);
    }

    void
    reserveRecords(size_t n)
    {
        staticIdx.reserve(n);
        nextIdx.reserve(n);
        taken.reserve(n);
        result.reserve(n);
        effAddr.reserve(n);
    }

    /** Build from an in-memory AoS stream (rsep_bench, tests). */
    static std::shared_ptr<const DecodedTrace>
    fromRecords(TraceHeader header, const std::vector<DynRecord> &records);
};

/** Outcome of decoding a trace straight to SoA form. */
struct DecodedTraceParse
{
    std::shared_ptr<const DecodedTrace> trace; ///< null on error.
    std::string error; ///< "origin: message"; empty on success.

    bool ok() const { return trace != nullptr; }
};

/** Decode a trace image directly into SoA form — one pass over the
 *  (typically mmap'd) bytes, no intermediate record vector. */
DecodedTraceParse decodeTraceImage(std::string_view text,
                                   const std::string &origin);

/** Map (or read-fallback) and decode a trace file to SoA form. */
DecodedTraceParse loadDecodedTrace(const std::string &path);

/** Atomically write a trace file (temp + rename, directories created).
 *  False + @p err on I/O failure. */
bool writeTraceFile(const std::string &path, const TraceHeader &header,
                    const std::vector<DynRecord> &records,
                    std::string *err = nullptr);

/**
 * Pass-through TraceSource that tees every record produced by the
 * wrapped source into an in-memory buffer, for writing out once the
 * timing run completes.
 */
class RecordingTraceSource : public TraceSource
{
  public:
    explicit RecordingTraceSource(TraceSource &inner) : src(inner) {}

    const DynRecord &
    step() override
    {
        const DynRecord &r = src.step();
        buffer.push_back(r);
        return r;
    }

    const isa::Program &program() const override { return src.program(); }

    /**
     * Pull @p n more records from the wrapped source into the buffer
     * without handing them to the consumer — slack appended after the
     * run so a replay under a config with a slightly deeper fetch
     * lookahead does not exhaust the trace.
     */
    void
    recordSlack(u64 n)
    {
        for (u64 i = 0; i < n; ++i)
            buffer.push_back(src.step());
    }

    const std::vector<DynRecord> &records() const { return buffer; }

    /** Write the buffered stream to @p path (atomic). The header's
     *  record count is filled from the buffer. */
    bool write(const std::string &path, TraceHeader header,
               std::string *err = nullptr) const;

  private:
    TraceSource &src;
    std::vector<DynRecord> buffer;
};

/**
 * TraceSource replaying a decoded `.rtr` stream against the workload's
 * registry-built Program. The decoded trace is shared and immutable
 * (many concurrent sources can replay one DecodedTrace); each source
 * keeps only a cursor and materializes the current record from the
 * SoA lanes. Exhausting the stream is fatal (the trace was recorded
 * under a smaller run sizing than the replay asks for); so is a
 * record indexing outside the program.
 */
class ReplayTraceSource : public TraceSource
{
  public:
    /** @p prog must outlive the source (the caller owns the built
     *  workload). @p origin labels diagnostics (e.g. the file path). */
    ReplayTraceSource(std::shared_ptr<const DecodedTrace> decoded,
                      const isa::Program &prog, std::string origin);

    /** Convenience: decode an AoS parse (in-memory benches, tests). */
    ReplayTraceSource(TraceParse parse, const isa::Program &prog,
                      std::string origin);

    const DynRecord &step() override;
    const isa::Program &program() const override { return prog; }

    const TraceHeader &header() const { return trace->header; }
    u64 consumed() const { return next; }

  private:
    std::shared_ptr<const DecodedTrace> trace;
    const isa::Program &prog;
    std::string origin;
    u64 next = 0;
    DynRecord cur;
};

} // namespace rsep::wl

#endif // RSEP_WL_TRACE_IO_HH

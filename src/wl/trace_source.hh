/**
 * @file
 * The committed-path instruction stream as an interface.
 *
 * The timing model is trace-driven: it consumes a sequential stream of
 * DynRecords plus the static Program they index into. TraceSource
 * abstracts where that stream comes from, so the pipeline can be fed
 * either by **live functional emulation** (wl::Emulator) or by the
 * **replay of a recorded `.rtr` trace** (trace_io.hh) — record once,
 * replay many: warm sweeps skip emulation entirely.
 *
 * The replay side of the interface is deliberately thin: a replay
 * source is a cursor over an immutable, shared, SoA-decoded trace
 * (DecodedTrace, handed out by the process-wide DecodedTraceCache), so
 * any number of matrix cells can stream the same decoded bytes
 * concurrently without copies. See DESIGN.md §11 for the data path.
 */

#ifndef RSEP_WL_TRACE_SOURCE_HH
#define RSEP_WL_TRACE_SOURCE_HH

#include "isa/program.hh"
#include "wl/dynrecord.hh"

namespace rsep::wl
{

/** A sequential producer of the committed-path record stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next committed-path record. The reference stays
     * valid until the next step() call (TraceBuffer copies it into
     * its window immediately). Sources are infinite (live emulation)
     * or fatal on exhaustion (replay) — they never return a sentinel.
     */
    virtual const DynRecord &step() = 0;

    /** The static program the records' indices refer to. */
    virtual const isa::Program &program() const = 0;
};

} // namespace rsep::wl

#endif // RSEP_WL_TRACE_SOURCE_HH

#include "wl/emulator.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace rsep::wl
{

using isa::Opcode;
using isa::StaticInst;

Emulator::Emulator(const isa::Program &program) : prog(program)
{
    if (prog.empty())
        rsep_fatal("emulator: empty program '%s'", prog.progName().c_str());
}

void
Emulator::resetArchState()
{
    regs.fill(0);
    cur = 0;
    icount = 0;
}

u64
Emulator::readReg(ArchReg r) const
{
    if (r == isa::zeroReg)
        return 0;
    return regs.at(r);
}

void
Emulator::setReg(ArchReg r, u64 v)
{
    writeReg(r, v);
}

void
Emulator::setFpReg(ArchReg r, double v)
{
    writeReg(r, std::bit_cast<u64>(v));
}

void
Emulator::writeReg(ArchReg r, u64 v)
{
    if (r == isa::zeroReg || r == invalidArchReg)
        return;
    regs.at(r) = v;
}

namespace
{

double
asF(u64 v)
{
    return std::bit_cast<double>(v);
}

u64
asU(double v)
{
    return std::bit_cast<u64>(v);
}

} // namespace

const DynRecord &
Emulator::step()
{
    // Skip Halt by wrapping; guard against degenerate all-halt programs.
    for (unsigned guard = 0; prog.at(cur).isHalt(); ++guard) {
        cur = 0;
        if (guard > 1)
            rsep_fatal("emulator: program '%s' contains only Halt",
                       prog.progName().c_str());
    }

    const StaticInst &si = prog.at(cur);
    u32 next = (cur + 1 < prog.size()) ? cur + 1 : 0;

    rec.staticIdx = cur;
    rec.result = 0;
    rec.effAddr = 0;
    rec.taken = false;

    u64 a = si.src1 != invalidArchReg ? readReg(si.src1) : 0;
    u64 b = si.src2 != invalidArchReg ? readReg(si.src2) : 0;
    u64 res = 0;
    bool taken = false;

    switch (si.op) {
      case Opcode::Add: res = a + b; break;
      case Opcode::Sub: res = a - b; break;
      case Opcode::And: res = a & b; break;
      case Opcode::Orr: res = a | b; break;
      case Opcode::Eor: res = a ^ b; break;
      case Opcode::Lsl: res = a << (b & 63); break;
      case Opcode::Lsr: res = a >> (b & 63); break;
      case Opcode::Asr: res = static_cast<u64>(static_cast<s64>(a) >> (b & 63)); break;
      case Opcode::AddI: res = a + static_cast<u64>(si.imm); break;
      case Opcode::SubI: res = a - static_cast<u64>(si.imm); break;
      case Opcode::AndI: res = a & static_cast<u64>(si.imm); break;
      case Opcode::OrrI: res = a | static_cast<u64>(si.imm); break;
      case Opcode::EorI: res = a ^ static_cast<u64>(si.imm); break;
      case Opcode::LslI: res = a << (si.imm & 63); break;
      case Opcode::LsrI: res = a >> (si.imm & 63); break;
      case Opcode::AsrI: res = static_cast<u64>(static_cast<s64>(a) >> (si.imm & 63)); break;
      case Opcode::CmpLt: res = static_cast<s64>(a) < static_cast<s64>(b) ? 1 : 0; break;
      case Opcode::CmpLtU: res = a < b ? 1 : 0; break;
      case Opcode::CmpEq: res = a == b ? 1 : 0; break;
      case Opcode::Mul: res = a * b; break;
      case Opcode::Div:
        // Aarch64 semantics: divide by zero yields 0.
        if (b == 0)
            res = 0;
        else if (static_cast<s64>(a) == INT64_MIN && static_cast<s64>(b) == -1)
            res = a;
        else
            res = static_cast<u64>(static_cast<s64>(a) / static_cast<s64>(b));
        break;
      case Opcode::Mov: res = a; break;
      case Opcode::MovI: res = static_cast<u64>(si.imm); break;
      case Opcode::FAdd: res = asU(asF(a) + asF(b)); break;
      case Opcode::FSub: res = asU(asF(a) - asF(b)); break;
      case Opcode::FMul: res = asU(asF(a) * asF(b)); break;
      case Opcode::FDiv:
        res = asF(b) == 0.0 ? asU(0.0) : asU(asF(a) / asF(b));
        break;
      case Opcode::FMov: res = a; break;
      case Opcode::FCvtI: res = asU(static_cast<double>(static_cast<s64>(a))); break;
      case Opcode::FCvtF: {
        double d = asF(a);
        if (!std::isfinite(d))
            res = 0;
        else if (d >= 9.2233720368547758e18)
            res = static_cast<u64>(INT64_MAX);
        else if (d <= -9.2233720368547758e18)
            res = static_cast<u64>(INT64_MIN);
        else
            res = static_cast<u64>(static_cast<s64>(d));
        break;
      }
      case Opcode::FAbs: res = asU(std::fabs(asF(a))); break;
      case Opcode::FNeg: res = asU(-asF(a)); break;
      case Opcode::FMin: res = asU(std::fmin(asF(a), asF(b))); break;
      case Opcode::FMax: res = asU(std::fmax(asF(a), asF(b))); break;
      case Opcode::Ldr:
      case Opcode::FLdr:
        rec.effAddr = (a + static_cast<u64>(si.imm)) & ~Addr{7};
        res = mem.read(rec.effAddr);
        break;
      case Opcode::LdrX:
      case Opcode::FLdrX:
        rec.effAddr = (a + b * 8) & ~Addr{7};
        res = mem.read(rec.effAddr);
        break;
      case Opcode::Str:
      case Opcode::FStr:
        rec.effAddr = (a + static_cast<u64>(si.imm)) & ~Addr{7};
        res = readReg(si.srcData);
        mem.write(rec.effAddr, res);
        break;
      case Opcode::StrX:
      case Opcode::FStrX:
        rec.effAddr = (a + b * 8) & ~Addr{7};
        res = readReg(si.srcData);
        mem.write(rec.effAddr, res);
        break;
      case Opcode::B:
        taken = true;
        next = static_cast<u32>(si.imm);
        break;
      case Opcode::Beq: taken = (a == b); break;
      case Opcode::Bne: taken = (a != b); break;
      case Opcode::Blt: taken = (static_cast<s64>(a) < static_cast<s64>(b)); break;
      case Opcode::Bge: taken = (static_cast<s64>(a) >= static_cast<s64>(b)); break;
      case Opcode::Bltu: taken = (a < b); break;
      case Opcode::Bgeu: taken = (a >= b); break;
      case Opcode::Cbz: taken = (a == 0); break;
      case Opcode::Cbnz: taken = (a != 0); break;
      case Opcode::Bl:
        taken = true;
        res = isa::Program::pcOf(cur) + isa::Program::instBytes;
        next = static_cast<u32>(si.imm);
        break;
      case Opcode::Ret:
      case Opcode::BrInd:
        taken = true;
        next = static_cast<u32>(isa::Program::indexOf(a));
        if (next >= prog.size())
            rsep_fatal("emulator: indirect jump to bad pc %#llx in '%s'",
                       static_cast<unsigned long long>(a),
                       prog.progName().c_str());
        break;
      case Opcode::Nop:
        break;
      default:
        rsep_panic("emulator: unhandled opcode %d", static_cast<int>(si.op));
    }

    if (si.isCondBranch() && taken)
        next = static_cast<u32>(si.imm);

    if (si.writesReg())
        writeReg(si.dst, res);

    rec.result = res;
    rec.taken = taken;
    rec.nextIdx = next;

    cur = next;
    ++icount;
    return rec;
}

} // namespace rsep::wl

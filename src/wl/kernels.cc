#include "wl/kernels.hh"

#include <bit>
#include <vector>

#include "common/rng.hh"

namespace rsep::wl
{

using isa::Program;
using isa::ProgramBuilder;

namespace
{

constexpr ArchReg Z = isa::zeroReg;

/** FP register d(i). */
constexpr ArchReg
D(unsigned i)
{
    return static_cast<ArchReg>(isa::fpRegBase + i);
}

/** Stable per-(workload, phase) seed. */
u64
phaseSeed(const std::string &name, u32 phase)
{
    u64 h = 0xcbf29ce484222325ull;
    for (char c : name)
        h = (h ^ static_cast<u8>(c)) * 0x100000001b3ull;
    return h ^ (0x9e3779b97f4a7c15ull * (phase + 1));
}

// Data-region base addresses (distinct regions per logical array so the
// prefetchers see realistic per-stream behaviour).
constexpr Addr regionA = 0x10000000;
constexpr Addr regionB = 0x20000000;
constexpr Addr regionC = 0x30000000;
constexpr Addr regionD = 0x40000000;
constexpr Addr regionE = 0x50000000;

} // namespace

// ---------------------------------------------------------------------
// pointer_chase (mcf): DRAM-bound traversal of four interleaved node
// cycles (memory-level parallelism as in mcf's arc scans). Each node's
// potential is also present, in visit order, in a dense prefetchable
// side array (mcf keeps node/arc attributes in multiple structures).
// The slow in-node load B therefore equals the fast array load A at a
// small fixed distance but on a *different dependency chain* -- exactly
// the Section IV-H2 pattern. B feeds a data-dependent branch, so
// equality prediction resolves the branch long before the node line
// arrives, uncorking fetch and overlapping more chases.
// ---------------------------------------------------------------------
Workload
makePointerChase(const std::string &name, const PointerChaseParams &p)
{
    constexpr unsigned chains = 4;
    // Node layout (128B, two cache lines): [+0]=next | [+64]=potential,
    // [+72]=flow, [+80]=scratch.
    ProgramBuilder b(name);
    // x13..x16 = chain pointers, x11 = side array, x20 = k, x21 = 4N.
    b.label("top");
    for (unsigned c = 0; c < chains; ++c) {
        ArchReg ptr = static_cast<ArchReg>(13 + c);
        std::string skip = "skip" + std::to_string(c);
        b.ldrx(1, 11, 20);      // A: potential in visit order (fast)
        b.add(4, 4, 1);
        b.ldr(2, ptr, 72);      // flow (node line 1, slow)
        b.ldr(5, ptr, 64);      // B: node->potential == A (slow)
        b.andi(6, 5, 3);        // data-dependent branch source
        b.cbnz(6, skip);        // ~75% taken, poorly predictable
        b.add(7, 7, 5);
        b.str(7, ptr, 80);
        b.label(skip);
        b.add(8, 8, 2);
        b.ldr(ptr, ptr, 0);     // chase next (node line 0, DRAM)
        b.addi(20, 20, 1);
    }
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    PointerChaseParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("pointer_chase", phase));
        const u64 n = params.nodes;
        const u64 per_chain = n / chains;
        auto nodeAddr = [](u64 i) { return regionA + i * 128; };

        // Four disjoint random cycles (Sattolo) + potential values.
        // ~12% of potentials are 0 mod 4, so the in-body branch is
        // taken ~88% of the time: biased but data-dependent, like
        // mcf's arc-cost tests.
        std::vector<u64> potential(n);
        for (u64 i = 0; i < n; ++i) {
            u64 magnitude = 4 * (50 + rng.below(params.costAlphabet));
            u64 low = rng.below(1000) < 25 ? 0 : 1 + rng.below(3);
            potential[i] = magnitude + low;
        }
        std::vector<u64> start(chains);
        std::vector<std::vector<u64>> visit(chains);
        for (unsigned c = 0; c < chains; ++c) {
            u64 lo = c * per_chain;
            std::vector<u64> perm(per_chain);
            for (u64 i = 0; i < per_chain; ++i)
                perm[i] = lo + i;
            for (u64 i = per_chain - 1; i >= 1; --i)
                std::swap(perm[i], perm[rng.below(i)]);
            // perm defines the cycle: perm[k] -> perm[k+1].
            for (u64 k = 0; k < per_chain; ++k) {
                u64 node = perm[k];
                u64 nxt = perm[(k + 1) % per_chain];
                em.memory().write(nodeAddr(node) + 0, nodeAddr(nxt));
                em.memory().write(nodeAddr(node) + 64, potential[node]);
                em.memory().write(nodeAddr(node) + 72, rng.below(1600));
            }
            start[c] = perm[0];
            visit[c] = std::move(perm);
        }
        // Side array in interleaved visit order: the k-th outer
        // iteration consumes entries 4k..4k+3 (chain 0..3), and the
        // node visited by chain c at iteration k is visit[c][k].
        for (u64 k = 0; k < per_chain; ++k)
            for (unsigned c = 0; c < chains; ++c)
                em.memory().write(regionB + (k * chains + c) * 8,
                                  potential[visit[c][k]]);
        for (unsigned c = 0; c < chains; ++c)
            em.setReg(static_cast<ArchReg>(13 + c), nodeAddr(start[c]));
        em.setReg(11, regionB);
        em.setReg(21, per_chain * chains);
    };
    return {name, "pointer_chase", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// dyn_prog (hmmer): two clamped recurrences (Viterbi M/I style). In
// clamp-dominant segments both chains saturate to the same bound, so the
// second chain's max equals the first chain's max a fixed distance
// earlier -- with a value that changes every column (VP-proof equality).
// In non-clamp segments the chains stride (small VP opportunity).
// ---------------------------------------------------------------------
Workload
makeDynProg(const std::string &name, const DynProgParams &p)
{
    ProgramBuilder b(name);
    // x10 = E base, x11 = D row base, x20 = j, x21 = cols,
    // x14 = t1, x15 = t2 (negative transitions), x3 = D, x9 = I.
    b.label("row");
    b.movi(20, 0);
    b.movi(3, 0);
    b.movi(9, 0);
    b.label("inner");
    b.ldrx(1, 10, 20);      // E[j]
    b.add(2, 3, 14);        // D + t1
    b.cmplt(5, 2, 1);
    b.sub(6, Z, 5);         // mask = -(D+t1 < E)
    b.and_(7, 1, 6);
    b.eori(8, 6, -1);
    b.and_(2, 2, 8);
    b.orr(3, 7, 2);         // D = max(D+t1, E)          [P1]
    b.add(4, 9, 15);        // I + t2
    b.cmplt(5, 4, 3);
    b.sub(6, Z, 5);
    b.and_(7, 3, 6);
    b.eori(8, 6, -1);
    b.and_(4, 4, 8);
    b.orr(9, 7, 4);         // I = max(I+t2, D) == D when clamped [P2]
    b.strx(9, 11, 20);
    // Parallel per-column work (emission scores, trace bookkeeping):
    // dilutes the recurrences' share of the cycle budget as in the
    // real profile.
    b.ldrx(16, 12, 20);     // emission score (irregular values)
    b.add(17, 17, 16);
    b.fldrx(D(20), 13, 20); // FP odds ratio
    b.fadd(D(21), D(21), D(20));
    b.fmul(D(22), D(20), D(23));
    b.strx(17, 26, 20);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "inner");
    b.b("row");
    Program prog = b.build();

    DynProgParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("dyn_prog", phase));
        const u64 cols = params.cols;
        // E table: long clamp-friendly segments (large scores) separated
        // by short decaying segments (tiny scores).
        u64 j = 0;
        while (j < cols) {
            bool clamp_seg = rng.below(100) < params.clampDuty;
            u64 seg = clamp_seg ? 600 + rng.below(1000)
                                : 180 + rng.below(320);
            for (u64 k = 0; k < seg && j < cols; ++k, ++j) {
                u64 v = clamp_seg
                    ? (u64{1} << 22) + rng.below(params.scoreSpread)
                    : rng.below(64);
                em.memory().write(regionA + j * 8, v);
            }
        }
        for (u64 k = 0; k < cols; ++k) {
            em.memory().write(regionC + k * 8, rng.below(1 << 18));
            em.memory().write(regionD + k * 8,
                              std::bit_cast<u64>(0.1 + rng.uniform()));
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(13, regionD);
        em.setReg(26, regionE);
        em.setReg(21, cols);
        em.setReg(14, static_cast<u64>(-3));
        em.setReg(15, static_cast<u64>(-5));
        em.setFpReg(D(23), 0.9375);
    };
    return {name, "dyn_prog", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// recompute (dealII): FEM-style assembly with a *saturating* stress
// accumulator (plastic-limit clamp via fmin). While the accumulator
// sits at the limit -- long stretches determined by the element data --
// the fmin result repeats, so equality prediction severs the
// loop-carried recurrence; off the limit the chain is live and nothing
// predicts. A recomputed product and reloaded operands (spill/aliasing
// texture) add the paper's non-load equality flavour and dilute the
// chain's share of the body.
// ---------------------------------------------------------------------
Workload
makeRecompute(const std::string &name, const RecomputeParams &p)
{
    ProgramBuilder b(name);
    // x10 = a[], x11 = b[], x12 = out[], x13 = limit[], x20 = i,
    // x21 = n, d30 = row relaxation factor.
    b.label("top");
    b.lsli(5, 20, 3);           // index calc               [VP stride]
    b.lsri(22, 20, 7);          // stress-limit group g = i >> 7
    b.fldrx(D(1), 10, 20);      // a[i]
    b.fldrx(D(2), 11, 20);      // b[i]
    b.fmul(D(3), D(1), D(2));   // jac = a*b (independent)
    b.fadd(D(5), D(4), D(3));   // candidate = acc + jac
    b.fldrx(D(11), 13, 22);     // limit[g] (hot, changes every 128 i)
    b.fmin(D(4), D(5), D(11));  // acc = min(cand, limit): while the
                                // accumulator is clamped this equals
                                // the same-iteration limit load [P1]
    b.fstrx(D(4), 12, 20);
    b.fldrx(D(6), 10, 20);      // a[i] reload (== d1, spill texture)
    b.fmul(D(7), D(6), D(2));   // recomputed jac == d3 (non-load) [P2]
    b.fadd(D(8), D(8), D(7));   // error-norm accumulator
    b.add(7, 7, 5);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.fmul(D(4), D(4), D(30));  // row relaxation: leave the limit
    b.b("top");
    Program prog = b.build();

    RecomputeParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("recompute", phase));
        for (u64 i = 0; i < params.elems; ++i) {
            double a = 0.8 + rng.uniform() * 2.0;
            double v = 0.25 + rng.uniform() * 1.5;
            em.memory().write(regionA + i * 8, std::bit_cast<u64>(a));
            em.memory().write(regionB + i * 8, std::bit_cast<u64>(v));
        }
        // Limits descend across groups, so once clamped the
        // accumulator stays clamped; the per-128-element value change
        // defeats last-value prediction but not distance prediction.
        u64 groups = (params.elems >> 7) + 1;
        for (u64 g = 0; g < groups; ++g) {
            double limit = 5400.0 - 18.0 * static_cast<double>(g) +
                           static_cast<double>(rng.below(7));
            em.memory().write(regionD + g * 8, std::bit_cast<u64>(limit));
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(13, regionD);
        em.setReg(21, params.elems);
        em.setFpReg(D(30), 0.05);
    };
    return {name, "recompute", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// gate_sim (libquantum): bit-mask gate application over basis states.
// A structurally dead feature mask makes one AND always produce zero
// (zero-prediction target); the state word is reloaded after the
// conditional toggle, creating branch-history-resolved equality with
// either the original load or the store (SMB-style capture).
// ---------------------------------------------------------------------
Workload
makeGateSim(const std::string &name, const GateSimParams &p)
{
    ProgramBuilder b(name);
    // x10 = state base, x12 = pair base (state + half), x20 = i,
    // x21 = half, x22 = dead mask, x23 = gate mask.
    b.label("top");
    b.ldrx(1, 10, 20);      // A: state[i] (streaming)
    b.lsri(2, 1, p.controlBit);
    b.andi(3, 2, 1);        // control bit (mostly 0)
    b.and_(4, 1, 22);       // always zero (dead feature)   [ZP]
    b.add(26, 26, 4);
    b.ldrx(9, 12, 20);      // A': entangled partner state[i+half];
                            //     == A for correlated pairs (CNOT)
    b.eor(27, 1, 9);        // 0 when the pair is correlated [zeros]
    b.cbnz(27, "decohere"); // ~12% taken, data-dependent
    b.label("resume");
    b.cbz(3, "skip");
    b.eor(5, 1, 23);        // toggle
    b.strx(5, 10, 20);
    b.label("skip");
    b.ldrx(6, 10, 20);      // B: reload; ==A (not toggled) or ==x5
    b.add(7, 7, 6);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    b.label("decohere");
    b.add(28, 28, 27);      // track decoherence events
    b.b("resume");
    Program prog = b.build();

    GateSimParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("gate_sim", phase));
        // States drawn from a small alphabet of basis masks. The dead
        // mask selects bits never present in any state word. The upper
        // half of the register mirrors the lower half (entangled
        // pairs) except where "decoherence" injected a difference.
        const u64 live_bits = 0x00ffffffffffull;
        const u64 dead_mask = 0x3f000000000000ull;
        std::vector<u64> alphabet(24);
        for (auto &v : alphabet) {
            v = rng.next() & live_bits;
            if (rng.below(100) >= params.setBitPct)
                v &= ~(u64{1} << params.controlBit);
            else
                v |= (u64{1} << params.controlBit);
            if (rng.below(4) == 0)
                v = 0;
        }
        // Decoherence is clustered (whole sub-registers lose pairing at
        // once), so correlated stretches are long enough for the
        // distance predictor to saturate and pay off.
        u64 half = params.stateWords;
        u64 i = 0;
        while (i < half) {
            bool decohered = rng.below(100) < params.setBitPct;
            u64 seg = decohered ? 80 + rng.below(240)
                                : 900 + rng.below(2600);
            for (u64 k = 0; k < seg && i < half; ++k, ++i) {
                u64 v = alphabet[rng.below(alphabet.size())];
                em.memory().write(regionA + i * 8, v);
                u64 partner = decohered
                    ? alphabet[rng.below(alphabet.size())]
                    : v;
                em.memory().write(regionA + (half + i) * 8, partner);
            }
        }
        em.setReg(10, regionA);
        em.setReg(12, regionA + half * 8);
        em.setReg(21, half);
        em.setReg(22, dead_mask);
        em.setReg(23, (u64{1} << 33) | 0x5a0);
    };
    return {name, "gate_sim", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// event_queue (omnetpp): binary-heap pop/push. The root reload at the
// top of each outer iteration equals the value the previous sift stored
// into heap[0] at a long but fixed distance; sift-internal min selection
// produces equality at data-dependent (noisy) distances. Times increase
// monotonically with a small delta alphabet, so VP gets little.
// ---------------------------------------------------------------------
Workload
makeEventQueue(const std::string &name, const EventQueueParams &p)
{
    // Fixed sift depth keeps the outer-loop structure regular.
    const unsigned levels = 6;

    ProgramBuilder b(name);
    // x10 = heap base, x11 = delta table, x21 = sift counter.
    b.label("outer");
    b.ldr(1, 10, 0);        // root (== value stored to heap[0] last time)
    b.andi(2, 1, 7);        // pseudo-random delta index
    b.ldrx(3, 11, 2);       // delta
    b.add(4, 1, 3);         // new event time
    b.movi(5, 0);           // i = 0
    b.movi(21, levels);
    b.label("sift");
    b.lsli(6, 5, 1);
    b.addi(6, 6, 1);        // l = 2i+1
    b.ldrx(7, 10, 6);       // heap[l]
    b.addi(8, 6, 1);        // r
    b.ldrx(9, 10, 8);       // heap[r]
    b.cmpltu(2, 7, 9);
    b.sub(3, Z, 2);         // mask
    b.and_(26, 7, 3);
    b.eori(27, 3, -1);
    b.and_(28, 9, 27);
    b.orr(26, 26, 28);      // min child value
    b.and_(29, 6, 3);
    b.and_(28, 8, 27);
    b.orr(29, 29, 28);      // min child index
    b.strx(26, 10, 5);      // heap[i] = min child (value moves up)
    b.mov(5, 29);           // descend (move-elim candidate)
    b.subi(21, 21, 1);
    b.cbnz(21, "sift");
    b.strx(4, 10, 5);       // place new event at the leaf
    b.b("outer");
    Program prog = b.build();

    EventQueueParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("event_queue", phase));
        // Heap of event times, loosely heap-ordered by construction.
        u64 base_time = 1000;
        for (u64 i = 0; i < params.heapSize; ++i) {
            u64 depth_bonus = (63 - std::countl_zero(i + 1)) * 97;
            em.memory().write(regionA + i * 8,
                              base_time + depth_bonus + rng.below(173));
        }
        for (u64 i = 0; i < 8; ++i)
            em.memory().write(regionB + i * 8,
                              23 + 41 * rng.below(params.deltaAlphabet));
        em.setReg(10, regionA);
        em.setReg(11, regionB);
    };
    return {name, "event_queue", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// xml_parse (xalancbmk): byte classifier + table-driven state machine
// with token bookkeeping done through register moves. Character-class
// runs make both the class loads and the state loads repeat (VP and
// RSEP both profit); the moves feed move elimination.
// ---------------------------------------------------------------------
Workload
makeXmlParse(const std::string &name, const XmlParseParams &p)
{
    ProgramBuilder b(name);
    // x10 = text, x11 = ctab, x12 = trans, x20 = i, x21 = len, x4 = state.
    b.label("top");
    b.ldrx(1, 10, 20);      // ch
    b.ldrx(2, 11, 1);       // cls = ctab[ch]   (runs -> repeats)
    b.lsli(3, 4, 3);        // state * 8
    b.add(3, 3, 2);
    b.ldrx(4, 12, 3);       // state = trans[state*8 + cls]
    b.mov(5, 4);            // prev_state  (move)
    b.mov(6, 2);            // prev_class  (move)
    // Token hashing / bookkeeping: per-character parallel work that
    // dilutes the state recurrence's share, as in the real profile.
    b.lsli(16, 9, 1);
    b.eor(9, 16, 1);        // rolling token hash
    b.add(17, 17, 1);
    b.andi(18, 1, 63);
    b.add(19, 19, 18);
    b.strx(9, 13, 20);      // emit normalized character
    b.cbz(2, "emit");
    b.label("next");
    b.add(24, 24, 5);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    b.label("emit");
    b.mov(7, 8);            // token start copy (move)
    b.mov(8, 20);           // new token start  (move)
    b.add(25, 25, 7);
    b.b("next");
    Program prog = b.build();

    XmlParseParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("xml_parse", phase));
        // Class table: chars [8, 128) are all "letter" (class 1) so
        // character-data sections give long same-class runs; the rest
        // of the space spreads over the markup classes.
        for (u64 ch = 0; ch < 256; ++ch) {
            u64 cls;
            if (ch == 0)
                cls = 0;
            else if (ch >= 8 && ch < 128)
                cls = 1;
            else
                cls = 2 + ch % (params.numClasses - 2);
            em.memory().write(regionB + ch * 8, cls);
        }
        // Text: markup bursts (short mixed-class runs) alternating with
        // long character-data sections (varied letters, same class).
        u64 i = 0;
        while (i < params.textLen) {
            bool content = rng.below(1000) < 12;
            if (content) {
                u64 run = 300 + rng.below(400);
                for (u64 k = 0; k < run && i < params.textLen; ++k, ++i)
                    em.memory().write(regionA + i * 8,
                                      8 + rng.below(120));
            } else {
                u64 run = 2 + rng.below(12);
                for (u64 k = 0; k < run && i < params.textLen; ++k, ++i)
                    em.memory().write(regionA + i * 8,
                                      128 + rng.below(127));
                if (rng.below(4) == 0 && i < params.textLen) {
                    em.memory().write(regionA + i * 8, 0); // delimiter
                    ++i;
                }
            }
        }
        for (u64 s = 0; s < params.numStates; ++s)
            for (u64 c = 0; c < 8; ++c)
                em.memory().write(regionC + (s * 8 + c) * 8,
                                  (s + c * 3 + 1) % params.numStates);
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(13, regionD);
        em.setReg(21, params.textLen);
    };
    return {name, "xml_parse", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// interp (perlbench): bytecode dispatch through a jump table. Handler
// results are constants, strides and rarely-changing variables: value
// prediction captures essentially everything equality prediction can
// see (the paper's one fully-overlapping benchmark), and the indirect
// dispatch keeps baseline IPC modest.
// ---------------------------------------------------------------------
Workload
makeInterp(const std::string &name, const InterpParams &p)
{
    ProgramBuilder b(name);
    // x10 = bytecode, x11 = jump table, x12 = vars, x13 = stack,
    // x20 = ip, x21 = len, x22 = sp.
    b.label("dispatch");
    b.ldrx(1, 10, 20);      // op
    b.ldrx(2, 11, 1);       // target = jtab[op]
    b.brind(2);
    // op 0: PUSHC -- push a constant.
    b.label("op0");
    b.movi(4, 1234);
    b.strx(4, 13, 22);
    b.addi(22, 22, 1);
    b.andi(22, 22, 63);
    b.b("next");
    // op 1: INC -- increment global counter (stride).
    b.label("op1");
    b.ldr(4, 12, 0);
    b.addi(4, 4, 1);
    b.str(4, 12, 0);
    b.b("next");
    // op 2: LOADV -- load a rarely-changing variable.
    b.label("op2");
    b.ldr(4, 12, 8);
    b.add(5, 5, 4);
    b.b("next");
    // op 3: ADDK -- accumulator plus constant.
    b.label("op3");
    b.addi(6, 6, 17);
    b.b("next");
    // op 4: CLEAR -- zero idiom.
    b.label("op4");
    b.movi(7, 0);
    b.b("next");
    // op 5: COPY -- register move.
    b.label("op5");
    b.mov(8, 6);
    b.b("next");
    b.label("next");
    b.addi(20, 20, 1);
    b.bltu(20, 21, "dispatch");
    b.movi(20, 0);
    b.b("dispatch");
    Program prog = b.build();

    InterpParams params = p;
    auto init = [params, prog](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("interp", phase));
        for (u64 i = 0; i < params.bytecodeLen; ++i)
            em.memory().write(regionA + i * 8,
                              rng.below(params.numOpcodes));
        for (u64 op = 0; op < params.numOpcodes; ++op) {
            std::string lbl = "op" + std::to_string(op);
            em.memory().write(regionB + op * 8, prog.labelPc(lbl));
        }
        em.memory().write(regionC + 0, 5);   // counter
        em.memory().write(regionC + 8, 777); // rarely-changing var
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(13, regionD);
        em.setReg(21, params.bytecodeLen);
    };
    return {name, "interp", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// block_sort (bzip2): run-length data scanned with a histogram update.
// Runs are short (mean ~24): equality is transient, so it never reaches
// use_pred confidence, but a low start_train threshold (15) promotes
// many of these instructions to likely candidates whose producers are
// frequently late L2-missing loads -- the Fig. 6 bzip2 pathology.
// ---------------------------------------------------------------------
Workload
makeBlockSort(const std::string &name, const BlockSortParams &p)
{
    ProgramBuilder b(name);
    // x10 = data, x11 = counts, x20 = i, x21 = n, x5 = prev.
    b.label("top");
    b.ldrx(1, 10, 20);      // v = data[i] (short equal runs, often misses)
    b.ldrx(2, 11, 1);       // counts[v]
    b.addi(2, 2, 1);
    b.strx(2, 11, 1);       // counts[v]++
    b.cmpeq(3, 1, 5);       // run detector
    b.add(5, 1, Z);         // prev = v (flag-setting copy, not a Mov)
    b.add(6, 6, 3);
    b.eor(7, 7, 1);         // mixing (low redundancy)
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    BlockSortParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("block_sort", phase));
        u64 i = 0;
        while (i < params.blockLen) {
            u64 v = 1 + rng.below(params.alphabet);
            u64 run = 1 + rng.below(2 * params.meanRunLen);
            for (u64 k = 0; k < run && i < params.blockLen; ++k, ++i)
                em.memory().write(regionA + i * 8, v);
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(21, params.blockLen);
    };
    return {name, "block_sort", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// stencil (zeusmp/cactusADM/leslie3d/GemsFDTD): 3-point FP stencil over
// a grid with clustered zero cells. Zero results are frequent (Fig. 1)
// but per-static-instruction intermittent, so neither zero prediction
// nor RSEP reaches confidence; a constant coefficient reload gives VP a
// small win.
// ---------------------------------------------------------------------
Workload
makeStencil(const std::string &name, const StencilParams &p)
{
    ProgramBuilder b(name);
    // x10 = grid, x11 = out, x12 = coef addr, x20 = i, x22 = i+2,
    // x21 = n-2. The 3-point window rotates through registers as a
    // compiler would (one new cell load per iteration), so no
    // same-address reload stream exists for equality prediction to
    // chain validation dependencies onto -- as in compiled stencils.
    b.label("top");
    b.fmov(D(1), D(2));         // window rotation
    b.fmov(D(2), D(3));
    b.addi(22, 20, 2);
    b.fldrx(D(3), 10, 22);      // one new cell per iteration
    b.fldr(D(9), 12, 0);        // coefficient reload (VP last-value)
    b.fadd(D(4), D(1), D(2));   // zero when both cells zero
    b.fadd(D(5), D(4), D(3));
    b.fmul(D(6), D(5), D(9));
    b.fstrx(D(6), 11, 20);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    StencilParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("stencil", phase));
        // Clustered zero/non-zero segments.
        u64 i = 0;
        while (i < params.gridCells) {
            bool zero_seg = rng.below(100) < params.zeroPct;
            u64 seg = 16 + rng.below(96);
            for (u64 k = 0; k < seg && i < params.gridCells; ++k, ++i) {
                double v = zero_seg ? 0.0 : 0.1 + rng.uniform();
                em.memory().write(regionA + i * 8, std::bit_cast<u64>(v));
            }
        }
        em.memory().write(regionC, std::bit_cast<u64>(0.25));
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(21, params.gridCells - 2);
    };
    return {name, "stencil", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// dense_linalg (namd/tonto/calculix/bwaves/povray/gromacs): dense FP
// multiply-accumulate with little redundancy. constCoefPct > 0 mixes in
// a coefficient-table reload whose values repeat (small VP win).
// ---------------------------------------------------------------------
Workload
makeDenseLinAlg(const std::string &name, const DenseLinAlgParams &p)
{
    ProgramBuilder b(name);
    // x10 = a, x11 = x, x12 = y, x13 = coef, x20 = i, x21 = n.
    b.label("top");
    b.fldrx(D(1), 10, 20);
    b.fldrx(D(2), 11, 20);
    b.fmul(D(3), D(1), D(2));
    b.fadd(D(4), D(4), D(3));
    b.andi(1, 20, 15);
    b.ldrx(2, 13, 1);           // coefficient (repeating alphabet)
    b.add(5, 5, 2);
    b.fldrx(D(5), 12, 20);
    b.fadd(D(6), D(5), D(3));
    b.fstrx(D(6), 12, 20);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    DenseLinAlgParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("dense_linalg", phase));
        for (u64 i = 0; i < params.vecLen; ++i) {
            em.memory().write(regionA + i * 8,
                              std::bit_cast<u64>(rng.uniform() + 0.01));
            em.memory().write(regionB + i * 8,
                              std::bit_cast<u64>(rng.uniform() + 0.01));
            em.memory().write(regionC + i * 8,
                              std::bit_cast<u64>(rng.uniform()));
        }
        for (u64 i = 0; i < 16; ++i) {
            // constCoefPct controls how repetitive the table is.
            u64 v = rng.below(100) < params.constCoefPct
                ? 42 : rng.below(1 << 20);
            em.memory().write(regionD + i * 8, v);
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(13, regionD);
        em.setReg(21, params.vecLen);
    };
    return {name, "dense_linalg", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// strided_media (h264ref): absolute pixel differences with saturation.
// Frame values are smooth ramps (VP stride heaven); identical-pixel runs
// make the difference zero in stretches too short for confidence.
// ---------------------------------------------------------------------
Workload
makeStridedMedia(const std::string &name, const StridedMediaParams &p)
{
    ProgramBuilder b(name);
    // x10 = cur frame, x11 = ref frame, x20 = i, x21 = n.
    b.label("top");
    b.ldrx(1, 10, 20);      // ramp -> VP stride
    b.ldrx(2, 11, 20);      // ref ramp
    b.sub(3, 1, 2);         // 0 in identical runs
    b.asri(4, 3, 63);
    b.eor(5, 3, 4);
    b.sub(5, 5, 4);         // |diff|
    b.add(6, 6, 5);         // SAD accumulate
    b.cmplt(7, 25, 5);      // clip detect
    b.add(8, 8, 7);
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    StridedMediaParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("strided_media", phase));
        u64 i = 0;
        while (i < params.frameLen) {
            bool identical = rng.below(100) < 55;
            u64 run = 8 + rng.below(48);
            for (u64 k = 0; k < run && i < params.frameLen; ++k, ++i) {
                u64 cur = (i * 3) & 0xff;       // smooth ramp
                u64 ref = identical ? cur : (cur + 7 + rng.below(20)) & 0xff;
                em.memory().write(regionA + i * 8, cur);
                em.memory().write(regionB + i * 8, ref);
            }
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(21, params.frameLen);
        em.setReg(25, static_cast<u64>(params.clipMax));
    };
    return {name, "strided_media", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// branchy_game (gobmk/sjeng/astar/gcc): data-dependent control flow over
// a board array; mispredicts dominate, redundancy is low.
// ---------------------------------------------------------------------
Workload
makeBranchyGame(const std::string &name, const BranchyGameParams &p)
{
    ProgramBuilder b(name);
    // x10 = board, x20 = i, x21 = n, x12 = taken threshold.
    b.label("top");
    b.ldrx(1, 10, 20);
    b.andi(2, 1, 255);
    b.bltu(2, 12, "path_a");    // hard branch
    b.eor(3, 3, 1);
    b.addi(4, 4, 3);
    b.b("join");
    b.label("path_a");
    b.add(3, 3, 1);
    b.lsri(5, 3, 2);
    b.label("join");
    b.andi(6, 1, 7);
    b.cbz(6, "rare");           // mostly not-taken branch
    b.label("cont");
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    b.label("rare");
    b.add(7, 7, 3);
    b.b("cont");
    Program prog = b.build();

    BranchyGameParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("branchy_game", phase));
        for (u64 i = 0; i < params.boardCells; ++i)
            em.memory().write(regionA + i * 8, rng.next());
        em.setReg(10, regionA);
        em.setReg(21, params.boardCells);
        em.setReg(12, params.takenPct * 256 / 100);
    };
    return {name, "branchy_game", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// sparse_solver (soplex/milc/sphinx3/wrf): CSR-style gather + FP MAC.
// With vpFriendly, matrix values and gathered entries are quasi-constant
// so products are last-value predictable (wrf); otherwise values are
// irregular and nothing locks on.
// ---------------------------------------------------------------------
Workload
makeSparseSolver(const std::string &name, const SparseSolverParams &p)
{
    ProgramBuilder b(name);
    // x10 = colidx, x11 = vals, x12 = x vector, x20 = k, x21 = nnz.
    b.label("top");
    b.ldrx(1, 10, 20);          // column index (irregular)
    b.fldrx(D(2), 11, 20);      // matrix value
    b.fldrx(D(3), 12, 1);       // gather x[col]
    b.fmul(D(4), D(2), D(3));
    b.fadd(D(5), D(5), D(4));
    b.addi(20, 20, 1);
    b.andi(2, 20, 15);
    b.cbnz(2, "skip_row");
    b.fstrx(D(5), 12, 1);       // row end: write back
    b.label("skip_row");
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    SparseSolverParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("sparse_solver", phase));
        u64 nnz = params.rows * params.nnzPerRow;
        u64 xlen = params.rows;
        // vpFriendly (wrf): physics fields are piecewise constant over
        // long stretches (uniform air masses), so last-value prediction
        // saturates; otherwise values are irregular.
        double seg_val = 0.25;
        u64 seg_left = 0;
        for (u64 k = 0; k < nnz; ++k) {
            em.memory().write(regionA + k * 8, rng.below(xlen));
            double v;
            if (params.vpFriendly) {
                if (seg_left == 0) {
                    seg_left = 300 + rng.below(600);
                    seg_val = 0.125 * (1 + rng.below(6));
                }
                --seg_left;
                v = seg_val;
            } else {
                v = 0.01 + rng.uniform();
            }
            em.memory().write(regionB + k * 8, std::bit_cast<u64>(v));
        }
        for (u64 i = 0; i < xlen; ++i) {
            double v = params.vpFriendly
                ? 1.0
                : 0.01 + rng.uniform();
            em.memory().write(regionC + i * 8, std::bit_cast<u64>(v));
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(21, nnz);
    };
    return {name, "sparse_solver", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// regular_zero (gamess): unrolled integral kernel where symmetry-zero
// blocks make specific static instructions *always* produce zero
// (zero prediction saturates), with wide independent commit groups.
// ---------------------------------------------------------------------
Workload
makeRegularZero(const std::string &name, const RegularZeroParams &p)
{
    ProgramBuilder b(name);
    // x10 = data, x22 = symmetry mask (disjoint from data bits),
    // d31 holds 0.0 by construction (zeroed block scale factor).
    b.label("top");
    b.ldrx(1, 10, 20);
    b.fldrx(D(1), 11, 20);
    b.fmul(D(2), D(1), D(30));  // * 0.0 block factor -> always 0.0 [ZP]
    b.fstrx(D(2), 12, 20);      // zero block written out, off any chain
    b.and_(2, 1, 22);           // symmetry bits -> always 0        [ZP]
    b.add(3, 3, 2);             // cheap integer bookkeeping chain
    b.ldrx(4, 10, 24);          // second independent lane
    b.fldrx(D(4), 11, 24);
    b.fmul(D(5), D(4), D(29));  // live block factor
    b.fadd(D(6), D(6), D(5));
    b.add(5, 5, 4);
    b.addi(20, 20, 2);
    b.addi(24, 24, 2);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.movi(24, 1);
    b.b("top");
    Program prog = b.build();

    RegularZeroParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("regular_zero", phase));
        for (u64 i = 0; i < params.groupLen * 2; ++i) {
            em.memory().write(regionA + i * 8, rng.below(1u << 20));
            em.memory().write(regionB + i * 8,
                              std::bit_cast<u64>(rng.uniform() + 0.1));
        }
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(12, regionC);
        em.setReg(21, params.groupLen * 2);
        em.setReg(22, 0xff00000000000000ull); // disjoint from data bits
        em.setReg(24, 1);
        em.setFpReg(D(30), 0.0);
        em.setFpReg(D(29), 1.5);
    };
    return {name, "regular_zero", std::move(prog), std::move(init)};
}

// ---------------------------------------------------------------------
// streaming (lbm): unrolled streaming update with independent lanes --
// full-width eligible commit groups, little redundancy.
// ---------------------------------------------------------------------
Workload
makeStreaming(const std::string &name, const StreamingParams &p)
{
    ProgramBuilder b(name);
    // x10 = src, x11 = dst, x20 = i, x21 = n.
    b.label("top");
    b.fldrx(D(1), 10, 20);
    b.fmul(D(2), D(1), D(28));
    b.fadd(D(3), D(2), D(27));
    b.fstrx(D(3), 11, 20);
    b.addi(22, 20, 1);
    b.fldrx(D(4), 10, 22);
    b.fmul(D(5), D(4), D(28));
    b.fadd(D(6), D(5), D(27));
    b.fstrx(D(6), 11, 22);
    b.addi(23, 20, 2);
    b.fldrx(D(7), 10, 23);
    b.fmul(D(8), D(7), D(28));
    b.fadd(D(9), D(8), D(27));
    b.fstrx(D(9), 11, 23);
    b.addi(20, 20, 3);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.b("top");
    Program prog = b.build();

    StreamingParams params = p;
    auto init = [params](Emulator &em, u32 phase) {
        Rng rng(phaseSeed("streaming", phase));
        for (u64 i = 0; i < params.arrayLen; ++i)
            em.memory().write(regionA + i * 8,
                              std::bit_cast<u64>(rng.uniform() + 0.2));
        em.setReg(10, regionA);
        em.setReg(11, regionB);
        em.setReg(21, params.arrayLen - 3);
        em.setFpReg(D(28), 1.0009765625);
        em.setFpReg(D(27), 0.03125);
    };
    return {name, "streaming", std::move(prog), std::move(init)};
}

} // namespace rsep::wl

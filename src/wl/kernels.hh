/**
 * @file
 * Workload kernel archetypes standing in for SPEC CPU2006.
 *
 * We cannot ship SPEC binaries or traces, so each SPEC benchmark used in
 * the paper is mapped to a parameterized kernel whose *value behaviour*
 * (zero-production rate, result redundancy and its distance structure,
 * load fraction, branch predictability, memory footprint) reproduces
 * what the paper reports for that benchmark (Figs. 1, 4, 5). Programs
 * are real code executed functionally, so equality/VP opportunities are
 * organic, not labelled. See DESIGN.md "Substitutions".
 *
 * Archetype -> dominant behaviour:
 *  - pointer_chase : reloads of node fields at stable distances; DRAM-
 *                    bound; load-dominated equality (mcf).
 *  - dyn_prog      : two clamped recurrences that saturate to the same
 *                    bound; cross-chain equality with values that change
 *                    every iteration -> RSEP-only territory (hmmer).
 *  - recompute     : common subexpressions recomputed from reloaded
 *                    operands; non-load equality (dealII).
 *  - gate_sim      : bit-mask toggling over a small value alphabet;
 *                    heavy zero production + load equality (libquantum).
 *  - event_queue   : binary-heap sifting copies values around; load
 *                    equality over varying but history-correlated
 *                    distances (omnetpp).
 *  - xml_parse     : table-driven state machine with token copying;
 *                    moves + equality + value-predictable codes
 *                    (xalancbmk).
 *  - interp        : bytecode dispatch; constants and strides make VP
 *                    subsume RSEP (perlbench).
 *  - block_sort    : run-length transient equality with late (missing)
 *                    producers; punishes a low start_train threshold
 *                    (bzip2).
 *  - stencil       : sparse FP grids; many intermittent zero results
 *                    that neither ZP nor RSEP can lock onto
 *                    (zeusmp/cactusADM/leslie3d/GemsFDTD).
 *  - dense_linalg  : dense FP compute, little redundancy (namd, tonto,
 *                    calculix, bwaves, povray, gromacs).
 *  - strided_media : saturating pixel math; clipping produces zeros and
 *                    equal runs; strided loads favour VP (h264ref).
 *  - branchy_game  : data-dependent branching, low redundancy (gobmk,
 *                    sjeng, astar, gcc).
 *  - sparse_solver : gather + FP MAC; value-mode knob makes wrf-style
 *                    variants VP-friendly (soplex, milc, sphinx3, wrf).
 *  - regular_zero  : structurally zero results at saturating confidence
 *                    + wide commit groups (gamess).
 *  - streaming     : unrolled streaming FP; full-width eligible commit
 *                    groups (lbm).
 */

#ifndef RSEP_WL_KERNELS_HH
#define RSEP_WL_KERNELS_HH

#include <functional>
#include <string>

#include "isa/program.hh"
#include "wl/emulator.hh"

namespace rsep::wl
{

/** A named benchmark: program + per-phase data initializer. */
struct Workload
{
    std::string name;      ///< benchmark name (SPEC'06 naming).
    std::string archetype; ///< kernel family.
    isa::Program program;
    /** Initialize memory/registers for checkpoint @p phase. */
    std::function<void(Emulator &, u32 phase)> init;
};

// Every parameter struct carries a visitFields introspection hook
// (mirroring the config structs): the workload registry, the
// `[workload]` scenario-file section and the stable workload hash are
// all generated from the same enumeration, so they can never drift
// from the structs (see workload_spec.hh).

struct PointerChaseParams
{
    u64 nodes = 1 << 17;       ///< 32B/node -> footprint = nodes*32.
    u32 costAlphabet = 61;     ///< distinct cost values.
    u64 threshold = 1000;      ///< taken-rate control for the body branch.
};

template <class V>
void
visitFields(PointerChaseParams &p, V &&v)
{
    v("nodes", p.nodes);
    v("cost_alphabet", p.costAlphabet);
    v("threshold", p.threshold);
}

struct DynProgParams
{
    u64 cols = 2048;           ///< row length (working set).
    u32 clampDuty = 85;        ///< % of columns where both chains clamp.
    u32 scoreSpread = 1 << 20; ///< magnitude of per-column scores.
};

template <class V>
void
visitFields(DynProgParams &p, V &&v)
{
    v("cols", p.cols);
    v("clamp_duty", p.clampDuty);
    v("score_spread", p.scoreSpread);
}

struct RecomputeParams
{
    u64 elems = 1 << 12;       ///< per-element operand arrays.
    bool fpFlavor = true;      ///< use FP muls (dealII) vs int.
};

template <class V>
void
visitFields(RecomputeParams &p, V &&v)
{
    v("elems", p.elems);
    v("fp_flavor", p.fpFlavor);
}

struct GateSimParams
{
    u64 stateWords = 1 << 15;
    u32 controlBit = 7;        ///< bit tested; biased mostly 0.
    u32 setBitPct = 12;        ///< % of words with the control bit set.
};

template <class V>
void
visitFields(GateSimParams &p, V &&v)
{
    v("state_words", p.stateWords);
    v("control_bit", p.controlBit);
    v("set_bit_pct", p.setBitPct);
}

struct EventQueueParams
{
    u64 heapSize = 1 << 12;
    u32 deltaAlphabet = 7;     ///< distinct event deltas.
};

template <class V>
void
visitFields(EventQueueParams &p, V &&v)
{
    v("heap_size", p.heapSize);
    v("delta_alphabet", p.deltaAlphabet);
}

struct XmlParseParams
{
    u64 textLen = 1 << 13;
    u32 numClasses = 6;
    u32 numStates = 12;
};

template <class V>
void
visitFields(XmlParseParams &p, V &&v)
{
    v("text_len", p.textLen);
    v("num_classes", p.numClasses);
    v("num_states", p.numStates);
}

struct InterpParams
{
    u64 bytecodeLen = 64;
    u32 numOpcodes = 6;
};

template <class V>
void
visitFields(InterpParams &p, V &&v)
{
    v("bytecode_len", p.bytecodeLen);
    v("num_opcodes", p.numOpcodes);
}

struct BlockSortParams
{
    u64 blockLen = 1 << 16;
    u32 meanRunLen = 24;       ///< short runs: transient equality.
    u32 alphabet = 220;
};

template <class V>
void
visitFields(BlockSortParams &p, V &&v)
{
    v("block_len", p.blockLen);
    v("mean_run_len", p.meanRunLen);
    v("alphabet", p.alphabet);
}

struct StencilParams
{
    u64 gridCells = 1 << 14;
    u32 zeroPct = 45;          ///< % of grid cells equal to 0.0.
};

template <class V>
void
visitFields(StencilParams &p, V &&v)
{
    v("grid_cells", p.gridCells);
    v("zero_pct", p.zeroPct);
}

struct DenseLinAlgParams
{
    u64 vecLen = 1 << 12;
    u32 constCoefPct = 0;      ///< % iterations reloading a VP-friendly constant.
};

template <class V>
void
visitFields(DenseLinAlgParams &p, V &&v)
{
    v("vec_len", p.vecLen);
    v("const_coef_pct", p.constCoefPct);
}

struct StridedMediaParams
{
    u64 frameLen = 1 << 14;
    s64 clipMax = 255;
};

template <class V>
void
visitFields(StridedMediaParams &p, V &&v)
{
    v("frame_len", p.frameLen);
    v("clip_max", p.clipMax);
}

struct BranchyGameParams
{
    u64 boardCells = 1 << 14;
    u32 takenPct = 52;         ///< average taken rate of the hard branch.
};

template <class V>
void
visitFields(BranchyGameParams &p, V &&v)
{
    v("board_cells", p.boardCells);
    v("taken_pct", p.takenPct);
}

struct SparseSolverParams
{
    u64 rows = 1 << 10;
    u32 nnzPerRow = 16;
    bool vpFriendly = false;   ///< wrf-style quasi-constant values.
};

template <class V>
void
visitFields(SparseSolverParams &p, V &&v)
{
    v("rows", p.rows);
    v("nnz_per_row", p.nnzPerRow);
    v("vp_friendly", p.vpFriendly);
}

struct RegularZeroParams
{
    u64 groupLen = 1 << 10;
};

template <class V>
void
visitFields(RegularZeroParams &p, V &&v)
{
    v("group_len", p.groupLen);
}

struct StreamingParams
{
    u64 arrayLen = 1 << 16;
};

template <class V>
void
visitFields(StreamingParams &p, V &&v)
{
    v("array_len", p.arrayLen);
}

Workload makePointerChase(const std::string &name, const PointerChaseParams &p);
Workload makeDynProg(const std::string &name, const DynProgParams &p);
Workload makeRecompute(const std::string &name, const RecomputeParams &p);
Workload makeGateSim(const std::string &name, const GateSimParams &p);
Workload makeEventQueue(const std::string &name, const EventQueueParams &p);
Workload makeXmlParse(const std::string &name, const XmlParseParams &p);
Workload makeInterp(const std::string &name, const InterpParams &p);
Workload makeBlockSort(const std::string &name, const BlockSortParams &p);
Workload makeStencil(const std::string &name, const StencilParams &p);
Workload makeDenseLinAlg(const std::string &name, const DenseLinAlgParams &p);
Workload makeStridedMedia(const std::string &name, const StridedMediaParams &p);
Workload makeBranchyGame(const std::string &name, const BranchyGameParams &p);
Workload makeSparseSolver(const std::string &name, const SparseSolverParams &p);
Workload makeRegularZero(const std::string &name, const RegularZeroParams &p);
Workload makeStreaming(const std::string &name, const StreamingParams &p);

} // namespace rsep::wl

#endif // RSEP_WL_KERNELS_HH

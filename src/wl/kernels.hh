/**
 * @file
 * Workload kernel archetypes standing in for SPEC CPU2006.
 *
 * We cannot ship SPEC binaries or traces, so each SPEC benchmark used in
 * the paper is mapped to a parameterized kernel whose *value behaviour*
 * (zero-production rate, result redundancy and its distance structure,
 * load fraction, branch predictability, memory footprint) reproduces
 * what the paper reports for that benchmark (Figs. 1, 4, 5). Programs
 * are real code executed functionally, so equality/VP opportunities are
 * organic, not labelled. See DESIGN.md "Substitutions".
 *
 * Archetype -> dominant behaviour:
 *  - pointer_chase : reloads of node fields at stable distances; DRAM-
 *                    bound; load-dominated equality (mcf).
 *  - dyn_prog      : two clamped recurrences that saturate to the same
 *                    bound; cross-chain equality with values that change
 *                    every iteration -> RSEP-only territory (hmmer).
 *  - recompute     : common subexpressions recomputed from reloaded
 *                    operands; non-load equality (dealII).
 *  - gate_sim      : bit-mask toggling over a small value alphabet;
 *                    heavy zero production + load equality (libquantum).
 *  - event_queue   : binary-heap sifting copies values around; load
 *                    equality over varying but history-correlated
 *                    distances (omnetpp).
 *  - xml_parse     : table-driven state machine with token copying;
 *                    moves + equality + value-predictable codes
 *                    (xalancbmk).
 *  - interp        : bytecode dispatch; constants and strides make VP
 *                    subsume RSEP (perlbench).
 *  - block_sort    : run-length transient equality with late (missing)
 *                    producers; punishes a low start_train threshold
 *                    (bzip2).
 *  - stencil       : sparse FP grids; many intermittent zero results
 *                    that neither ZP nor RSEP can lock onto
 *                    (zeusmp/cactusADM/leslie3d/GemsFDTD).
 *  - dense_linalg  : dense FP compute, little redundancy (namd, tonto,
 *                    calculix, bwaves, povray, gromacs).
 *  - strided_media : saturating pixel math; clipping produces zeros and
 *                    equal runs; strided loads favour VP (h264ref).
 *  - branchy_game  : data-dependent branching, low redundancy (gobmk,
 *                    sjeng, astar, gcc).
 *  - sparse_solver : gather + FP MAC; value-mode knob makes wrf-style
 *                    variants VP-friendly (soplex, milc, sphinx3, wrf).
 *  - regular_zero  : structurally zero results at saturating confidence
 *                    + wide commit groups (gamess).
 *  - streaming     : unrolled streaming FP; full-width eligible commit
 *                    groups (lbm).
 */

#ifndef RSEP_WL_KERNELS_HH
#define RSEP_WL_KERNELS_HH

#include <functional>
#include <string>

#include "isa/program.hh"
#include "wl/emulator.hh"

namespace rsep::wl
{

/** A named benchmark: program + per-phase data initializer. */
struct Workload
{
    std::string name;      ///< benchmark name (SPEC'06 naming).
    std::string archetype; ///< kernel family.
    isa::Program program;
    /** Initialize memory/registers for checkpoint @p phase. */
    std::function<void(Emulator &, u32 phase)> init;
};

struct PointerChaseParams
{
    u64 nodes = 1 << 17;       ///< 32B/node -> footprint = nodes*32.
    u32 costAlphabet = 61;     ///< distinct cost values.
    u64 threshold = 1000;      ///< taken-rate control for the body branch.
};

struct DynProgParams
{
    u64 cols = 2048;           ///< row length (working set).
    u32 clampDuty = 85;        ///< % of columns where both chains clamp.
    u32 scoreSpread = 1 << 20; ///< magnitude of per-column scores.
};

struct RecomputeParams
{
    u64 elems = 1 << 12;       ///< per-element operand arrays.
    bool fpFlavor = true;      ///< use FP muls (dealII) vs int.
};

struct GateSimParams
{
    u64 stateWords = 1 << 15;
    u32 controlBit = 7;        ///< bit tested; biased mostly 0.
    u32 setBitPct = 12;        ///< % of words with the control bit set.
};

struct EventQueueParams
{
    u64 heapSize = 1 << 12;
    u32 deltaAlphabet = 7;     ///< distinct event deltas.
};

struct XmlParseParams
{
    u64 textLen = 1 << 13;
    u32 numClasses = 6;
    u32 numStates = 12;
};

struct InterpParams
{
    u64 bytecodeLen = 64;
    u32 numOpcodes = 6;
};

struct BlockSortParams
{
    u64 blockLen = 1 << 16;
    u32 meanRunLen = 24;       ///< short runs: transient equality.
    u32 alphabet = 220;
};

struct StencilParams
{
    u64 gridCells = 1 << 14;
    u32 zeroPct = 45;          ///< % of grid cells equal to 0.0.
};

struct DenseLinAlgParams
{
    u64 vecLen = 1 << 12;
    u32 constCoefPct = 0;      ///< % iterations reloading a VP-friendly constant.
};

struct StridedMediaParams
{
    u64 frameLen = 1 << 14;
    s64 clipMax = 255;
};

struct BranchyGameParams
{
    u64 boardCells = 1 << 14;
    u32 takenPct = 52;         ///< average taken rate of the hard branch.
};

struct SparseSolverParams
{
    u64 rows = 1 << 10;
    u32 nnzPerRow = 16;
    bool vpFriendly = false;   ///< wrf-style quasi-constant values.
};

struct RegularZeroParams
{
    u64 groupLen = 1 << 10;
};

struct StreamingParams
{
    u64 arrayLen = 1 << 16;
};

Workload makePointerChase(const std::string &name, const PointerChaseParams &p);
Workload makeDynProg(const std::string &name, const DynProgParams &p);
Workload makeRecompute(const std::string &name, const RecomputeParams &p);
Workload makeGateSim(const std::string &name, const GateSimParams &p);
Workload makeEventQueue(const std::string &name, const EventQueueParams &p);
Workload makeXmlParse(const std::string &name, const XmlParseParams &p);
Workload makeInterp(const std::string &name, const InterpParams &p);
Workload makeBlockSort(const std::string &name, const BlockSortParams &p);
Workload makeStencil(const std::string &name, const StencilParams &p);
Workload makeDenseLinAlg(const std::string &name, const DenseLinAlgParams &p);
Workload makeStridedMedia(const std::string &name, const StridedMediaParams &p);
Workload makeBranchyGame(const std::string &name, const BranchyGameParams &p);
Workload makeSparseSolver(const std::string &name, const SparseSolverParams &p);
Workload makeRegularZero(const std::string &name, const RegularZeroParams &p);
Workload makeStreaming(const std::string &name, const StreamingParams &p);

} // namespace rsep::wl

#endif // RSEP_WL_KERNELS_HH

/**
 * @file
 * The dynamic (committed-path) instruction record produced by the
 * functional emulator and consumed by the timing model.
 */

#ifndef RSEP_WL_DYNRECORD_HH
#define RSEP_WL_DYNRECORD_HH

#include "common/types.hh"

namespace rsep::wl
{

/**
 * One executed instruction on the committed path.
 *
 * `result` is the value architecturally written to the destination
 * register (loads: the loaded value; Bl: the return address). For
 * stores it is the stored data (needed for store-to-load forwarding
 * and the Fig. 1 redundancy probe); stores do not write a register.
 */
struct DynRecord
{
    u32 staticIdx = 0;  ///< index into the Program.
    u32 nextIdx = 0;    ///< static index of the next committed inst.
    u64 result = 0;     ///< destination value / store data.
    Addr effAddr = 0;   ///< effective address (loads/stores only).
    bool taken = false; ///< branch outcome (branches only).
};

} // namespace rsep::wl

#endif // RSEP_WL_DYNRECORD_HH

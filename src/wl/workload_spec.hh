/**
 * @file
 * First-class workload descriptions: an introspectable `WorkloadSpec`
 * (kernel archetype + its parameter struct) with a stable FNV workload
 * hash, plus a named workload registry.
 *
 * The registry has two layers:
 *
 *  - the **suite layer**: the 29 paper benchmarks (suite.hh), held as
 *    data — one spec per benchmark — instead of a hard-coded factory
 *    ladder;
 *  - a **dynamic overlay**: workloads defined at runtime (`[workload]`
 *    scenario-file sections, `--workload-file`), which may introduce
 *    new names or *override* suite benchmarks without a rebuild.
 *
 * Identity: `workloadHash` is a stable FNV-1a 64 of the canonical
 * serialization of (archetype, params) — name excluded — mirroring the
 * scenario layer's configHash. `workloadKey` is the string the runner,
 * shard partitioner, result cache and stat export key on: a pristine
 * suite benchmark keys as its bare name (so suite shard assignments
 * and cache records are untouched by this layer), while any other spec
 * keys as `name@<hash>` so two parameterizations of one name can never
 * collide in a cache or a merged dump.
 */

#ifndef RSEP_WL_WORKLOAD_SPEC_HH
#define RSEP_WL_WORKLOAD_SPEC_HH

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "wl/kernels.hh"

namespace rsep::wl
{

/** One alternative per kernel archetype, in kernels.hh order. */
using WorkloadParams =
    std::variant<PointerChaseParams, DynProgParams, RecomputeParams,
                 GateSimParams, EventQueueParams, XmlParseParams,
                 InterpParams, BlockSortParams, StencilParams,
                 DenseLinAlgParams, StridedMediaParams, BranchyGameParams,
                 SparseSolverParams, RegularZeroParams, StreamingParams>;

/** An introspectable workload description. */
struct WorkloadSpec
{
    std::string name;      ///< benchmark name (SPEC'06 naming or custom).
    WorkloadParams params; ///< the archetype is the active alternative.
};

/** Archetype name of @p params' active alternative (e.g. "stencil"). */
const std::string &archetypeName(const WorkloadParams &params);

/** Every archetype name, in kernels.hh order. */
const std::vector<std::string> &archetypeNames();

/**
 * Reset @p spec to @p archetype with that archetype's default
 * parameters. False when the archetype name is unknown.
 */
bool setArchetype(WorkloadSpec &spec, const std::string &archetype);

/** Visit the active parameter struct's fields (for generic visitors). */
template <class V>
void
visitParamFields(WorkloadSpec &spec, V &&v)
{
    std::visit([&](auto &p) { visitFields(p, v); }, spec.params);
}

/**
 * Apply one `key = value` to the spec's parameter struct. On failure
 * returns false and, when @p err is non-null, stores the diagnostic
 * (unknown key or type error naming the expected form).
 */
bool applyWorkloadKey(WorkloadSpec &spec, const std::string &key,
                      const std::string &value, std::string *err = nullptr);

/**
 * Canonical `[workload]` serialization: header, name, archetype, then
 * every parameter field in introspection order with canonical value
 * spellings. parse(serialize(s)) round-trips to an identical spec.
 */
std::string serializeWorkload(const WorkloadSpec &spec);

/**
 * Stable 64-bit FNV-1a hash of the canonical (archetype, params) body
 * — name excluded — as 16 hex digits. Identical kernels hash
 * identically whatever they are called.
 */
std::string workloadHash(const WorkloadSpec &spec);

/**
 * The run-cell identity string for @p spec: the bare name when the
 * spec is byte-identical to the suite benchmark of the same name,
 * otherwise `name@<workloadHash>`. This is what flows into runMatrix
 * benchmark lists — and therefore into shard assignment, result-cache
 * paths and stat-export rows.
 */
std::string workloadKey(const WorkloadSpec &spec);

/** Registry metadata for --list-workloads. */
struct WorkloadInfo
{
    std::string key;       ///< run-cell identity (see workloadKey).
    std::string name;
    std::string archetype;
    std::string hash;      ///< 16-hex workloadHash.
    bool fromOverlay = false; ///< defined/overridden at runtime.
};

/** The 29 suite benchmark specs, in figure order. */
const std::vector<WorkloadSpec> &suiteSpecs();

/**
 * Register a runtime-defined workload (overlay layer) and return its
 * key. Registering a spec identical to the suite benchmark of the same
 * name is a no-op returning the bare name; a same-name spec with
 * different parameters *overrides* that name for name-based lookups
 * while remaining reachable under its hash-qualified key. Thread-safe;
 * intended to run during driver setup, before the matrix fans out.
 */
std::string registerWorkload(const WorkloadSpec &spec);

/**
 * Resolve a benchmark name (or an already-qualified `name@hash` key)
 * to its run-cell key: overlay first, then the suite. Returns nullopt
 * when the name is known to neither layer.
 */
std::optional<std::string> resolveWorkloadKey(const std::string &name);

/**
 * Look up a spec by name or key (overlay first, then suite). Returns
 * nullopt when unknown.
 */
std::optional<WorkloadSpec> findWorkloadSpec(const std::string &name);

/** Every visible workload: suite order, then overlay definitions. */
std::vector<WorkloadInfo> listWorkloads();

/** Build the runnable workload for @p spec (kernels.hh factories). */
Workload buildWorkload(const WorkloadSpec &spec);

} // namespace rsep::wl

#endif // RSEP_WL_WORKLOAD_SPEC_HH

/**
 * @file
 * The SPEC CPU2006 stand-in suite: 29 named workloads (paper Section V)
 * built from the kernel archetypes in kernels.hh.
 */

#ifndef RSEP_WL_SUITE_HH
#define RSEP_WL_SUITE_HH

#include <string>
#include <vector>

#include "wl/kernels.hh"

namespace rsep::wl
{

/** The 29 benchmark names in the paper's figure order. */
const std::vector<std::string> &suiteNames();

/**
 * Build a workload by registry name or qualified `name@hash` key —
 * suite benchmarks and runtime-registered workloads alike (see
 * workload_spec.hh). Fatal on an unknown name.
 */
Workload makeWorkload(const std::string &name);

/** Build every workload in suite order. */
std::vector<Workload> makeSuite();

/**
 * Number of "checkpoints" (seeded phases) per benchmark; the paper uses
 * 10 uniformly collected checkpoints and reports the harmonic mean.
 */
constexpr u32 checkpointsPerBenchmark = 10;

} // namespace rsep::wl

#endif // RSEP_WL_SUITE_HH

/**
 * @file
 * Sparse 64-bit-word memory backing the functional emulator.
 */

#ifndef RSEP_WL_MEMORY_HH
#define RSEP_WL_MEMORY_HH

#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace rsep::wl
{

/**
 * Page-granular sparse memory. All accesses are 8-byte words; addresses
 * are force-aligned (low 3 bits ignored). Unwritten memory reads as 0.
 */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageBytes = Addr{1} << pageShift;
    static constexpr unsigned wordsPerPage = pageBytes / 8;

    /** Read the 64-bit word at @p addr (aligned down). */
    u64
    read(Addr addr) const
    {
        Addr wa = addr >> 3;
        auto it = pages.find(wa >> (pageShift - 3));
        if (it == pages.end())
            return 0;
        return (*it->second)[wa & (wordsPerPage - 1)];
    }

    /** Write the 64-bit word at @p addr (aligned down). */
    void
    write(Addr addr, u64 val)
    {
        Addr wa = addr >> 3;
        auto &page = pages[wa >> (pageShift - 3)];
        if (!page)
            page = std::make_unique<Page>();
        (*page)[wa & (wordsPerPage - 1)] = val;
    }

    /** Drop all content (reads become 0 again). */
    void clear() { pages.clear(); }

    /** Number of touched pages (for footprint reporting). */
    size_t touchedPages() const { return pages.size(); }

  private:
    struct Page
    {
        u64 words[wordsPerPage] = {};
        u64 &operator[](Addr i) { return words[i]; }
        const u64 &operator[](Addr i) const { return words[i]; }
    };

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace rsep::wl

#endif // RSEP_WL_MEMORY_HH

/**
 * @file
 * Process-wide shared cache of decoded `.rtr` traces.
 *
 * A matrix sweep replays the same (workload, phase) trace once per
 * mechanism arm: S scenarios x one file = S decodes of identical
 * bytes. DecodedTraceCache collapses that to one decode — cells ask
 * for a trace by path, the cache hands every caller the same immutable
 * `shared_ptr<const DecodedTrace>` snapshot, and the work-stealing
 * pool's threads replay it concurrently with nothing but a private
 * cursor each (ReplayTraceSource).
 *
 * Keying: (path, payload checksum). The checksum is read from the
 * fixed-size trailer of the (mmap'd) file on every lookup, so a trace
 * overwritten on disk — re-recorded under a different sizing, say —
 * misses naturally instead of replaying stale records. The lookup cost
 * on a hit is one open + one trailer page touch, not a decode.
 *
 * Concurrency: one mutex guards the map; a cold lookup inserts an
 * in-flight marker, decodes OUTSIDE the lock, then publishes and
 * notifies. Concurrent lookups of the same key wait on a condition
 * variable and count as hits — the decode-once guarantee holds even
 * when every pool thread starts on the same benchmark simultaneously.
 *
 * Bounding: LRU by decodedBytes(), capacity set with setCapacityBytes
 * (`--trace-cache-mb`; 0 = unlimited). Eviction drops only the map's
 * reference — cells mid-replay keep the data alive through their own
 * shared_ptr, so eviction can never invalidate a running cell.
 */

#ifndef RSEP_WL_TRACE_CACHE_HH
#define RSEP_WL_TRACE_CACHE_HH

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "wl/trace_io.hh"

namespace rsep::wl
{

class DecodedTraceCache
{
  public:
    /** Outcome of a lookup: the shared decoded trace or a diagnostic. */
    struct Result
    {
        std::shared_ptr<const DecodedTrace> trace; ///< null on error.
        std::string error; ///< "path: message"; empty on success.
        bool hit = false;  ///< served from cache (incl. decode waiters).
        u64 decodeMicros = 0; ///< this call's own decode time (miss only).

        bool ok() const { return trace != nullptr; }
    };

    /** Monotonic counters since construction / resetStats(). */
    struct Stats
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 evictions = 0;
        u64 decodeMicros = 0;  ///< total wall time spent decoding.
        u64 residentBytes = 0; ///< current decoded bytes held (gauge).
    };

    explicit DecodedTraceCache(u64 capacity_bytes = defaultCapacityBytes)
        : capacity(capacity_bytes)
    {}

    /** Fetch the decoded form of @p path, decoding at most once per
     *  (path, checksum) across all threads. */
    Result get(const std::string &path);

    /** Resize the LRU bound; 0 = unlimited. Shrinking evicts at the
     *  next insertion, not eagerly. */
    void setCapacityBytes(u64 bytes);
    u64 capacityBytes() const;

    Stats stats() const;
    void resetStats();

    /** Drop every cached entry (tests; in-use shared_ptrs stay valid). */
    void clear();

    /** 1 GiB default: ~34 minutes of committed path at the repo's 25
     *  decoded bytes/record — far above any registered scenario, so
     *  the bound only matters when a fleet host dials it down. */
    static constexpr u64 defaultCapacityBytes = 1024ull << 20;

  private:
    struct Entry
    {
        std::shared_ptr<const DecodedTrace> trace; ///< null while loading.
        std::string error;   ///< set when the decode failed.
        bool ready = false;  ///< trace or error is final.
        u64 bytes = 0;
        std::list<std::string>::iterator lruIt; ///< valid when ready&&ok.
    };

    /** Pre-lock helper: bump @p key to most-recently-used. */
    void touch(const std::string &key, Entry &e);
    /** Pre-lock helper: evict LRU entries until under capacity. */
    void enforceCapacity();

    mutable std::mutex mu;
    std::condition_variable cv;
    /** key: path + '\0' + hex64(checksum). Entries are shared_ptr so a
     *  waiter or the decoding thread outlives any concurrent erase
     *  (failed decode, eviction, clear()). */
    std::map<std::string, std::shared_ptr<Entry>> entries;
    std::list<std::string> lru; ///< front = most recent; ready keys only.
    u64 capacity;
    u64 resident = 0;
    Stats counters;
};

/** The process-wide instance every replay path shares. */
DecodedTraceCache &traceCache();

} // namespace rsep::wl

#endif // RSEP_WL_TRACE_CACHE_HH

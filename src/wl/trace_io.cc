#include "wl/trace_io.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hh"
#include "common/fnv.hh"
#include "common/logging.hh"

namespace fs = std::filesystem;

namespace rsep::wl
{

namespace
{

constexpr size_t recordBytes = 4 + 4 + 8 + 8 + 1;

/** Workload keys are plain tokens (possibly `name@hash`), but never
 *  trust a path element. */
std::string
sanitized(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '-' || c == '+' || c == '_' || c == '@')
                   ? c
                   : '_';
    return out.empty() ? std::string("_") : out;
}

void
putU32(std::string &s, u32 v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &s, u64 v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

u32
getU32(const char *p)
{
    u32 v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

u64
getU64(const char *p)
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::string
encodePayload(const std::vector<DynRecord> &records)
{
    std::string payload;
    payload.reserve(records.size() * recordBytes);
    for (const DynRecord &r : records) {
        putU32(payload, r.staticIdx);
        putU32(payload, r.nextIdx);
        putU64(payload, r.result);
        putU64(payload, r.effAddr);
        payload.push_back(r.taken ? 1 : 0);
    }
    return payload;
}

} // namespace

std::string
tracePath(const std::string &dir, const std::string &workload, u32 phase)
{
    return dir + "/" + sanitized(workload) + "-p" + std::to_string(phase) +
           traceFileExtension;
}

std::string
serializeTrace(const TraceHeader &header,
               const std::vector<DynRecord> &records)
{
    std::string payload = encodePayload(records);
    std::ostringstream os;
    os << "rsep-trace " << traceFormatVersion << "\n";
    os << "workload = " << header.workload << "\n";
    os << "workload_hash = " << header.workloadHash << "\n";
    os << "phase = " << header.phase << "\n";
    os << "program_length = " << header.programLength << "\n";
    os << "records = " << records.size() << "\n";
    os << "payload\n";
    os << payload;
    os << "\nchecksum = " << hex64(fnv1a64(payload)) << "\n";
    return os.str();
}

TraceParse
parseTrace(const std::string &text, const std::string &origin,
           bool header_only)
{
    TraceParse out;
    auto fail = [&](const std::string &msg) {
        out.error = origin + ": " + msg;
        out.records.clear();
        return out;
    };

    // ---- text header (line oriented, fixed order) ----
    size_t pos = 0;
    auto nextLine = [&](std::string &line) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return false;
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };
    auto valueOf = [](const std::string &l, const char *k,
                      std::string &v) {
        std::string prefix = std::string(k) + " = ";
        if (l.rfind(prefix, 0) != 0)
            return false;
        v = l.substr(prefix.size());
        return true;
    };

    std::string line, v;
    if (!nextLine(line) ||
        line != "rsep-trace " + std::to_string(traceFormatVersion))
        return fail("bad or unsupported trace version");
    if (!nextLine(line) || !valueOf(line, "workload", v) || v.empty())
        return fail("bad workload header");
    out.header.workload = v;
    u64 dummy = 0;
    if (!nextLine(line) || !valueOf(line, "workload_hash", v) ||
        v.size() != 16 || !parseHex64(v, dummy))
        return fail("bad workload_hash header");
    out.header.workloadHash = v;
    u64 wide = 0;
    if (!nextLine(line) || !valueOf(line, "phase", v) ||
        !parseU64(v, wide) || wide > 0xffffffffull)
        return fail("bad phase header");
    out.header.phase = static_cast<u32>(wide);
    if (!nextLine(line) || !valueOf(line, "program_length", v) ||
        !parseU64(v, out.header.programLength))
        return fail("bad program_length header");
    if (!nextLine(line) || !valueOf(line, "records", v) ||
        !parseU64(v, out.header.records))
        return fail("bad records header");
    if (!nextLine(line) || line != "payload")
        return fail("missing payload marker");

    // ---- binary payload + trailing checksum ----
    // Guard the record-count multiply: a corrupt header could name a
    // count whose byte size wraps 64 bits and slips past the length
    // check, turning reserve() below into an abort instead of a
    // diagnostic.
    if (out.header.records > (text.size() - pos) / recordBytes)
        return fail("truncated payload: record count " +
                    std::to_string(out.header.records) +
                    " exceeds the available bytes");
    u64 payload_bytes = out.header.records * recordBytes;
    // "\nchecksum = " + 16 hex + "\n"
    constexpr size_t trailerBytes = 12 + 16 + 1;
    if (text.size() < pos || text.size() - pos != payload_bytes + trailerBytes)
        return fail("truncated or oversized payload (" +
                    std::to_string(text.size() - pos) + " bytes for " +
                    std::to_string(out.header.records) + " records)");
    std::string payload = text.substr(pos, payload_bytes);
    std::string trailer = text.substr(pos + payload_bytes);
    u64 want = 0;
    if (trailer.rfind("\nchecksum = ", 0) != 0 || trailer.back() != '\n' ||
        !parseHex64(trailer.substr(12, 16), want))
        return fail("missing checksum");
    if (fnv1a64(payload) != want)
        return fail("checksum mismatch");

    if (header_only)
        return out;

    out.records.reserve(out.header.records);
    const char *p = payload.data();
    for (u64 i = 0; i < out.header.records; ++i, p += recordBytes) {
        DynRecord r;
        r.staticIdx = getU32(p);
        r.nextIdx = getU32(p + 4);
        r.result = getU64(p + 8);
        r.effAddr = getU64(p + 16);
        r.taken = p[24] != 0;
        out.records.push_back(r);
    }
    return out;
}

TraceParse
readTraceFile(const std::string &path, bool header_only)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        TraceParse out;
        out.error = path + ": cannot open trace file";
        return out;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseTrace(buf.str(), path, header_only);
}

bool
writeTraceFile(const std::string &path, const TraceHeader &header,
               const std::vector<DynRecord> &records, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = path + ": " + msg;
        return false;
    };
    std::error_code ec;
    fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
        fs::create_directories(parent, ec);
        if (ec)
            return fail(ec.message());
    }
    std::string text = serializeTrace(header, records);
    // Atomic publish (cf. the result cache): a concurrent reader sees
    // the old trace or the new one, never a torn write. The temp name
    // carries pid AND a process-wide sequence number: one matrix run
    // records a (workload, phase) trace once per config, on different
    // worker threads of the same process, so pid alone would tear.
    static std::atomic<u64> writerSeq{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<unsigned long>(::getpid())) +
                      "." + std::to_string(++writerSeq);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return fail("cannot open temp file for writing");
        os << text;
        os.flush();
        if (!os) {
            fs::remove(tmp, ec);
            return fail("write failed");
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return fail("rename failed");
    }
    return true;
}

bool
RecordingTraceSource::write(const std::string &path, TraceHeader header,
                            std::string *err) const
{
    header.records = buffer.size();
    header.programLength = program().size();
    return writeTraceFile(path, header, buffer, err);
}

ReplayTraceSource::ReplayTraceSource(TraceParse parse,
                                     const isa::Program &program,
                                     std::string origin_label)
    : trace(std::move(parse)), prog(program),
      origin(std::move(origin_label))
{
    if (!trace.ok())
        rsep_fatal("replay: %s", trace.error.c_str());
    if (trace.header.programLength != prog.size())
        rsep_fatal("replay: %s: program length %llu does not match the "
                   "registry workload's %zu instructions",
                   origin.c_str(),
                   static_cast<unsigned long long>(
                       trace.header.programLength),
                   prog.size());
}

const DynRecord &
ReplayTraceSource::step()
{
    if (next >= trace.records.size())
        rsep_fatal("replay: %s: trace exhausted after %zu records — the "
                   "trace was recorded under a smaller run sizing than "
                   "this replay needs; re-record with at least this "
                   "run's warmup+measure window",
                   origin.c_str(), trace.records.size());
    const DynRecord &r = trace.records[next++];
    if (r.staticIdx >= prog.size() || r.nextIdx >= prog.size())
        rsep_fatal("replay: %s: record %llu indexes outside the program "
                   "(staticIdx %u, nextIdx %u, program %zu)",
                   origin.c_str(),
                   static_cast<unsigned long long>(next - 1), r.staticIdx,
                   r.nextIdx, prog.size());
    return r;
}

} // namespace rsep::wl

#include "wl/trace_io.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "common/mmap_file.hh"

namespace fs = std::filesystem;

namespace rsep::wl
{

namespace
{

constexpr size_t recordBytes = 4 + 4 + 8 + 8 + 1;

/** Workload keys are plain tokens (possibly `name@hash`), but never
 *  trust a path element. */
std::string
sanitized(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '-' || c == '+' || c == '_' || c == '@')
                   ? c
                   : '_';
    return out.empty() ? std::string("_") : out;
}

void
putU32(std::string &s, u32 v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &s, u64 v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

u32
getU32(const char *p)
{
    u32 v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

u64
getU64(const char *p)
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    return v;
}

std::string
encodePayload(const std::vector<DynRecord> &records)
{
    std::string payload;
    payload.reserve(records.size() * recordBytes);
    for (const DynRecord &r : records) {
        putU32(payload, r.staticIdx);
        putU32(payload, r.nextIdx);
        putU64(payload, r.result);
        putU64(payload, r.effAddr);
        payload.push_back(r.taken ? 1 : 0);
    }
    return payload;
}

// ---- v2 varint/delta encoding ----

// Per-record flag bits (see trace_io.hh).
enum : u8 {
    f2SameStatic = 1 << 0, ///< staticIdx == previous record's nextIdx.
    f2Taken = 1 << 1,
    f2SeqNext = 1 << 2,    ///< nextIdx == staticIdx + 1.
    f2ResultZero = 1 << 3,
    f2ResultSame = 1 << 4, ///< result == previous record's result.
    f2EffZero = 1 << 5,    ///< effAddr == 0 (non-memory record).
};

void
putVarint(std::string &s, u64 v)
{
    while (v >= 0x80) {
        s.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    s.push_back(static_cast<char>(v));
}

bool
getVarint(const char *&p, const char *end, u64 &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (p == end)
            return false;
        u8 byte = static_cast<u8>(*p++);
        v |= static_cast<u64>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false; // over-long varint.
}

u64
zigzag(u64 v)
{
    s64 sv = static_cast<s64>(v);
    return (static_cast<u64>(sv) << 1) ^ static_cast<u64>(sv >> 63);
}

u64
unzigzag(u64 v)
{
    return (v >> 1) ^ (~(v & 1) + 1);
}

std::string
encodePayloadV2(const std::vector<DynRecord> &records)
{
    std::string payload;
    payload.reserve(records.size() * 4); // typical record: 1-4 bytes.
    u32 prev_next = 0;
    u64 prev_result = 0;
    Addr prev_eff = 0; ///< last memory record's address.
    for (const DynRecord &r : records) {
        u8 flags = 0;
        if (r.staticIdx == prev_next)
            flags |= f2SameStatic;
        if (r.taken)
            flags |= f2Taken;
        if (r.nextIdx == r.staticIdx + 1)
            flags |= f2SeqNext;
        if (r.result == 0)
            flags |= f2ResultZero;
        else if (r.result == prev_result)
            flags |= f2ResultSame;
        if (r.effAddr == 0)
            flags |= f2EffZero;
        payload.push_back(static_cast<char>(flags));
        if (!(flags & f2SameStatic))
            putVarint(payload, r.staticIdx);
        if (!(flags & f2SeqNext))
            putVarint(payload,
                      zigzag(static_cast<u64>(r.nextIdx) -
                             static_cast<u64>(r.staticIdx) - 1));
        if (!(flags & (f2ResultZero | f2ResultSame)))
            putVarint(payload, zigzag(r.result - prev_result));
        if (!(flags & f2EffZero)) {
            putVarint(payload, zigzag(r.effAddr - prev_eff));
            prev_eff = r.effAddr;
        }
        prev_next = r.nextIdx;
        prev_result = r.result;
    }
    return payload;
}

/**
 * Decode a v2 payload, emitting each record to @p emit — the ONE
 * decoder behind both the AoS and the SoA form, so the two can never
 * diverge. The payload view is read in place (zero-copy off an mmap).
 */
template <class Emit>
bool
decodePayloadV2(std::string_view payload, u64 count, Emit &&emit,
                std::string &msg)
{
    const char *p = payload.data();
    const char *end = p + payload.size();
    u32 prev_next = 0;
    u64 prev_result = 0;
    Addr prev_eff = 0;
    // Truncation diagnostics carry the byte offset: a torn download or
    // short copy fails here, and "record 48127" alone doesn't say
    // where in the file to look.
    auto bad = [&](const char *what, u64 i) {
        msg = std::string(what) + " at record " + std::to_string(i) +
              " (payload offset " +
              std::to_string(static_cast<u64>(p - payload.data())) +
              " of " + std::to_string(payload.size()) + " bytes)";
        return false;
    };
    for (u64 i = 0; i < count; ++i) {
        if (p == end)
            return bad("truncated payload", i);
        u8 flags = static_cast<u8>(*p++);
        DynRecord r;
        u64 v = 0;
        if (flags & f2SameStatic) {
            r.staticIdx = prev_next;
        } else {
            if (!getVarint(p, end, v) || v > 0xffffffffull)
                return bad("bad staticIdx varint", i);
            r.staticIdx = static_cast<u32>(v);
        }
        if (flags & f2SeqNext) {
            r.nextIdx = r.staticIdx + 1;
        } else {
            if (!getVarint(p, end, v))
                return bad("bad nextIdx varint", i);
            u64 next = static_cast<u64>(r.staticIdx) + 1 + unzigzag(v);
            if ((next & 0xffffffffull) != next)
                return bad("nextIdx overflow", i);
            r.nextIdx = static_cast<u32>(next);
        }
        if (flags & f2ResultZero) {
            r.result = 0;
        } else if (flags & f2ResultSame) {
            r.result = prev_result;
        } else {
            if (!getVarint(p, end, v))
                return bad("bad result varint", i);
            r.result = prev_result + unzigzag(v);
        }
        if (flags & f2EffZero) {
            r.effAddr = 0;
        } else {
            if (!getVarint(p, end, v))
                return bad("bad effAddr varint", i);
            r.effAddr = prev_eff + unzigzag(v);
            prev_eff = r.effAddr;
        }
        r.taken = (flags & f2Taken) != 0;
        prev_next = r.nextIdx;
        prev_result = r.result;
        emit(r);
    }
    if (p != end) {
        msg = "payload has " + std::to_string(end - p) +
              " trailing bytes after the last record";
        return false;
    }
    return true;
}

/** v1 fixed-width decode with the same emit shape (sizes are already
 *  validated against the record count by the envelope parse). */
template <class Emit>
void
decodePayloadV1(std::string_view payload, u64 count, Emit &&emit)
{
    const char *p = payload.data();
    for (u64 i = 0; i < count; ++i, p += recordBytes) {
        DynRecord r;
        r.staticIdx = getU32(p);
        r.nextIdx = getU32(p + 4);
        r.result = getU64(p + 8);
        r.effAddr = getU64(p + 16);
        r.taken = p[24] != 0;
        emit(r);
    }
}

/**
 * The validated envelope of a trace image: parsed header plus a view
 * of the (checksummed, size-checked) payload bytes. The payload view
 * aliases the input and is only valid while the input lives.
 */
struct Envelope
{
    TraceHeader header;
    std::string_view payload;
    u64 checksum = 0;
    std::string error; ///< "origin: message"; empty on success.

    bool ok() const { return error.empty(); }
};

Envelope
parseEnvelope(std::string_view text, const std::string &origin)
{
    Envelope out;
    auto fail = [&](const std::string &msg) {
        out.error = origin + ": " + msg;
        out.payload = {};
        return out;
    };

    // ---- text header (line oriented, fixed order) ----
    size_t pos = 0;
    auto nextLine = [&](std::string_view &line) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            return false;
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };
    auto valueOf = [](std::string_view l, const char *k,
                      std::string &v) {
        std::string prefix = std::string(k) + " = ";
        if (l.substr(0, prefix.size()) != prefix)
            return false;
        v = std::string(l.substr(prefix.size()));
        return true;
    };

    std::string_view line;
    std::string v;
    if (!nextLine(line) || line.substr(0, 11) != "rsep-trace ")
        return fail("not a trace file");
    {
        u64 ver = 0;
        if (!parseU64(std::string(line.substr(11)), ver) ||
            ver < traceFormatVersionMin || ver > traceFormatVersion)
            return fail("bad or unsupported trace version");
        out.header.version = static_cast<unsigned>(ver);
    }
    if (!nextLine(line) || !valueOf(line, "workload", v) || v.empty())
        return fail("bad workload header");
    out.header.workload = v;
    u64 dummy = 0;
    if (!nextLine(line) || !valueOf(line, "workload_hash", v) ||
        v.size() != 16 || !parseHex64(v, dummy))
        return fail("bad workload_hash header");
    out.header.workloadHash = v;
    u64 wide = 0;
    if (!nextLine(line) || !valueOf(line, "phase", v) ||
        !parseU64(v, wide) || wide > 0xffffffffull)
        return fail("bad phase header");
    out.header.phase = static_cast<u32>(wide);
    if (!nextLine(line) || !valueOf(line, "program_length", v) ||
        !parseU64(v, out.header.programLength))
        return fail("bad program_length header");
    if (!nextLine(line) || !valueOf(line, "records", v) ||
        !parseU64(v, out.header.records))
        return fail("bad records header");
    if (!nextLine(line) || line != "payload")
        return fail("missing payload marker");

    // ---- binary payload + trailing checksum ----
    // "\nchecksum = " + 16 hex + "\n"
    constexpr size_t trailerBytes = 12 + 16 + 1;
    if (text.size() < pos || text.size() - pos < trailerBytes)
        return fail("truncated trailer: " +
                    std::to_string(text.size() < pos
                                       ? 0
                                       : text.size() - pos) +
                    " bytes after the header (offset " +
                    std::to_string(pos) + "), need at least " +
                    std::to_string(trailerBytes) +
                    " for the checksum trailer");
    u64 payload_bytes = text.size() - pos - trailerBytes;
    if (out.header.version == 1) {
        // v1 is fixed-width: the payload size is implied by the record
        // count. Guard the multiply: a corrupt header could name a
        // count whose byte size wraps 64 bits and slips past the
        // length check, turning reserve() downstream into an abort
        // instead of a diagnostic.
        if (out.header.records > (text.size() - pos) / recordBytes)
            return fail("truncated payload: record count " +
                        std::to_string(out.header.records) +
                        " exceeds the available bytes");
        if (payload_bytes != out.header.records * recordBytes)
            return fail("truncated or oversized payload (" +
                        std::to_string(payload_bytes) + " bytes for " +
                        std::to_string(out.header.records) + " records)");
    } else {
        // Every v2 record takes at least its flag byte; reject absurd
        // record counts before reserve() can abort on a corrupt header.
        if (out.header.records > payload_bytes)
            return fail("truncated payload: record count " +
                        std::to_string(out.header.records) +
                        " exceeds the available bytes");
    }
    std::string_view payload = text.substr(pos, payload_bytes);
    std::string_view trailer = text.substr(pos + payload_bytes);
    u64 want = 0;
    if (trailer.substr(0, 12) != "\nchecksum = " ||
        trailer.back() != '\n' ||
        !parseHex64(std::string(trailer.substr(12, 16)), want))
        return fail("truncated trace or missing checksum trailer at "
                    "offset " +
                    std::to_string(pos + payload_bytes));
    u64 got = fnv1a64(payload);
    if (got != want)
        return fail("checksum mismatch over " +
                    std::to_string(payload_bytes) +
                    " payload bytes at offset " + std::to_string(pos) +
                    ": expected " + hex64(want) + ", computed " +
                    hex64(got));
    out.payload = payload;
    out.checksum = want;
    return out;
}

/**
 * Apply an armed trace fault to a file image about to be parsed.
 * Errno modes fail the read outright ("injected <what>"); truncate and
 * short cut the image view — the envelope's size and checksum guards
 * downstream must turn that into a diagnostic, which is exactly what
 * the fault matrix asserts. Returns false when the read should fail.
 */
bool
injectTraceFault(const char *point_name, std::string_view &text,
                 const std::string &origin, std::string &error)
{
    fault::Injected inj = fault::point(point_name);
    if (!inj)
        return true;
    if (inj.kind == fault::Kind::Delay) {
        fault::sleepMicros(inj.amount);
        return true;
    }
    if (inj.kind == fault::Kind::Errno) {
        error = origin + ": " + point_name + ": injected " +
                std::strerror(inj.err);
        return false;
    }
    text = text.substr(0, std::min<size_t>(inj.amount, text.size()));
    return true;
}

} // namespace

std::string
tracePath(const std::string &dir, const std::string &workload, u32 phase)
{
    return dir + "/" + sanitized(workload) + "-p" + std::to_string(phase) +
           traceFileExtension;
}

std::string
serializeTrace(const TraceHeader &header,
               const std::vector<DynRecord> &records)
{
    if (header.version < traceFormatVersionMin ||
        header.version > traceFormatVersion)
        rsep_fatal("serializeTrace: unsupported trace version %u",
                   header.version);
    std::string payload = header.version >= 2 ? encodePayloadV2(records)
                                              : encodePayload(records);
    std::ostringstream os;
    os << "rsep-trace " << header.version << "\n";
    os << "workload = " << header.workload << "\n";
    os << "workload_hash = " << header.workloadHash << "\n";
    os << "phase = " << header.phase << "\n";
    os << "program_length = " << header.programLength << "\n";
    os << "records = " << records.size() << "\n";
    os << "payload\n";
    os << payload;
    os << "\nchecksum = " << hex64(fnv1a64(payload)) << "\n";
    return os.str();
}

TraceParse
parseTrace(std::string_view text, const std::string &origin,
           bool header_only)
{
    TraceParse out;
    Envelope env = parseEnvelope(text, origin);
    if (!env.ok()) {
        out.error = std::move(env.error);
        return out;
    }
    out.header = env.header;
    out.payloadChecksum = env.checksum;
    if (header_only)
        return out;

    out.records.reserve(env.header.records);
    auto emit = [&](const DynRecord &r) { out.records.push_back(r); };
    if (env.header.version >= 2) {
        std::string msg;
        if (!decodePayloadV2(env.payload, env.header.records, emit, msg)) {
            out.error = origin + ": " + msg;
            out.records.clear();
            return out;
        }
        return out;
    }
    decodePayloadV1(env.payload, env.header.records, emit);
    return out;
}

DecodedTraceParse
decodeTraceImage(std::string_view text, const std::string &origin)
{
    DecodedTraceParse out;
    // "trace.decode" injects here so every decode path — the tooling
    // loader and the shared DecodedTraceCache alike — is covered.
    std::string inj_err;
    if (!injectTraceFault("trace.decode", text, origin, inj_err)) {
        out.error = std::move(inj_err);
        return out;
    }
    Envelope env = parseEnvelope(text, origin);
    if (!env.ok()) {
        out.error = std::move(env.error);
        return out;
    }
    auto decoded = std::make_shared<DecodedTrace>();
    decoded->header = env.header;
    decoded->payloadChecksum = env.checksum;
    decoded->reserveRecords(env.header.records);
    auto emit = [&](const DynRecord &r) { decoded->appendRecord(r); };
    if (env.header.version >= 2) {
        std::string msg;
        if (!decodePayloadV2(env.payload, env.header.records, emit, msg)) {
            out.error = origin + ": " + msg;
            return out;
        }
    } else {
        decodePayloadV1(env.payload, env.header.records, emit);
    }
    out.trace = std::move(decoded);
    return out;
}

TraceParse
readTraceFile(const std::string &path, bool header_only)
{
    MmapFile file;
    std::string err;
    if (!file.open(path, &err)) {
        TraceParse out;
        out.error = err;
        return out;
    }
    std::string_view view = file.view();
    if (!injectTraceFault("trace.read", view, path, err)) {
        TraceParse out;
        out.error = err;
        return out;
    }
    return parseTrace(view, path, header_only);
}

DecodedTraceParse
loadDecodedTrace(const std::string &path)
{
    MmapFile file;
    std::string err;
    if (!file.open(path, &err)) {
        DecodedTraceParse out;
        out.error = err;
        return out;
    }
    return decodeTraceImage(file.view(), path);
}

std::shared_ptr<const DecodedTrace>
DecodedTrace::fromRecords(TraceHeader header,
                          const std::vector<DynRecord> &records)
{
    auto out = std::make_shared<DecodedTrace>();
    header.records = records.size();
    out->header = std::move(header);
    out->reserveRecords(records.size());
    for (const DynRecord &r : records)
        out->appendRecord(r);
    return out;
}

bool
writeTraceFile(const std::string &path, const TraceHeader &header,
               const std::vector<DynRecord> &records, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = path + ": " + msg;
        return false;
    };
    std::error_code ec;
    fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
        fs::create_directories(parent, ec);
        if (ec)
            return fail(ec.message());
    }
    std::string text = serializeTrace(header, records);

    // "trace.write" faults: errno modes fail the write; short fails it
    // after leaving no file behind; truncate *publishes* a torn trace —
    // the checksum trailer is gone, so the next read must diagnose it.
    std::string_view out_text = text;
    fault::Injected winj = fault::point("trace.write");
    if (winj.kind == fault::Kind::Delay)
        fault::sleepMicros(winj.amount);
    else if (winj.kind == fault::Kind::Errno)
        return fail(std::string("injected ") + std::strerror(winj.err));
    else if (winj.kind == fault::Kind::ShortWrite ||
             winj.kind == fault::Kind::Truncate)
        out_text = out_text.substr(
            0, std::min<size_t>(winj.amount, out_text.size()));

    // Atomic publish (cf. the result cache): a concurrent reader sees
    // the old trace or the new one, never a torn write. The temp name
    // carries pid AND a process-wide sequence number: one matrix run
    // records a (workload, phase) trace once per config, on different
    // worker threads of the same process, so pid alone would tear.
    static std::atomic<u64> writerSeq{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<unsigned long>(::getpid())) +
                      "." + std::to_string(++writerSeq);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return fail("cannot open temp file for writing");
        os << out_text;
        os.flush();
        if (!os) {
            fs::remove(tmp, ec);
            return fail("write failed");
        }
    }
    if (winj.kind == fault::Kind::ShortWrite) {
        fs::remove(tmp, ec);
        return fail("injected short write (" +
                    std::to_string(out_text.size()) + " of " +
                    std::to_string(text.size()) + " bytes)");
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return fail("rename failed");
    }
    return true;
}

bool
RecordingTraceSource::write(const std::string &path, TraceHeader header,
                            std::string *err) const
{
    header.records = buffer.size();
    header.programLength = program().size();
    return writeTraceFile(path, header, buffer, err);
}

ReplayTraceSource::ReplayTraceSource(
    std::shared_ptr<const DecodedTrace> decoded, const isa::Program &program,
    std::string origin_label)
    : trace(std::move(decoded)), prog(program),
      origin(std::move(origin_label))
{
    if (!trace)
        rsep_fatal("replay: %s: null decoded trace", origin.c_str());
    if (trace->header.programLength != prog.size())
        rsep_fatal("replay: %s: program length %llu does not match the "
                   "registry workload's %zu instructions",
                   origin.c_str(),
                   static_cast<unsigned long long>(
                       trace->header.programLength),
                   prog.size());
}

namespace
{

/** Decode-or-die bridge for the AoS convenience constructor. */
std::shared_ptr<const DecodedTrace>
decodedFromParse(TraceParse &parse)
{
    if (!parse.ok())
        rsep_fatal("replay: %s", parse.error.c_str());
    TraceHeader header = parse.header;
    auto out = DecodedTrace::fromRecords(std::move(header), parse.records);
    return out;
}

} // namespace

ReplayTraceSource::ReplayTraceSource(TraceParse parse,
                                     const isa::Program &program,
                                     std::string origin_label)
    : ReplayTraceSource(decodedFromParse(parse), program,
                        std::move(origin_label))
{
}

const DynRecord &
ReplayTraceSource::step()
{
    if (next >= trace->size())
        rsep_fatal("replay: %s: trace exhausted after %zu records — the "
                   "trace was recorded under a smaller run sizing than "
                   "this replay needs; re-record with at least this "
                   "run's warmup+measure window",
                   origin.c_str(), trace->size());
    const size_t i = next++;
    cur.staticIdx = trace->staticIdx[i];
    cur.nextIdx = trace->nextIdx[i];
    cur.result = trace->result[i];
    cur.effAddr = trace->effAddr[i];
    cur.taken = trace->taken[i] != 0;
    if (cur.staticIdx >= prog.size() || cur.nextIdx >= prog.size())
        rsep_fatal("replay: %s: record %llu indexes outside the program "
                   "(staticIdx %u, nextIdx %u, program %zu)",
                   origin.c_str(), static_cast<unsigned long long>(i),
                   cur.staticIdx, cur.nextIdx, prog.size());
    return cur;
}

} // namespace rsep::wl

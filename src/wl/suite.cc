#include "wl/suite.hh"

#include "common/logging.hh"
#include "wl/workload_spec.hh"

namespace rsep::wl
{

const std::vector<WorkloadSpec> &
suiteSpecs()
{
    // Archetype + parameter choices are documented in kernels.hh and
    // DESIGN.md; per-benchmark params target that benchmark's behaviour
    // in the paper's Figs. 1, 4, 5 (zero ratio, redundancy, who wins).
    // Order is the paper's figure order (suiteNames derives from it).
    static const std::vector<WorkloadSpec> specs = {
        {"perlbench", InterpParams{}},
        {"bzip2", BlockSortParams{.blockLen = 1 << 19, .meanRunLen = 24}},
        {"gcc", BranchyGameParams{.boardCells = 1 << 15, .takenPct = 40}},
        {"bwaves", DenseLinAlgParams{.constCoefPct = 10}},
        {"gamess", RegularZeroParams{}},
        {"mcf", PointerChaseParams{.nodes = 1 << 16}},
        {"milc", SparseSolverParams{.rows = 1 << 12, .nnzPerRow = 16}},
        {"zeusmp", StencilParams{.gridCells = 1 << 14, .zeroPct = 50}},
        {"gromacs", DenseLinAlgParams{.constCoefPct = 60}},
        {"cactusADM", StencilParams{.gridCells = 1 << 14, .zeroPct = 45}},
        {"leslie3d", StencilParams{.gridCells = 1 << 14, .zeroPct = 12}},
        {"namd", DenseLinAlgParams{.constCoefPct = 0}},
        {"gobmk", BranchyGameParams{.takenPct = 52}},
        {"dealII", RecomputeParams{}},
        {"soplex", SparseSolverParams{.rows = 1 << 11, .nnzPerRow = 24}},
        {"povray", DenseLinAlgParams{.constCoefPct = 30}},
        {"calculix", DenseLinAlgParams{.constCoefPct = 5}},
        {"hmmer", DynProgParams{.clampDuty = 45}},
        {"sjeng", BranchyGameParams{.takenPct = 48}},
        {"GemsFDTD", StencilParams{.gridCells = 1 << 14, .zeroPct = 20}},
        {"libquantum", GateSimParams{.stateWords = 1 << 19}},
        {"h264ref", StridedMediaParams{}},
        {"tonto", DenseLinAlgParams{.constCoefPct = 15}},
        {"lbm", StreamingParams{}},
        {"omnetpp", EventQueueParams{.heapSize = 1 << 16}},
        {"astar", BranchyGameParams{.boardCells = 1 << 16, .takenPct = 55}},
        {"wrf", SparseSolverParams{.rows = 1 << 11, .nnzPerRow = 16,
                                   .vpFriendly = true}},
        {"sphinx3", SparseSolverParams{.rows = 1 << 10, .nnzPerRow = 8}},
        {"xalancbmk", XmlParseParams{}},
    };
    return specs;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        v.reserve(suiteSpecs().size());
        for (const WorkloadSpec &s : suiteSpecs())
            v.push_back(s.name);
        return v;
    }();
    return names;
}

Workload
makeWorkload(const std::string &name)
{
    std::optional<WorkloadSpec> spec = findWorkloadSpec(name);
    if (!spec)
        rsep_fatal("unknown workload '%s' (see --list-workloads)",
                   name.c_str());
    return buildWorkload(*spec);
}

std::vector<Workload>
makeSuite()
{
    std::vector<Workload> all;
    all.reserve(suiteNames().size());
    for (const auto &n : suiteNames())
        all.push_back(makeWorkload(n));
    return all;
}

} // namespace rsep::wl

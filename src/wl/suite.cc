#include "wl/suite.hh"

#include "common/logging.hh"

namespace rsep::wl
{

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "perlbench", "bzip2",      "gcc",      "bwaves",   "gamess",
        "mcf",       "milc",       "zeusmp",   "gromacs",  "cactusADM",
        "leslie3d",  "namd",       "gobmk",    "dealII",   "soplex",
        "povray",    "calculix",   "hmmer",    "sjeng",    "GemsFDTD",
        "libquantum","h264ref",    "tonto",    "lbm",      "omnetpp",
        "astar",     "wrf",        "sphinx3",  "xalancbmk",
    };
    return names;
}

Workload
makeWorkload(const std::string &name)
{
    // Archetype + parameter choices are documented in kernels.hh and
    // DESIGN.md; per-benchmark params target that benchmark's behaviour
    // in the paper's Figs. 1, 4, 5 (zero ratio, redundancy, who wins).
    if (name == "perlbench")
        return makeInterp(name, {});
    if (name == "bzip2")
        return makeBlockSort(name, {.blockLen = 1 << 19, .meanRunLen = 24});
    if (name == "gcc")
        return makeBranchyGame(name, {.boardCells = 1 << 15, .takenPct = 40});
    if (name == "bwaves")
        return makeDenseLinAlg(name, {.constCoefPct = 10});
    if (name == "gamess")
        return makeRegularZero(name, {});
    if (name == "mcf")
        return makePointerChase(name, {.nodes = 1 << 16});
    if (name == "milc")
        return makeSparseSolver(name, {.rows = 1 << 12, .nnzPerRow = 16});
    if (name == "zeusmp")
        return makeStencil(name, {.gridCells = 1 << 14, .zeroPct = 50});
    if (name == "gromacs")
        return makeDenseLinAlg(name, {.constCoefPct = 60});
    if (name == "cactusADM")
        return makeStencil(name, {.gridCells = 1 << 14, .zeroPct = 45});
    if (name == "leslie3d")
        return makeStencil(name, {.gridCells = 1 << 14, .zeroPct = 12});
    if (name == "namd")
        return makeDenseLinAlg(name, {.constCoefPct = 0});
    if (name == "gobmk")
        return makeBranchyGame(name, {.takenPct = 52});
    if (name == "dealII")
        return makeRecompute(name, {});
    if (name == "soplex")
        return makeSparseSolver(name, {.rows = 1 << 11, .nnzPerRow = 24});
    if (name == "povray")
        return makeDenseLinAlg(name, {.constCoefPct = 30});
    if (name == "calculix")
        return makeDenseLinAlg(name, {.constCoefPct = 5});
    if (name == "hmmer")
        return makeDynProg(name, {.clampDuty = 45});
    if (name == "sjeng")
        return makeBranchyGame(name, {.takenPct = 48});
    if (name == "GemsFDTD")
        return makeStencil(name, {.gridCells = 1 << 14, .zeroPct = 20});
    if (name == "libquantum")
        return makeGateSim(name, {.stateWords = 1 << 19});
    if (name == "h264ref")
        return makeStridedMedia(name, {});
    if (name == "tonto")
        return makeDenseLinAlg(name, {.constCoefPct = 15});
    if (name == "lbm")
        return makeStreaming(name, {});
    if (name == "omnetpp")
        return makeEventQueue(name, {.heapSize = 1 << 16});
    if (name == "astar")
        return makeBranchyGame(name, {.boardCells = 1 << 16, .takenPct = 55});
    if (name == "wrf")
        return makeSparseSolver(name, {.rows = 1 << 11, .nnzPerRow = 16,
                                       .vpFriendly = true});
    if (name == "sphinx3")
        return makeSparseSolver(name, {.rows = 1 << 10, .nnzPerRow = 8});
    if (name == "xalancbmk")
        return makeXmlParse(name, {});
    rsep_fatal("unknown workload '%s'", name.c_str());
}

std::vector<Workload>
makeSuite()
{
    std::vector<Workload> all;
    all.reserve(suiteNames().size());
    for (const auto &n : suiteNames())
        all.push_back(makeWorkload(n));
    return all;
}

} // namespace rsep::wl

#include "wl/trace_cache.hh"

#include <chrono>

#include "common/fnv.hh"
#include "common/mmap_file.hh"

namespace rsep::wl
{

namespace
{

u64
elapsedMicros(std::chrono::steady_clock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/**
 * Read the payload checksum out of the fixed-size trailer
 * ("\nchecksum = " + 16 hex + "\n") without parsing the file. False on
 * anything malformed — the caller falls through to the full decoder,
 * which produces the proper diagnostic.
 */
bool
trailerChecksum(std::string_view image, u64 &out)
{
    constexpr size_t trailerBytes = 12 + 16 + 1;
    if (image.size() < trailerBytes)
        return false;
    std::string_view t = image.substr(image.size() - trailerBytes);
    return t.substr(0, 12) == "\nchecksum = " && t.back() == '\n' &&
           parseHex64(std::string(t.substr(12, 16)), out);
}

} // namespace

DecodedTraceCache::Result
DecodedTraceCache::get(const std::string &path)
{
    Result out;

    // Map the file up front: a hit touches only the trailer page, a
    // miss decodes straight from this same view.
    MmapFile file;
    std::string io_err;
    if (!file.open(path, &io_err)) {
        out.error = std::move(io_err);
        return out;
    }
    u64 checksum = 0;
    const bool keyed = trailerChecksum(file.view(), checksum);
    // Unkeyable images (truncated/corrupt) are decoded uncached so the
    // decoder's diagnostic comes back verbatim.
    if (!keyed) {
        DecodedTraceParse parse = decodeTraceImage(file.view(), path);
        out.error = parse.error;
        return out;
    }
    const std::string key = path + '\0' + hex64(checksum);

    std::unique_lock<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it != entries.end()) {
        // Hold the entry by shared_ptr: once we wait, the map may
        // mutate under other threads (failed decode erases, clear()),
        // and the entry must outlive its map slot.
        std::shared_ptr<Entry> e = it->second;
        // In-flight: another thread is decoding these exact bytes.
        // Wait for its result rather than decoding again.
        cv.wait(lock, [&] { return e->ready; });
        if (e->trace) {
            auto again = entries.find(key);
            if (again != entries.end() && again->second == e)
                touch(key, *e);
            ++counters.hits;
            out.trace = e->trace;
            out.hit = true;
            return out;
        }
        // The decode failed; same bytes (the checksum is in the key)
        // give the same diagnostic, so report it without re-decoding.
        out.error = e->error;
        return out;
    }

    // Miss: publish an in-flight marker and decode outside the lock.
    // In-flight entries are in the map (so lookups can wait on them)
    // but not in the LRU list (so eviction cannot touch them).
    auto e = std::make_shared<Entry>();
    entries[key] = e;
    lock.unlock();

    auto t0 = std::chrono::steady_clock::now();
    DecodedTraceParse parse = decodeTraceImage(file.view(), path);
    const u64 micros = elapsedMicros(t0);

    lock.lock();
    ++counters.misses;
    counters.decodeMicros += micros;
    out.decodeMicros = micros;
    // The map slot may no longer be ours (clear() ran while we
    // decoded): publish to waiters via the shared entry regardless,
    // and only touch map/LRU state when the slot still points at us.
    auto again = entries.find(key);
    const bool slotOurs = again != entries.end() && again->second == e;
    if (!parse.ok()) {
        e->error = parse.error;
        e->ready = true;
        if (slotOurs)
            entries.erase(again); // no failure tombstones in the map.
        cv.notify_all();
        out.error = parse.error;
        return out;
    }
    e->trace = parse.trace;
    e->bytes = parse.trace->decodedBytes();
    e->ready = true;
    if (slotOurs) {
        lru.push_front(key);
        e->lruIt = lru.begin();
        resident += e->bytes;
        counters.residentBytes = resident;
        enforceCapacity();
    }
    cv.notify_all();
    out.trace = parse.trace;
    return out;
}

void
DecodedTraceCache::touch(const std::string &key, Entry &e)
{
    lru.erase(e.lruIt);
    lru.push_front(key);
    e.lruIt = lru.begin();
}

void
DecodedTraceCache::enforceCapacity()
{
    if (capacity == 0)
        return;
    // Evict from the cold end, but never the entry just touched or
    // inserted (front) — evicting the working element would turn an
    // over-capacity trace into a decode per lookup AND a miss counter
    // that lies about sharing.
    while (resident > capacity && lru.size() > 1) {
        const std::string &victim = lru.back();
        auto it = entries.find(victim);
        resident -= it->second->bytes;
        entries.erase(it);
        lru.pop_back();
        ++counters.evictions;
    }
    counters.residentBytes = resident;
}

void
DecodedTraceCache::setCapacityBytes(u64 bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    capacity = bytes;
}

u64
DecodedTraceCache::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return capacity;
}

DecodedTraceCache::Stats
DecodedTraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    s.residentBytes = resident;
    return s;
}

void
DecodedTraceCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu);
    counters = Stats{};
    counters.residentBytes = resident;
}

void
DecodedTraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    lru.clear();
    resident = 0;
    counters.residentBytes = 0;
}

DecodedTraceCache &
traceCache()
{
    static DecodedTraceCache cache;
    return cache;
}

} // namespace rsep::wl

#include "wl/workload_spec.hh"

#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/env.hh"
#include "common/fnv.hh"
#include "common/logging.hh"

namespace rsep::wl
{

namespace
{

/** Archetype-name <-> variant-alternative binding and build dispatch.
 *  The table order must match the WorkloadParams alternative order. */
template <class P> struct ArchetypeTraits;

#define RSEP_ARCHETYPE(Params, nm, factory)                                \
    template <> struct ArchetypeTraits<Params>                             \
    {                                                                      \
        static constexpr const char *name = nm;                            \
        static Workload                                                    \
        make(const std::string &n, const Params &p)                        \
        {                                                                  \
            return factory(n, p);                                          \
        }                                                                  \
    };

RSEP_ARCHETYPE(PointerChaseParams, "pointer_chase", makePointerChase)
RSEP_ARCHETYPE(DynProgParams, "dyn_prog", makeDynProg)
RSEP_ARCHETYPE(RecomputeParams, "recompute", makeRecompute)
RSEP_ARCHETYPE(GateSimParams, "gate_sim", makeGateSim)
RSEP_ARCHETYPE(EventQueueParams, "event_queue", makeEventQueue)
RSEP_ARCHETYPE(XmlParseParams, "xml_parse", makeXmlParse)
RSEP_ARCHETYPE(InterpParams, "interp", makeInterp)
RSEP_ARCHETYPE(BlockSortParams, "block_sort", makeBlockSort)
RSEP_ARCHETYPE(StencilParams, "stencil", makeStencil)
RSEP_ARCHETYPE(DenseLinAlgParams, "dense_linalg", makeDenseLinAlg)
RSEP_ARCHETYPE(StridedMediaParams, "strided_media", makeStridedMedia)
RSEP_ARCHETYPE(BranchyGameParams, "branchy_game", makeBranchyGame)
RSEP_ARCHETYPE(SparseSolverParams, "sparse_solver", makeSparseSolver)
RSEP_ARCHETYPE(RegularZeroParams, "regular_zero", makeRegularZero)
RSEP_ARCHETYPE(StreamingParams, "streaming", makeStreaming)

#undef RSEP_ARCHETYPE

template <size_t... I>
std::vector<std::string>
buildArchetypeNames(std::index_sequence<I...>)
{
    return {ArchetypeTraits<
        std::variant_alternative_t<I, WorkloadParams>>::name...};
}

constexpr size_t numArchetypes = std::variant_size_v<WorkloadParams>;

template <size_t... I>
bool
defaultParamsByIndex(WorkloadParams &out, size_t idx,
                     std::index_sequence<I...>)
{
    bool hit = false;
    ((idx == I
          ? (out = std::variant_alternative_t<I, WorkloadParams>{},
             hit = true)
          : false),
     ...);
    return hit;
}

// --------------------------------------------------------- field visitors

/** Canonical `key = value` emission (see the scenario serializer). */
struct ParamEmit
{
    std::ostringstream &os;

    void
    operator()(const char *key, bool &v) const
    {
        os << key << " = " << (v ? "true" : "false") << "\n";
    }

    void
    operator()(const char *key, u32 &v) const
    {
        os << key << " = " << v << "\n";
    }

    void
    operator()(const char *key, u64 &v) const
    {
        os << key << " = " << v << "\n";
    }

    void
    operator()(const char *key, s64 &v) const
    {
        os << key << " = " << v << "\n";
    }
};

/** Apply `key = value` to the visited fields (type-checked). */
struct ParamApply
{
    const std::string &key;
    const std::string &value;
    bool found = false;
    std::string expected; ///< non-empty = type error.

    void
    operator()(const char *k, bool &v)
    {
        if (key != k)
            return;
        found = true;
        if (!parseBool(value, v))
            expected = "a boolean (true/false)";
    }

    void
    operator()(const char *k, u32 &v)
    {
        if (key != k)
            return;
        found = true;
        u64 wide = 0;
        if (!parseU64(value, wide) ||
            wide > std::numeric_limits<u32>::max())
            expected = "an unsigned 32-bit integer";
        else
            v = static_cast<u32>(wide);
    }

    void
    operator()(const char *k, u64 &v)
    {
        if (key != k)
            return;
        found = true;
        if (!parseU64(value, v))
            expected = "an unsigned integer";
    }

    void
    operator()(const char *k, s64 &v)
    {
        if (key != k)
            return;
        found = true;
        if (!parseS64(value, v))
            expected = "a signed integer";
    }
};

/** The hash/serializer payload: archetype plus every param field. */
std::string
serializeWorkloadBody(const WorkloadSpec &spec)
{
    WorkloadSpec copy = spec; // visitFields takes mutable refs.
    std::ostringstream os;
    os << "archetype = " << archetypeName(copy.params) << "\n";
    ParamEmit emit{os};
    visitParamFields(copy, emit);
    return os.str();
}

/** Suite spec by name; nullptr when the name is not a suite benchmark. */
const WorkloadSpec *
suiteSpecByName(const std::string &name)
{
    for (const WorkloadSpec &s : suiteSpecs())
        if (s.name == name)
            return &s;
    return nullptr;
}

// ------------------------------------------------------- dynamic overlay

struct Overlay
{
    std::mutex mtx;
    std::map<std::string, WorkloadSpec> byKey;   ///< key -> spec.
    std::map<std::string, std::string> nameToKey; ///< latest per name.
};

Overlay &
overlay()
{
    static Overlay o;
    return o;
}

} // namespace

const std::vector<std::string> &
archetypeNames()
{
    static const std::vector<std::string> names =
        buildArchetypeNames(std::make_index_sequence<numArchetypes>{});
    return names;
}

const std::string &
archetypeName(const WorkloadParams &params)
{
    return archetypeNames().at(params.index());
}

bool
setArchetype(WorkloadSpec &spec, const std::string &archetype)
{
    const std::vector<std::string> &names = archetypeNames();
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == archetype)
            return defaultParamsByIndex(
                spec.params, i, std::make_index_sequence<numArchetypes>{});
    }
    return false;
}

bool
applyWorkloadKey(WorkloadSpec &spec, const std::string &key,
                 const std::string &value, std::string *err)
{
    ParamApply apply{key, value, false, {}};
    visitParamFields(spec, apply);
    if (!apply.found) {
        if (err)
            *err = "unknown key '" + key + "' for archetype '" +
                   archetypeName(spec.params) + "'";
        return false;
    }
    if (!apply.expected.empty()) {
        if (err)
            *err = "bad value '" + value + "' for " + key + " (expected " +
                   apply.expected + ")";
        return false;
    }
    return true;
}

std::string
serializeWorkload(const WorkloadSpec &spec)
{
    std::ostringstream os;
    os << "[workload]\n";
    os << "name = " << spec.name << "\n";
    os << serializeWorkloadBody(spec);
    return os.str();
}

std::string
workloadHash(const WorkloadSpec &spec)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(serializeWorkloadBody(spec))));
    return buf;
}

std::string
workloadKey(const WorkloadSpec &spec)
{
    const WorkloadSpec *suite = suiteSpecByName(spec.name);
    if (suite &&
        serializeWorkloadBody(*suite) == serializeWorkloadBody(spec))
        return spec.name;
    return spec.name + "@" + workloadHash(spec);
}

std::string
registerWorkload(const WorkloadSpec &spec)
{
    std::string key = workloadKey(spec);
    Overlay &o = overlay();
    std::lock_guard<std::mutex> lk(o.mtx);
    if (key == spec.name && suiteSpecByName(spec.name)) {
        // Pristine suite benchmark: nothing to overlay — and if the
        // name was overridden earlier, this restores the suite spec
        // for name lookups.
        o.nameToKey.erase(spec.name);
        return key;
    }
    o.byKey[key] = spec;
    o.nameToKey[spec.name] = key; // latest definition wins name lookups.
    return key;
}

std::optional<std::string>
resolveWorkloadKey(const std::string &name)
{
    Overlay &o = overlay();
    {
        std::lock_guard<std::mutex> lk(o.mtx);
        if (o.byKey.count(name))
            return name; // already a qualified key.
        auto it = o.nameToKey.find(name);
        if (it != o.nameToKey.end())
            return it->second;
    }
    if (suiteSpecByName(name))
        return name;
    return std::nullopt;
}

std::optional<WorkloadSpec>
findWorkloadSpec(const std::string &name)
{
    Overlay &o = overlay();
    {
        std::lock_guard<std::mutex> lk(o.mtx);
        auto it = o.byKey.find(name);
        if (it != o.byKey.end())
            return it->second;
        auto nit = o.nameToKey.find(name);
        if (nit != o.nameToKey.end())
            return o.byKey.at(nit->second);
    }
    if (const WorkloadSpec *suite = suiteSpecByName(name))
        return *suite;
    return std::nullopt;
}

std::vector<WorkloadInfo>
listWorkloads()
{
    std::vector<WorkloadInfo> out;
    for (const WorkloadSpec &s : suiteSpecs()) {
        // An overlay override of a suite name shadows the suite entry
        // for name lookups; reflect what a run would actually use.
        std::optional<WorkloadSpec> eff = findWorkloadSpec(s.name);
        const WorkloadSpec &spec = eff ? *eff : s;
        out.push_back({workloadKey(spec), spec.name,
                       archetypeName(spec.params), workloadHash(spec),
                       workloadKey(spec) != s.name ||
                           serializeWorkloadBody(spec) !=
                               serializeWorkloadBody(s)});
    }
    Overlay &o = overlay();
    std::lock_guard<std::mutex> lk(o.mtx);
    for (const auto &[key, spec] : o.byKey) {
        auto nit = o.nameToKey.find(spec.name);
        if (suiteSpecByName(spec.name) && nit != o.nameToKey.end() &&
            nit->second == key)
            continue; // already listed as the suite override.
        out.push_back({key, spec.name, archetypeName(spec.params),
                       workloadHash(spec), true});
    }
    return out;
}

Workload
buildWorkload(const WorkloadSpec &spec)
{
    return std::visit(
        [&](const auto &p) -> Workload {
            using P = std::decay_t<decltype(p)>;
            return ArchetypeTraits<P>::make(spec.name, p);
        },
        spec.params);
}

} // namespace rsep::wl

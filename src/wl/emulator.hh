/**
 * @file
 * Functional (architectural) executor of mini-ISA programs.
 *
 * The emulator is the source of truth for values: the timing model is
 * trace-driven and replays the committed-path stream produced here,
 * so every mechanism under study (hashing, equality, value prediction)
 * operates on organically computed values.
 */

#ifndef RSEP_WL_EMULATOR_HH
#define RSEP_WL_EMULATOR_HH

#include <array>

#include "isa/program.hh"
#include "wl/dynrecord.hh"
#include "wl/memory.hh"
#include "wl/trace_source.hh"

namespace rsep::wl
{

/**
 * Architectural state + single-step execution of one Program — the
 * live-emulation TraceSource.
 */
class Emulator : public TraceSource
{
  public:
    explicit Emulator(const isa::Program &prog);

    /** Reset registers and PC; memory is preserved (use memory().clear()). */
    void resetArchState();

    /**
     * Execute the next committed-path instruction and return its
     * record. Halt wraps silently back to instruction 0 (kernels are
     * structured as endless outer loops; Halt is a safety net).
     */
    const DynRecord &step() override;

    u64 readReg(ArchReg r) const;
    void setReg(ArchReg r, u64 v);
    /** Convenience: write a double into an FP register. */
    void setFpReg(ArchReg r, double v);

    SparseMemory &memory() { return mem; }
    const SparseMemory &memory() const { return mem; }

    const isa::Program &program() const override { return prog; }
    /** Total instructions executed (excluding skipped Halts). */
    u64 instCount() const { return icount; }
    /** Static index of the next instruction to execute. */
    u32 nextIndex() const { return cur; }

  private:
    void writeReg(ArchReg r, u64 v);

    const isa::Program &prog;
    std::array<u64, isa::numArchRegs> regs{};
    SparseMemory mem;
    u32 cur = 0;
    u64 icount = 0;
    DynRecord rec;
};

} // namespace rsep::wl

#endif // RSEP_WL_EMULATOR_HH

/**
 * @file
 * Top-level simulation configuration: Table I core defaults plus the
 * mechanism arms evaluated in the paper's figures.
 */

#ifndef RSEP_SIM_SIM_CONFIG_HH
#define RSEP_SIM_SIM_CONFIG_HH

#include <string>

#include "core/pipeline.hh"

namespace rsep::sim
{

/** A complete experiment configuration. */
struct SimConfig
{
    std::string label = "baseline";
    core::CoreParams core{};
    core::MechConfig mech{};

    u64 warmupInsts = 80'000;   ///< per checkpoint (scaled by env).
    u64 measureInsts = 400'000; ///< per checkpoint (scaled by env).
    u32 checkpoints = 3;        ///< paper: 10 (RSEP_CHECKPOINTS env).
    u64 seed = 0x5eed;

    /** Apply RSEP_SIM_SCALE / RSEP_CHECKPOINTS env overrides. */
    void applyEnv();

    // ------------------------- Fig. 4 arms -------------------------
    static SimConfig baseline();
    static SimConfig zeroPredOnly();
    static SimConfig moveElimOnly();
    /** RSEP arm: ideal validation, large history, move elim included. */
    static SimConfig rsepIdeal();
    static SimConfig vpOnly();
    static SimConfig rsepPlusVp();

    // ------------------------- Fig. 6 arms -------------------------
    static SimConfig rsepValidation(equality::ValidationPolicy policy,
                                    bool lock_fu_label = false);
    static SimConfig rsepSampling(u32 start_train_threshold);

    // ------------------------- Fig. 7 arms -------------------------
    /** Realistic RSEP: 10.1KB predictor, 128-entry FIFO, 24-entry
     *  ISRB, sampling @63, issue-2x-any-FU validation. */
    static SimConfig rsepRealistic();

    /** Fig. 1 probe configuration (baseline + redundancy probe). */
    static SimConfig fig1Probe();
};

/**
 * Field-introspection hook for the run-sizing scalars (the `[sim]`
 * scenario-file section; label is carried as the scenario name).
 */
template <class V>
void
visitFields(SimConfig &c, V &&v)
{
    v("warmup_insts", c.warmupInsts);
    v("measure_insts", c.measureInsts);
    v("checkpoints", c.checkpoints);
    v("seed", c.seed);
}

/** Render Table I (the simulator configuration overview). */
std::string describeTable1(const SimConfig &cfg);

} // namespace rsep::sim

#endif // RSEP_SIM_SIM_CONFIG_HH

#include "sim/scenario.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "common/env.hh"

namespace rsep::sim
{

namespace
{

// ------------------------------------------------------------ registry

struct RegistryEntry
{
    ScenarioInfo info;
    std::function<SimConfig()> make;
};

SimConfig
fig1Redundancy()
{
    // What bench_fig1_redundancy runs: the probe riding the baseline
    // core with equality prediction on solely for the commit-group
    // histogram.
    SimConfig c = SimConfig::fig1Probe();
    c.label = "fig1-redundancy";
    c.mech.equalityPred = true;
    c.mech.rsep = equality::RsepConfig::idealLarge();
    return c;
}

SimConfig
withZeroPred(SimConfig c, const char *label)
{
    c.label = label;
    c.mech.zeroPred = true;
    return c;
}

SimConfig
rsepOracle()
{
    // Limit-study arm: perfect pair finding over the ideal-RSEP
    // window. Composed like the rsep arm (move elimination on, large
    // history bounding the oracle's visibility) but with the predictor
    // replaced by the oracle and the ISRB widened so the sharing
    // substrate does not clip the limit.
    SimConfig c = SimConfig::baseline();
    c.label = "rsep-oracle";
    c.mech.moveElim = true;
    c.mech.oracleEq = true;
    c.mech.rsep = equality::RsepConfig::idealLarge();
    c.mech.rsep.isrbEntries = 512;
    return c;
}

const std::vector<RegistryEntry> &
registry()
{
    using equality::ValidationPolicy;
    static const std::vector<RegistryEntry> entries = {
        {{"baseline", {}, "Table I core, zero-idiom elimination only"},
         [] { return SimConfig::baseline(); }},
        {{"zero-pred", {"zeroPredOnly"},
          "baseline + Section III zero prediction"},
         [] { return SimConfig::zeroPredOnly(); }},
        {{"move-elim", {"moveElimOnly"}, "baseline + move elimination"},
         [] { return SimConfig::moveElimOnly(); }},
        {{"rsep", {"rsepIdeal"},
          "RSEP: ideal validation, large history (Fig. 4 arm)"},
         [] { return SimConfig::rsepIdeal(); }},
        {{"vpred", {"vpOnly", "vp"}, "D-VTAGE value prediction (~256KB)"},
         [] { return SimConfig::vpOnly(); }},
        {{"rsep+vpred", {"rsepPlusVp"}, "RSEP and D-VTAGE combined"},
         [] { return SimConfig::rsepPlusVp(); }},
        {{"rsep-val-ideal", {"rsepValIdeal"},
          "RSEP, free validation (Fig. 6 arm)"},
         [] { return SimConfig::rsepValidation(ValidationPolicy::Ideal); }},
        {{"rsep-val-2x-lock", {"rsepVal2xLock"},
          "RSEP, re-issue validation locking the FU class (Fig. 6)"},
         [] {
             return SimConfig::rsepValidation(
                 ValidationPolicy::Issue2xLockFu);
         }},
        {{"rsep-val-2x-any", {"rsepVal2xAny"},
          "RSEP, re-issue validation to any FU (Fig. 6)"},
         [] {
             return SimConfig::rsepValidation(
                 ValidationPolicy::Issue2xAnyFu);
         }},
        {{"rsep-val-2x-sample15", {"rsepSampling15"},
          "RSEP, 2x-any validation + sampled training @15 (Fig. 6)"},
         [] { return SimConfig::rsepSampling(15); }},
        {{"rsep-val-2x-sample63", {"rsepSampling63"},
          "RSEP, 2x-any validation + sampled training @63 (Fig. 6)"},
         [] { return SimConfig::rsepSampling(63); }},
        {{"rsep-realistic", {"rsepRealistic", "realistic"},
          "the 10.8KB realistic RSEP implementation (Fig. 7)"},
         [] { return SimConfig::rsepRealistic(); }},
        {{"fig1-probe", {"fig1Probe"},
          "baseline + Fig. 1 redundancy probe"},
         [] { return SimConfig::fig1Probe(); }},
        {{"fig1-redundancy", {},
          "Fig. 1 probe incl. the commit-group histogram collector"},
         [] { return fig1Redundancy(); }},
        {{"rsep+zp", {}, "RSEP incl. zero-prediction bars (Fig. 5 arm)"},
         [] { return withZeroPred(SimConfig::rsepIdeal(), "rsep+zp"); }},
        {{"rsep+vpred+zp", {},
          "RSEP + D-VTAGE incl. zero-prediction bars (Fig. 5 arm)"},
         [] {
             return withZeroPred(SimConfig::rsepPlusVp(), "rsep+vpred+zp");
         }},
        {{"rsep-oracle", {"rsepOracle", "oracle-eq"},
          "oracle equality prediction: perfect pair finding, no "
          "validation (limit study)"},
         [] { return rsepOracle(); }},
    };
    return entries;
}

// -------------------------------------------------- section dispatching

constexpr const char *sectionNames[] = {"sim", "core", "mech", "rsep",
                                        "vp"};

constexpr const char *sectionList =
    "[scenario], [workload], [sim], [core], [mech], [rsep] or [vp]";

/** Visit the fields of one named section of @p cfg. False when the
 *  section is unknown. */
template <class V>
bool
visitSection(SimConfig &cfg, const std::string &section, V &&v)
{
    if (section == "sim") {
        visitFields(cfg, v);
        return true;
    }
    if (section == "core") {
        visitFields(cfg.core, v);
        return true;
    }
    if (section == "mech") {
        visitFields(cfg.mech, v);
        return true;
    }
    if (section == "rsep") {
        visitFields(cfg.mech.rsep, v);
        return true;
    }
    if (section == "vp") {
        visitFields(cfg.mech.vp, v);
        return true;
    }
    return false;
}

// -------------------------------------------------------- emit visitor

struct EmitVisitor
{
    std::ostringstream &os;

    void
    operator()(const char *key, bool &v) const
    {
        os << key << " = " << (v ? "true" : "false") << "\n";
    }

    void
    operator()(const char *key, u32 &v) const
    {
        os << key << " = " << v << "\n";
    }

    void
    operator()(const char *key, u64 &v) const
    {
        os << key << " = " << v << "\n";
    }

    void
    operator()(const char *key, equality::ValidationPolicy &v) const
    {
        os << key << " = " << equality::validationPolicyName(v) << "\n";
    }

    void
    operator()(const char *key, ConfidenceKind &v) const
    {
        os << key << " = " << equality::confidenceKindName(v) << "\n";
    }

    /** Array-valued keys (ITTAGE per-component geometry): a full-width
     *  comma list, so the canonical form is unambiguous. */
    void
    operator()(const char *key,
               std::array<unsigned, pred::maxItageComps> &v) const
    {
        os << key << " = ";
        for (size_t i = 0; i < v.size(); ++i)
            os << (i ? "," : "") << v[i];
        os << "\n";
    }
};

/** The canonical config body (no [scenario] header): the serializer's
 *  payload and the configHash input. */
std::string
serializeBody(const SimConfig &cfg)
{
    SimConfig copy = cfg; // visitFields takes mutable refs.
    std::ostringstream os;
    EmitVisitor emit{os};
    for (const char *section : sectionNames) {
        os << "[" << section << "]\n";
        visitSection(copy, section, emit);
    }
    return os.str();
}

// ------------------------------------------------------- apply visitor

struct ApplyVisitor
{
    const std::string &key;
    const std::string &value;
    bool found = false;
    std::string expected; ///< non-empty = type error, what was expected.

    void
    operator()(const char *k, bool &v)
    {
        if (key != k)
            return;
        found = true;
        if (!parseBool(value, v))
            expected = "a boolean (true/false)";
    }

    void
    operator()(const char *k, u32 &v)
    {
        if (key != k)
            return;
        found = true;
        u64 wide = 0;
        if (!parseU64(value, wide) ||
            wide > std::numeric_limits<u32>::max())
            expected = "an unsigned 32-bit integer";
        else
            v = static_cast<u32>(wide);
    }

    void
    operator()(const char *k, u64 &v)
    {
        if (key != k)
            return;
        found = true;
        if (!parseU64(value, v))
            expected = "an unsigned integer";
    }

    void
    operator()(const char *k, equality::ValidationPolicy &v)
    {
        if (key != k)
            return;
        found = true;
        using equality::ValidationPolicy;
        for (ValidationPolicy p :
             {ValidationPolicy::Ideal, ValidationPolicy::Issue2xLockFu,
              ValidationPolicy::Issue2xAnyFu}) {
            if (value == equality::validationPolicyName(p)) {
                v = p;
                return;
            }
        }
        expected = "one of ideal|issue2x-lock-fu|issue2x-any-fu";
    }

    void
    operator()(const char *k, ConfidenceKind &v)
    {
        if (key != k)
            return;
        found = true;
        for (ConfidenceKind c :
             {ConfidenceKind::Deterministic8, ConfidenceKind::Fpc3}) {
            if (value == equality::confidenceKindName(c)) {
                v = c;
                return;
            }
        }
        expected = "one of deterministic8|fpc3";
    }

    void
    operator()(const char *k, std::array<unsigned, pred::maxItageComps> &v)
    {
        if (key != k)
            return;
        found = true;
        const char *want =
            "a comma list of up to 8 unsigned 32-bit integers";
        std::array<unsigned, pred::maxItageComps> parsed{};
        size_t n = 0;
        std::istringstream is(value);
        std::string item;
        while (std::getline(is, item, ',')) {
            u64 wide = 0;
            if (n >= parsed.size() || !parseU64(trimmed(item), wide) ||
                wide > std::numeric_limits<u32>::max()) {
                expected = want;
                return;
            }
            parsed[n++] = static_cast<unsigned>(wide);
        }
        if (n == 0) {
            expected = want;
            return;
        }
        v = parsed; // unspecified tail components are 0.
    }
};

/** Apply key = value in @p section. Empty return = success. */
std::string
applySectionKey(SimConfig &cfg, const std::string &section,
                const std::string &key, const std::string &value)
{
    ApplyVisitor apply{key, value, false, {}};
    if (!visitSection(cfg, section, apply))
        return "unknown section '[" + section + "]' (expected " +
               sectionList + ")";
    if (!apply.found)
        return "unknown key '" + key + "' in [" + section + "]";
    if (!apply.expected.empty())
        return "bad value '" + value + "' for " + section + "." + key +
               " (expected " + apply.expected + ")";
    return {};
}

} // namespace

const std::vector<ScenarioInfo> &
registeredScenarios()
{
    static const std::vector<ScenarioInfo> infos = [] {
        std::vector<ScenarioInfo> v;
        for (const auto &e : registry())
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

std::optional<Scenario>
findScenario(const std::string &name)
{
    for (const auto &e : registry()) {
        bool hit = e.info.name == name;
        for (const auto &alias : e.info.aliases)
            hit = hit || alias == name;
        if (hit)
            return Scenario{e.info.name, e.make()};
    }
    return std::nullopt;
}

ScenarioParse
parseScenarioText(const std::string &text, const std::string &origin)
{
    ScenarioParse out;

    struct Building
    {
        Scenario sc;
        std::string label; ///< explicit `label =`, applied at flush so
                           ///< a later `base =` cannot clobber it.
        bool open = false;
        bool explicitLabel = false;
    } cur;

    struct BuildingWorkload
    {
        wl::WorkloadSpec spec;
        bool open = false;
        bool haveParams = false; ///< archetype or base seen.
    } curWl;

    auto fail = [&](int line, const std::string &msg) {
        out.error = origin + ":" + std::to_string(line) + ": " + msg;
        out.scenarios.clear();
        out.workloads.clear();
        return out;
    };
    auto flush = [&]() -> std::string {
        if (cur.open) {
            if (cur.sc.name.empty())
                return "scenario is missing a 'name' key";
            cur.sc.config.label =
                cur.explicitLabel ? cur.label : cur.sc.name;
            out.scenarios.push_back(std::move(cur.sc));
            cur = Building{};
        }
        if (curWl.open) {
            if (curWl.spec.name.empty())
                return "workload is missing a 'name' key";
            if (!curWl.haveParams)
                return "workload '" + curWl.spec.name +
                       "' needs an 'archetype' or 'base' key";
            out.workloads.push_back(std::move(curWl.spec));
            curWl = BuildingWorkload{};
        }
        return {};
    };

    std::istringstream is(text);
    std::string raw, section;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        size_t cut = raw.find_first_of("#;");
        std::string line = trimmed(cut == std::string::npos
                                       ? raw
                                       : raw.substr(0, cut));
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail(lineno, "malformed section header '" + line +
                                        "'");
            section = trimmed(line.substr(1, line.size() - 2));
            if (section == "scenario" || section == "workload") {
                std::string err = flush();
                if (!err.empty())
                    return fail(lineno, err);
                (section == "scenario" ? cur.open : curWl.open) = true;
            } else {
                bool known = false;
                for (const char *s : sectionNames)
                    known = known || section == s;
                if (!known)
                    return fail(lineno, "unknown section '[" + section +
                                            "]' (expected " +
                                            sectionList + ")");
                if (curWl.open)
                    return fail(lineno,
                                "section '[" + section +
                                    "]' is not valid inside a "
                                    "[workload] block");
                if (!cur.open)
                    return fail(lineno, "section '[" + section +
                                            "]' before any [scenario]");
            }
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail(lineno,
                        "expected 'key = value', got '" + line + "'");
        std::string key = trimmed(line.substr(0, eq));
        std::string value = trimmed(line.substr(eq + 1));
        if (key.empty())
            return fail(lineno, "empty key");
        if (!cur.open && !curWl.open)
            return fail(lineno, "key '" + key +
                                    "' before any [scenario] or "
                                    "[workload]");

        if (curWl.open) {
            if (key == "name") {
                curWl.spec.name = value;
            } else if (key == "base") {
                auto base = wl::findWorkloadSpec(value);
                if (!base) {
                    // Earlier definitions in this same file are valid
                    // bases even when not registered yet.
                    for (const wl::WorkloadSpec &w : out.workloads)
                        if (w.name == value || wl::workloadKey(w) == value)
                            base = w;
                }
                if (!base)
                    return fail(lineno, "unknown base workload '" + value +
                                            "' (see --list-workloads)");
                curWl.spec.params = base->params;
                curWl.haveParams = true;
            } else if (key == "archetype") {
                if (!wl::setArchetype(curWl.spec, value)) {
                    std::string all;
                    for (const std::string &a : wl::archetypeNames())
                        all += (all.empty() ? "" : ", ") + a;
                    return fail(lineno, "unknown archetype '" + value +
                                            "' (expected one of " + all +
                                            ")");
                }
                curWl.haveParams = true;
            } else {
                if (!curWl.haveParams)
                    return fail(lineno,
                                "key '" + key +
                                    "' before the workload's "
                                    "'archetype' (or 'base') key");
                std::string err;
                if (!wl::applyWorkloadKey(curWl.spec, key, value, &err))
                    return fail(lineno, err);
            }
            continue;
        }

        if (section == "scenario") {
            if (key == "name") {
                cur.sc.name = value;
            } else if (key == "label") {
                cur.label = value;
                cur.explicitLabel = true;
            } else if (key == "base") {
                auto base = findScenario(value);
                if (!base)
                    return fail(lineno, "unknown base scenario '" + value +
                                            "' (see --list-scenarios)");
                cur.sc.config = base->config;
            } else {
                return fail(lineno,
                            "unknown key '" + key +
                                "' in [scenario] (expected name, base "
                                "or label)");
            }
            continue;
        }

        std::string err =
            applySectionKey(cur.sc.config, section, key, value);
        if (!err.empty())
            return fail(lineno, err);
    }

    std::string err = flush();
    if (!err.empty())
        return fail(lineno, err);
    if (out.scenarios.empty() && out.workloads.empty() &&
        out.error.empty())
        out.error = origin + ": no [scenario] or [workload] found";
    return out;
}

ScenarioParse
parseScenarioFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        ScenarioParse out;
        out.error = path + ": cannot open scenario file";
        return out;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseScenarioText(buf.str(), path);
}

std::string
serializeScenario(const Scenario &s)
{
    std::ostringstream os;
    os << "[scenario]\n";
    os << "name = " << s.name << "\n";
    if (s.config.label != s.name)
        os << "label = " << s.config.label << "\n";
    os << serializeBody(s.config);
    return os.str();
}

std::string
serializeScenarios(const std::vector<Scenario> &list)
{
    std::string out;
    for (size_t i = 0; i < list.size(); ++i) {
        if (i)
            out += "\n";
        out += serializeScenario(list[i]);
    }
    return out;
}

std::string
configHash(const SimConfig &cfg)
{
    // FNV-1a 64 over the canonical body: stable across runs, label-
    // independent, and sensitive to every covered field.
    std::string body = serializeBody(cfg);
    u64 h = 0xcbf29ce484222325ull;
    for (unsigned char c : body) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
applyScenarioKey(SimConfig &cfg, const std::string &dotted_key,
                 const std::string &value, std::string *err)
{
    size_t dot = dotted_key.find('.');
    if (dot == std::string::npos) {
        if (err)
            *err = "key '" + dotted_key +
                   "' is not of the form section.key";
        return false;
    }
    std::string msg = applySectionKey(cfg, dotted_key.substr(0, dot),
                                      dotted_key.substr(dot + 1), value);
    if (!msg.empty()) {
        if (err)
            *err = msg;
        return false;
    }
    return true;
}

} // namespace rsep::sim

#include "sim/simulator.hh"

#include <chrono>

#include "common/stats.hh"
#include "core/spec_engine.hh"

namespace rsep::sim
{

double
RunResult::ipcHmean() const
{
    std::vector<double> v;
    v.reserve(phases.size());
    for (const auto &ph : phases)
        v.push_back(ph.ipc);
    return harmonicMean(v);
}

double
RunResult::ratioOfCommitted(StatCounter core::PipelineStats::* member) const
{
    u64 insts = sum(&core::PipelineStats::committedInsts);
    if (insts == 0)
        return 0.0;
    return static_cast<double>(sum(member)) / static_cast<double>(insts);
}

PhaseResult
runPhase(const SimConfig &cfg, const std::string &bench_name, u32 phase)
{
    auto t0 = std::chrono::steady_clock::now();
    wl::Workload w = wl::makeWorkload(bench_name);
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, phase);

    core::Pipeline pipe(cfg.core, cfg.mech, emu,
                        cfg.seed ^ (0x9e37 * (phase + 1)));
    pipe.run(cfg.warmupInsts);
    pipe.resetStats();
    pipe.run(cfg.measureInsts);

    PhaseResult pr;
    pr.stats = pipe.stats();
    pr.ipc = pr.stats.ipc();
    for (const core::SpeculationEngine *eng : pipe.engines())
        for (const auto &entry : eng->statEntries())
            pr.engineStats.emplace_back("engine." + eng->name() + "." +
                                            entry.name,
                                        entry.counter->value());
    pr.wallMicros = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return pr;
}

void
accountPhaseTiming(RunTiming &timing, const PhaseResult &pr)
{
    timing.wallMicros += pr.wallMicros;
    if (pr.fromCache)
        ++timing.cacheHits;
    else
        ++timing.cellsRun;
}

RunResult
runWorkload(const SimConfig &cfg, const std::string &bench_name)
{
    RunResult out;
    out.benchmark = bench_name;
    out.configLabel = cfg.label;
    for (u32 phase = 0; phase < cfg.checkpoints; ++phase) {
        out.phases.push_back(runPhase(cfg, bench_name, phase));
        accountPhaseTiming(out.timing, out.phases.back());
    }
    return out;
}

double
speedupPct(const RunResult &a, const RunResult &b)
{
    double base = b.ipcHmean();
    if (base <= 0.0)
        return 0.0;
    return (a.ipcHmean() / base - 1.0) * 100.0;
}

} // namespace rsep::sim

#include "sim/simulator.hh"

#include <chrono>
#include <filesystem>

#include "common/logging.hh"
#include "common/stats.hh"
#include "core/spec_engine.hh"
#include "wl/trace_cache.hh"
#include "wl/trace_io.hh"
#include "wl/workload_spec.hh"

namespace rsep::sim
{

double
RunResult::ipcHmean() const
{
    std::vector<double> v;
    v.reserve(phases.size());
    for (const auto &ph : phases)
        v.push_back(ph.ipc);
    return harmonicMean(v);
}

double
RunResult::ratioOfCommitted(StatCounter core::PipelineStats::* member) const
{
    u64 insts = sum(&core::PipelineStats::committedInsts);
    if (insts == 0)
        return 0.0;
    return static_cast<double>(sum(member)) / static_cast<double>(insts);
}

namespace
{

/**
 * Slack records appended after a recording run: a later replay under a
 * config with a slightly deeper fetch lookahead (bigger ROB/front-end,
 * different squash pattern) may pull a few more records than the
 * recording config did. Generously above any lookahead the Table I
 * core family can reach, and cheap (~200KB per trace).
 */
constexpr u64 traceRecordSlack = 8192;

/** The timing run itself, identical for every source kind. */
PhaseResult
runTimedPhase(const SimConfig &cfg, wl::TraceSource &src, u32 phase,
              u64 sample_every)
{
    core::Pipeline pipe(cfg.core, cfg.mech, src,
                        cfg.seed ^ (0x9e37 * (phase + 1)));
    pipe.run(cfg.warmupInsts);
    pipe.resetStats();
    // Sampling covers exactly the measurement run: attach after the
    // stats reset so cycle 0 of the series is cycle 0 of measurement.
    core::StatSampler sampler(sample_every ? sample_every : 1);
    if (sample_every)
        pipe.attachSampler(&sampler);
    pipe.run(cfg.measureInsts);
    if (sample_every)
        pipe.finishSampling();

    PhaseResult pr;
    if (sample_every)
        pr.samples = sampler.rows();
    pr.stats = pipe.stats();
    pr.ipc = pr.stats.ipc();
    for (const core::SpeculationEngine *eng : pipe.engines())
        for (const auto &entry : eng->statEntries())
            pr.engineStats.emplace_back("engine." + eng->name() + "." +
                                            entry.name,
                                        entry.counter->value());
    return pr;
}

} // namespace

PhaseResult
runPhase(const SimConfig &cfg, const std::string &bench_name, u32 phase,
         const TraceIoOptions &trace_io, u64 sample_every)
{
    auto t0 = std::chrono::steady_clock::now();
    auto finish = [&](PhaseResult pr) {
        pr.wallMicros = static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return pr;
    };

    // ---- replay path: no emulator, no memory init ----
    if (!trace_io.replayDir.empty()) {
        std::optional<wl::WorkloadSpec> spec =
            wl::findWorkloadSpec(bench_name);
        if (!spec)
            rsep_fatal("replay: unknown workload '%s' (scenario-defined "
                       "workloads must be registered before the run)",
                       bench_name.c_str());
        std::string path =
            wl::tracePath(trace_io.replayDir, bench_name, phase);
        std::error_code ec;
        if (!std::filesystem::exists(path, ec)) {
            if (trace_io.recordDir.empty())
                rsep_fatal("replay: %s: no trace recorded for (%s, phase "
                           "%u); record it first with --record-trace",
                           path.c_str(), bench_name.c_str(), phase);
            // Fall through: live-emulate (and record) the missing cell.
        } else {
            // One decode per (path, checksum) process-wide: every arm
            // of a sweep replaying this cell shares the same immutable
            // DecodedTrace snapshot out of the cache.
            auto tload = std::chrono::steady_clock::now();
            wl::DecodedTraceCache::Result cached =
                wl::traceCache().get(path);
            u64 load_micros = static_cast<u64>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - tload)
                    .count());
            if (!cached.ok())
                rsep_fatal("replay: %s (re-record the trace)",
                           cached.error.c_str());
            const wl::TraceHeader &header = cached.trace->header;
            if (header.workload != bench_name || header.phase != phase ||
                header.workloadHash != wl::workloadHash(*spec))
                rsep_fatal("replay: %s: trace identity (%s, phase %u, "
                           "hash %s) does not match the requested cell "
                           "(%s, phase %u, hash %s)",
                           path.c_str(), header.workload.c_str(),
                           header.phase, header.workloadHash.c_str(),
                           bench_name.c_str(), phase,
                           wl::workloadHash(*spec).c_str());
            wl::Workload w = wl::buildWorkload(*spec);
            wl::ReplayTraceSource src(cached.trace, w.program, path);
            PhaseResult pr = runTimedPhase(cfg, src, phase, sample_every);
            pr.replayed = true;
            pr.traceLoadMicros = load_micros;
            pr.traceDecodeHit = cached.hit;
            return finish(std::move(pr));
        }
    }

    // ---- live-emulation path (optionally recording) ----
    wl::Workload w = wl::makeWorkload(bench_name);
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, phase);

    if (!trace_io.recordDir.empty()) {
        wl::RecordingTraceSource rec(emu);
        PhaseResult pr = runTimedPhase(cfg, rec, phase, sample_every);
        rec.recordSlack(traceRecordSlack);
        wl::TraceHeader header;
        header.workload = bench_name;
        std::optional<wl::WorkloadSpec> spec =
            wl::findWorkloadSpec(bench_name);
        header.workloadHash =
            spec ? wl::workloadHash(*spec) : std::string(16, '0');
        header.phase = phase;
        std::string path =
            wl::tracePath(trace_io.recordDir, bench_name, phase);
        std::string err;
        if (!rec.write(path, header, &err))
            rsep_warn("record-trace: %s", err.c_str());
        return finish(std::move(pr));
    }

    return finish(runTimedPhase(cfg, emu, phase, sample_every));
}

void
accountPhaseTiming(RunTiming &timing, const PhaseResult &pr)
{
    timing.wallMicros += pr.wallMicros;
    if (pr.fromCache)
        ++timing.cacheHits;
    else
        ++timing.cellsRun;
    timing.traceLoadMicros += pr.traceLoadMicros;
    if (pr.replayed) {
        if (pr.traceDecodeHit)
            ++timing.traceDecodeHits;
        else
            ++timing.traceDecodeMisses;
    }
}

RunResult
runWorkload(const SimConfig &cfg, const std::string &bench_name,
            const TraceIoOptions &trace_io, u64 sample_every)
{
    RunResult out;
    out.benchmark = bench_name;
    out.configLabel = cfg.label;
    for (u32 phase = 0; phase < cfg.checkpoints; ++phase) {
        out.phases.push_back(
            runPhase(cfg, bench_name, phase, trace_io, sample_every));
        accountPhaseTiming(out.timing, out.phases.back());
    }
    return out;
}

double
speedupPct(const RunResult &a, const RunResult &b)
{
    double base = b.ipcHmean();
    if (base <= 0.0)
        return 0.0;
    return (a.ipcHmean() / base - 1.0) * 100.0;
}

} // namespace rsep::sim

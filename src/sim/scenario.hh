/**
 * @file
 * Scenario layer: a named registry of the paper's experiment arms plus
 * a text scenario format, so new arms and parameter sweeps need no
 * rebuild.
 *
 * A scenario is a named SimConfig. The built-in registry exposes every
 * factory arm (`SimConfig::baseline()`, `rsepIdeal()`, ...) under its
 * config label, with the old factory spelling as an alias. The text
 * format is `key = value` lines in sections:
 *
 *     # comment (';' also starts a comment)
 *     [scenario]
 *     name = my-arm
 *     base = rsep              # optional: start from a registered arm
 *     [sim]                    # run sizing (SimConfig scalars)
 *     checkpoints = 2
 *     [core]                   # CoreParams fields
 *     rob_size = 192
 *     [mech]                   # MechConfig toggles
 *     equality_pred = true
 *     [rsep]                   # RsepConfig fields
 *     history_depth = 128
 *     validation = issue2x-any-fu
 *
 * Each `[scenario]` header starts a new scenario, so one file can hold
 * a whole sweep. The key set per section is generated from the
 * `visitFields` introspection hooks on the config structs — parser,
 * serializer and config hash can never drift apart.
 *
 * A file may also carry `[workload]` blocks — the workload axis of the
 * same idea (see wl/workload_spec.hh): define or override benchmarks
 * without a rebuild. A workload block names a kernel archetype (or a
 * `base` workload to start from) and then sets that archetype's
 * parameter keys:
 *
 *     [workload]
 *     name = mcf-big
 *     base = mcf               # start from a registered workload, or
 *     archetype = pointer_chase#   pick an archetype's defaults
 *     nodes = 262144           # archetype parameter keys (kernels.hh)
 *
 * Parsed workload definitions are returned in ScenarioParse::workloads
 * (file order); registering them is the driver's decision.
 */

#ifndef RSEP_SIM_SCENARIO_HH
#define RSEP_SIM_SCENARIO_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/sim_config.hh"
#include "wl/workload_spec.hh"

namespace rsep::sim
{

/** A named experiment arm. */
struct Scenario
{
    std::string name;
    SimConfig config; ///< config.label mirrors name unless overridden.
};

/** Registry metadata for --list-scenarios. */
struct ScenarioInfo
{
    std::string name;                 ///< canonical (the config label).
    std::vector<std::string> aliases; ///< e.g. the factory spelling.
    std::string description;
};

/** Every built-in scenario, in figure order. */
const std::vector<ScenarioInfo> &registeredScenarios();

/**
 * Look up a built-in scenario by canonical name or alias. The config
 * is built on demand (factories apply RSEP_* env overrides at call
 * time). Returns nullopt when unknown.
 */
std::optional<Scenario> findScenario(const std::string &name);

/** Outcome of parsing scenario text: arms and workload definitions,
 *  or a diagnostic. A file holding only [workload] blocks is valid. */
struct ScenarioParse
{
    std::vector<Scenario> scenarios;
    /** `[workload]` definitions, in file order (not yet registered). */
    std::vector<wl::WorkloadSpec> workloads;
    std::string error; ///< "origin:line: message"; empty on success.

    bool ok() const { return error.empty(); }
};

/** Parse scenario text. @p origin labels diagnostics (e.g. the path). */
ScenarioParse parseScenarioText(const std::string &text,
                                const std::string &origin = "<string>");

/** Parse a scenario file from disk. */
ScenarioParse parseScenarioFile(const std::string &path);

/**
 * Canonical serialization: every covered field, in introspection
 * order, with canonical value spellings. parse(serialize(s)) yields a
 * scenario with an identical config (the round-trip invariant the
 * golden test pins).
 */
std::string serializeScenario(const Scenario &s);
std::string serializeScenarios(const std::vector<Scenario> &list);

/**
 * Stable 64-bit FNV-1a hash of the canonical serialization of the
 * config body (name/label excluded), as 16 hex digits. Identical
 * configs hash identically whatever their provenance — the key the
 * result-caching/sharding roadmap item will use.
 */
std::string configHash(const SimConfig &cfg);

/**
 * Apply one dotted override, e.g. ("rsep.history_depth", "128") — the
 * programmatic face of the file format, used by the sweep drivers.
 * On failure returns false and, when @p err is non-null, stores the
 * diagnostic.
 */
bool applyScenarioKey(SimConfig &cfg, const std::string &dotted_key,
                      const std::string &value, std::string *err = nullptr);

} // namespace rsep::sim

#endif // RSEP_SIM_SCENARIO_HH

/**
 * @file
 * `.rts` time-series sample files: the on-disk form of one cell's
 * StatSample series (see core/sampler.hh). The envelope mirrors the
 * `.rtr` trace format — a line-oriented text header naming the cell
 * identity, a LEB128-varint binary payload, and a trailing FNV-1a
 * checksum — and writes publish atomically (temp + rename), so a
 * concurrent reader sees the old series or the new one, never a torn
 * file.
 *
 * The header echoes the schema version AND the comma-joined field list
 * the payload was written under; a reader whose compiled-in schema
 * disagrees rejects the file with a diagnostic instead of silently
 * misinterpreting columns.
 */

#ifndef RSEP_SIM_SAMPLE_IO_HH
#define RSEP_SIM_SAMPLE_IO_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.hh"

namespace rsep::sim
{

/** `.rts` suffix of sample-series files. */
inline constexpr const char *sampleFileExtension = ".rts";

/** Identity and provenance of one cell's sample series. */
struct SampleSeriesHeader
{
    unsigned version = core::sampleSchemaVersion;
    std::string workload;   ///< benchmark name.
    std::string scenario;   ///< config label (scenario arm name).
    std::string configHash; ///< 16-hex config identity.
    u32 phase = 0;          ///< checkpoint index.
    u64 period = 0;         ///< sample period in cycles.
    u64 rows = 0;           ///< row count (filled by the serializer).
};

/** Canonical sample-file path for one cell:
 *  `<dir>/<workload>-<config_hash>-p<phase>.rts` (components
 *  sanitized; the hash keeps arms of a sweep apart). */
std::string samplePath(const std::string &dir, const std::string &workload,
                       const std::string &config_hash, u32 phase);

/** Serialize header + rows into the full `.rts` byte string. */
std::string serializeSamples(const SampleSeriesHeader &header,
                             const std::vector<core::StatSample> &rows);

/** Result of parsing a `.rts` image. */
struct SamplesParse
{
    SampleSeriesHeader header;
    std::vector<core::StatSample> rows;
    std::string error; ///< "origin: message"; empty on success.

    bool ok() const { return error.empty(); }
};

/** Parse a full `.rts` image (checksum-verified). @p header_only stops
 *  after the text header — payload untouched, rows left empty. */
SamplesParse parseSamplesText(std::string_view text,
                              const std::string &origin,
                              bool header_only = false);

/** Load and parse @p path. */
SamplesParse parseSamplesFile(const std::string &path,
                              bool header_only = false);

/** Write a `.rts` file atomically (temp + rename, directories created
 *  as needed). False + @p err on failure. */
bool writeSamplesFile(const std::string &path,
                      const SampleSeriesHeader &header,
                      const std::vector<core::StatSample> &rows,
                      std::string *err = nullptr);

/** The identity-column prefix every sample CSV row carries. */
inline constexpr const char *sampleCsvIdColumns =
    "benchmark,scenario,config_hash,phase";

/** Write rows as CSV: the identity columns then one column per
 *  StatSample field in schema order. @p with_header controls the
 *  header line (off when appending series to a merged CSV). */
void writeSamplesCsv(std::ostream &os, const SampleSeriesHeader &header,
                     const std::vector<core::StatSample> &rows,
                     bool with_header = true);

} // namespace rsep::sim

#endif // RSEP_SIM_SAMPLE_IO_HH

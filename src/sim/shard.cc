#include "sim/shard.hh"

#include "common/env.hh"
#include "sim/scenario.hh"

namespace rsep::sim
{

u64
cellIdentityHash(const std::string &benchmark,
                 const std::string &config_hash)
{
    // FNV-1a 64 over "benchmark NUL config_hash". The NUL separator
    // keeps ("ab", "c") and ("a", "bc") distinct.
    u64 h = 0xcbf29ce484222325ull;
    auto mix = [&](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 0x100000001b3ull;
        }
        h *= 0x100000001b3ull; // NUL terminator (h ^= 0 is a no-op).
    };
    mix(benchmark);
    mix(config_hash);
    return h;
}

unsigned
shardOf(const std::string &benchmark, const std::string &config_hash,
        unsigned shard_count)
{
    if (shard_count <= 1)
        return 0;
    return static_cast<unsigned>(cellIdentityHash(benchmark, config_hash) %
                                 shard_count);
}

bool
parseShardValue(const std::string &s, ShardSpec &shard, std::string &err)
{
    size_t slash = s.find('/');
    if (slash == std::string::npos) {
        err = "invalid shard spec '" + s + "' (expected INDEX/COUNT, "
              "e.g. 0/4)";
        return false;
    }
    u64 index = 0, count = 0;
    if (!parseU64(s.substr(0, slash), index) ||
        !parseU64(s.substr(slash + 1), count)) {
        err = "invalid shard spec '" + s +
              "' (INDEX and COUNT must be unsigned integers)";
        return false;
    }
    if (count == 0) {
        err = "invalid shard spec '" + s + "' (COUNT must be >= 1)";
        return false;
    }
    if (count > maxShards) {
        err = "shard count '" + s + "' exceeds the ceiling of " +
              std::to_string(maxShards);
        return false;
    }
    if (index >= count) {
        err = "invalid shard spec '" + s +
              "' (INDEX is 0-based and must be < COUNT)";
        return false;
    }
    shard.index = static_cast<unsigned>(index);
    shard.count = static_cast<unsigned>(count);
    return true;
}

ShardPlan
planShard(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &benchmarks,
          const ShardSpec &shard)
{
    ShardPlan plan;
    plan.configHashes.reserve(configs.size());
    for (const SimConfig &cfg : configs)
        plan.configHashes.push_back(configHash(cfg));

    plan.selected.assign(benchmarks.size(),
                         std::vector<bool>(configs.size(), false));
    plan.totalRuns = benchmarks.size() * configs.size();
    for (size_t b = 0; b < benchmarks.size(); ++b) {
        for (size_t c = 0; c < configs.size(); ++c) {
            bool mine = shardOf(benchmarks[b], plan.configHashes[c],
                                shard.count) == shard.index;
            plan.selected[b][c] = mine;
            if (mine)
                ++plan.selectedRuns;
        }
    }
    return plan;
}

} // namespace rsep::sim

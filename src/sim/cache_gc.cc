#include "sim/cache_gc.hh"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "sim/result_cache.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{

std::string
cellFileConfigHash(const std::string &filename)
{
    return ResultCache::fileConfigHash(filename);
}

std::string
runCacheGc(const GcOptions &opts, GcReport &report)
{
    if (opts.cacheDir.empty())
        return "no cache directory given";
    std::error_code ec;
    if (!fs::is_directory(opts.cacheDir, ec))
        return opts.cacheDir + ": not a directory";

    struct Survivor
    {
        fs::path path;
        u64 bytes;
        fs::file_time_type mtime;
    };
    std::vector<Survivor> survivors;

    auto removeFile = [&](const fs::path &p, u64 bytes, u64 &counter) {
        if (!opts.dryRun) {
            std::error_code rec;
            fs::remove(p, rec);
            if (rec)
                return false;
        }
        ++counter;
        report.removedBytes += bytes;
        return true;
    };

    fs::recursive_directory_iterator it(opts.cacheDir, ec), end;
    if (ec)
        return opts.cacheDir + ": " + ec.message();
    for (; it != end; it.increment(ec)) {
        if (ec)
            return opts.cacheDir + ": " + ec.message();
        if (!it->is_regular_file(ec))
            continue;
        const fs::path &p = it->path();
        std::string name = p.filename().string();
        u64 bytes = static_cast<u64>(it->file_size(ec));
        if (ec)
            bytes = 0;

        if (name.size() > 8 &&
            name.substr(name.size() - 8) == ".corrupt") {
            // Quarantine debris: never read again, always collectable.
            removeFile(p, bytes, report.corruptRemoved);
            continue;
        }
        std::string hash = cellFileConfigHash(name);
        if (hash.empty())
            continue; // not a cache record: leave it alone.
        ++report.scannedFiles;
        report.scannedBytes += bytes;
        if (!opts.liveHashes.empty() && !opts.liveHashes.count(hash)) {
            removeFile(p, bytes, report.staleRemoved);
            continue;
        }
        survivors.push_back({p, bytes, it->last_write_time(ec)});
    }

    u64 surviving_bytes = 0;
    for (const Survivor &s : survivors)
        surviving_bytes += s.bytes;

    if (opts.maxBytes > 0 && surviving_bytes > opts.maxBytes) {
        // LRU by mtime: evict the oldest records until the cap fits.
        std::sort(survivors.begin(), survivors.end(),
                  [](const Survivor &a, const Survivor &b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.path.string() < b.path.string();
                  });
        size_t evicted = 0;
        for (const Survivor &s : survivors) {
            if (surviving_bytes <= opts.maxBytes)
                break;
            if (removeFile(s.path, s.bytes, report.lruRemoved))
                surviving_bytes -= s.bytes;
            ++evicted;
        }
        survivors.erase(survivors.begin(),
                        survivors.begin() +
                            static_cast<std::ptrdiff_t>(evicted));
    }

    report.keptFiles = survivors.size();
    report.keptBytes = surviving_bytes;
    return {};
}

} // namespace rsep::sim

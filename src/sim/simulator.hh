/**
 * @file
 * Per-workload simulation driver: runs the configured number of
 * checkpoints (seeded phases), each with warmup + measurement, and
 * aggregates per the paper's methodology (harmonic mean of IPCs,
 * Section V).
 */

#ifndef RSEP_SIM_SIMULATOR_HH
#define RSEP_SIM_SIMULATOR_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/sim_config.hh"
#include "wl/suite.hh"

namespace rsep::sim
{

/** Result of one checkpoint (phase). */
struct PhaseResult
{
    double ipc = 0.0;
    core::PipelineStats stats;
    /** Engine-local counters (SpeculationEngine::statEntries()),
     *  snapshot at end of measurement as "engine.<name>.<counter>" —
     *  the per-engine rows of the stat-export layer. */
    std::vector<std::pair<std::string, u64>> engineStats;
};

/** Result of one (workload, config) run across checkpoints. */
struct RunResult
{
    std::string benchmark;
    std::string configLabel;
    std::vector<PhaseResult> phases;

    /** Harmonic mean of per-checkpoint IPCs (paper Section V). */
    double ipcHmean() const;

    /** Sum of a counter over phases, via a member pointer. */
    u64
    sum(StatCounter core::PipelineStats::* member) const
    {
        u64 total = 0;
        for (const auto &ph : phases)
            total += (ph.stats.*member).value();
        return total;
    }

    /** Ratio of summed counter to summed committed instructions. */
    double ratioOfCommitted(StatCounter core::PipelineStats::* member) const;
};

/**
 * Run one checkpoint of @p bench_name under @p cfg. Checkpoints are
 * seeded independently (deterministic per-cell seeding), so any
 * (benchmark, config, checkpoint) cell can run on any thread and
 * produce the same PhaseResult — the unit of work of the parallel
 * matrix runner.
 */
PhaseResult runPhase(const SimConfig &cfg, const std::string &bench_name,
                     u32 phase);

/** Run @p bench_name under @p cfg (all checkpoints, serially). */
RunResult runWorkload(const SimConfig &cfg, const std::string &bench_name);

/** Speedup of @p a over @p b in percent. */
double speedupPct(const RunResult &a, const RunResult &b);

} // namespace rsep::sim

#endif // RSEP_SIM_SIMULATOR_HH

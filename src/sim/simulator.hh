/**
 * @file
 * Per-workload simulation driver: runs the configured number of
 * checkpoints (seeded phases), each with warmup + measurement, and
 * aggregates per the paper's methodology (harmonic mean of IPCs,
 * Section V).
 */

#ifndef RSEP_SIM_SIMULATOR_HH
#define RSEP_SIM_SIMULATOR_HH

#include <string>
#include <utility>
#include <vector>

#include "core/sampler.hh"
#include "sim/sim_config.hh"
#include "wl/suite.hh"

namespace rsep::sim
{

/** Result of one checkpoint (phase). */
struct PhaseResult
{
    double ipc = 0.0;
    core::PipelineStats stats;
    /** Engine-local counters (SpeculationEngine::statEntries()),
     *  snapshot at end of measurement as "engine.<name>.<counter>" —
     *  the per-engine rows of the stat-export layer. */
    std::vector<std::pair<std::string, u64>> engineStats;
    /** Wall-clock cost of simulating this cell. For a result served
     *  from the result cache this is the *original* simulation cost
     *  (the price the cache saved), not the load time. */
    u64 wallMicros = 0;
    bool fromCache = false; ///< served by ResultCache, not simulated.
    /** Simulated over a recorded-trace replay instead of live
     *  emulation (transient, not part of the cached record — the
     *  replay invariant is that the results are identical). */
    bool replayed = false;
    /** Wall-clock spent getting the trace into replayable form (cache
     *  lookup + decode on a miss) — a component of wallMicros, split
     *  out so `--timings` shows data-path cost next to simulation
     *  cost. Transient, like replayed. */
    u64 traceLoadMicros = 0;
    /** The replayed trace came out of the shared DecodedTraceCache
     *  already decoded (transient; meaningful only when replayed). */
    bool traceDecodeHit = false;
    /** Time-series rows of the measurement run (`--sample-every`);
     *  empty when sampling is off. Transient, never part of the cached
     *  record: a cached cell cannot produce samples, which is why the
     *  matrix runner bypasses the result cache in sampling mode. */
    std::vector<core::StatSample> samples;
};

/**
 * Recorded-trace options of a run (`--record-trace` / `--replay-trace`
 * on every driver; see wl/trace_io.hh for the `.rtr` format).
 *
 * Replay: a cell's trace is loaded from `replayDir` and the pipeline
 * runs without a functional emulator; the stat dump is byte-identical
 * to the live-emulation run. A missing trace is fatal unless
 * `recordDir` is also set, in which case the cell falls back to live
 * emulation and records — so `--replay-trace D --record-trace D` is an
 * idempotent "use traces, fill the gaps" sweep mode. A present but
 * invalid or mismatched trace is always fatal (never silently
 * re-emulated).
 *
 * Record: live-emulated cells tee their stream and write
 * `recordDir/<workload>-p<phase>.rtr` (atomic) when the cell ends.
 */
struct TraceIoOptions
{
    std::string recordDir;
    std::string replayDir;

    bool active() const { return !recordDir.empty() || !replayDir.empty(); }
};

/**
 * Wall-clock and cache accounting of one run, for the scaling study.
 * Deliberately separate from PipelineStats: these counters are
 * host-dependent, so the stat-export layer only emits them on request
 * (`--timings`) — the default dump stays bit-reproducible.
 */
struct RunTiming
{
    StatCounter wallMicros;   ///< summed per-cell simulation cost.
    StatCounter cellsRun;     ///< cells actually simulated.
    StatCounter cacheHits;    ///< cells served by the result cache.
    StatCounter cacheMisses;  ///< cells the cache could not serve.
    /** 1 when the matrix ran at per-window steal granularity
     *  (`--steal window`), 0 for per-cell — recorded so merged
     *  `--timings` summaries stay self-describing about how their
     *  wall-clock numbers were produced. */
    StatCounter stealWindow;
    /** Trace data-path cost: wall-clock spent loading traces for
     *  replayed cells (decode on a miss, lookup on a hit) — the slice
     *  of wallMicros the decoded-trace cache exists to shrink. */
    StatCounter traceLoadMicros;
    /** Replayed cells whose trace was already decoded in the shared
     *  DecodedTraceCache / had to be decoded fresh. hits > 0 across a
     *  multi-arm sweep is the decode-once-replay-many evidence. */
    StatCounter traceDecodeHits;
    StatCounter traceDecodeMisses;
};

/** Stat-introspection hook (mirrors visitStats on PipelineStats). */
template <class V>
void
visitStats(RunTiming &t, V &&v)
{
    v("timing.wall_micros", t.wallMicros);
    v("timing.cells_run", t.cellsRun);
    v("timing.cache_hits", t.cacheHits);
    v("timing.cache_misses", t.cacheMisses);
    v("timing.steal_window", t.stealWindow);
    v("timing.trace_load_micros", t.traceLoadMicros);
    v("timing.trace_decode_hits", t.traceDecodeHits);
    v("timing.trace_decode_misses", t.traceDecodeMisses);
}

/** Result of one (workload, config) run across checkpoints. */
struct RunResult
{
    std::string benchmark;
    std::string configLabel;
    std::vector<PhaseResult> phases;
    RunTiming timing;
    /** False when a sharded matrix assigned this run to another shard
     *  (the phases are then absent, and stat export skips the row). */
    bool inShard = true;

    /** Harmonic mean of per-checkpoint IPCs (paper Section V). */
    double ipcHmean() const;

    /** Sum of a counter over phases, via a member pointer. */
    u64
    sum(StatCounter core::PipelineStats::* member) const
    {
        u64 total = 0;
        for (const auto &ph : phases)
            total += (ph.stats.*member).value();
        return total;
    }

    /** Ratio of summed counter to summed committed instructions. */
    double ratioOfCommitted(StatCounter core::PipelineStats::* member) const;
};

/**
 * Run one checkpoint of @p bench_name under @p cfg. Checkpoints are
 * seeded independently (deterministic per-cell seeding), so any
 * (benchmark, config, checkpoint) cell can run on any thread and
 * produce the same PhaseResult — the unit of work of the parallel
 * matrix runner.
 *
 * @p sample_every > 0 attaches a StatSampler to the measurement run
 * and fills PhaseResult::samples with one row per @p sample_every
 * cycles (plus the final partial row). Sampling reads only
 * deterministic architectural counters, so the rows — like the stats —
 * are bit-identical at any thread count or steal mode. It is a
 * run-level knob, NOT part of SimConfig: it must not perturb config
 * hashes, cached results or golden dumps.
 */
PhaseResult runPhase(const SimConfig &cfg, const std::string &bench_name,
                     u32 phase, const TraceIoOptions &trace_io = {},
                     u64 sample_every = 0);

/**
 * Run @p bench_name under @p cfg (all checkpoints, serially). Routes
 * the same per-run options as the matrix path through runPhase, so
 * serial callers keep `--replay-trace`/`--record-trace` and
 * `--sample-every` semantics instead of silently losing them
 * (sampled rows land in PhaseResult::samples; flushing them is the
 * caller's decision, as in runMatrix).
 */
RunResult runWorkload(const SimConfig &cfg, const std::string &bench_name,
                      const TraceIoOptions &trace_io = {},
                      u64 sample_every = 0);

/** Fold one finished cell into a run's timing/cache accounting
 *  (cache misses are counted by the matrix runner, which knows
 *  whether a cache was configured at all). */
void accountPhaseTiming(RunTiming &timing, const PhaseResult &pr);

/** Speedup of @p a over @p b in percent. */
double speedupPct(const RunResult &a, const RunResult &b);

} // namespace rsep::sim

#endif // RSEP_SIM_SIMULATOR_HH

/**
 * @file
 * Unified stat-export layer: flatten an experiment matrix into rows
 * keyed by (benchmark, scenario name, config hash) and write them
 * through a pluggable StatSink (human table, CSV, JSON). Counters
 * cover every PipelineStats field (via its visitStats introspection
 * hook) plus the per-engine SpeculationEngine::statEntries() snapshots
 * — the machine-readable matrix dump behind `--csv` / `--json`.
 */

#ifndef RSEP_SIM_STAT_EXPORT_HH
#define RSEP_SIM_STAT_EXPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.hh"
#include "sim/sample_io.hh"

namespace rsep::sim
{

/** One (benchmark, scenario) cell of the matrix, flattened. */
struct StatRow
{
    std::string benchmark;
    std::string scenario;   ///< config label (scenario name).
    std::string configHash; ///< stable 16-hex config identity.
    size_t checkpoints = 0;
    double ipcHmean = 0.0;
    /** (name, value) pairs summed over checkpoints: pipeline counters,
     *  commit_group_producers_<b> histogram buckets, engine.* and —
     *  only when timings were requested — timing.*. Canonical rows
     *  keep this sorted by name. */
    std::vector<std::pair<std::string, u64>> counters;
};

/**
 * Canonical dump order: rows sorted by (benchmark, scenario, config
 * hash), counters within each row sorted by name. Both the collector
 * and the merge tool normalise through this, which is what makes a
 * sharded-and-merged dump byte-identical to the unsharded one.
 */
void canonicalizeStatRows(std::vector<StatRow> &rows);

/**
 * Flatten runMatrix output into canonical rows. @p configs parallels
 * MatrixRow::byConfig. Runs owned by another shard (inShard = false)
 * produce no row. @p include_timings adds the host-dependent timing.*
 * counters (RunTiming) — off by default so dumps of the same matrix
 * are bit-reproducible across runs, shards and cache temperatures.
 */
std::vector<StatRow>
collectStatRows(const std::vector<SimConfig> &configs,
                const std::vector<MatrixRow> &rows,
                bool include_timings = false);

/** A stat-export format. */
class StatSink
{
  public:
    virtual ~StatSink() = default;
    virtual void write(std::ostream &os,
                       const std::vector<StatRow> &rows) const = 0;
};

/** Human-readable per-cell dump (the `--stats` matrix table). */
class TableStatSink : public StatSink
{
  public:
    /** @p engines_only drops the (many) raw pipeline counters and
     *  keeps the per-engine ones. */
    explicit TableStatSink(bool engines_only = true)
        : enginesOnly(engines_only)
    {
    }
    void write(std::ostream &os,
               const std::vector<StatRow> &rows) const override;

  private:
    bool enginesOnly;
};

/** RFC-4180-style CSV; one column per counter (union across rows). */
class CsvStatSink : public StatSink
{
  public:
    void write(std::ostream &os,
               const std::vector<StatRow> &rows) const override;
};

/** JSON array of row objects with a nested "counters" map. */
class JsonStatSink : public StatSink
{
  public:
    void write(std::ostream &os,
               const std::vector<StatRow> &rows) const override;
};

/** Write rows to @p path; false + @p err on I/O failure. */
bool writeStatsFile(const std::string &path, const StatSink &sink,
                    const std::vector<StatRow> &rows,
                    std::string *err = nullptr);

/**
 * Export sink of the time-series sampling mode (`--sample-every`):
 * collects per-cell StatSample series during a matrix run and flushes
 * each to `<dir>/<bench>-<confighash>-p<phase>.rts` (atomic, see
 * sample_io.hh) plus a sibling `.csv` for direct plotting. One cell =
 * one file, so sharded runs compose by directory union exactly like
 * recorded traces, and `rsep_samples merge` pools shards' series the
 * way rsep_merge pools stat dumps.
 *
 * Not thread-safe: the matrix runner queues cells post-barrier on the
 * coordinating thread (sample rows are deterministic, so the flush
 * order never affects file contents).
 */
class TimeSeriesSink
{
  public:
    explicit TimeSeriesSink(std::string dir) : outDir(std::move(dir)) {}

    const std::string &dir() const { return outDir; }
    size_t queued() const { return series.size(); }

    /** Queue one cell's series (empty series are dropped — a cell
     *  below one sample period still flushes its final partial row,
     *  so empty means sampling was off for the cell). */
    void add(SampleSeriesHeader header,
             std::vector<core::StatSample> rows);

    /** Write every queued series; returns the number of files written
     *  (`.rts` count) or fails fast with @p err. */
    bool flush(std::string *err = nullptr);

  private:
    std::string outDir;
    std::vector<std::pair<SampleSeriesHeader,
                          std::vector<core::StatSample>>>
        series;
};

} // namespace rsep::sim

#endif // RSEP_SIM_STAT_EXPORT_HH

#include "sim/result_cache.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "core/pipeline.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{

namespace
{

/** Benchmark names are plain tokens, but never trust a path element. */
std::string
sanitized(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '-' || c == '+' || c == '_')
                   ? c
                   : '_';
    return out.empty() ? std::string("_") : out;
}

} // namespace

ResultCache::ResultCache(std::string dir) : root(std::move(dir))
{
    if (root.empty())
        return;
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec) {
        rsep_warn("cache-dir '%s': %s; caching disabled", root.c_str(),
                  ec.message().c_str());
        root.clear();
    }
}

std::string
ResultCache::cellPath(const CacheKey &key) const
{
    // One subdirectory per benchmark keeps directory sizes sane on a
    // full 29-benchmark x many-scenario sweep.
    return root + "/" + sanitized(key.benchmark) + "/" + key.configHash +
           "-p" + std::to_string(key.phase) + "-s" + hex64(key.seed) +
           ".cell";
}

namespace
{

bool
allHex(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (c < '0' || c > '9')
            return false;
    return true;
}

} // namespace

std::string
ResultCache::fileConfigHash(const std::string &filename)
{
    // The inverse of the cellPath naming just above:
    // <16-hex config hash>-p<digits>-s<16-hex seed>.cell
    constexpr const char *ext = ".cell";
    if (filename.size() < 16 + 2 + 1 + 2 + 16 + 5)
        return {};
    if (filename.substr(filename.size() - 5) != ext)
        return {};
    std::string stem = filename.substr(0, filename.size() - 5);
    std::string hash = stem.substr(0, 16);
    if (!allHex(hash) || stem.size() < 17 || stem[16] != '-' ||
        stem[17] != 'p')
        return {};
    size_t sdash = stem.rfind("-s");
    if (sdash == std::string::npos || sdash < 18)
        return {};
    if (!allDigits(stem.substr(18, sdash - 18)))
        return {};
    if (!allHex(stem.substr(sdash + 2)) || stem.size() - (sdash + 2) != 16)
        return {};
    return hash;
}

std::string
ResultCache::serializeRecord(const CacheKey &key, const PhaseResult &pr)
{
    std::ostringstream os;
    os << "rsep-cell-cache " << resultCacheVersion << "\n";
    os << "benchmark = " << key.benchmark << "\n";
    os << "config_hash = " << key.configHash << "\n";
    os << "phase = " << key.phase << "\n";
    os << "seed = " << hex64(key.seed) << "\n";
    // The IPC is stored bit-exactly: a cache hit must reproduce the
    // dump of the run that filled the cache byte for byte.
    os << "ipc_bits = " << hex64(std::bit_cast<u64>(pr.ipc)) << "\n";
    os << "wall_micros = " << pr.wallMicros << "\n";

    core::PipelineStats stats = pr.stats; // visitStats is non-const.
    visitStats(stats, [&](const char *name, StatCounter &c) {
        os << "stat " << name << " = " << c.value() << "\n";
    });
    const StatHistogram &h = stats.commitGroupProducers;
    os << "hist commit_group_producers " << h.buckets() << "\n";
    for (size_t b = 0; b < h.buckets(); ++b)
        os << "bucket " << b << " = " << h.bucket(b) << "\n";
    for (const auto &[name, value] : pr.engineStats)
        os << "engine " << name << " = " << value << "\n";
    return os.str();
}

std::string
ResultCache::parseRecord(const std::string &text, const CacheKey &key,
                         PhaseResult &out)
{
    std::istringstream is(text);
    std::string line;

    auto valueOf = [&](const std::string &l, const char *k,
                       std::string &v) {
        std::string prefix = std::string(k) + " = ";
        if (l.rfind(prefix, 0) != 0)
            return false;
        v = l.substr(prefix.size());
        return true;
    };

    if (!std::getline(is, line) ||
        line != "rsep-cell-cache " + std::to_string(resultCacheVersion))
        return "bad or unsupported record version";

    // Key echo: a record reached through the wrong filename (copied
    // caches, hash collisions) must not be served.
    std::string v;
    u64 seed = 0;
    if (!std::getline(is, line) || !valueOf(line, "benchmark", v) ||
        v != key.benchmark)
        return "benchmark echo mismatch";
    if (!std::getline(is, line) || !valueOf(line, "config_hash", v) ||
        v != key.configHash)
        return "config-hash echo mismatch";
    if (!std::getline(is, line) || !valueOf(line, "phase", v) ||
        v != std::to_string(key.phase))
        return "phase echo mismatch";
    if (!std::getline(is, line) || !valueOf(line, "seed", v) ||
        !parseHex64(v, seed) || seed != key.seed)
        return "seed echo mismatch";

    PhaseResult pr;
    pr.fromCache = true;
    u64 bits = 0;
    if (!std::getline(is, line) || !valueOf(line, "ipc_bits", v) ||
        !parseHex64(v, bits))
        return "bad ipc_bits";
    pr.ipc = std::bit_cast<double>(bits);
    if (!std::getline(is, line) || !valueOf(line, "wall_micros", v) ||
        !parseU64(v, pr.wallMicros))
        return "bad wall_micros";

    // Pipeline counters: the record must carry exactly the counter set
    // this binary introspects — a mismatch means the stat layout
    // drifted since the record was written.
    std::string err;
    visitStats(pr.stats, [&](const char *name, StatCounter &c) {
        if (!err.empty())
            return;
        std::string sv;
        if (!std::getline(is, line) ||
            !valueOf(line, (std::string("stat ") + name).c_str(), sv)) {
            err = std::string("missing counter '") + name + "'";
            return;
        }
        u64 val = 0;
        if (!parseU64(sv, val)) {
            err = std::string("bad value for counter '") + name + "'";
            return;
        }
        c.reset();
        c += val;
    });
    if (!err.empty())
        return err;

    StatHistogram &h = pr.stats.commitGroupProducers;
    if (!std::getline(is, line) ||
        line != "hist commit_group_producers " +
                    std::to_string(h.buckets()))
        return "histogram geometry mismatch";
    for (size_t b = 0; b < h.buckets(); ++b) {
        std::string sv;
        if (!std::getline(is, line) ||
            !valueOf(line, ("bucket " + std::to_string(b)).c_str(), sv))
            return "missing histogram bucket " + std::to_string(b);
        u64 val = 0;
        if (!parseU64(sv, val))
            return "bad histogram bucket " + std::to_string(b);
        if (val)
            h.sample(b, val);
    }

    while (std::getline(is, line)) {
        if (line.rfind("engine ", 0) != 0)
            return "unexpected trailing line '" + line + "'";
        size_t eq = line.rfind(" = ");
        if (eq == std::string::npos || eq <= 7)
            return "malformed engine counter line";
        u64 val = 0;
        if (!parseU64(line.substr(eq + 3), val))
            return "bad engine counter value";
        pr.engineStats.emplace_back(line.substr(7, eq - 7), val);
    }

    out = std::move(pr);
    return {};
}

std::optional<PhaseResult>
ResultCache::load(const CacheKey &key)
{
    if (!enabled())
        return std::nullopt;
    std::string path = cellPath(key);
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ++nMisses;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    auto quarantine = [&](const std::string &why) {
        std::error_code ec;
        fs::rename(path, path + ".corrupt", ec);
        if (ec) {
            // Rename failed (e.g. a racing quarantine won); removing is
            // an acceptable fallback — the cell just re-simulates.
            fs::remove(path, ec);
        }
        ++nQuarantined;
        ++nMisses;
        rsep_warn("result cache: quarantined %s (%s)", path.c_str(),
                  why.c_str());
        return std::nullopt;
    };

    // Outer envelope: "<body>checksum = <fnv1a64(body)>\n".
    size_t mark = text.rfind("checksum = ");
    if (mark == std::string::npos || text.back() != '\n')
        return quarantine("missing checksum");
    std::string body = text.substr(0, mark);
    u64 want = 0;
    if (!parseHex64(text.substr(mark + 11, text.size() - mark - 12),
                    want) ||
        fnv1a64(body) != want)
        return quarantine("checksum mismatch");

    PhaseResult pr;
    std::string err = parseRecord(body, key, pr);
    if (!err.empty())
        return quarantine(err);
    ++nHits;
    return pr;
}

bool
ResultCache::store(const CacheKey &key, const PhaseResult &pr)
{
    if (!enabled())
        return false;
    std::string path = cellPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        ++nIoErrors;
        return false;
    }

    std::string body = serializeRecord(key, pr);
    std::string text = body + "checksum = " + hex64(fnv1a64(body)) + "\n";

    // "cache.write" faults: an errno mode behaves as the write failing
    // (store reports false, the cell stays uncached); short leaves a
    // torn temp file behind; truncate *publishes* the torn record —
    // simulating silent on-disk corruption the next load() must catch
    // and quarantine.
    fault::Injected winj = fault::point("cache.write");
    if (winj.kind == fault::Kind::Delay) {
        fault::sleepMicros(winj.amount);
        winj.kind = fault::Kind::None;
    }
    if (winj.kind == fault::Kind::Errno) {
        ++nIoErrors;
        return false;
    }
    std::string_view out_text = text;
    if (winj.kind == fault::Kind::ShortWrite ||
        winj.kind == fault::Kind::Truncate)
        out_text = out_text.substr(
            0, std::min<size_t>(winj.amount, out_text.size()));

    // Atomic publish: a concurrent reader sees the old record or the
    // new one, never a torn write. The temp name is per-process so
    // overlapping shards pointed at one directory cannot collide.
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<unsigned long>(
                             ::getpid()));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            ++nIoErrors;
            return false;
        }
        os << out_text;
        os.flush();
        if (!os) {
            ++nIoErrors;
            fs::remove(tmp, ec);
            return false;
        }
    }
    if (winj.kind == fault::Kind::ShortWrite) {
        ++nIoErrors;
        fs::remove(tmp, ec);
        return false;
    }

    fault::Injected rinj = fault::point("cache.rename");
    if (rinj.kind == fault::Kind::Delay) {
        fault::sleepMicros(rinj.amount);
        rinj.kind = fault::Kind::None;
    }
    if (rinj.kind != fault::Kind::None) {
        // Any non-delay mode fails the publish step itself.
        ++nIoErrors;
        fs::remove(tmp, ec);
        return false;
    }

    fs::rename(tmp, path, ec);
    if (ec) {
        ++nIoErrors;
        fs::remove(tmp, ec);
        return false;
    }
    ++nStores;
    return true;
}

ResultCache::Counters
ResultCache::counters() const
{
    Counters c;
    c.hits = nHits.load();
    c.misses = nMisses.load();
    c.stores = nStores.load();
    c.quarantined = nQuarantined.load();
    c.ioErrors = nIoErrors.load();
    return c;
}

} // namespace rsep::sim

#include "sim/stat_export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>

#include "sim/scenario.hh"

namespace rsep::sim
{

namespace
{

/** Sum every introspected pipeline counter plus histogram buckets and
 *  engine-local counters over the phases of one run. */
std::vector<std::pair<std::string, u64>>
flattenCounters(const RunResult &rr)
{
    std::vector<std::pair<std::string, u64>> out;
    for (const PhaseResult &ph : rr.phases) {
        core::PipelineStats stats = ph.stats; // visitStats is non-const.
        size_t i = 0;
        visitStats(stats, [&](const char *name, StatCounter &c) {
            if (i == out.size())
                out.emplace_back(name, 0);
            out[i++].second += c.value();
        });
        const StatHistogram &h = stats.commitGroupProducers;
        for (size_t b = 0; b < h.buckets(); ++b) {
            std::string name =
                "commit_group_producers_" + std::to_string(b);
            if (i == out.size())
                out.emplace_back(name, 0);
            out[i++].second += h.bucket(b);
        }
        for (const auto &[name, value] : ph.engineStats) {
            auto it = std::find_if(
                out.begin() + static_cast<long>(i), out.end(),
                [&](const auto &p) { return p.first == name; });
            if (it == out.end())
                out.emplace_back(name, value);
            else
                it->second += value;
        }
    }
    return out;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

void
canonicalizeStatRows(std::vector<StatRow> &rows)
{
    for (StatRow &row : rows)
        std::sort(row.counters.begin(), row.counters.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    std::sort(rows.begin(), rows.end(),
              [](const StatRow &a, const StatRow &b) {
                  if (a.benchmark != b.benchmark)
                      return a.benchmark < b.benchmark;
                  if (a.scenario != b.scenario)
                      return a.scenario < b.scenario;
                  return a.configHash < b.configHash;
              });
}

std::vector<StatRow>
collectStatRows(const std::vector<SimConfig> &configs,
                const std::vector<MatrixRow> &rows, bool include_timings)
{
    std::vector<std::string> hashes;
    hashes.reserve(configs.size());
    for (const SimConfig &cfg : configs)
        hashes.push_back(configHash(cfg));

    std::vector<StatRow> out;
    for (const MatrixRow &mrow : rows) {
        for (size_t c = 0; c < mrow.byConfig.size() && c < configs.size();
             ++c) {
            const RunResult &rr = mrow.byConfig[c];
            if (!rr.inShard)
                continue; // another shard's run; its dump has the row.
            StatRow row;
            row.benchmark = mrow.benchmark;
            row.scenario = configs[c].label;
            row.configHash = hashes[c];
            row.checkpoints = rr.phases.size();
            row.ipcHmean = rr.ipcHmean();
            row.counters = flattenCounters(rr);
            if (include_timings) {
                RunTiming timing = rr.timing; // visitStats is non-const.
                visitStats(timing, [&](const char *name, StatCounter &c2) {
                    row.counters.emplace_back(name, c2.value());
                });
                for (size_t p = 0; p < rr.phases.size(); ++p)
                    row.counters.emplace_back(
                        "timing.phase" + std::to_string(p) +
                            "_wall_micros",
                        rr.phases[p].wallMicros);
            }
            out.push_back(std::move(row));
        }
    }
    canonicalizeStatRows(out);
    return out;
}

void
TableStatSink::write(std::ostream &os,
                     const std::vector<StatRow> &rows) const
{
    os << std::left << std::setw(12) << "benchmark" << std::setw(22)
       << "scenario" << std::setw(18) << "config-hash" << std::right
       << std::setw(7) << "ckpts" << std::setw(9) << "ipc" << "\n";
    for (const StatRow &row : rows) {
        os << std::left << std::setw(12) << row.benchmark << std::setw(22)
           << row.scenario << std::setw(18) << row.configHash
           << std::right << std::setw(7) << row.checkpoints << std::setw(9)
           << std::fixed << std::setprecision(3) << row.ipcHmean << "\n";
        os.unsetf(std::ios::fixed);
        for (const auto &[name, value] : row.counters) {
            if (enginesOnly && name.rfind("engine.", 0) != 0)
                continue;
            os << "    " << std::left << std::setw(40) << name
               << std::right << std::setw(16) << value << "\n";
        }
    }
}

void
CsvStatSink::write(std::ostream &os, const std::vector<StatRow> &rows) const
{
    // Column union in first-appearance order: runs under different
    // mechanism arms register different engines.
    std::vector<std::string> columns;
    for (const StatRow &row : rows)
        for (const auto &[name, value] : row.counters) {
            (void)value;
            if (std::find(columns.begin(), columns.end(), name) ==
                columns.end())
                columns.push_back(name);
        }

    os << "benchmark,scenario,config_hash,checkpoints,ipc_hmean";
    for (const std::string &col : columns)
        os << "," << csvEscape(col);
    os << "\n";

    for (const StatRow &row : rows) {
        os << csvEscape(row.benchmark) << "," << csvEscape(row.scenario)
           << "," << row.configHash << "," << row.checkpoints << ","
           << fmtDouble(row.ipcHmean);
        for (const std::string &col : columns) {
            os << ",";
            auto it = std::find_if(
                row.counters.begin(), row.counters.end(),
                [&](const auto &p) { return p.first == col; });
            if (it != row.counters.end())
                os << it->second;
        }
        os << "\n";
    }
}

void
JsonStatSink::write(std::ostream &os,
                    const std::vector<StatRow> &rows) const
{
    os << "[\n";
    for (size_t r = 0; r < rows.size(); ++r) {
        const StatRow &row = rows[r];
        os << "  {\"benchmark\": \"" << jsonEscape(row.benchmark)
           << "\", \"scenario\": \"" << jsonEscape(row.scenario)
           << "\", \"config_hash\": \"" << row.configHash
           << "\", \"checkpoints\": " << row.checkpoints
           << ", \"ipc_hmean\": " << fmtDouble(row.ipcHmean)
           << ", \"counters\": {";
        for (size_t i = 0; i < row.counters.size(); ++i) {
            if (i)
                os << ", ";
            os << "\"" << jsonEscape(row.counters[i].first)
               << "\": " << row.counters[i].second;
        }
        os << "}}" << (r + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
TimeSeriesSink::add(SampleSeriesHeader header,
                    std::vector<core::StatSample> rows)
{
    if (rows.empty())
        return;
    header.rows = rows.size();
    series.emplace_back(std::move(header), std::move(rows));
}

bool
TimeSeriesSink::flush(std::string *err)
{
    for (const auto &[header, rows] : series) {
        std::string path = samplePath(outDir, header.workload,
                                      header.configHash, header.phase);
        if (!writeSamplesFile(path, header, rows, err))
            return false;
        std::string csv_path =
            path.substr(0, path.size() - 4) + ".csv";
        std::ofstream os(csv_path, std::ios::trunc);
        if (!os) {
            if (err)
                *err = csv_path + ": cannot open for writing";
            return false;
        }
        writeSamplesCsv(os, header, rows);
        os.flush();
        if (!os) {
            if (err)
                *err = csv_path + ": write failed";
            return false;
        }
    }
    return true;
}

bool
writeStatsFile(const std::string &path, const StatSink &sink,
               const std::vector<StatRow> &rows, std::string *err)
{
    std::ofstream os(path);
    if (!os) {
        if (err)
            *err = path + ": cannot open for writing";
        return false;
    }
    sink.write(os, rows);
    os.flush();
    if (!os) {
        if (err)
            *err = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace rsep::sim

/**
 * @file
 * Experiment runner utilities shared by the bench harnesses: run a
 * (benchmark x configuration) matrix and print paper-style rows.
 */

#ifndef RSEP_SIM_RUNNER_HH
#define RSEP_SIM_RUNNER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rsep::sim
{

/** Results of a benchmark row across configurations. */
struct MatrixRow
{
    std::string benchmark;
    std::vector<RunResult> byConfig; ///< parallel to the config list.
};

/**
 * Run every benchmark under every configuration (config 0 is
 * conventionally the baseline). Progress goes to stderr.
 */
std::vector<MatrixRow>
runMatrix(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &benchmarks);

/**
 * Print a speedup table: one row per benchmark, one column per non-
 * baseline configuration, in percent over configuration 0, plus a
 * geometric-mean summary row (the paper reports per-benchmark bars).
 */
void printSpeedupTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                       const std::vector<SimConfig> &configs);

/** Print a generic percent table computed by @p cell per row/column. */
void printPctTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                   const std::vector<std::string> &col_names,
                   const std::function<double(const MatrixRow &, size_t col)>
                       &cell);

/** Simple fixed-width cell helpers. */
std::string fmtPct(double v);

} // namespace rsep::sim

#endif // RSEP_SIM_RUNNER_HH

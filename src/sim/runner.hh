/**
 * @file
 * Experiment runner utilities shared by the bench harnesses: run a
 * (benchmark x configuration) matrix and print paper-style rows.
 */

#ifndef RSEP_SIM_RUNNER_HH
#define RSEP_SIM_RUNNER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/shard.hh"
#include "sim/simulator.hh"

namespace rsep::sim
{

/** Results of a benchmark row across configurations. */
struct MatrixRow
{
    std::string benchmark;
    std::vector<RunResult> byConfig; ///< parallel to the config list.
};

/**
 * Work-stealing granularity of the matrix runner (`--steal`).
 *
 * Cell: one pool task per (benchmark, config, checkpoint) cell — the
 * finest deterministic unit, best load balance at high thread counts.
 * Window: one pool task per (benchmark, config) run window — all of a
 * run's checkpoints execute consecutively on one worker, fewer/larger
 * tasks with less scheduling overhead and better locality, at the
 * price of coarser balancing. Results are bit-identical either way
 * (cells keep their own seeds and output slots); only wall-clock
 * changes, which is what the scaling study measures.
 */
enum class StealMode : u8 { Cell, Window };

/** Parse a `--steal` value ("cell" or "window"). */
bool parseStealValue(const std::string &s, StealMode &mode,
                     std::string &err);

/**
 * Time-series sampling options of a run (`--sample-every` /
 * `--sample-dir` on every driver; see core/sampler.hh for the row
 * schema and sim/sample_io.hh for the `.rts` files).
 *
 * Run-level by design, like TraceIoOptions: sampling must not change
 * config hashes, cached results or the default stat dump — with
 * sampling off, every byte of output is identical to a build without
 * the feature. With sampling on, the matrix runner bypasses the
 * result cache (a cached cell cannot replay its timeline) and flushes
 * one `.rts` + `.csv` pair per (benchmark, config, phase) cell after
 * the barrier.
 */
struct SampleOptions
{
    u64 every = 0;                ///< sample period in cycles; 0 = off.
    std::string dir = "samples";  ///< output directory for `.rts` files.

    bool active() const { return every > 0; }
};

/** Knobs of the parallel matrix runner. */
struct MatrixOptions
{
    /** Worker threads. 0 = auto: the RSEP_JOBS environment variable
     *  when set, otherwise the hardware thread count. */
    unsigned jobs = 0;
    bool progress = true; ///< per-cell progress lines on stderr.
    /** This process's slice of the matrix (`--shard i/N`). Runs owned
     *  by other shards are left with inShard = false and no phases. */
    ShardSpec shard;
    /** Root of the persistent per-cell result cache (`--cache-dir`);
     *  empty = no caching. Cached cells are not re-simulated. */
    std::string cacheDir;
    /** Recorded-trace record/replay directories (`--record-trace`,
     *  `--replay-trace`); see TraceIoOptions. Replay is consulted only
     *  for cells the result cache could not serve. */
    TraceIoOptions traceIo;
    /** Steal granularity (`--steal cell|window`). */
    StealMode steal = StealMode::Cell;
    /** Time-series sampling (`--sample-every`, `--sample-dir`). */
    SampleOptions sampling;
};

/** Hard ceiling on explicit worker-thread requests. */
constexpr unsigned maxJobs = 4096;

/** Resolve a job-count request (see MatrixOptions::jobs). A malformed
 *  or absurd RSEP_JOBS value warns and falls back to auto. */
unsigned resolveJobs(unsigned requested);

/**
 * Strictly parse one jobs value ("0" = auto). Rejects non-numeric,
 * negative, overflowing or > maxJobs values with a diagnostic in
 * @p err instead of silently treating them as 0/auto.
 */
bool parseJobsValue(const std::string &s, unsigned &jobs,
                    std::string &err);

/**
 * Parse a `--jobs N` / `--jobs=N` / `-jN` override out of argv (the
 * bench and example drivers all accept it), leaving 0 (= auto) when
 * absent. Unrelated arguments are left untouched. On a malformed
 * value, returns false with a diagnostic in @p err.
 */
bool parseJobsArg(int argc, char **argv, unsigned &jobs,
                  std::string &err);

/** Legacy convenience wrapper: fatals on a malformed jobs value. */
unsigned parseJobsArg(int argc, char **argv);

/**
 * Run every benchmark under every configuration (config 0 is
 * conventionally the baseline). The (benchmark x config x checkpoint)
 * cells fan out across a work-stealing thread pool; per-cell seeding
 * is deterministic, so results are bit-identical at any thread count.
 * Progress goes to stderr.
 */
std::vector<MatrixRow>
runMatrix(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &benchmarks,
          const MatrixOptions &opts = {});

class ResultCache;

/**
 * Run one (benchmark, config, checkpoint) cell against an optional
 * shared result cache: look the cell up, simulate on a miss, store the
 * fresh result. The unit both runMatrix and the rsep_serve batcher
 * schedule — extracting it is what lets a long-running server share
 * one ResultCache (and the process-wide DecodedTraceCache) across many
 * clients' requests. @p cache may be null or disabled (plain
 * simulate); @p config_hash is configHash(cfg), precomputed by the
 * caller because batches hash each config exactly once.
 */
PhaseResult runCachedCell(ResultCache *cache, const SimConfig &cfg,
                          const std::string &benchmark,
                          const std::string &config_hash, u32 phase,
                          const TraceIoOptions &trace_io = {},
                          u64 sample_every = 0);

/**
 * Print a speedup table: one row per benchmark, one column per non-
 * baseline configuration, in percent over configuration 0, plus a
 * geometric-mean summary row (the paper reports per-benchmark bars).
 */
void printSpeedupTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                       const std::vector<SimConfig> &configs);

/** Print a generic percent table computed by @p cell per row/column. */
void printPctTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                   const std::vector<std::string> &col_names,
                   const std::function<double(const MatrixRow &, size_t col)>
                       &cell);

/** Simple fixed-width cell helpers. */
std::string fmtPct(double v);

} // namespace rsep::sim

#endif // RSEP_SIM_RUNNER_HH

#include "sim/runner.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/result_cache.hh"
#include "sim/stat_export.hh"
#include "sim/thread_pool.hh"
#include "wl/trace_cache.hh"

namespace rsep::sim
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    u64 env = envU64("RSEP_JOBS", 0); // warns when set but malformed.
    if (env > maxJobs) {
        rsep_warn("RSEP_JOBS=%llu exceeds the %u-thread ceiling; "
                  "using auto",
                  static_cast<unsigned long long>(env), maxJobs);
        env = 0;
    }
    if (env > 0)
        return static_cast<unsigned>(env);
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
parseJobsValue(const std::string &s, unsigned &jobs, std::string &err)
{
    u64 v = 0;
    if (!parseU64(s, v)) {
        err = "invalid jobs count '" + s +
              "' (expected an unsigned integer, 0 = auto)";
        return false;
    }
    if (v > maxJobs) {
        err = "jobs count '" + s + "' exceeds the ceiling of " +
              std::to_string(maxJobs);
        return false;
    }
    jobs = static_cast<unsigned>(v);
    return true;
}

namespace
{

/**
 * The single definition of the jobs-flag grammar. When argv[i] is a
 * jobs argument, reports the raw value string (nullptr when the flag
 * is dangling) and how many argv entries it spans (1 or 2).
 */
bool
matchJobsArg(int argc, char **argv, int i, const char *&value, int &span)
{
    const char *a = argv[i];
    if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) {
        value = i + 1 < argc ? argv[i + 1] : nullptr;
        span = i + 1 < argc ? 2 : 1;
        return true;
    }
    if (std::strncmp(a, "--jobs=", 7) == 0) {
        value = a + 7;
        span = 1;
        return true;
    }
    if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
        value = a + 2;
        span = 1;
        return true;
    }
    return false;
}

} // namespace

bool
parseJobsArg(int argc, char **argv, unsigned &jobs, std::string &err)
{
    for (int i = 1; i < argc; ++i) {
        const char *value = nullptr;
        int span = 0;
        if (!matchJobsArg(argc, argv, i, value, span))
            continue;
        if (!value) {
            err = std::string(argv[i]) + " requires a value (0 = auto)";
            return false;
        }
        return parseJobsValue(value, jobs, err);
    }
    return true; // absent: leave jobs untouched (0 = auto).
}

unsigned
parseJobsArg(int argc, char **argv)
{
    unsigned jobs = 0;
    std::string err;
    if (!parseJobsArg(argc, argv, jobs, err))
        rsep_fatal("%s", err.c_str());
    return jobs;
}

bool
parseStealValue(const std::string &s, StealMode &mode, std::string &err)
{
    if (s == "cell") {
        mode = StealMode::Cell;
        return true;
    }
    if (s == "window") {
        mode = StealMode::Window;
        return true;
    }
    err = "invalid steal granularity '" + s +
          "' (expected 'cell' or 'window')";
    return false;
}

PhaseResult
runCachedCell(ResultCache *cache, const SimConfig &cfg,
              const std::string &benchmark,
              const std::string &config_hash, u32 phase,
              const TraceIoOptions &trace_io, u64 sample_every)
{
    bool use_cache = cache && cache->enabled();
    CacheKey key{benchmark, config_hash, phase, cfg.seed};
    if (use_cache)
        if (std::optional<PhaseResult> pr = cache->load(key))
            return std::move(*pr);
    PhaseResult pr = runPhase(cfg, benchmark, phase, trace_io,
                              sample_every);
    if (use_cache)
        cache->store(key, pr);
    return pr;
}

std::vector<MatrixRow>
runMatrix(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &benchmarks,
          const MatrixOptions &opts)
{
    // Preallocate every result slot so workers write disjoint memory:
    // cell (b, c, p) -> rows[b].byConfig[c].phases[p]. The layout (and
    // the per-cell seed, see runPhase) depends only on the inputs,
    // never on scheduling, which makes the matrix bit-identical at any
    // thread count — and, because shard assignment and the cache key
    // hang off the same cell identity, at any shard split or cache
    // temperature too.
    ShardPlan plan = planShard(configs, benchmarks, opts.shard);
    const std::vector<std::string> &hashes = plan.configHashes;

    std::vector<MatrixRow> rows(benchmarks.size());
    size_t total_cells = 0;
    for (size_t b = 0; b < benchmarks.size(); ++b) {
        rows[b].benchmark = benchmarks[b];
        rows[b].byConfig.resize(configs.size());
        for (size_t c = 0; c < configs.size(); ++c) {
            RunResult &rr = rows[b].byConfig[c];
            rr.benchmark = benchmarks[b];
            rr.configLabel = configs[c].label;
            rr.inShard = plan.selected[b][c];
            if (!rr.inShard)
                continue; // another shard's run: no phases at all.
            rr.phases.resize(configs[c].checkpoints);
            total_cells += configs[c].checkpoints;
        }
    }

    ResultCache cache(opts.cacheDir);
    // Sampling bypasses the result cache: a cached cell has only
    // end-of-run totals, no timeline, and silently sample-less cells
    // would poison merged series. Warn once instead of per cell.
    bool use_cache = cache.enabled() && !opts.sampling.active();
    if (cache.enabled() && opts.sampling.active())
        rsep_warn("sampling: --sample-every bypasses the result cache "
                  "(cached cells cannot produce timelines); cells will "
                  "be re-simulated");

    unsigned jobs = resolveJobs(opts.jobs);
    if (opts.progress) {
        std::fprintf(stderr,
                     "[matrix] %zu benchmarks x %zu configs = %zu cells "
                     "on %u thread%s",
                     benchmarks.size(), configs.size(), total_cells, jobs,
                     jobs == 1 ? "" : "s");
        if (opts.shard.active())
            std::fprintf(stderr, " (shard %u/%u: %zu of %zu runs)",
                         opts.shard.index, opts.shard.count,
                         plan.selectedRuns, plan.totalRuns);
        if (opts.steal == StealMode::Window)
            std::fprintf(stderr, " [steal window]");
        if (use_cache)
            std::fprintf(stderr, " [cache %s]", cache.dir().c_str());
        if (opts.sampling.active())
            std::fprintf(stderr, " [sample every %llu -> %s]",
                         static_cast<unsigned long long>(
                             opts.sampling.every),
                         opts.sampling.dir.c_str());
        if (!opts.traceIo.replayDir.empty())
            std::fprintf(stderr, " [replay %s]",
                         opts.traceIo.replayDir.c_str());
        if (!opts.traceIo.recordDir.empty())
            std::fprintf(stderr, " [record %s]",
                         opts.traceIo.recordDir.c_str());
        std::fprintf(stderr, "\n");
    }

    std::atomic<size_t> done{0};
    std::mutex progress_mtx;

    // One cell's work, identical under either steal granularity: the
    // cell computes from its own seed into its own slot, so the steal
    // mode only decides how cells are batched into pool tasks.
    auto run_cell = [&](size_t b, size_t c, u32 p) {
        rows[b].byConfig[c].phases[p] = runCachedCell(
            use_cache ? &cache : nullptr, configs[c], benchmarks[b],
            hashes[c], p, opts.traceIo, opts.sampling.every);
        size_t k = ++done;
        if (opts.progress) {
            const PhaseResult &ph = rows[b].byConfig[c].phases[p];
            std::lock_guard<std::mutex> lk(progress_mtx);
            std::fprintf(
                stderr,
                "[%s] %-12s %-20s ckpt %u ipc=%.3f (%zu/%zu)\n",
                ph.fromCache    ? "hit"
                : ph.replayed   ? "rpl"
                                : "run",
                benchmarks[b].c_str(), configs[c].label.c_str(), p,
                ph.ipc, k, total_cells);
        }
    };

    ThreadPool pool(jobs);
    for (size_t b = 0; b < benchmarks.size(); ++b) {
        for (size_t c = 0; c < configs.size(); ++c) {
            if (!plan.selected[b][c])
                continue;
            if (opts.steal == StealMode::Window) {
                // Per-window granularity: the whole run is one task.
                pool.submit([&run_cell, b, c, &configs] {
                    for (u32 p = 0; p < configs[c].checkpoints; ++p)
                        run_cell(b, c, p);
                });
                continue;
            }
            for (u32 p = 0; p < configs[c].checkpoints; ++p)
                pool.submit([&run_cell, b, c, p] { run_cell(b, c, p); });
        }
    }
    pool.wait();

    // Timing/cache accounting runs after the barrier: checkpoints of
    // one run land on different workers, so accumulating RunTiming
    // inside the tasks would race.
    for (auto &row : rows) {
        for (RunResult &rr : row.byConfig) {
            if (!rr.inShard)
                continue;
            if (opts.steal == StealMode::Window)
                ++rr.timing.stealWindow;
            for (const PhaseResult &ph : rr.phases) {
                accountPhaseTiming(rr.timing, ph);
                if (use_cache && !ph.fromCache)
                    ++rr.timing.cacheMisses;
            }
        }
    }

    // Flush sample series post-barrier (single-threaded; the rows are
    // deterministic so flush order never affects file bytes). The
    // timeline rows are transient — moved out of the results here, not
    // carried into stat export.
    if (opts.sampling.active()) {
        TimeSeriesSink sink(opts.sampling.dir);
        for (size_t b = 0; b < benchmarks.size(); ++b) {
            for (size_t c = 0; c < configs.size(); ++c) {
                RunResult &rr = rows[b].byConfig[c];
                if (!rr.inShard)
                    continue;
                for (u32 p = 0; p < rr.phases.size(); ++p) {
                    SampleSeriesHeader h;
                    h.workload = benchmarks[b];
                    h.scenario = configs[c].label;
                    h.configHash = hashes[c];
                    h.phase = p;
                    h.period = opts.sampling.every;
                    sink.add(std::move(h),
                             std::move(rr.phases[p].samples));
                    rr.phases[p].samples.clear();
                }
            }
        }
        size_t n = sink.queued();
        std::string err;
        if (!sink.flush(&err))
            rsep_warn("sampling: %s", err.c_str());
        else if (opts.progress)
            std::fprintf(stderr, "[samples] wrote %zu series to %s\n", n,
                         opts.sampling.dir.c_str());
    }

    if (opts.progress && use_cache) {
        ResultCache::Counters cc = cache.counters();
        std::fprintf(stderr,
                     "[cache] %llu hit%s, %llu miss%s, %llu stored, "
                     "%llu quarantined\n",
                     static_cast<unsigned long long>(cc.hits),
                     cc.hits == 1 ? "" : "s",
                     static_cast<unsigned long long>(cc.misses),
                     cc.misses == 1 ? "" : "es",
                     static_cast<unsigned long long>(cc.stores),
                     static_cast<unsigned long long>(cc.quarantined));
    }
    if (opts.progress && !opts.traceIo.replayDir.empty()) {
        wl::DecodedTraceCache::Stats ts = wl::traceCache().stats();
        std::fprintf(stderr,
                     "[trace-cache] %llu hit%s, %llu miss%s, %llu "
                     "evicted, %.1f MB resident, %.3f s decoding\n",
                     static_cast<unsigned long long>(ts.hits),
                     ts.hits == 1 ? "" : "s",
                     static_cast<unsigned long long>(ts.misses),
                     ts.misses == 1 ? "" : "es",
                     static_cast<unsigned long long>(ts.evictions),
                     static_cast<double>(ts.residentBytes) / (1 << 20),
                     static_cast<double>(ts.decodeMicros) / 1e6);
    }
    return rows;
}

std::string
fmtPct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%7.2f%%", v);
    return buf;
}

void
printSpeedupTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                  const std::vector<SimConfig> &configs)
{
    os << std::left << std::setw(12) << "benchmark";
    for (size_t c = 1; c < configs.size(); ++c)
        os << std::right << std::setw(18) << configs[c].label;
    os << "\n";

    std::vector<std::vector<double>> ratios(configs.size());
    for (const auto &row : rows) {
        os << std::left << std::setw(12) << row.benchmark;
        double base = row.byConfig[0].ipcHmean();
        for (size_t c = 1; c < configs.size(); ++c) {
            double pct = speedupPct(row.byConfig[c], row.byConfig[0]);
            if (base > 0.0)
                ratios[c].push_back(row.byConfig[c].ipcHmean() / base);
            os << std::right << std::setw(18) << fmtPct(pct);
        }
        os << "\n";
    }
    os << std::left << std::setw(12) << "gmean";
    for (size_t c = 1; c < configs.size(); ++c) {
        double g = geometricMean(ratios[c]);
        os << std::right << std::setw(18)
           << fmtPct(g > 0.0 ? (g - 1.0) * 100.0 : 0.0);
    }
    os << "\n";
}

void
printPctTable(std::ostream &os, const std::vector<MatrixRow> &rows,
              const std::vector<std::string> &col_names,
              const std::function<double(const MatrixRow &, size_t col)>
                  &cell)
{
    os << std::left << std::setw(12) << "benchmark";
    for (const auto &name : col_names)
        os << std::right << std::setw(18) << name;
    os << "\n";
    for (const auto &row : rows) {
        os << std::left << std::setw(12) << row.benchmark;
        for (size_t c = 0; c < col_names.size(); ++c)
            os << std::right << std::setw(18) << fmtPct(cell(row, c));
        os << "\n";
    }
}

} // namespace rsep::sim

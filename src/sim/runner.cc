#include "sim/runner.hh"

#include <cstdio>
#include <iomanip>

#include "common/stats.hh"

namespace rsep::sim
{

std::vector<MatrixRow>
runMatrix(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &benchmarks)
{
    std::vector<MatrixRow> rows;
    rows.reserve(benchmarks.size());
    for (const auto &bench : benchmarks) {
        MatrixRow row;
        row.benchmark = bench;
        for (const auto &cfg : configs) {
            std::fprintf(stderr, "[run] %-12s %-20s ...", bench.c_str(),
                         cfg.label.c_str());
            std::fflush(stderr);
            RunResult rr = runWorkload(cfg, bench);
            std::fprintf(stderr, " ipc=%.3f\n", rr.ipcHmean());
            row.byConfig.push_back(std::move(rr));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string
fmtPct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%7.2f%%", v);
    return buf;
}

void
printSpeedupTable(std::ostream &os, const std::vector<MatrixRow> &rows,
                  const std::vector<SimConfig> &configs)
{
    os << std::left << std::setw(12) << "benchmark";
    for (size_t c = 1; c < configs.size(); ++c)
        os << std::right << std::setw(18) << configs[c].label;
    os << "\n";

    std::vector<std::vector<double>> ratios(configs.size());
    for (const auto &row : rows) {
        os << std::left << std::setw(12) << row.benchmark;
        double base = row.byConfig[0].ipcHmean();
        for (size_t c = 1; c < configs.size(); ++c) {
            double pct = speedupPct(row.byConfig[c], row.byConfig[0]);
            if (base > 0.0)
                ratios[c].push_back(row.byConfig[c].ipcHmean() / base);
            os << std::right << std::setw(18) << fmtPct(pct);
        }
        os << "\n";
    }
    os << std::left << std::setw(12) << "gmean";
    for (size_t c = 1; c < configs.size(); ++c) {
        double g = geometricMean(ratios[c]);
        os << std::right << std::setw(18)
           << fmtPct(g > 0.0 ? (g - 1.0) * 100.0 : 0.0);
    }
    os << "\n";
}

void
printPctTable(std::ostream &os, const std::vector<MatrixRow> &rows,
              const std::vector<std::string> &col_names,
              const std::function<double(const MatrixRow &, size_t col)>
                  &cell)
{
    os << std::left << std::setw(12) << "benchmark";
    for (const auto &name : col_names)
        os << std::right << std::setw(18) << name;
    os << "\n";
    for (const auto &row : rows) {
        os << std::left << std::setw(12) << row.benchmark;
        for (size_t c = 0; c < col_names.size(); ++c)
            os << std::right << std::setw(18) << fmtPct(cell(row, c));
        os << "\n";
    }
}

} // namespace rsep::sim

/**
 * @file
 * Offline half of the sharded-run toolchain: parse the CSV/JSON stat
 * dumps that sharded driver processes exported, validate that they
 * tile the experiment matrix (pairwise disjoint rows, complete
 * benchmark x scenario rectangle), merge them back into one canonical
 * row set, and derive the paper's figure summaries (per-benchmark
 * speedup bars and gmean rows) from the merged table.
 *
 * Round-trip contract: parsing a dump written by CsvStatSink /
 * JsonStatSink and re-emitting it through the same sink reproduces the
 * input byte for byte, so `rsep_merge` over N shard dumps of a matrix
 * emits exactly the dump an unsharded run would have written
 * (tests/test_stat_merge.cc pins this).
 */

#ifndef RSEP_SIM_STAT_MERGE_HH
#define RSEP_SIM_STAT_MERGE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/stat_export.hh"

namespace rsep::sim
{

/** Outcome of parsing one stat dump: rows, or a diagnostic. */
struct DumpParse
{
    std::vector<StatRow> rows;
    std::string error; ///< "origin: message"; empty on success.

    bool ok() const { return error.empty(); }
};

/** Parse a CsvStatSink dump (quoted fields, empty cell = no counter). */
DumpParse parseCsvDump(const std::string &text, const std::string &origin);

/** Parse a JsonStatSink dump. */
DumpParse parseJsonDump(const std::string &text, const std::string &origin);

/** Sniff the format ('[' starts JSON) and parse. */
DumpParse parseDumpText(const std::string &text, const std::string &origin);

/** Load and parse a dump file from disk. */
DumpParse parseDumpFile(const std::string &path);

/**
 * Merge per-shard row sets into one canonical set. Validates
 * disjointness: the same (benchmark, scenario, config hash) key in two
 * inputs — or twice in one input — is an error naming both origins.
 * @p origins parallels @p inputs (for diagnostics). Returns the empty
 * string on success, the diagnostic otherwise.
 */
std::string mergeStatRows(const std::vector<std::vector<StatRow>> &inputs,
                          const std::vector<std::string> &origins,
                          std::vector<StatRow> &out);

/**
 * Completeness check over a merged row set: every benchmark must
 * appear under every (scenario, config hash) arm — a hole means a
 * shard dump is missing or a sweep was interrupted. The benchmark set
 * is the union of @p expected_benchmarks and the benchmarks present in
 * @p rows; with an empty @p expected_benchmarks the check is derived
 * purely from the rows, which **cannot** notice a benchmark (or whole
 * arm) that every supplied dump is missing — pass the intended set
 * (rsep_merge `--expect-benchmarks`) to close that gap. Returns the
 * empty string when the rectangle is full, otherwise a diagnostic
 * listing the missing cells.
 */
std::string
checkCompleteness(const std::vector<StatRow> &rows,
                  const std::vector<std::string> &expected_benchmarks = {});

/**
 * True when @p name is a timing.* counter this build's RunTiming
 * schema (or the per-checkpoint timing.phaseN_wall_micros pattern)
 * defines. Non-timing counters are none of this function's business
 * (always false).
 */
bool knownTimingCounter(const std::string &name);

/**
 * The timing.* counter names in @p rows this build does not know —
 * evidence a dump came from a newer/older build whose timing schema
 * drifted. rsep_merge warns on these instead of passing them through
 * silently: the keys still merge (counters are opaque to the merge),
 * but the user is told the summary may be missing context.
 */
std::vector<std::string>
unknownTimingCounters(const std::vector<StatRow> &rows);

/**
 * The paper's figure summaries from a merged table: one CSV-style row
 * per (benchmark, non-baseline arm) with its IPC and speedup over the
 * baseline arm, then one gmean row per arm (Fig. 4/6/7 bars data).
 * @p baseline_scenario selects the divisor arm; "" means "the arm
 * named 'baseline' if present, else the lexicographically first".
 * Returns false (with @p err) when the baseline is unknown.
 */
bool writeFigureSummary(std::ostream &os, const std::vector<StatRow> &rows,
                        const std::string &baseline_scenario,
                        std::string *err = nullptr);

} // namespace rsep::sim

#endif // RSEP_SIM_STAT_MERGE_HH

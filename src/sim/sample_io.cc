#include "sim/sample_io.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/fnv.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{

namespace
{

/** Path-component sanitizer (cf. trace_io.cc): never trust a name. */
std::string
sanitized(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '-' || c == '+' || c == '_' || c == '@')
                   ? c
                   : '_';
    return out.empty() ? std::string("_") : out;
}

void
putVarint(std::string &s, u64 v)
{
    while (v >= 0x80) {
        s.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    s.push_back(static_cast<char>(v));
}

bool
getVarint(const char *&p, const char *end, u64 &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (p == end)
            return false;
        u8 byte = static_cast<u8>(*p++);
        v |= static_cast<u64>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false; // over-long varint.
}

std::string
encodeRows(const std::vector<core::StatSample> &rows)
{
    std::string payload;
    payload.reserve(rows.size() * core::sampleFieldCount());
    for (core::StatSample row : rows)
        core::visitSampleFields(
            row, [&](const char *, u64 &f, core::SampleFieldKind) {
                putVarint(payload, f);
            });
    return payload;
}

} // namespace

std::string
samplePath(const std::string &dir, const std::string &workload,
           const std::string &config_hash, u32 phase)
{
    return dir + "/" + sanitized(workload) + "-" + sanitized(config_hash) +
           "-p" + std::to_string(phase) + sampleFileExtension;
}

std::string
serializeSamples(const SampleSeriesHeader &header,
                 const std::vector<core::StatSample> &rows)
{
    std::string payload = encodeRows(rows);
    std::ostringstream os;
    os << "rsep-samples " << header.version << "\n";
    os << "workload = " << header.workload << "\n";
    os << "scenario = " << header.scenario << "\n";
    os << "config_hash = " << header.configHash << "\n";
    os << "phase = " << header.phase << "\n";
    os << "period = " << header.period << "\n";
    os << "fields = " << core::sampleFieldNames() << "\n";
    os << "rows = " << rows.size() << "\n";
    os << "payload\n";
    os << payload;
    os << "\nchecksum = " << hex64(fnv1a64(payload)) << "\n";
    return os.str();
}

SamplesParse
parseSamplesText(std::string_view text, const std::string &origin,
                 bool header_only)
{
    SamplesParse out;
    auto fail = [&](const std::string &msg) {
        out.error = origin + ": " + msg;
        out.rows.clear();
        return out;
    };

    // ---- text header (line oriented, fixed order) ----
    size_t pos = 0;
    auto nextLine = [&](std::string_view &line) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            return false;
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };
    auto valueOf = [](std::string_view l, const char *k, std::string &v) {
        std::string prefix = std::string(k) + " = ";
        if (l.substr(0, prefix.size()) != prefix)
            return false;
        v = std::string(l.substr(prefix.size()));
        return true;
    };

    std::string_view line;
    std::string v;
    if (!nextLine(line) || line.substr(0, 13) != "rsep-samples ")
        return fail("not a sample file");
    {
        u64 ver = 0;
        if (!parseU64(std::string(line.substr(13)), ver) ||
            ver != core::sampleSchemaVersion)
            return fail("unsupported sample schema version");
        out.header.version = static_cast<unsigned>(ver);
    }
    if (!nextLine(line) || !valueOf(line, "workload", v) || v.empty())
        return fail("bad workload header");
    out.header.workload = v;
    if (!nextLine(line) || !valueOf(line, "scenario", v))
        return fail("bad scenario header");
    out.header.scenario = v;
    u64 dummy = 0;
    if (!nextLine(line) || !valueOf(line, "config_hash", v) ||
        v.size() != 16 || !parseHex64(v, dummy))
        return fail("bad config_hash header");
    out.header.configHash = v;
    u64 wide = 0;
    if (!nextLine(line) || !valueOf(line, "phase", v) ||
        !parseU64(v, wide) || wide > 0xffffffffull)
        return fail("bad phase header");
    out.header.phase = static_cast<u32>(wide);
    if (!nextLine(line) || !valueOf(line, "period", v) ||
        !parseU64(v, out.header.period) || out.header.period == 0)
        return fail("bad period header");
    // The field list pins what the payload columns mean: a reader
    // compiled with a different schema must not guess.
    if (!nextLine(line) || !valueOf(line, "fields", v) ||
        v != core::sampleFieldNames())
        return fail("field list does not match this build's sample "
                    "schema");
    if (!nextLine(line) || !valueOf(line, "rows", v) ||
        !parseU64(v, out.header.rows))
        return fail("bad rows header");
    if (!nextLine(line) || line != "payload")
        return fail("missing payload marker");
    if (header_only)
        return out;

    // ---- binary payload + trailing checksum ----
    // "\nchecksum = " + 16 hex + "\n"
    constexpr size_t trailerBytes = 12 + 16 + 1;
    if (text.size() < pos || text.size() - pos < trailerBytes)
        return fail("truncated trailer: " +
                    std::to_string(text.size() < pos
                                       ? 0
                                       : text.size() - pos) +
                    " bytes after the header (offset " +
                    std::to_string(pos) + "), need at least " +
                    std::to_string(trailerBytes) +
                    " for the checksum trailer");
    u64 payload_bytes = text.size() - pos - trailerBytes;
    // Every field takes at least one varint byte; reject absurd row
    // counts before reserve() can abort on a corrupt header.
    size_t fields = core::sampleFieldCount();
    if (out.header.rows > payload_bytes / (fields ? fields : 1) + 1)
        return fail("truncated payload: row count " +
                    std::to_string(out.header.rows) +
                    " exceeds the available bytes");
    std::string_view payload = text.substr(pos, payload_bytes);
    std::string_view trailer = text.substr(pos + payload_bytes);
    u64 want = 0;
    if (trailer.substr(0, 12) != "\nchecksum = " || trailer.back() != '\n' ||
        !parseHex64(std::string(trailer.substr(12, 16)), want))
        return fail("truncated samples or missing checksum trailer at "
                    "offset " +
                    std::to_string(pos + payload_bytes));
    u64 got = fnv1a64(payload);
    if (got != want)
        return fail("checksum mismatch over " +
                    std::to_string(payload_bytes) +
                    " payload bytes at offset " + std::to_string(pos) +
                    ": expected " + hex64(want) + ", computed " +
                    hex64(got));

    const char *p = payload.data();
    const char *end = p + payload.size();
    out.rows.reserve(out.header.rows);
    for (u64 r = 0; r < out.header.rows; ++r) {
        core::StatSample row;
        bool ok = true;
        core::visitSampleFields(
            row, [&](const char *, u64 &f, core::SampleFieldKind) {
                ok = ok && getVarint(p, end, f);
            });
        if (!ok)
            return fail("truncated payload at row " + std::to_string(r) +
                        " (payload offset " +
                        std::to_string(
                            static_cast<u64>(p - payload.data())) +
                        " of " + std::to_string(payload.size()) +
                        " bytes)");
        out.rows.push_back(row);
    }
    if (p != end)
        return fail("payload has " + std::to_string(end - p) +
                    " trailing bytes");
    return out;
}

SamplesParse
parseSamplesFile(const std::string &path, bool header_only)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        SamplesParse out;
        out.error = path + ": cannot open";
        return out;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();
    return parseSamplesText(text, path, header_only);
}

bool
writeSamplesFile(const std::string &path, const SampleSeriesHeader &header,
                 const std::vector<core::StatSample> &rows, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = path + ": " + msg;
        return false;
    };
    std::error_code ec;
    fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
        fs::create_directories(parent, ec);
        if (ec)
            return fail(ec.message());
    }
    SampleSeriesHeader h = header;
    h.rows = rows.size();
    std::string text = serializeSamples(h, rows);

    // "rts.flush" faults: errno modes fail the flush; short fails it
    // leaving no file; truncate *publishes* a torn series — the next
    // parse must report the truncation, never assert.
    std::string_view out_text = text;
    fault::Injected winj = fault::point("rts.flush");
    if (winj.kind == fault::Kind::Delay)
        fault::sleepMicros(winj.amount);
    else if (winj.kind == fault::Kind::Errno)
        return fail(std::string("injected ") + std::strerror(winj.err));
    else if (winj.kind == fault::Kind::ShortWrite ||
             winj.kind == fault::Kind::Truncate)
        out_text = out_text.substr(
            0, std::min<size_t>(winj.amount, out_text.size()));

    // Atomic publish (cf. writeTraceFile): pid + process-wide sequence
    // number in the temp name — a matrix run flushes many cells'
    // series from one process.
    static std::atomic<u64> writerSeq{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<unsigned long>(::getpid())) +
                      "." + std::to_string(++writerSeq);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return fail("cannot open temp file for writing");
        os << out_text;
        os.flush();
        if (!os) {
            fs::remove(tmp, ec);
            return fail("write failed");
        }
    }
    if (winj.kind == fault::Kind::ShortWrite) {
        fs::remove(tmp, ec);
        return fail("injected short write (" +
                    std::to_string(out_text.size()) + " of " +
                    std::to_string(text.size()) + " bytes)");
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return fail("rename failed");
    }
    return true;
}

void
writeSamplesCsv(std::ostream &os, const SampleSeriesHeader &header,
                const std::vector<core::StatSample> &rows, bool with_header)
{
    if (with_header)
        os << sampleCsvIdColumns << "," << core::sampleFieldNames() << "\n";
    for (core::StatSample row : rows) {
        os << header.workload << "," << header.scenario << ","
           << header.configHash << "," << header.phase;
        core::visitSampleFields(
            row, [&](const char *, u64 &f, core::SampleFieldKind) {
                os << "," << f;
            });
        os << "\n";
    }
}

} // namespace rsep::sim

#include "sim/stat_merge.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/env.hh"
#include "common/stats.hh"

namespace rsep::sim
{

namespace
{

// ------------------------------------------------------------ CSV parse

/**
 * Split a whole CSV text into records of fields, honouring RFC-4180
 * quoting (embedded commas, doubled quotes, embedded newlines).
 * Quoting is not preserved in the output: an empty cell parses to an
 * empty string whether quoted or not, and parseCsvDump reads every
 * empty counter cell as "this row does not carry the counter" (the
 * sinks never emit quoted empties).
 */
bool
splitCsv(const std::string &text,
         std::vector<std::vector<std::string>> &records, std::string &err)
{
    std::vector<std::string> fields;
    std::string cur;
    bool in_quotes = false, was_quoted = false, any = false;

    auto endField = [&]() {
        fields.push_back(cur);
        cur.clear();
        was_quoted = false;
        any = true;
    };
    auto endRecord = [&]() {
        endField();
        records.push_back(std::move(fields));
        fields.clear();
        any = false;
    };

    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cur += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            if (!cur.empty() && !was_quoted) {
                err = "stray quote inside an unquoted field";
                return false;
            }
            in_quotes = true;
            was_quoted = true;
            break;
          case ',':
            endField();
            break;
          case '\n':
            endRecord();
            break;
          case '\r':
            break; // tolerate CRLF dumps.
          default:
            cur += c;
        }
    }
    if (in_quotes) {
        err = "unterminated quoted field";
        return false;
    }
    if (any || !cur.empty())
        endRecord(); // final record without a trailing newline.
    (void)was_quoted;
    return true;
}

bool
parseSizeT(const std::string &s, size_t &out)
{
    u64 v = 0;
    if (!parseU64(s, v))
        return false;
    out = static_cast<size_t>(v);
    return true;
}

bool
parseDoubleStrict(const std::string &s, double &out)
{
    return parseDouble(s, out);
}

// ----------------------------------------------------------- JSON parse

/** Minimal recursive-descent parser for the JsonStatSink subset. */
struct JsonCursor
{
    const std::string &text;
    size_t pos = 0;
    std::string err;

    bool failed() const { return !err.empty(); }

    void
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg + " at offset " + std::to_string(pos);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    expect(char c)
    {
        if (!consume(c)) {
            fail(std::string("expected '") + c + "'");
            return false;
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        out.clear();
        if (!expect('"'))
            return false;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    break;
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u': {
                      if (pos + 4 > text.size()) {
                          fail("truncated \\u escape");
                          return false;
                      }
                      unsigned v = 0;
                      for (int k = 0; k < 4; ++k) {
                          char h = text[pos++];
                          v <<= 4;
                          if (h >= '0' && h <= '9')
                              v |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              v |= static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              v |= static_cast<unsigned>(h - 'A' + 10);
                          else {
                              fail("bad \\u escape");
                              return false;
                          }
                      }
                      // The sinks only escape ASCII control characters.
                      out += static_cast<char>(v & 0xff);
                      break;
                  }
                  default:
                      fail("unsupported escape");
                      return false;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return false;
    }

    /** Raw number token (validated by the caller's strict parser). */
    bool
    parseNumberToken(std::string &out)
    {
        skipWs();
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E') {
                out += c;
                ++pos;
            } else {
                break;
            }
        }
        if (out.empty())
            fail("expected a number");
        return !out.empty();
    }
};

// ------------------------------------------------------------ merge key

std::string
rowKey(const StatRow &r)
{
    return r.benchmark + "\x1f" + r.scenario + "\x1f" + r.configHash;
}

std::string
prettyKey(const StatRow &r)
{
    return "(" + r.benchmark + ", " + r.scenario + ", " + r.configHash +
           ")";
}

} // namespace

DumpParse
parseCsvDump(const std::string &text, const std::string &origin)
{
    DumpParse out;
    std::vector<std::vector<std::string>> records;
    std::string err;
    if (!splitCsv(text, records, err)) {
        out.error = origin + ": " + err;
        return out;
    }
    if (records.empty()) {
        out.error = origin + ": empty dump (no header)";
        return out;
    }

    const std::vector<std::string> &header = records[0];
    const char *fixed[] = {"benchmark", "scenario", "config_hash",
                           "checkpoints", "ipc_hmean"};
    constexpr size_t nFixed = 5;
    if (header.size() < nFixed) {
        out.error = origin + ": header has fewer than " +
                    std::to_string(nFixed) + " columns";
        return out;
    }
    for (size_t i = 0; i < nFixed; ++i) {
        if (header[i] != fixed[i]) {
            out.error = origin + ": header column " + std::to_string(i) +
                        " is '" + header[i] + "', expected '" + fixed[i] +
                        "'";
            return out;
        }
    }

    for (size_t r = 1; r < records.size(); ++r) {
        const std::vector<std::string> &rec = records[r];
        auto fail = [&](const std::string &msg) {
            out.error =
                origin + ": row " + std::to_string(r) + ": " + msg;
            out.rows.clear();
            return out;
        };
        if (rec.size() != header.size())
            return fail("has " + std::to_string(rec.size()) +
                        " fields, header has " +
                        std::to_string(header.size()));
        StatRow row;
        row.benchmark = rec[0];
        row.scenario = rec[1];
        row.configHash = rec[2];
        if (!parseSizeT(rec[3], row.checkpoints))
            return fail("bad checkpoints '" + rec[3] + "'");
        if (!parseDoubleStrict(rec[4], row.ipcHmean))
            return fail("bad ipc_hmean '" + rec[4] + "'");
        for (size_t i = nFixed; i < rec.size(); ++i) {
            if (rec[i].empty())
                continue; // this row does not carry the counter.
            u64 v = 0;
            if (!parseU64(rec[i], v))
                return fail("bad value '" + rec[i] + "' for counter '" +
                            header[i] + "'");
            row.counters.emplace_back(header[i], v);
        }
        out.rows.push_back(std::move(row));
    }
    return out;
}

DumpParse
parseJsonDump(const std::string &text, const std::string &origin)
{
    DumpParse out;
    JsonCursor cur{text, 0, {}};

    auto fail = [&](const std::string &msg) {
        out.error = origin + ": " + (msg.empty() ? cur.err : msg);
        out.rows.clear();
        return out;
    };

    if (!cur.expect('['))
        return fail("");
    if (!cur.consume(']')) {
        do {
            if (!cur.expect('{'))
                return fail("");
            StatRow row;
            bool saw_counters = false;
            if (!cur.consume('}')) {
                do {
                    std::string key;
                    if (!cur.parseString(key) || !cur.expect(':'))
                        return fail("");
                    if (key == "benchmark" || key == "scenario" ||
                        key == "config_hash") {
                        std::string v;
                        if (!cur.parseString(v))
                            return fail("");
                        (key == "benchmark"
                             ? row.benchmark
                             : key == "scenario" ? row.scenario
                                                 : row.configHash) = v;
                    } else if (key == "checkpoints") {
                        std::string tok;
                        if (!cur.parseNumberToken(tok))
                            return fail("");
                        if (!parseSizeT(tok, row.checkpoints))
                            return fail("bad checkpoints '" + tok + "'");
                    } else if (key == "ipc_hmean") {
                        std::string tok;
                        if (!cur.parseNumberToken(tok))
                            return fail("");
                        if (!parseDoubleStrict(tok, row.ipcHmean))
                            return fail("bad ipc_hmean '" + tok + "'");
                    } else if (key == "counters") {
                        saw_counters = true;
                        if (!cur.expect('{'))
                            return fail("");
                        if (!cur.consume('}')) {
                            do {
                                std::string cname, tok;
                                if (!cur.parseString(cname) ||
                                    !cur.expect(':') ||
                                    !cur.parseNumberToken(tok))
                                    return fail("");
                                u64 v = 0;
                                if (!parseU64(tok, v))
                                    return fail("bad value '" + tok +
                                                "' for counter '" +
                                                cname + "'");
                                row.counters.emplace_back(cname, v);
                            } while (cur.consume(','));
                            if (!cur.expect('}'))
                                return fail("");
                        }
                    } else {
                        return fail("unknown row key '" + key + "'");
                    }
                } while (cur.consume(','));
                if (!cur.expect('}'))
                    return fail("");
            }
            if (row.benchmark.empty() || row.configHash.empty() ||
                !saw_counters)
                return fail("row is missing benchmark/config_hash/"
                            "counters");
            out.rows.push_back(std::move(row));
        } while (cur.consume(','));
        if (!cur.expect(']'))
            return fail("");
    }
    cur.skipWs();
    if (cur.pos != text.size())
        return fail("trailing garbage after the row array");
    return out;
}

DumpParse
parseDumpText(const std::string &text, const std::string &origin)
{
    for (char c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        return c == '[' ? parseJsonDump(text, origin)
                        : parseCsvDump(text, origin);
    }
    DumpParse out;
    out.error = origin + ": empty dump";
    return out;
}

DumpParse
parseDumpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        DumpParse out;
        out.error = path + ": cannot open";
        return out;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseDumpText(buf.str(), path);
}

std::string
mergeStatRows(const std::vector<std::vector<StatRow>> &inputs,
              const std::vector<std::string> &origins,
              std::vector<StatRow> &out)
{
    out.clear();
    std::map<std::string, size_t> owner; // row key -> input index.
    auto originOf = [&](size_t i) {
        return i < origins.size() ? origins[i]
                                  : "input " + std::to_string(i);
    };
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (const StatRow &row : inputs[i]) {
            auto [it, inserted] = owner.emplace(rowKey(row), i);
            if (!inserted)
                return "duplicate row " + prettyKey(row) + " in " +
                       originOf(it->second) + " and " + originOf(i) +
                       " — shard dumps must be disjoint";
            out.push_back(row);
        }
    }
    canonicalizeStatRows(out);
    return {};
}

std::string
checkCompleteness(const std::vector<StatRow> &rows,
                  const std::vector<std::string> &expected_benchmarks)
{
    // Arms are (scenario, config hash); completeness is "every
    // benchmark under every arm".
    std::set<std::string> benchmarks(expected_benchmarks.begin(),
                                     expected_benchmarks.end());
    std::set<std::pair<std::string, std::string>> arms;
    std::set<std::string> have;
    for (const StatRow &r : rows) {
        benchmarks.insert(r.benchmark);
        arms.insert({r.scenario, r.configHash});
        have.insert(rowKey(r));
    }
    if (!expected_benchmarks.empty()) {
        std::set<std::string> expected(expected_benchmarks.begin(),
                                       expected_benchmarks.end());
        for (const StatRow &r : rows)
            if (!expected.count(r.benchmark))
                return "unexpected benchmark '" + r.benchmark +
                       "' (not in the --expect-benchmarks set)";
    }

    std::string missing;
    size_t n = 0;
    for (const auto &[scenario, hash] : arms) {
        for (const std::string &bench : benchmarks) {
            if (have.count(bench + "\x1f" + scenario + "\x1f" + hash))
                continue;
            if (++n <= 8)
                missing += "\n  (" + bench + ", " + scenario + ", " +
                           hash + ")";
        }
    }
    if (n == 0)
        return {};
    if (n > 8)
        missing += "\n  ... and " + std::to_string(n - 8) + " more";
    return "incomplete matrix: " + std::to_string(n) +
           " missing cell(s) — a shard dump is absent or a sweep was "
           "interrupted:" +
           missing;
}

bool
knownTimingCounter(const std::string &name)
{
    if (name.rfind("timing.", 0) != 0)
        return false;
    // The RunTiming schema names, via the one visitStats enumeration.
    static const std::vector<std::string> known = [] {
        std::vector<std::string> names;
        RunTiming t;
        visitStats(t, [&](const char *n, StatCounter &) {
            names.emplace_back(n);
        });
        return names;
    }();
    for (const std::string &k : known)
        if (name == k)
            return true;
    // Per-checkpoint pattern: timing.phase<digits>_wall_micros.
    constexpr const char *pre = "timing.phase";
    constexpr const char *suf = "_wall_micros";
    if (name.rfind(pre, 0) != 0)
        return false;
    size_t digits_begin = std::string(pre).size();
    size_t suf_len = std::string(suf).size();
    if (name.size() <= digits_begin + suf_len ||
        name.compare(name.size() - suf_len, suf_len, suf) != 0)
        return false;
    for (size_t i = digits_begin; i < name.size() - suf_len; ++i)
        if (name[i] < '0' || name[i] > '9')
            return false;
    return true;
}

std::vector<std::string>
unknownTimingCounters(const std::vector<StatRow> &rows)
{
    std::set<std::string> unknown;
    for (const StatRow &row : rows)
        for (const auto &[name, value] : row.counters) {
            (void)value;
            if (name.rfind("timing.", 0) == 0 &&
                !knownTimingCounter(name))
                unknown.insert(name);
        }
    return {unknown.begin(), unknown.end()};
}

bool
writeFigureSummary(std::ostream &os, const std::vector<StatRow> &rows,
                   const std::string &baseline_scenario, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    if (rows.empty())
        return fail("no rows to summarise");

    std::set<std::string> scenarios;
    for (const StatRow &r : rows)
        scenarios.insert(r.scenario);

    std::string base = baseline_scenario;
    if (base.empty())
        base = scenarios.count("baseline") ? "baseline" : *scenarios.begin();
    if (!scenarios.count(base))
        return fail("baseline scenario '" + base +
                    "' has no rows in the merged dump");

    // benchmark -> scenario -> row (rows are canonical, keys unique).
    std::map<std::string, std::map<std::string, const StatRow *>> grid;
    std::map<std::string, std::string> armHash;
    for (const StatRow &r : rows) {
        auto [it, inserted] = armHash.emplace(r.scenario, r.configHash);
        if (!inserted && it->second != r.configHash)
            return fail("scenario '" + r.scenario +
                        "' appears with two config hashes (" +
                        it->second + ", " + r.configHash +
                        "); merge inputs disagree");
        grid[r.benchmark][r.scenario] = &r;
    }

    auto fmtIpc = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        return std::string(buf);
    };
    auto fmtPct2 = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", v);
        return std::string(buf);
    };

    os << "# per-benchmark speedup bars over '" << base << "' (percent)\n";
    os << "benchmark,scenario,config_hash,ipc_hmean,speedup_pct\n";
    std::map<std::string, std::vector<double>> ratios;
    std::vector<std::string> skipped;
    for (const auto &[bench, byScenario] : grid) {
        auto bit = byScenario.find(base);
        double base_ipc =
            bit != byScenario.end() ? bit->second->ipcHmean : 0.0;
        if (base_ipc <= 0.0) {
            // No (usable) baseline row for this benchmark — a partial
            // merge. Emitting a bar would fabricate a 0.00% speedup;
            // drop the benchmark and say so instead.
            skipped.push_back(bench);
            continue;
        }
        for (const auto &[scenario, row] : byScenario) {
            if (scenario == base)
                continue;
            double ratio = row->ipcHmean / base_ipc;
            ratios[scenario].push_back(ratio);
            os << bench << "," << scenario << "," << row->configHash
               << "," << fmtIpc(row->ipcHmean) << ","
               << fmtPct2((ratio - 1.0) * 100.0) << "\n";
        }
    }
    for (const auto &[scenario, r] : ratios) {
        double g = geometricMean(r);
        os << "gmean," << scenario << "," << armHash[scenario] << ",,"
           << fmtPct2(g > 0.0 ? (g - 1.0) * 100.0 : 0.0) << "\n";
    }
    if (!skipped.empty()) {
        os << "# warning: skipped " << skipped.size()
           << " benchmark(s) with no '" << base << "' row:";
        for (const std::string &bench : skipped)
            os << " " << bench;
        os << "\n";
    }
    return true;
}

} // namespace rsep::sim

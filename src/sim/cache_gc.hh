/**
 * @file
 * Result-cache garbage collection (`rsep_merge --gc`).
 *
 * A `--cache-dir` grows monotonically: every simulated cell leaves a
 * record, and records keyed by retired config hashes (edited scenario
 * files, changed sweep parameters) are never read again. The collector
 * walks a cache directory and removes:
 *
 *  - **stale** records — `.cell` files whose config hash (parsed from
 *    the `<hash>-p<phase>-s<seed>.cell` filename) is not in the live
 *    set derived from a given scenario set;
 *  - **quarantine debris** — `.corrupt` files left by the loader;
 *  - **LRU overflow** — when a `--max-bytes` cap is given, the oldest
 *    surviving records by mtime until the cache fits.
 *
 * Files matching neither pattern are never touched. Because registry
 * scenarios run under both the library sizing and the bench-harness
 * sizing (bench_util shrinks registry-sourced arms), callers should
 * include both hash variants in the live set (rsep_merge does).
 */

#ifndef RSEP_SIM_CACHE_GC_HH
#define RSEP_SIM_CACHE_GC_HH

#include <set>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rsep::sim
{

/** What to collect. */
struct GcOptions
{
    std::string cacheDir;
    /** Config hashes still referenced by the scenario set; a record
     *  keyed by any other hash is stale. Empty = keep every record
     *  (only quarantine debris and the size cap apply). */
    std::set<std::string> liveHashes;
    u64 maxBytes = 0;    ///< 0 = no size cap.
    bool dryRun = false; ///< report what would be removed, remove nothing.
};

/** What was (or would be) collected. */
struct GcReport
{
    u64 scannedFiles = 0;    ///< .cell records seen.
    u64 scannedBytes = 0;
    u64 staleRemoved = 0;    ///< records with a dead config hash.
    u64 corruptRemoved = 0;  ///< quarantined .corrupt files.
    u64 lruRemoved = 0;      ///< live records evicted by --max-bytes.
    u64 removedBytes = 0;
    u64 keptFiles = 0;
    u64 keptBytes = 0;
};

/**
 * Parse the config hash out of a `.cell` filename. Thin alias of
 * ResultCache::fileConfigHash, which lives next to the cellPath
 * composer so the two sides of the naming grammar cannot drift.
 * Empty when the name does not match the record naming scheme.
 */
std::string cellFileConfigHash(const std::string &filename);

/** Run the collection. Returns the empty string on success, otherwise
 *  a diagnostic (the report is still valid for what was processed). */
std::string runCacheGc(const GcOptions &opts, GcReport &report);

} // namespace rsep::sim

#endif // RSEP_SIM_CACHE_GC_HH

/**
 * @file
 * Persistent per-cell result cache (`--cache-dir` on every driver).
 *
 * One record per simulated cell, keyed on the stable (benchmark,
 * config hash, phase, seed) identity — the same key the stat-export
 * layer and the shard partitioner use. `runMatrix` consults the cache
 * before simulating a cell and stores the cell's PhaseResult after, so
 * interrupted sweeps resume where they stopped and repeated sweeps
 * (re-runs, overlapping shards, grown scenario files) never re-simulate
 * a cell.
 *
 * Records are plain text (a versioned header echoing the key, every
 * introspected pipeline counter, the commit-group histogram, the
 * per-engine counters, and a trailing checksum) and are written
 * atomically via write-to-temp + rename. A record that fails any
 * validation step — version or checksum mismatch, key echo that does
 * not match the requested cell, counter-set drift against the current
 * binary — is **quarantined** (renamed to `<cell>.corrupt`) and treated
 * as a miss, so one damaged file can never poison a sweep or wedge a
 * resume loop.
 */

#ifndef RSEP_SIM_RESULT_CACHE_HH
#define RSEP_SIM_RESULT_CACHE_HH

#include <atomic>
#include <optional>
#include <string>

#include "sim/simulator.hh"

namespace rsep::sim
{

/** Identity of one cached cell. */
struct CacheKey
{
    std::string benchmark;
    std::string configHash; ///< configHash(cfg): covers seed + sizing.
    u32 phase = 0;
    u64 seed = 0; ///< echoed for legibility; already part of the hash.
};

/** Record-format version; bump on any layout change. */
constexpr unsigned resultCacheVersion = 1;

/** A file-backed, thread-safe cell cache rooted at one directory. */
class ResultCache
{
  public:
    /** An empty @p dir disables the cache (every lookup misses). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !root.empty(); }
    const std::string &dir() const { return root; }

    /**
     * Look up one cell. Returns the cached PhaseResult (with
     * fromCache set) on a hit; nullopt on a miss or after
     * quarantining an invalid record.
     */
    std::optional<PhaseResult> load(const CacheKey &key);

    /** Persist one cell (atomic write-rename). False on I/O failure. */
    bool store(const CacheKey &key, const PhaseResult &pr);

    /** Monotonic cache-traffic counters (thread-safe snapshots). */
    struct Counters
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 stores = 0;
        u64 quarantined = 0;
        u64 ioErrors = 0;
    };
    Counters counters() const;

    /** On-disk location of a cell record (for tests and tooling). */
    std::string cellPath(const CacheKey &key) const;

    /**
     * Parse the config hash back out of a record filename
     * (`<16-hex>-p<phase>-s<16-hex>.cell` — the cellPath grammar; keep
     * the two together). Empty when the name is not a cache record.
     * The cache GC's liveness matching keys on this.
     */
    static std::string fileConfigHash(const std::string &filename);

    /** Serialize / parse one record body (exposed for tests). */
    static std::string serializeRecord(const CacheKey &key,
                                       const PhaseResult &pr);
    /** Empty error = success. A non-empty error means "invalid record"
     *  (the caller quarantines); parse never partially fills @p pr. */
    static std::string parseRecord(const std::string &text,
                                   const CacheKey &key, PhaseResult &pr);

  private:
    std::string root;
    std::atomic<u64> nHits{0};
    std::atomic<u64> nMisses{0};
    std::atomic<u64> nStores{0};
    std::atomic<u64> nQuarantined{0};
    std::atomic<u64> nIoErrors{0};
};

} // namespace rsep::sim

#endif // RSEP_SIM_RESULT_CACHE_HH

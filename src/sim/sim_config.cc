#include "sim/sim_config.hh"

#include <sstream>

#include "common/env.hh"

namespace rsep::sim
{

void
SimConfig::applyEnv()
{
    double scale = simScale();
    warmupInsts = static_cast<u64>(warmupInsts * scale);
    measureInsts = static_cast<u64>(measureInsts * scale);
    checkpoints = static_cast<u32>(
        envU64("RSEP_CHECKPOINTS", checkpoints));
}

SimConfig
SimConfig::baseline()
{
    SimConfig c;
    c.label = "baseline";
    c.mech = core::MechConfig{};
    c.applyEnv();
    return c;
}

SimConfig
SimConfig::zeroPredOnly()
{
    SimConfig c = baseline();
    c.label = "zero-pred";
    c.mech.zeroPred = true;
    return c;
}

SimConfig
SimConfig::moveElimOnly()
{
    SimConfig c = baseline();
    c.label = "move-elim";
    c.mech.moveElim = true;
    return c;
}

SimConfig
SimConfig::rsepIdeal()
{
    SimConfig c = baseline();
    c.label = "rsep";
    c.mech.moveElim = true; // side effect of sharing (Section IV-H1).
    c.mech.equalityPred = true;
    c.mech.rsep = equality::RsepConfig::idealLarge();
    return c;
}

SimConfig
SimConfig::vpOnly()
{
    SimConfig c = baseline();
    c.label = "vpred";
    c.mech.valuePred = true;
    return c;
}

SimConfig
SimConfig::rsepPlusVp()
{
    SimConfig c = rsepIdeal();
    c.label = "rsep+vpred";
    c.mech.valuePred = true;
    return c;
}

SimConfig
SimConfig::rsepValidation(equality::ValidationPolicy policy, bool)
{
    SimConfig c = rsepIdeal();
    switch (policy) {
      case equality::ValidationPolicy::Ideal:
        c.label = "rsep-val-ideal";
        break;
      case equality::ValidationPolicy::Issue2xLockFu:
        c.label = "rsep-val-2x-lock";
        break;
      case equality::ValidationPolicy::Issue2xAnyFu:
        c.label = "rsep-val-2x-any";
        break;
    }
    c.mech.rsep.validation = policy;
    return c;
}

SimConfig
SimConfig::rsepSampling(u32 start_train_threshold)
{
    SimConfig c = rsepValidation(equality::ValidationPolicy::Issue2xAnyFu);
    c.label = "rsep-val-2x-sample" + std::to_string(start_train_threshold);
    c.mech.rsep.sampling = true;
    c.mech.rsep.startTrainThreshold = start_train_threshold;
    return c;
}

SimConfig
SimConfig::rsepRealistic()
{
    SimConfig c = baseline();
    c.label = "rsep-realistic";
    c.mech.moveElim = true;
    c.mech.equalityPred = true;
    c.mech.rsep = equality::RsepConfig::realistic();
    return c;
}

SimConfig
SimConfig::fig1Probe()
{
    SimConfig c = baseline();
    c.label = "fig1-probe";
    c.mech.fig1Probe = true;
    return c;
}

std::string
describeTable1(const SimConfig &cfg)
{
    const auto &cp = cfg.core;
    std::ostringstream os;
    os << "TABLE I: Simulator configuration overview\n"
       << "Front End\n"
       << "  L1I 8-way 32KB, 1 cycle, 128-entry ITLB\n"
       << "  32B fetch buffer, " << cp.fetchWidth
       << "-wide fetch over 1 taken branch\n"
       << "  TAGE 1+12 components ~15K entries, " << cp.frontendDepth + 2
       << " cycles min mispredict penalty; 2-way 4K-entry BTB, 32-entry RAS\n"
       << "  " << cp.renameWidth
       << "-wide rename with zero-idiom elimination\n"
       << "Execution\n"
       << "  " << cp.robSize << "-entry ROB, " << cp.iqSize
       << "-entry IQ unified, " << cp.lqSize << "/" << cp.sqSize
       << "-entry LQ/SQ (STLF lat. " << cp.stlfLat << " cycles), "
       << cp.intPregs << "/" << cp.fpPregs << " INT/FP registers\n"
       << "  2K-SSID/1K-LFST Store Sets, not rolled back on squash\n"
       << "  " << cp.issueWidth << "-issue, 4ALU(" << cp.intAluLat
       << "c) incl 1Mul(" << cp.intMulLat << "c) and 1Div(" << cp.intDivLat
       << "c*), 3FP(" << cp.fpAluLat << "c) incl 1FPMul(" << cp.fpMulLat
       << "c) and 1FPDiv(" << cp.fpDivLat << "c*), 2Ld/Str, 1Str\n"
       << "  Full bypass, " << cp.commitWidth << "-wide retire\n"
       << "Caches\n"
       << "  L1D 8-way 32KB, 4 cycles load-to-use, 64 MSHRs, 2 load ports,"
          " 1 store port, 64-entry DTLB, stride prefetcher (degree 1)\n"
       << "  Unified private L2 16-way 256KB, 12 cycles, 64 MSHRs,"
          " stream prefetcher (degree 1)\n"
       << "  Unified shared L3 24-way 6MB, 21 cycles, 64 MSHRs,"
          " stream prefetcher (degree 1)\n"
       << "  All caches have 64B lines and LRU replacement\n"
       << "Memory\n"
       << "  Dual channel DDR4-2400 (17-17-17), 2 ranks/channel,"
          " 8 banks/rank, 8K row-buffer\n"
       << "  (*) not pipelined\n";
    return os.str();
}

} // namespace rsep::sim

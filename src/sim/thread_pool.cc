#include "sim/thread_pool.hh"

#include <chrono>

namespace rsep::sim
{

ThreadPool::ThreadPool(unsigned nthreads)
{
    if (nthreads == 0)
        nthreads = 1;
    queues.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i)
        queues.push_back(std::make_unique<Worker>());
    workers.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(poolMtx);
        stopping = true;
    }
    workCv.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    size_t target;
    {
        std::lock_guard<std::mutex> lk(poolMtx);
        ++pending;
        target = nextQueue;
        nextQueue = (nextQueue + 1) % queues.size();
    }
    {
        std::lock_guard<std::mutex> lk(queues[target]->mtx);
        queues[target]->deq.push_back(std::move(task));
    }
    workCv.notify_one();
}

bool
ThreadPool::popOwn(size_t w, std::function<void()> &out)
{
    Worker &q = *queues[w];
    std::lock_guard<std::mutex> lk(q.mtx);
    if (q.deq.empty())
        return false;
    out = std::move(q.deq.back());
    q.deq.pop_back();
    return true;
}

bool
ThreadPool::steal(size_t thief, std::function<void()> &out)
{
    for (size_t off = 1; off < queues.size(); ++off) {
        Worker &q = *queues[(thief + off) % queues.size()];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (q.deq.empty())
            continue;
        out = std::move(q.deq.front());
        q.deq.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(size_t w)
{
    for (;;) {
        std::function<void()> task;
        if (popOwn(w, task) || steal(w, task)) {
            task();
            bool drained;
            {
                std::lock_guard<std::mutex> lk(poolMtx);
                drained = --pending == 0;
            }
            if (drained)
                idleCv.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lk(poolMtx);
        if (stopping)
            return;
        if (pending == 0) {
            workCv.wait(lk, [this] { return stopping || pending > 0; });
            continue;
        }
        // Tasks are pending but all deques looked empty in our sweep
        // (they are being executed, or a submit raced us); nap until
        // poked rather than spinning.
        workCv.wait_for(lk, std::chrono::milliseconds(1));
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(poolMtx);
    idleCv.wait(lk, [this] { return pending == 0; });
}

} // namespace rsep::sim

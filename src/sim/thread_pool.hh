/**
 * @file
 * A small work-stealing thread pool for the experiment matrix. Each
 * worker owns a deque: it pushes/pops its own work LIFO at the back
 * and steals FIFO from the front of other workers' deques when idle
 * (oldest-first stealing keeps big per-benchmark batches flowing).
 *
 * Determinism contract: the pool schedules WHEN tasks run, never WHAT
 * they compute — callers give every task its own seed and its own
 * output slot, so results are bit-identical at any thread count.
 */

#ifndef RSEP_SIM_THREAD_POOL_HH
#define RSEP_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace rsep::sim
{

class ThreadPool
{
  public:
    /** Start @p nthreads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned nthreads);

    /** Drains remaining work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task (round-robin across worker deques). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const { return unsigned(workers.size()); }

  private:
    struct Worker
    {
        std::deque<std::function<void()>> deq;
        std::mutex mtx;
    };

    bool popOwn(size_t w, std::function<void()> &out);
    bool steal(size_t thief, std::function<void()> &out);
    void workerLoop(size_t w);

    std::vector<std::unique_ptr<Worker>> queues;
    std::vector<std::thread> workers;

    std::mutex poolMtx;
    std::condition_variable workCv; ///< workers: work may be available.
    std::condition_variable idleCv; ///< waiters: pending may have hit 0.
    size_t pending = 0;             ///< submitted, not yet finished.
    size_t nextQueue = 0;           ///< round-robin submission cursor.
    bool stopping = false;
};

} // namespace rsep::sim

#endif // RSEP_SIM_THREAD_POOL_HH

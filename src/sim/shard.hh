/**
 * @file
 * Deterministic sharding of an experiment matrix across processes and
 * hosts (`--shard i/N` on every bench/example driver).
 *
 * The unit of distribution is the **run cell** — one (benchmark,
 * config) pair with all of its checkpoints. Keeping a run's checkpoints
 * together means every stat-export row is produced wholly by one shard,
 * so shard dumps are row-disjoint and `rsep_merge` can reassemble the
 * exact unsharded table.
 *
 * Assignment is by a stable FNV-1a hash of the cell identity
 * (benchmark name + config hash), *not* by position in the expanded
 * list: adding or removing scenarios or benchmarks never reshuffles
 * the shard that any existing cell lands on, which is what lets a
 * partially-complete sweep grow without invalidating cached or
 * already-exported shards.
 */

#ifndef RSEP_SIM_SHARD_HH
#define RSEP_SIM_SHARD_HH

#include <string>
#include <vector>

#include "sim/sim_config.hh"

namespace rsep::sim
{

/** Hard ceiling on the shard count (mirrors the jobs ceiling). */
constexpr unsigned maxShards = 4096;

/** One process's slice of the matrix: shard `index` of `count`. */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;

    /** True when the run is actually split (1/1 is the full matrix). */
    bool active() const { return count > 1; }
};

/** Stable FNV-1a 64 identity hash of one run cell. */
u64 cellIdentityHash(const std::string &benchmark,
                     const std::string &config_hash);

/** Shard that owns the (benchmark, config-hash) run cell. */
unsigned shardOf(const std::string &benchmark,
                 const std::string &config_hash, unsigned shard_count);

/**
 * Strictly parse an "i/N" shard spec (0-based, i < N, N <= maxShards).
 * On failure returns false with a diagnostic in @p err.
 */
bool parseShardValue(const std::string &s, ShardSpec &shard,
                     std::string &err);

/** The matrix slice a shard owns, precomputed per (benchmark, config). */
struct ShardPlan
{
    /** selected[b][c]: does this shard run benchmark b under config c? */
    std::vector<std::vector<bool>> selected;
    /** configHash per config (computed once here; callers reuse it as
     *  the cache key and the stat-row identity). */
    std::vector<std::string> configHashes;
    size_t selectedRuns = 0;
    size_t totalRuns = 0;
};

/**
 * Expand the (benchmark x config) run-cell list and mark this shard's
 * slice. Config identity is the config hash, so two identical configs
 * under different labels land on the same shard.
 */
ShardPlan planShard(const std::vector<SimConfig> &configs,
                    const std::vector<std::string> &benchmarks,
                    const ShardSpec &shard);

} // namespace rsep::sim

#endif // RSEP_SIM_SHARD_HH

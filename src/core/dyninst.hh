/**
 * @file
 * The timing-side in-flight instruction record (one per ROB entry).
 */

#ifndef RSEP_CORE_DYNINST_HH
#define RSEP_CORE_DYNINST_HH

#include <array>

#include "core/wakeup.hh"
#include "isa/static_inst.hh"
#include "pred/branch_unit.hh"
#include "pred/dvtage.hh"
#include "rsep/distance_pred.hh"
#include "wl/dynrecord.hh"

namespace rsep::core
{

/**
 * Where an unissued instruction currently lives in the event-driven
 * issue scheduler (see wakeup.hh and DESIGN.md §9).
 */
enum class SchedState : u8 {
    None,     ///< not scheduled (non-exec, or already issued).
    WaitPreg, ///< parked on a source preg whose ready time is unknown.
    WaitSeq,  ///< parked on a producing instruction's waiter chain.
    InHeap,   ///< ready time known; sleeping until that cycle.
    Ready,    ///< in the ready list, contending for issue ports.
};

/** Which mechanism (if any) handled the instruction at rename. */
enum class RenameAction : u8 {
    None,          ///< normal rename + allocation.
    ZeroIdiom,     ///< non-speculative: dest -> zero preg, no execution.
    MoveElim,      ///< non-speculative: dest -> source preg, no execution.
    ZeroPredicted, ///< speculative: dest -> zero preg, executes to check.
    RsepShared,    ///< speculative: dest -> producer preg, executes.
    OracleShared,  ///< oracle equality: dest -> producer preg, executes,
                   ///< never mispredicts (limit study).
    ValuePredicted,///< speculative: own preg, value ready at dispatch.
};

/** One in-flight instruction. */
struct InflightInst
{
    // Identity.
    u64 traceIdx = 0;      ///< == sequence number; distance unit.
    const isa::StaticInst *si = nullptr;
    Addr pc = 0;
    wl::DynRecord rec;

    // Rename results.
    RenameAction action = RenameAction::None;
    PhysReg destPreg = invalidPhysReg; ///< mapping installed for dst.
    PhysReg oldPreg = invalidPhysReg;  ///< previous mapping of dst.
    bool allocatedPreg = false;        ///< destPreg came off the free list.
    std::array<PhysReg, 3> srcPregs{invalidPhysReg, invalidPhysReg,
                                    invalidPhysReg};
    unsigned numSrcs = 0;
    bool producesReg = false;

    // Equality prediction state.
    equality::DistLookup distLk;
    u64 shareProducerSeq = 0;      ///< producer traceIdx (RsepShared).
    bool likelyCandidate = false;  ///< sampled training via validation.
    bool candidateHasPartner = false;
    PhysReg candidatePartnerPreg = invalidPhysReg;
    u64 candidateProducerSeq = 0;
    u64 candidatePartnerValue = 0; ///< producer's result (for training).
    u64 shareProducerValue = 0;    ///< producer's result (for validation).

    // Value prediction state.
    pred::VpLookup vpLk;

    // Zero prediction bookkeeping.
    bool zeroPredLookedUp = false;

    // Branch state.
    pred::BranchPrediction bp;

    // History snapshots for squash restore (all instructions).
    pred::GlobalHist histFetch;
    pred::ReturnAddressStack::Snapshot rasSnap{0, 0};

    // Scheduling state.
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle completeCycle = invalidCycle; ///< result available.
    bool inIq = false;      ///< occupies an IQ entry.
    bool issued = false;
    bool needsExec = true;  ///< eliminated insts skip execution.
    SeqNum storeDepSeq = 0; ///< store-set dependence (0 = none).

    // Validation micro-op state (equality/zero prediction).
    bool needsValidation = false;
    bool validationIssued = false;
    Cycle validationCycle = invalidCycle;

    // Event-driven issue-scheduling state (core/wakeup.hh). The token
    // stamps the instruction's current scheduler membership; stale
    // heap/chain entries (e.g. orphaned by a squash whose seq was
    // re-fetched) carry an older token and are dropped at wake time.
    SchedState schedState = SchedState::None;
    u32 schedToken = 0;
    /** Head of the chain of younger instructions waiting on this one
     *  (store-set or shared-producer dependences). */
    u32 waiterHead = invalidWaiter;

    bool
    isLoad() const
    {
        return si->isLoad();
    }
    bool
    isStore() const
    {
        return si->isStore();
    }
};

} // namespace rsep::core

#endif // RSEP_CORE_DYNINST_HH

#include "core/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/engines/dvtage_engine.hh"
#include "core/engines/move_elim_engine.hh"
#include "core/engines/oracle_eq_engine.hh"
#include "core/engines/rsep_engine.hh"
#include "core/engines/zero_idiom_engine.hh"
#include "core/engines/zero_pred_engine.hh"

namespace rsep::core
{

using isa::OpClass;

Pipeline::Pipeline(const CoreParams &core_params, const MechConfig &mech_cfg,
                   wl::TraceSource &src, u64 seed)
    : cp(core_params), mech(mech_cfg), emul(src), trace(src),
      hier(mem::HierarchyParams{}),
      bru(pred::TageParams{}, seed ^ 0x1111),
      isrbUnit(mech.rsep.isrbEntries, mech.rsep.isrbCounterBits),
      rename(core_params), fuPool(core_params),
      pregReady(core_params.intPregs + core_params.fpPregs, 0),
      memIdx(4 * (core_params.lqSize + core_params.sqSize)),
      rng(seed ^ 0x4444)
{
    // Fixed-capacity ring: reserve the structural bound (ROB plus the
    // frontend queue plus one fetch group) once so the steady-state
    // cycle loop never allocates — and in-place references into the
    // window are never invalidated by growth.
    window.reserve(cp.robSize + 1 + cp.frontendDepth * cp.fetchWidth +
                   16 + cp.fetchWidth);
    pregWaiterHead.assign(pregReady.size(), invalidWaiter);
    idealVal = mech.rsep.validation == equality::ValidationPolicy::Ideal;
    // Engines are constructed in every configuration (their structures
    // stay inspectable through the accessors below); only those enabled
    // in MechConfig are registered, i.e. receive hook dispatches.
    zeroIdiomEngine = std::make_unique<ZeroIdiomEngine>();
    moveElimEngine = std::make_unique<MoveElimEngine>();
    zeroPredEngine =
        std::make_unique<ZeroPredEngine>(4096, mech.rsep.confKind);
    // The oracle's pair-visibility window is rsep.history_depth
    // *producers* — the FIFO's unit — so "rsep vs its oracle"
    // compares like for like (the scan is also ROB-bounded; the
    // registered rsep-oracle arm's 1024 exceeds any ROB).
    oracleEqEngine =
        std::make_unique<OracleEqEngine>(mech.rsep.historyDepth);
    rsepEngine = std::make_unique<RsepEngine>(
        mech.rsep, core_params.intPregs + core_params.fpPregs,
        seed ^ 0x3333);
    dvtageEngine = std::make_unique<DvtageEngine>(mech.vp, seed ^ 0x2222);

    // Registration order is dispatch order: the rename-stage priority
    // chain of the paper (Fig. 3), non-speculative mechanisms first.
    if (mech.zeroIdiomElim)
        active.push_back(zeroIdiomEngine.get());
    if (mech.moveElim)
        active.push_back(moveElimEngine.get());
    if (mech.zeroPred)
        active.push_back(zeroPredEngine.get());
    if (mech.oracleEq)
        active.push_back(oracleEqEngine.get());
    if (mech.equalityPred)
        active.push_back(rsepEngine.get());
    if (mech.valuePred)
        active.push_back(dvtageEngine.get());
    for (auto *e : active)
        if (e->wantsIssueHook())
            issueSubscribers.push_back(e);

    // Rename-side folded history: the engines doing history-indexed
    // lookups at rename register their fold geometry here; one replica
    // serves all of them (slots dedup across predictors).
    if (mech.equalityPred)
        rsepEngine->distancePredictor().registerFolds(renameFoldSpec);
    if (mech.valuePred)
        dvtageEngine->predictor().registerFolds(renameFoldSpec);
    renameHistActive = mech.equalityPred || mech.valuePred;
    renameFolds_.bind(&renameFoldSpec);

    // Oracle equality: value -> in-window-producer index replacing the
    // per-rename ROB walk.
    if (mech.oracleEq)
        valIdx = std::make_unique<ValueEqIndex>(2 * cp.robSize);

    // The hardwired zero register and all initial architectural
    // mappings hold value 0 and are ready from cycle 0.
    for (unsigned p = 0; p < pregReady.size(); ++p)
        pregReady[p] = 0;
    if (mech.fig1Probe) {
        // The probe's value-liveness bookkeeping is only allocated (and
        // only maintained) when the probe runs; every other arm pays
        // nothing for it on the commit path.
        fig1 = std::make_unique<Fig1State>();
        fig1->pregValue.assign(pregReady.size(), 0);
        // Initial mappings (1 per arch reg + zero reg) all hold 0.
        fig1->liveValues[0] = isa::numArchRegs;
    }
}

Pipeline::~Pipeline() = default;

EngineContext
Pipeline::makeContext()
{
    return EngineContext{*this, st, mech, rng, cycle, committed};
}

SpeculationEngine *
Pipeline::engineByName(const std::string &name) const
{
    for (auto *e : active)
        if (e->name() == name)
            return e;
    return nullptr;
}

equality::FifoHistory &
Pipeline::fifoHistory()
{
    return rsepEngine->fifoHistory();
}

equality::DistancePredictor &
Pipeline::distancePredictor()
{
    return rsepEngine->distancePredictor();
}

pred::Dvtage &
Pipeline::valuePredictor()
{
    return dvtageEngine->predictor();
}

equality::HashRegisterFile &
Pipeline::hrf()
{
    return rsepEngine->hrf();
}

equality::ZeroPredictor &
Pipeline::zeroPredictor()
{
    return zeroPredEngine->predictor();
}

Cycle
Pipeline::opLatency(OpClass c) const
{
    switch (c) {
      case OpClass::IntAlu: return cp.intAluLat;
      case OpClass::IntMul: return cp.intMulLat;
      case OpClass::IntDiv: return cp.intDivLat;
      case OpClass::FpAlu: return cp.fpAluLat;
      case OpClass::FpMul: return cp.fpMulLat;
      case OpClass::FpDiv: return cp.fpDivLat;
      case OpClass::Branch: return cp.branchLat;
      case OpClass::Store: return cp.storeLat;
      default: return 1;
    }
}

void
Pipeline::resetStats()
{
    st = PipelineStats{};
    for (auto *e : active)
        e->resetStats();
}

void
Pipeline::attachSampler(StatSampler *s)
{
    sampler = s;
    if (sampler) {
        // Baseline snapshot: counters resetStats() does not zero (the
        // branch unit's) delta correctly from their current values.
        StatSample cum;
        captureSample(cum);
        sampler->start(cum);
    }
}

void
Pipeline::finishSampling()
{
    if (!sampler)
        return;
    StatSample cum;
    captureSample(cum);
    sampler->finish(cum, st.cycles.value());
    sampler = nullptr;
}

void
Pipeline::captureSample(StatSample &cum) const
{
    cum.committedInsts = st.committedInsts.value();
    cum.committedBranches = st.committedBranches.value();
    cum.committedLoads = st.committedLoads.value();
    cum.committedStores = st.committedStores.value();
    cum.branchMispredicts = bru.condMispredicts.value() +
                            bru.indirectMispredicts.value() +
                            bru.returnMispredicts.value();
    cum.commitSquashes = st.commitSquashes.value();
    cum.memOrderSquashes = st.memOrderSquashes.value();
    cum.robOcc = nRenamed;
    cum.frontendOcc = window.size() - nRenamed;
    // Engines fill their fixed schema slot whether registered or not
    // (unregistered ones receive no hooks, so their counters — and
    // hence the slot's deltas — stay zero).
    const SpeculationEngine *slots[numSampleEngineSlots] = {
        zeroIdiomEngine.get(), moveElimEngine.get(), zeroPredEngine.get(),
        oracleEqEngine.get(),  rsepEngine.get(),     dvtageEngine.get(),
    };
    for (size_t e = 0; e < numSampleEngineSlots; ++e) {
        EngineSample es = slots[e]->sampleStats();
        cum.engCoverage[e] = es.coverage;
        cum.engCorrect[e] = es.correct;
        cum.engMispredict[e] = es.mispredict;
    }
}

void
Pipeline::sampleTick()
{
    // One snapshot serves every boundary st.cycles crossed this
    // iteration: boundaries inside an idle fast-forward see the same
    // counter values single-stepping would have seen (nothing commits,
    // renames or squashes in a provably idle cycle), so the extra rows
    // carry zero deltas and only advance the time axis.
    StatSample cum;
    captureSample(cum);
    while (st.cycles.value() >= sampler->nextDue())
        sampler->record(cum);
}

InflightInst *
Pipeline::findBySeq(u64 seq)
{
    if (nRenamed == 0 || seq < window.front().traceIdx)
        return nullptr;
    u64 pos = seq - window.front().traceIdx;
    if (pos >= nRenamed)
        return nullptr;
    return &window[static_cast<size_t>(pos)];
}

// ---------------------------------------------------------------- fetch

void
Pipeline::doFetch()
{
    if (cycle < fetchResumeCycle || fetchWaitingExec)
        return;
    // Front-end backpressure.
    if (window.size() - nRenamed >= cp.frontendDepth * cp.fetchWidth + 16)
        return;

    unsigned taken_seen = 0;
    for (unsigned n = 0; n < cp.fetchWidth; ++n) {
        const wl::DynRecord &rec = trace.at(fetchIdx);
        const isa::StaticInst &si = emul.program().at(rec.staticIdx);
        Addr pc = isa::Program::pcOf(rec.staticIdx);

        // I-cache: fetching a new line may stall the group.
        Addr line = pc >> mem::lineShift;
        if (line != lastFetchLine) {
            Cycle ready = hier.ifetch(pc, cycle);
            lastFetchLine = line;
            if (ready > cycle + hier.params().l1i.latency) {
                fetchResumeCycle = ready;
                break;
            }
        }

        InflightInst &di = window.emplace_back();
        di.traceIdx = fetchIdx;
        di.si = &si;
        di.pc = pc;
        di.rec = rec;
        di.fetchCycle = cycle;
        di.histFetch = bru.history();
        di.rasSnap = bru.rasSnapshot();

        bool stop_after = false;
        if (si.isBranch()) {
            Addr target = isa::Program::pcOf(rec.nextIdx);
            bru.onFetchBranch(pc, si, rec.taken, target, di.bp);
            if (di.bp.redirect == pred::Redirect::Execute) {
                fetchWaitingExec = true;
                stop_after = true;
            } else if (di.bp.redirect == pred::Redirect::Decode) {
                fetchResumeCycle = cycle + cp.decodeRedirectPenalty;
                stop_after = true;
            } else if (rec.taken) {
                if (++taken_seen > cp.takenBranchesPerFetch)
                    stop_after = true; // cannot follow a 2nd taken branch.
                lastFetchLine = ~Addr{0}; // next fetch starts a new line.
            }
        }

        ++fetchIdx;
        if (stop_after)
            break;
    }
}

// --------------------------------------------------------------- rename

void
Pipeline::renameOne(InflightInst &di)
{
    const isa::StaticInst &si = *di.si;

    // Source renaming.
    di.numSrcs = 0;
    si.forEachSrc([&](ArchReg r) {
        di.srcPregs[di.numSrcs++] =
            r == isa::zeroReg ? zeroPreg : rename.map(r);
    });
    di.producesReg = si.writesReg();
    di.dispatchCycle = cycle;

    // Speculation engines: the rename priority chain (the first engine
    // to claim the destination wins; later engines still get to do
    // their predictor lookups), then the late pass for decisions that
    // depend on the final verdict.
    EngineContext ctx = makeContext();
    bool handled = false;
    for (auto *e : active)
        handled = e->atRename(di, handled, ctx) || handled;
    for (auto *e : active)
        e->atRenamePost(di, handled, ctx);

    // Under the ideal validation policy (Fig. 4 / Fig. 6 "Ideal
    // Validation") checking costs nothing: no second issue, no IQ
    // retention, no producer dependency. Correctness verdicts are
    // still enforced at commit. This applies to every validation
    // consumer (zero prediction included), which is why it lives here
    // and not in an engine.
    if (mech.rsep.validation == equality::ValidationPolicy::Ideal)
        di.needsValidation = false;

    // Destination allocation + map update.
    if (di.producesReg) {
        di.oldPreg = rename.map(si.dst);
        if (di.action == RenameAction::None ||
            di.action == RenameAction::ValuePredicted) {
            di.destPreg = rename.allocate(si.dst);
            if (di.destPreg == invalidPhysReg)
                rsep_panic("free list empty despite rename gating");
            di.allocatedPreg = true;
            pregReady[di.destPreg] =
                di.action == RenameAction::ValuePredicted ? cycle
                                                          : invalidCycle;
        }
        rename.setMap(si.dst, di.destPreg);
    }

    // Memory dependences. The LFST is not rolled back on squashes
    // (Table I), so after a squash it can name a store slot that now
    // belongs to a *younger* instruction; such stale entries are
    // unusable (hardware would find the slot empty) and are dropped.
    SeqNum dep = si.isStore()
        ? storeSets.storeRename(di.pc, di.traceIdx + 1)
        : (si.isLoad() ? storeSets.loadRename(di.pc) : 0);
    if (dep && dep - 1 < di.traceIdx)
        di.storeDepSeq = dep;

    // Queues.
    if (si.opClass() == OpClass::Nop) {
        di.needsExec = false;
        di.completeCycle = cycle;
    }
    if (di.needsExec) {
        di.inIq = true;
        ++iqUsed;
    }
    if (si.isLoad())
        ++lqUsed;
    if (si.isStore()) {
        ++sqUsed;
        // In-window stores are indexed by doubleword from rename (the
        // STLF probe must see unissued conflicting stores too).
        memIdx.addStore(di.rec.effAddr & ~Addr{7}, di.traceIdx);
    }

    // Rename-side history replica: advance *after* this instruction's
    // engine hooks (which must see the history preceding it).
    if (renameHistActive && si.isBranch()) {
        if (si.isCondBranch()) {
            renameFolds_.insertDir(di.rec.taken, renameHist_.dir);
            renameHist_.insert(di.rec.taken, di.pc);
        } else {
            renameHist_.insertPath(isa::Program::pcOf(di.rec.nextIdx));
        }
    }

    // Oracle equality index: this instruction becomes discoverable as a
    // producer for younger renames.
    if (valIdx && di.producesReg && di.destPreg != invalidPhysReg)
        valIdx->add(di.rec.result, di.traceIdx, valOrdNext++);

    // Hand the instruction to the issue scheduler. Rename order is
    // seq order, so both lists stay age-sorted by construction.
    if (di.needsValidation)
        pendingValidation.push_back(di.traceIdx);
    if (di.needsExec)
        scheduleIssue(di);
}

bool
Pipeline::mayElideExecution(const isa::StaticInst &si) const
{
    ElideCacheEntry &slot =
        elideCache[(reinterpret_cast<uintptr_t>(&si) >> 4) &
                   (elideCache.size() - 1)];
    if (slot.si == &si)
        return slot.elide;
    bool elide = false;
    for (auto *e : active)
        if (e->mayElideExecution(si)) {
            elide = true;
            break;
        }
    slot = {&si, elide};
    return elide;
}

void
Pipeline::doRename()
{
    for (unsigned n = 0; n < cp.renameWidth && nRenamed < window.size();
         ++n) {
        InflightInst &head = window[nRenamed];
        if (head.fetchCycle + cp.frontendDepth > cycle)
            break;
        const isa::StaticInst &si = *head.si;
        if (nRenamed >= cp.robSize) {
            ++st.renameStallRob;
            break;
        }
        // Conservative IQ gating: an engine that *may* elide execution
        // is trusted to, even though elision can still fail at rename
        // (e.g. an ISRB-refused move).
        bool needs_exec =
            !mayElideExecution(si) && si.opClass() != OpClass::Nop;
        if (needs_exec && iqUsed >= cp.iqSize) {
            ++st.renameStallIq;
            break;
        }
        if ((si.isLoad() && lqUsed >= cp.lqSize) ||
            (si.isStore() && sqUsed >= cp.sqSize)) {
            ++st.renameStallLsq;
            break;
        }
        if (si.writesReg() && !rename.hasFree(si.dst)) {
            ++st.renameStallRegs;
            break;
        }
        // Rename in place: the instruction just moves across the
        // ROB/frontend boundary.
        ++nRenamed;
        renameOne(head);
    }
}

// ---------------------------------------------------------------- issue

bool
Pipeline::sourcesReady(const InflightInst &di) const
{
    for (unsigned i = 0; i < di.numSrcs; ++i)
        if (pregReady[di.srcPregs[i]] > cycle)
            return false;
    return true;
}

u64
Pipeline::issueProducerSeq(const InflightInst &di) const
{
    // Equality-predicted instructions (and likely candidates) are made
    // dependent on their producer so the validation micro-op can catch
    // the shared value on the bypass network (IV-F1). The ideal-
    // validation arm has no such constraint.
    if (idealVal)
        return 0;
    if (di.action == RenameAction::RsepShared)
        return di.shareProducerSeq;
    return di.likelyCandidate ? di.candidateProducerSeq : 0;
}

void
Pipeline::parkWaiter(InflightInst &di, u32 &chain_head, SchedState state)
{
    di.schedToken = ++schedCounter;
    di.schedState = state;
    chain_head = waiters.alloc(di.traceIdx, di.schedToken, chain_head);
}

void
Pipeline::scheduleIssue(InflightInst &di)
{
    // Park on the first blocker whose ready time is not yet known; its
    // wake re-runs this from scratch, so one chain membership at a
    // time is enough.
    for (unsigned i = 0; i < di.numSrcs; ++i) {
        PhysReg p = di.srcPregs[i];
        if (pregReady[p] == invalidCycle) {
            parkWaiter(di, pregWaiterHead[p], SchedState::WaitPreg);
            return;
        }
    }
    Cycle wake = di.dispatchCycle + 1;
    for (unsigned i = 0; i < di.numSrcs; ++i)
        wake = std::max(wake, pregReady[di.srcPregs[i]]);
    if (u64 extra = issueProducerSeq(di)) {
        if (InflightInst *prod = findBySeq(extra)) {
            if (!prod->issued) {
                // Executing producers announce a completion time at
                // issue; eliminated ones unblock when they retire.
                // Both drain the same chain.
                parkWaiter(di, prod->waiterHead, SchedState::WaitSeq);
                return;
            }
            wake = std::max(wake, prod->completeCycle);
        }
    }
    if (di.storeDepSeq) {
        InflightInst *dep = findBySeq(di.storeDepSeq - 1);
        if (dep && dep->isStore()) {
            if (!dep->issued) {
                parkWaiter(di, dep->waiterHead, SchedState::WaitSeq);
                return;
            }
            wake = std::max(wake, dep->completeCycle);
        }
    }
    di.schedToken = ++schedCounter;
    if (wake <= cycle) {
        di.schedState = SchedState::Ready;
        if (inIssueScan) {
            // Mid-scan wake (zero-latency producer): join the current
            // pass through the deferred side list, never by mutating
            // the vector being scanned.
            auto it = std::lower_bound(
                deferredReady.begin() +
                    static_cast<std::ptrdiff_t>(deferredPos),
                deferredReady.end(), di.traceIdx,
                [](const ReadyEntry &e, u64 s) { return e.seq < s; });
            deferredReady.insert(it,
                                 ReadyEntry{di.traceIdx, di.schedToken});
        } else {
            readyList.insert(di.traceIdx, di.schedToken);
        }
    } else {
        di.schedState = SchedState::InHeap;
        wakeHeap.push(wake, di.traceIdx, di.schedToken);
    }
}

void
Pipeline::wakeChain(u32 head, SchedState expected)
{
    while (head != invalidWaiter) {
        WaiterNode n = waiters.at(head);
        waiters.free(head);
        head = n.next;
        // Stale nodes — the waiter issued, squashed, or its seq was
        // re-fetched since parking — fail the token/state check.
        InflightInst *w = findBySeq(n.seq);
        if (w && w->schedToken == n.token && w->schedState == expected)
            scheduleIssue(*w);
    }
}

void
Pipeline::promoteDueWakeups()
{
    WakeEntry e;
    while (wakeHeap.popDue(cycle, e)) {
        InflightInst *di = findBySeq(e.seq);
        if (!di || di->schedToken != e.token ||
            di->schedState != SchedState::InHeap)
            continue; // orphaned by a squash.
        di->schedState = SchedState::Ready;
        readyList.insert(e.seq, e.token);
    }
}

void
Pipeline::squashSchedCleanup(u64 first_seq)
{
    readyList.truncateFrom(first_seq);
    auto it = std::lower_bound(pendingValidation.begin(),
                               pendingValidation.end(), first_seq);
    pendingValidation.erase(it, pendingValidation.end());
    // Heap entries of squashed instructions go stale by token and are
    // dropped when their wake cycle arrives.
}

void
Pipeline::memIndexRemove(const InflightInst &di)
{
    if (di.isStore())
        memIdx.removeStore(di.rec.effAddr & ~Addr{7}, di.traceIdx);
    else if (di.isLoad() && di.issued)
        memIdx.removeIssuedLoad(di.rec.effAddr & ~Addr{7}, di.traceIdx);
}

Cycle
Pipeline::executeMemOrAlu(InflightInst &di, int port)
{
    const isa::StaticInst &si = *di.si;
    OpClass c = si.opClass();
    if (c == OpClass::Load) {
        // Store-to-load forwarding: youngest older store to the same
        // doubleword that has already executed (O(1) via the index;
        // an unexecuted conflicting store is speculated past).
        Addr dword = di.rec.effAddr & ~Addr{7};
        if (auto s = memIdx.youngestStoreBelow(dword, di.traceIdx)) {
            InflightInst *older = findBySeq(*s);
            if (older && older->issued)
                return std::max(cycle, older->completeCycle) +
                       cp.stlfLat;
        }
        return hier.load(di.pc, di.rec.effAddr, cycle);
    }
    Cycle lat = opLatency(c);
    Cycle done = cycle + lat;
    if (c == OpClass::IntDiv || c == OpClass::FpDiv)
        fuPool.markUnpipelined(port, done); // unpipelined units.
    return done;
}

void
Pipeline::doIssueAndValidate()
{
    fuPool.beginCycle(cycle);
    const bool lock_fu =
        mech.rsep.validation == equality::ValidationPolicy::Issue2xLockFu;

    // 1. Validation micro-ops (picker gives them priority, IV-F1).
    // Only instructions with a pending micro-op are on the list, in
    // ROB age order — arms without validation pay nothing here.
    if (!pendingValidation.empty()) {
        size_t w = 0;
        for (size_t i = 0; i < pendingValidation.size(); ++i) {
            u64 seq = pendingValidation[i];
            InflightInst *dp = findBySeq(seq);
            if (!dp || !dp->needsValidation || dp->validationIssued)
                continue; // retired, squashed or done: drop.
            InflightInst &di = *dp;
            auto keep = [&] { pendingValidation[w++] = seq; };
            if (!di.issued || di.completeCycle > cycle) {
                keep();
                continue;
            }
            // The shared/partner value must be available (back-to-back
            // with the producer via the bypass network).
            u64 prod_seq = di.action == RenameAction::RsepShared
                ? di.shareProducerSeq
                : (di.likelyCandidate ? di.candidateProducerSeq : 0);
            if (prod_seq) {
                InflightInst *prod = findBySeq(prod_seq);
                if (prod &&
                    (!prod->issued || prod->completeCycle > cycle)) {
                    keep();
                    continue;
                }
            }
            if (!idealVal) {
                int port =
                    fuPool.tryIssueValidation(di.si->opClass(), lock_fu);
                if (port < 0) {
                    keep();
                    continue;
                }
            }
            di.validationIssued = true;
            di.validationCycle = cycle;
            if (di.inIq) {
                di.inIq = false;
                --iqUsed;
            }
        }
        pendingValidation.resize(w);
    }

    // 2. Regular issue, oldest first: wake the instructions whose
    // operands become ready this cycle, then scan only the ready set
    // (seq-sorted, so arbitration order matches the old full-ROB walk
    // exactly). Entries that lose port arbitration stay for the next
    // cycle; entries whose conditions are found unmet re-park.
    promoteDueWakeups();
    auto &ready = readyList.entries();
    deferredReady.clear();
    deferredPos = 0;
    inIssueScan = true;

    // Fast path: in-place compaction over the stable vector (mid-scan
    // wakes are routed to deferredReady, never into this vector). The
    // slow merge path below engages only once a same-cycle deferred
    // wake actually appears — possible only under zero-latency
    // configurations.
    const size_t n = ready.size();
    size_t w = 0, i = 0;
    size_t squash_pos = 0;
    // Seq-sorted merge of the unprocessed vector remainder (from
    // @p vec_from) with the unconsumed deferred wakes into the
    // scratch, which then becomes the ready list. Every exit that can
    // leave entries unprocessed — a mid-stage memory-order squash in
    // either pass, or slow-path completion — funnels through this so
    // the list stays sorted and no deferred wake is dropped.
    auto mergeRestInto = [&](size_t vec_from) {
        while (vec_from < n || deferredPos < deferredReady.size()) {
            if (deferredPos >= deferredReady.size() ||
                (vec_from < n &&
                 ready[vec_from].seq <= deferredReady[deferredPos].seq))
                retainedScratch.push_back(ready[vec_from++]);
            else
                retainedScratch.push_back(deferredReady[deferredPos++]);
        }
        ready.swap(retainedScratch);
        inIssueScan = false;
    };
    for (; i < n && deferredReady.empty(); ++i) {
        switch (processReadyEntry(ready[i], squash_pos)) {
          case IssueStep::Drop:
            break;
          case IssueStep::Keep:
            ready[w++] = ready[i];
            break;
          case IssueStep::EndStage:
            // The issuing store may have raised same-cycle deferred
            // wakes before its violation check fired; merge them in,
            // the squash cleanup truncates whatever it removes.
            retainedScratch.assign(ready.begin(),
                                   ready.begin() +
                                       static_cast<std::ptrdiff_t>(w));
            mergeRestInto(i + 1);
            squashFrom(squash_pos, true);
            return;
        }
    }
    if (i >= n && deferredReady.empty()) {
        ready.resize(w);
        inIssueScan = false;
        return;
    }

    // Slow path: merge the unprocessed vector remainder with the
    // same-cycle deferred wakes in ascending seq order (consumers are
    // always younger than the producer that woke them, so the merge
    // only looks forward); survivors collect into the scratch.
    retainedScratch.assign(ready.begin(),
                           ready.begin() + static_cast<std::ptrdiff_t>(w));
    while (i < n || deferredPos < deferredReady.size()) {
        ReadyEntry e;
        if (deferredPos >= deferredReady.size() ||
            (i < n && ready[i].seq <= deferredReady[deferredPos].seq))
            e = ready[i++];
        else
            e = deferredReady[deferredPos++];
        switch (processReadyEntry(e, squash_pos)) {
          case IssueStep::Drop:
            break;
          case IssueStep::Keep:
            retainedScratch.push_back(e);
            break;
          case IssueStep::EndStage:
            mergeRestInto(i);
            squashFrom(squash_pos, true);
            return;
        }
    }
    mergeRestInto(n);
}

/**
 * Attempt to issue one ready-list entry: the body of the per-cycle
 * issue scan (both the fast in-place pass and the deferred-merge
 * pass). Returns whether the entry leaves the list, stays for the
 * next cycle, or — on a detected memory-order violation — the stage
 * must end with a squash from @p squash_pos.
 */
Pipeline::IssueStep
Pipeline::processReadyEntry(ReadyEntry e, size_t &squash_pos)
{
    InflightInst *dp = findBySeq(e.seq);
    if (!dp || dp->schedToken != e.token ||
        dp->schedState != SchedState::Ready)
        return IssueStep::Drop; // stale entry.
    InflightInst &di = *dp;

    // Re-verify the issue conditions. Wake times are exact, so these
    // only fail on the port-retry path when a dependence was
    // re-evaluated conservatively; re-parking keeps us honest.
    if (!sourcesReady(di)) {
        scheduleIssue(di);
        return IssueStep::Drop;
    }
    if (u64 extra_seq = issueProducerSeq(di)) {
        InflightInst *prod = findBySeq(extra_seq);
        if (prod && (!prod->issued || prod->completeCycle > cycle)) {
            scheduleIssue(di);
            return IssueStep::Drop;
        }
    }
    if (di.storeDepSeq) {
        InflightInst *dep = findBySeq(di.storeDepSeq - 1);
        if (dep && dep->isStore() &&
            (!dep->issued || dep->completeCycle > cycle)) {
            scheduleIssue(di);
            return IssueStep::Drop;
        }
    }

    int port = fuPool.tryIssue(di.si->opClass());
    if (port < 0)
        return IssueStep::Keep; // retry next cycle.

    di.issued = true;
    di.schedState = SchedState::None;
    di.completeCycle = executeMemOrAlu(di, port);

    if (!issueSubscribers.empty()) {
        EngineContext ctx = makeContext();
        for (auto *eng : issueSubscribers)
            eng->atIssue(di, ctx);
    }

    if (di.allocatedPreg && di.action != RenameAction::ValuePredicted) {
        pregReady[di.destPreg] = di.completeCycle;
        u32 chain = pregWaiterHead[di.destPreg];
        pregWaiterHead[di.destPreg] = invalidWaiter;
        wakeChain(chain, SchedState::WaitPreg);
    }
    // Store-set and shared-producer dependants now know this
    // instruction's completion time.
    u32 chain = di.waiterHead;
    di.waiterHead = invalidWaiter;
    wakeChain(chain, SchedState::WaitSeq);

    if (!di.needsValidation && di.inIq) {
        di.inIq = false;
        --iqUsed;
    }

    // Branch resolution releases a stalled front end.
    if (di.si->isBranch() && di.bp.redirect == pred::Redirect::Execute) {
        fetchResumeCycle = di.completeCycle + 1;
        fetchWaitingExec = false;
        lastFetchLine = ~Addr{0};
    }

    // Stores: detect memory-order violations against younger loads
    // that already issued to the same doubleword (the index keeps
    // issued loads per doubleword; the oldest younger one is the
    // squash point, as in the old ascending scan).
    if (di.si->isStore()) {
        Addr dword = di.rec.effAddr & ~Addr{7};
        if (auto viol = memIdx.oldestIssuedLoadAbove(dword, di.traceIdx)) {
            InflightInst *yng = findBySeq(*viol);
            storeSets.reportViolation(yng->pc, di.pc);
            ++st.memOrderSquashes;
            squash_pos =
                static_cast<size_t>(*viol - window.front().traceIdx);
            return IssueStep::EndStage;
        }
    } else if (di.isLoad()) {
        memIdx.addIssuedLoad(di.rec.effAddr & ~Addr{7}, di.traceIdx);
    }
    return IssueStep::Drop; // issued: leaves the ready list.
}

// --------------------------------------------------------------- squash

void
Pipeline::undoRename(InflightInst &di)
{
    if (!di.producesReg || di.destPreg == invalidPhysReg)
        return;
    rename.setMap(di.si->dst, di.oldPreg);
    if (di.allocatedPreg) {
        // Normal (or value-predicted) allocation: plain free. Anyone
        // parked on this preg is younger and squashes with it.
        waiters.freeChain(pregWaiterHead[di.destPreg]);
        pregWaiterHead[di.destPreg] = invalidWaiter;
        rename.release(di.destPreg);
        return;
    }
    // Zero-register mappings (zero idiom / zero prediction) allocated
    // nothing; sharing engines undo their ISRB registration.
    EngineContext ctx = makeContext();
    for (auto *e : active)
        e->atSquashInst(di, ctx);
}

void
Pipeline::releaseMapping(PhysReg preg)
{
    // Any waiter chain here is stale: in-flight consumers of a preg
    // pin it live, so a released preg has none (commit releases happen
    // after every older consumer retired; squash releases squash the
    // younger consumers too).
    waiters.freeChain(pregWaiterHead[preg]);
    pregWaiterHead[preg] = invalidWaiter;
    rename.release(preg);
    if (fig1) {
        auto it = fig1->liveValues.find(fig1->pregValue[preg]);
        if (it != fig1->liveValues.end() && --it->second == 0)
            fig1->liveValues.erase(it);
    }
}

void
Pipeline::squashFrom(size_t rob_pos, bool refetch_penalty)
{
    // Restore front-end state to the first squashed instruction. When
    // the squash removes only fetched-not-renamed instructions, the
    // snapshot lives at the front of the frontend queue instead.
    if (rob_pos < nRenamed) {
        const InflightInst &first = window[rob_pos];
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
        // Every squashed instruction will be re-renamed, so the rename
        // replica rewinds to the first squashed instruction's
        // fetch-time history.
        if (renameHistActive) {
            renameHist_ = first.histFetch;
            renameFolds_.recompute(renameHist_.dir);
        }
    } else if (window.size() > nRenamed) {
        const InflightInst &first = window[nRenamed];
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
    }

    // Drop the never-renamed tail first (nothing to undo), then unwind
    // the renamed suffix young to old.
    while (window.size() > nRenamed)
        window.pop_back();
    const bool any_rob = rob_pos < nRenamed;
    const u64 first_seq = any_rob ? window[rob_pos].traceIdx : 0;
    for (size_t i = nRenamed; i-- > rob_pos;) {
        InflightInst &di = window[i];
        // Producer-index removal (young to old: the loop's final
        // rollback of the ordinal counter is the oldest squashed
        // producer's ordinal, keeping live ordinals dense).
        if (valIdx && di.producesReg && di.destPreg != invalidPhysReg) {
            if (auto ord = valIdx->remove(di.rec.result, di.traceIdx))
                valOrdNext = *ord;
        }
        undoRename(di);
        // Dependants parked on this instruction are younger: squashed
        // with it. Drop the chain without waking anyone.
        waiters.freeChain(di.waiterHead);
        di.waiterHead = invalidWaiter;
        memIndexRemove(di);
        if (di.inIq)
            --iqUsed;
        if (di.isLoad())
            --lqUsed;
        if (di.isStore())
            --sqUsed;
        window.pop_back();
    }
    nRenamed = rob_pos;
    if (any_rob)
        squashSchedCleanup(first_seq);
    {
        EngineContext ctx = makeContext();
        for (auto *e : active)
            e->atSquashAll(ctx);
    }
    fetchWaitingExec = false;
    lastFetchLine = ~Addr{0};
    fetchResumeCycle = cycle + (refetch_penalty ? 1 : 0);
}

// --------------------------------------------------------------- commit

bool
Pipeline::commitBlocked(const InflightInst &di) const
{
    if (di.needsExec && (!di.issued || di.completeCycle >= cycle))
        return true;
    if (!di.needsExec && di.completeCycle >= cycle)
        return true;
    if (di.needsValidation &&
        (!di.validationIssued || di.validationCycle >= cycle))
        return true;
    return false;
}

void
Pipeline::commitOne(InflightInst &di, bool squash_follows)
{
    const isa::StaticInst &si = *di.si;
    ++st.committedInsts;
    if (si.isLoad())
        ++st.committedLoads;
    if (si.isStore())
        ++st.committedStores;
    if (si.isBranch())
        ++st.committedBranches;
    if (di.producesReg)
        ++st.committedProducers;

    // Fig. 1 probe: result redundancy at commit.
    if (fig1 && di.producesReg) {
        if (di.rec.result == 0 && !si.isZeroIdiom())
            ++(si.isLoad() ? st.fig1ZeroLoad : st.fig1ZeroOther);
        if (fig1->liveValues.count(di.rec.result))
            ++(si.isLoad() ? st.fig1InPrfLoad : st.fig1InPrfOther);
    }

    // Engine coverage accounting and commit-time training.
    {
        EngineContext ctx = makeContext();
        ctx.squashFollowsCommit = squash_follows;
        for (auto *e : active)
            e->atCommit(di, ctx);
    }

    // Structural commit actions.
    if (si.isBranch())
        bru.onCommitBranch(di.bp, di.pc, si,
                           isa::Program::pcOf(di.rec.nextIdx));
    if (si.isStore()) {
        hier.storeCommit(di.rec.effAddr, cycle);
        storeSets.storeRetire(di.pc, di.traceIdx + 1);
        --sqUsed;
    }
    if (si.isLoad())
        --lqUsed;
    memIndexRemove(di);
    // The oldest producer leaves the equality-index window.
    if (valIdx && di.producesReg && di.destPreg != invalidPhysReg)
        valIdx->remove(di.rec.result, di.traceIdx);

    // Release the previous mapping of the destination register.
    if (di.producesReg && di.oldPreg != invalidPhysReg &&
        di.oldPreg != zeroPreg) {
        switch (isrbUnit.release(di.oldPreg)) {
          case equality::IsrbRelease::NotShared:
          case equality::IsrbRelease::Freed:
            releaseMapping(di.oldPreg);
            break;
          case equality::IsrbRelease::StillLive:
            break;
        }
    }

    // Fig. 1 probe bookkeeping: the new mapping's value becomes live.
    if (fig1 && di.allocatedPreg) {
        fig1->pregValue[di.destPreg] = di.rec.result;
        ++fig1->liveValues[di.rec.result];
    }

    ++committed;
}

void
Pipeline::doCommit()
{
    unsigned producers_this_cycle = 0;

    unsigned n = 0;
    while (n < cp.commitWidth && nRenamed > 0) {
        InflightInst &di = window.front();
        if (commitBlocked(di))
            break;

        // Speculation verdicts (commit-time validation). At most one
        // engine can own the head instruction's rename action, so at
        // most one verdict is non-Proceed.
        CommitVerdict verdict = CommitVerdict::Proceed;
        {
            EngineContext ctx = makeContext();
            for (auto *e : active) {
                verdict = e->atCommitHead(di, ctx);
                if (verdict != CommitVerdict::Proceed)
                    break;
            }
        }
        if (verdict == CommitVerdict::SquashRefetch) {
            squashFrom(0, true);
            break;
        }
        if (verdict == CommitVerdict::CommitThenSquash) {
            commitOne(di, /*squash_follows=*/true);
            u64 next_idx = di.traceIdx + 1;
            // Dependants parked on the head are about to squash;
            // drop the chain unwoken.
            waiters.freeChain(di.waiterHead);
            di.waiterHead = invalidWaiter;
            window.pop_front();
            --nRenamed;
            squashFrom(0, true);
            fetchIdx = next_idx;
            trace.trimBelow(next_idx);
            break;
        }

        commitOne(di);
        if (di.producesReg)
            ++producers_this_cycle;

        // Retirement is a wake event: an eliminated (never-issuing)
        // producer unblocks its shared-value dependants by leaving the
        // window. Wake after the pop so the rescheduled dependants see
        // it gone — the same cycle the old scan saw findBySeq fail.
        u32 chain = di.waiterHead;
        di.waiterHead = invalidWaiter;
        window.pop_front();
        --nRenamed;
        wakeChain(chain, SchedState::WaitSeq);
        if (!window.empty()) {
            // The window front — renamed or not — bounds every record
            // still reachable (fetched-but-unrenamed instructions may
            // be squashed and re-fetched).
            trace.trimBelow(
                std::min(fetchIdx, window.front().traceIdx));
        } else {
            trace.trimBelow(fetchIdx);
        }
        ++n;
    }

    // End of the commit group: histogram sampling and deferred history
    // probes live in the engines.
    {
        EngineContext ctx = makeContext();
        for (auto *e : active)
            e->atCommitGroupEnd(producers_this_cycle, ctx);
    }
}

bool
Pipeline::checkRegisterConservation() const
{
    // A physical register is LIVE iff it is the current mapping of an
    // architectural register or the old mapping recorded by an
    // in-flight instruction (to be released at its commit). Everything
    // else must be on a free list, and nothing may be both.
    std::vector<u8> live(rename.totalPregs(), 0);
    live[zeroPreg] = 1;
    for (ArchReg r = 0; r < isa::numArchRegs; ++r) {
        PhysReg p_ = rename.map(r);
        if (p_ != invalidPhysReg && p_ != zeroPreg)
            live[p_] = 1;
    }
    for (size_t i = 0; i < nRenamed; ++i) {
        const InflightInst &di = window[i];
        if (di.producesReg && di.oldPreg != invalidPhysReg &&
            di.oldPreg != zeroPreg)
            live[di.oldPreg] = 1;
    }

    size_t free_total = rename.intFreeCount() + rename.fpFreeCount();
    size_t live_total = 0;
    for (unsigned p_ = 0; p_ < rename.totalPregs(); ++p_)
        live_total += live[p_];

    if (free_total + live_total != rename.totalPregs()) {
        rsep_warn("register conservation violated: %zu free + %zu live "
                  "!= %u total",
                  free_total, live_total, rename.totalPregs());
        return false;
    }
    return true;
}

Cycle
Pipeline::nextEventCycle() const
{
    // Any queued issue or validation work is retried every cycle (port
    // arbitration); those cycles must run.
    if (!readyList.empty() || !pendingValidation.empty())
        return invalidCycle;

    Cycle next = invalidCycle;
    auto consider = [&next](Cycle c) { next = std::min(next, c); };

    // Rename: an eligible frontend head renames (or ticks a stall
    // counter) every cycle — never skip over it. An ineligible head
    // becomes eligible at a known decode-ready cycle.
    if (window.size() > nRenamed) {
        Cycle ready = window[nRenamed].fetchCycle + cp.frontendDepth;
        if (ready <= cycle + 1)
            return invalidCycle;
        consider(ready);
    }

    // Fetch: runs next cycle unless stalled. An exec-redirect stall or
    // backpressure clears only via issue/rename events (covered below
    // and above); an I-cache stall clears at a known cycle.
    if (!fetchWaitingExec &&
        window.size() - nRenamed < cp.frontendDepth * cp.fetchWidth + 16) {
        if (cycle + 1 >= fetchResumeCycle)
            return invalidCycle;
        consider(fetchResumeCycle);
    }

    // Commit: a head blocked purely on time unblocks at a known cycle.
    // An unissued head has no time bound of its own — it is woken
    // through the scheduler events considered below.
    if (nRenamed > 0) {
        const InflightInst &h = window.front();
        bool unissued_exec = h.needsExec && !h.issued;
        if (!unissued_exec) {
            Cycle unblock = h.completeCycle + 1;
            // needsValidation && !validationIssued implies a pending-
            // validation entry, which already returned above.
            if (h.needsValidation)
                unblock = std::max(unblock, h.validationCycle + 1);
            if (unblock <= cycle + 1)
                return invalidCycle;
            consider(unblock);
        }
    }

    // Scheduler: the earliest pending wake (stale tokens only make
    // this conservative — they end the skip early, never late).
    if (!wakeHeap.empty())
        consider(wakeHeap.nextDue());

    return next;
}

void
Pipeline::run(u64 ninsts)
{
    u64 target = committed + ninsts;
    while (committed < target) {
        ++cycle;
        ++st.cycles;
        doCommit();
        doIssueAndValidate();
        doRename();
        doFetch();
        // Fast-forward stretches where provably nothing can happen
        // (mispredict stalls, cache misses): jump to one cycle before
        // the next event so the normal loop executes the event cycle.
        Cycle next = nextEventCycle();
        if (next != invalidCycle && next > cycle + 1) {
            u64 skipped = next - cycle - 1;
            st.cycles += skipped;
            cycle += skipped;
            EngineContext ctx = makeContext();
            for (auto *e : active)
                e->atIdleCycles(skipped, ctx);
        }
        // Time-series sampling: one null-check when off (fig1Probe
        // discipline); the tick itself is rare (every N-cycle period).
        if (sampler && st.cycles.value() >= sampler->nextDue())
            sampleTick();
        if (cycle > (target + 1) * 1000) {
            if (nRenamed > 0) {
                const InflightInst &h = window.front();
                rsep_panic("pipeline livelock: cycle %llu committed %llu "
                           "head seq %llu pc %llx action %d needsExec %d "
                           "issued %d complete %llu srcs %u "
                           "ready [%llu %llu %llu] storeDep %llu",
                           static_cast<unsigned long long>(cycle),
                           static_cast<unsigned long long>(committed),
                           static_cast<unsigned long long>(h.traceIdx),
                           static_cast<unsigned long long>(h.pc),
                           static_cast<int>(h.action), h.needsExec,
                           h.issued,
                           static_cast<unsigned long long>(h.completeCycle),
                           h.numSrcs,
                           static_cast<unsigned long long>(
                               h.numSrcs > 0 ? pregReady[h.srcPregs[0]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 1 ? pregReady[h.srcPregs[1]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 2 ? pregReady[h.srcPregs[2]] : 0),
                           static_cast<unsigned long long>(h.storeDepSeq));
            }
            rsep_panic("pipeline livelock: cycle %llu committed %llu "
                       "(empty rob, frontend %zu, fetchIdx %llu, "
                       "resume %llu, waitingExec %d)",
                       static_cast<unsigned long long>(cycle),
                       static_cast<unsigned long long>(committed),
                       window.size() - nRenamed,
                       static_cast<unsigned long long>(fetchIdx),
                       static_cast<unsigned long long>(fetchResumeCycle),
                       fetchWaitingExec);
        }
    }
}

} // namespace rsep::core

#include "core/pipeline.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace rsep::core
{

using isa::OpClass;

Pipeline::Pipeline(const CoreParams &core_params, const MechConfig &mech_cfg,
                   wl::Emulator &emu, u64 seed)
    : cp(core_params), mech(mech_cfg), emul(emu), trace(emu),
      hier(mem::HierarchyParams{}),
      bru(pred::TageParams{}, seed ^ 0x1111),
      vp(mech.vp, seed ^ 0x2222),
      distPred(mech.rsep.distParams(), seed ^ 0x3333),
      fifo(mech.rsep.historyDepth, mech.rsep.implicitHistory),
      ddt(mech.rsep.ddtEntries),
      isrbUnit(mech.rsep.isrbEntries, mech.rsep.isrbCounterBits),
      zeroPred(4096, mech.rsep.confKind),
      hrfUnit(core_params.intPregs + core_params.fpPregs,
              mech.rsep.hashBits),
      rename(core_params), fuPool(core_params),
      pregReady(core_params.intPregs + core_params.fpPregs, 0),
      pregValue(core_params.intPregs + core_params.fpPregs, 0),
      rng(seed ^ 0x4444)
{
    // The hardwired zero register and all initial architectural
    // mappings hold value 0 and are ready from cycle 0.
    for (unsigned p = 0; p < pregReady.size(); ++p)
        pregReady[p] = 0;
    if (mech.fig1Probe) {
        // Initial mappings (1 per arch reg + zero reg) all hold 0.
        liveValues[0] = isa::numArchRegs;
    }
}

Cycle
Pipeline::opLatency(OpClass c) const
{
    switch (c) {
      case OpClass::IntAlu: return cp.intAluLat;
      case OpClass::IntMul: return cp.intMulLat;
      case OpClass::IntDiv: return cp.intDivLat;
      case OpClass::FpAlu: return cp.fpAluLat;
      case OpClass::FpMul: return cp.fpMulLat;
      case OpClass::FpDiv: return cp.fpDivLat;
      case OpClass::Branch: return cp.branchLat;
      case OpClass::Store: return cp.storeLat;
      default: return 1;
    }
}

void
Pipeline::resetStats()
{
    st = PipelineStats{};
}

InflightInst *
Pipeline::findBySeq(u64 seq)
{
    if (rob.empty() || seq < rob.front().traceIdx)
        return nullptr;
    u64 pos = seq - rob.front().traceIdx;
    if (pos >= rob.size())
        return nullptr;
    return &rob[static_cast<size_t>(pos)];
}

// ---------------------------------------------------------------- fetch

void
Pipeline::doFetch()
{
    if (cycle < fetchResumeCycle || fetchWaitingExec)
        return;
    // Front-end backpressure.
    if (frontendQ.size() >= cp.frontendDepth * cp.fetchWidth + 16)
        return;

    unsigned taken_seen = 0;
    for (unsigned n = 0; n < cp.fetchWidth; ++n) {
        const wl::DynRecord &rec = trace.at(fetchIdx);
        const isa::StaticInst &si = emul.program().at(rec.staticIdx);
        Addr pc = isa::Program::pcOf(rec.staticIdx);

        // I-cache: fetching a new line may stall the group.
        Addr line = pc >> mem::lineShift;
        if (line != lastFetchLine) {
            Cycle ready = hier.ifetch(pc, cycle);
            lastFetchLine = line;
            if (ready > cycle + hier.params().l1i.latency) {
                fetchResumeCycle = ready;
                break;
            }
        }

        InflightInst di;
        di.traceIdx = fetchIdx;
        di.si = &si;
        di.pc = pc;
        di.rec = rec;
        di.fetchCycle = cycle;
        di.histFetch = bru.history();
        di.rasSnap = bru.rasSnapshot();

        bool stop_after = false;
        if (si.isBranch()) {
            Addr target = isa::Program::pcOf(rec.nextIdx);
            di.bp = bru.onFetchBranch(pc, si, rec.taken, target);
            if (di.bp.redirect == pred::Redirect::Execute) {
                fetchWaitingExec = true;
                stop_after = true;
            } else if (di.bp.redirect == pred::Redirect::Decode) {
                fetchResumeCycle = cycle + cp.decodeRedirectPenalty;
                stop_after = true;
            } else if (rec.taken) {
                if (++taken_seen > cp.takenBranchesPerFetch)
                    stop_after = true; // cannot follow a 2nd taken branch.
                lastFetchLine = ~Addr{0}; // next fetch starts a new line.
            }
        }

        frontendQ.push_back(std::move(di));
        ++fetchIdx;
        if (stop_after)
            break;
    }
}

// --------------------------------------------------------------- rename

bool
Pipeline::tryEqualityPredict(InflightInst &di)
{
    if (!di.distLk.usePred)
        return false;
    u32 dist = di.distLk.distance;
    if (dist == 0 || dist > di.traceIdx)
        return false;
    InflightInst *prod = findBySeq(di.traceIdx - dist);
    if (!prod || !prod->producesReg || prod->destPreg == invalidPhysReg) {
        ++st.shareFailNoProducer;
        return false;
    }
    PhysReg preg = prod->destPreg;
    if (preg == zeroPreg) {
        // Sharing with the hardwired zero register needs no ISRB entry
        // (Section III: "register sharing would be trivial").
        di.action = RenameAction::RsepShared;
        di.destPreg = zeroPreg;
        di.needsValidation = true;
        di.shareProducerSeq = prod->traceIdx;
        di.shareProducerValue = 0;
        return true;
    }
    if (!isrbUnit.share(preg)) {
        ++st.shareFailIsrb;
        return false;
    }
    di.action = RenameAction::RsepShared;
    di.destPreg = preg;
    di.shareProducerSeq = prod->traceIdx;
    di.shareProducerValue = prod->rec.result;
    di.needsValidation = true;
    return true;
}

void
Pipeline::resolveLikelyCandidate(InflightInst &di)
{
    u32 dist = di.distLk.distance;
    if (dist == 0 || dist > di.traceIdx)
        return;
    InflightInst *prod = findBySeq(di.traceIdx - dist);
    if (!prod || !prod->producesReg)
        return;
    di.likelyCandidate = true;
    di.candidateHasPartner = true;
    di.candidatePartnerPreg = prod->destPreg;
    di.candidateProducerSeq = prod->traceIdx;
    di.candidatePartnerValue = prod->rec.result;
    di.needsValidation = true;
    ++st.likelyCandidates;
}

void
Pipeline::renameOne(InflightInst &di)
{
    const isa::StaticInst &si = *di.si;

    // Source renaming.
    di.numSrcs = 0;
    si.forEachSrc([&](ArchReg r) {
        di.srcPregs[di.numSrcs++] =
            r == isa::zeroReg ? zeroPreg : rename.map(r);
    });
    di.producesReg = si.writesReg();
    di.dispatchCycle = cycle;

    bool handled = false;

    // 1. Zero-idiom elimination (baseline, non-speculative).
    if (mech.zeroIdiomElim && si.isZeroIdiom()) {
        di.action = RenameAction::ZeroIdiom;
        di.destPreg = zeroPreg;
        di.needsExec = false;
        di.completeCycle = cycle;
        handled = true;
    }

    // 2. Move elimination (non-speculative; uses the sharing machinery).
    if (!handled && mech.moveElim && si.isEliminableMove()) {
        PhysReg src = di.srcPregs[0];
        if (src == zeroPreg || isrbUnit.share(src)) {
            di.action = RenameAction::MoveElim;
            di.destPreg = src;
            di.needsExec = false;
            di.completeCycle = cycle;
            handled = true;
        }
    }

    // Predictor lookups (performed under the fetch-time history).
    bool eligible = di.producesReg && !handled;
    if (eligible && mech.zeroPred) {
        di.zeroPredLookedUp = true;
        if (zeroPred.predict(di.pc)) {
            di.action = RenameAction::ZeroPredicted;
            di.destPreg = zeroPreg;
            di.needsValidation = true;
            ++zeroPred.predictions;
            handled = true;
        }
    }
    if (di.producesReg && mech.equalityPred &&
        !(mech.moveElim && si.isEliminableMove()) && !si.isZeroIdiom()) {
        di.distLk = distPred.lookup(di.pc, di.histFetch);
        if (!handled)
            handled = tryEqualityPredict(di);
    }
    if (di.producesReg && mech.valuePred && !si.isZeroIdiom()) {
        di.vpLk = vp.lookup(di.pc, di.histFetch);
        if (!handled && di.vpLk.confident) {
            di.action = RenameAction::ValuePredicted;
            vp.notifySpeculated(di.vpLk);
            handled = true;
        }
    }
    // Likely-candidate training through the validation datapath
    // (sampling mode, Section IV-B3a).
    if (!handled && !di.likelyCandidate && mech.equalityPred &&
        mech.rsep.sampling && di.distLk.valid && !di.distLk.usePred &&
        di.distLk.confidence >= mech.rsep.startTrainThreshold) {
        resolveLikelyCandidate(di);
    }

    // Under the ideal validation policy (Fig. 4 / Fig. 6 "Ideal
    // Validation") checking costs nothing: no second issue, no IQ
    // retention, no producer dependency. Correctness verdicts are
    // still enforced at commit.
    if (mech.rsep.validation == equality::ValidationPolicy::Ideal)
        di.needsValidation = false;

    // Destination allocation + map update.
    if (di.producesReg) {
        di.oldPreg = rename.map(si.dst);
        if (di.action == RenameAction::None ||
            di.action == RenameAction::ValuePredicted) {
            di.destPreg = rename.allocate(si.dst);
            if (di.destPreg == invalidPhysReg)
                rsep_panic("free list empty despite rename gating");
            di.allocatedPreg = true;
            pregReady[di.destPreg] =
                di.action == RenameAction::ValuePredicted ? cycle
                                                          : invalidCycle;
        }
        rename.setMap(si.dst, di.destPreg);
    }

    // Memory dependences. The LFST is not rolled back on squashes
    // (Table I), so after a squash it can name a store slot that now
    // belongs to a *younger* instruction; such stale entries are
    // unusable (hardware would find the slot empty) and are dropped.
    SeqNum dep = si.isStore()
        ? storeSets.storeRename(di.pc, di.traceIdx + 1)
        : (si.isLoad() ? storeSets.loadRename(di.pc) : 0);
    if (dep && dep - 1 < di.traceIdx)
        di.storeDepSeq = dep;

    // Queues.
    if (si.opClass() == OpClass::Nop) {
        di.needsExec = false;
        di.completeCycle = cycle;
    }
    if (di.needsExec) {
        di.inIq = true;
        ++iqUsed;
    }
    if (si.isLoad())
        ++lqUsed;
    if (si.isStore())
        ++sqUsed;
}

void
Pipeline::doRename()
{
    for (unsigned n = 0; n < cp.renameWidth && !frontendQ.empty(); ++n) {
        InflightInst &head = frontendQ.front();
        if (head.fetchCycle + cp.frontendDepth > cycle)
            break;
        const isa::StaticInst &si = *head.si;
        if (rob.size() >= cp.robSize) {
            ++st.renameStallRob;
            break;
        }
        bool needs_exec = !(mech.zeroIdiomElim && si.isZeroIdiom()) &&
                          !(mech.moveElim && si.isEliminableMove()) &&
                          si.opClass() != OpClass::Nop;
        if (needs_exec && iqUsed >= cp.iqSize) {
            ++st.renameStallIq;
            break;
        }
        if ((si.isLoad() && lqUsed >= cp.lqSize) ||
            (si.isStore() && sqUsed >= cp.sqSize)) {
            ++st.renameStallLsq;
            break;
        }
        if (si.writesReg() && !rename.hasFree(si.dst)) {
            ++st.renameStallRegs;
            break;
        }
        rob.push_back(std::move(frontendQ.front()));
        frontendQ.pop_front();
        renameOne(rob.back());
    }
}

// ---------------------------------------------------------------- issue

bool
Pipeline::sourcesReady(const InflightInst &di) const
{
    for (unsigned i = 0; i < di.numSrcs; ++i)
        if (pregReady[di.srcPregs[i]] > cycle)
            return false;
    return true;
}

Cycle
Pipeline::executeMemOrAlu(InflightInst &di, int port)
{
    const isa::StaticInst &si = *di.si;
    OpClass c = si.opClass();
    if (c == OpClass::Load) {
        // Store-to-load forwarding: youngest older store to the same
        // doubleword that has already executed.
        Addr dword = di.rec.effAddr & ~Addr{7};
        u64 base_seq = rob.front().traceIdx;
        if (di.traceIdx > base_seq) {
            for (u64 s = di.traceIdx - 1; s + 1 > base_seq; --s) {
                InflightInst *older = findBySeq(s);
                if (!older)
                    break;
                if (!older->isStore())
                    continue;
                if ((older->rec.effAddr & ~Addr{7}) != dword)
                    continue;
                if (older->issued)
                    return std::max(cycle, older->completeCycle) +
                           cp.stlfLat;
                break; // unexecuted conflicting store: speculate past it.
            }
        }
        return hier.load(di.pc, di.rec.effAddr, cycle);
    }
    Cycle lat = opLatency(c);
    Cycle done = cycle + lat;
    if (c == OpClass::IntDiv || c == OpClass::FpDiv)
        fuPool.markUnpipelined(port, done); // unpipelined units.
    return done;
}

void
Pipeline::doIssueAndValidate()
{
    fuPool.beginCycle(cycle);
    const bool lock_fu =
        mech.rsep.validation == equality::ValidationPolicy::Issue2xLockFu;
    const bool ideal_val =
        mech.rsep.validation == equality::ValidationPolicy::Ideal;

    // 1. Validation micro-ops (picker gives them priority, IV-F1).
    for (auto &di : rob) {
        if (!di.needsValidation || di.validationIssued)
            continue;
        if (!di.issued || di.completeCycle > cycle)
            continue;
        // The shared/partner value must be available (back-to-back
        // with the producer via the bypass network).
        u64 prod_seq = di.action == RenameAction::RsepShared
            ? di.shareProducerSeq
            : (di.likelyCandidate ? di.candidateProducerSeq : 0);
        if (prod_seq) {
            InflightInst *prod = findBySeq(prod_seq);
            if (prod && (!prod->issued || prod->completeCycle > cycle))
                continue;
        }
        if (ideal_val) {
            di.validationIssued = true;
            di.validationCycle = cycle;
            if (di.inIq) {
                di.inIq = false;
                --iqUsed;
            }
            continue;
        }
        int port = fuPool.tryIssueValidation(di.si->opClass(), lock_fu);
        if (port < 0)
            continue;
        di.validationIssued = true;
        di.validationCycle = cycle;
        if (di.inIq) {
            di.inIq = false;
            --iqUsed;
        }
    }

    // 2. Regular issue, oldest first.
    for (size_t pos = 0; pos < rob.size(); ++pos) {
        InflightInst &di = rob[pos];
        if (!di.needsExec || di.issued)
            continue;
        if (di.dispatchCycle >= cycle)
            continue;
        if (!sourcesReady(di))
            continue;

        // Equality-predicted instructions (and likely candidates) are
        // made dependent on their producer so the validation micro-op
        // can catch the shared value on the bypass network (IV-F1).
        // The ideal-validation arm has no such constraint.
        u64 extra_seq = di.action == RenameAction::RsepShared
            ? di.shareProducerSeq
            : (di.likelyCandidate ? di.candidateProducerSeq : 0);
        if (ideal_val)
            extra_seq = 0;
        if (extra_seq) {
            InflightInst *prod = findBySeq(extra_seq);
            if (prod && (!prod->issued || prod->completeCycle > cycle))
                continue;
        }

        // Memory dependence (store sets).
        if (di.storeDepSeq) {
            InflightInst *dep = findBySeq(di.storeDepSeq - 1);
            if (dep && dep->isStore() &&
                (!dep->issued || dep->completeCycle > cycle))
                continue;
        }

        int port = fuPool.tryIssue(di.si->opClass());
        if (port < 0)
            continue;

        di.issued = true;
        di.completeCycle = executeMemOrAlu(di, port);

        if (di.allocatedPreg &&
            di.action != RenameAction::ValuePredicted)
            pregReady[di.destPreg] = di.completeCycle;

        if (!di.needsValidation && di.inIq) {
            di.inIq = false;
            --iqUsed;
        }

        // Branch resolution releases a stalled front end.
        if (di.si->isBranch() &&
            di.bp.redirect == pred::Redirect::Execute) {
            fetchResumeCycle = di.completeCycle + 1;
            fetchWaitingExec = false;
            lastFetchLine = ~Addr{0};
        }

        // Stores: detect memory-order violations against younger loads
        // that already issued to the same doubleword.
        if (di.si->isStore()) {
            Addr dword = di.rec.effAddr & ~Addr{7};
            for (size_t j = pos + 1; j < rob.size(); ++j) {
                InflightInst &yng = rob[j];
                if (yng.isLoad() && yng.issued &&
                    (yng.rec.effAddr & ~Addr{7}) == dword) {
                    storeSets.reportViolation(yng.pc, di.pc);
                    ++st.memOrderSquashes;
                    squashFrom(j, true);
                    return; // ROB changed; end the stage.
                }
            }
        }
    }
}

// --------------------------------------------------------------- squash

void
Pipeline::undoRename(InflightInst &di)
{
    if (!di.producesReg || di.destPreg == invalidPhysReg)
        return;
    rename.setMap(di.si->dst, di.oldPreg);
    switch (di.action) {
      case RenameAction::None:
      case RenameAction::ValuePredicted:
        rename.release(di.destPreg);
        break;
      case RenameAction::RsepShared:
      case RenameAction::MoveElim:
        if (di.destPreg != zeroPreg &&
            isrbUnit.squashSharer(di.destPreg) ==
                equality::IsrbRelease::Freed)
            releaseMapping(di.destPreg); // entry gone; free for real.
        break;
      case RenameAction::ZeroIdiom:
      case RenameAction::ZeroPredicted:
        break; // zero preg: nothing allocated.
    }
}

void
Pipeline::releaseMapping(PhysReg preg)
{
    rename.release(preg);
    if (mech.fig1Probe) {
        auto it = liveValues.find(pregValue[preg]);
        if (it != liveValues.end() && --it->second == 0)
            liveValues.erase(it);
    }
}

void
Pipeline::squashFrom(size_t rob_pos, bool refetch_penalty)
{
    // Restore front-end state to the first squashed instruction. When
    // the squash removes only fetched-not-renamed instructions, the
    // snapshot lives at the front of the frontend queue instead.
    if (rob_pos < rob.size()) {
        const InflightInst &first = rob[rob_pos];
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
    } else if (!frontendQ.empty()) {
        const InflightInst &first = frontendQ.front();
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
    }

    for (size_t i = rob.size(); i-- > rob_pos;) {
        InflightInst &di = rob[i];
        undoRename(di);
        if (di.inIq)
            --iqUsed;
        if (di.isLoad())
            --lqUsed;
        if (di.isStore())
            --sqUsed;
        rob.pop_back();
    }
    frontendQ.clear();
    vp.squash();
    fetchWaitingExec = false;
    lastFetchLine = ~Addr{0};
    fetchResumeCycle = cycle + (refetch_penalty ? 1 : 0);
}

// --------------------------------------------------------------- commit

bool
Pipeline::commitBlocked(const InflightInst &di) const
{
    if (di.needsExec && (!di.issued || di.completeCycle >= cycle))
        return true;
    if (!di.needsExec && di.completeCycle >= cycle)
        return true;
    if (di.needsValidation &&
        (!di.validationIssued || di.validationCycle >= cycle))
        return true;
    return false;
}

void
Pipeline::commitTrainEquality(InflightInst &di)
{
    if (!mech.equalityPred)
        return;
    const bool producer = di.producesReg;
    if (!producer)
        return;

    u32 csn = static_cast<u32>(committed & equality::csnMask);
    u16 hash = equality::foldHash(di.rec.result, mech.rsep.hashBits);

    bool eliminated = di.action == RenameAction::ZeroIdiom ||
                      di.action == RenameAction::MoveElim;

    // Predicted instructions and likely candidates train through the
    // validation path and do not probe the history (IV-B3b).
    if (di.action == RenameAction::RsepShared) {
        if (di.rec.result == di.shareProducerValue)
            distPred.train(di.distLk, di.distLk.distance);
        // (mispredicting instances never reach here; see doCommit).
    } else if (di.likelyCandidate && di.candidateHasPartner) {
        if (di.rec.result == di.candidatePartnerValue)
            distPred.train(di.distLk, di.distLk.distance);
        else
            distPred.trainIncorrect(di.distLk);
    }

    // Push every committed register producer whose value lives in the
    // PRF (eliminated results live in shared/zero registers already).
    if (!eliminated) {
        hrfUnit.write(di.destPreg == invalidPhysReg ? zeroPreg : di.destPreg,
                      hash);
        if (mech.rsep.useDdt) {
            if (auto m = ddt.accessAndUpdate(hash, csn, di.traceIdx)) {
                if (m->producerValue != di.rec.result)
                    ++st.hashFalsePositives;
                if (!di.likelyCandidate &&
                    di.action != RenameAction::RsepShared &&
                    di.distLk.valid)
                    distPred.train(di.distLk, m->distance);
            }
        } else {
            fifo.push(hash, csn, di.traceIdx, true, di.rec.result);
        }
    }
}

void
Pipeline::commitOne(InflightInst &di)
{
    const isa::StaticInst &si = *di.si;
    ++st.committedInsts;
    if (si.isLoad())
        ++st.committedLoads;
    if (si.isStore())
        ++st.committedStores;
    if (si.isBranch())
        ++st.committedBranches;
    if (di.producesReg)
        ++st.committedProducers;

    // Coverage accounting (Fig. 5).
    switch (di.action) {
      case RenameAction::ZeroIdiom: ++st.zeroIdiomElim; break;
      case RenameAction::MoveElim: ++st.moveElim; break;
      case RenameAction::ZeroPredicted:
        ++(si.isLoad() ? st.zeroPredLoad : st.zeroPredOther);
        ++st.zeroCorrect;
        break;
      case RenameAction::RsepShared:
        ++(si.isLoad() ? st.distPredLoad : st.distPredOther);
        ++st.rsepCorrect;
        if (di.vpLk.valid && di.vpLk.confident)
            ++st.rsepVpOverlap;
        break;
      case RenameAction::ValuePredicted:
        ++(si.isLoad() ? st.valuePredLoad : st.valuePredOther);
        ++st.vpCorrect;
        break;
      default: break;
    }

    // Fig. 1 probe: result redundancy at commit.
    if (mech.fig1Probe && di.producesReg) {
        if (di.rec.result == 0 && !si.isZeroIdiom())
            ++(si.isLoad() ? st.fig1ZeroLoad : st.fig1ZeroOther);
        if (liveValues.count(di.rec.result))
            ++(si.isLoad() ? st.fig1InPrfLoad : st.fig1InPrfOther);
    }

    // Predictor training.
    if (mech.zeroPred && di.zeroPredLookedUp &&
        di.action != RenameAction::ZeroPredicted)
        zeroPred.update(di.pc, di.rec.result == 0, &rng);
    if (mech.valuePred && di.vpLk.valid)
        vp.commit(di.vpLk, di.rec.result);
    commitTrainEquality(di);

    // Structural commit actions.
    if (si.isBranch())
        bru.onCommitBranch(di.bp, di.pc, si,
                           isa::Program::pcOf(di.rec.nextIdx));
    if (si.isStore()) {
        hier.storeCommit(di.rec.effAddr, cycle);
        storeSets.storeRetire(di.pc, di.traceIdx + 1);
        --sqUsed;
    }
    if (si.isLoad())
        --lqUsed;

    // Release the previous mapping of the destination register.
    if (di.producesReg && di.oldPreg != invalidPhysReg &&
        di.oldPreg != zeroPreg) {
        switch (isrbUnit.release(di.oldPreg)) {
          case equality::IsrbRelease::NotShared:
          case equality::IsrbRelease::Freed:
            releaseMapping(di.oldPreg);
            break;
          case equality::IsrbRelease::StillLive:
            break;
        }
    }

    // Fig. 1 probe bookkeeping: the new mapping's value becomes live.
    if (mech.fig1Probe && di.allocatedPreg) {
        pregValue[di.destPreg] = di.rec.result;
        ++liveValues[di.rec.result];
    }

    ++committed;
}

void
Pipeline::doCommit()
{
    unsigned producers_this_cycle = 0;
    /** Deferred FIFO probes for the sampling policy. */
    struct PendingProbe
    {
        u16 hash;
        u32 csn;
        u64 result;
        equality::DistLookup distLk;
    };
    std::vector<PendingProbe> sample_pool;

    unsigned n = 0;
    while (n < cp.commitWidth && !rob.empty()) {
        InflightInst &di = rob.front();
        if (commitBlocked(di))
            break;

        // Speculation verdicts (commit-time validation).
        if (di.action == RenameAction::RsepShared &&
            di.rec.result != di.shareProducerValue) {
            ++st.rsepMispredicts;
            ++st.commitSquashes;
            distPred.trainIncorrect(di.distLk);
            squashFrom(0, true);
            break;
        }
        if (di.action == RenameAction::ZeroPredicted &&
            di.rec.result != 0) {
            ++st.zeroMispredicts;
            ++zeroPred.mispredictions;
            ++st.commitSquashes;
            zeroPred.update(di.pc, false, &rng);
            if (di.distLk.valid && di.shareProducerSeq)
                distPred.trainIncorrect(di.distLk);
            squashFrom(0, true);
            break;
        }
        if (di.action == RenameAction::ValuePredicted &&
            di.vpLk.predicted != di.rec.result) {
            // VP commits the instruction (its own execution wrote the
            // correct result to its register) and squashes everything
            // younger, including not-yet-renamed fetches.
            ++st.vpMispredicts;
            ++st.commitSquashes;
            if (std::getenv("RSEP_VP_DEBUG"))
                std::fprintf(stderr, "vp-miss pc=%llx pred=%llx actual=%llx\n",
                             (unsigned long long)di.pc,
                             (unsigned long long)di.vpLk.predicted,
                             (unsigned long long)di.rec.result);
            commitOne(di);
            u64 next_idx = di.traceIdx + 1;
            rob.pop_front();
            squashFrom(0, true);
            fetchIdx = next_idx;
            trace.trimBelow(next_idx);
            break;
        }

        // Sampling pool: plain producers that would probe the FIFO.
        bool fifo_probes = mech.equalityPred && !mech.rsep.useDdt &&
            di.producesReg && di.distLk.valid &&
            di.action != RenameAction::RsepShared &&
            di.action != RenameAction::ZeroIdiom &&
            di.action != RenameAction::MoveElim && !di.likelyCandidate;

        commitOne(di);
        if (di.producesReg)
            ++producers_this_cycle;

        // FIFO probing & training for unpredicted producers. Without
        // sampling every producer probes; with sampling one random
        // instruction per commit cycle does (IV-B3).
        if (fifo_probes) {
            sample_pool.push_back(PendingProbe{
                equality::foldHash(di.rec.result, mech.rsep.hashBits),
                static_cast<u32>((committed - 1) & equality::csnMask),
                di.rec.result, di.distLk});
        }

        rob.pop_front();
        if (!rob.empty()) {
            trace.trimBelow(rob.front().traceIdx);
        } else {
            // Careful: fetched-but-unrenamed instructions may still be
            // squashed and re-fetched; keep their records reachable.
            u64 low = fetchIdx;
            if (!frontendQ.empty())
                low = std::min(low, frontendQ.front().traceIdx);
            trace.trimBelow(low);
        }
        ++n;
    }

    if (mech.equalityPred)
        st.commitGroupProducers.sample(producers_this_cycle);

    // Execute the probes: all of them (full training) or one randomly
    // sampled per cycle. Probing happens after the group's pushes, so
    // within-group pairs are visible, matching the paper's "compared
    // with each other" requirement; the self-entry is skipped by the
    // zero-distance guard.
    if (!sample_pool.empty()) {
        size_t lo = 0, hi = sample_pool.size();
        if (mech.rsep.sampling) {
            lo = static_cast<size_t>(rng.below(sample_pool.size()));
            hi = lo + 1;
        }
        for (size_t i = lo; i < hi; ++i) {
            PendingProbe &probe = sample_pool[i];
            std::optional<u32> pdist;
            if (mech.rsep.propagatePredictedDistance &&
                probe.distLk.valid && probe.distLk.distance != 0)
                pdist = probe.distLk.distance;
            if (auto m = fifo.match(probe.hash, probe.csn, pdist)) {
                if (m->producerValue != probe.result)
                    ++st.hashFalsePositives;
                distPred.train(probe.distLk, m->distance);
            } else {
                distPred.train(probe.distLk, 0);
            }
        }
    }
}

bool
Pipeline::checkRegisterConservation() const
{
    // A physical register is LIVE iff it is the current mapping of an
    // architectural register or the old mapping recorded by an
    // in-flight instruction (to be released at its commit). Everything
    // else must be on a free list, and nothing may be both.
    std::vector<u8> live(rename.totalPregs(), 0);
    live[zeroPreg] = 1;
    for (ArchReg r = 0; r < isa::numArchRegs; ++r) {
        PhysReg p_ = rename.map(r);
        if (p_ != invalidPhysReg && p_ != zeroPreg)
            live[p_] = 1;
    }
    for (const auto &di : rob) {
        if (di.producesReg && di.oldPreg != invalidPhysReg &&
            di.oldPreg != zeroPreg)
            live[di.oldPreg] = 1;
    }

    std::vector<u8> free_marks(rename.totalPregs(), 0);
    size_t free_total = rename.intFreeCount() + rename.fpFreeCount();
    size_t live_total = 0;
    for (unsigned p_ = 0; p_ < rename.totalPregs(); ++p_)
        live_total += live[p_];

    if (free_total + live_total != rename.totalPregs()) {
        rsep_warn("register conservation violated: %zu free + %zu live "
                  "!= %u total",
                  free_total, live_total, rename.totalPregs());
        return false;
    }
    (void)free_marks;
    return true;
}

void
Pipeline::run(u64 ninsts)
{
    u64 target = committed + ninsts;
    while (committed < target) {
        ++cycle;
        ++st.cycles;
        doCommit();
        doIssueAndValidate();
        doRename();
        doFetch();
        if (cycle > (target + 1) * 1000) {
            if (!rob.empty()) {
                const InflightInst &h = rob.front();
                rsep_panic("pipeline livelock: cycle %llu committed %llu "
                           "head seq %llu pc %llx action %d needsExec %d "
                           "issued %d complete %llu srcs %u "
                           "ready [%llu %llu %llu] storeDep %llu",
                           static_cast<unsigned long long>(cycle),
                           static_cast<unsigned long long>(committed),
                           static_cast<unsigned long long>(h.traceIdx),
                           static_cast<unsigned long long>(h.pc),
                           static_cast<int>(h.action), h.needsExec,
                           h.issued,
                           static_cast<unsigned long long>(h.completeCycle),
                           h.numSrcs,
                           static_cast<unsigned long long>(
                               h.numSrcs > 0 ? pregReady[h.srcPregs[0]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 1 ? pregReady[h.srcPregs[1]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 2 ? pregReady[h.srcPregs[2]] : 0),
                           static_cast<unsigned long long>(h.storeDepSeq));
            }
            rsep_panic("pipeline livelock: cycle %llu committed %llu "
                       "(empty rob, frontendQ %zu, fetchIdx %llu, "
                       "resume %llu, waitingExec %d)",
                       static_cast<unsigned long long>(cycle),
                       static_cast<unsigned long long>(committed),
                       frontendQ.size(),
                       static_cast<unsigned long long>(fetchIdx),
                       static_cast<unsigned long long>(fetchResumeCycle),
                       fetchWaitingExec);
        }
    }
}

} // namespace rsep::core

#include "core/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/engines/dvtage_engine.hh"
#include "core/engines/move_elim_engine.hh"
#include "core/engines/oracle_eq_engine.hh"
#include "core/engines/rsep_engine.hh"
#include "core/engines/zero_idiom_engine.hh"
#include "core/engines/zero_pred_engine.hh"

namespace rsep::core
{

using isa::OpClass;

Pipeline::Pipeline(const CoreParams &core_params, const MechConfig &mech_cfg,
                   wl::TraceSource &src, u64 seed)
    : cp(core_params), mech(mech_cfg), emul(src), trace(src),
      hier(mem::HierarchyParams{}),
      bru(pred::TageParams{}, seed ^ 0x1111),
      isrbUnit(mech.rsep.isrbEntries, mech.rsep.isrbCounterBits),
      rename(core_params), fuPool(core_params),
      pregReady(core_params.intPregs + core_params.fpPregs, 0),
      pregValue(core_params.intPregs + core_params.fpPregs, 0),
      rng(seed ^ 0x4444)
{
    // Engines are constructed in every configuration (their structures
    // stay inspectable through the accessors below); only those enabled
    // in MechConfig are registered, i.e. receive hook dispatches.
    zeroIdiomEngine = std::make_unique<ZeroIdiomEngine>();
    moveElimEngine = std::make_unique<MoveElimEngine>();
    zeroPredEngine =
        std::make_unique<ZeroPredEngine>(4096, mech.rsep.confKind);
    // The oracle's pair-visibility window is rsep.history_depth
    // *producers* — the FIFO's unit — so "rsep vs its oracle"
    // compares like for like (the scan is also ROB-bounded; the
    // registered rsep-oracle arm's 1024 exceeds any ROB).
    oracleEqEngine =
        std::make_unique<OracleEqEngine>(mech.rsep.historyDepth);
    rsepEngine = std::make_unique<RsepEngine>(
        mech.rsep, core_params.intPregs + core_params.fpPregs,
        seed ^ 0x3333);
    dvtageEngine = std::make_unique<DvtageEngine>(mech.vp, seed ^ 0x2222);

    // Registration order is dispatch order: the rename-stage priority
    // chain of the paper (Fig. 3), non-speculative mechanisms first.
    if (mech.zeroIdiomElim)
        active.push_back(zeroIdiomEngine.get());
    if (mech.moveElim)
        active.push_back(moveElimEngine.get());
    if (mech.zeroPred)
        active.push_back(zeroPredEngine.get());
    if (mech.oracleEq)
        active.push_back(oracleEqEngine.get());
    if (mech.equalityPred)
        active.push_back(rsepEngine.get());
    if (mech.valuePred)
        active.push_back(dvtageEngine.get());
    for (auto *e : active)
        if (e->wantsIssueHook())
            issueSubscribers.push_back(e);

    // The hardwired zero register and all initial architectural
    // mappings hold value 0 and are ready from cycle 0.
    for (unsigned p = 0; p < pregReady.size(); ++p)
        pregReady[p] = 0;
    if (mech.fig1Probe) {
        // Initial mappings (1 per arch reg + zero reg) all hold 0.
        liveValues[0] = isa::numArchRegs;
    }
}

Pipeline::~Pipeline() = default;

EngineContext
Pipeline::makeContext()
{
    return EngineContext{*this, st, mech, rng, cycle, committed};
}

SpeculationEngine *
Pipeline::engineByName(const std::string &name) const
{
    for (auto *e : active)
        if (e->name() == name)
            return e;
    return nullptr;
}

equality::FifoHistory &
Pipeline::fifoHistory()
{
    return rsepEngine->fifoHistory();
}

equality::DistancePredictor &
Pipeline::distancePredictor()
{
    return rsepEngine->distancePredictor();
}

pred::Dvtage &
Pipeline::valuePredictor()
{
    return dvtageEngine->predictor();
}

equality::HashRegisterFile &
Pipeline::hrf()
{
    return rsepEngine->hrf();
}

equality::ZeroPredictor &
Pipeline::zeroPredictor()
{
    return zeroPredEngine->predictor();
}

Cycle
Pipeline::opLatency(OpClass c) const
{
    switch (c) {
      case OpClass::IntAlu: return cp.intAluLat;
      case OpClass::IntMul: return cp.intMulLat;
      case OpClass::IntDiv: return cp.intDivLat;
      case OpClass::FpAlu: return cp.fpAluLat;
      case OpClass::FpMul: return cp.fpMulLat;
      case OpClass::FpDiv: return cp.fpDivLat;
      case OpClass::Branch: return cp.branchLat;
      case OpClass::Store: return cp.storeLat;
      default: return 1;
    }
}

void
Pipeline::resetStats()
{
    st = PipelineStats{};
    for (auto *e : active)
        e->resetStats();
}

InflightInst *
Pipeline::findBySeq(u64 seq)
{
    if (rob.empty() || seq < rob.front().traceIdx)
        return nullptr;
    u64 pos = seq - rob.front().traceIdx;
    if (pos >= rob.size())
        return nullptr;
    return &rob[static_cast<size_t>(pos)];
}

// ---------------------------------------------------------------- fetch

void
Pipeline::doFetch()
{
    if (cycle < fetchResumeCycle || fetchWaitingExec)
        return;
    // Front-end backpressure.
    if (frontendQ.size() >= cp.frontendDepth * cp.fetchWidth + 16)
        return;

    unsigned taken_seen = 0;
    for (unsigned n = 0; n < cp.fetchWidth; ++n) {
        const wl::DynRecord &rec = trace.at(fetchIdx);
        const isa::StaticInst &si = emul.program().at(rec.staticIdx);
        Addr pc = isa::Program::pcOf(rec.staticIdx);

        // I-cache: fetching a new line may stall the group.
        Addr line = pc >> mem::lineShift;
        if (line != lastFetchLine) {
            Cycle ready = hier.ifetch(pc, cycle);
            lastFetchLine = line;
            if (ready > cycle + hier.params().l1i.latency) {
                fetchResumeCycle = ready;
                break;
            }
        }

        InflightInst di;
        di.traceIdx = fetchIdx;
        di.si = &si;
        di.pc = pc;
        di.rec = rec;
        di.fetchCycle = cycle;
        di.histFetch = bru.history();
        di.rasSnap = bru.rasSnapshot();

        bool stop_after = false;
        if (si.isBranch()) {
            Addr target = isa::Program::pcOf(rec.nextIdx);
            di.bp = bru.onFetchBranch(pc, si, rec.taken, target);
            if (di.bp.redirect == pred::Redirect::Execute) {
                fetchWaitingExec = true;
                stop_after = true;
            } else if (di.bp.redirect == pred::Redirect::Decode) {
                fetchResumeCycle = cycle + cp.decodeRedirectPenalty;
                stop_after = true;
            } else if (rec.taken) {
                if (++taken_seen > cp.takenBranchesPerFetch)
                    stop_after = true; // cannot follow a 2nd taken branch.
                lastFetchLine = ~Addr{0}; // next fetch starts a new line.
            }
        }

        frontendQ.push_back(std::move(di));
        ++fetchIdx;
        if (stop_after)
            break;
    }
}

// --------------------------------------------------------------- rename

void
Pipeline::renameOne(InflightInst &di)
{
    const isa::StaticInst &si = *di.si;

    // Source renaming.
    di.numSrcs = 0;
    si.forEachSrc([&](ArchReg r) {
        di.srcPregs[di.numSrcs++] =
            r == isa::zeroReg ? zeroPreg : rename.map(r);
    });
    di.producesReg = si.writesReg();
    di.dispatchCycle = cycle;

    // Speculation engines: the rename priority chain (the first engine
    // to claim the destination wins; later engines still get to do
    // their predictor lookups), then the late pass for decisions that
    // depend on the final verdict.
    EngineContext ctx = makeContext();
    bool handled = false;
    for (auto *e : active)
        handled = e->atRename(di, handled, ctx) || handled;
    for (auto *e : active)
        e->atRenamePost(di, handled, ctx);

    // Under the ideal validation policy (Fig. 4 / Fig. 6 "Ideal
    // Validation") checking costs nothing: no second issue, no IQ
    // retention, no producer dependency. Correctness verdicts are
    // still enforced at commit. This applies to every validation
    // consumer (zero prediction included), which is why it lives here
    // and not in an engine.
    if (mech.rsep.validation == equality::ValidationPolicy::Ideal)
        di.needsValidation = false;

    // Destination allocation + map update.
    if (di.producesReg) {
        di.oldPreg = rename.map(si.dst);
        if (di.action == RenameAction::None ||
            di.action == RenameAction::ValuePredicted) {
            di.destPreg = rename.allocate(si.dst);
            if (di.destPreg == invalidPhysReg)
                rsep_panic("free list empty despite rename gating");
            di.allocatedPreg = true;
            pregReady[di.destPreg] =
                di.action == RenameAction::ValuePredicted ? cycle
                                                          : invalidCycle;
        }
        rename.setMap(si.dst, di.destPreg);
    }

    // Memory dependences. The LFST is not rolled back on squashes
    // (Table I), so after a squash it can name a store slot that now
    // belongs to a *younger* instruction; such stale entries are
    // unusable (hardware would find the slot empty) and are dropped.
    SeqNum dep = si.isStore()
        ? storeSets.storeRename(di.pc, di.traceIdx + 1)
        : (si.isLoad() ? storeSets.loadRename(di.pc) : 0);
    if (dep && dep - 1 < di.traceIdx)
        di.storeDepSeq = dep;

    // Queues.
    if (si.opClass() == OpClass::Nop) {
        di.needsExec = false;
        di.completeCycle = cycle;
    }
    if (di.needsExec) {
        di.inIq = true;
        ++iqUsed;
    }
    if (si.isLoad())
        ++lqUsed;
    if (si.isStore())
        ++sqUsed;
}

bool
Pipeline::mayElideExecution(const isa::StaticInst &si) const
{
    for (auto *e : active)
        if (e->mayElideExecution(si))
            return true;
    return false;
}

void
Pipeline::doRename()
{
    for (unsigned n = 0; n < cp.renameWidth && !frontendQ.empty(); ++n) {
        InflightInst &head = frontendQ.front();
        if (head.fetchCycle + cp.frontendDepth > cycle)
            break;
        const isa::StaticInst &si = *head.si;
        if (rob.size() >= cp.robSize) {
            ++st.renameStallRob;
            break;
        }
        // Conservative IQ gating: an engine that *may* elide execution
        // is trusted to, even though elision can still fail at rename
        // (e.g. an ISRB-refused move).
        bool needs_exec =
            !mayElideExecution(si) && si.opClass() != OpClass::Nop;
        if (needs_exec && iqUsed >= cp.iqSize) {
            ++st.renameStallIq;
            break;
        }
        if ((si.isLoad() && lqUsed >= cp.lqSize) ||
            (si.isStore() && sqUsed >= cp.sqSize)) {
            ++st.renameStallLsq;
            break;
        }
        if (si.writesReg() && !rename.hasFree(si.dst)) {
            ++st.renameStallRegs;
            break;
        }
        rob.push_back(std::move(frontendQ.front()));
        frontendQ.pop_front();
        renameOne(rob.back());
    }
}

// ---------------------------------------------------------------- issue

bool
Pipeline::sourcesReady(const InflightInst &di) const
{
    for (unsigned i = 0; i < di.numSrcs; ++i)
        if (pregReady[di.srcPregs[i]] > cycle)
            return false;
    return true;
}

Cycle
Pipeline::executeMemOrAlu(InflightInst &di, int port)
{
    const isa::StaticInst &si = *di.si;
    OpClass c = si.opClass();
    if (c == OpClass::Load) {
        // Store-to-load forwarding: youngest older store to the same
        // doubleword that has already executed.
        Addr dword = di.rec.effAddr & ~Addr{7};
        u64 base_seq = rob.front().traceIdx;
        if (di.traceIdx > base_seq) {
            for (u64 s = di.traceIdx - 1; s + 1 > base_seq; --s) {
                InflightInst *older = findBySeq(s);
                if (!older)
                    break;
                if (!older->isStore())
                    continue;
                if ((older->rec.effAddr & ~Addr{7}) != dword)
                    continue;
                if (older->issued)
                    return std::max(cycle, older->completeCycle) +
                           cp.stlfLat;
                break; // unexecuted conflicting store: speculate past it.
            }
        }
        return hier.load(di.pc, di.rec.effAddr, cycle);
    }
    Cycle lat = opLatency(c);
    Cycle done = cycle + lat;
    if (c == OpClass::IntDiv || c == OpClass::FpDiv)
        fuPool.markUnpipelined(port, done); // unpipelined units.
    return done;
}

void
Pipeline::doIssueAndValidate()
{
    fuPool.beginCycle(cycle);
    const bool lock_fu =
        mech.rsep.validation == equality::ValidationPolicy::Issue2xLockFu;
    const bool ideal_val =
        mech.rsep.validation == equality::ValidationPolicy::Ideal;

    // 1. Validation micro-ops (picker gives them priority, IV-F1).
    for (auto &di : rob) {
        if (!di.needsValidation || di.validationIssued)
            continue;
        if (!di.issued || di.completeCycle > cycle)
            continue;
        // The shared/partner value must be available (back-to-back
        // with the producer via the bypass network).
        u64 prod_seq = di.action == RenameAction::RsepShared
            ? di.shareProducerSeq
            : (di.likelyCandidate ? di.candidateProducerSeq : 0);
        if (prod_seq) {
            InflightInst *prod = findBySeq(prod_seq);
            if (prod && (!prod->issued || prod->completeCycle > cycle))
                continue;
        }
        if (ideal_val) {
            di.validationIssued = true;
            di.validationCycle = cycle;
            if (di.inIq) {
                di.inIq = false;
                --iqUsed;
            }
            continue;
        }
        int port = fuPool.tryIssueValidation(di.si->opClass(), lock_fu);
        if (port < 0)
            continue;
        di.validationIssued = true;
        di.validationCycle = cycle;
        if (di.inIq) {
            di.inIq = false;
            --iqUsed;
        }
    }

    // 2. Regular issue, oldest first.
    for (size_t pos = 0; pos < rob.size(); ++pos) {
        InflightInst &di = rob[pos];
        if (!di.needsExec || di.issued)
            continue;
        if (di.dispatchCycle >= cycle)
            continue;
        if (!sourcesReady(di))
            continue;

        // Equality-predicted instructions (and likely candidates) are
        // made dependent on their producer so the validation micro-op
        // can catch the shared value on the bypass network (IV-F1).
        // The ideal-validation arm has no such constraint.
        u64 extra_seq = di.action == RenameAction::RsepShared
            ? di.shareProducerSeq
            : (di.likelyCandidate ? di.candidateProducerSeq : 0);
        if (ideal_val)
            extra_seq = 0;
        if (extra_seq) {
            InflightInst *prod = findBySeq(extra_seq);
            if (prod && (!prod->issued || prod->completeCycle > cycle))
                continue;
        }

        // Memory dependence (store sets).
        if (di.storeDepSeq) {
            InflightInst *dep = findBySeq(di.storeDepSeq - 1);
            if (dep && dep->isStore() &&
                (!dep->issued || dep->completeCycle > cycle))
                continue;
        }

        int port = fuPool.tryIssue(di.si->opClass());
        if (port < 0)
            continue;

        di.issued = true;
        di.completeCycle = executeMemOrAlu(di, port);

        if (!issueSubscribers.empty()) {
            EngineContext ctx = makeContext();
            for (auto *e : issueSubscribers)
                e->atIssue(di, ctx);
        }

        if (di.allocatedPreg &&
            di.action != RenameAction::ValuePredicted)
            pregReady[di.destPreg] = di.completeCycle;

        if (!di.needsValidation && di.inIq) {
            di.inIq = false;
            --iqUsed;
        }

        // Branch resolution releases a stalled front end.
        if (di.si->isBranch() &&
            di.bp.redirect == pred::Redirect::Execute) {
            fetchResumeCycle = di.completeCycle + 1;
            fetchWaitingExec = false;
            lastFetchLine = ~Addr{0};
        }

        // Stores: detect memory-order violations against younger loads
        // that already issued to the same doubleword.
        if (di.si->isStore()) {
            Addr dword = di.rec.effAddr & ~Addr{7};
            for (size_t j = pos + 1; j < rob.size(); ++j) {
                InflightInst &yng = rob[j];
                if (yng.isLoad() && yng.issued &&
                    (yng.rec.effAddr & ~Addr{7}) == dword) {
                    storeSets.reportViolation(yng.pc, di.pc);
                    ++st.memOrderSquashes;
                    squashFrom(j, true);
                    return; // ROB changed; end the stage.
                }
            }
        }
    }
}

// --------------------------------------------------------------- squash

void
Pipeline::undoRename(InflightInst &di)
{
    if (!di.producesReg || di.destPreg == invalidPhysReg)
        return;
    rename.setMap(di.si->dst, di.oldPreg);
    if (di.allocatedPreg) {
        // Normal (or value-predicted) allocation: plain free.
        rename.release(di.destPreg);
        return;
    }
    // Zero-register mappings (zero idiom / zero prediction) allocated
    // nothing; sharing engines undo their ISRB registration.
    EngineContext ctx = makeContext();
    for (auto *e : active)
        e->atSquashInst(di, ctx);
}

void
Pipeline::releaseMapping(PhysReg preg)
{
    rename.release(preg);
    if (mech.fig1Probe) {
        auto it = liveValues.find(pregValue[preg]);
        if (it != liveValues.end() && --it->second == 0)
            liveValues.erase(it);
    }
}

void
Pipeline::squashFrom(size_t rob_pos, bool refetch_penalty)
{
    // Restore front-end state to the first squashed instruction. When
    // the squash removes only fetched-not-renamed instructions, the
    // snapshot lives at the front of the frontend queue instead.
    if (rob_pos < rob.size()) {
        const InflightInst &first = rob[rob_pos];
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
    } else if (!frontendQ.empty()) {
        const InflightInst &first = frontendQ.front();
        bru.restore(first.histFetch, first.rasSnap);
        fetchIdx = first.traceIdx;
    }

    for (size_t i = rob.size(); i-- > rob_pos;) {
        InflightInst &di = rob[i];
        undoRename(di);
        if (di.inIq)
            --iqUsed;
        if (di.isLoad())
            --lqUsed;
        if (di.isStore())
            --sqUsed;
        rob.pop_back();
    }
    frontendQ.clear();
    {
        EngineContext ctx = makeContext();
        for (auto *e : active)
            e->atSquashAll(ctx);
    }
    fetchWaitingExec = false;
    lastFetchLine = ~Addr{0};
    fetchResumeCycle = cycle + (refetch_penalty ? 1 : 0);
}

// --------------------------------------------------------------- commit

bool
Pipeline::commitBlocked(const InflightInst &di) const
{
    if (di.needsExec && (!di.issued || di.completeCycle >= cycle))
        return true;
    if (!di.needsExec && di.completeCycle >= cycle)
        return true;
    if (di.needsValidation &&
        (!di.validationIssued || di.validationCycle >= cycle))
        return true;
    return false;
}

void
Pipeline::commitOne(InflightInst &di, bool squash_follows)
{
    const isa::StaticInst &si = *di.si;
    ++st.committedInsts;
    if (si.isLoad())
        ++st.committedLoads;
    if (si.isStore())
        ++st.committedStores;
    if (si.isBranch())
        ++st.committedBranches;
    if (di.producesReg)
        ++st.committedProducers;

    // Fig. 1 probe: result redundancy at commit.
    if (mech.fig1Probe && di.producesReg) {
        if (di.rec.result == 0 && !si.isZeroIdiom())
            ++(si.isLoad() ? st.fig1ZeroLoad : st.fig1ZeroOther);
        if (liveValues.count(di.rec.result))
            ++(si.isLoad() ? st.fig1InPrfLoad : st.fig1InPrfOther);
    }

    // Engine coverage accounting and commit-time training.
    {
        EngineContext ctx = makeContext();
        ctx.squashFollowsCommit = squash_follows;
        for (auto *e : active)
            e->atCommit(di, ctx);
    }

    // Structural commit actions.
    if (si.isBranch())
        bru.onCommitBranch(di.bp, di.pc, si,
                           isa::Program::pcOf(di.rec.nextIdx));
    if (si.isStore()) {
        hier.storeCommit(di.rec.effAddr, cycle);
        storeSets.storeRetire(di.pc, di.traceIdx + 1);
        --sqUsed;
    }
    if (si.isLoad())
        --lqUsed;

    // Release the previous mapping of the destination register.
    if (di.producesReg && di.oldPreg != invalidPhysReg &&
        di.oldPreg != zeroPreg) {
        switch (isrbUnit.release(di.oldPreg)) {
          case equality::IsrbRelease::NotShared:
          case equality::IsrbRelease::Freed:
            releaseMapping(di.oldPreg);
            break;
          case equality::IsrbRelease::StillLive:
            break;
        }
    }

    // Fig. 1 probe bookkeeping: the new mapping's value becomes live.
    if (mech.fig1Probe && di.allocatedPreg) {
        pregValue[di.destPreg] = di.rec.result;
        ++liveValues[di.rec.result];
    }

    ++committed;
}

void
Pipeline::doCommit()
{
    unsigned producers_this_cycle = 0;

    unsigned n = 0;
    while (n < cp.commitWidth && !rob.empty()) {
        InflightInst &di = rob.front();
        if (commitBlocked(di))
            break;

        // Speculation verdicts (commit-time validation). At most one
        // engine can own the head instruction's rename action, so at
        // most one verdict is non-Proceed.
        CommitVerdict verdict = CommitVerdict::Proceed;
        {
            EngineContext ctx = makeContext();
            for (auto *e : active) {
                verdict = e->atCommitHead(di, ctx);
                if (verdict != CommitVerdict::Proceed)
                    break;
            }
        }
        if (verdict == CommitVerdict::SquashRefetch) {
            squashFrom(0, true);
            break;
        }
        if (verdict == CommitVerdict::CommitThenSquash) {
            commitOne(di, /*squash_follows=*/true);
            u64 next_idx = di.traceIdx + 1;
            rob.pop_front();
            squashFrom(0, true);
            fetchIdx = next_idx;
            trace.trimBelow(next_idx);
            break;
        }

        commitOne(di);
        if (di.producesReg)
            ++producers_this_cycle;

        rob.pop_front();
        if (!rob.empty()) {
            trace.trimBelow(rob.front().traceIdx);
        } else {
            // Careful: fetched-but-unrenamed instructions may still be
            // squashed and re-fetched; keep their records reachable.
            u64 low = fetchIdx;
            if (!frontendQ.empty())
                low = std::min(low, frontendQ.front().traceIdx);
            trace.trimBelow(low);
        }
        ++n;
    }

    // End of the commit group: histogram sampling and deferred history
    // probes live in the engines.
    {
        EngineContext ctx = makeContext();
        for (auto *e : active)
            e->atCommitGroupEnd(producers_this_cycle, ctx);
    }
}

bool
Pipeline::checkRegisterConservation() const
{
    // A physical register is LIVE iff it is the current mapping of an
    // architectural register or the old mapping recorded by an
    // in-flight instruction (to be released at its commit). Everything
    // else must be on a free list, and nothing may be both.
    std::vector<u8> live(rename.totalPregs(), 0);
    live[zeroPreg] = 1;
    for (ArchReg r = 0; r < isa::numArchRegs; ++r) {
        PhysReg p_ = rename.map(r);
        if (p_ != invalidPhysReg && p_ != zeroPreg)
            live[p_] = 1;
    }
    for (const auto &di : rob) {
        if (di.producesReg && di.oldPreg != invalidPhysReg &&
            di.oldPreg != zeroPreg)
            live[di.oldPreg] = 1;
    }

    size_t free_total = rename.intFreeCount() + rename.fpFreeCount();
    size_t live_total = 0;
    for (unsigned p_ = 0; p_ < rename.totalPregs(); ++p_)
        live_total += live[p_];

    if (free_total + live_total != rename.totalPregs()) {
        rsep_warn("register conservation violated: %zu free + %zu live "
                  "!= %u total",
                  free_total, live_total, rename.totalPregs());
        return false;
    }
    return true;
}

void
Pipeline::run(u64 ninsts)
{
    u64 target = committed + ninsts;
    while (committed < target) {
        ++cycle;
        ++st.cycles;
        doCommit();
        doIssueAndValidate();
        doRename();
        doFetch();
        if (cycle > (target + 1) * 1000) {
            if (!rob.empty()) {
                const InflightInst &h = rob.front();
                rsep_panic("pipeline livelock: cycle %llu committed %llu "
                           "head seq %llu pc %llx action %d needsExec %d "
                           "issued %d complete %llu srcs %u "
                           "ready [%llu %llu %llu] storeDep %llu",
                           static_cast<unsigned long long>(cycle),
                           static_cast<unsigned long long>(committed),
                           static_cast<unsigned long long>(h.traceIdx),
                           static_cast<unsigned long long>(h.pc),
                           static_cast<int>(h.action), h.needsExec,
                           h.issued,
                           static_cast<unsigned long long>(h.completeCycle),
                           h.numSrcs,
                           static_cast<unsigned long long>(
                               h.numSrcs > 0 ? pregReady[h.srcPregs[0]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 1 ? pregReady[h.srcPregs[1]] : 0),
                           static_cast<unsigned long long>(
                               h.numSrcs > 2 ? pregReady[h.srcPregs[2]] : 0),
                           static_cast<unsigned long long>(h.storeDepSeq));
            }
            rsep_panic("pipeline livelock: cycle %llu committed %llu "
                       "(empty rob, frontendQ %zu, fetchIdx %llu, "
                       "resume %llu, waitingExec %d)",
                       static_cast<unsigned long long>(cycle),
                       static_cast<unsigned long long>(committed),
                       frontendQ.size(),
                       static_cast<unsigned long long>(fetchIdx),
                       static_cast<unsigned long long>(fetchResumeCycle),
                       fetchWaitingExec);
        }
    }
}

} // namespace rsep::core

/**
 * @file
 * In-window value -> producer index for the oracle equality engine.
 *
 * The oracle arm used to discover an equal-valued older producer by
 * walking the ROB backwards from every renaming instruction — O(ROB)
 * per rename, and the dominant cost of the rsep-oracle arm. This index
 * keeps, per 64-bit result value, the seq-sorted list of in-window
 * producers (instructions with producesReg and a valid destPreg),
 * maintained at rename (insert), commit (remove oldest) and squash
 * (remove youngest), exactly like MemDwordIndex in wakeup.hh.
 *
 * Each producer also carries a dense *producer ordinal*: the n-th
 * producer renamed is ordinal n, commit removes the oldest prefix and
 * squash rolls the counter back to the oldest squashed producer's
 * ordinal. Ordinals of live producers therefore always form a dense
 * range, which turns the walk's "give up after `window` producers
 * scanned" bound into an O(1) comparison: a producer is within the
 * window of a rename at counter C iff ord >= C - window. Equivalence
 * with the reference walk is pinned by tests/test_pred_fold.cc.
 */

#ifndef RSEP_CORE_VALUE_INDEX_HH
#define RSEP_CORE_VALUE_INDEX_HH

#include <algorithm>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace rsep::core
{

/** Open-addressing map: result value -> in-window producers. */
class ValueEqIndex
{
  public:
    struct Prod
    {
        u64 seq; ///< trace sequence number.
        u64 ord; ///< dense producer ordinal.
    };

    explicit ValueEqIndex(size_t capacity_hint = 512)
    {
        size_t cap = 16;
        while (cap < capacity_hint)
            cap *= 2;
        slots.resize(cap);
    }

    /** Producers join at rename (ascending seq and ord). */
    void
    add(u64 value, u64 seq, u64 ord)
    {
        std::vector<Prod> &v = findOrCreate(value).prods;
        // Rename inserts in ascending seq order; squash removals only
        // trim the tail, so push_back keeps the vector sorted. The
        // assert-free fallback below covers out-of-order use in tests.
        if (v.empty() || v.back().seq < seq) {
            v.push_back(Prod{seq, ord});
        } else {
            auto it = std::lower_bound(
                v.begin(), v.end(), seq,
                [](const Prod &p, u64 s) { return p.seq < s; });
            v.insert(it, Prod{seq, ord});
        }
    }

    /** Remove a producer (commit or squash); returns its ordinal. */
    std::optional<u64>
    remove(u64 value, u64 seq)
    {
        size_t mask = slots.size() - 1;
        for (size_t i = hashOf(value) & mask;; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.state == Empty)
                return std::nullopt;
            if (s.state != Used || s.key != value)
                continue;
            auto it = std::lower_bound(
                s.prods.begin(), s.prods.end(), seq,
                [](const Prod &p, u64 q) { return p.seq < q; });
            if (it == s.prods.end() || it->seq != seq)
                return std::nullopt;
            u64 ord = it->ord;
            s.prods.erase(it);
            if (s.prods.empty()) {
                s.state = Tomb;
                --used;
                ++tombs;
            }
            return ord;
        }
    }

    /** Seq-ascending producers of @p value; nullptr if none. */
    const std::vector<Prod> *
    find(u64 value) const
    {
        size_t mask = slots.size() - 1;
        for (size_t i = hashOf(value) & mask;; i = (i + 1) & mask) {
            const Slot &s = slots[i];
            if (s.state == Empty)
                return nullptr;
            if (s.state == Used && s.key == value)
                return &s.prods;
        }
    }

    size_t slotCapacity() const { return slots.size(); }
    size_t entriesUsed() const { return used; }

  private:
    enum : u8 { Empty = 0, Used = 1, Tomb = 2 };

    struct Slot
    {
        u64 key = 0;
        u8 state = Empty;
        std::vector<Prod> prods;
    };

    static size_t
    hashOf(u64 value)
    {
        u64 x = value;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<size_t>(x);
    }

    Slot &
    findOrCreate(u64 value)
    {
        if ((used + tombs + 1) * 4 > slots.size() * 3)
            rehash(slots.size() * 2);
        size_t mask = slots.size() - 1;
        size_t first_tomb = slots.size();
        for (size_t i = hashOf(value) & mask;; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.state == Used && s.key == value)
                return s;
            if (s.state == Tomb && first_tomb == slots.size())
                first_tomb = i;
            if (s.state == Empty) {
                Slot &dst =
                    first_tomb != slots.size() ? slots[first_tomb] : s;
                if (dst.state == Tomb)
                    --tombs;
                dst.key = value;
                dst.state = Used;
                ++used;
                return dst;
            }
        }
    }

    void
    rehash(size_t cap)
    {
        std::vector<Slot> old = std::move(slots);
        slots.clear();
        slots.resize(cap);
        used = 0;
        tombs = 0;
        for (Slot &s : old) {
            if (s.state != Used)
                continue;
            findOrCreate(s.key).prods = std::move(s.prods);
        }
    }

    std::vector<Slot> slots;
    size_t used = 0;
    size_t tombs = 0;
};

} // namespace rsep::core

#endif // RSEP_CORE_VALUE_INDEX_HH

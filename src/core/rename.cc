#include "core/rename.hh"

namespace rsep::core
{

RenameState::RenameState(const CoreParams &params)
    : total(params.intPregs + params.fpPregs),
      fpBase(static_cast<PhysReg>(params.intPregs)),
      mapTable(isa::numArchRegs, invalidPhysReg)
{
    if (params.intPregs <= isa::numIntArchRegs ||
        params.fpPregs <= isa::numFpArchRegs)
        rsep_fatal("too few physical registers");

    // Initial architectural mappings. INT arch r maps to preg r+1
    // except the zero register which owns preg 0 permanently.
    PhysReg next = 1;
    for (ArchReg r = 0; r < isa::numIntArchRegs; ++r) {
        if (r == isa::zeroReg)
            mapTable[r] = zeroPreg;
        else
            mapTable[r] = next++;
    }
    for (PhysReg p = next; p < fpBase; ++p)
        intFree.push_back(p);

    PhysReg fnext = fpBase;
    for (ArchReg r = isa::fpRegBase; r < isa::numArchRegs; ++r)
        mapTable[r] = fnext++;
    for (PhysReg p = fnext; p < total; ++p)
        fpFree.push_back(p);
}

PhysReg
RenameState::allocate(ArchReg areg)
{
    auto &pool = isa::isFpReg(areg) ? fpFree : intFree;
    if (pool.empty())
        return invalidPhysReg;
    PhysReg p = pool.back();
    pool.pop_back();
    return p;
}

void
RenameState::release(PhysReg preg)
{
    if (preg == zeroPreg || preg == invalidPhysReg)
        rsep_panic("releasing reserved preg %u", preg);
    (isFpPreg(preg) ? fpFree : intFree).push_back(preg);
}

} // namespace rsep::core

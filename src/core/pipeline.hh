/**
 * @file
 * The cycle-level 8-wide out-of-order core (Table I) with the RSEP
 * mechanisms of the paper integrated at Rename / Execute / Commit
 * (Fig. 3): zero-idiom elimination (baseline), move elimination, zero
 * prediction, register-sharing equality prediction (distance predictor
 * + ROB lookup + ISRB + HRF + FIFO history + validation µ-ops) and
 * D-VTAGE value prediction.
 *
 * Modelling approach (see DESIGN.md): trace-driven replay of the
 * committed path. Branch mispredictions stall fetch until the branch
 * executes (wrong-path fetch is not simulated); value/equality/zero
 * mispredictions squash at commit and rewind the trace cursor, which is
 * exact because they do not change architectural state.
 */

#ifndef RSEP_CORE_PIPELINE_HH
#define RSEP_CORE_PIPELINE_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/dyninst.hh"
#include "core/fu_pool.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/trace_buffer.hh"
#include "mem/hierarchy.hh"
#include "pred/branch_unit.hh"
#include "pred/dvtage.hh"
#include "pred/storesets.hh"
#include "rsep/config.hh"
#include "rsep/ddt.hh"
#include "rsep/distance_pred.hh"
#include "rsep/fifo_history.hh"
#include "rsep/hash.hh"
#include "rsep/hrf.hh"
#include "rsep/isrb.hh"
#include "rsep/zero_pred.hh"

namespace rsep::core
{

/** Which speculation mechanisms are active (the Fig. 4 arms). */
struct MechConfig
{
    bool zeroIdiomElim = true;  ///< baseline feature (Table I).
    bool moveElim = false;
    bool zeroPred = false;
    bool equalityPred = false;  ///< RSEP.
    bool valuePred = false;     ///< D-VTAGE.
    equality::RsepConfig rsep{};
    pred::DvtageParams vp{};
    bool fig1Probe = false;     ///< collect Fig. 1 redundancy stats.
};

/** Aggregated pipeline statistics. */
struct PipelineStats
{
    StatCounter cycles;
    StatCounter committedInsts;
    StatCounter committedProducers;
    StatCounter committedLoads;
    StatCounter committedStores;
    StatCounter committedBranches;

    // Coverage (Fig. 5), split loads vs others where the paper does.
    StatCounter zeroIdiomElim;
    StatCounter moveElim;
    StatCounter zeroPredOther;
    StatCounter zeroPredLoad;
    StatCounter distPredOther;
    StatCounter distPredLoad;
    StatCounter valuePredOther;
    StatCounter valuePredLoad;

    // Speculation outcomes.
    StatCounter rsepCorrect;
    StatCounter rsepMispredicts;
    StatCounter zeroCorrect;
    StatCounter zeroMispredicts;
    StatCounter vpCorrect;
    StatCounter vpMispredicts;
    StatCounter commitSquashes;
    StatCounter memOrderSquashes;
    StatCounter likelyCandidates;
    StatCounter shareFailNoProducer;
    StatCounter shareFailIsrb;
    StatCounter hashFalsePositives;
    StatCounter rsepVpOverlap; ///< RSEP-covered insts VP would also cover.

    // Fig. 1 probe.
    StatCounter fig1ZeroLoad;
    StatCounter fig1ZeroOther;
    StatCounter fig1InPrfLoad;
    StatCounter fig1InPrfOther;

    // Commit-group eligibility histogram (Section IV-D comparators).
    StatHistogram commitGroupProducers{9};

    // Front-end.
    StatCounter fetchStallCycles;
    StatCounter renameStallRob;
    StatCounter renameStallIq;
    StatCounter renameStallLsq;
    StatCounter renameStallRegs;

    double
    ipc() const
    {
        return cycles.value()
            ? static_cast<double>(committedInsts.value()) /
                  static_cast<double>(cycles.value())
            : 0.0;
    }
};

/** The core. */
class Pipeline
{
  public:
    Pipeline(const CoreParams &core_params, const MechConfig &mech,
             wl::Emulator &emu, u64 seed = 1234);

    /** Run until @p ninsts more instructions commit. */
    void run(u64 ninsts);

    /** Zero all statistics (end of warmup). */
    void resetStats();

    PipelineStats &stats() { return st; }
    const CoreParams &coreParams() const { return cp; }
    const MechConfig &mechConfig() const { return mech; }

    pred::BranchUnit &branchUnit() { return bru; }
    mem::MemoryHierarchy &memory() { return hier; }
    equality::Isrb &isrb() { return isrbUnit; }
    equality::FifoHistory &fifoHistory() { return fifo; }
    equality::DistancePredictor &distancePredictor() { return distPred; }
    pred::Dvtage &valuePredictor() { return vp; }
    equality::HashRegisterFile &hrf() { return hrfUnit; }

    /** Architectural commit count (CSN source). */
    u64 committedCount() const { return committed; }

    /**
     * Debug invariant: every physical register is accounted for exactly
     * once (free list, architectural mapping, or in-flight allocation,
     * with ISRB-shared registers counted once). @return true if sound.
     */
    bool checkRegisterConservation() const;

  private:
    // --- stages ---
    void doFetch();
    void doRename();
    void doIssueAndValidate();
    void doCommit();

    // --- helpers ---
    void renameOne(InflightInst &di);
    bool tryEqualityPredict(InflightInst &di);
    void resolveLikelyCandidate(InflightInst &di);
    InflightInst *findBySeq(u64 seq);
    bool sourcesReady(const InflightInst &di) const;
    Cycle executeMemOrAlu(InflightInst &di, int port);
    void squashFrom(size_t rob_pos, bool refetch_penalty);
    void undoRename(InflightInst &di);
    void commitTrainEquality(InflightInst &di);
    void commitOne(InflightInst &di);
    void releaseMapping(PhysReg preg);
    bool commitBlocked(const InflightInst &di) const;

    Cycle
    opLatency(isa::OpClass c) const;

    // --- configuration ---
    CoreParams cp;
    MechConfig mech;

    // --- substrate ---
    wl::Emulator &emul;
    TraceBuffer trace;
    mem::MemoryHierarchy hier;
    pred::BranchUnit bru;
    pred::StoreSets storeSets;
    pred::Dvtage vp;

    // --- RSEP structures ---
    equality::DistancePredictor distPred;
    equality::FifoHistory fifo;
    equality::Ddt ddt;
    equality::Isrb isrbUnit;
    equality::ZeroPredictor zeroPred;
    equality::HashRegisterFile hrfUnit;

    // --- core state ---
    RenameState rename;
    FuPool fuPool;
    std::deque<InflightInst> rob;
    std::deque<InflightInst> frontendQ; ///< fetched, waiting for rename.
    std::vector<Cycle> pregReady;
    std::vector<u64> pregValue;  ///< Fig. 1 probe bookkeeping.
    std::unordered_map<u64, u64> liveValues; ///< value -> live preg count.

    unsigned iqUsed = 0;
    unsigned lqUsed = 0;
    unsigned sqUsed = 0;

    u64 fetchIdx = 0;       ///< next trace index to fetch.
    Cycle cycle = 0;
    Cycle fetchResumeCycle = 0;
    bool fetchWaitingExec = false; ///< stalled on an exec-redirect branch.
    u64 committed = 0;
    Addr lastFetchLine = ~Addr{0};

    Rng rng;
    PipelineStats st;
};

} // namespace rsep::core

#endif // RSEP_CORE_PIPELINE_HH

/**
 * @file
 * The cycle-level 8-wide out-of-order core (Table I). The pipeline
 * owns stage orchestration only — fetch / rename / issue+validate /
 * commit scheduling, the ROB, the rename map and free lists, and the
 * ISRB register-sharing substrate. Every speculation mechanism of the
 * paper (zero-idiom elimination, move elimination, zero prediction,
 * register-sharing equality prediction, D-VTAGE value prediction) is a
 * self-contained SpeculationEngine (see spec_engine.hh and
 * core/engines/) registered from MechConfig and dispatched to at
 * Rename / Execute / Commit (Fig. 3).
 *
 * Modelling approach (see DESIGN.md): trace-driven replay of the
 * committed path. Branch mispredictions stall fetch until the branch
 * executes (wrong-path fetch is not simulated); value/equality/zero
 * mispredictions squash at commit and rewind the trace cursor, which is
 * exact because they do not change architectural state.
 */

#ifndef RSEP_CORE_PIPELINE_HH
#define RSEP_CORE_PIPELINE_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hh"
#include "core/dyninst.hh"
#include "core/sampler.hh"
#include "core/fu_pool.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/spec_engine.hh"
#include "core/trace_buffer.hh"
#include "core/value_index.hh"
#include "core/wakeup.hh"
#include "mem/hierarchy.hh"
#include "pred/branch_unit.hh"
#include "pred/dvtage.hh"
#include "pred/storesets.hh"
#include "rsep/config.hh"
#include "rsep/isrb.hh"

namespace rsep::equality
{
class FifoHistory;
class HashRegisterFile;
class ZeroPredictor;
} // namespace rsep::equality

namespace rsep::core
{

class ZeroIdiomEngine;
class MoveElimEngine;
class ZeroPredEngine;
class RsepEngine;
class OracleEqEngine;
class DvtageEngine;

/** Which speculation mechanisms are active (the Fig. 4 arms). */
struct MechConfig
{
    bool zeroIdiomElim = true;  ///< baseline feature (Table I).
    bool moveElim = false;
    bool zeroPred = false;
    bool equalityPred = false;  ///< RSEP.
    bool oracleEq = false;      ///< oracle equality (limit study).
    bool valuePred = false;     ///< D-VTAGE.
    equality::RsepConfig rsep{};
    pred::DvtageParams vp{};
    bool fig1Probe = false;     ///< collect Fig. 1 redundancy stats.
};

/**
 * Field-introspection hook for the MechConfig toggles (the `[mech]`
 * scenario-file section). The nested RsepConfig and DvtageParams are
 * visited through their own hooks as the `[rsep]` and `[vp]` sections.
 */
template <class V>
void
visitFields(MechConfig &m, V &&v)
{
    v("zero_idiom_elim", m.zeroIdiomElim);
    v("move_elim", m.moveElim);
    v("zero_pred", m.zeroPred);
    v("equality_pred", m.equalityPred);
    v("oracle_eq", m.oracleEq);
    v("value_pred", m.valuePred);
    v("fig1_probe", m.fig1Probe);
}

/** Aggregated pipeline statistics. */
struct PipelineStats
{
    StatCounter cycles;
    StatCounter committedInsts;
    StatCounter committedProducers;
    StatCounter committedLoads;
    StatCounter committedStores;
    StatCounter committedBranches;

    // Coverage (Fig. 5), split loads vs others where the paper does.
    StatCounter zeroIdiomElim;
    StatCounter moveElim;
    StatCounter zeroPredOther;
    StatCounter zeroPredLoad;
    StatCounter distPredOther;
    StatCounter distPredLoad;
    StatCounter valuePredOther;
    StatCounter valuePredLoad;

    // Speculation outcomes.
    StatCounter rsepCorrect;
    StatCounter rsepMispredicts;
    StatCounter zeroCorrect;
    StatCounter zeroMispredicts;
    StatCounter vpCorrect;
    StatCounter vpMispredicts;
    StatCounter commitSquashes;
    StatCounter memOrderSquashes;
    StatCounter likelyCandidates;
    StatCounter shareFailNoProducer;
    StatCounter shareFailIsrb;
    StatCounter hashFalsePositives;
    StatCounter rsepVpOverlap; ///< RSEP-covered insts VP would also cover.

    // Fig. 1 probe.
    StatCounter fig1ZeroLoad;
    StatCounter fig1ZeroOther;
    StatCounter fig1InPrfLoad;
    StatCounter fig1InPrfOther;

    // Commit-group eligibility histogram (Section IV-D comparators).
    StatHistogram commitGroupProducers{9};

    // Front-end.
    StatCounter fetchStallCycles;
    StatCounter renameStallRob;
    StatCounter renameStallIq;
    StatCounter renameStallLsq;
    StatCounter renameStallRegs;

    double
    ipc() const
    {
        return cycles.value()
            ? static_cast<double>(committedInsts.value()) /
                  static_cast<double>(cycles.value())
            : 0.0;
    }
};

/**
 * Stat-introspection hook: visit every PipelineStats counter as
 * `v(name, counter)`. The stat-export layer derives its table/CSV/JSON
 * columns from this enumeration (the commitGroupProducers histogram is
 * exported bucket-wise by that layer).
 */
template <class V>
void
visitStats(PipelineStats &st, V &&v)
{
    v("cycles", st.cycles);
    v("committed_insts", st.committedInsts);
    v("committed_producers", st.committedProducers);
    v("committed_loads", st.committedLoads);
    v("committed_stores", st.committedStores);
    v("committed_branches", st.committedBranches);
    v("zero_idiom_elim", st.zeroIdiomElim);
    v("move_elim", st.moveElim);
    v("zero_pred_other", st.zeroPredOther);
    v("zero_pred_load", st.zeroPredLoad);
    v("dist_pred_other", st.distPredOther);
    v("dist_pred_load", st.distPredLoad);
    v("value_pred_other", st.valuePredOther);
    v("value_pred_load", st.valuePredLoad);
    v("rsep_correct", st.rsepCorrect);
    v("rsep_mispredicts", st.rsepMispredicts);
    v("zero_correct", st.zeroCorrect);
    v("zero_mispredicts", st.zeroMispredicts);
    v("vp_correct", st.vpCorrect);
    v("vp_mispredicts", st.vpMispredicts);
    v("commit_squashes", st.commitSquashes);
    v("mem_order_squashes", st.memOrderSquashes);
    v("likely_candidates", st.likelyCandidates);
    v("share_fail_no_producer", st.shareFailNoProducer);
    v("share_fail_isrb", st.shareFailIsrb);
    v("hash_false_positives", st.hashFalsePositives);
    v("rsep_vp_overlap", st.rsepVpOverlap);
    v("fig1_zero_load", st.fig1ZeroLoad);
    v("fig1_zero_other", st.fig1ZeroOther);
    v("fig1_in_prf_load", st.fig1InPrfLoad);
    v("fig1_in_prf_other", st.fig1InPrfOther);
    v("fetch_stall_cycles", st.fetchStallCycles);
    v("rename_stall_rob", st.renameStallRob);
    v("rename_stall_iq", st.renameStallIq);
    v("rename_stall_lsq", st.renameStallLsq);
    v("rename_stall_regs", st.renameStallRegs);
}

/** The core. */
class Pipeline
{
  public:
    /** @p src is the committed-path stream: a live wl::Emulator or a
     *  recorded-trace replay source (wl/trace_io.hh). */
    Pipeline(const CoreParams &core_params, const MechConfig &mech,
             wl::TraceSource &src, u64 seed = 1234);
    ~Pipeline();

    /** Run until @p ninsts more instructions commit. */
    void run(u64 ninsts);

    /** Zero all statistics (end of warmup), engine-local ones included. */
    void resetStats();

    // ------------------------------------------------ time-series sampling
    /**
     * Attach a StatSampler for the following run() — typically right
     * after resetStats(), so samples cover exactly the measurement
     * window. Costs one pointer null-check per cycle-loop iteration
     * when detached (the fig1Probe discipline: opt-in observability
     * must be free when off). nullptr detaches without flushing.
     */
    void attachSampler(StatSampler *s);

    /** Emit the final partial sample row (delta columns then sum to
     *  the end-of-run totals) and detach the sampler. */
    void finishSampling();

    PipelineStats &stats() { return st; }
    const CoreParams &coreParams() const { return cp; }
    const MechConfig &mechConfig() const { return mech; }

    // ------------------------------------------------ speculation engines
    /** Registered (active) engines in dispatch order. */
    const std::vector<SpeculationEngine *> &engines() const
    {
        return active;
    }

    /** Active engine by name; nullptr when not registered. */
    SpeculationEngine *engineByName(const std::string &name) const;

    // -------------------------------------------------------- substrates
    pred::BranchUnit &branchUnit() { return bru; }
    mem::MemoryHierarchy &memory() { return hier; }
    equality::Isrb &isrb() { return isrbUnit; }

    // Structure accessors, delegating to the owning engines (which are
    // constructed in every configuration, registered or not).
    equality::FifoHistory &fifoHistory();
    equality::DistancePredictor &distancePredictor();
    pred::Dvtage &valuePredictor();
    equality::HashRegisterFile &hrf();
    equality::ZeroPredictor &zeroPredictor();

    /** Architectural commit count (CSN source). */
    u64 committedCount() const { return committed; }

    /**
     * Rename-side global-history replica and its folded registers:
     * advanced as branches *rename*, so during any instruction's rename
     * hooks it equals that instruction's fetch-time history (commit
     * order == fetch order on the trace-driven path; squashes restore
     * it from the refetch point). Engines performing history-indexed
     * lookups at rename use these instead of folding di.histFetch from
     * scratch. Only bound when a registered engine needs it.
     */
    const pred::GlobalHist &renameHist() const { return renameHist_; }
    const pred::GeoFolds &renameFolds() const { return renameFolds_; }

    /** Value -> in-window producer index for the oracle equality arm;
     *  nullptr unless mech.oracleEq. */
    const ValueEqIndex *valueEqIndex() const { return valIdx.get(); }
    /** Ordinal the *next* renamed producer will receive. */
    u64 valueEqNextOrd() const { return valOrdNext; }

    // ------------------------------------------------------- engine API
    /** In-flight instruction by sequence number; nullptr if retired or
     *  not yet renamed. */
    InflightInst *findBySeq(u64 seq);

    /** Return a physical register to the free list, with Fig. 1 probe
     *  value-liveness bookkeeping. */
    void releaseMapping(PhysReg preg);

    /**
     * Debug invariant: every physical register is accounted for exactly
     * once (free list, architectural mapping, or in-flight allocation,
     * with ISRB-shared registers counted once). @return true if sound.
     */
    bool checkRegisterConservation() const;

  private:
    // --- stages ---
    void doFetch();
    void doRename();
    void doIssueAndValidate();
    void doCommit();

    // --- helpers ---
    EngineContext makeContext();
    void renameOne(InflightInst &di);
    bool sourcesReady(const InflightInst &di) const;
    Cycle executeMemOrAlu(InflightInst &di, int port);
    void squashFrom(size_t rob_pos, bool refetch_penalty);
    void undoRename(InflightInst &di);
    void commitOne(InflightInst &di, bool squash_follows = false);
    bool commitBlocked(const InflightInst &di) const;
    bool mayElideExecution(const isa::StaticInst &si) const;

    /**
     * Memo for mayElideExecution: the verdict is a pure function of
     * the static instruction and the (fixed) engine roster, but the
     * generic query is a virtual call per active engine per renamed
     * instruction. Static instructions are stable for the program's
     * lifetime, so a small direct-mapped pointer-keyed cache turns the
     * steady state into one compare.
     */
    struct ElideCacheEntry
    {
        const isa::StaticInst *si = nullptr;
        bool elide = false;
    };
    mutable std::array<ElideCacheEntry, 256> elideCache{};

    /**
     * Earliest future cycle at which any stage could make progress, or
     * invalidCycle when the next cycle must run normally (work is
     * queued, or no time-driven event is known). run() uses this to
     * fast-forward provably idle stretches — branch-mispredict and
     * cache-miss stalls — in one step; skipped cycles are observable
     * only through st.cycles and the engines' atIdleCycles hook, so
     * every stat dump stays byte-identical to single-stepping.
     */
    Cycle nextEventCycle() const;

    Cycle
    opLatency(isa::OpClass c) const;

    // --- event-driven issue scheduling (wakeup.hh, DESIGN.md §9) ---
    /** The producer seq the issue stage must see complete on the
     *  bypass before @p di may issue (0 = none). */
    u64 issueProducerSeq(const InflightInst &di) const;
    /** (Re)compute where @p di belongs in the scheduler: a waiter
     *  chain, the wakeup heap, or the ready list. */
    void scheduleIssue(InflightInst &di);
    /** Park @p di on @p chain_head with a fresh token. */
    void parkWaiter(InflightInst &di, u32 &chain_head, SchedState state);
    /** Drain a detached waiter chain, rescheduling every still-valid
     *  waiter (callers detach the head first so re-parks never land
     *  back on the chain being drained). */
    void wakeChain(u32 head, SchedState expected);
    /** Promote heap entries due at the current cycle into the ready
     *  list. */
    void promoteDueWakeups();
    /** Outcome of attempting one ready-list entry this cycle. */
    enum class IssueStep : u8 {
        Drop,     ///< leaves the list (issued, stale, or re-parked).
        Keep,     ///< lost port arbitration; retry next cycle.
        EndStage, ///< memory-order violation: squash and end the stage.
    };
    IssueStep processReadyEntry(ReadyEntry e, size_t &squash_pos);
    /** Drop scheduler entries for a squashed ROB suffix starting at
     *  @p first_seq. */
    void squashSchedCleanup(u64 first_seq);
    /** Record/drop @p di's memory footprint in the doubleword index. */
    void memIndexRemove(const InflightInst &di);

    // --- configuration ---
    CoreParams cp;
    MechConfig mech;

    // --- substrate ---
    wl::TraceSource &emul; ///< the committed-path record stream.
    TraceBuffer trace;
    mem::MemoryHierarchy hier;
    pred::BranchUnit bru;
    /** Rename-side history replica (see renameHist()); maintained only
     *  when an active engine registered fold geometry. */
    pred::GeoFoldSpec renameFoldSpec;
    pred::GlobalHist renameHist_;
    pred::GeoFolds renameFolds_;
    bool renameHistActive = false;
    pred::StoreSets storeSets;
    equality::Isrb isrbUnit; ///< register-sharing substrate (shared by
                             ///< the move-elim and RSEP engines).

    // --- speculation engines ---
    std::unique_ptr<ZeroIdiomEngine> zeroIdiomEngine;
    std::unique_ptr<MoveElimEngine> moveElimEngine;
    std::unique_ptr<ZeroPredEngine> zeroPredEngine;
    std::unique_ptr<OracleEqEngine> oracleEqEngine;
    std::unique_ptr<RsepEngine> rsepEngine;
    std::unique_ptr<DvtageEngine> dvtageEngine;
    std::vector<SpeculationEngine *> active; ///< registered, in order.
    std::vector<SpeculationEngine *> issueSubscribers; ///< wantsIssueHook().

    // --- core state ---
    RenameState rename;
    FuPool fuPool;
    /**
     * The fetch-to-commit instruction window, one fixed-capacity ring
     * (reserved to the structural bounds in the constructor — zero
     * steady-state allocation, contiguous seqs): [0, nRenamed) is the
     * ROB, [nRenamed, size) the frontend queue. Fetch constructs each
     * instruction in place at the back, rename advances the boundary
     * and renames in place, commit pops the front — an InflightInst
     * (~0.5 KB) is never copied between stages.
     */
    RingBuffer<InflightInst> window;
    size_t nRenamed = 0; ///< ROB/frontend boundary within @c window.
    std::vector<Cycle> pregReady;

    // --- issue scheduler state ---
    WaiterPool waiters;
    std::vector<u32> pregWaiterHead; ///< per-preg chain of WaitPreg insts.
    WakeupHeap wakeHeap;
    ReadyList readyList;
    /** Seqs with a pending validation micro-op, in age order (the
     *  validation pass scans only these, not the whole ROB). */
    std::vector<u64> pendingValidation;
    MemDwordIndex memIdx;
    /** Oracle equality producer index (mech.oracleEq only). */
    std::unique_ptr<ValueEqIndex> valIdx;
    u64 valOrdNext = 0;
    /** Same-cycle wakes raised while the issue scan is running (only
     *  possible with zero-latency configs): they must join *this*
     *  cycle's ascending pass — as the old full-ROB walk would have
     *  reached them — but inserting into the vector being scanned
     *  would corrupt it, so they queue here and the scan merges them
     *  in seq order. Consumers are always younger than the producer
     *  that woke them, so the merge only ever looks forward. */
    std::vector<ReadyEntry> deferredReady;
    size_t deferredPos = 0;
    bool inIssueScan = false;
    std::vector<ReadyEntry> retainedScratch; ///< scan survivors (reused).
    u32 schedCounter = 0; ///< token source (monotone, never reused).
    bool idealVal = false; ///< validation == Ideal (config constant).

    // --- time-series sampling (sampler.hh) ---
    /** Fill @p cum with the cumulative counter snapshot the sampler
     *  deltas against. */
    void captureSample(StatSample &cum) const;
    /** Emit every sample boundary st.cycles has crossed. */
    void sampleTick();
    StatSampler *sampler = nullptr; ///< null = sampling off.

    /** Fig. 1 probe state, allocated only when the probe runs so the
     *  liveValues bookkeeping costs nothing on every other arm. */
    struct Fig1State
    {
        std::vector<u64> pregValue; ///< last committed value per preg.
        std::unordered_map<u64, u64> liveValues; ///< value -> live pregs.
    };
    std::unique_ptr<Fig1State> fig1;

    unsigned iqUsed = 0;
    unsigned lqUsed = 0;
    unsigned sqUsed = 0;

    u64 fetchIdx = 0;       ///< next trace index to fetch.
    Cycle cycle = 0;
    Cycle fetchResumeCycle = 0;
    bool fetchWaitingExec = false; ///< stalled on an exec-redirect branch.
    u64 committed = 0;
    Addr lastFetchLine = ~Addr{0};

    Rng rng;
    PipelineStats st;
};

} // namespace rsep::core

#endif // RSEP_CORE_PIPELINE_HH

/**
 * @file
 * D-VTAGE value-prediction engine (paper Section V / Fig. 4 "VP" arm):
 * a TAGE-indexed differential value predictor. A confident prediction
 * makes the result available at dispatch; the instruction still
 * executes and writes its own register, so a mispredict commits the
 * instruction and squashes everything younger.
 */

#ifndef RSEP_CORE_ENGINES_DVTAGE_ENGINE_HH
#define RSEP_CORE_ENGINES_DVTAGE_ENGINE_HH

#include "core/spec_engine.hh"
#include "pred/dvtage.hh"

namespace rsep::core
{

class DvtageEngine : public SpeculationEngine
{
  public:
    DvtageEngine(const pred::DvtageParams &params, u64 seed);

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    CommitVerdict atCommitHead(InflightInst &di,
                               EngineContext &ctx) override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;
    void atSquashAll(EngineContext &ctx) override;

    pred::Dvtage &predictor() { return vp; }

    EngineSample
    sampleStats() const override
    {
        return {predicted.value(), correct.value(), mispredicts.value()};
    }

    StatCounter predicted;   ///< rename-time confident predictions.
    StatCounter correct;     ///< committed value-predicted instructions.
    StatCounter mispredicts; ///< commit-time value mispredictions.

  private:
    pred::Dvtage vp;
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_DVTAGE_ENGINE_HH

/**
 * @file
 * Zero-prediction engine (paper Section III): a PC-indexed confidence
 * table predicts that an instruction writes 0; the renamer maps its
 * destination to the hardwired zero register. Speculative: a validation
 * micro-op executes the instruction and the verdict is enforced at
 * commit (mispredicts squash from head).
 */

#ifndef RSEP_CORE_ENGINES_ZERO_PRED_ENGINE_HH
#define RSEP_CORE_ENGINES_ZERO_PRED_ENGINE_HH

#include "core/spec_engine.hh"
#include "rsep/zero_pred.hh"

namespace rsep::core
{

class ZeroPredEngine : public SpeculationEngine
{
  public:
    ZeroPredEngine(unsigned entries, ConfidenceKind kind);

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    CommitVerdict atCommitHead(InflightInst &di,
                               EngineContext &ctx) override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;

    equality::ZeroPredictor &predictor() { return zp; }

    EngineSample
    sampleStats() const override
    {
        return {predictions.value(), correct.value(), mispredicts.value()};
    }

    StatCounter predictions; ///< rename-time zero predictions made.
    StatCounter correct;     ///< committed correct zero predictions.
    StatCounter mispredicts; ///< commit-time zero mispredictions.

  private:
    equality::ZeroPredictor zp;
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_ZERO_PRED_ENGINE_HH

/**
 * @file
 * Register-sharing equality prediction engine (the paper's mechanism,
 * Sections III-IV): the IDist distance predictor picks an older
 * in-flight producer expected to hold the same value, the renamer maps
 * the destination onto the producer's physical register (ISRB-tracked
 * sharing), a validation micro-op checks the equality, and commit
 * enforces the verdict. Training happens at commit through the FIFO
 * history (or the idealised DDT) over hashed results in the HRF, with
 * optional one-probe-per-cycle sampling and likely-candidate training
 * through the validation datapath (Section IV-B3).
 */

#ifndef RSEP_CORE_ENGINES_RSEP_ENGINE_HH
#define RSEP_CORE_ENGINES_RSEP_ENGINE_HH

#include <vector>

#include "core/spec_engine.hh"
#include "rsep/config.hh"
#include "rsep/ddt.hh"
#include "rsep/distance_pred.hh"
#include "rsep/fifo_history.hh"
#include "rsep/hash.hh"
#include "rsep/hrf.hh"

namespace rsep::core
{

class RsepEngine : public SpeculationEngine
{
  public:
    RsepEngine(const equality::RsepConfig &rsep_cfg, unsigned total_pregs,
               u64 seed);

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    void atRenamePost(InflightInst &di, bool handled,
                      EngineContext &ctx) override;
    CommitVerdict atCommitHead(InflightInst &di,
                               EngineContext &ctx) override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;
    void atCommitGroupEnd(unsigned producers_this_cycle,
                          EngineContext &ctx) override;
    void atIdleCycles(u64 n, EngineContext &ctx) override;
    void atSquashInst(InflightInst &di, EngineContext &ctx) override;

    equality::DistancePredictor &distancePredictor() { return distPred; }
    equality::FifoHistory &fifoHistory() { return fifo; }
    equality::Ddt &ddt() { return ddtUnit; }
    equality::HashRegisterFile &hrf() { return hrfUnit; }

    EngineSample
    sampleStats() const override
    {
        return {shared.value() + mispredicts.value(), shared.value(),
                mispredicts.value()};
    }

    StatCounter shared;      ///< committed correct register sharings.
    StatCounter mispredicts; ///< commit-time equality mispredictions.
    StatCounter likelyCandidates;
    StatCounter shareFailNoProducer;
    StatCounter shareFailIsrb;
    StatCounter hashFalsePositives;

  private:
    bool tryEqualityPredict(InflightInst &di, EngineContext &ctx);
    void resolveLikelyCandidate(InflightInst &di, EngineContext &ctx);

    equality::RsepConfig cfg;
    equality::DistancePredictor distPred;
    equality::FifoHistory fifo;
    equality::Ddt ddtUnit;
    equality::HashRegisterFile hrfUnit;

    /** Deferred FIFO probes for this commit group (sampling policy). */
    struct PendingProbe
    {
        u16 hash;
        u32 csn;
        u64 result;
        equality::DistLookup distLk;
    };
    std::vector<PendingProbe> samplePool;
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_RSEP_ENGINE_HH

#include "core/engines/move_elim_engine.hh"

#include "core/pipeline.hh"

namespace rsep::core
{

MoveElimEngine::MoveElimEngine() : SpeculationEngine("move-elim")
{
    registerStat("eliminated", &eliminated);
    registerStat("shareFailures", &shareFailures);
}

bool
MoveElimEngine::mayElideExecution(const isa::StaticInst &si) const
{
    return si.isEliminableMove();
}

bool
MoveElimEngine::atRename(InflightInst &di, bool handled, EngineContext &ctx)
{
    if (handled || !di.si->isEliminableMove())
        return false;
    PhysReg src = di.srcPregs[0];
    if (src != zeroPreg && !ctx.pipe.isrb().share(src)) {
        ++shareFailures;
        return false;
    }
    di.action = RenameAction::MoveElim;
    di.destPreg = src;
    di.needsExec = false;
    di.completeCycle = ctx.cycle;
    return true;
}

void
MoveElimEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::MoveElim)
        return;
    ++ctx.st.moveElim;
    ++eliminated;
}

void
MoveElimEngine::atSquashInst(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::MoveElim)
        return;
    if (di.destPreg != zeroPreg &&
        ctx.pipe.isrb().squashSharer(di.destPreg) ==
            equality::IsrbRelease::Freed)
        ctx.pipe.releaseMapping(di.destPreg);
}

} // namespace rsep::core

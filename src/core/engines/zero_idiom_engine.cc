#include "core/engines/zero_idiom_engine.hh"

#include "core/pipeline.hh"

namespace rsep::core
{

ZeroIdiomEngine::ZeroIdiomEngine() : SpeculationEngine("zero-idiom")
{
    registerStat("eliminated", &eliminated);
}

bool
ZeroIdiomEngine::mayElideExecution(const isa::StaticInst &si) const
{
    return si.isZeroIdiom();
}

bool
ZeroIdiomEngine::atRename(InflightInst &di, bool handled, EngineContext &ctx)
{
    if (handled || !di.si->isZeroIdiom())
        return false;
    di.action = RenameAction::ZeroIdiom;
    di.destPreg = zeroPreg;
    di.needsExec = false;
    di.completeCycle = ctx.cycle;
    return true;
}

void
ZeroIdiomEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::ZeroIdiom)
        return;
    ++ctx.st.zeroIdiomElim;
    ++eliminated;
}

} // namespace rsep::core

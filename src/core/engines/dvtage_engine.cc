#include "core/engines/dvtage_engine.hh"

#include <cassert>

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hh"

namespace rsep::core
{

DvtageEngine::DvtageEngine(const pred::DvtageParams &params, u64 seed)
    : SpeculationEngine("dvtage"), vp(params, seed)
{
    registerStat("predicted", &predicted);
    registerStat("correct", &correct);
    registerStat("mispredicts", &mispredicts);
}

bool
DvtageEngine::atRename(InflightInst &di, bool handled, EngineContext &ctx)
{
    if (!di.producesReg || di.si->isZeroIdiom())
        return false;
    // Folded-history fast path (see Pipeline::renameHist()).
    assert(ctx.pipe.renameHist().dir == di.histFetch.dir &&
           ctx.pipe.renameHist().path == di.histFetch.path);
    di.vpLk = vp.lookup(di.pc, di.histFetch, ctx.pipe.renameFolds());
    if (handled || !di.vpLk.confident)
        return false;
    di.action = RenameAction::ValuePredicted;
    vp.notifySpeculated(di.vpLk);
    ++predicted;
    return true;
}

CommitVerdict
DvtageEngine::atCommitHead(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::ValuePredicted ||
        di.vpLk.predicted == di.rec.result)
        return CommitVerdict::Proceed;
    // VP commits the instruction (its own execution wrote the correct
    // result to its register) and squashes everything younger,
    // including not-yet-renamed fetches.
    ++ctx.st.vpMispredicts;
    ++mispredicts;
    ++ctx.st.commitSquashes;
    if (std::getenv("RSEP_VP_DEBUG"))
        std::fprintf(stderr, "vp-miss pc=%llx pred=%llx actual=%llx\n",
                     (unsigned long long)di.pc,
                     (unsigned long long)di.vpLk.predicted,
                     (unsigned long long)di.rec.result);
    return CommitVerdict::CommitThenSquash;
}

void
DvtageEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    if (di.action == RenameAction::ValuePredicted) {
        ++(di.isLoad() ? ctx.st.valuePredLoad : ctx.st.valuePredOther);
        ++ctx.st.vpCorrect;
        ++correct;
    }
    if (di.vpLk.valid)
        vp.commit(di.vpLk, di.rec.result);
}

void
DvtageEngine::atSquashAll(EngineContext &)
{
    vp.squash();
}

} // namespace rsep::core

#include "core/engines/zero_pred_engine.hh"

#include "core/pipeline.hh"

namespace rsep::core
{

ZeroPredEngine::ZeroPredEngine(unsigned entries, ConfidenceKind kind)
    : SpeculationEngine("zero-pred"), zp(entries, kind)
{
    registerStat("predictions", &predictions);
    registerStat("correct", &correct);
    registerStat("mispredicts", &mispredicts);
}

bool
ZeroPredEngine::atRename(InflightInst &di, bool handled, EngineContext &)
{
    // Lookups happen only for instructions no earlier engine claimed
    // (eliminated instructions never reach the zero predictor).
    if (!di.producesReg || handled)
        return false;
    di.zeroPredLookedUp = true;
    if (!zp.predict(di.pc))
        return false;
    di.action = RenameAction::ZeroPredicted;
    di.destPreg = zeroPreg;
    di.needsValidation = true;
    ++zp.predictions;
    ++predictions;
    return true;
}

CommitVerdict
ZeroPredEngine::atCommitHead(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::ZeroPredicted || di.rec.result == 0)
        return CommitVerdict::Proceed;
    ++ctx.st.zeroMispredicts;
    ++zp.mispredictions;
    ++mispredicts;
    ++ctx.st.commitSquashes;
    zp.update(di.pc, false, &ctx.rng);
    return CommitVerdict::SquashRefetch;
}

void
ZeroPredEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    if (di.action == RenameAction::ZeroPredicted) {
        ++(di.isLoad() ? ctx.st.zeroPredLoad : ctx.st.zeroPredOther);
        ++ctx.st.zeroCorrect;
        ++correct;
    } else if (di.zeroPredLookedUp) {
        zp.update(di.pc, di.rec.result == 0, &ctx.rng);
    }
}

} // namespace rsep::core

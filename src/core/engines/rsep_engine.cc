#include "core/engines/rsep_engine.hh"

#include <cassert>

#include "core/pipeline.hh"

namespace rsep::core
{

RsepEngine::RsepEngine(const equality::RsepConfig &rsep_cfg,
                       unsigned total_pregs, u64 seed)
    : SpeculationEngine("rsep"), cfg(rsep_cfg),
      distPred(cfg.distParams(), seed),
      fifo(cfg.historyDepth, cfg.implicitHistory), ddtUnit(cfg.ddtEntries),
      hrfUnit(total_pregs, cfg.hashBits)
{
    registerStat("shared", &shared);
    registerStat("mispredicts", &mispredicts);
    registerStat("likelyCandidates", &likelyCandidates);
    registerStat("shareFailNoProducer", &shareFailNoProducer);
    registerStat("shareFailIsrb", &shareFailIsrb);
    registerStat("hashFalsePositives", &hashFalsePositives);
}

// ---------------------------------------------------------------- rename

bool
RsepEngine::tryEqualityPredict(InflightInst &di, EngineContext &ctx)
{
    if (!di.distLk.usePred)
        return false;
    u32 dist = di.distLk.distance;
    if (dist == 0 || dist > di.traceIdx)
        return false;
    InflightInst *prod = ctx.pipe.findBySeq(di.traceIdx - dist);
    if (!prod || !prod->producesReg || prod->destPreg == invalidPhysReg) {
        ++ctx.st.shareFailNoProducer;
        ++shareFailNoProducer;
        return false;
    }
    PhysReg preg = prod->destPreg;
    if (preg == zeroPreg) {
        // Sharing with the hardwired zero register needs no ISRB entry
        // (Section III: "register sharing would be trivial").
        di.action = RenameAction::RsepShared;
        di.destPreg = zeroPreg;
        di.needsValidation = true;
        di.shareProducerSeq = prod->traceIdx;
        di.shareProducerValue = 0;
        return true;
    }
    if (!ctx.pipe.isrb().share(preg)) {
        ++ctx.st.shareFailIsrb;
        ++shareFailIsrb;
        return false;
    }
    di.action = RenameAction::RsepShared;
    di.destPreg = preg;
    di.shareProducerSeq = prod->traceIdx;
    di.shareProducerValue = prod->rec.result;
    di.needsValidation = true;
    return true;
}

void
RsepEngine::resolveLikelyCandidate(InflightInst &di, EngineContext &ctx)
{
    u32 dist = di.distLk.distance;
    if (dist == 0 || dist > di.traceIdx)
        return;
    InflightInst *prod = ctx.pipe.findBySeq(di.traceIdx - dist);
    if (!prod || !prod->producesReg)
        return;
    di.likelyCandidate = true;
    di.candidateHasPartner = true;
    di.candidatePartnerPreg = prod->destPreg;
    di.candidateProducerSeq = prod->traceIdx;
    di.candidatePartnerValue = prod->rec.result;
    di.needsValidation = true;
    ++ctx.st.likelyCandidates;
    ++likelyCandidates;
}

bool
RsepEngine::atRename(InflightInst &di, bool handled, EngineContext &ctx)
{
    const isa::StaticInst &si = *di.si;
    // The lookup happens whenever the instruction could have been a
    // candidate, even if an earlier engine claimed the rename (the
    // predictor sees the fetch-time history either way). Eliminable
    // moves and zero idioms are never candidates.
    if (!di.producesReg ||
        (ctx.mech.moveElim && si.isEliminableMove()) || si.isZeroIdiom())
        return false;
    // The pipeline's rename-side history replica equals di.histFetch
    // for every renaming instruction; its incrementally folded
    // registers make this lookup O(components) instead of O(history).
    assert(ctx.pipe.renameHist().dir == di.histFetch.dir &&
           ctx.pipe.renameHist().path == di.histFetch.path);
    di.distLk =
        distPred.lookup(di.pc, di.histFetch, ctx.pipe.renameFolds());
    if (handled)
        return false;
    return tryEqualityPredict(di, ctx);
}

void
RsepEngine::atRenamePost(InflightInst &di, bool handled, EngineContext &ctx)
{
    // Likely-candidate training through the validation datapath
    // (sampling mode, Section IV-B3a): only for instructions no engine
    // claimed, when confidence is building but below the use threshold.
    if (handled || di.likelyCandidate)
        return;
    if (!cfg.sampling || !di.distLk.valid || di.distLk.usePred ||
        di.distLk.confidence < cfg.startTrainThreshold)
        return;
    resolveLikelyCandidate(di, ctx);
}

// ---------------------------------------------------------------- commit

CommitVerdict
RsepEngine::atCommitHead(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::RsepShared ||
        di.rec.result == di.shareProducerValue)
        return CommitVerdict::Proceed;
    ++ctx.st.rsepMispredicts;
    ++mispredicts;
    ++ctx.st.commitSquashes;
    distPred.trainIncorrect(di.distLk);
    return CommitVerdict::SquashRefetch;
}

void
RsepEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    // Coverage accounting (Fig. 5).
    if (di.action == RenameAction::RsepShared) {
        ++(di.isLoad() ? ctx.st.distPredLoad : ctx.st.distPredOther);
        ++ctx.st.rsepCorrect;
        ++shared;
        if (di.vpLk.valid && di.vpLk.confident)
            ++ctx.st.rsepVpOverlap;
    }

    if (!di.producesReg)
        return;

    u32 csn = static_cast<u32>(ctx.committed & equality::csnMask);
    u16 hash = equality::foldHash(di.rec.result, cfg.hashBits);

    bool eliminated = di.action == RenameAction::ZeroIdiom ||
                      di.action == RenameAction::MoveElim;

    // Predicted instructions and likely candidates train through the
    // validation path and do not probe the history (IV-B3b).
    if (di.action == RenameAction::RsepShared) {
        if (di.rec.result == di.shareProducerValue)
            distPred.train(di.distLk, di.distLk.distance);
        // (mispredicting instances never reach here; see atCommitHead).
    } else if (di.likelyCandidate && di.candidateHasPartner) {
        if (di.rec.result == di.candidatePartnerValue)
            distPred.train(di.distLk, di.distLk.distance);
        else
            distPred.trainIncorrect(di.distLk);
    }

    // Push every committed register producer whose value lives in the
    // PRF (eliminated results live in shared/zero registers already).
    if (!eliminated) {
        hrfUnit.write(di.destPreg == invalidPhysReg ? zeroPreg : di.destPreg,
                      hash);
        if (cfg.useDdt) {
            if (auto m = ddtUnit.accessAndUpdate(hash, csn, di.traceIdx)) {
                if (m->producerValue != di.rec.result) {
                    ++ctx.st.hashFalsePositives;
                    ++hashFalsePositives;
                }
                if (!di.likelyCandidate &&
                    di.action != RenameAction::RsepShared && di.distLk.valid)
                    distPred.train(di.distLk, m->distance);
            }
        } else {
            fifo.push(hash, csn, di.traceIdx, true, di.rec.result);
            // Plain producers probe the FIFO after the whole commit
            // group pushed (so within-group pairs are visible); defer.
            // A commit that a squash immediately follows (VP
            // mispredict) still pushes its value but never probes —
            // its commit group ends with it.
            if (!ctx.squashFollowsCommit && di.distLk.valid &&
                di.action != RenameAction::RsepShared &&
                !di.likelyCandidate)
                samplePool.push_back(
                    PendingProbe{hash, csn, di.rec.result, di.distLk});
        }
    }
}

void
RsepEngine::atCommitGroupEnd(unsigned producers_this_cycle,
                             EngineContext &ctx)
{
    ctx.st.commitGroupProducers.sample(producers_this_cycle);

    // Execute the deferred probes: all of them (full training) or one
    // randomly sampled per cycle (IV-B3). Probing after the group's
    // pushes matches the paper's "compared with each other"
    // requirement; the self-entry is skipped by the zero-distance
    // guard.
    if (samplePool.empty())
        return;
    size_t lo = 0, hi = samplePool.size();
    if (cfg.sampling) {
        lo = static_cast<size_t>(ctx.rng.below(samplePool.size()));
        hi = lo + 1;
    }
    for (size_t i = lo; i < hi; ++i) {
        PendingProbe &probe = samplePool[i];
        std::optional<u32> pdist;
        if (cfg.propagatePredictedDistance && probe.distLk.valid &&
            probe.distLk.distance != 0)
            pdist = probe.distLk.distance;
        if (auto m = fifo.match(probe.hash, probe.csn, pdist)) {
            if (m->producerValue != probe.result) {
                ++ctx.st.hashFalsePositives;
                ++hashFalsePositives;
            }
            distPred.train(probe.distLk, m->distance);
        } else {
            distPred.train(probe.distLk, 0);
        }
    }
    samplePool.clear();
}

void
RsepEngine::atIdleCycles(u64 n, EngineContext &ctx)
{
    // An idle cycle is an empty commit group: zero producers sampled,
    // and the probe pool is necessarily empty (nothing committed since
    // atCommitGroupEnd last drained it), so no rng draw either. This is
    // bit-identical to n empty-group atCommitGroupEnd calls.
    ctx.st.commitGroupProducers.sample(0, n);
}

// ---------------------------------------------------------------- squash

void
RsepEngine::atSquashInst(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::RsepShared)
        return;
    if (di.destPreg != zeroPreg &&
        ctx.pipe.isrb().squashSharer(di.destPreg) ==
            equality::IsrbRelease::Freed)
        ctx.pipe.releaseMapping(di.destPreg);
}

} // namespace rsep::core

#include "core/engines/oracle_eq_engine.hh"

#include <cassert>

#include "core/pipeline.hh"

namespace rsep::core
{

OracleEqEngine::OracleEqEngine(unsigned lookback)
    : SpeculationEngine("oracle-eq"), window(lookback)
{
    registerStat("shared", &shared);
    registerStat("sharedWithZero", &sharedWithZero);
    registerStat("shareFailIsrb", &shareFailIsrb);
    registerStat("noPartner", &noPartner);
}

bool
OracleEqEngine::atRename(InflightInst &di, bool handled, EngineContext &ctx)
{
    // Zero idioms and (when move elimination runs) eliminable moves
    // are never equality candidates — same exclusions as the real
    // engine, so coverage numbers stay comparable.
    if (handled || !di.producesReg || di.si->isZeroIdiom() ||
        (ctx.mech.moveElim && di.si->isEliminableMove()))
        return false;

    // Find the youngest in-window equal-valued producer — the one the
    // paper's distance predictor would learn. The lookback is counted
    // in *producers*, matching the unit of the FIFO history it stands
    // in for (historyDepth committed producers).
    //
    // The pipeline maintains a value -> in-ROB-producer index
    // (value_index.hh) so this is a hash probe over the handful of
    // equal-valued producers instead of a youngest-first walk of the
    // whole ROB. Producer ordinals are dense, so "at most `window`
    // producers scanned before giving up" is the ordinal floor below.
    if (const ValueEqIndex *vidx = ctx.pipe.valueEqIndex()) {
        const u64 next_ord = ctx.pipe.valueEqNextOrd();
        const u64 floor_ord =
            (window && next_ord > window) ? next_ord - window : 0;
        if (const auto *prods = vidx->find(di.rec.result)) {
            for (size_t i = prods->size(); i-- > 0;) {
                const ValueEqIndex::Prod &pe = (*prods)[i];
                if (pe.ord < floor_ord)
                    break; // older than the producer-count window.
                InflightInst *prod = ctx.pipe.findBySeq(pe.seq);
                assert(prod); // indexed producers are in the ROB.
                PhysReg preg = prod->destPreg;
                if (preg != zeroPreg && !ctx.pipe.isrb().share(preg)) {
                    // The substrate, not the oracle, is the limit
                    // here; keep scanning for an older copy of the
                    // value whose ISRB entry still has room.
                    ++shareFailIsrb;
                    ++ctx.st.shareFailIsrb;
                    continue;
                }
                di.action = RenameAction::OracleShared;
                di.destPreg = preg;
                di.shareProducerSeq = prod->traceIdx;
                di.shareProducerValue = prod->rec.result;
                // Perfect knowledge: no validation micro-op, no
                // misprediction path. The instruction still executes
                // (the oracle removes the *check*, not the data-path
                // work — matching the ideal-validation RSEP arms).
                di.needsValidation = false;
                return true;
            }
        }
        ++noPartner;
        ++ctx.st.shareFailNoProducer;
        return false;
    }

    // Reference walk (no index maintained in this configuration).
    u64 producers_seen = 0;
    for (u64 s = di.traceIdx; s-- > 0;) {
        InflightInst *prod = ctx.pipe.findBySeq(s);
        if (!prod)
            break; // left the ROB window.
        if (!prod->producesReg || prod->destPreg == invalidPhysReg)
            continue;
        if (window && ++producers_seen > window)
            break;
        if (prod->rec.result != di.rec.result)
            continue;

        PhysReg preg = prod->destPreg;
        if (preg != zeroPreg && !ctx.pipe.isrb().share(preg)) {
            ++shareFailIsrb;
            ++ctx.st.shareFailIsrb;
            continue;
        }
        di.action = RenameAction::OracleShared;
        di.destPreg = preg;
        di.shareProducerSeq = prod->traceIdx;
        di.shareProducerValue = prod->rec.result;
        di.needsValidation = false;
        return true;
    }
    ++noPartner;
    ++ctx.st.shareFailNoProducer;
    return false;
}

void
OracleEqEngine::atCommit(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::OracleShared)
        return;
    // Book coverage into the same Fig. 5 counters as the real engine
    // so the coverage reports work unchanged for the limit arm.
    ++(di.isLoad() ? ctx.st.distPredLoad : ctx.st.distPredOther);
    ++ctx.st.rsepCorrect;
    ++shared;
    if (di.destPreg == zeroPreg)
        ++sharedWithZero;
}

void
OracleEqEngine::atSquashInst(InflightInst &di, EngineContext &ctx)
{
    if (di.action != RenameAction::OracleShared)
        return;
    if (di.destPreg != zeroPreg &&
        ctx.pipe.isrb().squashSharer(di.destPreg) ==
            equality::IsrbRelease::Freed)
        ctx.pipe.releaseMapping(di.destPreg);
}

} // namespace rsep::core

/**
 * @file
 * Move-elimination engine (paper Section IV-H1): an eliminable
 * register-register move renames its destination onto its source
 * physical register and never executes. Non-speculative; it reuses the
 * ISRB sharing substrate owned by the pipeline, so a squash must undo
 * the sharer registration.
 */

#ifndef RSEP_CORE_ENGINES_MOVE_ELIM_ENGINE_HH
#define RSEP_CORE_ENGINES_MOVE_ELIM_ENGINE_HH

#include "core/spec_engine.hh"

namespace rsep::core
{

class MoveElimEngine : public SpeculationEngine
{
  public:
    MoveElimEngine();

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    bool mayElideExecution(const isa::StaticInst &si) const override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;
    void atSquashInst(InflightInst &di, EngineContext &ctx) override;

    EngineSample
    sampleStats() const override
    {
        return {eliminated.value(), 0, 0};
    }

    StatCounter eliminated;    ///< committed move eliminations.
    StatCounter shareFailures; ///< moves kept because the ISRB refused.
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_MOVE_ELIM_ENGINE_HH

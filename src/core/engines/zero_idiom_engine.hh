/**
 * @file
 * Zero-idiom elimination engine (baseline feature, Table I): an
 * instruction recognised as a zero idiom (xor r,r,r ...) renames its
 * destination to the hardwired zero register and never executes.
 * Non-speculative: no validation, no recovery.
 */

#ifndef RSEP_CORE_ENGINES_ZERO_IDIOM_ENGINE_HH
#define RSEP_CORE_ENGINES_ZERO_IDIOM_ENGINE_HH

#include "core/spec_engine.hh"

namespace rsep::core
{

class ZeroIdiomEngine : public SpeculationEngine
{
  public:
    ZeroIdiomEngine();

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    bool mayElideExecution(const isa::StaticInst &si) const override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;

    EngineSample
    sampleStats() const override
    {
        return {eliminated.value(), 0, 0};
    }

    StatCounter eliminated; ///< committed zero-idiom eliminations.
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_ZERO_IDIOM_ENGINE_HH

/**
 * @file
 * Oracle equality engine: the limit study for register-sharing
 * equality prediction.
 *
 * At rename it scans the in-flight window (youngest-first, bounded by
 * the ROB and an optional lookback window) for an older producer whose
 * architectural result equals this instruction's, and shares that
 * producer's physical register through the same ISRB substrate the
 * real RSEP engine uses. Because the trace-driven model knows every
 * architectural result at rename, the "prediction" is perfect: no
 * validation micro-op is needed and no equality misprediction can
 * occur — what remains is the pure headroom of register sharing
 * (earlier wakeups, fewer allocations), bounded only by the ISRB
 * capacity. Registered from MechConfig::oracleEq; the `rsep-oracle`
 * scenario is the packaged arm.
 */

#ifndef RSEP_CORE_ENGINES_ORACLE_EQ_ENGINE_HH
#define RSEP_CORE_ENGINES_ORACLE_EQ_ENGINE_HH

#include "core/spec_engine.hh"

namespace rsep::core
{

class OracleEqEngine : public SpeculationEngine
{
  public:
    /** @p lookback bounds the scan to that many older in-flight
     *  producers (the FIFO history's unit); 0 means "the whole ROB"
     *  (the scan always stops at the ROB head either way). */
    explicit OracleEqEngine(unsigned lookback = 0);

    bool atRename(InflightInst &di, bool handled,
                  EngineContext &ctx) override;
    void atCommit(InflightInst &di, EngineContext &ctx) override;
    void atSquashInst(InflightInst &di, EngineContext &ctx) override;

    /** The oracle never speculates wrong: every sharing is correct. */
    EngineSample
    sampleStats() const override
    {
        return {shared.value(), shared.value(), 0};
    }

    StatCounter shared;          ///< committed oracle sharings.
    StatCounter sharedWithZero;  ///< ... of which via the zero register.
    StatCounter shareFailIsrb;   ///< partner found, ISRB refused.
    StatCounter noPartner;       ///< no equal value in the window.

  private:
    unsigned window; ///< 0 = ROB-bounded only.
};

} // namespace rsep::core

#endif // RSEP_CORE_ENGINES_ORACLE_EQ_ENGINE_HH

/**
 * @file
 * Time-series stat sampling: periodic snapshots of the live pipeline
 * counters over a measurement run (the gator/Streamline model — phase
 * behaviour over time, not just end-of-run totals).
 *
 * A StatSample is one fixed-schema row: the sample cycle, instantaneous
 * occupancies, and *deltas* of the commit/squash/predictor counters
 * since the previous sample. The schema is identical for every
 * mechanism arm — engines report through the uniform
 * SpeculationEngine::sampleStats() triple, with one fixed slot per
 * engine (zeros when the engine is not registered) — so sample files
 * from different arms merge and plot against each other column for
 * column.
 *
 * Every field is a u64 and the schema is enumerated exactly once, by
 * visitSampleFields(); the binary `.rts` encoding, the CSV columns and
 * the delta bookkeeping all derive from that enumeration (the same
 * introspection discipline as visitStats/visitFields). Derived rates
 * (window IPC, hit rates) are computed by readers from the integer
 * fields, so the files contain no floating point and stay bit-stable.
 *
 * Determinism: samples fire on the deterministic st.cycles axis of the
 * measurement run, and capture only architectural counters — never
 * wall-clock, cache-temperature or scheduling-dependent state — so a
 * cell's sample series is byte-identical at any thread count, steal
 * granularity or shard split (tests/test_samples.cc pins this).
 */

#ifndef RSEP_CORE_SAMPLER_HH
#define RSEP_CORE_SAMPLER_HH

#include <vector>

#include "common/types.hh"

namespace rsep::core
{

/** Sample-schema version, echoed in every `.rts` header; bump on any
 *  field addition/removal/reorder. */
constexpr unsigned sampleSchemaVersion = 1;

/** Fixed engine-slot order of the per-engine sample fields: the
 *  pipeline's construction order, independent of which engines a
 *  given arm registers. */
constexpr const char *sampleEngineSlots[] = {
    "zero_idiom", "move_elim", "zero_pred", "oracle_eq", "rsep", "dvtage",
};
constexpr size_t numSampleEngineSlots =
    sizeof(sampleEngineSlots) / sizeof(sampleEngineSlots[0]);

/** How a sample field relates to the previous sample. */
enum class SampleFieldKind : u8 {
    Point, ///< instantaneous value at the sample cycle.
    Delta, ///< increase since the previous sample row.
};

/** One time-series row (or, inside the sampler, a cumulative
 *  snapshot the next row will delta against). */
struct StatSample
{
    u64 cycle = 0; ///< measurement cycle of this sample (point).

    // Commit-stream deltas.
    u64 committedInsts = 0;
    u64 committedBranches = 0;
    u64 committedLoads = 0;
    u64 committedStores = 0;
    u64 branchMispredicts = 0; ///< cond + indirect + return redirects.
    u64 commitSquashes = 0;
    u64 memOrderSquashes = 0;

    // Instantaneous occupancies (point).
    u64 robOcc = 0;      ///< renamed, not yet committed.
    u64 frontendOcc = 0; ///< fetched, not yet renamed.

    // Per-engine coverage/correct/mispredict deltas, one fixed slot
    // per engine in sampleEngineSlots order.
    u64 engCoverage[numSampleEngineSlots] = {};
    u64 engCorrect[numSampleEngineSlots] = {};
    u64 engMispredict[numSampleEngineSlots] = {};
};

/**
 * Field-introspection hook: visit every StatSample field as
 * `v(name, u64-ref, kind)` in schema order. The `.rts` payload
 * encoding, the CSV header and the delta subtraction all walk this one
 * enumeration, so they cannot drift from each other.
 */
template <class V>
void
visitSampleFields(StatSample &s, V &&v)
{
    v("cycle", s.cycle, SampleFieldKind::Point);
    v("committed_insts", s.committedInsts, SampleFieldKind::Delta);
    v("committed_branches", s.committedBranches, SampleFieldKind::Delta);
    v("committed_loads", s.committedLoads, SampleFieldKind::Delta);
    v("committed_stores", s.committedStores, SampleFieldKind::Delta);
    v("branch_mispredicts", s.branchMispredicts, SampleFieldKind::Delta);
    v("commit_squashes", s.commitSquashes, SampleFieldKind::Delta);
    v("mem_order_squashes", s.memOrderSquashes, SampleFieldKind::Delta);
    v("rob_occ", s.robOcc, SampleFieldKind::Point);
    v("frontend_occ", s.frontendOcc, SampleFieldKind::Point);
    // Suffixed per-engine slots: <engine>_coverage/_correct/_mispredict.
    static const std::vector<std::string> engNames = [] {
        std::vector<std::string> names;
        for (const char *slot : sampleEngineSlots) {
            names.push_back(std::string(slot) + "_coverage");
            names.push_back(std::string(slot) + "_correct");
            names.push_back(std::string(slot) + "_mispredict");
        }
        return names;
    }();
    for (size_t e = 0; e < numSampleEngineSlots; ++e) {
        v(engNames[3 * e].c_str(), s.engCoverage[e],
          SampleFieldKind::Delta);
        v(engNames[3 * e + 1].c_str(), s.engCorrect[e],
          SampleFieldKind::Delta);
        v(engNames[3 * e + 2].c_str(), s.engMispredict[e],
          SampleFieldKind::Delta);
    }
}

/** Number of fields visitSampleFields enumerates. */
inline size_t
sampleFieldCount()
{
    static const size_t n = [] {
        StatSample s;
        size_t count = 0;
        visitSampleFields(s, [&](const char *, u64 &, SampleFieldKind) {
            ++count;
        });
        return count;
    }();
    return n;
}

/** Canonical comma-joined field-name list (the `.rts` schema echo). */
inline const std::string &
sampleFieldNames()
{
    static const std::string names = [] {
        StatSample s;
        std::string out;
        visitSampleFields(s, [&](const char *name, u64 &,
                                 SampleFieldKind) {
            if (!out.empty())
                out += ',';
            out += name;
        });
        return out;
    }();
    return names;
}

/**
 * The per-run sample accumulator the pipeline drives. The pipeline
 * captures *cumulative* snapshots (cheap: plain counter reads); the
 * sampler turns them into delta rows against the previous snapshot and
 * keeps the ring of finished rows for the export layer.
 */
class StatSampler
{
  public:
    explicit StatSampler(u64 period_cycles) : per(period_cycles) {}

    u64 period() const { return per; }

    /** Measurement cycle the next boundary row is due at. */
    u64 nextDue() const { return due; }

    const std::vector<StatSample> &rows() const { return out; }

    /** Begin a measurement run: @p cum is the cumulative snapshot at
     *  cycle 0 (counters the run's resetStats did not zero — e.g. the
     *  branch unit's — delta correctly from here). */
    void
    start(const StatSample &cum)
    {
        prev = cum;
        out.clear();
        due = per;
        lastCycle = 0;
    }

    /** Emit the boundary row due at nextDue() from cumulative snapshot
     *  @p cum. Boundaries crossed inside an idle fast-forward emit
     *  all-zero-delta rows from the same snapshot, identical to what
     *  single-stepping those cycles would have produced. */
    void
    record(const StatSample &cum)
    {
        emit(cum, due);
        due += per;
    }

    /** End of measurement: emit the final partial row (so the delta
     *  columns sum exactly to the run's end-of-run totals), unless the
     *  run ended exactly on an emitted boundary. */
    void
    finish(const StatSample &cum, u64 at_cycle)
    {
        if (at_cycle > lastCycle || out.empty())
            emit(cum, at_cycle);
    }

  private:
    void
    emit(const StatSample &cum, u64 at_cycle)
    {
        StatSample row = cum;
        // Subtract the previous snapshot from the delta fields; the
        // two visits see the same schema order by construction.
        u64 prev_vals[64];
        size_t i = 0;
        visitSampleFields(prev, [&](const char *, u64 &f,
                                    SampleFieldKind) {
            prev_vals[i++] = f;
        });
        i = 0;
        visitSampleFields(row, [&](const char *, u64 &f,
                                   SampleFieldKind kind) {
            if (kind == SampleFieldKind::Delta)
                f -= prev_vals[i];
            ++i;
        });
        row.cycle = at_cycle;
        prev = cum;
        lastCycle = at_cycle;
        out.push_back(row);
    }

    u64 per;
    u64 due = 0;
    u64 lastCycle = 0;
    StatSample prev{};
    std::vector<StatSample> out;
};

} // namespace rsep::core

#endif // RSEP_CORE_SAMPLER_HH

/**
 * @file
 * The pluggable speculation-engine interface.
 *
 * Every speculation/elimination mechanism (zero-idiom elimination, move
 * elimination, zero prediction, RSEP equality prediction, D-VTAGE value
 * prediction) is a self-contained SpeculationEngine. The pipeline owns
 * only stage orchestration (fetch/rename/issue/commit scheduling, the
 * ROB, the rename map and free lists, the ISRB sharing substrate) and
 * dispatches to its registered engines at fixed hook points:
 *
 *  - rename:  atRename (priority chain over engines in registration
 *             order; the first engine to claim the destination rename
 *             wins) and atRenamePost (after all engines ran, for
 *             training-path decisions that depend on the final verdict,
 *             e.g. RSEP likely-candidate sampling).
 *  - execute: atIssue, when the instruction wins an FU and begins
 *             execution.
 *  - commit:  atCommitHead (speculation verdict for the head-of-ROB
 *             instruction), atCommit (training/coverage accounting for
 *             a committing instruction) and atCommitGroupEnd (once per
 *             commit cycle, after the whole commit group retired).
 *  - squash:  atSquashInst (undo rename-time side effects of one
 *             squashed instruction) and atSquashAll (pipeline-wide
 *             squash notification).
 *
 * Engines are constructed unconditionally (so their structures can be
 * inspected through the pipeline accessors in any configuration) but
 * only the ones enabled in MechConfig are *registered*, i.e. receive
 * hook calls. See DESIGN.md "Speculation engines".
 */

#ifndef RSEP_CORE_SPEC_ENGINE_HH
#define RSEP_CORE_SPEC_ENGINE_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/dyninst.hh"

namespace rsep::core
{

class Pipeline;
struct MechConfig;
struct PipelineStats;

/** Verdict of a head-of-ROB speculation check at commit. */
enum class CommitVerdict : u8 {
    Proceed,          ///< not this engine's instruction, or correct.
    SquashRefetch,    ///< mispredicted: squash from head and re-fetch.
    CommitThenSquash, ///< commit this instruction, squash everything
                      ///< younger (the D-VTAGE recovery policy).
};

/**
 * Per-hook view of the pipeline handed to engines. @c cycle and
 * @c committed are snapshots taken when the hook fires; @c committed is
 * the architectural commit count *before* the current instruction
 * retires (the CSN source used by the equality structures).
 */
struct EngineContext
{
    Pipeline &pipe;
    PipelineStats &st; ///< shared paper-facing aggregate statistics.
    const MechConfig &mech;
    Rng &rng; ///< the pipeline's shared RNG (training randomisation).
    Cycle cycle;
    u64 committed;
    /** This atCommit is a CommitThenSquash verdict being honoured: the
     *  instruction retires but everything younger (including the rest
     *  of the commit group) is about to squash. */
    bool squashFollowsCommit = false;
};

/**
 * One engine's contribution to a time-series StatSample (sampler.hh):
 * cumulative counts since the engine's last resetStats(). The sampler
 * keeps the previous snapshot per engine and emits deltas, so an
 * engine only has to report totals — no per-engine sampling state.
 */
struct EngineSample
{
    u64 coverage = 0;   ///< instructions the mechanism acted on.
    u64 correct = 0;    ///< ... of which verified correct at commit.
    u64 mispredict = 0; ///< ... of which squashed at commit.
};

/** Base class of all speculation engines. */
class SpeculationEngine
{
  public:
    explicit SpeculationEngine(std::string engine_name)
        : nm(std::move(engine_name))
    {
    }
    virtual ~SpeculationEngine() = default;

    SpeculationEngine(const SpeculationEngine &) = delete;
    SpeculationEngine &operator=(const SpeculationEngine &) = delete;

    const std::string &name() const { return nm; }

    // ------------------------------------------------------- rename hooks
    /**
     * Rename-stage hook, called for every renamed instruction in
     * engine-registration order. @p handled is true when an earlier
     * engine already claimed the destination rename; engines may still
     * perform predictor lookups in that case (lookups happen under the
     * fetch-time history regardless of the final rename verdict).
     * @return true when this engine claimed the destination rename.
     */
    virtual bool
    atRename(InflightInst &di, bool handled, EngineContext &ctx)
    {
        (void)di, (void)handled, (void)ctx;
        return false;
    }

    /** Late rename hook, after every engine's atRename ran. */
    virtual void
    atRenamePost(InflightInst &di, bool handled, EngineContext &ctx)
    {
        (void)di, (void)handled, (void)ctx;
    }

    /**
     * True when this engine may elide execution of @p si at rename
     * (used by the rename-stage IQ gating, which is conservative: it
     * does not know yet whether elision will actually succeed).
     */
    virtual bool
    mayElideExecution(const isa::StaticInst &si) const
    {
        (void)si;
        return false;
    }

    // ------------------------------------------------------ execute hooks
    /**
     * True when the engine wants atIssue dispatches. Issue is the
     * simulator's hottest loop, so the pipeline only pays for the hook
     * for engines that opt in.
     */
    virtual bool wantsIssueHook() const { return false; }

    /** The instruction won an FU this cycle and begins execution
     *  (dispatched only to engines with wantsIssueHook()). */
    virtual void
    atIssue(InflightInst &di, EngineContext &ctx)
    {
        (void)di, (void)ctx;
    }

    // ------------------------------------------------------- commit hooks
    /** Speculation verdict for the head-of-ROB instruction. */
    virtual CommitVerdict
    atCommitHead(InflightInst &di, EngineContext &ctx)
    {
        (void)di, (void)ctx;
        return CommitVerdict::Proceed;
    }

    /** Training and coverage accounting for a committing instruction. */
    virtual void
    atCommit(InflightInst &di, EngineContext &ctx)
    {
        (void)di, (void)ctx;
    }

    /** Once per commit cycle, after the whole group retired. */
    virtual void
    atCommitGroupEnd(unsigned producers_this_cycle, EngineContext &ctx)
    {
        (void)producers_this_cycle, (void)ctx;
    }

    /**
     * The pipeline fast-forwarded @p n provably idle cycles (no fetch,
     * rename, issue, validation or commit activity was possible in any
     * of them). An engine whose atCommitGroupEnd has per-cycle effects
     * even on empty groups must replay them here, bit-identically to
     * n empty-group calls; engines without such effects ignore it.
     */
    virtual void
    atIdleCycles(u64 n, EngineContext &ctx)
    {
        (void)n, (void)ctx;
    }

    // ------------------------------------------------------- squash hooks
    /** Undo the rename-time side effects of one squashed instruction. */
    virtual void
    atSquashInst(InflightInst &di, EngineContext &ctx)
    {
        (void)di, (void)ctx;
    }

    /** A pipeline squash happened (any cause). */
    virtual void
    atSquashAll(EngineContext &ctx)
    {
        (void)ctx;
    }

    /**
     * Cumulative coverage/correct/mispredict totals for the time-series
     * sampler, mapped from the engine's own counters (the mapping — not
     * the raw counter list — is what keeps the sample schema fixed
     * across mechanisms). Non-speculative engines leave correct and
     * mispredict at zero.
     */
    virtual EngineSample sampleStats() const { return {}; }

    // --------------------------------------------------- per-engine stats
    struct StatEntry
    {
        std::string name;
        StatCounter *counter;
    };

    const std::vector<StatEntry> &statEntries() const { return entries; }

    /** Value of an engine-local counter by name; 0 when absent. */
    u64
    statValue(const std::string &stat_name) const
    {
        for (const auto &e : entries)
            if (e.name == stat_name)
                return e.counter->value();
        return 0;
    }

    /** Zero all engine-local counters (end of warmup). */
    void
    resetStats()
    {
        for (auto &e : entries)
            e.counter->reset();
    }

  protected:
    void
    registerStat(std::string stat_name, StatCounter *c)
    {
        entries.push_back({std::move(stat_name), c});
    }

  private:
    std::string nm;
    std::vector<StatEntry> entries;
};

} // namespace rsep::core

#endif // RSEP_CORE_SPEC_ENGINE_HH

/**
 * @file
 * Register renaming state: map table, free lists and physical register
 * metadata. Recovery is walk-based (the pipeline undoes ROB entries
 * youngest-first), which is exact and composes with the ISRB.
 */

#ifndef RSEP_CORE_RENAME_HH
#define RSEP_CORE_RENAME_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/params.hh"
#include "isa/opcode.hh"

namespace rsep::core
{

/** The hardwired zero physical register (always ready, value 0). */
constexpr PhysReg zeroPreg = 0;

/** Rename map + free lists over a unified preg numbering:
 *  [0, intPregs) are INT (0 is the zero register), [intPregs, total)
 *  are FP. */
class RenameState
{
  public:
    explicit RenameState(const CoreParams &params);

    /** Current mapping of @p areg. */
    PhysReg
    map(ArchReg areg) const
    {
        return mapTable.at(areg);
    }

    /** Point @p areg at @p preg (rename or walk-undo). */
    void
    setMap(ArchReg areg, PhysReg preg)
    {
        mapTable.at(areg) = preg;
    }

    /** Pop a free register of the class of @p areg; invalidPhysReg if none. */
    PhysReg allocate(ArchReg areg);

    /** Return @p preg to its free list. */
    void release(PhysReg preg);

    bool
    hasFree(ArchReg areg) const
    {
        return isa::isFpReg(areg) ? !fpFree.empty() : !intFree.empty();
    }

    size_t intFreeCount() const { return intFree.size(); }
    size_t fpFreeCount() const { return fpFree.size(); }
    unsigned totalPregs() const { return total; }

    bool
    isFpPreg(PhysReg preg) const
    {
        return preg >= fpBase;
    }

  private:
    unsigned total;
    PhysReg fpBase;
    std::vector<PhysReg> mapTable;
    std::vector<PhysReg> intFree;
    std::vector<PhysReg> fpFree;
};

} // namespace rsep::core

#endif // RSEP_CORE_RENAME_HH

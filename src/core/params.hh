/**
 * @file
 * Core microarchitecture parameters. Defaults reproduce Table I of the
 * paper (aggressive 8-wide core on par with Intel Haswell).
 */

#ifndef RSEP_CORE_PARAMS_HH
#define RSEP_CORE_PARAMS_HH

#include "common/types.hh"

namespace rsep::core
{

/** Table I core configuration. */
struct CoreParams
{
    // Widths.
    unsigned fetchWidth = 8;
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;

    // Windows.
    unsigned robSize = 192;
    unsigned iqSize = 60;
    unsigned lqSize = 72;
    unsigned sqSize = 48;

    // Registers (Table I: 235 INT + 235 FP physical registers).
    unsigned intPregs = 235;
    unsigned fpPregs = 235;

    /**
     * Fetch-to-rename depth in cycles. With execute-time redirects this
     * yields the Table I minimum branch misprediction penalty of ~17
     * cycles (redirect + refill).
     */
    unsigned frontendDepth = 15;

    /** Decode-redirect bubble for BTB-missing direct branches. */
    unsigned decodeRedirectPenalty = 3;

    // Execution latencies (Table I).
    Cycle intAluLat = 1;
    Cycle intMulLat = 3;
    Cycle intDivLat = 25;   ///< unpipelined.
    Cycle fpAluLat = 3;
    Cycle fpMulLat = 3;
    Cycle fpDivLat = 11;    ///< unpipelined.
    Cycle branchLat = 1;
    Cycle storeLat = 1;     ///< AGU + SQ write.
    Cycle stlfLat = 4;      ///< store-to-load forwarding latency.

    /** Taken branches fetchable per cycle ("over 1 taken branch"). */
    unsigned takenBranchesPerFetch = 1;
};

/**
 * Field-introspection hook: visit every CoreParams field as
 * `v(key, ref)` with the canonical scenario-file key. The scenario
 * layer builds its parser, serializer and config hash from this single
 * enumeration, so a new field only needs a line here to be coverable
 * by scenario files.
 */
template <class V>
void
visitFields(CoreParams &p, V &&v)
{
    v("fetch_width", p.fetchWidth);
    v("rename_width", p.renameWidth);
    v("issue_width", p.issueWidth);
    v("commit_width", p.commitWidth);
    v("rob_size", p.robSize);
    v("iq_size", p.iqSize);
    v("lq_size", p.lqSize);
    v("sq_size", p.sqSize);
    v("int_pregs", p.intPregs);
    v("fp_pregs", p.fpPregs);
    v("frontend_depth", p.frontendDepth);
    v("decode_redirect_penalty", p.decodeRedirectPenalty);
    v("int_alu_lat", p.intAluLat);
    v("int_mul_lat", p.intMulLat);
    v("int_div_lat", p.intDivLat);
    v("fp_alu_lat", p.fpAluLat);
    v("fp_mul_lat", p.fpMulLat);
    v("fp_div_lat", p.fpDivLat);
    v("branch_lat", p.branchLat);
    v("store_lat", p.storeLat);
    v("stlf_lat", p.stlfLat);
    v("taken_branches_per_fetch", p.takenBranchesPerFetch);
}

} // namespace rsep::core

#endif // RSEP_CORE_PARAMS_HH

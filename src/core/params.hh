/**
 * @file
 * Core microarchitecture parameters. Defaults reproduce Table I of the
 * paper (aggressive 8-wide core on par with Intel Haswell).
 */

#ifndef RSEP_CORE_PARAMS_HH
#define RSEP_CORE_PARAMS_HH

#include "common/types.hh"

namespace rsep::core
{

/** Table I core configuration. */
struct CoreParams
{
    // Widths.
    unsigned fetchWidth = 8;
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;

    // Windows.
    unsigned robSize = 192;
    unsigned iqSize = 60;
    unsigned lqSize = 72;
    unsigned sqSize = 48;

    // Registers (Table I: 235 INT + 235 FP physical registers).
    unsigned intPregs = 235;
    unsigned fpPregs = 235;

    /**
     * Fetch-to-rename depth in cycles. With execute-time redirects this
     * yields the Table I minimum branch misprediction penalty of ~17
     * cycles (redirect + refill).
     */
    unsigned frontendDepth = 15;

    /** Decode-redirect bubble for BTB-missing direct branches. */
    unsigned decodeRedirectPenalty = 3;

    // Execution latencies (Table I).
    Cycle intAluLat = 1;
    Cycle intMulLat = 3;
    Cycle intDivLat = 25;   ///< unpipelined.
    Cycle fpAluLat = 3;
    Cycle fpMulLat = 3;
    Cycle fpDivLat = 11;    ///< unpipelined.
    Cycle branchLat = 1;
    Cycle storeLat = 1;     ///< AGU + SQ write.
    Cycle stlfLat = 4;      ///< store-to-load forwarding latency.

    /** Taken branches fetchable per cycle ("over 1 taken branch"). */
    unsigned takenBranchesPerFetch = 1;
};

} // namespace rsep::core

#endif // RSEP_CORE_PARAMS_HH

/**
 * @file
 * Event-driven issue-wakeup structures and the in-window memory
 * doubleword index — the data structures behind the PR 5 cycle-loop
 * overhaul (DESIGN.md §9).
 *
 * The contract of every structure here is *behavioural transparency*:
 * they only change WHEN the pipeline looks at an instruction, never
 * what it decides — issue order, tie-breaks and stat dumps stay
 * byte-identical to the full-ROB-scan implementation (pinned by
 * tests/test_golden_dumps.cc).
 *
 *  - WaiterPool: free-listed singly-linked waiter nodes. An
 *    instruction blocked on an operand whose ready time is not yet
 *    known parks on exactly one chain: the producing physical
 *    register's chain (pregReady still unset) or the producing
 *    instruction's chain (store-set / shared-producer dependences).
 *    Chains are drained when the producer issues or retires and freed
 *    wholesale when it squashes. Nodes carry (seq, token) so stale
 *    entries — the waiter squashed and its slot re-used by a re-fetch
 *    — are recognised and dropped at wake time.
 *
 *  - WakeupHeap: a min-heap of (wake cycle, seq, token). Once every
 *    operand's ready time is known, the instruction's eligibility
 *    cycle is exact; it sleeps here and is promoted to the ready list
 *    at that cycle. Tokens invalidate entries orphaned by squashes.
 *
 *  - ReadyList: the seq-sorted set of instructions eligible for issue
 *    (or retrying after losing port arbitration). The per-cycle issue
 *    scan walks this list oldest-first — the same order the old code's
 *    full-ROB walk produced — re-verifying each entry's conditions
 *    before it may claim a port.
 *
 *  - MemDwordIndex: open-addressing table keyed on effAddr & ~7
 *    holding, per doubleword, the in-window store seqs (maintained at
 *    rename/commit/squash) and the issued-load seqs (issue/commit/
 *    squash). Store-to-load forwarding ("youngest older store") and
 *    store-issue memory-order violation checks ("oldest younger issued
 *    load") become O(1) lookups instead of O(ROB) walks.
 */

#ifndef RSEP_CORE_WAKEUP_HH
#define RSEP_CORE_WAKEUP_HH

#include <algorithm>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace rsep::core
{

/** Sentinel for "no waiter node". */
constexpr u32 invalidWaiter = ~u32{0};

/** One parked dependence: instruction @c seq (scheduling generation
 *  @c token) waits on the chain owner. */
struct WaiterNode
{
    u64 seq = 0;
    u32 token = 0;
    u32 next = invalidWaiter;
};

/** Free-listed node pool; chains are intrusive via node indices. */
class WaiterPool
{
  public:
    /** Allocate a node chained in front of @p head. */
    u32
    alloc(u64 seq, u32 token, u32 head)
    {
        u32 idx;
        if (freeHead != invalidWaiter) {
            idx = freeHead;
            freeHead = nodes[idx].next;
        } else {
            idx = static_cast<u32>(nodes.size());
            nodes.emplace_back();
        }
        nodes[idx] = WaiterNode{seq, token, head};
        return idx;
    }

    void
    free(u32 idx)
    {
        nodes[idx].next = freeHead;
        freeHead = idx;
    }

    /** Free a whole chain (squash path: nobody gets woken). */
    void
    freeChain(u32 head)
    {
        while (head != invalidWaiter) {
            u32 next = nodes[head].next;
            free(head);
            head = next;
        }
    }

    WaiterNode &at(u32 idx) { return nodes[idx]; }

    size_t poolSize() const { return nodes.size(); }

  private:
    std::vector<WaiterNode> nodes;
    u32 freeHead = invalidWaiter;
};

/** A scheduled future wake. */
struct WakeEntry
{
    Cycle wake = 0;
    u64 seq = 0;
    u32 token = 0;
};

/** Min-heap over WakeEntry::wake (entries of equal cycle may pop in
 *  any order; the ReadyList re-sorts by age). */
class WakeupHeap
{
  public:
    void
    push(Cycle wake, u64 seq, u32 token)
    {
        heap.push_back(WakeEntry{wake, seq, token});
        std::push_heap(heap.begin(), heap.end(), later);
    }

    /** Earliest scheduled wake cycle; precondition !empty(). Stale
     *  (token-mismatched) entries may make this conservative — their
     *  wake is a no-op, so a fast-forward bound derived from it only
     *  ever ends a skip early, never late. */
    Cycle nextDue() const { return heap.front().wake; }

    bool
    popDue(Cycle now, WakeEntry &out)
    {
        if (heap.empty() || heap.front().wake > now)
            return false;
        std::pop_heap(heap.begin(), heap.end(), later);
        out = heap.back();
        heap.pop_back();
        return true;
    }

    bool empty() const { return heap.empty(); }
    size_t size() const { return heap.size(); }

    void
    clear()
    {
        heap.clear();
    }

  private:
    static bool
    later(const WakeEntry &a, const WakeEntry &b)
    {
        return a.wake > b.wake;
    }

    std::vector<WakeEntry> heap;
};

/** An eligible-for-issue (or port-retrying) instruction. */
struct ReadyEntry
{
    u64 seq = 0;
    u32 token = 0;
};

/** Seq-sorted ready set; the issue stage scans it oldest-first. */
class ReadyList
{
  public:
    void
    insert(u64 seq, u32 token)
    {
        auto it = std::lower_bound(list.begin(), list.end(), seq,
                                   [](const ReadyEntry &e, u64 s) {
                                       return e.seq < s;
                                   });
        list.insert(it, ReadyEntry{seq, token});
    }

    /** Drop every entry with seq >= @p first (squash suffix). */
    void
    truncateFrom(u64 first)
    {
        auto it = std::lower_bound(list.begin(), list.end(), first,
                                   [](const ReadyEntry &e, u64 s) {
                                       return e.seq < s;
                                   });
        list.erase(it, list.end());
    }

    std::vector<ReadyEntry> &entries() { return list; }
    bool empty() const { return list.empty(); }
    size_t size() const { return list.size(); }
    void clear() { list.clear(); }

  private:
    std::vector<ReadyEntry> list;
};

/**
 * Open-addressing (linear-probe, tombstoned) table from doubleword
 * address to the in-window memory instructions touching it. Capacity
 * is bounded by the LQ+SQ sizes, so the table stays small and hot;
 * it grows (and flushes tombstones) by rehashing when load factor
 * passes 3/4. Slot vectors are kept seq-sorted.
 */
class MemDwordIndex
{
  public:
    explicit MemDwordIndex(size_t capacity_hint = 256)
    {
        size_t cap = 16;
        while (cap < capacity_hint)
            cap *= 2;
        slots.resize(cap);
    }

    /** Stores join at rename (ascending seq). */
    void
    addStore(Addr dword, u64 seq)
    {
        insertSorted(findOrCreate(dword).stores, seq);
    }

    void
    removeStore(Addr dword, u64 seq)
    {
        removeSeq(dword, /*stores=*/true, seq);
    }

    /** Loads join when they issue (out of order). */
    void
    addIssuedLoad(Addr dword, u64 seq)
    {
        insertSorted(findOrCreate(dword).loads, seq);
    }

    void
    removeIssuedLoad(Addr dword, u64 seq)
    {
        removeSeq(dword, /*stores=*/false, seq);
    }

    /** Youngest in-window store with seq < @p before (STLF probe). */
    std::optional<u64>
    youngestStoreBelow(Addr dword, u64 before) const
    {
        const Slot *s = find(dword);
        if (!s)
            return std::nullopt;
        auto it = std::lower_bound(s->stores.begin(), s->stores.end(),
                                   before);
        if (it == s->stores.begin())
            return std::nullopt;
        return *(it - 1);
    }

    /** Oldest issued load with seq > @p after (violation probe). */
    std::optional<u64>
    oldestIssuedLoadAbove(Addr dword, u64 after) const
    {
        const Slot *s = find(dword);
        if (!s)
            return std::nullopt;
        auto it = std::upper_bound(s->loads.begin(), s->loads.end(), after);
        if (it == s->loads.end())
            return std::nullopt;
        return *it;
    }

    size_t slotCapacity() const { return slots.size(); }
    size_t entriesUsed() const { return used; }

  private:
    enum : u8 { Empty = 0, Used = 1, Tomb = 2 };

    struct Slot
    {
        Addr key = 0;
        u8 state = Empty;
        std::vector<u64> stores;
        std::vector<u64> loads;
    };

    static size_t
    hashOf(Addr dword)
    {
        u64 x = dword >> 3;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<size_t>(x);
    }

    const Slot *
    find(Addr dword) const
    {
        size_t mask = slots.size() - 1;
        for (size_t i = hashOf(dword) & mask;; i = (i + 1) & mask) {
            const Slot &s = slots[i];
            if (s.state == Empty)
                return nullptr;
            if (s.state == Used && s.key == dword)
                return &s;
        }
    }

    Slot &
    findOrCreate(Addr dword)
    {
        // Rehash before the table gets too full to probe efficiently
        // (tombstones count: they extend probe chains).
        if ((used + tombs + 1) * 4 > slots.size() * 3)
            rehash(slots.size() * 2);
        size_t mask = slots.size() - 1;
        size_t first_tomb = slots.size();
        for (size_t i = hashOf(dword) & mask;; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.state == Used && s.key == dword)
                return s;
            if (s.state == Tomb && first_tomb == slots.size())
                first_tomb = i;
            if (s.state == Empty) {
                Slot &dst =
                    first_tomb != slots.size() ? slots[first_tomb] : s;
                if (dst.state == Tomb)
                    --tombs;
                dst.key = dword;
                dst.state = Used;
                ++used;
                return dst;
            }
        }
    }

    void
    removeSeq(Addr dword, bool stores, u64 seq)
    {
        size_t mask = slots.size() - 1;
        for (size_t i = hashOf(dword) & mask;; i = (i + 1) & mask) {
            Slot &s = slots[i];
            if (s.state == Empty)
                return; // not present (nothing to remove).
            if (s.state != Used || s.key != dword)
                continue;
            std::vector<u64> &v = stores ? s.stores : s.loads;
            auto it = std::lower_bound(v.begin(), v.end(), seq);
            if (it != v.end() && *it == seq)
                v.erase(it);
            if (s.stores.empty() && s.loads.empty()) {
                // Evict the slot; vectors keep their capacity for the
                // next tenant of this slot.
                s.state = Tomb;
                --used;
                ++tombs;
            }
            return;
        }
    }

    static void
    insertSorted(std::vector<u64> &v, u64 seq)
    {
        auto it = std::lower_bound(v.begin(), v.end(), seq);
        if (it == v.end() || *it != seq)
            v.insert(it, seq);
    }

    void
    rehash(size_t cap)
    {
        std::vector<Slot> old = std::move(slots);
        slots.clear();
        slots.resize(cap);
        used = 0;
        tombs = 0;
        for (Slot &s : old) {
            if (s.state != Used)
                continue;
            Slot &dst = findOrCreate(s.key);
            dst.stores = std::move(s.stores);
            dst.loads = std::move(s.loads);
        }
    }

    std::vector<Slot> slots;
    size_t used = 0;
    size_t tombs = 0;
};

} // namespace rsep::core

#endif // RSEP_CORE_WAKEUP_HH

/**
 * @file
 * Issue ports / functional units (Table I): 8-issue over 4 ALU ports
 * (one with the multiplier, one with the unpipelined divider), 3 FP
 * ports (FPMul / unpipelined FPDiv), 2 load/store AGU ports and 1
 * store-only port. Also arbitrates RSEP validation micro-ops, which by
 * policy either lock the instruction's own FU class or may use any
 * port through the global bypass network (Section IV-F).
 */

#ifndef RSEP_CORE_FU_POOL_HH
#define RSEP_CORE_FU_POOL_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "core/params.hh"
#include "isa/opcode.hh"

namespace rsep::core
{

/** Bitmask over isa::OpClass. */
constexpr u16
classBit(isa::OpClass c)
{
    return static_cast<u16>(1u << static_cast<unsigned>(c));
}

/** The per-cycle port arbiter. */
class FuPool
{
  public:
    explicit FuPool(const CoreParams &params) : p(params)
    {
        using isa::OpClass;
        auto add = [this](u16 mask, bool is_load_capable) {
            ports.push_back({mask, 0, 0, is_load_capable});
        };
        u16 alu = classBit(OpClass::IntAlu) | classBit(OpClass::Branch);
        add(alu, false);
        add(alu | classBit(OpClass::IntMul), false);
        add(alu | classBit(OpClass::IntDiv), false);
        add(alu, false);
        u16 fp = classBit(OpClass::FpAlu);
        add(fp | classBit(OpClass::FpMul), false);
        add(fp | classBit(OpClass::FpDiv), false);
        add(fp, false);
        u16 ldst = classBit(OpClass::Load) | classBit(OpClass::Store);
        add(ldst, true);
        add(ldst, true);
        add(classBit(OpClass::Store), false);
    }

    /** Start a new cycle. */
    void
    beginCycle(Cycle now)
    {
        issuedThisCycle = 0;
        for (auto &port : ports)
            port.usedThisCycle = 0;
        cur = now;
    }

    /**
     * Try to claim a port for an instruction of class @p c.
     * @return port index or -1.
     */
    int
    tryIssue(isa::OpClass c)
    {
        if (issuedThisCycle >= p.issueWidth)
            return -1;
        u16 bit = classBit(c);
        for (size_t i = 0; i < ports.size(); ++i) {
            Port &port = ports[i];
            if ((port.classes & bit) && !port.usedThisCycle &&
                port.busyUntil <= cur) {
                port.usedThisCycle = 1;
                ++issuedThisCycle;
                return static_cast<int>(i);
            }
        }
        return -1;
    }

    /**
     * Try to claim a port for a validation micro-op of an instruction
     * whose class is @p c. With @p lock_fu the micro-op must use a port
     * of the instruction's own class; otherwise any port may perform
     * the 64-bit compare, with non-load ports given priority.
     */
    int
    tryIssueValidation(isa::OpClass c, bool lock_fu)
    {
        if (issuedThisCycle >= p.issueWidth)
            return -1;
        if (lock_fu)
            return tryIssue(c);
        // Any-FU: prefer non-load ports (Section IV-F1b).
        for (int pass = 0; pass < 2; ++pass) {
            bool want_load = pass == 1;
            for (size_t i = 0; i < ports.size(); ++i) {
                Port &port = ports[i];
                if (port.loadCapable != want_load)
                    continue;
                if (!port.usedThisCycle && port.busyUntil <= cur) {
                    port.usedThisCycle = 1;
                    ++issuedThisCycle;
                    return static_cast<int>(i);
                }
            }
        }
        return -1;
    }

    /** Mark @p port busy until @p until (unpipelined dividers). */
    void
    markUnpipelined(int port, Cycle until)
    {
        ports.at(static_cast<size_t>(port)).busyUntil = until;
    }

    unsigned issued() const { return issuedThisCycle; }

  private:
    struct Port
    {
        u16 classes;
        Cycle busyUntil;
        u8 usedThisCycle;
        bool loadCapable;
    };

    CoreParams p;
    std::vector<Port> ports;
    unsigned issuedThisCycle = 0;
    Cycle cur = 0;
};

} // namespace rsep::core

#endif // RSEP_CORE_FU_POOL_HH

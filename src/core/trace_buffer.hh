/**
 * @file
 * Replayable window over a TraceSource's committed-path stream (live
 * functional emulation or a recorded-trace replay). Commit-time
 * squashes (value/equality mispredictions) rewind the fetch cursor;
 * this is legal because such squashes do not change architectural
 * state, so re-reading the same records is exact.
 */

#ifndef RSEP_CORE_TRACE_BUFFER_HH
#define RSEP_CORE_TRACE_BUFFER_HH

#include "common/logging.hh"
#include "common/ring_buffer.hh"
#include "wl/trace_source.hh"

namespace rsep::core
{

/** Indexed access to the dynamic instruction stream. */
class TraceBuffer
{
  public:
    /** The window spans the ROB plus the frontend queue plus the fetch
     *  lookahead; reserve comfortably past that so the steady state
     *  never allocates (the ring still grows if a config exceeds it). */
    explicit TraceBuffer(wl::TraceSource &src) : em(src), window(1024)
    {
    }

    /** Record of dynamic instruction @p idx (0-based, grows forever). */
    const wl::DynRecord &
    at(u64 idx)
    {
        if (idx < base)
            rsep_panic("trace rewind below trimmed base (%llu < %llu)",
                       static_cast<unsigned long long>(idx),
                       static_cast<unsigned long long>(base));
        while (base + window.size() <= idx)
            window.push_back(em.step());
        return window[static_cast<size_t>(idx - base)];
    }

    /** Drop records below @p idx (the commit point). */
    void
    trimBelow(u64 idx)
    {
        while (base < idx && !window.empty()) {
            window.pop_front();
            ++base;
        }
    }

    u64 baseIndex() const { return base; }
    size_t windowSize() const { return window.size(); }

  private:
    wl::TraceSource &em;
    RingBuffer<wl::DynRecord> window;
    u64 base = 0;
};

} // namespace rsep::core

#endif // RSEP_CORE_TRACE_BUFFER_HH

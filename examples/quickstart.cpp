/**
 * @file
 * Quickstart: run one workload on the Table I core with and without
 * RSEP and print IPC, coverage and accuracy.
 *
 * Usage: quickstart [benchmark] (default: mcf)
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "rsep/costmodel.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "quickstart";
    spec.description =
        "Run one workload on the Table I core with and without RSEP and "
        "print IPC,\ncoverage and accuracy.";
    spec.defaultScenarios = {"baseline", "rsep"};
    spec.benchDefaults = false; // full library-default run sizing.
    spec.benchmarks = {"mcf"};
    spec.positionalBenchmarks = true;
    spec.report = [](const bench::HarnessResult &r) {
        const sim::SimConfig &base = r.configs[0];
        const sim::SimConfig &rsep_cfg = r.configs[1];

        for (const auto &mrow : r.rows) {
            std::printf("=== RSEP quickstart: %s ===\n",
                        mrow.benchmark.c_str());
            std::printf(
                "core: 8-wide OoO, 192-entry ROB (paper Table I)\n");
            std::printf("%s\n",
                        equality::describeStorage(rsep_cfg.mech.rsep,
                                                  base.core.intPregs +
                                                      base.core.fpPregs,
                                                  base.core.robSize)
                            .c_str());

            const sim::RunResult &rb = mrow.byConfig[0];
            const sim::RunResult &rr = mrow.byConfig[1];

            double cov_load =
                rr.ratioOfCommitted(&core::PipelineStats::distPredLoad);
            double cov_other =
                rr.ratioOfCommitted(&core::PipelineStats::distPredOther);
            u64 correct = rr.sum(&core::PipelineStats::rsepCorrect);
            u64 wrong = rr.sum(&core::PipelineStats::rsepMispredicts);
            double acc = correct + wrong
                ? 100.0 * static_cast<double>(correct) /
                      static_cast<double>(correct + wrong)
                : 100.0;

            std::printf(
                "\nbaseline IPC (hmean of %zu checkpoints): %.3f\n",
                rb.phases.size(), rb.ipcHmean());
            std::printf("RSEP     IPC (hmean of %zu checkpoints): %.3f\n",
                        rr.phases.size(), rr.ipcHmean());
            std::printf("speedup: %.2f%%\n", sim::speedupPct(rr, rb));
            std::printf("equality coverage: %.2f%% of committed insts "
                        "(loads %.2f%%, others %.2f%%)\n",
                        100.0 * (cov_load + cov_other), 100.0 * cov_load,
                        100.0 * cov_other);
            std::printf("equality prediction accuracy: %.3f%%\n", acc);
            std::printf(
                "move elimination: %.2f%%, zero idioms: %.2f%%\n",
                100.0 *
                    rr.ratioOfCommitted(&core::PipelineStats::moveElim),
                100.0 * rr.ratioOfCommitted(
                            &core::PipelineStats::zeroIdiomElim));
        }
    };
    return bench::runHarness(argc, argv, spec);
}

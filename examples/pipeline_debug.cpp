/**
 * @file
 * Deep-dive diagnostics: run one benchmark under one scenario and
 * dump every pipeline/cache/predictor counter. Useful to understand
 * where cycles go before and after enabling RSEP.
 *
 * Usage: pipeline_debug [benchmark] [scenario]
 * (default: dealII baseline; any registered scenario name or
 * --scenario/--scenario-file arm works, e.g. rsep, vp, realistic)
 */

#include <iostream>

#include "bench_util.hh"
#include "wl/suite.hh"

namespace
{

using namespace rsep;

int
dumpOne(const std::string &bench, const sim::Scenario &scenario)
{
    const sim::SimConfig &cfg = scenario.config;

    wl::Workload w = wl::makeWorkload(bench);
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, 0);

    std::cout << "program '" << w.program.progName() << "' ("
              << w.archetype << "), " << w.program.size()
              << " static instructions\n";
    for (size_t i = 0; i < w.program.size(); ++i)
        std::cout << "  " << w.program.disasm(i) << "\n";

    core::Pipeline pipe(cfg.core, cfg.mech, emu, cfg.seed);
    pipe.run(cfg.warmupInsts);
    pipe.resetStats();
    pipe.run(cfg.measureInsts);

    const auto &st = pipe.stats();
    auto pct = [&](u64 v) {
        return 100.0 * static_cast<double>(v) /
               static_cast<double>(st.committedInsts.value());
    };

    std::cout << "\nconfig: " << cfg.label << "\n";
    std::cout << "cycles " << st.cycles.value() << "  insts "
              << st.committedInsts.value() << "  IPC " << st.ipc()
              << "\n";
    std::cout << "loads " << pct(st.committedLoads.value())
              << "%  stores " << pct(st.committedStores.value())
              << "%  branches " << pct(st.committedBranches.value())
              << "%  producers " << pct(st.committedProducers.value())
              << "%\n";
    std::cout << "rename stalls: rob " << st.renameStallRob.value()
              << " iq " << st.renameStallIq.value() << " lsq "
              << st.renameStallLsq.value() << " regs "
              << st.renameStallRegs.value() << "\n";
    std::cout << "squashes: commit " << st.commitSquashes.value()
              << " memorder " << st.memOrderSquashes.value() << "\n";
    std::cout << "coverage: zidiom " << pct(st.zeroIdiomElim.value())
              << "% move " << pct(st.moveElim.value()) << "% zp "
              << pct(st.zeroPredLoad.value() + st.zeroPredOther.value())
              << "% dist "
              << pct(st.distPredLoad.value() + st.distPredOther.value())
              << "% vp "
              << pct(st.valuePredLoad.value() + st.valuePredOther.value())
              << "%\n";
    std::cout << "rsep correct " << st.rsepCorrect.value() << " wrong "
              << st.rsepMispredicts.value() << " | vp correct "
              << st.vpCorrect.value() << " wrong "
              << st.vpMispredicts.value() << "\n";

    auto &bru = pipe.branchUnit();
    std::cout << "branches: cond " << bru.condBranches.value()
              << " mispred " << bru.condMispredicts.value() << " ("
              << (bru.condBranches.value()
                      ? 100.0 * bru.condMispredicts.value() /
                            bru.condBranches.value()
                      : 0.0)
              << "%) indirect-miss " << bru.indirectMispredicts.value()
              << " ret-miss " << bru.returnMispredicts.value()
              << " btb-bubbles " << bru.btbMissBubbles.value() << "\n";

    auto &mem = pipe.memory();
    auto cache_line = [&](mem::CacheLevel &c) {
        std::cout << "  " << c.params().name << ": hits "
                  << c.hits.value() << " misses " << c.misses.value()
                  << " merges " << c.mshrMerges.value() << " pf "
                  << c.prefetchFills.value() << "\n";
    };
    cache_line(mem.l1iCache());
    cache_line(mem.l1dCache());
    cache_line(mem.l2Cache());
    cache_line(mem.l3Cache());
    std::cout << "  dram: reads " << mem.dram().reads.value()
              << " row-hits " << mem.dram().rowHits.value() << "\n";
    std::cout << "  dtlb: hits " << mem.dtlbUnit().hits.value()
              << " misses " << mem.dtlbUnit().misses.value() << "\n";
    std::cout << "isrb in use " << pipe.isrb().entriesInUse() << "/"
              << pipe.isrb().capacity() << " refusals(full) "
              << pipe.isrb().shareRefusalsFull.value() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "pipeline_debug";
    spec.description =
        "Run one benchmark under one scenario and dump every "
        "pipeline/cache/predictor\ncounter.";
    spec.positionalHelp = " [benchmark] [scenario]";
    spec.custom = [&spec](const bench::DriverContext &ctx) {
        bench::warnUnusedMatrixFlags(spec.name, ctx, 1);
        std::string bench =
            !ctx.positional.empty() ? ctx.positional[0] : "dealII";

        sim::Scenario scenario;
        if (!ctx.scenarios.empty()) {
            scenario = ctx.scenarios.front();
        } else {
            std::string arm =
                ctx.positional.size() > 1 ? ctx.positional[1] : "baseline";
            auto found = sim::findScenario(arm);
            if (!found) {
                std::cerr << spec.name << ": unknown scenario '" << arm
                          << "' (see --list-scenarios)\n";
                return 2;
            }
            scenario = std::move(*found);
        }
        return dumpOne(bench, scenario);
    };
    return bench::runHarness(argc, argv, spec);
}

/**
 * @file
 * Compare all five mechanism arms of the paper (zero prediction, move
 * elimination, RSEP, value prediction, RSEP+VP) on a set of workloads
 * and print the per-benchmark speedups and coverages -- a compact
 * interactive version of Figs. 4 and 5.
 *
 * Usage: mechanism_comparison [bench ...]   (default: a 6-bench subset)
 */

#include <iostream>

#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using core::PipelineStats;

    sim::MatrixOptions opts;
    opts.jobs = sim::parseJobsArg(argc, argv);

    std::vector<std::string> benches = sim::stripJobsArgs(argc, argv);
    if (benches.empty())
        benches = {"mcf", "dealII", "hmmer", "libquantum", "omnetpp",
                   "perlbench"};

    std::vector<sim::SimConfig> configs = {
        sim::SimConfig::baseline(),     sim::SimConfig::zeroPredOnly(),
        sim::SimConfig::moveElimOnly(), sim::SimConfig::rsepIdeal(),
        sim::SimConfig::vpOnly(),       sim::SimConfig::rsepPlusVp(),
    };

    auto rows = sim::runMatrix(configs, benches, opts);

    std::cout << "\n--- speedup over baseline (cf. paper Fig. 4) ---\n";
    sim::printSpeedupTable(std::cout, rows, configs);

    std::cout << "\n--- coverage, % of committed instructions "
                 "(cf. paper Fig. 5) ---\n";
    std::cout << "columns: rsep arm [zidiom|move|dist|dist-ld] then "
                 "rsep+vp arm [dist|vp|vp-ld]\n";
    sim::printPctTable(
        std::cout, rows,
        {"zidiom", "move", "dist", "dist-ld", "dist+", "vp+", "vp-ld+"},
        [](const sim::MatrixRow &row, size_t col) {
            const sim::RunResult &rsep_run = row.byConfig[3];
            const sim::RunResult &both_run = row.byConfig[5];
            switch (col) {
              case 0:
                return 100 * rsep_run.ratioOfCommitted(
                                 &PipelineStats::zeroIdiomElim);
              case 1:
                return 100 * rsep_run.ratioOfCommitted(
                                 &PipelineStats::moveElim);
              case 2:
                return 100 * (rsep_run.ratioOfCommitted(
                                  &PipelineStats::distPredOther) +
                              rsep_run.ratioOfCommitted(
                                  &PipelineStats::distPredLoad));
              case 3:
                return 100 * rsep_run.ratioOfCommitted(
                                 &PipelineStats::distPredLoad);
              case 4:
                return 100 * (both_run.ratioOfCommitted(
                                  &PipelineStats::distPredOther) +
                              both_run.ratioOfCommitted(
                                  &PipelineStats::distPredLoad));
              case 5:
                return 100 * (both_run.ratioOfCommitted(
                                  &PipelineStats::valuePredOther) +
                              both_run.ratioOfCommitted(
                                  &PipelineStats::valuePredLoad));
              case 6:
                return 100 * both_run.ratioOfCommitted(
                                 &PipelineStats::valuePredLoad);
              default:
                return 0.0;
            }
        });
    return 0;
}

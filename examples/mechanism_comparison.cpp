/**
 * @file
 * Compare all five mechanism arms of the paper (zero prediction, move
 * elimination, RSEP, value prediction, RSEP+VP) on a set of workloads
 * and print the per-benchmark speedups and coverages -- a compact
 * interactive version of Figs. 4 and 5.
 *
 * Usage: mechanism_comparison [bench ...]   (default: a 6-bench subset)
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using core::PipelineStats;

    bench::HarnessSpec spec;
    spec.name = "mechanism_comparison";
    spec.description =
        "Compare the paper's five mechanism arms on a set of workloads "
        "(compact\ninteractive version of Figs. 4 and 5).";
    spec.defaultScenarios = {"baseline",  "zero-pred", "move-elim",
                             "rsep",      "vpred",     "rsep+vpred"};
    spec.benchDefaults = false; // full library-default run sizing.
    spec.benchmarks = {"mcf",      "dealII",  "hmmer",
                       "libquantum", "omnetpp", "perlbench"};
    spec.positionalBenchmarks = true;
    spec.report = [](const bench::HarnessResult &r) {
        std::cout
            << "\n--- speedup over baseline (cf. paper Fig. 4) ---\n";
        sim::printSpeedupTable(std::cout, r.rows, r.configs);

        std::cout << "\n--- coverage, % of committed instructions "
                     "(cf. paper Fig. 5) ---\n";
        std::cout << "columns: rsep arm [zidiom|move|dist|dist-ld] then "
                     "rsep+vp arm [dist|vp|vp-ld]\n";
        sim::printPctTable(
            std::cout, r.rows,
            {"zidiom", "move", "dist", "dist-ld", "dist+", "vp+",
             "vp-ld+"},
            [](const sim::MatrixRow &row, size_t col) {
                const sim::RunResult &rsep_run = row.byConfig[3];
                const sim::RunResult &both_run = row.byConfig[5];
                switch (col) {
                  case 0:
                    return 100 * rsep_run.ratioOfCommitted(
                                     &PipelineStats::zeroIdiomElim);
                  case 1:
                    return 100 * rsep_run.ratioOfCommitted(
                                     &PipelineStats::moveElim);
                  case 2:
                    return 100 * (rsep_run.ratioOfCommitted(
                                      &PipelineStats::distPredOther) +
                                  rsep_run.ratioOfCommitted(
                                      &PipelineStats::distPredLoad));
                  case 3:
                    return 100 * rsep_run.ratioOfCommitted(
                                     &PipelineStats::distPredLoad);
                  case 4:
                    return 100 * (both_run.ratioOfCommitted(
                                      &PipelineStats::distPredOther) +
                                  both_run.ratioOfCommitted(
                                      &PipelineStats::distPredLoad));
                  case 5:
                    return 100 * (both_run.ratioOfCommitted(
                                      &PipelineStats::valuePredOther) +
                                  both_run.ratioOfCommitted(
                                      &PipelineStats::valuePredLoad));
                  case 6:
                    return 100 * both_run.ratioOfCommitted(
                                     &PipelineStats::valuePredLoad);
                  default:
                    return 0.0;
                }
            });
    };
    return bench::runHarness(argc, argv, spec);
}

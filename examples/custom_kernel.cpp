/**
 * @file
 * Authoring a custom workload with the public API: build a mini-ISA
 * program with ProgramBuilder, give it data, and measure how much a
 * registered scenario's mechanism set helps it.
 *
 * The kernel accumulates a checksum into a *saturating* counter (a
 * branchless min against a limit). While saturated, the min result
 * repeats every iteration, so equality prediction severs the
 * loop-carried recurrence -- the same physics behind the paper's
 * hmmer/dealII wins. A recomputed expression adds extra coverage.
 *
 * Usage: custom_kernel [--scenario NAME]   (default arm: rsep)
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "wl/emulator.hh"

namespace
{

using namespace rsep;

isa::Program
buildChecksumKernel()
{
    constexpr ArchReg Z = isa::zeroReg;

    isa::ProgramBuilder b("checksum");
    b.label("top");
    b.ldrx(1, 10, 20);       // v = data[i]
    b.eori(2, 1, 0x5a5a);    // t = v ^ K
    b.add(7, 3, 2);          // cand = sum + t
    b.cmplt(8, 9, 7);        // limit < cand ?
    b.sub(11, Z, 8);         // mask
    b.and_(12, 9, 11);
    b.eori(13, 11, -1);
    b.and_(14, 7, 13);
    b.orr(3, 12, 14);        // sum = min(cand, limit): repeats when
                             // saturated -> RSEP severs the recurrence
    b.ldrx(4, 10, 20);       // v again (spill reload)
    b.eori(5, 4, 0x5a5a);    // == t (recompute)
    b.add(6, 6, 5);          // check += t
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.lsri(3, 3, 2);         // leave saturation at each sweep wrap
    b.b("top");
    return b.build();
}

core::PipelineStats
runOnce(const isa::Program &prog, const sim::SimConfig &cfg)
{
    wl::Emulator em(prog);
    em.resetArchState();
    Rng rng(7);
    for (u64 i = 0; i < 4096; ++i)
        em.memory().write(0x100000 + i * 8, rng.next() & 0xffff);
    em.setReg(10, 0x100000);
    em.setReg(21, 4096);
    em.setReg(9, 40'000'000); // saturation limit.

    core::Pipeline pipe(cfg.core, cfg.mech, em, 99);
    pipe.run(60000);
    pipe.resetStats();
    pipe.run(120000);
    return pipe.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "custom_kernel";
    spec.description =
        "Author a custom workload with the public API and measure how "
        "much a\nregistered scenario's mechanism set helps it (default "
        "arm: rsep).";
    spec.custom = [&spec](const bench::DriverContext &ctx) {
        bench::warnUnusedMatrixFlags(spec.name, ctx, 1);

        // 1. Write the program.
        isa::Program prog = buildChecksumKernel();

        // 2/3. Run it, baseline vs the chosen arm. The kernel pins its
        // own seed and warmup/measure windows ([sim] sizing does not
        // apply); the arm's [core] and [mech] sections do.
        sim::Scenario arm = !ctx.scenarios.empty()
                                ? ctx.scenarios.front()
                                : *sim::findScenario("rsep");
        core::PipelineStats base =
            runOnce(prog, sim::findScenario("baseline")->config);
        core::PipelineStats with = runOnce(prog, arm.config);

        double cov = 100.0 *
                     double(with.distPredLoad.value() +
                            with.distPredOther.value()) /
                     double(with.committedInsts.value());
        std::printf("custom checksum kernel on the Table I core:\n");
        std::printf("  baseline IPC: %.3f\n", base.ipc());
        std::printf("  RSEP IPC:     %.3f (%+.2f%%)\n", with.ipc(),
                    (with.ipc() / base.ipc() - 1.0) * 100.0);
        std::printf("  equality coverage: %.2f%% of committed "
                    "instructions\n",
                    cov);
        std::printf("  mispredictions: %llu\n",
                    (unsigned long long)with.rsepMispredicts.value());
        (void)spec;
        return 0;
    };
    return bench::runHarness(argc, argv, spec);
}

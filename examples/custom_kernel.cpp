/**
 * @file
 * Authoring a custom workload with the public API: build a mini-ISA
 * program with ProgramBuilder, give it data, and measure how much
 * equality prediction helps it.
 *
 * The kernel accumulates a checksum into a *saturating* counter (a
 * branchless min against a limit). While saturated, the min result
 * repeats every iteration, so equality prediction severs the
 * loop-carried recurrence -- the same physics behind the paper's
 * hmmer/dealII wins. A recomputed expression adds extra coverage.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "wl/emulator.hh"

int
main()
{
    using namespace rsep;
    constexpr ArchReg Z = isa::zeroReg;

    // 1. Write the program.
    isa::ProgramBuilder b("checksum");
    b.label("top");
    b.ldrx(1, 10, 20);       // v = data[i]
    b.eori(2, 1, 0x5a5a);    // t = v ^ K
    b.add(7, 3, 2);          // cand = sum + t
    b.cmplt(8, 9, 7);        // limit < cand ?
    b.sub(11, Z, 8);         // mask
    b.and_(12, 9, 11);
    b.eori(13, 11, -1);
    b.and_(14, 7, 13);
    b.orr(3, 12, 14);        // sum = min(cand, limit): repeats when
                             // saturated -> RSEP severs the recurrence
    b.ldrx(4, 10, 20);       // v again (spill reload)
    b.eori(5, 4, 0x5a5a);    // == t (recompute)
    b.add(6, 6, 5);          // check += t
    b.addi(20, 20, 1);
    b.bltu(20, 21, "top");
    b.movi(20, 0);
    b.lsri(3, 3, 2);         // leave saturation at each sweep wrap
    b.b("top");
    isa::Program prog = b.build();

    // 2. Instantiate and initialize architectural state.
    auto run_once = [&prog](bool enable_rsep) {
        wl::Emulator em(prog);
        em.resetArchState();
        Rng rng(7);
        for (u64 i = 0; i < 4096; ++i)
            em.memory().write(0x100000 + i * 8, rng.next() & 0xffff);
        em.setReg(10, 0x100000);
        em.setReg(21, 4096);
        em.setReg(9, 40'000'000); // saturation limit.

        // 3. Run it on the Table I core.
        core::MechConfig mech;
        if (enable_rsep) {
            mech.moveElim = true;
            mech.equalityPred = true;
            mech.rsep = equality::RsepConfig::idealLarge();
        }
        core::Pipeline pipe(core::CoreParams{}, mech, em, 99);
        pipe.run(60000);
        pipe.resetStats();
        pipe.run(120000);
        return pipe.stats();
    };

    core::PipelineStats base = run_once(false);
    core::PipelineStats rsep = run_once(true);

    double cov = 100.0 *
                 double(rsep.distPredLoad.value() +
                        rsep.distPredOther.value()) /
                 double(rsep.committedInsts.value());
    std::printf("custom checksum kernel on the Table I core:\n");
    std::printf("  baseline IPC: %.3f\n", base.ipc());
    std::printf("  RSEP IPC:     %.3f (%+.2f%%)\n", rsep.ipc(),
                (rsep.ipc() / base.ipc() - 1.0) * 100.0);
    std::printf("  equality coverage: %.2f%% of committed instructions\n",
                cov);
    std::printf("  mispredictions: %llu\n",
                (unsigned long long)rsep.rsepMispredicts.value());
    return 0;
}

/**
 * @file
 * Stat-export tests: matrix results flatten into rows keyed by
 * (benchmark, scenario, config hash), per-engine counters surface in
 * the dump, and the CSV/JSON/table sinks produce well-formed output.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/scenario.hh"
#include "sim/stat_export.hh"

namespace rsep::sim
{
namespace
{

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 2'000;
    c.measureInsts = 6'000;
    c.checkpoints = 1;
    c.seed = 0x5eed;
    return c;
}

struct TinyMatrix
{
    std::vector<SimConfig> configs;
    std::vector<MatrixRow> rows;
    std::vector<StatRow> stats;
};

const TinyMatrix &
tinyMatrix()
{
    static const TinyMatrix m = [] {
        TinyMatrix t;
        t.configs = {shrunk(SimConfig::baseline()),
                     shrunk(SimConfig::rsepIdeal())};
        MatrixOptions opts;
        opts.jobs = 2;
        opts.progress = false;
        t.rows = runMatrix(t.configs, {"hmmer"}, opts);
        t.stats = collectStatRows(t.configs, t.rows);
        return t;
    }();
    return m;
}

const StatRow *
findRow(const std::vector<StatRow> &rows, const std::string &scenario)
{
    for (const auto &r : rows)
        if (r.scenario == scenario)
            return &r;
    return nullptr;
}

u64
counterOf(const StatRow &row, const std::string &name)
{
    for (const auto &[n, v] : row.counters)
        if (n == name)
            return v;
    ADD_FAILURE() << "no counter " << name;
    return 0;
}

TEST(StatExport, RowsAreKeyedByBenchScenarioAndHash)
{
    const TinyMatrix &m = tinyMatrix();
    ASSERT_EQ(m.stats.size(), 2u); // 1 benchmark x 2 configs.

    const StatRow *base = findRow(m.stats, "baseline");
    const StatRow *rsep = findRow(m.stats, "rsep");
    ASSERT_TRUE(base && rsep);
    EXPECT_EQ(base->benchmark, "hmmer");
    EXPECT_EQ(base->checkpoints, 1u);
    EXPECT_GT(base->ipcHmean, 0.0);

    // Hashes are per-config, stable, and distinct across arms.
    EXPECT_EQ(base->configHash, configHash(m.configs[0]));
    EXPECT_EQ(rsep->configHash, configHash(m.configs[1]));
    EXPECT_NE(base->configHash, rsep->configHash);

    // Pipeline counters flatten by introspected name.
    EXPECT_EQ(counterOf(*base, "cycles"),
              m.rows[0].byConfig[0].sum(&core::PipelineStats::cycles));
    EXPECT_GT(counterOf(*base, "committed_insts"), 0u);
}

TEST(StatExport, PerEngineCountersSurface)
{
    const TinyMatrix &m = tinyMatrix();
    const StatRow *base = findRow(m.stats, "baseline");
    const StatRow *rsep = findRow(m.stats, "rsep");
    ASSERT_TRUE(base && rsep);

    // The RSEP arm carries its engines' counters...
    EXPECT_GT(counterOf(*rsep, "engine.rsep.shared"), 0u);
    counterOf(*rsep, "engine.move-elim.eliminated");
    // ...the baseline only the always-on zero-idiom engine.
    counterOf(*base, "engine.zero-idiom.eliminated");
    for (const auto &[name, value] : base->counters) {
        (void)value;
        EXPECT_EQ(name.find("engine.rsep."), std::string::npos) << name;
    }
}

TEST(StatExport, CsvIsRectangularWithUnionColumns)
{
    const TinyMatrix &m = tinyMatrix();
    std::ostringstream os;
    CsvStatSink{}.write(os, m.stats);

    std::istringstream is(os.str());
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header.rfind("benchmark,scenario,config_hash,checkpoints,"
                           "ipc_hmean,",
                           0),
              0u);
    EXPECT_NE(header.find("engine.rsep.shared"), std::string::npos);

    size_t cols = std::count(header.begin(), header.end(), ',');
    std::string line;
    size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), (long)cols)
            << line;
    }
    EXPECT_EQ(lines, m.stats.size());
}

TEST(StatExport, CsvEscapesDelimiters)
{
    StatRow row;
    row.benchmark = "we,ird";
    row.scenario = "quo\"ted";
    row.configHash = "0123456789abcdef";
    row.checkpoints = 1;
    row.ipcHmean = 1.0;
    row.counters = {{"cycles", 1}};
    std::ostringstream os;
    CsvStatSink{}.write(os, {row});
    EXPECT_NE(os.str().find("\"we,ird\""), std::string::npos);
    EXPECT_NE(os.str().find("\"quo\"\"ted\""), std::string::npos);
}

TEST(StatExport, JsonIsWellFormed)
{
    const TinyMatrix &m = tinyMatrix();
    std::ostringstream os;
    JsonStatSink{}.write(os, m.stats);
    const std::string j = os.str();

    EXPECT_EQ(j.front(), '[');
    EXPECT_EQ(j[j.size() - 2], ']');
    EXPECT_NE(j.find("\"benchmark\": \"hmmer\""), std::string::npos);
    EXPECT_NE(j.find("\"scenario\": \"rsep\""), std::string::npos);
    EXPECT_NE(j.find("\"config_hash\": \""), std::string::npos);
    EXPECT_NE(j.find("\"engine.rsep.shared\": "), std::string::npos);
    // Balanced braces and exactly one object per row.
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ((size_t)std::count(j.begin(), j.end(), '\n'),
              m.stats.size() + 2);
}

TEST(StatExport, TableSinkListsEngineCounters)
{
    const TinyMatrix &m = tinyMatrix();
    std::ostringstream os;
    TableStatSink{}.write(os, m.stats);
    EXPECT_NE(os.str().find("hmmer"), std::string::npos);
    EXPECT_NE(os.str().find("engine.rsep.shared"), std::string::npos);
    EXPECT_EQ(os.str().find("commit_squashes"), std::string::npos)
        << "engines-only table hides raw pipeline counters";
}

} // namespace
} // namespace rsep::sim

/** @file Integration tests of the OoO pipeline and its mechanisms. */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/trace_buffer.hh"
#include "wl/suite.hh"

namespace rsep::core
{
namespace
{

using wl::Emulator;
using wl::Workload;

/** Build an emulator+pipeline for a named workload. */
struct Rig
{
    Workload w;
    Emulator em;
    Pipeline pipe;

    Rig(const std::string &name, const MechConfig &mech, u32 phase = 0)
        : w(wl::makeWorkload(name)), em(w.program),
          pipe(CoreParams{}, mech, em, 77)
    {
        em.resetArchState();
        w.init(em, phase);
    }
};

TEST(TraceBuffer, IndexedAccessAndTrim)
{
    Workload w = wl::makeWorkload("namd");
    Emulator em(w.program);
    em.resetArchState();
    w.init(em, 0);
    TraceBuffer tb(em);
    const wl::DynRecord r5 = tb.at(5);
    const wl::DynRecord r2 = tb.at(2); // rewind read.
    EXPECT_EQ(tb.at(5).staticIdx, r5.staticIdx);
    EXPECT_EQ(tb.at(2).staticIdx, r2.staticIdx);
    tb.trimBelow(4);
    EXPECT_EQ(tb.baseIndex(), 4u);
    EXPECT_EQ(tb.at(5).staticIdx, r5.staticIdx);
}

TEST(Pipeline, CommitsAtLeastRequestedInstructions)
{
    // Commit groups are up to 8 wide, so run() may overshoot by at
    // most one group.
    Rig rig("namd", MechConfig{});
    rig.pipe.run(5000);
    u64 first = rig.pipe.stats().committedInsts.value();
    EXPECT_GE(first, 5000u);
    EXPECT_LT(first, 5008u);
    rig.pipe.run(2500);
    u64 second = rig.pipe.stats().committedInsts.value();
    EXPECT_GE(second, first + 2500);
    EXPECT_LT(second, first + 2508);
}

TEST(Pipeline, IpcWithinPhysicalBounds)
{
    Rig rig("namd", MechConfig{});
    rig.pipe.run(30000);
    double ipc = rig.pipe.stats().ipc();
    EXPECT_GT(ipc, 0.01);
    EXPECT_LE(ipc, 8.0); // cannot exceed machine width.
}

TEST(Pipeline, ResetStatsClearsCounters)
{
    Rig rig("namd", MechConfig{});
    rig.pipe.run(2000);
    rig.pipe.resetStats();
    EXPECT_EQ(rig.pipe.stats().committedInsts.value(), 0u);
    EXPECT_EQ(rig.pipe.stats().cycles.value(), 0u);
    rig.pipe.run(1000);
    EXPECT_EQ(rig.pipe.stats().committedInsts.value(), 1000u);
}

TEST(Pipeline, RegisterConservationBaseline)
{
    Rig rig("gobmk", MechConfig{});
    for (int i = 0; i < 10; ++i) {
        rig.pipe.run(3000);
        ASSERT_TRUE(rig.pipe.checkRegisterConservation());
    }
}

TEST(Pipeline, RegisterConservationWithSharing)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    // dealII exercises heavy sharing; omnetpp exercises moves.
    for (const char *bench : {"dealII", "omnetpp", "hmmer"}) {
        Rig rig(bench, mech);
        for (int i = 0; i < 6; ++i) {
            rig.pipe.run(5000);
            ASSERT_TRUE(rig.pipe.checkRegisterConservation()) << bench;
        }
    }
}

TEST(Pipeline, RegisterConservationWithAllMechanisms)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.zeroPred = true;
    mech.equalityPred = true;
    mech.valuePred = true;
    mech.rsep = equality::RsepConfig::realistic();
    Rig rig("xalancbmk", mech);
    for (int i = 0; i < 6; ++i) {
        rig.pipe.run(5000);
        ASSERT_TRUE(rig.pipe.checkRegisterConservation());
    }
}

TEST(Pipeline, ZeroIdiomsEliminatedInBaseline)
{
    // The interp kernel executes 'movi x7, 0' zero idioms.
    Rig rig("perlbench", MechConfig{});
    rig.pipe.run(30000);
    EXPECT_GT(rig.pipe.stats().zeroIdiomElim.value(), 0u);
}

TEST(Pipeline, MoveEliminationCoversMoves)
{
    MechConfig mech;
    mech.moveElim = true;
    Rig rig("xalancbmk", mech);
    rig.pipe.run(30000);
    EXPECT_GT(rig.pipe.stats().moveElim.value(), 1000u);
    ASSERT_TRUE(rig.pipe.checkRegisterConservation());
}

TEST(Pipeline, EqualityPredictionIsAccurate)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    Rig rig("mcf", mech);
    rig.pipe.run(60000);
    const auto &st = rig.pipe.stats();
    u64 correct = st.rsepCorrect.value();
    u64 wrong = st.rsepMispredicts.value();
    ASSERT_GT(correct, 1000u) << "expected substantial coverage on mcf";
    // Paper Section VI-B: accuracy always > 99.5%.
    EXPECT_GT(double(correct) / double(correct + wrong), 0.995);
}

TEST(Pipeline, ZeroPredictionFindsAlwaysZeroInstructions)
{
    MechConfig mech;
    mech.zeroPred = true;
    Rig rig("gamess", mech);
    rig.pipe.run(60000);
    const auto &st = rig.pipe.stats();
    EXPECT_GT(st.zeroPredOther.value(), 1000u);
    u64 wrong = st.zeroMispredicts.value();
    u64 correct = st.zeroCorrect.value();
    EXPECT_GT(double(correct) / double(correct + wrong + 1), 0.99);
}

TEST(Pipeline, ValuePredictionCoversInterpreter)
{
    MechConfig mech;
    mech.valuePred = true;
    Rig rig("perlbench", mech);
    rig.pipe.run(120000);
    const auto &st = rig.pipe.stats();
    u64 vp = st.valuePredOther.value() + st.valuePredLoad.value();
    EXPECT_GT(vp, 5000u);
    u64 wrong = st.vpMispredicts.value();
    EXPECT_GT(double(st.vpCorrect.value()) /
                  double(st.vpCorrect.value() + wrong + 1),
              0.99);
}

TEST(Pipeline, EqualityNeverCorruptsArchitecture)
{
    // Two pipelines over the same workload, one with every speculation
    // mechanism on: committed instruction counts must advance equally
    // and the speculative one must stay squash-consistent.
    MechConfig all;
    all.moveElim = true;
    all.zeroPred = true;
    all.equalityPred = true;
    all.valuePred = true;
    all.rsep = equality::RsepConfig::idealLarge();
    Rig a("libquantum", MechConfig{});
    Rig b("libquantum", all);
    a.pipe.run(40000);
    b.pipe.run(40000);
    // Commit groups may overshoot by <8, but the architectural stream
    // is identical: instruction-class counts track within one group.
    EXPECT_NEAR(double(a.pipe.stats().committedInsts.value()),
                double(b.pipe.stats().committedInsts.value()), 8.0);
    EXPECT_NEAR(double(a.pipe.stats().committedLoads.value()),
                double(b.pipe.stats().committedLoads.value()), 8.0);
    EXPECT_NEAR(double(a.pipe.stats().committedStores.value()),
                double(b.pipe.stats().committedStores.value()), 8.0);
}

TEST(Pipeline, IdealRsepNeverSlowsDownMaterially)
{
    // With ideal validation (the Fig. 4 configuration), RSEP should
    // never lose more than noise on any workload.
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    for (const char *bench : {"bzip2", "namd", "zeusmp", "sjeng"}) {
        Rig base(bench, MechConfig{});
        Rig rsep(bench, mech);
        base.pipe.run(40000);
        rsep.pipe.run(40000);
        double b = base.pipe.stats().ipc();
        double r = rsep.pipe.stats().ipc();
        EXPECT_GT(r / b, 0.985) << bench;
    }
}

TEST(Pipeline, RsepDeliversSpeedupOnEqualityHeavyKernels)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    for (const char *bench : {"dealII", "omnetpp"}) {
        Rig base(bench, MechConfig{});
        Rig rsep(bench, mech);
        // Warm up (predictor training), then measure.
        base.pipe.run(60000);
        base.pipe.resetStats();
        base.pipe.run(60000);
        rsep.pipe.run(60000);
        rsep.pipe.resetStats();
        rsep.pipe.run(60000);
        EXPECT_GT(rsep.pipe.stats().ipc(),
                  base.pipe.stats().ipc() * 1.02)
            << bench;
    }
}

TEST(Pipeline, ValidationPolicyOrdering)
{
    // Fig. 6: ideal >= any-FU >= lock-FU on a load-covered benchmark.
    auto run_with = [](equality::ValidationPolicy pol) {
        MechConfig mech;
        mech.moveElim = true;
        mech.equalityPred = true;
        mech.rsep = equality::RsepConfig::idealLarge();
        mech.rsep.validation = pol;
        Rig rig("mcf", mech);
        rig.pipe.run(40000);
        return rig.pipe.stats().ipc();
    };
    double ideal = run_with(equality::ValidationPolicy::Ideal);
    double any = run_with(equality::ValidationPolicy::Issue2xAnyFu);
    double lock = run_with(equality::ValidationPolicy::Issue2xLockFu);
    EXPECT_GE(ideal * 1.005, any);
    EXPECT_GE(any * 1.02, lock);
}

TEST(Pipeline, SamplingSlowsTraining)
{
    // With commit sampling, fewer training events reach the distance
    // predictor per committed instruction.
    auto train_events = [](bool sampling) {
        MechConfig mech;
        mech.moveElim = true;
        mech.equalityPred = true;
        mech.rsep = equality::RsepConfig::idealLarge();
        mech.rsep.validation = equality::ValidationPolicy::Issue2xAnyFu;
        mech.rsep.sampling = sampling;
        Rig rig("hmmer", mech);
        rig.pipe.run(30000);
        return rig.pipe.distancePredictor().trainEvents.value();
    };
    EXPECT_LT(train_events(true), train_events(false) / 2);
}

TEST(Pipeline, LikelyCandidatesAppearUnderSampling)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::realistic();
    mech.rsep.startTrainThreshold = 15;
    Rig rig("bzip2", mech);
    rig.pipe.run(60000);
    EXPECT_GT(rig.pipe.stats().likelyCandidates.value(), 100u);
}

TEST(Pipeline, DdtVariantRuns)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    mech.rsep.useDdt = true;
    Rig rig("dealII", mech);
    rig.pipe.run(40000);
    EXPECT_GT(rig.pipe.stats().ipc(), 0.1);
    EXPECT_GT(rig.pipe.stats().distPredOther.value() +
                  rig.pipe.stats().distPredLoad.value(),
              0u);
}

TEST(Pipeline, Fig1ProbeCountsRedundancy)
{
    MechConfig mech;
    mech.fig1Probe = true;
    Rig rig("libquantum", mech);
    rig.pipe.run(60000);
    const auto &st = rig.pipe.stats();
    // libquantum: heavy zero production and value reuse (Fig. 1).
    double zero_ratio =
        double(st.fig1ZeroLoad.value() + st.fig1ZeroOther.value()) /
        double(st.committedInsts.value());
    double prf_ratio =
        double(st.fig1InPrfLoad.value() + st.fig1InPrfOther.value()) /
        double(st.committedInsts.value());
    EXPECT_GT(zero_ratio, 0.02);
    EXPECT_GT(prf_ratio, 0.10);
}

TEST(Pipeline, CommitGroupHistogramPopulated)
{
    MechConfig mech;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    Rig rig("lbm", mech);
    rig.pipe.run(30000);
    EXPECT_GT(rig.pipe.stats().commitGroupProducers.samples(), 1000u);
    // lbm retires wide eligible commit groups (Section IV-D): the top
    // buckets of the histogram must be populated.
    EXPECT_GT(rig.pipe.stats().commitGroupProducers.bucket(7) +
                  rig.pipe.stats().commitGroupProducers.bucket(8),
              0u);
}

TEST(Pipeline, ZeroLatencyConfigsDoNotLivelock)
{
    // Scenario files may override any latency to 0, which makes an
    // instruction complete in its own issue cycle — its dependants
    // become eligible mid-issue-scan. The event-driven scheduler must
    // merge those same-cycle wakes into the current pass (the old
    // full-ROB walk reached them naturally); a dropped wake shows up
    // here as the run() livelock panic.
    CoreParams zero_lat;
    zero_lat.intAluLat = 0;
    zero_lat.branchLat = 0;
    zero_lat.storeLat = 0;
    zero_lat.fpAluLat = 0;
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::realistic();
    // milc/libquantum/bzip2 raise memory-order violation squashes
    // under this sizing, covering the end-stage deferred-wake merge.
    for (const char *bench :
         {"hmmer", "mcf", "dealII", "milc", "libquantum", "bzip2"}) {
        Workload w = wl::makeWorkload(bench);
        Emulator em(w.program);
        em.resetArchState();
        w.init(em, 0);
        Pipeline pipe(zero_lat, mech, em, 77);
        pipe.run(60000);
        EXPECT_GE(pipe.stats().committedInsts.value(), 60000u) << bench;
        ASSERT_TRUE(pipe.checkRegisterConservation()) << bench;
    }
}

TEST(Pipeline, IsrbOccupancyStaysBounded)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::realistic();
    Rig rig("hmmer", mech);
    rig.pipe.run(40000);
    EXPECT_LE(rig.pipe.isrb().entriesInUse(), rig.pipe.isrb().capacity());
}

} // namespace
} // namespace rsep::core

/**
 * @file
 * Scenario-layer tests: the registry must reproduce the old factory
 * configs exactly, the text format must round-trip losslessly through
 * parse -> serialize -> parse, diagnostics must name the offending
 * line, and the config hash must be stable, label-independent and
 * field-sensitive.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>

#include "sim/scenario.hh"

namespace rsep::sim
{
namespace
{

/** Full-field equality via the canonical serialization + label. */
void
expectSameConfig(const SimConfig &a, const SimConfig &b)
{
    EXPECT_EQ(configHash(a), configHash(b));
    EXPECT_EQ(a.label, b.label);
}

TEST(ScenarioRegistry, MatchesFactoryFunctions)
{
    // Pin the registry to the retired hard-coded factories: every
    // registered arm must be bit-for-bit the config the old
    // SimConfig::* factory produced.
    auto baseline = findScenario("baseline");
    ASSERT_TRUE(baseline.has_value());
    expectSameConfig(baseline->config, SimConfig::baseline());

    auto rsep = findScenario("rsepIdeal"); // factory-name alias.
    ASSERT_TRUE(rsep.has_value());
    EXPECT_EQ(rsep->name, "rsep");
    expectSameConfig(rsep->config, SimConfig::rsepIdeal());
    expectSameConfig(findScenario("rsep")->config, SimConfig::rsepIdeal());

    expectSameConfig(findScenario("zero-pred")->config,
                     SimConfig::zeroPredOnly());
    expectSameConfig(findScenario("move-elim")->config,
                     SimConfig::moveElimOnly());
    expectSameConfig(findScenario("vpred")->config, SimConfig::vpOnly());
    expectSameConfig(findScenario("rsep+vpred")->config,
                     SimConfig::rsepPlusVp());
    expectSameConfig(findScenario("rsep-realistic")->config,
                     SimConfig::rsepRealistic());
    expectSameConfig(
        findScenario("rsep-val-2x-any")->config,
        SimConfig::rsepValidation(equality::ValidationPolicy::Issue2xAnyFu));
    expectSameConfig(findScenario("rsep-val-2x-sample63")->config,
                     SimConfig::rsepSampling(63));
    expectSameConfig(findScenario("fig1-probe")->config,
                     SimConfig::fig1Probe());

    EXPECT_FALSE(findScenario("no-such-arm").has_value());
    EXPECT_FALSE(registeredScenarios().empty());
}

TEST(ScenarioFormat, ParseSerializeParseRoundTrip)
{
    const char *text =
        "# golden round-trip input\n"
        "[scenario]\n"
        "name = tuned\n"
        "base = rsep-realistic\n"
        "[sim]\n"
        "checkpoints = 4\n"
        "seed = 0xbeef\n"
        "[core]\n"
        "rob_size = 256\n"
        "iq_size = 97   ; trailing comment\n"
        "[mech]\n"
        "zero_pred = true\n"
        "[rsep]\n"
        "history_depth = 256\n"
        "validation = issue2x-lock-fu\n"
        "conf_kind = fpc3\n";

    ScenarioParse p1 = parseScenarioText(text, "golden.scn");
    ASSERT_TRUE(p1.ok()) << p1.error;
    ASSERT_EQ(p1.scenarios.size(), 1u);
    const Scenario &sc = p1.scenarios[0];
    EXPECT_EQ(sc.name, "tuned");
    EXPECT_EQ(sc.config.label, "tuned");
    EXPECT_EQ(sc.config.checkpoints, 4u);
    EXPECT_EQ(sc.config.seed, 0xbeefu);
    EXPECT_EQ(sc.config.core.robSize, 256u);
    EXPECT_EQ(sc.config.core.iqSize, 97u);
    EXPECT_TRUE(sc.config.mech.zeroPred);
    EXPECT_EQ(sc.config.mech.rsep.historyDepth, 256u);
    EXPECT_EQ(sc.config.mech.rsep.validation,
              equality::ValidationPolicy::Issue2xLockFu);
    EXPECT_EQ(sc.config.mech.rsep.confKind, ConfidenceKind::Fpc3);
    // Inherited from the rsep-realistic base.
    EXPECT_FALSE(sc.config.mech.rsep.idealPredictor);
    EXPECT_TRUE(sc.config.mech.rsep.sampling);

    std::string s1 = serializeScenario(sc);
    ScenarioParse p2 = parseScenarioText(s1, "reserialized");
    ASSERT_TRUE(p2.ok()) << p2.error;
    ASSERT_EQ(p2.scenarios.size(), 1u);
    std::string s2 = serializeScenario(p2.scenarios[0]);

    EXPECT_EQ(s1, s2); // lossless: canonical form is a fixpoint.
    expectSameConfig(sc.config, p2.scenarios[0].config);
}

TEST(ScenarioFormat, MultiScenarioFilesAndLabels)
{
    const char *text =
        "[scenario]\n"
        "name = a\n"
        "[scenario]\n"
        "name = b\n"
        "label = pretty-b\n"
        "[sim]\n"
        "checkpoints = 1\n";
    ScenarioParse p = parseScenarioText(text);
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.scenarios.size(), 2u);
    EXPECT_EQ(p.scenarios[0].config.label, "a");
    EXPECT_EQ(p.scenarios[1].name, "b");
    EXPECT_EQ(p.scenarios[1].config.label, "pretty-b");

    // Non-mirroring labels survive the round-trip too.
    ScenarioParse p2 = parseScenarioText(serializeScenarios(p.scenarios));
    ASSERT_TRUE(p2.ok()) << p2.error;
    ASSERT_EQ(p2.scenarios.size(), 2u);
    EXPECT_EQ(p2.scenarios[1].config.label, "pretty-b");

    // An explicit label wins whatever its position relative to 'base'
    // (the base config carries its own label, which must not leak).
    ScenarioParse p3 = parseScenarioText(
        "[scenario]\nname = x\nlabel = pretty\nbase = rsep\n");
    ASSERT_TRUE(p3.ok()) << p3.error;
    EXPECT_EQ(p3.scenarios[0].config.label, "pretty");
    ScenarioParse p4 =
        parseScenarioText("[scenario]\nname = y\nbase = rsep\n");
    ASSERT_TRUE(p4.ok()) << p4.error;
    EXPECT_EQ(p4.scenarios[0].config.label, "y")
        << "base label must not leak into an unlabelled scenario";
}

TEST(ScenarioFormat, Diagnostics)
{
    auto errorOf = [](const char *text) {
        ScenarioParse p = parseScenarioText(text, "t.scn");
        EXPECT_FALSE(p.ok());
        return p.error;
    };

    EXPECT_NE(errorOf("[scenario]\nname = x\n[rsep]\nbogus = 1\n")
                  .find("t.scn:4: unknown key 'bogus' in [rsep]"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\n[sim]\ncheckpoints = soon\n")
                  .find("expected an unsigned 32-bit integer"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\n[mech]\nzero_pred = treu\n")
                  .find("expected a boolean"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\n[rsep]\nvalidation = later\n")
                  .find("issue2x-any-fu"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\n[turbo]\nz = 1\n")
                  .find("unknown section"),
              std::string::npos);
    EXPECT_NE(errorOf("[sim]\ncheckpoints = 1\n")
                  .find("before any [scenario]"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\nnot a key value line\n")
                  .find("expected 'key = value'"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\n[sim]\ncheckpoints = 1\n")
                  .find("missing a 'name'"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\nbase = nope\n")
                  .find("unknown base scenario 'nope'"),
              std::string::npos);
    EXPECT_NE(errorOf("# only a comment\n").find("no [scenario]"),
              std::string::npos);
    // 'base' is a [scenario]-section key: written after a field
    // section (where it could clobber overrides) it is rejected.
    EXPECT_NE(errorOf("[scenario]\nname = x\n[sim]\ncheckpoints = 9\n"
                      "base = baseline\n")
                  .find("unknown key 'base' in [sim]"),
              std::string::npos);
}

TEST(ScenarioFormat, ScenariosAreIndependent)
{
    // A later scenario starts from scratch, not from its predecessor.
    const char *text =
        "[scenario]\nname = x\n[sim]\ncheckpoints = 9\n"
        "[scenario]\nname = y\nbase = baseline\n";
    ScenarioParse p = parseScenarioText(text);
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.scenarios.size(), 2u);
    EXPECT_EQ(p.scenarios[0].config.checkpoints, 9u);
    EXPECT_NE(p.scenarios[1].config.checkpoints, 9u);
    expectSameConfig(p.scenarios[1].config,
                     [] {
                         SimConfig c = SimConfig::baseline();
                         c.label = "y";
                         return c;
                     }());
}

TEST(ScenarioHash, StableLabelIndependentFieldSensitive)
{
    SimConfig a = SimConfig::rsepIdeal();
    SimConfig b = SimConfig::rsepIdeal();
    EXPECT_EQ(configHash(a), configHash(b));
    EXPECT_EQ(configHash(a).size(), 16u);

    b.label = "renamed";
    EXPECT_EQ(configHash(a), configHash(b)) << "hash ignores the label";

    b.mech.rsep.historyDepth += 1;
    EXPECT_NE(configHash(a), configHash(b));

    SimConfig c = SimConfig::rsepIdeal();
    c.checkpoints += 1;
    EXPECT_NE(configHash(a), configHash(c))
        << "run sizing is part of the result-cache key";
}

TEST(ScenarioOverrides, DottedKeysDriveTheSweepDrivers)
{
    SimConfig cfg = SimConfig::rsepIdeal();
    std::string err;
    EXPECT_TRUE(applyScenarioKey(cfg, "rsep.history_depth", "64", &err))
        << err;
    EXPECT_EQ(cfg.mech.rsep.historyDepth, 64u);
    EXPECT_TRUE(applyScenarioKey(cfg, "core.rob_size", "320", &err));
    EXPECT_EQ(cfg.core.robSize, 320u);
    EXPECT_TRUE(applyScenarioKey(cfg, "sim.seed", "7", &err));
    EXPECT_EQ(cfg.seed, 7u);

    EXPECT_FALSE(applyScenarioKey(cfg, "nodots", "1", &err));
    EXPECT_FALSE(applyScenarioKey(cfg, "rsep.nope", "1", &err));
    EXPECT_NE(err.find("unknown key"), std::string::npos);
    EXPECT_FALSE(applyScenarioKey(cfg, "rsep.sampling", "perhaps", &err));
}

TEST(ScenarioFormat, VpSectionDrivesDvtageGeometry)
{
    // D-VTAGE sweeps from a file, no rebuild: scalar keys, the nested
    // ITTAGE geometry with an itage_ prefix, and array-valued keys as
    // comma lists (unspecified tail components are 0).
    const char *text =
        "[scenario]\n"
        "name = small-vp\n"
        "base = vpred\n"
        "[vp]\n"
        "lvt_bits = 10\n"
        "delta_bits = 8\n"
        "itage_base_bits = 9\n"
        "itage_num_tagged = 4\n"
        "itage_hist_lens = 1, 2, 4, 8\n"
        "itage_tag_bits = 9,9,10,10\n"
        "itage_conf_kind = fpc3\n";
    ScenarioParse p = parseScenarioText(text, "vp.scn");
    ASSERT_TRUE(p.ok()) << p.error;
    const pred::DvtageParams &vp = p.scenarios[0].config.mech.vp;
    EXPECT_EQ(vp.lvtBits, 10u);
    EXPECT_EQ(vp.deltaBits, 8u);
    EXPECT_EQ(vp.itage.baseBits, 9u);
    EXPECT_EQ(vp.itage.numTagged, 4u);
    EXPECT_EQ(vp.itage.histLens,
              (std::array<unsigned, pred::maxItageComps>{1, 2, 4, 8, 0, 0,
                                                         0, 0}));
    EXPECT_EQ(vp.itage.tagBits,
              (std::array<unsigned, pred::maxItageComps>{9, 9, 10, 10, 0,
                                                         0, 0, 0}));
    EXPECT_EQ(vp.itage.confKind, ConfidenceKind::Fpc3);

    // Geometry is part of the config identity.
    EXPECT_NE(configHash(p.scenarios[0].config),
              configHash(findScenario("vpred")->config));

    // Canonical serialization round-trips the arrays.
    ScenarioParse p2 =
        parseScenarioText(serializeScenario(p.scenarios[0]), "rt");
    ASSERT_TRUE(p2.ok()) << p2.error;
    expectSameConfig(p.scenarios[0].config, p2.scenarios[0].config);
    EXPECT_EQ(p2.scenarios[0].config.mech.vp.itage.histLens,
              vp.itage.histLens);

    // Dotted overrides reach the section too (the sweep-driver face).
    SimConfig cfg = SimConfig::vpOnly();
    std::string err;
    EXPECT_TRUE(applyScenarioKey(cfg, "vp.itage_hist_lens", "3,6", &err))
        << err;
    EXPECT_EQ(cfg.mech.vp.itage.histLens[0], 3u);
    EXPECT_EQ(cfg.mech.vp.itage.histLens[1], 6u);
    EXPECT_EQ(cfg.mech.vp.itage.histLens[2], 0u);

    // Array diagnostics: too many entries, junk, an empty list.
    auto errorOf = [](const char *t) {
        ScenarioParse bad = parseScenarioText(t, "t.scn");
        EXPECT_FALSE(bad.ok());
        return bad.error;
    };
    EXPECT_NE(errorOf("[scenario]\nname = x\n[vp]\n"
                      "itage_hist_lens = 1,2,3,4,5,6,7,8,9\n")
                  .find("comma list"),
              std::string::npos);
    EXPECT_NE(errorOf("[scenario]\nname = x\n[vp]\n"
                      "itage_hist_lens = 1,two\n")
                  .find("comma list"),
              std::string::npos);
    EXPECT_NE(
        errorOf("[scenario]\nname = x\n[vp]\nitage_hist_lens =\n")
            .find("comma list"),
        std::string::npos);
}

TEST(ScenarioFormat, RegistryScenariosSerializeLosslessly)
{
    // Every registered arm must survive the text format unchanged —
    // the property that lets scenario files fully replace the old
    // hard-coded config vectors.
    for (const ScenarioInfo &info : registeredScenarios()) {
        auto sc = findScenario(info.name);
        ASSERT_TRUE(sc.has_value()) << info.name;
        ScenarioParse p = parseScenarioText(serializeScenario(*sc),
                                            "roundtrip:" + info.name);
        ASSERT_TRUE(p.ok()) << p.error;
        ASSERT_EQ(p.scenarios.size(), 1u);
        EXPECT_EQ(p.scenarios[0].name, sc->name);
        expectSameConfig(p.scenarios[0].config, sc->config);
    }
}

} // namespace
} // namespace rsep::sim

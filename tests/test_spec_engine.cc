/**
 * @file
 * Unit tests for the SpeculationEngine layer: engine registration from
 * MechConfig, per-engine stat isolation, and a golden cross-check that
 * the engine-based pipeline reproduces the monolithic seed pipeline's
 * IPC and coverage counters exactly on two suite workloads for the
 * Fig. 4 baseline / RSEP / VP arms.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "wl/suite.hh"

namespace rsep::core
{
namespace
{

using sim::RunResult;
using sim::SimConfig;

/** Build an emulator+pipeline for a named workload. */
struct Rig
{
    wl::Workload w;
    wl::Emulator em;
    Pipeline pipe;

    Rig(const std::string &name, const MechConfig &mech, u32 phase = 0)
        : w(wl::makeWorkload(name)), em(w.program),
          pipe(CoreParams{}, mech, em, 77)
    {
        em.resetArchState();
        w.init(em, phase);
    }
};

std::vector<std::string>
engineNames(const Pipeline &pipe)
{
    std::vector<std::string> names;
    for (const auto *e : pipe.engines())
        names.push_back(e->name());
    return names;
}

TEST(SpecEngine, BaselineRegistersOnlyZeroIdiom)
{
    Rig rig("namd", MechConfig{});
    EXPECT_EQ(engineNames(rig.pipe),
              (std::vector<std::string>{"zero-idiom"}));
    EXPECT_NE(rig.pipe.engineByName("zero-idiom"), nullptr);
    EXPECT_EQ(rig.pipe.engineByName("rsep"), nullptr);
    EXPECT_EQ(rig.pipe.engineByName("dvtage"), nullptr);
    EXPECT_EQ(rig.pipe.engineByName("zero-pred"), nullptr);
    EXPECT_EQ(rig.pipe.engineByName("move-elim"), nullptr);
}

TEST(SpecEngine, RegistrationFollowsMechConfigInPriorityOrder)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.valuePred = true;
    Rig rig("namd", mech);
    EXPECT_EQ(engineNames(rig.pipe),
              (std::vector<std::string>{"zero-idiom", "move-elim", "rsep",
                                        "dvtage"}));

    MechConfig zp;
    zp.zeroIdiomElim = false;
    zp.zeroPred = true;
    Rig rig2("namd", zp);
    EXPECT_EQ(engineNames(rig2.pipe),
              (std::vector<std::string>{"zero-pred"}));
}

TEST(SpecEngine, DisabledEngineStructuresRemainInspectable)
{
    // Engines are constructed in every configuration; only registration
    // is gated. The structure accessors must work even when the
    // mechanism is off.
    Rig rig("namd", MechConfig{});
    EXPECT_EQ(rig.pipe.distancePredictor().lookups.value(), 0u);
    EXPECT_EQ(rig.pipe.valuePredictor().lookup(0x40, {}).confident, false);
}

TEST(SpecEngine, PerEngineStatsMirrorAggregateCounters)
{
    MechConfig mech;
    mech.moveElim = true;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    mech.valuePred = true;
    Rig rig("hmmer", mech);
    rig.pipe.run(60'000);

    const PipelineStats &st = rig.pipe.stats();
    SpeculationEngine *rsep = rig.pipe.engineByName("rsep");
    SpeculationEngine *vp = rig.pipe.engineByName("dvtage");
    SpeculationEngine *zi = rig.pipe.engineByName("zero-idiom");
    SpeculationEngine *me = rig.pipe.engineByName("move-elim");
    ASSERT_NE(rsep, nullptr);
    ASSERT_NE(vp, nullptr);
    ASSERT_NE(zi, nullptr);
    ASSERT_NE(me, nullptr);

    EXPECT_EQ(rsep->statValue("shared"), st.rsepCorrect.value());
    EXPECT_EQ(rsep->statValue("mispredicts"), st.rsepMispredicts.value());
    EXPECT_EQ(vp->statValue("correct"), st.vpCorrect.value());
    EXPECT_EQ(vp->statValue("mispredicts"), st.vpMispredicts.value());
    EXPECT_EQ(zi->statValue("eliminated"), st.zeroIdiomElim.value());
    EXPECT_EQ(me->statValue("eliminated"), st.moveElim.value());
    // The workload must actually exercise the machinery for the above
    // to be meaningful.
    EXPECT_GT(st.committedInsts.value(), 0u);
    EXPECT_GT(rsep->statValue("shared") + vp->statValue("correct"), 0u);
}

TEST(SpecEngine, StatsAreIsolatedPerPipelineInstance)
{
    MechConfig mech;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    Rig active("hmmer", mech);
    Rig idle("hmmer", mech);
    active.pipe.run(40'000);

    SpeculationEngine *hot = active.pipe.engineByName("rsep");
    SpeculationEngine *cold = idle.pipe.engineByName("rsep");
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(cold, nullptr);
    EXPECT_GT(hot->statValue("shared") + hot->statValue("likelyCandidates") +
                  hot->statValue("shareFailNoProducer"),
              0u);
    for (const auto &entry : cold->statEntries())
        EXPECT_EQ(entry.counter->value(), 0u) << entry.name;
}

TEST(SpecEngine, ResetStatsZeroesEngineCounters)
{
    MechConfig mech;
    mech.equalityPred = true;
    mech.rsep = equality::RsepConfig::idealLarge();
    Rig rig("hmmer", mech);
    rig.pipe.run(40'000);
    rig.pipe.resetStats();
    for (const auto *e : rig.pipe.engines())
        for (const auto &entry : e->statEntries())
            EXPECT_EQ(entry.counter->value(), 0u)
                << e->name() << "." << entry.name;
    EXPECT_EQ(rig.pipe.stats().committedInsts.value(), 0u);
}

// ------------------------------------------------------- golden check

/**
 * Golden values recorded from the pre-refactor monolithic pipeline
 * (seed commit, same compiler and flags) with warmup=20k, measure=60k,
 * checkpoints=2, seed=0x5eed. The engine-based pipeline must reproduce
 * them exactly: same IPC, same cycle count, same coverage counters.
 */
struct GoldenRow
{
    const char *bench;
    const char *label;
    double ipcHmean;
    u64 cycles, committedInsts, zeroIdiomElim, moveElim;
    u64 distPredOther, distPredLoad, valuePredOther, valuePredLoad;
    u64 rsepMispredicts, vpMispredicts;
};

const GoldenRow kGolden[] = {
    {"namd", "baseline", 0.94292538814507509, 127272, 120008, 2, 0, 0, 0, 0, 0, 0, 0},
    {"namd", "rsep", 0.94292538814507509, 127272, 120008, 2, 0, 0, 0, 0, 0, 0, 0},
    {"namd", "vpred", 0.94209633862965525, 127384, 120008, 2, 0, 0, 0, 9994, 0, 0, 2},
    {"namd", "rsep+vpred", 0.94209633862965525, 127384, 120008, 2, 0, 0, 0, 9994, 0, 0, 2},
    {"hmmer", "baseline", 1.0781241577576139, 111310, 120006, 6, 0, 0, 0, 0, 0, 0, 0},
    {"hmmer", "rsep", 1.0817886625387327, 110932, 120005, 6, 0, 32530, 0, 0, 0, 30, 0},
    {"hmmer", "vpred", 1.0789688300977134, 111221, 120004, 6, 0, 0, 0, 38597, 0, 0, 36},
    {"hmmer", "rsep+vpred", 1.0775840652072517, 111363, 120003, 6, 0, 33863, 0, 13907, 0, 22, 36},
};

SimConfig
pinned(SimConfig c)
{
    // Pin the run length explicitly so RSEP_SIM_SCALE / RSEP_CHECKPOINTS
    // in the environment cannot perturb the golden comparison.
    c.warmupInsts = 20'000;
    c.measureInsts = 60'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

SimConfig
armByLabel(const std::string &label)
{
    if (label == "baseline")
        return pinned(SimConfig::baseline());
    if (label == "rsep")
        return pinned(SimConfig::rsepIdeal());
    if (label == "vpred")
        return pinned(SimConfig::vpOnly());
    if (label == "rsep+vpred")
        return pinned(SimConfig::rsepPlusVp());
    ADD_FAILURE() << "unknown golden arm " << label;
    return pinned(SimConfig::baseline());
}

TEST(SpecEngineGolden, RefactoredPipelineMatchesSeedCounters)
{
    for (const GoldenRow &g : kGolden) {
        SCOPED_TRACE(std::string(g.bench) + "/" + g.label);
        RunResult r = sim::runWorkload(armByLabel(g.label), g.bench);
        EXPECT_NEAR(r.ipcHmean(), g.ipcHmean, 1e-12);
        EXPECT_EQ(r.sum(&PipelineStats::cycles), g.cycles);
        EXPECT_EQ(r.sum(&PipelineStats::committedInsts), g.committedInsts);
        EXPECT_EQ(r.sum(&PipelineStats::zeroIdiomElim), g.zeroIdiomElim);
        EXPECT_EQ(r.sum(&PipelineStats::moveElim), g.moveElim);
        EXPECT_EQ(r.sum(&PipelineStats::distPredOther), g.distPredOther);
        EXPECT_EQ(r.sum(&PipelineStats::distPredLoad), g.distPredLoad);
        EXPECT_EQ(r.sum(&PipelineStats::valuePredOther), g.valuePredOther);
        EXPECT_EQ(r.sum(&PipelineStats::valuePredLoad), g.valuePredLoad);
        EXPECT_EQ(r.sum(&PipelineStats::rsepMispredicts), g.rsepMispredicts);
        EXPECT_EQ(r.sum(&PipelineStats::vpMispredicts), g.vpMispredicts);
    }
}

} // namespace
} // namespace rsep::core

/**
 * @file
 * Shard-partitioning tests: the `--shard i/N` grammar is strict, the
 * partition of the (benchmark x config) run-cell list is disjoint and
 * complete for any N, assignment is stable under scenario additions
 * (the property that keeps grown sweeps from reshuffling cached or
 * exported shards), and a sharded runMatrix marks exactly its slice.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/shard.hh"

namespace rsep::sim
{
namespace
{

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 1'000;
    c.measureInsts = 3'000;
    c.checkpoints = 1;
    c.seed = 0x5eed;
    return c;
}

TEST(Shard, ParseShardValue)
{
    ShardSpec s;
    std::string err;

    EXPECT_TRUE(parseShardValue("0/1", s, err)) << err;
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 1u);
    EXPECT_FALSE(s.active());

    EXPECT_TRUE(parseShardValue("3/8", s, err)) << err;
    EXPECT_EQ(s.index, 3u);
    EXPECT_EQ(s.count, 8u);
    EXPECT_TRUE(s.active());

    // (Hex is fine — the repo's number grammar accepts it everywhere,
    // so "0x1/4" is simply shard 1 of 4.)
    for (const char *bad : {"", "2", "/", "1/", "/2", "a/b", "-1/2",
                            "2/2", "5/4", "1/0", "1/99999", "1/2/3",
                            "1 /4x"}) {
        err.clear();
        EXPECT_FALSE(parseShardValue(bad, s, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Shard, PartitionIsDisjointAndComplete)
{
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepIdeal()),
                                      shrunk(SimConfig::vpOnly())};
    std::vector<std::string> benches = {"hmmer", "mcf", "namd", "astar",
                                        "bzip2", "gcc", "omnetpp"};

    for (unsigned count : {1u, 2u, 3u, 5u}) {
        std::set<std::pair<size_t, size_t>> seen;
        size_t selected_total = 0;
        for (unsigned i = 0; i < count; ++i) {
            ShardPlan plan = planShard(configs, benches, {i, count});
            EXPECT_EQ(plan.totalRuns, benches.size() * configs.size());
            selected_total += plan.selectedRuns;
            for (size_t b = 0; b < benches.size(); ++b)
                for (size_t c = 0; c < configs.size(); ++c)
                    if (plan.selected[b][c])
                        EXPECT_TRUE(seen.insert({b, c}).second)
                            << "cell (" << b << "," << c
                            << ") owned by two shards at N=" << count;
        }
        // Complete: every cell owned by exactly one shard.
        EXPECT_EQ(seen.size(), benches.size() * configs.size())
            << "N=" << count;
        EXPECT_EQ(selected_total, benches.size() * configs.size());
    }
}

TEST(Shard, AssignmentIsStableUnderScenarioAdditions)
{
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepIdeal())};
    std::vector<std::string> benches = {"hmmer", "mcf", "namd", "astar"};

    constexpr unsigned count = 4;
    std::vector<std::vector<std::vector<bool>>> before;
    for (unsigned i = 0; i < count; ++i)
        before.push_back(planShard(configs, benches, {i, count}).selected);

    // Grow the matrix: new scenarios AND new benchmarks.
    std::vector<SimConfig> more = configs;
    more.push_back(shrunk(SimConfig::rsepRealistic()));
    more.push_back(shrunk(SimConfig::vpOnly()));
    std::vector<std::string> more_benches = benches;
    more_benches.push_back("omnetpp");

    for (unsigned i = 0; i < count; ++i) {
        ShardPlan after = planShard(more, more_benches, {i, count});
        for (size_t b = 0; b < benches.size(); ++b)
            for (size_t c = 0; c < configs.size(); ++c)
                EXPECT_EQ(after.selected[b][c], before[i][b][c])
                    << "cell (" << benches[b] << ", config " << c
                    << ") moved shards when the matrix grew";
    }

    // Identity-hash sanity: assignment keys on the config *hash*, so a
    // relabelled copy of a config lands on the same shard.
    SimConfig relabelled = configs[1];
    relabelled.label = "renamed-arm";
    EXPECT_EQ(shardOf("hmmer", configHash(configs[1]), count),
              shardOf("hmmer", configHash(relabelled), count));
    EXPECT_NE(cellIdentityHash("ab", "c"), cellIdentityHash("a", "bc"));
}

TEST(Shard, ShardedMatrixRunsExactlyItsSlice)
{
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepIdeal())};
    std::vector<std::string> benches = {"hmmer", "mcf", "namd"};

    MatrixOptions base;
    base.jobs = 2;
    base.progress = false;
    auto full = runMatrix(configs, benches, base);

    size_t across_shards = 0;
    for (unsigned i = 0; i < 2; ++i) {
        MatrixOptions opts = base;
        opts.shard = {i, 2};
        auto rows = runMatrix(configs, benches, opts);
        ShardPlan plan = planShard(configs, benches, opts.shard);
        for (size_t b = 0; b < benches.size(); ++b) {
            for (size_t c = 0; c < configs.size(); ++c) {
                const RunResult &rr = rows[b].byConfig[c];
                EXPECT_EQ(rr.inShard, plan.selected[b][c]);
                if (!rr.inShard) {
                    EXPECT_TRUE(rr.phases.empty());
                    continue;
                }
                ++across_shards;
                // The shard's cells are bit-identical to the
                // unsharded run's (same per-cell seeding).
                const RunResult &ref = full[b].byConfig[c];
                ASSERT_EQ(rr.phases.size(), ref.phases.size());
                for (size_t p = 0; p < rr.phases.size(); ++p) {
                    EXPECT_EQ(rr.phases[p].ipc, ref.phases[p].ipc);
                    EXPECT_EQ(rr.phases[p].stats.cycles.value(),
                              ref.phases[p].stats.cycles.value());
                }
            }
        }
    }
    EXPECT_EQ(across_shards, benches.size() * configs.size());
}

} // namespace
} // namespace rsep::sim

/**
 * @file
 * Trace data-path tests: MmapFile (mapping + read fallback are
 * indistinguishable to consumers), the zero-copy readers (mmap'd and
 * in-memory parses are byte-identical, SoA and AoS decodes agree
 * record for record, corruption diagnostics survive the move to
 * mmap), and DecodedTraceCache (hit/miss/keying/eviction semantics,
 * decode-once under concurrency, shared snapshots across runMatrix
 * cells for both --steal granularities).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <stdlib.h>
#include <unistd.h>

#include "common/mmap_file.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "wl/trace_cache.hh"
#include "wl/trace_io.hh"

namespace fs = std::filesystem;

namespace rsep
{
namespace
{

std::string
scratchDir(const std::string &tag)
{
    std::string dir = (fs::temp_directory_path() /
                       ("rsep_tcache_test_" + tag + "_" +
                        std::to_string(::getpid())))
                          .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good()) << path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::vector<wl::DynRecord>
sampleRecords(size_t n)
{
    std::vector<wl::DynRecord> recs;
    for (size_t i = 0; i < n; ++i) {
        wl::DynRecord r;
        r.staticIdx = static_cast<u32>(i % 37);
        r.nextIdx = static_cast<u32>((i + 1) % 37);
        r.result = 0x0123456789abcdefull ^ (static_cast<u64>(i) << 17);
        r.effAddr = i % 3 ? 0x10000000 + i * 8 : 0;
        r.taken = i % 5 == 0;
        recs.push_back(r);
    }
    return recs;
}

wl::TraceHeader
sampleHeader(u64 records, unsigned version = wl::traceFormatVersion)
{
    wl::TraceHeader h;
    h.version = version;
    h.workload = "sample";
    h.workloadHash = "0123456789abcdef";
    h.phase = 2;
    h.programLength = 37;
    h.records = records;
    return h;
}

/** Write a sample trace; returns its path. */
std::string
writeSample(const std::string &dir, size_t records, unsigned version,
            u32 phase = 2)
{
    auto recs = sampleRecords(records);
    wl::TraceHeader h = sampleHeader(recs.size(), version);
    h.phase = phase;
    std::string path = wl::tracePath(dir, h.workload, phase);
    std::string err;
    EXPECT_TRUE(wl::writeTraceFile(path, h, recs, &err)) << err;
    return path;
}

// -------------------------------------------------------- MmapFile

TEST(MmapFile, MapsRegularFilesAndReportsErrors)
{
    std::string dir = scratchDir("mmap_basic");
    std::string path = dir + "/blob.bin";
    std::string content(100000, '\0');
    for (size_t i = 0; i < content.size(); ++i)
        content[i] = static_cast<char>(i * 131 + 7);
    writeFile(path, content);

    MmapFile f;
    std::string err;
    ASSERT_TRUE(f.open(path, &err)) << err;
    EXPECT_TRUE(f.ok());
    EXPECT_TRUE(f.mapped()); // non-empty regular file on a normal fs.
    EXPECT_EQ(f.view(), std::string_view(content));

    // Reopen releases the old mapping and serves the new file.
    std::string path2 = dir + "/blob2.bin";
    writeFile(path2, "tiny");
    ASSERT_TRUE(f.open(path2, &err)) << err;
    EXPECT_EQ(f.view(), "tiny");

    std::string missing_err;
    MmapFile g;
    EXPECT_FALSE(g.open(dir + "/nope.bin", &missing_err));
    EXPECT_FALSE(g.ok());
    EXPECT_NE(missing_err.find("nope.bin"), std::string::npos);

    f.close();
    EXPECT_FALSE(f.ok());
    EXPECT_TRUE(f.view().empty());
    fs::remove_all(dir);
}

TEST(MmapFile, EmptyFileUsesFallbackAndYieldsEmptyView)
{
    std::string dir = scratchDir("mmap_empty");
    std::string path = dir + "/empty.bin";
    writeFile(path, "");
    MmapFile f;
    std::string err;
    ASSERT_TRUE(f.open(path, &err)) << err; // mmap(0) is EINVAL: fallback.
    EXPECT_TRUE(f.ok());
    EXPECT_FALSE(f.mapped());
    EXPECT_TRUE(f.view().empty());
    fs::remove_all(dir);
}

TEST(MmapFile, MoveTransfersTheView)
{
    std::string dir = scratchDir("mmap_move");
    std::string path = dir + "/blob.bin";
    writeFile(path, "move me");
    MmapFile a;
    ASSERT_TRUE(a.open(path));
    MmapFile b(std::move(a));
    EXPECT_FALSE(a.ok());
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(b.view(), "move me");
    fs::remove_all(dir);
}

TEST(MmapFileDeathTest, NoMmapFallbackIsByteIdentical)
{
    // RSEP_NO_MMAP is resolved once per process, so the fallback is
    // exercised in a fresh process (threadsafe death test re-executes
    // the binary) with the override set before the first open.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string dir = scratchDir("mmap_nofallback");
    std::string path = writeSample(dir, 500, 2);
    std::string expected = slurp(path);
    EXPECT_EXIT(
        {
            ::setenv("RSEP_NO_MMAP", "1", 1);
            MmapFile f;
            std::string err;
            if (!f.open(path, &err))
                ::exit(2);
            if (f.mapped()) // override must force the read path.
                ::exit(3);
            if (f.view() != std::string_view(expected))
                ::exit(4);
            // The fallback feeds the same bytes through the same
            // parser: the decode must succeed identically.
            wl::TraceParse p = wl::parseTrace(f.view(), path);
            ::exit(p.ok() && p.records.size() == 500 ? 0 : 5);
        },
        ::testing::ExitedWithCode(0), "");
    fs::remove_all(dir);
}

// ------------------------------------------- zero-copy trace readers

TEST(TraceZeroCopy, MmapAndStreamParsesAreByteIdenticalV1AndV2)
{
    std::string dir = scratchDir("zc_identity");
    for (unsigned version : {1u, 2u}) {
        std::string path = writeSample(dir, 800, version,
                                       /*phase=*/version);
        // Stream read (the pre-mmap data path) vs the MmapFile reader.
        wl::TraceParse viaStream = wl::parseTrace(slurp(path), path);
        wl::TraceParse viaMmap = wl::readTraceFile(path);
        ASSERT_TRUE(viaStream.ok()) << viaStream.error;
        ASSERT_TRUE(viaMmap.ok()) << viaMmap.error;
        EXPECT_EQ(viaMmap.header.version, version);
        EXPECT_EQ(viaMmap.payloadChecksum, viaStream.payloadChecksum);
        ASSERT_EQ(viaMmap.records.size(), viaStream.records.size());
        for (size_t i = 0; i < viaMmap.records.size(); ++i) {
            EXPECT_EQ(viaMmap.records[i].staticIdx,
                      viaStream.records[i].staticIdx) << i;
            EXPECT_EQ(viaMmap.records[i].nextIdx,
                      viaStream.records[i].nextIdx) << i;
            EXPECT_EQ(viaMmap.records[i].result,
                      viaStream.records[i].result) << i;
            EXPECT_EQ(viaMmap.records[i].effAddr,
                      viaStream.records[i].effAddr) << i;
            EXPECT_EQ(viaMmap.records[i].taken,
                      viaStream.records[i].taken) << i;
        }
        // Re-serializing the mmap parse reproduces the file exactly.
        EXPECT_EQ(wl::serializeTrace(viaMmap.header, viaMmap.records),
                  slurp(path));
    }
    fs::remove_all(dir);
}

TEST(TraceZeroCopy, SoaDecodeAgreesWithAosRecordForRecord)
{
    std::string dir = scratchDir("zc_soa");
    for (unsigned version : {1u, 2u}) {
        std::string path = writeSample(dir, 600, version,
                                       /*phase=*/version);
        wl::TraceParse aos = wl::readTraceFile(path);
        wl::DecodedTraceParse soa = wl::loadDecodedTrace(path);
        ASSERT_TRUE(aos.ok()) << aos.error;
        ASSERT_TRUE(soa.ok()) << soa.error;
        EXPECT_EQ(soa.trace->payloadChecksum, aos.payloadChecksum);
        EXPECT_EQ(soa.trace->header.records, aos.header.records);
        ASSERT_EQ(soa.trace->size(), aos.records.size());
        for (size_t i = 0; i < aos.records.size(); ++i) {
            wl::DynRecord r = soa.trace->recordAt(i);
            EXPECT_EQ(r.staticIdx, aos.records[i].staticIdx) << i;
            EXPECT_EQ(r.nextIdx, aos.records[i].nextIdx) << i;
            EXPECT_EQ(r.result, aos.records[i].result) << i;
            EXPECT_EQ(r.effAddr, aos.records[i].effAddr) << i;
            EXPECT_EQ(r.taken, aos.records[i].taken) << i;
        }
        EXPECT_EQ(soa.trace->decodedBytes(),
                  aos.records.size() * wl::DecodedTrace::bytesPerRecord);
    }
    fs::remove_all(dir);
}

TEST(TraceZeroCopy, OnDiskCorruptionDiagnosticsSurviveTheMmapPath)
{
    std::string dir = scratchDir("zc_corrupt");
    std::string path = writeSample(dir, 300, 2);
    std::string image = slurp(path);

    auto errOfFile = [&](const std::string &tag, std::string img) {
        std::string p = dir + "/" + tag + ".rtr";
        writeFile(p, img);
        wl::TraceParse t = wl::readTraceFile(p);
        EXPECT_FALSE(t.ok()) << tag;
        // The SoA loader rejects the same bytes the same way.
        wl::DecodedTraceParse d = wl::loadDecodedTrace(p);
        EXPECT_FALSE(d.ok()) << tag;
        return t.error;
    };

    // Truncations at every structural boundary: mid-header, mid-payload,
    // mid-trailer, empty.
    EXPECT_NE(errOfFile("t1", image.substr(0, 30)).find("bad"),
              std::string::npos);
    EXPECT_NE(errOfFile("t2", image.substr(0, image.size() - 40))
                  .find("truncated"),
              std::string::npos);
    EXPECT_NE(errOfFile("t3", image.substr(0, image.size() - 5))
                  .find("truncated"),
              std::string::npos);
    EXPECT_FALSE(errOfFile("t4", "").empty());

    // Flipped payload byte.
    std::string flip = image;
    flip[image.find("payload\n") + 8 + 50] ^= 0x20;
    EXPECT_NE(errOfFile("t5", flip).find("checksum mismatch"),
              std::string::npos);

    // Absurd record count (the reserve-abort guard).
    std::string lie = image;
    size_t at = lie.find("records = 300");
    lie.replace(at, 13, "records = 99999999999999");
    EXPECT_NE(errOfFile("t6", lie).find("exceeds"), std::string::npos);

    fs::remove_all(dir);
}

// ---------------------------------------------- DecodedTraceCache

TEST(DecodedTraceCache, MissThenHitSharesOneSnapshot)
{
    std::string dir = scratchDir("cache_hit");
    std::string path = writeSample(dir, 400, 2);

    wl::DecodedTraceCache cache;
    auto a = cache.get(path);
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_FALSE(a.hit);
    auto b = cache.get(path);
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_TRUE(b.hit);
    EXPECT_EQ(a.trace.get(), b.trace.get()); // the same decoded object.

    auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.residentBytes, a.trace->decodedBytes());

    cache.resetStats();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().residentBytes, a.trace->decodedBytes());
    fs::remove_all(dir);
}

TEST(DecodedTraceCache, OverwrittenFileMissesByChecksumKey)
{
    std::string dir = scratchDir("cache_key");
    std::string path = writeSample(dir, 200, 2);
    wl::DecodedTraceCache cache;
    auto a = cache.get(path);
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_EQ(a.trace->size(), 200u);

    // Same path, new bytes (e.g. re-recorded at a bigger sizing): the
    // checksum key must force a fresh decode, never stale records.
    writeSample(dir, 250, 2);
    auto b = cache.get(path);
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_FALSE(b.hit);
    EXPECT_EQ(b.trace->size(), 250u);
    EXPECT_EQ(cache.stats().misses, 2u);
    // The old snapshot the first caller holds is untouched.
    EXPECT_EQ(a.trace->size(), 200u);
    fs::remove_all(dir);
}

TEST(DecodedTraceCache, LruEvictionIsBoundedAndKeepsInUseDataAlive)
{
    std::string dir = scratchDir("cache_lru");
    std::string p0 = writeSample(dir, 1000, 2, /*phase=*/0);
    std::string p1 = writeSample(dir, 1000, 2, /*phase=*/1);
    std::string p2 = writeSample(dir, 1000, 2, /*phase=*/2);

    const u64 one = 1000 * wl::DecodedTrace::bytesPerRecord;
    wl::DecodedTraceCache cache(/*capacity_bytes=*/2 * one);
    auto a = cache.get(p0);
    auto b = cache.get(p1);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(cache.stats().residentBytes, 2 * one);

    // Touch p0 so p1 is the LRU victim when p2 lands.
    EXPECT_TRUE(cache.get(p0).hit);
    auto c = cache.get(p2);
    ASSERT_TRUE(c.ok());
    auto s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.residentBytes, 2 * one);
    EXPECT_TRUE(cache.get(p0).hit);   // survived (recently used).
    EXPECT_FALSE(cache.get(p1).hit);  // evicted: decodes again.
    // The evicted snapshot `b` holds is still fully usable.
    EXPECT_EQ(b.trace->size(), 1000u);
    EXPECT_EQ(b.trace->recordAt(999).nextIdx,
              sampleRecords(1000)[999].nextIdx);

    // Capacity 0 = unlimited: no evictions however much lands.
    wl::DecodedTraceCache unbounded(0);
    unbounded.get(p0);
    unbounded.get(p1);
    unbounded.get(p2);
    EXPECT_EQ(unbounded.stats().evictions, 0u);
    fs::remove_all(dir);
}

TEST(DecodedTraceCache, CorruptFilesAreNotCached)
{
    std::string dir = scratchDir("cache_err");
    std::string path = writeSample(dir, 100, 2);
    std::string image = slurp(path);
    writeFile(path, image.substr(0, image.size() - 7)); // truncate.

    wl::DecodedTraceCache cache;
    auto a = cache.get(path);
    EXPECT_FALSE(a.ok());
    EXPECT_NE(a.error.find("truncated"), std::string::npos);
    auto b = cache.get(path);
    EXPECT_FALSE(b.ok()); // still an error, not a poisoned hit.
    EXPECT_EQ(cache.stats().residentBytes, 0u);

    // Fixing the file heals the lookup.
    writeFile(path, image);
    auto c = cache.get(path);
    ASSERT_TRUE(c.ok()) << c.error;
    fs::remove_all(dir);
}

TEST(DecodedTraceCache, ConcurrentColdLookupsDecodeOnce)
{
    std::string dir = scratchDir("cache_mt");
    std::string path = writeSample(dir, 5000, 2);

    for (int round = 0; round < 8; ++round) {
        wl::DecodedTraceCache cache;
        constexpr int kThreads = 8;
        std::vector<std::shared_ptr<const wl::DecodedTrace>> got(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                auto r = cache.get(path);
                ASSERT_TRUE(r.ok()) << r.error;
                got[t] = r.trace;
            });
        for (auto &th : threads)
            th.join();
        auto s = cache.stats();
        EXPECT_EQ(s.misses, 1u) << "decode-once must hold under racing "
                                   "cold lookups";
        EXPECT_EQ(s.hits, static_cast<u64>(kThreads - 1));
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(got[t].get(), got[0].get());
    }
    fs::remove_all(dir);
}

// ------------------------------------- shared decode across runMatrix

sim::SimConfig
tinyConfig(const char *label_base)
{
    sim::SimConfig cfg = sim::SimConfig::rsepIdeal();
    cfg.label = label_base;
    cfg.warmupInsts = 1'000;
    cfg.measureInsts = 3'000;
    cfg.checkpoints = 2;
    cfg.seed = 0x5eed;
    return cfg;
}

TEST(TraceCacheMatrix, CellsShareOneDecodePerTraceUnderBothStealModes)
{
    std::string dir = scratchDir("matrix_share");
    sim::SimConfig base = tinyConfig("cache-a");
    sim::SimConfig other = tinyConfig("cache-b");
    other.mech = sim::SimConfig::vpOnly().mech;
    std::vector<sim::SimConfig> configs = {base, other};
    std::vector<std::string> benches = {"gobmk", "sjeng"};

    sim::MatrixOptions rec_opts;
    rec_opts.jobs = 2;
    rec_opts.progress = false;
    rec_opts.traceIo.recordDir = dir;
    auto live = sim::runMatrix({base}, benches, rec_opts);

    // 2 benches x 2 checkpoints = 4 traces; 2 configs replay them =
    // 8 cells. Per steal mode the 4 first touches decode, the other 4
    // share — the decode-once-replay-many invariant, irrespective of
    // which worker thread got which cell.
    for (sim::StealMode steal :
         {sim::StealMode::Cell, sim::StealMode::Window}) {
        wl::traceCache().clear();
        sim::MatrixOptions rep_opts;
        rep_opts.jobs = 4;
        rep_opts.progress = false;
        rep_opts.steal = steal;
        rep_opts.traceIo.replayDir = dir;
        auto rep = sim::runMatrix(configs, benches, rep_opts);

        u64 hits = 0, misses = 0, load_micros_cells = 0;
        for (const auto &row : rep)
            for (const sim::RunResult &rr : row.byConfig) {
                hits += rr.timing.traceDecodeHits.value();
                misses += rr.timing.traceDecodeMisses.value();
                load_micros_cells += rr.timing.cellsRun.value();
            }
        EXPECT_EQ(misses, 4u);
        EXPECT_EQ(hits, 4u);
        EXPECT_EQ(load_micros_cells, 8u);

        // And the shared-decode replay still reproduces live bit for
        // bit (config 0 matches its recording run).
        for (size_t b = 0; b < rep.size(); ++b)
            for (size_t p = 0; p < rep[b].byConfig[0].phases.size(); ++p) {
                const sim::PhaseResult &l = live[b].byConfig[0].phases[p];
                const sim::PhaseResult &r = rep[b].byConfig[0].phases[p];
                EXPECT_EQ(l.stats.committedInsts.value(),
                          r.stats.committedInsts.value());
                EXPECT_EQ(l.stats.cycles.value(), r.stats.cycles.value());
                EXPECT_EQ(l.engineStats, r.engineStats);
            }
    }

    // A warm second sweep replays with zero fresh decodes.
    sim::MatrixOptions warm_opts;
    warm_opts.jobs = 4;
    warm_opts.progress = false;
    warm_opts.traceIo.replayDir = dir;
    auto warm = sim::runMatrix(configs, benches, warm_opts);
    u64 warm_hits = 0, warm_misses = 0;
    for (const auto &row : warm)
        for (const sim::RunResult &rr : row.byConfig) {
            warm_hits += rr.timing.traceDecodeHits.value();
            warm_misses += rr.timing.traceDecodeMisses.value();
        }
    EXPECT_EQ(warm_misses, 0u);
    EXPECT_EQ(warm_hits, 8u);

    wl::traceCache().clear();
    fs::remove_all(dir);
}

} // namespace
} // namespace rsep

/** @file Unit tests of the hot-path structures introduced by the PR 5
 *  cycle-loop overhaul: the ring buffer behind the ROB / frontend
 *  queue / trace window, and the memory doubleword index behind the
 *  O(1) STLF and memory-order probes. */

#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/ring_buffer.hh"
#include "common/rng.hh"
#include "core/wakeup.hh"

namespace rsep
{
namespace
{

TEST(RingBuffer, PushPopWrapsAroundCapacity)
{
    RingBuffer<int> rb(4); // rounds up to a power of two >= 4.
    size_t cap = rb.capacity();
    EXPECT_GE(cap, 4u);
    // Cycle through several capacities' worth of pushes and pops so
    // head wraps the storage repeatedly.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 64; ++round) {
        while (rb.size() < cap)
            rb.push_back(next_in++);
        EXPECT_EQ(rb.capacity(), cap) << "reserved ring must not grow";
        while (!rb.empty()) {
            EXPECT_EQ(rb.front(), next_out);
            rb.pop_front();
            ++next_out;
        }
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, RandomAccessMatchesDequeAcrossWrap)
{
    RingBuffer<int> rb(8);
    std::deque<int> ref;
    Rng rng(42);
    int next = 0;
    for (int step = 0; step < 10000; ++step) {
        switch (rng.below(4)) {
          case 0:
          case 1:
            rb.push_back(next);
            ref.push_back(next);
            ++next;
            break;
          case 2:
            if (!ref.empty()) {
                rb.pop_front();
                ref.pop_front();
            }
            break;
          case 3:
            // The squash path: drop the youngest suffix.
            if (!ref.empty()) {
                rb.pop_back();
                ref.pop_back();
            }
            break;
        }
        ASSERT_EQ(rb.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(rb.front(), ref.front());
            ASSERT_EQ(rb.back(), ref.back());
            size_t mid = ref.size() / 2;
            ASSERT_EQ(rb[mid], ref[mid]);
        }
    }
}

TEST(RingBuffer, SquashSuffixThenRefill)
{
    // The ROB squash pattern: pop_back a suffix while wrapped, then
    // push the re-fetched instructions again.
    RingBuffer<int> rb(8);
    size_t cap = rb.capacity();
    // Advance head so the live span wraps the end of storage.
    for (size_t i = 0; i < cap - 2; ++i)
        rb.push_back(static_cast<int>(i));
    for (size_t i = 0; i < cap - 4; ++i)
        rb.pop_front();
    for (int i = 100; i < 104; ++i)
        rb.push_back(i); // crosses the wrap point.
    ASSERT_EQ(rb.size(), 6u);
    // Squash the youngest three.
    rb.pop_back();
    rb.pop_back();
    rb.pop_back();
    EXPECT_EQ(rb.back(), 100);
    // Refill ("re-fetch") and verify order end to end.
    for (int i = 200; i < 203; ++i)
        rb.push_back(i);
    std::vector<int> got;
    for (size_t i = 0; i < rb.size(); ++i)
        got.push_back(rb[i]);
    EXPECT_EQ(got, (std::vector<int>{
                       static_cast<int>(cap - 4),
                       static_cast<int>(cap - 3), 100, 200, 201, 202}));
}

TEST(RingBuffer, GrowthPreservesOrderAndFreesOnPop)
{
    // Unreserved ring with a non-trivial element type: growth must
    // preserve order, pops must release held resources.
    RingBuffer<std::string> rb;
    for (int i = 0; i < 100; ++i)
        rb.push_back("v" + std::to_string(i));
    for (int i = 0; i < 40; ++i)
        rb.pop_front();
    for (int i = 100; i < 400; ++i) // forces several regrows mid-wrap.
        rb.push_back("v" + std::to_string(i));
    ASSERT_EQ(rb.size(), 360u);
    for (int i = 0; i < 360; ++i)
        ASSERT_EQ(rb[static_cast<size_t>(i)],
                  "v" + std::to_string(40 + i));
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back("fresh");
    EXPECT_EQ(rb.front(), "fresh");
}

// ---------------------------------------------------------------------
// MemDwordIndex

TEST(MemDwordIndex, StlfAndViolationProbes)
{
    core::MemDwordIndex idx(16);
    const Addr dw = 0x1000;
    idx.addStore(dw, 10);
    idx.addStore(dw, 20);
    idx.addStore(0x2000, 15); // different doubleword: never visible.

    // Youngest older store.
    EXPECT_FALSE(idx.youngestStoreBelow(dw, 10).has_value());
    EXPECT_EQ(idx.youngestStoreBelow(dw, 11).value_or(0), 10u);
    EXPECT_EQ(idx.youngestStoreBelow(dw, 25).value_or(0), 20u);
    EXPECT_FALSE(idx.youngestStoreBelow(0x3000, 99).has_value());

    // Oldest younger issued load.
    idx.addIssuedLoad(dw, 30);
    idx.addIssuedLoad(dw, 12);
    EXPECT_EQ(idx.oldestIssuedLoadAbove(dw, 10).value_or(0), 12u);
    EXPECT_EQ(idx.oldestIssuedLoadAbove(dw, 12).value_or(0), 30u);
    EXPECT_FALSE(idx.oldestIssuedLoadAbove(dw, 30).has_value());

    // Removal (commit / squash paths).
    idx.removeIssuedLoad(dw, 12);
    EXPECT_EQ(idx.oldestIssuedLoadAbove(dw, 10).value_or(0), 30u);
    idx.removeStore(dw, 20);
    EXPECT_EQ(idx.youngestStoreBelow(dw, 25).value_or(0), 10u);
    idx.removeStore(dw, 10);
    idx.removeIssuedLoad(dw, 30);
    EXPECT_FALSE(idx.youngestStoreBelow(dw, 99).has_value());
    // Removing from an evicted or absent doubleword is a no-op.
    idx.removeStore(dw, 10);
    idx.removeStore(0x9000, 1);
}

TEST(MemDwordIndex, CollisionsAndSlotEviction)
{
    // A tiny table forces probe collisions; filling and draining it
    // many times over exercises tombstone reuse and rehash-for-growth.
    core::MemDwordIndex idx(16);
    for (int round = 0; round < 50; ++round) {
        for (u64 i = 0; i < 40; ++i)
            idx.addStore(0x100 + 8 * i, 1000 * round + i);
        for (u64 i = 0; i < 40; ++i)
            EXPECT_EQ(idx.youngestStoreBelow(0x100 + 8 * i,
                                             1000 * round + i + 1)
                          .value_or(~u64{0}),
                      1000 * round + i)
                << "round " << round << " dword " << i;
        for (u64 i = 0; i < 40; ++i)
            idx.removeStore(0x100 + 8 * i, 1000 * round + i);
        EXPECT_EQ(idx.entriesUsed(), 0u);
    }
    // Eviction left entriesUsed at zero, so the table never needs to
    // exceed the worst simultaneous footprint by much.
    EXPECT_LE(idx.slotCapacity(), 256u);
}

TEST(MemDwordIndex, MixedDwordsKeepSeparateHistories)
{
    core::MemDwordIndex idx;
    Rng rng(7);
    // Model: per dword, a sorted reference of store seqs.
    std::vector<std::vector<u64>> ref(32);
    u64 seq = 0;
    for (int step = 0; step < 20000; ++step) {
        u64 d = rng.below(32);
        Addr dword = 0x4000 + 8 * d;
        if (ref[d].empty() || rng.below(3) != 0) {
            idx.addStore(dword, ++seq);
            ref[d].push_back(seq);
        } else {
            size_t k = rng.below(ref[d].size());
            idx.removeStore(dword, ref[d][k]);
            ref[d].erase(ref[d].begin() + static_cast<long>(k));
        }
        u64 probe = seq + 1;
        auto got = idx.youngestStoreBelow(dword, probe);
        if (ref[d].empty())
            ASSERT_FALSE(got.has_value());
        else
            ASSERT_EQ(got.value_or(0), ref[d].back());
    }
}

} // namespace
} // namespace rsep

/**
 * @file
 * Merge-toolchain tests: CSV and JSON dumps round-trip through the
 * parsers byte-identically, a sharded-and-merged dump is byte-identical
 * to the unsharded one (the acceptance property of `rsep_merge`),
 * disjointness and completeness violations are diagnosed, and the
 * figure summary derives the paper's bars + gmean rows.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/stat_merge.hh"

namespace rsep::sim
{
namespace
{

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 1'000;
    c.measureInsts = 3'000;
    c.checkpoints = 1;
    c.seed = 0x5eed;
    return c;
}

/** One tiny real matrix shared by the round-trip tests. */
struct Fixture
{
    std::vector<SimConfig> configs;
    std::vector<std::string> benches;
    std::vector<StatRow> rows;
    std::string csv;
    std::string json;
};

const Fixture &
fixture()
{
    static const Fixture f = [] {
        Fixture t;
        t.configs = {shrunk(SimConfig::baseline()),
                     shrunk(SimConfig::rsepIdeal())};
        t.benches = {"hmmer", "mcf", "namd"};
        MatrixOptions opts;
        opts.jobs = 2;
        opts.progress = false;
        auto mrows = runMatrix(t.configs, t.benches, opts);
        t.rows = collectStatRows(t.configs, mrows);
        std::ostringstream c, j;
        CsvStatSink{}.write(c, t.rows);
        JsonStatSink{}.write(j, t.rows);
        t.csv = c.str();
        t.json = j.str();
        return t;
    }();
    return f;
}

std::string
emitCsv(const std::vector<StatRow> &rows)
{
    std::ostringstream os;
    CsvStatSink{}.write(os, rows);
    return os.str();
}

TEST(StatMerge, CsvRoundTripIsByteIdentical)
{
    const Fixture &f = fixture();
    DumpParse p = parseCsvDump(f.csv, "fixture.csv");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.rows.size(), f.rows.size());
    canonicalizeStatRows(p.rows);
    EXPECT_EQ(emitCsv(p.rows), f.csv);
}

TEST(StatMerge, JsonRoundTripIsByteIdentical)
{
    const Fixture &f = fixture();
    DumpParse p = parseJsonDump(f.json, "fixture.json");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.rows.size(), f.rows.size());
    canonicalizeStatRows(p.rows);
    std::ostringstream os;
    JsonStatSink{}.write(os, p.rows);
    EXPECT_EQ(os.str(), f.json);

    // Sniffing picks the right parser for both formats.
    EXPECT_TRUE(parseDumpText(f.json, "j").ok());
    EXPECT_TRUE(parseDumpText(f.csv, "c").ok());
}

TEST(StatMerge, ShardedPlusMergedEqualsUnshardedByteForByte)
{
    // The acceptance criterion, in-process: run the matrix as shards
    // 0/2 and 1/2, export each, merge, compare against the unsharded
    // dump.
    const Fixture &f = fixture();

    std::vector<std::vector<StatRow>> shards;
    std::vector<std::string> origins;
    for (unsigned i = 0; i < 2; ++i) {
        MatrixOptions opts;
        opts.jobs = 2;
        opts.progress = false;
        opts.shard = {i, 2};
        auto mrows = runMatrix(f.configs, f.benches, opts);
        std::vector<StatRow> rows = collectStatRows(f.configs, mrows);
        EXPECT_LT(rows.size(), f.rows.size())
            << "a shard must not hold the whole matrix";
        // Round-trip each shard through its on-disk format, as the
        // real flow does.
        std::ostringstream os;
        CsvStatSink{}.write(os, rows);
        DumpParse p =
            parseCsvDump(os.str(), "shard" + std::to_string(i));
        ASSERT_TRUE(p.ok()) << p.error;
        shards.push_back(std::move(p.rows));
        origins.push_back("shard" + std::to_string(i));
    }

    std::vector<StatRow> merged;
    std::string err = mergeStatRows(shards, origins, merged);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(checkCompleteness(merged).empty());
    EXPECT_EQ(emitCsv(merged), f.csv);
}

TEST(StatMerge, DisjointnessViolationIsDiagnosed)
{
    const Fixture &f = fixture();
    std::vector<StatRow> merged;
    std::string err = mergeStatRows({f.rows, {f.rows.front()}},
                                    {"a.csv", "b.csv"}, merged);
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("duplicate row"), std::string::npos);
    EXPECT_NE(err.find("a.csv"), std::string::npos);
    EXPECT_NE(err.find("b.csv"), std::string::npos);
}

TEST(StatMerge, CompletenessHolesAreDiagnosed)
{
    const Fixture &f = fixture();
    EXPECT_TRUE(checkCompleteness(f.rows).empty());

    std::vector<StatRow> holey = f.rows;
    holey.pop_back();
    std::string err = checkCompleteness(holey);
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("missing cell"), std::string::npos);
}

TEST(StatMerge, ExpectedBenchmarkSetCatchesFullyMissingBenchmarks)
{
    // The derived rectangle cannot see a benchmark absent from EVERY
    // input (e.g. a forgotten shard dump): rows for "namd" gone
    // entirely still form a complete 2-bench rectangle.
    const Fixture &f = fixture();
    std::vector<StatRow> lost;
    for (const StatRow &r : f.rows)
        if (r.benchmark != "namd")
            lost.push_back(r);
    EXPECT_TRUE(checkCompleteness(lost).empty())
        << "derived check can't notice this; the expected set must";

    // The explicit expected set closes the gap...
    std::string err = checkCompleteness(lost, f.benches);
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("namd"), std::string::npos);
    EXPECT_TRUE(checkCompleteness(f.rows, f.benches).empty());

    // ...and also flags benchmarks outside it (typo guard).
    err = checkCompleteness(f.rows, {"hmmer", "mcf"});
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("unexpected benchmark"), std::string::npos);
}

TEST(StatMerge, SummarySkipsBenchmarksWithoutABaselineRow)
{
    // A partial merge where one benchmark has no baseline row must not
    // fabricate a 0.00% bar for it.
    const Fixture &f = fixture();
    std::vector<StatRow> partial;
    for (const StatRow &r : f.rows)
        if (!(r.benchmark == "mcf" && r.scenario == "baseline"))
            partial.push_back(r);

    std::ostringstream os;
    std::string err;
    ASSERT_TRUE(writeFigureSummary(os, partial, "baseline", &err)) << err;
    const std::string s = os.str();
    EXPECT_EQ(s.find("\nmcf,"), std::string::npos)
        << "no bar may be fabricated for mcf";
    EXPECT_NE(s.find("# warning: skipped 1 benchmark(s)"),
              std::string::npos);
    EXPECT_NE(s.find("mcf"), std::string::npos);
    EXPECT_NE(s.find("\nhmmer,rsep,"), std::string::npos)
        << "benchmarks with a baseline keep their bars";
}

TEST(StatMerge, QuotedFieldsSurviveTheCsvRoundTrip)
{
    StatRow row;
    row.benchmark = "we,ird\nbench";
    row.scenario = "quo\"ted";
    row.configHash = "0123456789abcdef";
    row.checkpoints = 1;
    row.ipcHmean = 1.25;
    row.counters = {{"cycles", 7}, {"weird,counter", 3}};
    std::vector<StatRow> rows = {row};
    canonicalizeStatRows(rows);
    std::string text = emitCsv(rows);

    DumpParse p = parseCsvDump(text, "quoted.csv");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.rows.size(), 1u);
    EXPECT_EQ(p.rows[0].benchmark, row.benchmark);
    EXPECT_EQ(p.rows[0].scenario, row.scenario);
    canonicalizeStatRows(p.rows);
    EXPECT_EQ(emitCsv(p.rows), text);
}

TEST(StatMerge, MalformedDumpsAreRejected)
{
    EXPECT_FALSE(parseCsvDump("", "e.csv").ok());
    EXPECT_FALSE(parseCsvDump("not,the,header\n1,2,3\n", "h.csv").ok());
    EXPECT_FALSE(
        parseCsvDump("benchmark,scenario,config_hash,checkpoints,"
                     "ipc_hmean\na,b,c,notanint,1.0\n",
                     "v.csv")
            .ok());
    EXPECT_FALSE(parseJsonDump("[{\"benchmark\": \"x\"", "t.json").ok());
    EXPECT_FALSE(parseJsonDump("[]trailing", "g.json").ok());
    EXPECT_TRUE(parseJsonDump("[]", "empty.json").ok());
}

TEST(StatMerge, FigureSummaryHasBarsAndGmeanRows)
{
    const Fixture &f = fixture();
    std::ostringstream os;
    std::string err;
    ASSERT_TRUE(writeFigureSummary(os, f.rows, "baseline", &err)) << err;
    const std::string s = os.str();

    // One bar row per (benchmark, non-baseline arm)...
    for (const std::string &bench : f.benches)
        EXPECT_NE(s.find("\n" + bench + ",rsep,"), std::string::npos)
            << s;
    // ...plus a gmean row per arm, and no bars for the baseline itself.
    EXPECT_NE(s.find("\ngmean,rsep,"), std::string::npos);
    EXPECT_EQ(s.find(",baseline,"), std::string::npos);

    // Unknown baseline is an error, not a zero-filled table.
    std::ostringstream bad;
    EXPECT_FALSE(writeFigureSummary(bad, f.rows, "nope", &err));
    EXPECT_NE(err.find("nope"), std::string::npos);
}

} // namespace
} // namespace rsep::sim

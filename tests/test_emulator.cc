/** @file Functional tests of the emulator's architectural semantics. */

#include <gtest/gtest.h>

#include <bit>

#include "wl/emulator.hh"

namespace rsep::wl
{
namespace
{

using isa::Program;
using isa::ProgramBuilder;

Program
buildArith()
{
    ProgramBuilder b("arith");
    b.movi(1, 10);
    b.movi(2, 3);
    b.add(3, 1, 2);   // 13
    b.sub(4, 1, 2);   // 7
    b.mul(5, 1, 2);   // 30
    b.div(6, 1, 2);   // 3
    b.div(7, 1, 31);  // div by zero reg -> 0
    b.lsli(8, 1, 4);  // 160
    b.asri(9, 8, 2);  // 40
    b.cmplt(10, 2, 1);   // 1
    b.cmpltu(11, 1, 2);  // 0
    b.cmpeq(12, 1, 1);   // 1
    b.halt();
    return b.build();
}

TEST(Emulator, IntegerArithmetic)
{
    Program p = buildArith();
    Emulator em(p);
    for (size_t i = 0; i + 1 < p.size(); ++i)
        em.step();
    EXPECT_EQ(em.readReg(3), 13u);
    EXPECT_EQ(em.readReg(4), 7u);
    EXPECT_EQ(em.readReg(5), 30u);
    EXPECT_EQ(em.readReg(6), 3u);
    EXPECT_EQ(em.readReg(7), 0u);
    EXPECT_EQ(em.readReg(8), 160u);
    EXPECT_EQ(em.readReg(9), 40u);
    EXPECT_EQ(em.readReg(10), 1u);
    EXPECT_EQ(em.readReg(11), 0u);
    EXPECT_EQ(em.readReg(12), 1u);
}

TEST(Emulator, SignedDivisionSemantics)
{
    ProgramBuilder b("sdiv");
    b.movi(1, -12);
    b.movi(2, 4);
    b.div(3, 1, 2); // -3
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.step();
    em.step();
    em.step();
    EXPECT_EQ(static_cast<s64>(em.readReg(3)), -3);
}

TEST(Emulator, ZeroRegisterIsHardwired)
{
    ProgramBuilder b("z");
    b.movi(isa::zeroReg, 77); // write discarded.
    b.add(1, isa::zeroReg, isa::zeroReg);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.step();
    em.step();
    EXPECT_EQ(em.readReg(isa::zeroReg), 0u);
    EXPECT_EQ(em.readReg(1), 0u);
}

TEST(Emulator, FloatingPoint)
{
    ProgramBuilder b("fp");
    b.fadd(33, 34, 35);
    b.fmul(36, 34, 35);
    b.fdiv(37, 34, 35);
    b.fdiv(38, 34, 63); // by zero -> 0.0
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.setFpReg(34, 6.0);
    em.setFpReg(35, 1.5);
    for (int i = 0; i < 4; ++i)
        em.step();
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(33)), 7.5);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(36)), 9.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(37)), 4.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(38)), 0.0);
}

TEST(Emulator, FpIntConversion)
{
    ProgramBuilder b("cvt");
    b.movi(1, -9);
    b.fcvti(33, 1);      // int -> fp
    b.fcvtf(2, 33);      // fp -> int
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.step();
    em.step();
    em.step();
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(33)), -9.0);
    EXPECT_EQ(static_cast<s64>(em.readReg(2)), -9);
}

TEST(Emulator, LoadsAndStores)
{
    ProgramBuilder b("mem");
    b.movi(1, 0x1000);
    b.movi(2, 1234);
    b.str(2, 1, 8);      // [0x1008] = 1234
    b.ldr(3, 1, 8);
    b.movi(4, 2);
    b.strx(2, 1, 4);     // [0x1010] = 1234
    b.ldrx(5, 1, 4);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    for (int i = 0; i < 7; ++i) {
        const DynRecord &r = em.step();
        if (i == 2) {
            EXPECT_EQ(r.effAddr, 0x1008u);
            EXPECT_EQ(r.result, 1234u); // store data recorded.
        }
    }
    EXPECT_EQ(em.readReg(3), 1234u);
    EXPECT_EQ(em.readReg(5), 1234u);
    EXPECT_EQ(em.memory().read(0x1010), 1234u);
}

TEST(Emulator, UnalignedAddressesForceAlign)
{
    ProgramBuilder b("align");
    b.movi(1, 0x1003);
    b.movi(2, 55);
    b.str(2, 1, 0); // aligns down to 0x1000
    b.ldr(3, 1, 0);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    for (int i = 0; i < 4; ++i)
        em.step();
    EXPECT_EQ(em.memory().read(0x1000), 55u);
    EXPECT_EQ(em.readReg(3), 55u);
}

TEST(Emulator, ConditionalBranches)
{
    ProgramBuilder b("br");
    b.movi(1, 5);
    b.movi(2, 5);
    b.beq(1, 2, "eq");    // taken
    b.movi(3, 111);       // skipped
    b.label("eq");
    b.movi(3, 222);
    b.cbnz(3, "done");    // taken
    b.movi(4, 1);         // skipped
    b.label("done");
    b.halt();
    Program p = b.build();
    Emulator em(p);
    const DynRecord *r = &em.step(); // movi
    r = &em.step();                  // movi
    r = &em.step();                  // beq
    EXPECT_TRUE(r->taken);
    r = &em.step(); // movi 222 at label eq
    EXPECT_EQ(em.readReg(3), 222u);
    r = &em.step(); // cbnz taken
    EXPECT_TRUE(r->taken);
    EXPECT_EQ(em.readReg(4), 0u);
}

TEST(Emulator, CallAndReturn)
{
    ProgramBuilder b("call");
    b.b("main");
    b.label("func");
    b.movi(5, 99);
    b.ret();
    b.label("main");
    b.bl("func");
    b.movi(6, 42);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.step(); // b main
    const DynRecord &bl = em.step();
    EXPECT_TRUE(bl.taken);
    // Link register holds the return address.
    EXPECT_EQ(em.readReg(isa::linkReg),
              Program::pcOf(p.labelIndex("main")) + Program::instBytes);
    em.step(); // movi 99 in func
    const DynRecord &ret = em.step();
    EXPECT_TRUE(ret.taken);
    em.step(); // movi 42 after return
    EXPECT_EQ(em.readReg(6), 42u);
    EXPECT_EQ(em.readReg(5), 99u);
}

TEST(Emulator, HaltWrapsToStart)
{
    ProgramBuilder b("wrap");
    b.addi(1, 1, 1);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    for (int i = 0; i < 5; ++i)
        em.step();
    EXPECT_EQ(em.readReg(1), 5u);
    EXPECT_EQ(em.instCount(), 5u);
}

TEST(Emulator, DeterministicReplay)
{
    ProgramBuilder b("det");
    b.label("top");
    b.addi(1, 1, 3);
    b.eori(2, 1, 0x55);
    b.mul(3, 1, 2);
    b.b("top");
    Program p = b.build();
    Emulator a(p), c(p);
    for (int i = 0; i < 1000; ++i) {
        const DynRecord &ra = a.step();
        const DynRecord &rc = c.step();
        ASSERT_EQ(ra.result, rc.result);
        ASSERT_EQ(ra.staticIdx, rc.staticIdx);
        ASSERT_EQ(ra.nextIdx, rc.nextIdx);
    }
}

TEST(Emulator, FpMinMaxAbsNeg)
{
    ProgramBuilder b("fpmisc");
    b.fmin(36, 34, 35);
    b.fmax(37, 34, 35);
    b.fabs_(38, 33);
    b.fneg(39, 34);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.setFpReg(33, -2.5);
    em.setFpReg(34, 4.0);
    em.setFpReg(35, 7.0);
    for (int i = 0; i < 4; ++i)
        em.step();
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(36)), 4.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(37)), 7.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(38)), 2.5);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(em.readReg(39)), -4.0);
}

TEST(Emulator, SignedAndUnsignedCompareBranches)
{
    ProgramBuilder b("cmpbr");
    b.movi(1, -1);
    b.movi(2, 1);
    b.blt(1, 2, "signed_lt");   // -1 < 1 signed: taken.
    b.movi(3, 0);
    b.label("signed_lt");
    b.bltu(1, 2, "unsigned_lt"); // 0xfff..f < 1 unsigned: NOT taken.
    b.movi(4, 77);
    b.label("unsigned_lt");
    b.bge(2, 1, "ge");           // 1 >= -1 signed: taken.
    b.movi(5, 0);
    b.label("ge");
    b.bgeu(1, 2, "geu");         // 0xfff..f >= 1 unsigned: taken.
    b.movi(6, 0);
    b.label("geu");
    b.halt();
    Program p = b.build();
    Emulator em(p);
    em.step(); // movi
    em.step(); // movi
    EXPECT_TRUE(em.step().taken);  // blt
    EXPECT_FALSE(em.step().taken); // bltu
    em.step();                     // movi 77 (fall-through path)
    EXPECT_EQ(em.readReg(4), 77u);
    EXPECT_TRUE(em.step().taken);  // bge
    EXPECT_TRUE(em.step().taken);  // bgeu
}

TEST(Emulator, RegisterShiftsAndLogic)
{
    ProgramBuilder b("shifts");
    b.movi(1, 0xf0);
    b.movi(2, 4);
    b.lsl(3, 1, 2);   // 0xf00
    b.lsr(4, 1, 2);   // 0x0f
    b.movi(5, -16);
    b.asr(6, 5, 2);   // shift by x2 = 4: -16 >> 4 = -1
    b.orr(7, 1, 2);   // 0xf4
    b.and_(8, 1, 3);  // 0
    b.eor(9, 1, 1);   // 0 (zero idiom semantics)
    b.halt();
    Program p = b.build();
    Emulator em(p);
    for (int i = 0; i < 8; ++i)
        em.step();
    EXPECT_EQ(em.readReg(3), 0xf00u);
    EXPECT_EQ(em.readReg(4), 0x0fu);
    EXPECT_EQ(static_cast<s64>(em.readReg(6)), -1);
    EXPECT_EQ(em.readReg(7), 0xf4u);
    EXPECT_EQ(em.readReg(8), 0u);
    EXPECT_EQ(em.readReg(9), 0u);
}

TEST(Emulator, IndirectJumpThroughRegister)
{
    ProgramBuilder b("ind");
    b.b("main");
    b.label("target");
    b.movi(5, 31337);
    b.halt();
    b.label("main");
    b.movi(1, 0); // patched below via register init instead.
    b.brind(2);
    Program p = b.build();
    Emulator em(p);
    em.setReg(2, Program::pcOf(p.labelIndex("target")));
    em.step(); // b main
    em.step(); // movi
    const DynRecord &jmp = em.step();
    EXPECT_TRUE(jmp.taken);
    em.step(); // movi 31337
    EXPECT_EQ(em.readReg(5), 31337u);
}

TEST(SparseMemory, UnwrittenReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0xdeadbeef00), 0u);
    m.write(0x100, 7);
    EXPECT_EQ(m.read(0x100), 7u);
    EXPECT_EQ(m.read(0x108), 0u);
    EXPECT_GE(m.touchedPages(), 1u);
    m.clear();
    EXPECT_EQ(m.read(0x100), 0u);
}

TEST(SparseMemory, PageBoundaryAccesses)
{
    SparseMemory m;
    constexpr Addr page = SparseMemory::pageBytes;

    // The last word of page 0 and the first word of page 1 are
    // distinct storage across the boundary.
    m.write(page - 8, 0x1111);
    m.write(page, 0x2222);
    EXPECT_EQ(m.read(page - 8), 0x1111u);
    EXPECT_EQ(m.read(page), 0x2222u);
    EXPECT_EQ(m.touchedPages(), 2u);

    // Writes near a page boundary never bleed into the neighbour.
    EXPECT_EQ(m.read(page - 16), 0u);
    EXPECT_EQ(m.read(page + 8), 0u);

    // The same word reached through different low-bit spellings is one
    // location (addresses are force-aligned down to 8 bytes).
    m.write(page + 3, 0x3333); // aligns down onto `page`.
    EXPECT_EQ(m.read(page), 0x3333u);
    EXPECT_EQ(m.read(page + 7), 0x3333u);
    EXPECT_EQ(m.touchedPages(), 2u);

    // Far-apart pages are sparse: only the touched ones materialise.
    m.write(page * 1000, 0x4444);
    EXPECT_EQ(m.read(page * 1000), 0x4444u);
    EXPECT_EQ(m.touchedPages(), 3u);
    EXPECT_EQ(m.read(page * 999), 0u);

    m.clear();
    EXPECT_EQ(m.touchedPages(), 0u);
    EXPECT_EQ(m.read(page - 8), 0u);
}

TEST(Emulator, HaltWrapsBackToProgramStart)
{
    // Kernels are endless outer loops; a Halt reached mid-stream must
    // silently wrap the cursor back to instruction 0 and continue.
    ProgramBuilder b("haltwrap");
    b.addi(1, 1, 1);
    b.addi(2, 2, 10);
    b.halt();
    Program p = b.build();
    Emulator em(p);

    // Two instructions execute, the Halt is skipped, and the stream
    // resumes at static index 0 — with icount never counting the Halt.
    for (int round = 0; round < 3; ++round) {
        const DynRecord &r0 = em.step();
        EXPECT_EQ(r0.staticIdx, 0u) << "round " << round;
        const DynRecord &r1 = em.step();
        EXPECT_EQ(r1.staticIdx, 1u) << "round " << round;
    }
    EXPECT_EQ(em.instCount(), 6u);
    EXPECT_EQ(em.readReg(1), 3u);
    EXPECT_EQ(em.readReg(2), 30u);
    EXPECT_EQ(em.nextIndex(), 2u); // parked on the Halt until stepped.
}

TEST(Emulator, HaltAtEndAndTrailingWrapKeepArchState)
{
    // Wrapping must not reset registers or memory (only the cursor).
    ProgramBuilder b("haltkeep");
    b.movi(5, 123);
    b.str(5, isa::zeroReg, 0x100);
    b.ldr(6, isa::zeroReg, 0x100);
    b.addi(7, 7, 1);
    b.halt();
    Program p = b.build();
    Emulator em(p);
    for (int i = 0; i < 8; ++i)
        em.step();
    EXPECT_EQ(em.readReg(6), 123u);
    EXPECT_EQ(em.readReg(7), 2u);
    EXPECT_EQ(em.memory().read(0x100), 123u);
}

} // namespace
} // namespace rsep::wl

/**
 * @file
 * Deterministic fault-injection tests (DESIGN.md §14): the fault
 * registry's spec grammar and arming semantics, the hardened file
 * formats (.rtr traces, .rts series), and the serve layer end to end
 * over real sockets with faults armed on one side at a time.
 *
 * The matrix invariant, per injection point: the request either
 * completes byte-identically to an un-faulted run (the client's
 * retry/backoff recovered), or fails with a diagnostic naming the
 * injected operation — and in every case the daemon survives and
 * serves the next clean request.
 *
 * Client exit codes (daemon gone / deadline / truncated stream) are
 * covered with death tests: clientExit really does exit the process,
 * which is the contract fleet scripts rely on.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/sample_io.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"
#include "wl/trace_io.hh"

namespace rsep
{
namespace
{

namespace fs = std::filesystem;

/** Every test leaves the process-global registry clean. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarmAll(); }
    void TearDown() override { fault::disarmAll(); }

    void
    arm(const std::string &spec)
    {
        std::string err;
        ASSERT_TRUE(fault::armFromSpec(spec, &err)) << err;
    }
};

// ---------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------

TEST_F(FaultTest, UnarmedPointIsANoop)
{
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::point("serve.send"));
    EXPECT_FALSE(fault::point("no.such.point"));
    // Unarmed hits are not even counted: the fast path never reaches
    // the registry, so golden runs stay untouched.
    EXPECT_EQ(fault::hitCount("serve.send"), 0u);
}

TEST_F(FaultTest, MalformedSpecsAreRejectedAtomically)
{
    std::string err;
    EXPECT_FALSE(fault::armFromSpec("", &err));
    EXPECT_FALSE(fault::armFromSpec(":fail=eio", &err));
    EXPECT_FALSE(fault::armFromSpec("x:fail=bogus", &err));
    EXPECT_FALSE(fault::armFromSpec("x:rate=0", &err));
    EXPECT_FALSE(fault::armFromSpec("x:rate=1.5", &err));
    EXPECT_FALSE(fault::armFromSpec("x:count=many", &err));
    EXPECT_FALSE(fault::armFromSpec("x:wat=1", &err));
    EXPECT_FALSE(err.empty());
    // A failed arm leaves the registry unchanged.
    EXPECT_FALSE(fault::armed());
    // A list with one bad element arms nothing.
    EXPECT_FALSE(fault::armFromSpec("good:fail=eio,x:rate=9", &err));
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::point("good"));
}

TEST_F(FaultTest, AfterAndCountBoundTheInjectionWindow)
{
    arm("w:after=2:fail=eio:count=2");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
        fault::Injected inj = fault::point("w");
        fired.push_back(bool(inj));
        if (inj) {
            EXPECT_EQ(inj.kind, fault::Kind::Errno);
            EXPECT_EQ(inj.err, EIO);
        }
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false,
                                        false}));
    EXPECT_EQ(fault::hitCount("w"), 6u);
    EXPECT_EQ(fault::firedCount("w"), 2u);
}

TEST_F(FaultTest, RateModeIsDeterministic)
{
    auto pattern = [&] {
        std::vector<bool> p;
        for (int i = 0; i < 64; ++i)
            p.push_back(bool(fault::point("r")));
        return p;
    };
    arm("r:rate=0.5:seed=9:fail=eio:count=0");
    std::vector<bool> first = pattern();
    fault::disarmAll();
    arm("r:rate=0.5:seed=9:fail=eio:count=0");
    EXPECT_EQ(first, pattern());
    // ~half fire: not all, not none.
    size_t n = std::count(first.begin(), first.end(), true);
    EXPECT_GT(n, 0u);
    EXPECT_LT(n, first.size());
}

TEST_F(FaultTest, ModesCarryTheirPayload)
{
    arm("d:fail=delay:ms=1,t:fail=truncate:bytes=7,"
        "s:fail=short:bytes=3,e:fail=econnreset");
    fault::Injected d = fault::point("d");
    EXPECT_EQ(d.kind, fault::Kind::Delay);
    EXPECT_EQ(d.amount, 1000u); // microseconds.
    fault::Injected t = fault::point("t");
    EXPECT_EQ(t.kind, fault::Kind::Truncate);
    EXPECT_EQ(t.amount, 7u);
    fault::Injected s = fault::point("s");
    EXPECT_EQ(s.kind, fault::Kind::ShortWrite);
    EXPECT_EQ(s.amount, 3u);
    fault::Injected e = fault::point("e");
    EXPECT_EQ(e.kind, fault::Kind::Errno);
    EXPECT_EQ(e.err, ECONNRESET);
}

// ---------------------------------------------------------------------
// Trace files: trace.write / trace.read / trace.decode, and the
// truncation diagnostics (offset + expected/actual checksum, never an
// assert).
// ---------------------------------------------------------------------

std::string
scratchDir(const std::string &tag)
{
    std::string dir = (fs::temp_directory_path() /
                       ("rsep_fault_" + tag + "_" +
                        std::to_string(::getpid())))
                          .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

wl::TraceHeader
smallTraceHeader(u64 records)
{
    wl::TraceHeader h;
    h.workload = "faketrace";
    h.workloadHash = hex64(0x1234abcd);
    h.phase = 0;
    h.programLength = 8;
    h.records = records;
    return h;
}

std::vector<wl::DynRecord>
smallTraceRecords()
{
    std::vector<wl::DynRecord> recs;
    for (u32 i = 0; i < 32; ++i) {
        wl::DynRecord r;
        r.staticIdx = i % 8;
        r.nextIdx = (i + 1) % 8;
        r.result = 0x100 + i;
        r.effAddr = (i % 3) ? 0 : 0x1000 + 8 * i;
        r.taken = (i % 2) != 0;
        recs.push_back(r);
    }
    return recs;
}

TEST_F(FaultTest, TraceWriteErrnoFailsWithDiagnostic)
{
    std::string dir = scratchDir("trw");
    std::string path = dir + "/t.rtr";
    arm("trace.write:fail=enospc");
    std::string err;
    EXPECT_FALSE(wl::writeTraceFile(path, smallTraceHeader(32),
                                    smallTraceRecords(), &err));
    EXPECT_NE(err.find("injected"), std::string::npos) << err;
    EXPECT_FALSE(fs::exists(path));
    // Unarmed retry succeeds (count=1 auto-disarmed the spec).
    EXPECT_TRUE(wl::writeTraceFile(path, smallTraceHeader(32),
                                   smallTraceRecords(), &err))
        << err;
    EXPECT_TRUE(wl::readTraceFile(path).ok());
    fs::remove_all(dir);
}

TEST_F(FaultTest, TornTracePublishIsDiagnosedWithOffsets)
{
    std::string dir = scratchDir("torn");
    std::string path = dir + "/t.rtr";
    std::string full =
        wl::serializeTrace(smallTraceHeader(32), smallTraceRecords());
    // Cut inside the checksum trailer: the file publishes torn, and the
    // next read must say where it ends and how much it needed.
    arm("trace.write:fail=truncate:bytes=" +
        std::to_string(full.size() - 10));
    std::string err;
    ASSERT_TRUE(wl::writeTraceFile(path, smallTraceHeader(32),
                                   smallTraceRecords(), &err))
        << err;
    wl::TraceParse tp = wl::readTraceFile(path);
    ASSERT_FALSE(tp.ok());
    EXPECT_NE(tp.error.find("offset"), std::string::npos) << tp.error;
    fs::remove_all(dir);
}

TEST_F(FaultTest, ChecksumMismatchNamesExpectedAndComputed)
{
    std::string dir = scratchDir("cksum");
    std::string path = dir + "/t.rtr";
    std::string err;
    ASSERT_TRUE(wl::writeTraceFile(path, smallTraceHeader(32),
                                   smallTraceRecords(), &err));
    // Flip one payload byte on disk; the envelope must report both
    // checksum values and the payload's position, not just "mismatch".
    std::string text;
    {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }
    size_t marker = text.find("payload\n");
    ASSERT_NE(marker, std::string::npos);
    text[marker + 8 + 3] ^= 0x40;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

    wl::TraceParse tp = wl::readTraceFile(path);
    ASSERT_FALSE(tp.ok());
    EXPECT_NE(tp.error.find("checksum mismatch"), std::string::npos)
        << tp.error;
    EXPECT_NE(tp.error.find("expected"), std::string::npos) << tp.error;
    EXPECT_NE(tp.error.find("computed"), std::string::npos) << tp.error;
    EXPECT_NE(tp.error.find("offset"), std::string::npos) << tp.error;
    fs::remove_all(dir);
}

TEST_F(FaultTest, TraceReadAndDecodeFaultsAreDiagnosed)
{
    std::string dir = scratchDir("trd");
    std::string path = dir + "/t.rtr";
    std::string err;
    ASSERT_TRUE(wl::writeTraceFile(path, smallTraceHeader(32),
                                   smallTraceRecords(), &err));

    arm("trace.read:fail=eio");
    wl::TraceParse tp = wl::readTraceFile(path);
    ASSERT_FALSE(tp.ok());
    EXPECT_NE(tp.error.find("trace.read"), std::string::npos) << tp.error;
    EXPECT_NE(tp.error.find("injected"), std::string::npos) << tp.error;

    // Truncate the decoded view near the end of the file: the parse
    // must degrade into a truncation diagnostic, never an assert.
    std::string full =
        wl::serializeTrace(smallTraceHeader(32), smallTraceRecords());
    arm("trace.decode:fail=truncate:bytes=" +
        std::to_string(full.size() - 25));
    wl::DecodedTraceParse dp = wl::loadDecodedTrace(path);
    ASSERT_FALSE(dp.ok());
    EXPECT_NE(dp.error.find("truncated"), std::string::npos) << dp.error;

    // Both specs auto-disarmed: the same file now loads clean.
    wl::DecodedTraceParse ok = wl::loadDecodedTrace(path);
    ASSERT_TRUE(ok.ok()) << ok.error;
    EXPECT_EQ(ok.trace->header.records, 32u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Sample series: rts.flush, and the reader's truncation diagnostics.
// ---------------------------------------------------------------------

TEST_F(FaultTest, SampleFlushFaultMatrix)
{
    std::string dir = scratchDir("rts");
    std::string path = dir + "/s.rts";
    sim::SampleSeriesHeader h;
    h.workload = "mcf";
    h.scenario = "t-base";
    h.configHash = hex64(0xfeedf00d);
    h.phase = 0;
    h.period = 1000;
    std::vector<core::StatSample> rows(4);

    // errno: flush fails, diagnostic names the injection.
    arm("rts.flush:fail=enospc");
    std::string err;
    EXPECT_FALSE(sim::writeSamplesFile(path, h, rows, &err));
    EXPECT_NE(err.find("injected"), std::string::npos) << err;
    EXPECT_FALSE(fs::exists(path));

    // short: no torn file may be left behind.
    arm("rts.flush:fail=short:bytes=40");
    EXPECT_FALSE(sim::writeSamplesFile(path, h, rows, &err));
    EXPECT_NE(err.find("injected short write"), std::string::npos) << err;
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::is_empty(dir));

    // truncate: the torn series publishes; the reader reports offsets.
    std::string full = sim::serializeSamples(h, rows);
    arm("rts.flush:fail=truncate:bytes=" +
        std::to_string(full.size() - 5));
    EXPECT_TRUE(sim::writeSamplesFile(path, h, rows, &err)) << err;
    sim::SamplesParse sp = sim::parseSamplesFile(path);
    ASSERT_FALSE(sp.ok());
    EXPECT_NE(sp.error.find("truncated"), std::string::npos) << sp.error;
    EXPECT_NE(sp.error.find("offset"), std::string::npos) << sp.error;

    // Unarmed, the same write round-trips.
    EXPECT_TRUE(sim::writeSamplesFile(path, h, rows, &err)) << err;
    sp = sim::parseSamplesFile(path);
    ASSERT_TRUE(sp.ok()) << sp.error;
    EXPECT_EQ(sp.rows.size(), rows.size());
    fs::remove_all(dir);
}

} // namespace
} // namespace rsep

// ---------------------------------------------------------------------
// Serve layer: one fault point armed per test, on one side of the
// socket; the run either completes byte-identically (client recovery)
// or fails with the injected diagnostic — and the daemon serves a
// clean request afterwards either way.
// ---------------------------------------------------------------------

namespace rsep::serve
{
namespace
{

namespace fs = std::filesystem;

std::string
shortSockPath()
{
    static int counter = 0;
    return "/tmp/rsep_fault_t" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

sim::SimConfig
shrunk(sim::SimConfig c)
{
    c.warmupInsts = 2'000;
    c.measureInsts = 6'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

std::vector<sim::Scenario>
smokeScenarios()
{
    sim::Scenario base{"t-base", shrunk(sim::SimConfig::baseline())};
    base.config.label = "t-base";
    return {base};
}

std::string
canonicalDump(const std::vector<sim::SimConfig> &configs,
              const std::vector<sim::MatrixRow> &rows)
{
    std::ostringstream os;
    sim::CsvStatSink{}.write(os, sim::collectStatRows(configs, rows));
    return os.str();
}

int
rawConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)));
    return fd;
}

/** A well-formed client run against @p sock must succeed — the "daemon
 *  still alive" probe after each fault case. */
void
expectServable(const std::string &sock)
{
    std::vector<sim::Scenario> scenarios = {
        {"t-base", shrunk(sim::SimConfig::baseline())}};
    scenarios[0].config.label = "t-base";
    scenarios[0].config.checkpoints = 1;
    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    copts.maxRetries = 0;
    std::vector<sim::MatrixRow> rows =
        runMatrixRemote(scenarios, {"mcf"}, copts);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GT(rows[0].byConfig[0].phases[0].ipc, 0.0);
}

class FaultServeTest : public ::testing::Test
{
  protected:
    void SetUp() override { fault::disarmAll(); }

    void
    startServer(ServeOptions opts = {})
    {
        opts.socketPath = sock = shortSockPath();
        if (opts.jobs == 0)
            opts.jobs = 2;
        opts.progress = false;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        if (server)
            server->stop();
    }

    void
    arm(const std::string &spec)
    {
        std::string err;
        ASSERT_TRUE(fault::armFromSpec(spec, &err)) << err;
    }

    /** Run the smoke request with retries enabled; expect recovery and
     *  byte-identity against a direct local run. */
    void
    expectRecovers(unsigned expect_min_retries_served)
    {
        std::vector<sim::Scenario> scenarios = smokeScenarios();
        std::vector<std::string> benchmarks = {"mcf"};

        sim::MatrixOptions mopts;
        mopts.jobs = 2;
        mopts.progress = false;
        std::vector<sim::SimConfig> configs = {scenarios[0].config};
        std::vector<sim::MatrixRow> direct =
            sim::runMatrix(configs, benchmarks, mopts);

        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        copts.maxRetries = 3;
        copts.backoffBaseMs = 10;
        std::vector<sim::MatrixRow> remote =
            runMatrixRemote(scenarios, benchmarks, copts);

        EXPECT_EQ(canonicalDump(configs, direct),
                  canonicalDump(configs, remote));
        EXPECT_GE(server->counters().retriesServed,
                  expect_min_retries_served);
        expectServable(sock);
    }

    std::string sock;
    std::unique_ptr<Server> server;
};

TEST_F(FaultServeTest, ServeSendResetRecovers)
{
    startServer();
    arm("serve.send:fail=econnreset");
    expectRecovers(1);
    EXPECT_EQ(fault::firedCount("serve.send"), 1u);
}

TEST_F(FaultServeTest, ServeSendTornFrameRecovers)
{
    startServer();
    // Three wire bytes of a frame, then the cut: the client sees a
    // stream torn mid-frame, not a clean shutdown.
    arm("serve.send:fail=truncate:bytes=3");
    expectRecovers(1);
}

TEST_F(FaultServeTest, ServeRecvResetRecovers)
{
    startServer();
    arm("serve.recv:fail=econnreset");
    expectRecovers(1);
}

TEST_F(FaultServeTest, ClientSendEpipeRecovers)
{
    startServer();
    arm("client.send:fail=epipe");
    expectRecovers(1);
}

TEST_F(FaultServeTest, ClientRecvTruncateRecovers)
{
    startServer();
    arm("client.recv:fail=truncate:bytes=2");
    expectRecovers(1);
}

TEST_F(FaultServeTest, InjectedEintrIsAbsorbedWithoutARetry)
{
    startServer();
    // EINTR is retried inside the read loop itself: the request must
    // complete on the FIRST conversation, with no resubmit.
    arm("client.recv:fail=eintr");
    expectRecovers(0);
    EXPECT_EQ(fault::firedCount("client.recv"), 1u);
    EXPECT_EQ(server->counters().retriesServed, 0u);
}

TEST_F(FaultServeTest, CellFaultAnswersErrorAndDaemonSurvives)
{
    startServer();
    arm("serve.cell:fail=eio");
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    copts.maxRetries = 0;
    // A server-reported cell failure is permanent: the client fatals
    // with the server's diagnostic, which names the cell and the
    // injected errno.
    try {
        ScopedFatalCapture capture;
        runMatrixRemote(scenarios, {"mcf"}, copts);
        FAIL() << "expected a FatalError from the served Error frame";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("cell ("),
                  std::string::npos)
            << e.what();
    }
    EXPECT_GE(server->counters().errors, 1u);
    fault::disarmAll();
    expectServable(sock);
}

TEST_F(FaultServeTest, InflightCellCeilingAnswersBusy)
{
    ServeOptions sopts;
    sopts.maxInflightCells = 1;
    sopts.jobs = 1;
    startServer(sopts);
    // Stall every cell so the first request reliably pins the gauge
    // while the second one knocks.
    arm("serve.cell:fail=delay:ms=200:count=0");

    std::vector<sim::MatrixRow> rows_a;
    std::thread a([&] {
        std::vector<sim::Scenario> scenarios = smokeScenarios();
        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        copts.maxRetries = 0;
        rows_a = runMatrixRemote(scenarios, {"mcf"}, copts);
    });
    // Wait until request A's first cell is actually running.
    for (int i = 0; i < 200 && fault::hitCount("serve.cell") == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(fault::hitCount("serve.cell"), 1u);

    // Raw second client: hello is answered, the submit is rejected
    // with a structured Busy carrying a retry-after hint.
    int fd = rawConnect(sock);
    std::string err;
    Frame f;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, helloPayload(), &err));
    ASSERT_TRUE(readFrame(fd, f, &err)) << err;
    ASSERT_EQ(f.type, FrameType::Hello);
    SubmitRequest sub;
    sub.benchmarks = {"mcf"};
    sub.scnText = sim::serializeScenarios(smokeScenarios());
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(sub), &err));
    ASSERT_TRUE(readFrame(fd, f, &err)) << err;
    ASSERT_EQ(f.type, FrameType::Error);
    u64 hint = 0;
    std::string why;
    ASSERT_TRUE(parseBusy(f.payload, hint, &why)) << f.payload;
    EXPECT_GT(hint, 0u);
    EXPECT_NE(why.find("max-inflight-cells"), std::string::npos) << why;
    ::close(fd);

    a.join();
    ASSERT_EQ(rows_a.size(), 1u);
    EXPECT_GT(rows_a[0].byConfig[0].phases[0].ipc, 0.0);
    EXPECT_GE(server->counters().busyRejections, 1u);
    // Busy is admission control, not a failure.
    EXPECT_EQ(server->counters().errors, 0u);

    fault::disarmAll();
    expectServable(sock);
}

TEST_F(FaultServeTest, QueueDepthCeilingAnswersBusy)
{
    ServeOptions sopts;
    sopts.maxQueueDepth = 1;
    sopts.jobs = 1;
    startServer(sopts);
    arm("serve.cell:fail=delay:ms=200:count=0");

    std::thread a([&] {
        std::vector<sim::Scenario> scenarios = smokeScenarios();
        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        copts.maxRetries = 0;
        runMatrixRemote(scenarios, {"mcf"}, copts);
    });
    for (int i = 0; i < 200 && fault::hitCount("serve.cell") == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(fault::hitCount("serve.cell"), 1u);

    int fd = rawConnect(sock);
    std::string err;
    Frame f;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, helloPayload(), &err));
    ASSERT_TRUE(readFrame(fd, f, &err)) << err;
    SubmitRequest sub;
    sub.benchmarks = {"mcf"};
    sub.scnText = sim::serializeScenarios(smokeScenarios());
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(sub), &err));
    ASSERT_TRUE(readFrame(fd, f, &err)) << err;
    ASSERT_EQ(f.type, FrameType::Error);
    u64 hint = 0;
    std::string why;
    ASSERT_TRUE(parseBusy(f.payload, hint, &why)) << f.payload;
    EXPECT_NE(why.find("max-queue-depth"), std::string::npos) << why;
    ::close(fd);
    a.join();
}

TEST_F(FaultServeTest, BusyClientBacksOffAndCompletes)
{
    ServeOptions sopts;
    sopts.maxInflightCells = 1;
    sopts.jobs = 1;
    startServer(sopts);
    // Stall only request A's two cells; B's own cells run unstalled.
    arm("serve.cell:fail=delay:ms=150:count=2");

    std::thread a([&] {
        std::vector<sim::Scenario> scenarios = smokeScenarios();
        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        copts.maxRetries = 0;
        runMatrixRemote(scenarios, {"mcf"}, copts);
    });
    for (int i = 0; i < 200 && fault::hitCount("serve.cell") == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(fault::hitCount("serve.cell"), 1u);

    // B's first attempt lands in A's window, takes the Busy, honours
    // the hint, and succeeds on a later attempt.
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    copts.maxRetries = 8;
    copts.backoffBaseMs = 20;
    std::vector<sim::MatrixRow> rows =
        runMatrixRemote(scenarios, {"mcf"}, copts);
    a.join();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GT(rows[0].byConfig[0].phases[0].ipc, 0.0);
    EXPECT_GE(server->counters().busyRejections, 1u);
    EXPECT_GE(server->counters().retriesServed, 1u);
}

TEST_F(FaultServeTest, IdleConnectionIsReaped)
{
    ServeOptions sopts;
    sopts.idleTimeoutSec = 1;
    startServer(sopts);

    int fd = rawConnect(sock);
    std::string err;
    Frame f;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, helloPayload(), &err));
    ASSERT_TRUE(readFrame(fd, f, &err)) << err;
    ASSERT_EQ(f.type, FrameType::Hello);

    // Say nothing; the server must close the connection on its own.
    bool clean = false;
    EXPECT_FALSE(readFrame(fd, f, &err, &clean));
    EXPECT_TRUE(clean) << err;
    ::close(fd);

    // The reaped fd freed its handler; the daemon still serves.
    expectServable(sock);
}

// ---------------------------------------------------------------------
// Exit codes: clientExit really exits with the class-specific code and
// a diagnostic naming the failed operation (death tests).
// ---------------------------------------------------------------------

TEST(FaultClientExit, DaemonGoneExitsThree)
{
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    ClientOptions copts;
    copts.socketPath = "/tmp/rsep_fault_nonexistent_" +
                       std::to_string(::getpid()) + ".sock";
    copts.progress = false;
    copts.maxRetries = 1;
    copts.backoffBaseMs = 1;
    EXPECT_EXIT(runMatrixRemote(scenarios, {"mcf"}, copts),
                ::testing::ExitedWithCode(exitDaemonGone),
                "is rsep_serve running");
}

TEST(FaultClientExit, DeadlineExitsFive)
{
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    ClientOptions copts;
    copts.socketPath = "/tmp/rsep_fault_nonexistent_" +
                       std::to_string(::getpid()) + ".sock";
    copts.progress = false;
    copts.maxRetries = 100;
    copts.backoffBaseMs = 20;
    copts.deadlineMs = 50;
    EXPECT_EXIT(runMatrixRemote(scenarios, {"mcf"}, copts),
                ::testing::ExitedWithCode(exitDeadline), "deadline");
}

TEST(FaultClientExit, TruncatedStreamExitsFour)
{
    // The whole scenario runs in the death-test child: its own daemon,
    // a client whose every receive tears, retries exhausted.
    auto scenario = [] {
        ServeOptions sopts;
        sopts.socketPath = shortSockPath();
        sopts.jobs = 1;
        sopts.progress = false;
        Server server(sopts);
        std::string err;
        if (!server.start(&err))
            std::exit(97);
        if (!fault::armFromSpec("client.recv:fail=truncate:bytes=2:count=0",
                                &err))
            std::exit(98);
        std::vector<sim::Scenario> scenarios = smokeScenarios();
        ClientOptions copts;
        copts.socketPath = sopts.socketPath;
        copts.progress = false;
        copts.maxRetries = 1;
        copts.backoffBaseMs = 1;
        runMatrixRemote(scenarios, {"mcf"}, copts);
    };
    EXPECT_EXIT(scenario(), ::testing::ExitedWithCode(exitTruncated),
                "hello reply");
}

} // namespace
} // namespace rsep::serve

/** @file Unit tests for the mini-ISA: opcodes, idioms, builder. */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace rsep::isa
{
namespace
{

TEST(Opcode, ClassMapping)
{
    EXPECT_EQ(opClassOf(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::CmpLt), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClassOf(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opClassOf(Opcode::FAdd), OpClass::FpAlu);
    EXPECT_EQ(opClassOf(Opcode::FMul), OpClass::FpMul);
    EXPECT_EQ(opClassOf(Opcode::FDiv), OpClass::FpDiv);
    EXPECT_EQ(opClassOf(Opcode::Ldr), OpClass::Load);
    EXPECT_EQ(opClassOf(Opcode::FStrX), OpClass::Store);
    EXPECT_EQ(opClassOf(Opcode::Beq), OpClass::Branch);
    EXPECT_EQ(opClassOf(Opcode::Bl), OpClass::Branch);
    EXPECT_EQ(opClassOf(Opcode::Nop), OpClass::Nop);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isLoadOp(Opcode::FLdrX));
    EXPECT_TRUE(isStoreOp(Opcode::Str));
    EXPECT_TRUE(isCondBranchOp(Opcode::Cbz));
    EXPECT_FALSE(isCondBranchOp(Opcode::B));
    EXPECT_TRUE(isIndirectOp(Opcode::Ret));
    EXPECT_TRUE(isIndirectOp(Opcode::BrInd));
    EXPECT_FALSE(isIndirectOp(Opcode::Bl));
    EXPECT_TRUE(isCallOp(Opcode::Bl));
    EXPECT_TRUE(writesFpDest(Opcode::FLdr));
    EXPECT_FALSE(writesFpDest(Opcode::Ldr));
}

TEST(StaticInst, WritesReg)
{
    StaticInst si;
    si.op = Opcode::Add;
    si.dst = 3;
    EXPECT_TRUE(si.writesReg());
    si.dst = zeroReg;
    EXPECT_FALSE(si.writesReg());
    si.dst = invalidArchReg;
    EXPECT_FALSE(si.writesReg());
}

TEST(StaticInst, ZeroIdioms)
{
    // movi #0
    StaticInst movi0;
    movi0.op = Opcode::MovI;
    movi0.dst = 4;
    movi0.imm = 0;
    EXPECT_TRUE(movi0.isZeroIdiom());
    movi0.imm = 1;
    EXPECT_FALSE(movi0.isZeroIdiom());

    // eor r, a, a
    StaticInst eor;
    eor.op = Opcode::Eor;
    eor.dst = 4;
    eor.src1 = 7;
    eor.src2 = 7;
    EXPECT_TRUE(eor.isZeroIdiom());
    eor.src2 = 8;
    EXPECT_FALSE(eor.isZeroIdiom());

    // sub r, a, a
    StaticInst sub;
    sub.op = Opcode::Sub;
    sub.dst = 4;
    sub.src1 = 2;
    sub.src2 = 2;
    EXPECT_TRUE(sub.isZeroIdiom());

    // and with the zero register
    StaticInst andz;
    andz.op = Opcode::And;
    andz.dst = 4;
    andz.src1 = 2;
    andz.src2 = zeroReg;
    EXPECT_TRUE(andz.isZeroIdiom());

    // mov from the zero register
    StaticInst movz;
    movz.op = Opcode::Mov;
    movz.dst = 4;
    movz.src1 = zeroReg;
    EXPECT_TRUE(movz.isZeroIdiom());
}

TEST(StaticInst, EliminableMove)
{
    StaticInst mv;
    mv.op = Opcode::Mov;
    mv.dst = 5;
    mv.src1 = 6;
    EXPECT_TRUE(mv.isEliminableMove());
    mv.src1 = zeroReg; // zero idiom instead.
    EXPECT_FALSE(mv.isEliminableMove());
    mv.src1 = 6;
    mv.dst = zeroReg;
    EXPECT_FALSE(mv.isEliminableMove());
}

TEST(StaticInst, ForEachSrcCoversStoreData)
{
    StaticInst st;
    st.op = Opcode::StrX;
    st.srcData = 1;
    st.src1 = 2;
    st.src2 = 3;
    unsigned count = 0;
    u64 sum = 0;
    st.forEachSrc([&](ArchReg r) {
        ++count;
        sum += r;
    });
    EXPECT_EQ(count, 3u);
    EXPECT_EQ(sum, 6u);
    EXPECT_EQ(st.numSrcs(), 3u);
}

TEST(ProgramBuilder, LabelResolution)
{
    ProgramBuilder b("t");
    b.label("top");
    b.addi(1, 1, 1);
    b.bne(1, 2, "top");
    b.b("end");
    b.label("end");
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.at(1).imm, 0); // bne -> top
    EXPECT_EQ(p.at(2).imm, 3); // b -> end
    EXPECT_EQ(p.labelIndex("end"), 3u);
    EXPECT_EQ(p.labelPc("top"), Program::codeBase);
}

TEST(ProgramBuilder, AppendsHaltWhenMissing)
{
    ProgramBuilder b("t");
    b.addi(1, 1, 1);
    Program p = b.build();
    EXPECT_TRUE(p.at(p.size() - 1).isHalt());
}

TEST(ProgramBuilder, StoreOperandConvention)
{
    ProgramBuilder b("t");
    b.str(3, 4, 16);
    b.strx(5, 6, 7);
    Program p = b.build();
    EXPECT_EQ(p.at(0).srcData, 3);
    EXPECT_EQ(p.at(0).src1, 4);
    EXPECT_EQ(p.at(0).imm, 16);
    EXPECT_EQ(p.at(1).srcData, 5);
    EXPECT_EQ(p.at(1).src2, 7);
}

TEST(ProgramBuilder, CallAndReturnUseLinkReg)
{
    ProgramBuilder b("t");
    b.label("f");
    b.ret();
    b.bl("f");
    Program p = b.build();
    EXPECT_EQ(p.at(0).src1, linkReg);
    EXPECT_EQ(p.at(1).dst, linkReg);
    EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Program, PcIndexRoundTrip)
{
    EXPECT_EQ(Program::indexOf(Program::pcOf(17)), 17u);
    EXPECT_EQ(Program::pcOf(0), Program::codeBase);
}

TEST(Program, DisasmMentionsMnemonic)
{
    ProgramBuilder b("t");
    b.add(1, 2, 3);
    b.ldr(4, 5, 8);
    b.cbz(1, "x");
    b.label("x");
    b.halt();
    Program p = b.build();
    EXPECT_NE(p.disasm(0).find("add"), std::string::npos);
    EXPECT_NE(p.disasm(1).find("ldr"), std::string::npos);
    EXPECT_NE(p.disasm(2).find("cbz"), std::string::npos);
}

} // namespace
} // namespace rsep::isa

/**
 * @file
 * rsep_serve end-to-end tests: the daemon core and the --connect
 * client, exercised in-process over real Unix-domain sockets.
 *
 * Pinned properties:
 *  - a remote run's MatrixRow reconstruction and canonical CSV dump
 *    are byte-identical to a direct runMatrix of the same request,
 *    sampling mode included (the .rts files match byte for byte);
 *  - malformed traffic — truncated frames, unknown frame types,
 *    oversized length prefixes, out-of-order frames, bad requests —
 *    is answered with an Error frame (or a clean close) and never
 *    takes the daemon down: a well-formed client still gets served;
 *  - concurrent clients batch into the shared pool and each get
 *    exactly their own cells back;
 *  - suite-name workload overrides are rejected over the wire (the
 *    registry-determinism rule of DESIGN.md §13).
 *
 * Socket paths live directly under /tmp: sockaddr_un caps paths at
 * ~107 bytes, so deep build-tree paths are not usable here.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"

namespace rsep::serve
{
namespace
{

namespace fs = std::filesystem;

std::string
shortSockPath()
{
    static int counter = 0;
    return "/tmp/rsep_serve_t" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
}

sim::SimConfig
shrunk(sim::SimConfig c)
{
    c.warmupInsts = 2'000;
    c.measureInsts = 6'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

std::vector<sim::Scenario>
smokeScenarios()
{
    sim::Scenario base{"t-base", shrunk(sim::SimConfig::baseline())};
    base.config.label = "t-base";
    sim::Scenario rsep{"t-rsep", shrunk(sim::SimConfig::rsepRealistic())};
    rsep.config.label = "t-rsep";
    return {base, rsep};
}

std::vector<sim::SimConfig>
configsOf(const std::vector<sim::Scenario> &scenarios)
{
    std::vector<sim::SimConfig> configs;
    for (const sim::Scenario &s : scenarios)
        configs.push_back(s.config);
    return configs;
}

std::string
canonicalDump(const std::vector<sim::SimConfig> &configs,
              const std::vector<sim::MatrixRow> &rows)
{
    std::ostringstream os;
    sim::CsvStatSink{}.write(os, sim::collectStatRows(configs, rows));
    return os.str();
}

/** Raw client socket for protocol-abuse tests. */
int
rawConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)));
    return fd;
}

/** A well-formed client run against @p sock must succeed — the "daemon
 *  still alive" probe after each abuse case. */
void
expectServable(const std::string &sock)
{
    std::vector<sim::Scenario> scenarios = {
        {"t-base", shrunk(sim::SimConfig::baseline())}};
    scenarios[0].config.label = "t-base";
    scenarios[0].config.checkpoints = 1;
    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    std::vector<sim::MatrixRow> rows =
        runMatrixRemote(scenarios, {"mcf"}, copts);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GT(rows[0].byConfig[0].phases[0].ipc, 0.0);
}

class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(ServeOptions opts = {})
    {
        opts.socketPath = sock = shortSockPath();
        if (opts.jobs == 0)
            opts.jobs = 2;
        opts.progress = false;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
    }

    void
    TearDown() override
    {
        if (server)
            server->stop();
    }

    std::string sock;
    std::unique_ptr<Server> server;
};

TEST_F(ServeTest, ClientDumpMatchesDirectRun)
{
    startServer();
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    std::vector<std::string> benchmarks = {"mcf", "hmmer"};

    sim::MatrixOptions mopts;
    mopts.jobs = 2;
    mopts.progress = false;
    std::vector<sim::MatrixRow> direct =
        sim::runMatrix(configsOf(scenarios), benchmarks, mopts);

    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    std::vector<sim::MatrixRow> remote =
        runMatrixRemote(scenarios, benchmarks, copts);

    // The client additionally self-checks against the server's Done
    // reference; this compares against an independent local run.
    EXPECT_EQ(canonicalDump(configsOf(scenarios), direct),
              canonicalDump(configsOf(scenarios), remote));

    Server::Counters c = server->counters();
    EXPECT_EQ(c.requests, 1u);
    EXPECT_EQ(c.errors, 0u);
    EXPECT_EQ(c.cellsRun, 2u * 2u * 2u); // benchs x configs x ckpts.
}

TEST_F(ServeTest, TruncatedFrameDoesNotKillDaemon)
{
    startServer();
    // Half a length prefix, then hangup.
    int fd = rawConnect(sock);
    u8 half[2] = {0x10, 0x00};
    ASSERT_EQ(2, ::send(fd, half, 2, MSG_NOSIGNAL));
    ::close(fd);

    // A full prefix announcing a payload that never arrives.
    fd = rawConnect(sock);
    u8 hdr[5] = {0x40, 0x00, 0x00, 0x00, 0x01};
    ASSERT_EQ(5, ::send(fd, hdr, 5, MSG_NOSIGNAL));
    ::close(fd);

    expectServable(sock);
}

TEST_F(ServeTest, GarbageFrameTypeRejected)
{
    startServer();
    int fd = rawConnect(sock);
    // length = 4, type = 42 (unknown), payload "junk".
    u8 frame[9] = {0x04, 0x00, 0x00, 0x00, 42, 'j', 'u', 'n', 'k'};
    ASSERT_EQ(9, ::send(fd, frame, 9, MSG_NOSIGNAL));
    Frame reply;
    std::string err;
    // The daemon answers Error (best effort) and closes; either way
    // it must not crash.
    if (readFrame(fd, reply, &err))
        EXPECT_EQ(reply.type, FrameType::Error);
    ::close(fd);

    expectServable(sock);
    EXPECT_GE(server->counters().errors, 1u);
}

TEST_F(ServeTest, OversizedFrameRejectedBeforeAllocation)
{
    startServer();
    int fd = rawConnect(sock);
    // Length prefix far above maxFramePayload; the daemon must reject
    // on the prefix alone, never try to read (or allocate) the body.
    u8 frame[5] = {0xff, 0xff, 0xff, 0x7f, 0x01};
    ASSERT_EQ(5, ::send(fd, frame, 5, MSG_NOSIGNAL));
    Frame reply;
    std::string err;
    if (readFrame(fd, reply, &err))
        EXPECT_EQ(reply.type, FrameType::Error);
    ::close(fd);

    expectServable(sock);
}

TEST_F(ServeTest, SubmitBeforeHelloRejected)
{
    startServer();
    int fd = rawConnect(sock);
    std::string err;
    SubmitRequest sub;
    sub.benchmarks = {"mcf"};
    sub.scnText = "[scenario]\nname = x\n";
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(sub), &err));
    Frame reply;
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    EXPECT_EQ(reply.type, FrameType::Error);
    ::close(fd);

    expectServable(sock);
}

TEST_F(ServeTest, BadRequestKeepsConnectionUsable)
{
    startServer();
    int fd = rawConnect(sock);
    std::string err;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, helloPayload(), &err));
    Frame reply;
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Hello);

    // An unknown benchmark is a request-level error: Error frame, but
    // the connection survives for the next submit.
    std::vector<sim::Scenario> scenarios = {
        {"t-base", shrunk(sim::SimConfig::baseline())}};
    scenarios[0].config.label = "t-base";
    scenarios[0].config.checkpoints = 1;
    SubmitRequest bad;
    bad.benchmarks = {"no-such-benchmark"};
    bad.scnText = sim::serializeScenarios(scenarios);
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(bad), &err));
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Error);
    EXPECT_NE(reply.payload.find("no-such-benchmark"), std::string::npos);

    // Same connection, now a valid request: one cell + Done.
    SubmitRequest good = bad;
    good.benchmarks = {"mcf"};
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(good), &err));
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Cell);
    CellResult cell;
    ASSERT_TRUE(parseCell(reply.payload, cell, &err)) << err;
    EXPECT_EQ(cell.benchmark, "mcf");
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Done);
    DoneSummary done;
    ASSERT_TRUE(parseDone(reply.payload, done, &err)) << err;
    EXPECT_EQ(done.cellsRun + done.cacheHits, 1u);
    ::close(fd);
}

TEST_F(ServeTest, SuiteNameOverrideRejected)
{
    startServer();
    int fd = rawConnect(sock);
    std::string err;
    ASSERT_TRUE(writeFrame(fd, FrameType::Hello, helloPayload(), &err));
    Frame reply;
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Hello);

    std::vector<sim::Scenario> scenarios = {
        {"t-base", shrunk(sim::SimConfig::baseline())}};
    scenarios[0].config.label = "t-base";
    SubmitRequest sub;
    sub.benchmarks = {"mcf"};
    // A [workload] block redefining the suite name "mcf": accepted by
    // local drivers, rejected over the wire (another client's bare
    // "mcf" request would silently resolve through the override).
    sub.scnText = "[workload]\n"
                  "name = mcf\n"
                  "archetype = pointer_chase\n"
                  "nodes = 64\n\n" +
                  sim::serializeScenarios(scenarios);
    ASSERT_TRUE(
        writeFrame(fd, FrameType::Submit, serializeSubmit(sub), &err));
    ASSERT_TRUE(readFrame(fd, reply, &err)) << err;
    ASSERT_EQ(reply.type, FrameType::Error);
    EXPECT_NE(reply.payload.find("override"), std::string::npos);
    ::close(fd);
}

TEST_F(ServeTest, ConcurrentClientsEachGetTheirCells)
{
    startServer();
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    std::vector<sim::SimConfig> configs = configsOf(scenarios);

    sim::MatrixOptions mopts;
    mopts.jobs = 2;
    mopts.progress = false;
    std::string direct_mcf =
        canonicalDump(configs, sim::runMatrix(configs, {"mcf"}, mopts));
    std::string direct_hmmer = canonicalDump(
        configs, sim::runMatrix(configs, {"hmmer"}, mopts));

    std::string remote_mcf, remote_hmmer;
    std::thread t1([&] {
        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        remote_mcf = canonicalDump(
            configs, runMatrixRemote(scenarios, {"mcf"}, copts));
    });
    std::thread t2([&] {
        ClientOptions copts;
        copts.socketPath = sock;
        copts.progress = false;
        remote_hmmer = canonicalDump(
            configs, runMatrixRemote(scenarios, {"hmmer"}, copts));
    });
    t1.join();
    t2.join();

    EXPECT_EQ(remote_mcf, direct_mcf);
    EXPECT_EQ(remote_hmmer, direct_hmmer);
    EXPECT_EQ(server->counters().requests, 2u);
}

TEST_F(ServeTest, SamplingStreamsByteIdenticalSeries)
{
    startServer();
    std::vector<sim::Scenario> scenarios = smokeScenarios();
    std::vector<std::string> benchmarks = {"mcf"};

    fs::path base = fs::temp_directory_path() /
                    ("rsep_serve_samples_" + std::to_string(::getpid()));
    fs::remove_all(base);
    std::string dir_direct = (base / "direct").string();
    std::string dir_remote = (base / "remote").string();

    sim::MatrixOptions mopts;
    mopts.jobs = 2;
    mopts.progress = false;
    mopts.sampling.every = 1000;
    mopts.sampling.dir = dir_direct;
    std::vector<sim::MatrixRow> direct =
        sim::runMatrix(configsOf(scenarios), benchmarks, mopts);

    ClientOptions copts;
    copts.socketPath = sock;
    copts.progress = false;
    copts.sampleEvery = 1000;
    copts.sampleDir = dir_remote;
    std::vector<sim::MatrixRow> remote =
        runMatrixRemote(scenarios, benchmarks, copts);

    EXPECT_EQ(canonicalDump(configsOf(scenarios), direct),
              canonicalDump(configsOf(scenarios), remote));

    // Every sample file the direct run wrote must exist remotely with
    // identical bytes (and vice versa — same file count).
    auto slurp = [](const fs::path &p) {
        std::ifstream is(p, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    };
    std::map<std::string, std::string> d_files, r_files;
    for (const auto &e : fs::directory_iterator(dir_direct))
        d_files[e.path().filename().string()] = slurp(e.path());
    for (const auto &e : fs::directory_iterator(dir_remote))
        r_files[e.path().filename().string()] = slurp(e.path());
    ASSERT_FALSE(d_files.empty());
    ASSERT_EQ(d_files.size(), r_files.size());
    for (const auto &[name, bytes] : d_files) {
        SCOPED_TRACE(name);
        ASSERT_TRUE(r_files.count(name));
        EXPECT_EQ(bytes, r_files[name]);
    }
    fs::remove_all(base);
}

TEST_F(ServeTest, StaleSocketFileIsReclaimed)
{
    // A dead server's socket file must not wedge the next start.
    std::string path = shortSockPath();
    {
        ServeOptions opts;
        opts.socketPath = path;
        opts.jobs = 1;
        opts.progress = false;
        Server first(opts);
        std::string err;
        ASSERT_TRUE(first.start(&err)) << err;
        // Simulate a crash: leak the socket file by never unlinking
        // (stop() unlinks, so instead create the stale file after).
        first.stop();
    }
    std::ofstream stale(path); // plain file at the socket path.
    stale.close();
    ASSERT_TRUE(fs::exists(path));

    ServeOptions opts;
    opts.socketPath = path;
    opts.jobs = 1;
    opts.progress = false;
    Server second(opts);
    std::string err;
    EXPECT_TRUE(second.start(&err)) << err;
    second.stop();
}

TEST_F(ServeTest, SecondServerOnLiveSocketRefused)
{
    startServer();
    ServeOptions opts;
    opts.socketPath = sock;
    opts.jobs = 1;
    opts.progress = false;
    Server second(opts);
    std::string err;
    EXPECT_FALSE(second.start(&err));
    EXPECT_NE(err.find("already"), std::string::npos);

    expectServable(sock); // the first server is unharmed.
}

} // namespace
} // namespace rsep::serve

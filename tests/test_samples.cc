/**
 * @file
 * Time-series sampling tests: the StatSample schema/delta machinery,
 * `.rts` round-trips and corruption rejection, the delta-sums-equal-
 * totals invariant against the pipeline's own end-of-run counters, and
 * the determinism contract — a cell's sample series is byte-identical
 * at any thread count and both steal granularities, and sampling off
 * leaves no files behind.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "core/sampler.hh"
#include "sim/runner.hh"
#include "sim/sample_io.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{
namespace
{

/** A scratch sample directory, removed on scope exit. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("rsep-samples-test-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter()++)))
                   .string();
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static int &
    counter()
    {
        static int n = 0;
        return n;
    }
};

SimConfig
scenarioConfig(const std::string &name)
{
    std::optional<Scenario> s = findScenario(name);
    EXPECT_TRUE(s.has_value()) << name;
    return s->config;
}

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 1'000;
    c.measureInsts = 4'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

SampleSeriesHeader
testHeader()
{
    SampleSeriesHeader h;
    h.workload = "mcf";
    h.scenario = "rsep";
    h.configHash = "0123456789abcdef";
    h.phase = 1;
    h.period = 2000;
    return h;
}

std::vector<core::StatSample>
testRows()
{
    std::vector<core::StatSample> rows(3);
    u64 v = 1;
    for (core::StatSample &r : rows)
        core::visitSampleFields(
            r, [&](const char *, u64 &f, core::SampleFieldKind) {
                f = v++ * 7919; // distinct values in every field.
            });
    rows[0].cycle = 2000;
    rows[1].cycle = 4000;
    rows[2].cycle = 4321; // final partial row.
    return rows;
}

// ---- schema ----

TEST(SampleSchema, FieldCountMatchesStruct)
{
    // 10 scalar fields + 3 per engine slot; a drift here means the
    // visitSampleFields enumeration missed a field (or counts one
    // twice) and every .rts consumer would silently misread columns.
    EXPECT_EQ(core::sampleFieldCount(),
              10 + 3 * core::numSampleEngineSlots);
    // The canonical name list is comma-joined with no blanks.
    const std::string &names = core::sampleFieldNames();
    EXPECT_EQ(static_cast<size_t>(
                  std::count(names.begin(), names.end(), ',') + 1),
              core::sampleFieldCount());
    EXPECT_EQ(names.rfind("cycle,", 0), 0u);
}

TEST(SampleSchema, SamplerEmitsDeltasAndFinalPartialRow)
{
    core::StatSampler s(100);
    core::StatSample cum;
    s.start(cum);

    cum.cycle = 100;
    cum.committedInsts = 40;
    cum.robOcc = 7;
    s.record(cum);

    cum.cycle = 200;
    cum.committedInsts = 90;
    cum.robOcc = 3;
    s.record(cum);

    cum.committedInsts = 95;
    s.finish(cum, 230);

    ASSERT_EQ(s.rows().size(), 3u);
    EXPECT_EQ(s.rows()[0].cycle, 100u);
    EXPECT_EQ(s.rows()[0].committedInsts, 40u); // delta from start.
    EXPECT_EQ(s.rows()[0].robOcc, 7u);          // point, not delta.
    EXPECT_EQ(s.rows()[1].cycle, 200u);
    EXPECT_EQ(s.rows()[1].committedInsts, 50u);
    EXPECT_EQ(s.rows()[1].robOcc, 3u);
    EXPECT_EQ(s.rows()[2].cycle, 230u); // partial tail window.
    EXPECT_EQ(s.rows()[2].committedInsts, 5u);
}

TEST(SampleSchema, SamplerBaselinesNonZeroStart)
{
    // Counters the run's resetStats does not zero (e.g. the branch
    // unit's) must delta from the attach-time snapshot, not from zero.
    core::StatSampler s(10);
    core::StatSample cum;
    cum.branchMispredicts = 1000;
    s.start(cum);
    cum.cycle = 10;
    cum.branchMispredicts = 1003;
    s.record(cum);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].branchMispredicts, 3u);
}

TEST(SampleSchema, FinishOnExactBoundaryEmitsNoExtraRow)
{
    core::StatSampler s(100);
    core::StatSample cum;
    s.start(cum);
    cum.cycle = 100;
    cum.committedInsts = 10;
    s.record(cum);
    s.finish(cum, 100); // run ended exactly on the emitted boundary.
    EXPECT_EQ(s.rows().size(), 1u);
}

// ---- .rts round-trip and rejection ----

TEST(SampleIo, RoundTripsExactly)
{
    SampleSeriesHeader h = testHeader();
    std::vector<core::StatSample> rows = testRows();
    std::string text = serializeSamples(h, rows);

    SamplesParse p = parseSamplesText(text, "<memory>");
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_EQ(p.header.workload, h.workload);
    EXPECT_EQ(p.header.scenario, h.scenario);
    EXPECT_EQ(p.header.configHash, h.configHash);
    EXPECT_EQ(p.header.phase, h.phase);
    EXPECT_EQ(p.header.period, h.period);
    ASSERT_EQ(p.rows.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        core::StatSample want = rows[i], got = p.rows[i];
        std::vector<u64> wv, gv;
        core::visitSampleFields(
            want, [&](const char *, u64 &f, core::SampleFieldKind) {
                wv.push_back(f);
            });
        core::visitSampleFields(
            got, [&](const char *, u64 &f, core::SampleFieldKind) {
                gv.push_back(f);
            });
        EXPECT_EQ(wv, gv) << "row " << i;
    }
    // Serialization is canonical: re-serializing reproduces the bytes.
    SampleSeriesHeader h2 = p.header;
    h2.rows = 0; // writeSamplesFile recomputes; serialize uses rows().
    EXPECT_EQ(serializeSamples(h2, p.rows), text);
}

TEST(SampleIo, WriteAndParseFile)
{
    TempDir dir;
    SampleSeriesHeader h = testHeader();
    std::vector<core::StatSample> rows = testRows();
    std::string path = samplePath(dir.path, h.workload, h.configHash,
                                  h.phase);
    EXPECT_EQ(path, dir.path + "/mcf-0123456789abcdef-p1.rts");
    std::string err;
    ASSERT_TRUE(writeSamplesFile(path, h, rows, &err)) << err;
    SamplesParse p = parseSamplesFile(path);
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_EQ(p.rows.size(), rows.size());
    EXPECT_EQ(p.header.rows, rows.size());
}

TEST(SampleIo, RejectsCorruption)
{
    SampleSeriesHeader h = testHeader();
    std::string good = serializeSamples(h, testRows());

    // Flipped payload byte: checksum mismatch.
    std::string flipped = good;
    flipped[good.find("payload\n") + 9] ^= 0x40;
    EXPECT_FALSE(parseSamplesText(flipped, "<t>").ok());

    // Truncation: missing trailer.
    EXPECT_FALSE(
        parseSamplesText(good.substr(0, good.size() - 10), "<t>").ok());

    // Wrong magic.
    std::string magic = good;
    magic[0] = 'x';
    EXPECT_FALSE(parseSamplesText(magic, "<t>").ok());

    // Unsupported schema version.
    std::string ver = good;
    ver.replace(0, ver.find('\n'), "rsep-samples 999");
    EXPECT_FALSE(parseSamplesText(ver, "<t>").ok());

    // A field list from a different schema is rejected, not guessed.
    std::string fields = good;
    size_t fpos = fields.find("fields = ");
    fields.replace(fpos, fields.find('\n', fpos) - fpos,
                   "fields = cycle,bogus");
    EXPECT_FALSE(parseSamplesText(fields, "<t>").ok());

    // Row-count lies: header says more rows than the payload holds.
    std::string rows_lie = good;
    size_t rpos = rows_lie.find("rows = ");
    rows_lie.replace(rpos, rows_lie.find('\n', rpos) - rpos,
                     "rows = 4000000");
    EXPECT_FALSE(parseSamplesText(rows_lie, "<t>").ok());

    EXPECT_TRUE(parseSamplesText(good, "<t>").ok());
}

// ---- pipeline integration ----

TEST(Sampling, DeltasSumToEndOfRunTotals)
{
    SimConfig cfg = shrunk(scenarioConfig("rsep"));
    PhaseResult plain = runPhase(cfg, "mcf", 0);
    PhaseResult sampled = runPhase(cfg, "mcf", 0, {}, 500);

    // Sampling must not perturb the simulation itself.
    EXPECT_EQ(plain.ipc, sampled.ipc);
    EXPECT_TRUE(plain.samples.empty());
    ASSERT_FALSE(sampled.samples.empty());

    // The delta columns sum exactly to the run's totals.
    u64 insts = 0, branches = 0, loads = 0, stores = 0;
    for (const core::StatSample &r : sampled.samples) {
        insts += r.committedInsts;
        branches += r.committedBranches;
        loads += r.committedLoads;
        stores += r.committedStores;
    }
    core::PipelineStats st = sampled.stats;
    EXPECT_EQ(insts, st.committedInsts.value());
    EXPECT_EQ(branches, st.committedBranches.value());
    EXPECT_EQ(loads, st.committedLoads.value());
    EXPECT_EQ(stores, st.committedStores.value());

    // The last row lands on the run's final cycle; boundaries are
    // period-aligned before it.
    EXPECT_EQ(sampled.samples.back().cycle, st.cycles.value());
    for (size_t i = 0; i + 1 < sampled.samples.size(); ++i)
        EXPECT_EQ(sampled.samples[i].cycle % 500, 0u) << i;

    // Engine slots: the rsep arm's own slot accumulated activity.
    u64 rsep_cov = 0;
    for (const core::StatSample &r : sampled.samples)
        rsep_cov += r.engCoverage[4]; // "rsep" slot.
    u64 shared = 0, mispredicts = 0;
    for (const auto &[name, value] : sampled.engineStats) {
        if (name == "engine.rsep.shared")
            shared = value;
        if (name == "engine.rsep.mispredicts")
            mispredicts = value;
    }
    EXPECT_EQ(rsep_cov, shared + mispredicts);
}

TEST(Sampling, MatrixSeriesIdenticalAcrossJobsAndStealModes)
{
    std::vector<SimConfig> configs{shrunk(scenarioConfig("baseline")),
                                   shrunk(scenarioConfig("rsep"))};
    std::vector<std::string> benches{"mcf", "hmmer"};

    auto run = [&](unsigned jobs, StealMode steal, const TempDir &dir) {
        MatrixOptions mo;
        mo.jobs = jobs;
        mo.progress = false;
        mo.steal = steal;
        mo.sampling.every = 500;
        mo.sampling.dir = dir.path;
        runMatrix(configs, benches, mo);
        // Collect raw .rts bytes keyed by file name.
        std::map<std::string, std::string> bytes;
        for (const auto &e : fs::directory_iterator(dir.path))
            if (e.path().extension() == ".rts")
                bytes[e.path().filename().string()] = slurp(e.path());
        return bytes;
    };

    TempDir d1, d8, dw;
    auto base = run(1, StealMode::Cell, d1);
    auto jobs8 = run(8, StealMode::Cell, d8);
    auto window = run(8, StealMode::Window, dw);

    // One series per (bench, config, phase) cell.
    EXPECT_EQ(base.size(),
              benches.size() * configs.size() * configs[0].checkpoints);
    EXPECT_EQ(base, jobs8);  // byte-identical across thread counts.
    EXPECT_EQ(base, window); // ... and steal granularities.
}

TEST(Sampling, OffLeavesNoFilesAndCacheUntouched)
{
    std::vector<SimConfig> configs{shrunk(scenarioConfig("baseline"))};
    TempDir samples_dir, cache_dir;

    MatrixOptions mo;
    mo.progress = false;
    mo.cacheDir = cache_dir.path;
    mo.sampling.dir = samples_dir.path; // every == 0: off.
    runMatrix(configs, {"mcf"}, mo);
    EXPECT_FALSE(fs::exists(samples_dir.path));
    EXPECT_TRUE(fs::exists(cache_dir.path)); // cache in use when off.

    // Sampling on: bypasses the cache (results would have no rows) but
    // still produces the full series set.
    mo.sampling.every = 1000;
    auto rows = runMatrix(configs, {"mcf"}, mo);
    EXPECT_TRUE(fs::exists(samples_dir.path));
    size_t rts = 0;
    for (const auto &e : fs::directory_iterator(samples_dir.path))
        rts += e.path().extension() == ".rts";
    EXPECT_EQ(rts, static_cast<size_t>(configs[0].checkpoints));
    for (const PhaseResult &ph : rows[0].byConfig[0].phases)
        EXPECT_FALSE(ph.fromCache);
}

} // namespace
} // namespace rsep::sim
